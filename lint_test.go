package spbtree

// Documentation lints, run as ordinary tests so CI's `go test ./...` enforces
// them without external tooling:
//
//   - TestPackageDocs: every package in the module has a package doc comment.
//   - TestExportedDocs: every exported top-level symbol of the public root
//     package is documented.
//   - TestMarkdownLinks: every relative link in the repo's markdown files
//     points at a file or directory that exists.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// modulePackages walks the repo and returns one representative non-test Go
// file per package directory.
func modulePackages(t *testing.T) map[string][]string {
	t.Helper()
	pkgs := make(map[string][]string)
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgs[dir] = append(pkgs[dir], path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestPackageDocs fails for any package directory whose files all lack a
// package doc comment.
func TestPackageDocs(t *testing.T) {
	for dir, files := range modulePackages(t) {
		documented := false
		fset := token.NewFileSet()
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s has no package doc comment in any file", dir)
		}
	}
}

// TestExportedDocs fails for any exported top-level declaration of the root
// package (the public API) without a doc comment.
func TestExportedDocs(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					t.Errorf("%s: exported func %s has no doc comment",
						fset.Position(d.Pos()), d.Name.Name)
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							t.Errorf("%s: exported type %s has no doc comment",
								fset.Position(s.Pos()), s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								t.Errorf("%s: exported %s %s has no doc comment",
									fset.Position(name.Pos()), d.Tok, name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// mdLink matches inline markdown links and images; the first group is the
// target. Reference-style links and autolinks are out of scope.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// stripCode removes fenced code blocks and inline code spans, where
// bracket-paren sequences are code (slice indexing, calls), not links.
func stripCode(s string) string {
	var b strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || strings.HasPrefix(line, "    ") || strings.HasPrefix(line, "\t") {
			continue
		}
		// Drop inline `code` spans.
		for {
			i := strings.IndexByte(line, '`')
			if i < 0 {
				break
			}
			j := strings.IndexByte(line[i+1:], '`')
			if j < 0 {
				break
			}
			line = line[:i] + line[i+1+j+1:]
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMarkdownLinks checks that every relative link target in the repo's
// markdown files exists on disk. External (scheme://) and pure-anchor links
// are skipped; anchors on relative links are stripped before the check.
func TestMarkdownLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}
	for _, file := range mdFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(stripCode(string(data)), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link target %q does not exist (resolved %s)", file, m[1], resolved)
			}
		}
	}
}
