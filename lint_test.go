package spbtree

// Documentation lints, run as ordinary tests so CI's `go test ./...` enforces
// them without external tooling:
//
//   - TestPackageDocs: every package in the module has a package doc comment.
//   - TestExportedDocs: every exported top-level symbol of the public root
//     package is documented.
//   - TestMarkdownLinks: every relative link in the repo's markdown files
//     points at a file or directory that exists.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// modulePackages walks the repo and returns one representative non-test Go
// file per package directory.
func modulePackages(t *testing.T) map[string][]string {
	t.Helper()
	pkgs := make(map[string][]string)
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgs[dir] = append(pkgs[dir], path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestPackageDocs fails for any package directory whose files all lack a
// package doc comment.
func TestPackageDocs(t *testing.T) {
	for dir, files := range modulePackages(t) {
		documented := false
		fset := token.NewFileSet()
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s has no package doc comment in any file", dir)
		}
	}
}

// TestExportedDocs fails for any exported top-level declaration without a
// doc comment — in the root package (the public API) and in the packages
// whose exported surface other layers program against (the forest's Shard
// seam and the whole cluster layer).
func TestExportedDocs(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"internal/forest", "internal/cluster", "internal/server", "internal/retry"} {
		extra, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, extra...)
	}
	fset := token.NewFileSet()
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					t.Errorf("%s: exported func %s has no doc comment",
						fset.Position(d.Pos()), d.Name.Name)
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							t.Errorf("%s: exported type %s has no doc comment",
								fset.Position(s.Pos()), s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								t.Errorf("%s: exported %s %s has no doc comment",
									fset.Position(name.Pos()), d.Tok, name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// mdLink matches inline markdown links and images; the first group is the
// target. Reference-style links and autolinks are out of scope.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// stripCode removes fenced code blocks and inline code spans, where
// bracket-paren sequences are code (slice indexing, calls), not links.
func stripCode(s string) string {
	var b strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || strings.HasPrefix(line, "    ") || strings.HasPrefix(line, "\t") {
			continue
		}
		// Drop inline `code` spans.
		for {
			i := strings.IndexByte(line, '`')
			if i < 0 {
				break
			}
			j := strings.IndexByte(line[i+1:], '`')
			if j < 0 {
				break
			}
			line = line[:i] + line[i+1+j+1:]
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMarkdownLinks checks that every relative link target in the repo's
// markdown files exists on disk. External (scheme://) and pure-anchor links
// are skipped; anchors on relative links are stripped before the check.
func TestMarkdownLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}
	for _, file := range mdFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(stripCode(string(data)), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link target %q does not exist (resolved %s)", file, m[1], resolved)
			}
		}
	}
}

// designSection matches DESIGN.md's numbered section headings ("## 12. ..."
// and "### 12.4 ..."), capturing the section number.
var designSection = regexp.MustCompile(`(?m)^#{2,3} (\d+[a-z]?(?:\.\d+)?)[. ]`)

// designRef matches citations of DESIGN.md sections anywhere in the repo
// ("DESIGN.md §12.4", possibly wrapped across a line).
var designRef = regexp.MustCompile(`DESIGN\.md[\s(]+§(\d+[a-z]?(?:\.\d+)?)`)

// TestDesignSectionRefs verifies that every "DESIGN.md §N" citation — in Go
// doc comments and in the other markdown files — names a section that
// actually exists in DESIGN.md, so code comments can't drift as the design
// doc grows.
func TestDesignSectionRefs(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	sections := make(map[string]bool)
	for _, m := range designSection.FindAllStringSubmatch(string(design), -1) {
		sections[m[1]] = true
	}
	if len(sections) == 0 {
		t.Fatal("no numbered sections found in DESIGN.md")
	}
	err = filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range designRef.FindAllStringSubmatch(string(data), -1) {
			if !sections[m[1]] {
				t.Errorf("%s cites DESIGN.md §%s, which does not exist", path, m[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOperationsRunbook keeps OPERATIONS.md an actual runbook: the required
// operational topics are present, and every `spbcluster <sub>` invocation it
// shows names a real subcommand.
func TestOperationsRunbook(t *testing.T) {
	data, err := os.ReadFile("OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, topic := range []string{
		"3-node cluster", "/debug/vars", "rebalanc", "Crash recovery",
		"placement.json", "AsNodeErrors",
	} {
		if !strings.Contains(doc, topic) {
			t.Errorf("OPERATIONS.md no longer covers %q", topic)
		}
	}
	sub := regexp.MustCompile(`spbcluster\s+([a-z]+)\b`)
	known := map[string]bool{"init": true, "node": true, "rebalance": true}
	for _, m := range sub.FindAllStringSubmatch(doc, -1) {
		if !known[m[1]] {
			t.Errorf("OPERATIONS.md shows `spbcluster %s`, not a real subcommand", m[1])
		}
	}
}
