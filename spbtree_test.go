package spbtree_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"spbtree"
)

// TestPublicAPI exercises the façade exactly as the README documents it —
// if a re-export is missing or mis-typed, this file does not compile.
func TestPublicAPI(t *testing.T) {
	words := []string{
		"citrate", "defoliate", "defoliated", "defoliates", "defoliating",
		"defoliation", "dictionary", "word", "ward", "warden", "wart",
	}
	objs := make([]spbtree.Object, len(words))
	for i, w := range words {
		objs[i] = spbtree.NewStr(uint64(i), w)
	}
	tree, err := spbtree.Build(objs, spbtree.Options{
		Distance:  spbtree.EditDistance{MaxLen: 16},
		Codec:     spbtree.StrCodec{},
		NumPivots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	q := spbtree.NewStr(100, "defoliate")
	hits, err := tree.RangeQuery(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, h := range hits {
		got = append(got, h.Object.(*spbtree.Str).S)
	}
	sort.Strings(got)
	want := []string{"defoliate", "defoliated", "defoliates"}
	if len(got) != len(want) {
		t.Fatalf("range: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range: %v, want %v", got, want)
		}
	}

	nn, err := tree.KNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 || nn[0].Dist != 0 {
		t.Fatalf("knn: %+v", nn)
	}

	if err := tree.Insert(spbtree.NewStr(200, "defoliator")); err != nil {
		t.Fatal(err)
	}
	if err := tree.Delete(objs[0]); err != nil {
		t.Fatal(err)
	}
	if err := tree.Delete(objs[0]); !errors.Is(err, spbtree.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}

	est, err := tree.EstimateKNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.EDC <= 0 {
		t.Errorf("EstimateKNN EDC = %v", est.EDC)
	}

	tree.ResetStats()
	if _, err := tree.KNN(q, 2); err != nil {
		t.Fatal(err)
	}
	if s := tree.TakeStats(); s.DistanceComputations == 0 {
		t.Error("stats not counting through the façade")
	}
}

// TestPublicJoin runs the documented join flow through the façade.
func TestPublicJoin(t *testing.T) {
	mk := func(base uint64, words ...string) []spbtree.Object {
		objs := make([]spbtree.Object, len(words))
		for i, w := range words {
			objs[i] = spbtree.NewStr(base+uint64(i), w)
		}
		return objs
	}
	Q := mk(0, "defoliate", "defoliates", "defoliation", "anchor", "harbor")
	O := mk(100, "citrate", "defoliated", "defoliating", "anchors", "harbors")
	d := spbtree.EditDistance{MaxLen: 16}

	tq, err := spbtree.Build(Q, spbtree.Options{
		Distance: d, Codec: spbtree.StrCodec{}, Curve: spbtree.ZOrder, NumPivots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	to, err := spbtree.Build(O, spbtree.Options{
		Distance: d, Codec: spbtree.StrCodec{}, Curve: spbtree.ZOrder, ShareMapping: tq,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := spbtree.Join(tq, to, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: exactly the pairs within edit distance 1.
	wantCount := 0
	for _, q := range Q {
		for _, o := range O {
			if d.Distance(q, o) <= 1 {
				wantCount++
			}
		}
	}
	if len(pairs) != wantCount {
		t.Fatalf("join returned %d pairs, want %d", len(pairs), wantCount)
	}
	if _, err := spbtree.EstimateJoin(tq, to, 1); err != nil {
		t.Fatal(err)
	}
}

// TestPivotSelectorsExported verifies the selector re-exports satisfy the
// interface and plug into Options.
func TestPivotSelectorsExported(t *testing.T) {
	selectors := []spbtree.PivotSelector{
		spbtree.HFI{}, spbtree.HF{}, spbtree.FFT{}, spbtree.SSS{},
		spbtree.Spacing{}, spbtree.PCASelector{}, spbtree.RandomSelector{},
	}
	objs := make([]spbtree.Object, 60)
	for i := range objs {
		objs[i] = spbtree.NewVector(uint64(i), []float64{float64(i) / 60, float64(i%7) / 7})
	}
	for _, sel := range selectors {
		tree, err := spbtree.Build(objs, spbtree.Options{
			Distance: spbtree.L2(2), Codec: spbtree.VectorCodec{Dim: 2},
			NumPivots: 2, Selector: sel,
		})
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		if got, err := tree.KNN(objs[5], 3); err != nil || len(got) != 3 {
			t.Fatalf("%s: knn %v %v", sel.Name(), got, err)
		}
	}
}

// TestPublicPersistence drives the documented save/reopen flow through the
// façade, on real files.
func TestPublicPersistence(t *testing.T) {
	dir := t.TempDir()
	idx, err := spbtree.NewFileStore(filepath.Join(dir, "index.pages"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := spbtree.NewFileStore(filepath.Join(dir, "data.pages"))
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]spbtree.Object, 120)
	for i := range objs {
		objs[i] = spbtree.NewSet(uint64(i), []uint64{uint64(i), uint64(i % 7), uint64(i % 13)})
	}
	tree, err := spbtree.Build(objs, spbtree.Options{
		Distance: spbtree.Jaccard{}, Codec: spbtree.SetCodec{},
		IndexStore: idx, DataStore: data, NumPivots: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var meta bytes.Buffer
	if err := tree.WriteMeta(&meta); err != nil {
		t.Fatal(err)
	}
	idx.Close()
	data.Close()

	idx2, err := spbtree.OpenFileStore(filepath.Join(dir, "index.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()
	data2, err := spbtree.OpenFileStore(filepath.Join(dir, "data.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer data2.Close()
	re, err := spbtree.Open(&meta, spbtree.OpenOptions{
		Distance: spbtree.Jaccard{}, Codec: spbtree.SetCodec{},
		IndexStore: idx2, DataStore: data2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.KNN(objs[9], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0].Dist != 0 {
		t.Fatalf("reopened Jaccard tree kNN: %+v", got)
	}
}

// TestPublicDurability drives the documented durability flow through the
// façade: SaveAtomic → Load → VerifyIntegrity → corrupt → Repair.
func TestPublicDurability(t *testing.T) {
	dir := t.TempDir()
	objs := make([]spbtree.Object, 200)
	for i := range objs {
		objs[i] = spbtree.NewVector(uint64(i), []float64{float64(i%19) / 19, float64(i%29) / 29})
	}
	dist := spbtree.L2(2)
	codec := spbtree.VectorCodec{Dim: 2}

	idx, err := spbtree.NewFileStore(filepath.Join(dir, "index.pages"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := spbtree.NewFileStore(filepath.Join(dir, "data.pages"))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := spbtree.Build(objs, spbtree.Options{
		Distance: dist, Codec: codec, IndexStore: idx, DataStore: data, NumPivots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.SaveAtomic(dir); err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := spbtree.Load(dir, spbtree.LoadOptions{Distance: dist, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.VerifyIntegrity(); err != nil {
		t.Fatalf("fresh index failed verification: %v", err)
	}
	if nn, err := re.KNN(objs[7], 3); err != nil || len(nn) != 3 || nn[0].Dist != 0 {
		t.Fatalf("loaded tree kNN: %+v, %v", nn, err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the first data page (the RAF tail page is reloaded eagerly by
	// Load, earlier pages only on access): Load succeeds, VerifyIntegrity
	// must report the damage with the typed errors, and Repair must bring
	// the index back.
	dataPath := filepath.Join(dir, "data.pages")
	raw, err := os.ReadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[64] ^= 0xff
	if err := os.WriteFile(dataPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	bad, err := spbtree.Load(dir, spbtree.LoadOptions{Distance: dist, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	verr := bad.VerifyIntegrity()
	var ierr *spbtree.IntegrityError
	if !errors.As(verr, &ierr) || len(ierr.Corruptions) == 0 {
		t.Fatalf("VerifyIntegrity on corrupt index: %v", verr)
	}
	if !errors.Is(verr, spbtree.ErrCorrupt) {
		t.Errorf("integrity error does not match ErrCorrupt: %v", verr)
	}
	// Queries against the damaged index return partial results plus the
	// typed page error rather than silently wrong answers.
	partial, qerr := bad.RangeQuery(objs[0], 10)
	var cerr *spbtree.CorruptError
	if !errors.As(qerr, &cerr) {
		t.Errorf("query on corrupt index: err = %v, want a CorruptError", qerr)
	}
	if len(partial) >= len(objs) {
		t.Errorf("query on corrupt index returned all %d objects", len(partial))
	}
	bad.Close()

	rep, err := spbtree.Repair(dir, spbtree.LoadOptions{Distance: dist, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Salvaged == 0 {
		t.Fatalf("repair salvaged nothing: %+v", rep)
	}
	fixed, err := spbtree.Load(dir, spbtree.LoadOptions{Distance: dist, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if err := fixed.VerifyIntegrity(); err != nil {
		t.Fatalf("repaired index failed verification: %v", err)
	}

	// A destroyed meta is rejected with the typed sentinel.
	if err := os.WriteFile(filepath.Join(dir, "tree.meta"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := spbtree.Load(dir, spbtree.LoadOptions{Distance: dist, Codec: codec}); !errors.Is(err, spbtree.ErrCorruptMeta) {
		t.Fatalf("Load with destroyed meta: %v", err)
	}
}

// TestPublicForest drives the distributed extension through the façade.
func TestPublicForest(t *testing.T) {
	objs := make([]spbtree.Object, 200)
	for i := range objs {
		objs[i] = spbtree.NewVector(uint64(i), []float64{float64(i%17) / 17, float64(i%23) / 23})
	}
	dist := spbtree.L2(2)
	f, err := spbtree.BuildForest(objs, spbtree.ForestOptions{
		Tree:   spbtree.Options{Distance: dist, Codec: spbtree.VectorCodec{Dim: 2}, Curve: spbtree.ZOrder},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	nn, err := f.KNN(objs[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 5 || nn[0].Dist != 0 {
		t.Fatalf("forest kNN: %+v", nn)
	}
	fp, err := f.BuildPartner(objs[:50], spbtree.ForestOptions{
		Tree: spbtree.Options{Distance: dist, Codec: spbtree.VectorCodec{Dim: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := spbtree.JoinForests(fp, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) < 50 {
		t.Fatalf("self-overlap join returned %d pairs", len(pairs))
	}
}

// TestPublicIterAndCount exercises the extension APIs via the façade.
func TestPublicIterAndCount(t *testing.T) {
	objs := make([]spbtree.Object, 150)
	for i := range objs {
		objs[i] = spbtree.NewVector(uint64(i), []float64{float64(i) / 150, float64((i*7)%150) / 150})
	}
	tree, err := spbtree.Build(objs, spbtree.Options{
		Distance: spbtree.L2(2), Codec: spbtree.VectorCodec{Dim: 2}, NumPivots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var it *spbtree.NearestIter = tree.NearestIter(objs[3])
	res, ok := it.Next()
	if !ok || res.Dist != 0 {
		t.Fatalf("first neighbor: %+v ok=%v", res, ok)
	}
	n, err := tree.RangeCount(objs[3], 0.2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tree.RangeQuery(objs[3], 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(full) {
		t.Fatalf("RangeCount %d != RangeQuery %d", n, len(full))
	}
	if _, err := tree.KNNApprox(objs[3], 5, 10); err != nil {
		t.Fatal(err)
	}
	if err := tree.Rebuild(spbtree.NewMemStore(), spbtree.NewMemStore()); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 150 {
		t.Fatalf("Len after rebuild = %d", tree.Len())
	}
}
