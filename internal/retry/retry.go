// Package retry hardens the write path against transient I/O failures:
// short writes and EINTR-class interruptions are retried a bounded number of
// times with exponential backoff before a typed error surfaces. The WAL and
// the page stores route their writes and fsyncs through it, so a spurious
// signal delivered mid-write does not fail a durable append that a simple
// retry would have completed.
//
// Every retry increments the process-wide counter in internal/obs
// (obs.IORetries), so operators can distinguish "the disk is slow" from "the
// disk is being interrupted" at /debug/vars.
package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"syscall"
	"time"

	"spbtree/internal/obs"
)

// maxAttempts bounds how many times one logical operation is tried in total
// (1 initial + maxAttempts-1 retries).
const maxAttempts = 4

// ErrExhausted matches (errors.Is) an operation that stayed transiently
// broken through every retry. The final underlying error is wrapped too.
var ErrExhausted = errors.New("retry: transient I/O error persisted")

// Transient reports whether err is worth retrying: an interrupted syscall or
// a short write (either reported as io.ErrShortWrite or observed as a short
// count with a nil error, which callers normalize to io.ErrShortWrite).
func Transient(err error) bool {
	return errors.Is(err, syscall.EINTR) || errors.Is(err, io.ErrShortWrite)
}

// backoff sleeps before retry attempt n (0-based): 1ms, 2ms, 4ms, … — long
// enough to ride out a signal storm, short enough to be invisible next to an
// fsync.
func backoff(n int) {
	time.Sleep(time.Millisecond << n)
}

// exhausted wraps the last transient error once the attempt cap is hit.
func exhausted(err error) error {
	return fmt.Errorf("%w after %d attempts: %w", ErrExhausted, maxAttempts, err)
}

// Write writes all of p to w, retrying transient failures from where the
// last attempt left off. Non-transient errors return immediately, untouched.
func Write(w io.Writer, p []byte) error {
	written := 0
	for attempt := 0; ; attempt++ {
		n, err := w.Write(p[written:])
		if n > 0 {
			written += n
		}
		if written >= len(p) && err == nil {
			return nil
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		if !Transient(err) {
			return err
		}
		if attempt >= maxAttempts-1 {
			return exhausted(err)
		}
		obs.AddIORetry(1)
		backoff(attempt)
	}
}

// WriteAt writes all of p at off, retrying transient failures from where the
// last attempt left off.
func WriteAt(w io.WriterAt, p []byte, off int64) error {
	written := 0
	for attempt := 0; ; attempt++ {
		n, err := w.WriteAt(p[written:], off+int64(written))
		if n > 0 {
			written += n
		}
		if written >= len(p) && err == nil {
			return nil
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		if !Transient(err) {
			return err
		}
		if attempt >= maxAttempts-1 {
			return exhausted(err)
		}
		obs.AddIORetry(1)
		backoff(attempt)
	}
}

// Do runs fn until it succeeds, fails with an error transient does not
// recognize, exhausts the attempt cap, or ctx is canceled — the generic form
// of the write-path retries above, used by the cluster layer for transient
// RPC failures (a reset connection, a node mid-restart). Between attempts it
// backs off exponentially while honoring ctx, so a query deadline is never
// overshot by a sleeping retry; on cancellation the context's error is
// returned so callers' partial-result plumbing sees the usual cause. Every
// retry increments obs.RPCRetries.
func Do(ctx context.Context, transient func(error) bool, fn func() error) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn()
		if err == nil {
			return nil
		}
		if !transient(err) {
			return err
		}
		if attempt >= maxAttempts-1 {
			return exhausted(err)
		}
		obs.AddRPCRetry(1)
		select {
		case <-time.After(time.Millisecond << attempt):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Sync calls fn (an fsync-like operation) until it succeeds, fails
// non-transiently, or exhausts the attempt cap.
func Sync(fn func() error) error {
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		if !Transient(err) {
			return err
		}
		if attempt >= maxAttempts-1 {
			return exhausted(err)
		}
		obs.AddIORetry(1)
		backoff(attempt)
	}
}
