package pivot

import (
	"math/rand"

	"spbtree/internal/metric"
)

// HF is the hull-of-foci outlier heuristic of the Omni-family (Traina et
// al.): it finds objects near the convex hull of the dataset. The first two
// foci are the endpoints of an approximate diameter; each further focus is
// the object whose distances to the chosen foci deviate least from the edge
// length, which pushes selections toward the hull.
//
// HF is O(|O|) per focus on the sampled subset and is the candidate
// generator inside HFI.
type HF struct {
	// MaxSample bounds how many objects HF scans; 0 means 5000.
	MaxSample int
}

// Name implements Selector.
func (HF) Name() string { return "HF" }

// Select implements Selector.
func (h HF) Select(objs []metric.Object, dist metric.DistanceFunc, k int, rng *rand.Rand) []metric.Object {
	rng = defaultRNG(rng)
	ms := h.MaxSample
	if ms == 0 {
		ms = 5000
	}
	s := sample(objs, ms, rng)
	if k <= 0 || len(s) == 0 {
		return nil
	}
	if len(s) <= k {
		return s
	}

	// farthest returns the object maximizing distance from `from`, also
	// handing back the full distance array so errors accumulate without
	// recomputation — this is what keeps HF O(|O|) per focus.
	farthest := func(from metric.Object) (metric.Object, []float64) {
		ds := make([]float64, len(s))
		var best metric.Object
		bd := -1.0
		for i, o := range s {
			ds[i] = dist.Distance(from, o)
			if o != from && ds[i] > bd {
				bd, best = ds[i], o
			}
		}
		return best, ds
	}

	seed := s[rng.Intn(len(s))]
	f1, _ := farthest(seed)
	f2, d1s := farthest(f1)
	edge := dist.Distance(f1, f2)

	pivots := []metric.Object{f1}
	// errSum[i] accumulates Σ_f |d(s[i], f) − edge| over chosen foci.
	errSum := make([]float64, len(s))
	for i := range s {
		errSum[i] = abs(d1s[i] - edge)
	}
	addFocus := func(f metric.Object) {
		for i, o := range s {
			errSum[i] += abs(dist.Distance(f, o) - edge)
		}
		_ = f
	}
	if k >= 2 {
		pivots = append(pivots, f2)
		addFocus(f2)
	}
	for len(pivots) < k {
		var best metric.Object
		bestErr := -1.0
		for i, o := range s {
			if contains(pivots, o) {
				continue
			}
			if best == nil || errSum[i] < bestErr {
				best, bestErr = o, errSum[i]
			}
		}
		if best == nil {
			break
		}
		pivots = append(pivots, best)
		addFocus(best)
	}
	return pivots
}

// FFT is the farthest-first traversal: each pivot maximizes the minimum
// distance to the pivots chosen so far, approximately maximizing pairwise
// pivot separation.
type FFT struct {
	// MaxSample bounds how many objects FFT scans; 0 means 5000.
	MaxSample int
}

// Name implements Selector.
func (FFT) Name() string { return "FFT" }

// Select implements Selector.
func (f FFT) Select(objs []metric.Object, dist metric.DistanceFunc, k int, rng *rand.Rand) []metric.Object {
	rng = defaultRNG(rng)
	ms := f.MaxSample
	if ms == 0 {
		ms = 5000
	}
	s := sample(objs, ms, rng)
	if k <= 0 || len(s) == 0 {
		return nil
	}
	if len(s) <= k {
		return s
	}
	// Start from the object farthest from a random seed so the first pivot
	// is already an outlier.
	seed := s[rng.Intn(len(s))]
	minDist := make([]float64, len(s))
	var first metric.Object
	bd := -1.0
	for i, o := range s {
		d := dist.Distance(seed, o)
		minDist[i] = d
		if d > bd {
			bd, first = d, o
		}
	}
	pivots := []metric.Object{first}
	for i, o := range s {
		minDist[i] = dist.Distance(first, o)
	}
	for len(pivots) < k {
		var best metric.Object
		bd := -1.0
		for i, o := range s {
			if contains(pivots, o) {
				continue
			}
			if minDist[i] > bd {
				bd, best = minDist[i], o
			}
		}
		if best == nil {
			break
		}
		pivots = append(pivots, best)
		for i, o := range s {
			if d := dist.Distance(best, o); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return pivots
}

// SSS is sparse spatial selection (Brisaboa et al.): scanning in random
// order, an object becomes a pivot when its distance to every chosen pivot
// is at least Alpha × d+, so pivot density adapts to the dataset's span.
type SSS struct {
	// Alpha controls pivot density; 0 means the customary 0.35.
	Alpha float64
	// MaxSample bounds the scan; 0 means 5000.
	MaxSample int
}

// Name implements Selector.
func (SSS) Name() string { return "SSS" }

// Select implements Selector.
func (s SSS) Select(objs []metric.Object, dist metric.DistanceFunc, k int, rng *rand.Rand) []metric.Object {
	rng = defaultRNG(rng)
	alpha := s.Alpha
	if alpha == 0 {
		alpha = 0.35
	}
	ms := s.MaxSample
	if ms == 0 {
		ms = 5000
	}
	scan := sample(objs, ms, rng)
	if k <= 0 || len(scan) == 0 {
		return nil
	}
	dPlus := dist.MaxDistance()
	threshold := alpha * dPlus
	pivots := []metric.Object{scan[0]}
	for _, o := range scan[1:] {
		if len(pivots) >= k {
			break
		}
		ok := true
		for _, p := range pivots {
			if dist.Distance(o, p) < threshold {
				ok = false
				break
			}
		}
		if ok {
			pivots = append(pivots, o)
		}
	}
	// The threshold may admit fewer than k pivots; relax by halving until
	// filled so callers always get k when the dataset allows.
	for len(pivots) < k && threshold > 1e-9 {
		threshold /= 2
		for _, o := range scan {
			if len(pivots) >= k {
				break
			}
			if contains(pivots, o) {
				continue
			}
			ok := true
			for _, p := range pivots {
				if dist.Distance(o, p) < threshold {
					ok = false
					break
				}
			}
			if ok {
				pivots = append(pivots, o)
			}
		}
	}
	return pivots
}
