// Package pivot implements the pivot-selection algorithms evaluated in the
// paper (Section 3.2 and Fig. 9): the outlier-based HF and FFT heuristics,
// the density-controlled SSS, the minimum-correlation "Spacing" method, a
// PCA-style variance method, and the paper's own contribution HFI — HF
// candidate generation followed by incremental selection that maximizes the
// precision criterion of Definition 1.
package pivot

import (
	"math/rand"

	"spbtree/internal/metric"
)

// Selector chooses k pivots from a dataset.
type Selector interface {
	// Select returns up to k pivots drawn from objs. Implementations sample
	// internally to stay cheap on large datasets; rng seeds that sampling
	// (nil falls back to a fixed seed for reproducibility).
	Select(objs []metric.Object, dist metric.DistanceFunc, k int, rng *rand.Rand) []metric.Object
	// Name identifies the algorithm in benchmark output.
	Name() string
}

// Pair is a sampled object pair with its precomputed distance, used by the
// precision criterion.
type Pair struct {
	A, B metric.Object
	D    float64
}

// SamplePairs draws n random object pairs with positive distance.
func SamplePairs(objs []metric.Object, dist metric.DistanceFunc, n int, rng *rand.Rand) []Pair {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	pairs := make([]Pair, 0, n)
	if len(objs) < 2 {
		return pairs
	}
	for attempts := 0; len(pairs) < n && attempts < 4*n; attempts++ {
		a := objs[rng.Intn(len(objs))]
		b := objs[rng.Intn(len(objs))]
		if a == b {
			continue
		}
		d := dist.Distance(a, b)
		if d <= 0 {
			continue
		}
		pairs = append(pairs, Pair{A: a, B: b, D: d})
	}
	return pairs
}

// Precision evaluates a pivot set per Definition 1 of the paper: the mean
// over sampled pairs of D(φ(a), φ(b)) / d(a, b), where D is the L∞ distance
// in the mapped space. Values approach 1 as the mapping preserves more of
// the original proximity; higher is better.
func Precision(pivots []metric.Object, pairs []Pair, dist metric.DistanceFunc) float64 {
	if len(pairs) == 0 || len(pivots) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pairs {
		var lb float64
		for _, pv := range pivots {
			da := dist.Distance(p.A, pv)
			db := dist.Distance(p.B, pv)
			if diff := abs(da - db); diff > lb {
				lb = diff
			}
		}
		sum += lb / p.D
	}
	return sum / float64(len(pairs))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sample returns up to n objects drawn without replacement.
func sample(objs []metric.Object, n int, rng *rand.Rand) []metric.Object {
	if len(objs) <= n {
		out := make([]metric.Object, len(objs))
		copy(out, objs)
		return out
	}
	idx := rng.Perm(len(objs))[:n]
	out := make([]metric.Object, n)
	for i, j := range idx {
		out[i] = objs[j]
	}
	return out
}

func defaultRNG(rng *rand.Rand) *rand.Rand {
	if rng == nil {
		return rand.New(rand.NewSource(1))
	}
	return rng
}

// contains reports whether o is already in set (by pointer identity, which
// is how all selectors here track chosen pivots).
func contains(set []metric.Object, o metric.Object) bool {
	for _, s := range set {
		if s == o {
			return true
		}
	}
	return false
}
