package pivot

import (
	"math/rand"

	"spbtree/internal/metric"
)

// HFI is the paper's pivot-selection contribution (Section 3.2, Appendix A):
// HF-based Incremental selection. HF first harvests a small candidate set CP
// of outliers (the paper fixes |CP| = 40); then pivots are chosen from CP
// one at a time, each maximizing the precision criterion of Definition 1 —
// the mean ratio between mapped-space and metric-space distances over a
// sample of object pairs. The rationale: good pivots are usually outliers,
// but outliers are not always good pivots, so candidate generation is
// outlier-driven while the final choice is precision-driven.
//
// Complexity is O(|O| + |P||CP|) distance-vector work as in the paper; the
// pair distances to every candidate are computed once, so each incremental
// round only takes max/ratio arithmetic.
type HFI struct {
	// Candidates is |CP|; 0 means the paper's 40.
	Candidates int
	// SamplePairs is the number of object pairs the precision criterion
	// averages over; 0 means 500.
	SamplePairs int
	// MaxSample bounds the HF scan; 0 means 5000.
	MaxSample int
}

// Name implements Selector.
func (HFI) Name() string { return "HFI" }

// Select implements Selector.
func (h HFI) Select(objs []metric.Object, dist metric.DistanceFunc, k int, rng *rand.Rand) []metric.Object {
	rng = defaultRNG(rng)
	nc := h.Candidates
	if nc == 0 {
		nc = 40
	}
	np := h.SamplePairs
	if np == 0 {
		np = 500
	}
	if k <= 0 || len(objs) == 0 {
		return nil
	}

	cands := HF{MaxSample: h.MaxSample}.Select(objs, dist, nc, rng)
	if len(cands) <= k {
		return cands
	}
	pairs := SamplePairs(objs, dist, np, rng)
	if len(pairs) == 0 {
		return cands[:k]
	}

	// cd[t][c] = |d(pairs[t].A, cands[c]) - d(pairs[t].B, cands[c])|, the
	// lower-bound contribution candidate c makes to pair t.
	cd := make([][]float64, len(pairs))
	for t, p := range pairs {
		row := make([]float64, len(cands))
		for c, cand := range cands {
			row[c] = abs(dist.Distance(p.A, cand) - dist.Distance(p.B, cand))
		}
		cd[t] = row
	}

	cur := make([]float64, len(pairs)) // best lower bound per pair so far
	var chosen []int
	for len(chosen) < k {
		best := -1
		bestScore := -1.0
		for c := range cands {
			if intContains(chosen, c) {
				continue
			}
			var score float64
			for t, p := range pairs {
				lb := cur[t]
				if cd[t][c] > lb {
					lb = cd[t][c]
				}
				score += lb / p.D
			}
			if score > bestScore {
				bestScore, best = score, c
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		for t := range pairs {
			if cd[t][best] > cur[t] {
				cur[t] = cd[t][best]
			}
		}
	}
	out := make([]metric.Object, len(chosen))
	for i, c := range chosen {
		out[i] = cands[c]
	}
	return out
}
