package pivot

import (
	"math"
	"math/rand"

	"spbtree/internal/metric"
)

// Spacing is the minimum-correlation vantage selection of van Leuken and
// Veltkamp: each next pivot's distance vector (its distances to a sample of
// objects) has the smallest maximum Pearson correlation with the vectors of
// the pivots chosen so far, spreading objects evenly in the mapped space.
type Spacing struct {
	// Candidates is the number of candidate pivots considered; 0 means 40.
	Candidates int
	// SampleObjects is the size of the reference sample whose distance
	// vectors are correlated; 0 means 200.
	SampleObjects int
}

// Name implements Selector.
func (Spacing) Name() string { return "Spacing" }

// Select implements Selector.
func (s Spacing) Select(objs []metric.Object, dist metric.DistanceFunc, k int, rng *rand.Rand) []metric.Object {
	rng = defaultRNG(rng)
	nc := s.Candidates
	if nc == 0 {
		nc = 40
	}
	no := s.SampleObjects
	if no == 0 {
		no = 200
	}
	if k <= 0 || len(objs) == 0 {
		return nil
	}
	cands := sample(objs, nc, rng)
	ref := sample(objs, no, rng)
	vecs := distanceVectors(cands, ref, dist)

	// Start with the candidate of maximal distance-vector variance, a
	// stand-in for the most discriminating vantage object.
	firstIdx := 0
	bestVar := -1.0
	for i := range cands {
		if v := variance(vecs[i]); v > bestVar {
			bestVar, firstIdx = v, i
		}
	}
	chosen := []int{firstIdx}
	for len(chosen) < k && len(chosen) < len(cands) {
		best := -1
		bestScore := math.Inf(1)
		for i := range cands {
			if intContains(chosen, i) {
				continue
			}
			// Maximum absolute correlation with any chosen pivot: lower is
			// better.
			var worst float64
			for _, j := range chosen {
				if c := math.Abs(correlation(vecs[i], vecs[j])); c > worst {
					worst = c
				}
			}
			if worst < bestScore {
				bestScore, best = worst, i
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
	}
	out := make([]metric.Object, len(chosen))
	for i, j := range chosen {
		out[i] = cands[j]
	}
	return out
}

// PCA is the variance-maximizing selection in the spirit of Mao et al.'s
// "pivot selection: dimension reduction for distance-based indexing": the
// first pivot maximizes the variance of its distance vector over a sample;
// each further pivot maximizes the residual variance after Gram-Schmidt
// removal of the components already covered by chosen pivots, approximating
// successive principal components of the distance matrix.
type PCA struct {
	// Candidates is the number of candidate pivots considered; 0 means 40.
	Candidates int
	// SampleObjects is the reference sample size; 0 means 200.
	SampleObjects int
}

// Name implements Selector.
func (PCA) Name() string { return "PCA" }

// Select implements Selector.
func (p PCA) Select(objs []metric.Object, dist metric.DistanceFunc, k int, rng *rand.Rand) []metric.Object {
	rng = defaultRNG(rng)
	nc := p.Candidates
	if nc == 0 {
		nc = 40
	}
	no := p.SampleObjects
	if no == 0 {
		no = 200
	}
	if k <= 0 || len(objs) == 0 {
		return nil
	}
	cands := sample(objs, nc, rng)
	ref := sample(objs, no, rng)
	vecs := distanceVectors(cands, ref, dist)

	// Center the vectors so variance and projections work on deviations.
	resid := make([][]float64, len(vecs))
	for i, v := range vecs {
		resid[i] = center(v)
	}
	var chosen []int
	for len(chosen) < k && len(chosen) < len(cands) {
		best := -1
		bestVar := -1.0
		for i := range cands {
			if intContains(chosen, i) {
				continue
			}
			if v := sumSquares(resid[i]); v > bestVar {
				bestVar, best = v, i
			}
		}
		if best < 0 || bestVar <= 0 {
			break
		}
		chosen = append(chosen, best)
		// Remove the chosen direction from every remaining residual.
		dir := normalize(resid[best])
		for i := range resid {
			if intContains(chosen, i) {
				continue
			}
			proj := dot(resid[i], dir)
			for j := range resid[i] {
				resid[i][j] -= proj * dir[j]
			}
		}
	}
	out := make([]metric.Object, len(chosen))
	for i, j := range chosen {
		out[i] = cands[j]
	}
	return out
}

// Random selects pivots uniformly at random; the baseline the M-Index uses
// in the paper's Table 6 setup.
type Random struct{}

// Name implements Selector.
func (Random) Name() string { return "Random" }

// Select implements Selector.
func (Random) Select(objs []metric.Object, dist metric.DistanceFunc, k int, rng *rand.Rand) []metric.Object {
	rng = defaultRNG(rng)
	return sample(objs, k, rng)
}

func distanceVectors(cands, ref []metric.Object, dist metric.DistanceFunc) [][]float64 {
	vecs := make([][]float64, len(cands))
	for i, c := range cands {
		v := make([]float64, len(ref))
		for j, o := range ref {
			v[j] = dist.Distance(c, o)
		}
		vecs[i] = v
	}
	return vecs
}

func intContains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func variance(v []float64) float64 {
	m := mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

func center(v []float64) []float64 {
	m := mean(v)
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x - m
	}
	return out
}

func sumSquares(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalize(v []float64) []float64 {
	n := math.Sqrt(sumSquares(v))
	out := make([]float64, len(v))
	if n == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / n
	}
	return out
}

func correlation(a, b []float64) float64 {
	ma, mb := mean(a), mean(b)
	var num, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		num += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return num / math.Sqrt(va*vb)
}
