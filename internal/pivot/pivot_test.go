package pivot

import (
	"math"
	"math/rand"
	"testing"

	"spbtree/internal/metric"
)

// clusteredVectors builds a 2-d dataset with a few Gaussian clusters plus
// clear outliers at the corners, so outlier-driven selectors have targets.
func clusteredVectors(n int, rng *rand.Rand) []metric.Object {
	objs := make([]metric.Object, 0, n+4)
	centers := [][2]float64{{0.3, 0.3}, {0.7, 0.6}, {0.5, 0.8}}
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		objs = append(objs, metric.NewVector(uint64(i), []float64{
			clamp(c[0] + 0.05*rng.NormFloat64()),
			clamp(c[1] + 0.05*rng.NormFloat64()),
		}))
	}
	corners := [][2]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i, c := range corners {
		objs = append(objs, metric.NewVector(uint64(n+i), []float64{c[0], c[1]}))
	}
	return objs
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func allSelectors() []Selector {
	return []Selector{HF{}, FFT{}, SSS{}, Spacing{}, PCA{}, HFI{}, Random{}}
}

func TestSelectorsReturnKDistinctPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	objs := clusteredVectors(300, rng)
	dist := metric.L2(2)
	for _, sel := range allSelectors() {
		for _, k := range []int{1, 3, 5, 9} {
			got := sel.Select(objs, dist, k, rand.New(rand.NewSource(7)))
			if len(got) != k {
				t.Errorf("%s: Select k=%d returned %d pivots", sel.Name(), k, len(got))
				continue
			}
			seen := map[metric.Object]bool{}
			for _, p := range got {
				if seen[p] {
					t.Errorf("%s: duplicate pivot", sel.Name())
				}
				seen[p] = true
				if p == nil {
					t.Errorf("%s: nil pivot", sel.Name())
				}
			}
		}
	}
}

func TestSelectorsDegenerateInputs(t *testing.T) {
	dist := metric.L2(2)
	small := []metric.Object{
		metric.NewVector(0, []float64{0, 0}),
		metric.NewVector(1, []float64{1, 1}),
	}
	for _, sel := range allSelectors() {
		if got := sel.Select(nil, dist, 3, nil); len(got) != 0 {
			t.Errorf("%s: empty dataset returned %d pivots", sel.Name(), len(got))
		}
		if got := sel.Select(small, dist, 0, nil); len(got) != 0 {
			t.Errorf("%s: k=0 returned %d pivots", sel.Name(), len(got))
		}
		// Asking for more pivots than objects must not panic or loop.
		got := sel.Select(small, dist, 10, nil)
		if len(got) > 2 {
			t.Errorf("%s: returned %d pivots from 2 objects", sel.Name(), len(got))
		}
	}
}

func TestPrecisionMonotoneInPivotCount(t *testing.T) {
	// Definition 1: adding a pivot can only raise each pair's lower bound,
	// so precision is monotone when pivot sets are nested.
	rng := rand.New(rand.NewSource(3))
	objs := clusteredVectors(200, rng)
	dist := metric.L2(2)
	pairs := SamplePairs(objs, dist, 200, rng)
	pivots := HFI{}.Select(objs, dist, 6, rng)
	prev := 0.0
	for k := 1; k <= len(pivots); k++ {
		p := Precision(pivots[:k], pairs, dist)
		if p < prev-1e-12 {
			t.Fatalf("precision decreased from %v to %v at k=%d", prev, p, k)
		}
		if p < 0 || p > 1+1e-9 {
			t.Fatalf("precision %v out of [0,1]", p)
		}
		prev = p
	}
}

func TestPrecisionUpperBound(t *testing.T) {
	// The mapped L∞ distance lower-bounds the metric distance, so every
	// ratio — and hence the mean — is at most 1.
	rng := rand.New(rand.NewSource(5))
	objs := clusteredVectors(150, rng)
	dist := metric.L2(2)
	pairs := SamplePairs(objs, dist, 300, rng)
	for _, sel := range allSelectors() {
		pv := sel.Select(objs, dist, 5, rng)
		if p := Precision(pv, pairs, dist); p > 1+1e-9 {
			t.Errorf("%s: precision %v exceeds 1 — lower-bound property broken", sel.Name(), p)
		}
	}
}

func TestHFIBeatsRandomPrecision(t *testing.T) {
	// The point of HFI (Fig. 9): its pivots give higher precision than
	// random selection. Use disjoint rngs for selection and evaluation.
	rng := rand.New(rand.NewSource(11))
	objs := clusteredVectors(400, rng)
	dist := metric.L2(2)
	evalPairs := SamplePairs(objs, dist, 400, rand.New(rand.NewSource(99)))

	var hfiP, rndP float64
	for trial := 0; trial < 5; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		hfiP += Precision(HFI{}.Select(objs, dist, 4, r), evalPairs, dist)
		rndP += Precision(Random{}.Select(objs, dist, 4, r), evalPairs, dist)
	}
	if hfiP <= rndP {
		t.Errorf("HFI mean precision %v should beat Random %v", hfiP/5, rndP/5)
	}
}

func TestHFPicksOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	objs := clusteredVectors(300, rng)
	dist := metric.L2(2)
	pivots := HF{}.Select(objs, dist, 2, rng)
	// The two foci should be nearly a diameter apart (corners exist).
	d := dist.Distance(pivots[0], pivots[1])
	if d < 1.0 {
		t.Errorf("HF foci distance %v, want close to the diameter %v", d, math.Sqrt2)
	}
}

func TestFFTSpreadsPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	objs := clusteredVectors(300, rng)
	dist := metric.L2(2)
	pivots := FFT{}.Select(objs, dist, 4, rng)
	for i := 0; i < len(pivots); i++ {
		for j := i + 1; j < len(pivots); j++ {
			if d := dist.Distance(pivots[i], pivots[j]); d < 0.3 {
				t.Errorf("FFT pivots %d,%d only %v apart", i, j, d)
			}
		}
	}
}

func TestSSSRespectsAlphaSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	objs := clusteredVectors(300, rng)
	dist := metric.L2(2)
	// With a huge k, SSS fills by relaxing; with k=2 the first two pivots
	// must respect alpha*d+ spacing.
	pivots := SSS{Alpha: 0.35}.Select(objs, dist, 2, rng)
	if len(pivots) == 2 {
		if d := dist.Distance(pivots[0], pivots[1]); d < 0.35*dist.MaxDistance()-1e-9 {
			t.Errorf("SSS pivots %v apart, want >= %v", d, 0.35*dist.MaxDistance())
		}
	}
}

func TestSamplePairsSkipsZeroDistance(t *testing.T) {
	objs := []metric.Object{
		metric.NewVector(0, []float64{0.5, 0.5}),
		metric.NewVector(1, []float64{0.5, 0.5}),
		metric.NewVector(2, []float64{0.9, 0.9}),
	}
	pairs := SamplePairs(objs, metric.L2(2), 50, rand.New(rand.NewSource(1)))
	for _, p := range pairs {
		if p.D <= 0 {
			t.Fatalf("pair with distance %v", p.D)
		}
	}
}

func TestPrecisionEmptyInputs(t *testing.T) {
	if p := Precision(nil, nil, metric.L2(2)); p != 0 {
		t.Errorf("Precision(nil,nil) = %v", p)
	}
}

func TestSelectorsWorkOnStrings(t *testing.T) {
	// Generic-metric check: selectors must not assume vectors.
	rng := rand.New(rand.NewSource(23))
	words := []string{"cat", "cart", "car", "dog", "dig", "dug", "zebra", "zero",
		"apple", "appeal", "apply", "maple", "staple", "stable", "table", "cable"}
	objs := make([]metric.Object, len(words))
	for i, w := range words {
		objs[i] = metric.NewStr(uint64(i), w)
	}
	dist := metric.EditDistance{MaxLen: 8}
	for _, sel := range allSelectors() {
		got := sel.Select(objs, dist, 3, rng)
		if len(got) != 3 {
			t.Errorf("%s on strings: %d pivots", sel.Name(), len(got))
		}
	}
}
