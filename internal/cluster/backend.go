package cluster

import (
	"context"
	"fmt"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/metric"
)

// ServerBackend adapts a Router to the HTTP serving layer's backend seam
// (internal/server.Backend, satisfied structurally): spbserve's -cluster
// mode mounts one of these, and the whole HTTP surface — queries with
// partial results, mutations, /v1/stats — fronts the cluster without the
// serving layer knowing about nodes or placement. Per-node failures arrive
// at HTTP clients as partial results plus the canceled/error markers the
// single-tree server already emits.
type ServerBackend struct {
	R *Router
	// Curve names the cluster's SFC family for /v1/stats ("hilbert" or
	// "zorder") and gates joins.
	Curve string
}

// statsTimeout bounds the node fan-outs behind Len/StatsFields — liveness
// endpoints must answer even with a node down.
const statsTimeout = 2 * time.Second

// RangeSearchWithStatsCtx implements the backend query surface.
func (b *ServerBackend) RangeSearchWithStatsCtx(ctx context.Context, q metric.Object, r float64) ([]core.Result, core.QueryStats, error) {
	return b.R.Range(ctx, q, r)
}

// KNNWithStatsCtx implements the backend query surface.
func (b *ServerBackend) KNNWithStatsCtx(ctx context.Context, q metric.Object, k int) ([]core.Result, core.QueryStats, error) {
	return b.R.KNN(ctx, q, k)
}

// KNNApproxWithStatsCtx implements the backend query surface.
func (b *ServerBackend) KNNApproxWithStatsCtx(ctx context.Context, q metric.Object, k, maxVerify int) ([]core.Result, core.QueryStats, error) {
	return b.R.KNNApprox(ctx, q, k, maxVerify)
}

// SelfJoinWithStatsCtx implements the backend join surface as the cluster
// self-join.
func (b *ServerBackend) SelfJoinWithStatsCtx(ctx context.Context, eps float64) ([]core.IDPair, core.QueryStats, error) {
	start := time.Now()
	pairs, err := b.R.Join(ctx, eps)
	qs := core.QueryStats{Op: core.OpJoin, Results: len(pairs), Elapsed: time.Since(start)}
	return pairs, qs, err
}

// CanJoin reports whether the cluster's curve supports similarity joins.
func (b *ServerBackend) CanJoin() error {
	if b.Curve != "zorder" {
		return fmt.Errorf("similarity joins need a Z-order cluster (this one uses %s)", b.Curve)
	}
	return nil
}

// Insert implements the backend write surface.
func (b *ServerBackend) Insert(ctx context.Context, obj metric.Object) error {
	return b.R.Insert(ctx, obj)
}

// Delete implements the backend write surface.
func (b *ServerBackend) Delete(ctx context.Context, obj metric.Object) error {
	return b.R.Delete(ctx, obj)
}

// Writable implements the backend write surface: cluster shards are always
// durable trees.
func (b *ServerBackend) Writable() bool { return true }

// Len totals the cluster's live objects (best effort: down nodes
// contribute nothing).
func (b *ServerBackend) Len() int {
	ctx, cancel := context.WithTimeout(context.Background(), statsTimeout)
	defer cancel()
	return b.R.Stats(ctx).Objects()
}

// Delta implements the backend surface; per-node deltas are reported in
// StatsFields instead of one number here.
func (b *ServerBackend) Delta() int { return 0 }

// StatsFields contributes the cluster's shape to /v1/stats: totals,
// per-node snapshots, the live placement, and any per-node fetch failures.
func (b *ServerBackend) StatsFields() map[string]interface{} {
	ctx, cancel := context.WithTimeout(context.Background(), statsTimeout)
	defer cancel()
	cs := b.R.Stats(ctx)
	storage := int64(0)
	nodes := make([]map[string]interface{}, 0, len(cs.Nodes))
	for _, n := range cs.Nodes {
		shards := make([]map[string]interface{}, 0, len(n.Shards))
		for _, sh := range n.Shards {
			storage += sh.StorageBytes
			shards = append(shards, map[string]interface{}{
				"id": sh.ID, "objects": sh.Objects, "delta": sh.Delta,
				"storage_bytes": sh.StorageBytes, "frozen": sh.Frozen,
			})
		}
		nodes = append(nodes, map[string]interface{}{"name": n.Name, "shards": shards})
	}
	m := map[string]interface{}{
		"objects":       cs.Objects(),
		"curve":         b.Curve,
		"storage_bytes": storage,
		"cluster": map[string]interface{}{
			"placement_version": cs.Placement.Version,
			"shards":            cs.Placement.Shards,
			"nodes":             nodes,
			"adaptive":          b.R.Adaptive(),
		},
	}
	if len(cs.Errors) > 0 {
		m["cluster_errors"] = cs.Errors
	}
	return m
}
