package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/dataset"
	"spbtree/internal/forest"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// testCluster is an in-process 3-node cluster plus the reference forest it
// must answer identically to.
type testCluster struct {
	router *Router
	nodes  []*Node
	ref    *forest.Forest
	objs   []metric.Object
	ds     dataset.Dataset
}

// startCluster bootstraps ds across three in-process nodes (real TCP on
// loopback) and builds the byte-identical reference forest over the same
// objects and options.
func startCluster(t *testing.T, ds dataset.Dataset, shards int) *testCluster {
	t.Helper()
	root := t.TempDir()
	treeOpts := core.Options{Distance: ds.Distance, Codec: ds.Codec,
		Curve: sfc.ZOrder, Seed: 1, Workers: 1}
	names := []string{"n1", "n2", "n3"}
	cfg := &Config{Type: "words", Shards: shards, Curve: "zorder"}
	for _, n := range names {
		cfg.Nodes = append(cfg.Nodes, NodeDef{Name: n, Addr: "pending"})
	}
	placement, err := Bootstrap(cfg, ds.Objects, BootstrapOptions{Dir: root, Tree: treeOpts})
	if err != nil {
		t.Fatal(err)
	}

	tc := &testCluster{objs: ds.Objects, ds: ds}
	for _, name := range names {
		node, err := OpenNode(NodeConfig{
			Name: name, Dir: NodeDir(root, name),
			Load: core.LoadOptions{Distance: ds.Distance, Codec: ds.Codec, Workers: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		placement.Nodes[name] = ln.Addr().String()
		go node.Serve(ln)
		tc.nodes = append(tc.nodes, node)
	}
	t.Cleanup(func() {
		for _, n := range tc.nodes {
			n.Close()
		}
	})

	tc.router, err = NewRouter(placement, ds.Codec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tc.router.Close() })

	tc.ref, err = forest.Build(ds.Objects, forest.Options{Tree: treeOpts, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// node returns the test node by placement name.
func (tc *testCluster) node(name string) *Node {
	for _, n := range tc.nodes {
		if n.cfg.Name == name {
			return n
		}
	}
	return nil
}

// sameResults asserts byte-identical answers: same IDs, distances, and
// exactness flags in the same order.
func sameResults(t *testing.T, label string, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Object.ID() != want[i].Object.ID() ||
			got[i].Dist != want[i].Dist || got[i].Exact != want[i].Exact {
			t.Fatalf("%s: result %d = (id %d, dist %v, exact %v), want (id %d, dist %v, exact %v)",
				label, i, got[i].Object.ID(), got[i].Dist, got[i].Exact,
				want[i].Object.ID(), want[i].Dist, want[i].Exact)
		}
	}
}

// equivalenceCase runs the full equivalence suite for one dataset: range,
// kNN and join answers from the 3-node cluster must match the
// single-process forest byte for byte, and — queries being deterministic
// with Workers=1 — so must the compdists work counters.
func equivalenceCase(t *testing.T, ds dataset.Dataset, radii []float64, eps float64) {
	tc := startCluster(t, ds, 4)
	ctx := context.Background()
	for qi := 0; qi < 6; qi++ {
		q := tc.objs[(qi*97)%len(tc.objs)]
		for _, r := range radii {
			got, gotStats, err := tc.router.Range(ctx, q, r)
			if err != nil {
				t.Fatalf("cluster range: %v", err)
			}
			want, wantStats, err := tc.ref.RangeQueryWithStatsCtx(ctx, q, r)
			if err != nil {
				t.Fatalf("forest range: %v", err)
			}
			sameResults(t, fmt.Sprintf("range q%d r=%v", qi, r), got, want)
			if gotStats.Compdists != wantStats.Compdists {
				t.Fatalf("range q%d r=%v: cluster compdists %d, forest %d",
					qi, r, gotStats.Compdists, wantStats.Compdists)
			}
		}
		for _, k := range []int{1, 10} {
			got, gotStats, err := tc.router.KNN(ctx, q, k)
			if err != nil {
				t.Fatalf("cluster knn: %v", err)
			}
			want, wantStats, err := tc.ref.KNNWithStatsCtx(ctx, q, k)
			if err != nil {
				t.Fatalf("forest knn: %v", err)
			}
			sameResults(t, fmt.Sprintf("knn q%d k=%d", qi, k), got, want)
			if gotStats.Compdists != wantStats.Compdists {
				t.Fatalf("knn q%d k=%d: cluster compdists %d, forest %d",
					qi, k, gotStats.Compdists, wantStats.Compdists)
			}
		}
	}

	gotPairs, err := tc.router.Join(ctx, eps)
	if err != nil {
		t.Fatalf("cluster join: %v", err)
	}
	refPairs, err := forest.Join(tc.ref, tc.ref, eps)
	if err != nil {
		t.Fatalf("forest join: %v", err)
	}
	wantPairs := core.IDPairs(refPairs)
	core.SortIDPairs(wantPairs)
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("join: %d pairs, want %d", len(gotPairs), len(wantPairs))
	}
	for i := range gotPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("join pair %d = %+v, want %+v", i, gotPairs[i], wantPairs[i])
		}
	}
	if len(wantPairs) == 0 {
		t.Fatalf("join produced no pairs; raise eps so the test asserts something")
	}
}

func TestClusterEquivalenceWords(t *testing.T) {
	equivalenceCase(t, dataset.Words(900, 7), []float64{1, 2}, 1)
}

func TestClusterEquivalenceColor(t *testing.T) {
	equivalenceCase(t, dataset.Color(600, 8), []float64{0.05, 0.12}, 0.04)
}

func TestClusterEquivalenceDNAEdit(t *testing.T) {
	equivalenceCase(t, dataset.DNAEdit(200, 9), []float64{8, 14}, 10)
}

// TestClusterNodeDownPartials: with one node down, queries return the
// healthy nodes' full answers plus one typed NodeError naming the dead
// node — within the deadline, never hanging.
func TestClusterNodeDownPartials(t *testing.T) {
	ds := dataset.Words(600, 11)
	tc := startCluster(t, ds, 4)
	p := tc.router.Placement()

	// Kill a node that owns at least one shard but NOT the query's own
	// shard, so the partial answer is guaranteed non-empty (it contains at
	// least the query object itself).
	q := tc.objs[3]
	qOwner := p.Owners[forest.PartitionOf(q.ID(), p.Shards)]
	var victim string
	for name, shards := range p.ByOwner() {
		if len(shards) > 0 && name != qOwner {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("placement gave every shard to one node; ring is broken")
	}
	deadShards := p.ShardsOf(victim)
	tc.node(victim).Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	got, _, err := tc.router.Range(ctx, q, 2)
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("query with a down node took %v; partials must come back fast", elapsed)
	}
	if err == nil {
		t.Fatal("want a NodeError for the down node, got nil")
	}
	nes := AsNodeErrors(err)
	if len(nes) != 1 || nes[0].Node != victim {
		t.Fatalf("NodeErrors = %+v, want exactly one naming %s", nes, victim)
	}

	// The partial answer is exactly the reference minus the dead node's
	// shards.
	dead := make(map[int]bool)
	for _, s := range deadShards {
		dead[s] = true
	}
	full, err2 := tc.ref.RangeQuery(q, 2)
	if err2 != nil {
		t.Fatal(err2)
	}
	var want []core.Result
	for _, res := range full {
		if !dead[forest.PartitionOf(res.Object.ID(), p.Shards)] {
			want = append(want, res)
		}
	}
	sameResults(t, "partials", got, want)
	if len(want) == 0 {
		t.Fatal("surviving shards contributed nothing; enlarge the radius")
	}
}

// TestClusterMidQueryKill: a node dying while serving a query (not before)
// still yields partials plus a typed per-node error within the deadline.
func TestClusterMidQueryKill(t *testing.T) {
	ds := dataset.Words(600, 13)
	tc := startCluster(t, ds, 4)
	p := tc.router.Placement()
	// The query object's own shard must survive the kill, so the answer is
	// guaranteed non-empty (it contains at least the query itself).
	q := tc.objs[5]
	qShard := forest.PartitionOf(q.ID(), p.Shards)
	var victim string
	for name, shards := range p.ByOwner() {
		if len(shards) > 0 && name != p.Owners[qShard] {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("placement gave every shard to one node; ring is broken")
	}
	node := tc.node(victim)
	var once sync.Once
	node.OnRequest = func(kind byte) {
		if kind == kRange {
			once.Do(func() { node.Close() }) // die mid-request
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	got, _, err := tc.router.Range(ctx, q, 2)
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("mid-query kill took %v to surface", elapsed)
	}
	if err == nil {
		t.Fatal("want a NodeError for the killed node, got nil")
	}
	nes := AsNodeErrors(err)
	found := false
	for _, ne := range nes {
		if ne.Node == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("NodeErrors = %+v, want one naming %s", nes, victim)
	}
	// Healthy nodes' answers still arrived.
	if len(got) == 0 {
		t.Fatal("no partial results survived the kill")
	}
}

// TestClusterDeadlinePropagation: an expired caller deadline surfaces as
// core.ErrCanceled (wrapped in NodeErrors), not as a hang or a generic
// failure.
func TestClusterDeadlinePropagation(t *testing.T) {
	ds := dataset.Words(400, 17)
	tc := startCluster(t, ds, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := tc.router.Range(ctx, tc.objs[0], 2)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if !errors.Is(err, core.ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled/context.Canceled in the chain", err)
	}
}

// TestClusterMutations: inserts route to the hash-owner and become visible
// to queries; deletes remove; a second delete maps to core.ErrNotFound
// across the wire.
func TestClusterMutations(t *testing.T) {
	ds := dataset.Words(500, 19)
	tc := startCluster(t, ds, 4)
	ctx := context.Background()

	obj := metric.NewStr(100000, "zzyzzx")
	if err := tc.router.Insert(ctx, obj); err != nil {
		t.Fatalf("insert: %v", err)
	}
	got, _, err := tc.router.Range(ctx, obj, 0)
	if err != nil {
		t.Fatalf("range after insert: %v", err)
	}
	found := false
	for _, res := range got {
		if res.Object.ID() == obj.ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted object not visible to cluster queries")
	}

	if err := tc.router.Delete(ctx, obj); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := tc.router.Delete(ctx, obj); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("second delete: err = %v, want ErrNotFound across the wire", err)
	}
}

// TestClusterStats: every node reports, totals match the dataset.
func TestClusterStats(t *testing.T) {
	ds := dataset.Words(500, 23)
	tc := startCluster(t, ds, 4)
	cs := tc.router.Stats(context.Background())
	if len(cs.Errors) != 0 {
		t.Fatalf("stats errors: %v", cs.Errors)
	}
	if got := cs.Objects(); got != len(tc.objs) {
		t.Fatalf("cluster reports %d objects, want %d", got, len(tc.objs))
	}
	shardCount := 0
	for _, n := range cs.Nodes {
		shardCount += len(n.Shards)
	}
	if shardCount != 4 {
		t.Fatalf("nodes report %d shards total, want 4", shardCount)
	}
}
