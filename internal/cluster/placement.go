package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// Placement is the cluster's shard-to-node assignment: which node serves
// each shard, and where each node listens. It is versioned so stale copies
// are detectable — every handoff bumps Version and flips exactly one
// shard's owner, atomically from any observer's point of view (routers swap
// the whole Placement pointer; see DESIGN.md §12.4 for the state machine).
type Placement struct {
	// Version increases monotonically with every ownership change.
	Version uint64
	// Shards is the forest's shard count (fixed at bootstrap; resharding is
	// out of scope — rebalancing moves whole shards instead).
	Shards int
	// Owners maps shard index → node name.
	Owners map[int]string
	// Nodes maps node name → listen address.
	Nodes map[string]string
}

// Clone deep-copies p, so a mutated copy can be swapped in without racing
// readers of the original.
func (p *Placement) Clone() *Placement {
	np := &Placement{Version: p.Version, Shards: p.Shards,
		Owners: make(map[int]string, len(p.Owners)),
		Nodes:  make(map[string]string, len(p.Nodes))}
	for s, n := range p.Owners {
		np.Owners[s] = n
	}
	for n, a := range p.Nodes {
		np.Nodes[n] = a
	}
	return np
}

// ShardsOf lists the shards node owns, ascending.
func (p *Placement) ShardsOf(node string) []int {
	var out []int
	for s, n := range p.Owners {
		if n == node {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// ByOwner groups all shards by owning node, each group ascending — the
// scatter plan: one RPC per node, carrying its group.
func (p *Placement) ByOwner() map[string][]int {
	out := make(map[string][]int)
	for s, n := range p.Owners {
		out[n] = append(out[n], s)
	}
	for _, shards := range out {
		sort.Ints(shards)
	}
	return out
}

// Validate checks internal consistency: every shard 0..Shards-1 has an
// owner, and every owner has an address.
func (p *Placement) Validate() error {
	if p.Shards < 1 {
		return fmt.Errorf("cluster: placement has %d shards", p.Shards)
	}
	for s := 0; s < p.Shards; s++ {
		owner, ok := p.Owners[s]
		if !ok {
			return fmt.Errorf("cluster: shard %d has no owner", s)
		}
		if _, ok := p.Nodes[owner]; !ok {
			return fmt.Errorf("cluster: shard %d owned by unknown node %q", s, owner)
		}
	}
	return nil
}

// ringVnodes is how many points each node contributes to the consistent-
// hash ring. 64 keeps the expected per-node shard imbalance a few percent
// at typical node counts while the ring stays tiny.
const ringVnodes = 64

// fnv64 hashes s with FNV-1a — stable across processes and Go versions
// (unlike maphash), which placement determinism requires — then avalanches
// the result. Raw FNV-1a is unusable as a ring hash: for short keys that
// differ only near the end ("shard-0".."shard-9"), the final multiply
// carries the difference only ~40 bits upward, leaving the high bits — and
// therefore the ring position — nearly identical, which clumps every shard
// onto one arc. The splitmix64 finalizer spreads each input bit across the
// whole word.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RingOwners assigns shards to nodes by consistent hashing: each node
// projects ringVnodes points onto a 64-bit ring (hash of "name#i"), and
// shard s belongs to the first point clockwise of hash("shard-<s>"). The
// assignment is deterministic in the node set alone, and adding or removing
// one node moves only the shards adjacent to its points — the property that
// keeps rebalancing incremental (DESIGN.md §12.3).
func RingOwners(nodes []string, shards int) map[int]string {
	if len(nodes) == 0 || shards < 1 {
		return nil
	}
	type point struct {
		pos  uint64
		node string
	}
	ring := make([]point, 0, len(nodes)*ringVnodes)
	for _, n := range nodes {
		for i := 0; i < ringVnodes; i++ {
			ring = append(ring, point{fnv64(fmt.Sprintf("%s#%d", n, i)), n})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].pos != ring[j].pos {
			return ring[i].pos < ring[j].pos
		}
		return ring[i].node < ring[j].node // deterministic on (vanishingly rare) collisions
	})
	owners := make(map[int]string, shards)
	for s := 0; s < shards; s++ {
		pos := fnv64(fmt.Sprintf("shard-%d", s))
		i := sort.Search(len(ring), func(i int) bool { return ring[i].pos >= pos })
		if i == len(ring) {
			i = 0 // wrap: first point clockwise past the ring's end
		}
		owners[s] = ring[i].node
	}
	return owners
}

// NodeDef names one cluster member in the config file.
type NodeDef struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// Config is the cluster description shared by every process (cmd/spbcluster
// init writes it; nodes, routers and the rebalance tool read it). The
// object-space fields mirror cmd/spbserve's index config so one file
// describes both how to talk to the data and where it lives.
type Config struct {
	// Type selects the object space: "vectors", "words", or "dna".
	Type string `json:"type"`
	// Dim is the vector dimensionality (vectors type).
	Dim int `json:"dim,omitempty"`
	// MaxLen is the maximum string length (words type; 0 means 64).
	MaxLen int `json:"maxlen,omitempty"`
	// Shards is the forest's partition count.
	Shards int `json:"shards"`
	// Curve is "hilbert" or "zorder" ("zorder" enables similarity joins).
	Curve string `json:"curve"`
	// Nodes lists the members; shard ownership at bootstrap is
	// RingOwners(names, Shards).
	Nodes []NodeDef `json:"nodes"`
}

// LoadConfig reads and validates a cluster config file.
func LoadConfig(path string) (*Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Config
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("cluster: parse %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return &c, nil
}

// Validate checks the config for internal consistency.
func (c *Config) Validate() error {
	switch c.Type {
	case "vectors", "words", "dna":
	default:
		return fmt.Errorf("unknown type %q (want vectors, words or dna)", c.Type)
	}
	if c.Type == "vectors" && c.Dim < 1 {
		return fmt.Errorf("vectors type needs dim >= 1")
	}
	if c.Shards < 1 {
		return fmt.Errorf("shards must be >= 1")
	}
	switch c.Curve {
	case "hilbert", "zorder", "":
	default:
		return fmt.Errorf("unknown curve %q (want hilbert or zorder)", c.Curve)
	}
	if len(c.Nodes) == 0 {
		return fmt.Errorf("at least one node required")
	}
	seen := make(map[string]bool, len(c.Nodes))
	for _, n := range c.Nodes {
		if n.Name == "" || n.Addr == "" {
			return fmt.Errorf("node needs both name and addr")
		}
		if seen[n.Name] {
			return fmt.Errorf("duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	return nil
}

// Space resolves the config's metric space: the distance function and
// codec every node, router and bootstrap of this cluster must share.
func (c *Config) Space() (metric.DistanceFunc, metric.Codec, error) {
	switch c.Type {
	case "vectors":
		return metric.L2(c.Dim), metric.VectorCodec{Dim: c.Dim}, nil
	case "words":
		maxLen := c.MaxLen
		if maxLen == 0 {
			maxLen = 64
		}
		return metric.EditDistance{MaxLen: maxLen}, metric.StrCodec{}, nil
	case "dna":
		return metric.TrigramAngular{}, metric.SeqCodec{}, nil
	}
	return nil, nil, fmt.Errorf("cluster: unknown type %q", c.Type)
}

// CurveKind resolves the config's SFC family (Hilbert unless "zorder").
func (c *Config) CurveKind() sfc.Kind {
	if c.Curve == "zorder" {
		return sfc.ZOrder
	}
	return sfc.Hilbert
}

// NodeNames lists the member names in config order.
func (c *Config) NodeNames() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Name
	}
	return out
}

// Placement derives the bootstrap placement: ring-assigned owners at
// version 1.
func (c *Config) Placement() *Placement {
	p := &Placement{Version: 1, Shards: c.Shards,
		Owners: RingOwners(c.NodeNames(), c.Shards),
		Nodes:  make(map[string]string, len(c.Nodes))}
	for _, n := range c.Nodes {
		p.Nodes[n.Name] = n.Addr
	}
	return p
}
