package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a multiplexing connection to one node: many concurrent calls
// share a single TCP connection, paired with their responses by request ID.
// A broken connection fails every pending call with the transport error and
// redials lazily on the next call — combined with retry.Do at the call
// sites, a node restart costs idempotent callers one backoff, not an error.
// Client is safe for concurrent use.
type Client struct {
	addr string

	mu      sync.Mutex // guards conn, pending, nextID, dialing
	conn    net.Conn
	pending map[uint64]chan []byte
	nextID  uint64

	writeMu sync.Mutex // serializes frame writes on conn
}

// NewClient returns a client for the node at addr. No connection is opened
// until the first call.
func NewClient(addr string) *Client {
	return &Client{addr: addr, pending: make(map[uint64]chan []byte)}
}

// Addr returns the node address this client dials.
func (c *Client) Addr() string { return c.addr }

// Close tears down the connection, failing pending calls.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// dialTimeout bounds one connection attempt — short, because the caller's
// retry loop (not a hung dial) is the mechanism for riding out a restart.
const dialTimeout = 2 * time.Second

// ensureConn returns the live connection, dialing if needed.
func (c *Client) ensureConn(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	if c.conn != nil {
		conn := c.conn
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	// Dial outside the lock so a slow dial doesn't block response dispatch
	// for calls on a racing dial's connection.
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.conn != nil { // another caller won the dial race
		existing := c.conn
		c.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	c.conn = conn
	c.mu.Unlock()
	go c.readLoop(conn)
	return conn, nil
}

// readLoop dispatches response frames to pending calls until the
// connection breaks, then fails everything still pending so no caller
// hangs on a dead node — the cluster-level guarantee that a down node
// yields a typed error, never a stuck query.
func (c *Client) readLoop(conn net.Conn) {
	for {
		reqID, _, payload, err := readFrame(conn)
		if err != nil {
			c.fail(conn, err)
			return
		}
		c.mu.Lock()
		ch := c.pending[reqID]
		delete(c.pending, reqID)
		c.mu.Unlock()
		if ch != nil {
			ch <- payload
		}
	}
}

// fail closes conn (if still current) and wakes every pending call with a
// closed channel, which they surface as a transport error.
func (c *Client) fail(conn net.Conn, err error) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	pending := c.pending
	c.pending = make(map[uint64]chan []byte)
	c.mu.Unlock()
	conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// Call performs one RPC: writes a frame of the given kind and decodes the
// response into resp (whose wire struct carries its own Err field — Call
// only surfaces transport-level failures; application errors arrive inside
// resp). It honors ctx while waiting, but does not cancel server-side work:
// deadline propagation (the DeadlineUS request fields) is the cross-process
// cancellation mechanism.
func (c *Client) Call(ctx context.Context, kind byte, req, resp interface{}) error {
	conn, err := c.ensureConn(ctx)
	if err != nil {
		return fmt.Errorf("cluster: dial %s: %w", c.addr, err)
	}
	ch := make(chan []byte, 1)
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err = writeFrame(conn, id, kind, req)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.fail(conn, err)
		return fmt.Errorf("cluster: write to %s: %w", c.addr, err)
	}

	select {
	case payload, ok := <-ch:
		if !ok {
			return fmt.Errorf("cluster: connection to %s lost: %w", c.addr, net.ErrClosed)
		}
		return decodePayload(payload, resp)
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// deadlineUS converts ctx's remaining budget to the wire's microsecond
// form: 0 when no deadline, floored at 1µs when one exists but has (all
// but) expired, so the receiver still sees an immediately-canceled context
// rather than an unbounded one.
func deadlineUS(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	us := time.Until(dl).Microseconds()
	if us < 1 {
		us = 1
	}
	return us
}
