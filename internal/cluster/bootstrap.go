package cluster

import (
	"fmt"
	"os"
	"path/filepath"

	"spbtree/internal/core"
	"spbtree/internal/forest"
	"spbtree/internal/metric"
)

// BootstrapOptions configures Bootstrap.
type BootstrapOptions struct {
	// Dir is the root under which each node's data directory is created
	// (Dir/<node-name>/shard-NNN); required.
	Dir string
	// Tree configures the shard trees (Distance and Codec required; leave
	// ShareMapping nil — Bootstrap fills it).
	Tree core.Options
	// Durable configures the shard trees' write path.
	Durable core.DurableOptions
}

// NodeDir is the data directory Bootstrap lays out for one node.
func NodeDir(root, node string) string { return filepath.Join(root, node) }

// Bootstrap builds a cluster's on-disk state from scratch: objs are
// hash-partitioned exactly like forest.Build (shard = id mod Shards), each
// partition becomes a durable shard tree in its ring-assigned owner's data
// directory, and — the invariant everything else rests on — every shard
// shares ONE pivot mapping, selected deterministically from partition 0
// exactly as the single-process forest selects it. A bootstrapped cluster
// therefore answers byte-identically to forest.Build over the same objects
// (same pivots, same quantization, same per-shard trees), which the
// equivalence tests assert dataset by dataset.
//
// Bootstrap runs in one process before any node starts; it returns the
// bootstrap placement for the caller to persist.
func Bootstrap(cfg *Config, objs []metric.Object, opts BootstrapOptions) (*Placement, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Tree.ShareMapping != nil {
		return nil, fmt.Errorf("cluster: Bootstrap selects the shared mapping itself; leave ShareMapping nil")
	}
	parts := forest.Partition(objs, cfg.Shards)
	for i, p := range parts {
		if len(p) == 0 {
			return nil, fmt.Errorf("cluster: shard %d is empty; fewer shards than distinct objects required", i)
		}
	}

	// Select the shared pivot mapping the way forest.Build does: from
	// partition 0, deterministically in Options.Seed. The throwaway tree
	// exists only to carry the mapping into ShareMapping.
	t0, err := core.Build(parts[0], opts.Tree)
	if err != nil {
		return nil, fmt.Errorf("cluster: bootstrap mapping: %w", err)
	}
	defer t0.Close()

	placement := cfg.Placement()
	for shard, part := range parts {
		owner := placement.Owners[shard]
		dir := filepath.Join(NodeDir(opts.Dir, owner), fmt.Sprintf("shard-%03d", shard))
		if err := os.MkdirAll(filepath.Dir(dir), 0o755); err != nil {
			return nil, err
		}
		shOpts := opts.Tree
		shOpts.ShareMapping = t0
		t, err := core.CreateDurable(dir, part, shOpts, opts.Durable)
		if err != nil {
			return nil, fmt.Errorf("cluster: bootstrap shard %d on %s: %w", shard, owner, err)
		}
		if err := t.Close(); err != nil {
			return nil, fmt.Errorf("cluster: bootstrap shard %d on %s: close: %w", shard, owner, err)
		}
	}
	return placement, nil
}
