package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/forest"
	"spbtree/internal/metric"
	"spbtree/internal/obs"
	"spbtree/internal/retry"
)

// Router fronts a cluster: it scatters each query to the nodes owning the
// relevant shards (one RPC per node, carrying that node's shard group) and
// gather-merges the per-node answers with the forest's associative
// reductions, so the cluster's answer is byte-identical to the equivalent
// single-process forest.
//
// Unlike the in-process forest scatter (which stops dispatching on the
// first shard error, because all shards share a fate), the router's
// dispatch is failure-tolerant: a down or slow node must not suppress the
// healthy nodes' answers. Only context cancellation stops the fan-out;
// per-node failures become NodeErrors attached to the partial result
// (DESIGN.md §12.6). Router is safe for concurrent use.
type Router struct {
	codec metric.Codec

	placement atomic.Pointer[Placement]

	mu      sync.Mutex // guards clients
	clients map[string]*Client

	// Refresh, when non-nil, refetches the authoritative placement after a
	// node answers ErrNotOwner (the signal that a handoff completed since
	// this router last looked). The router swaps the new placement in and
	// retries the stale part of the query once.
	Refresh func(ctx context.Context) (*Placement, error)

	// reg aggregates per-node RPC latency histograms and call counters,
	// published on /debug/vars by Publish.
	reg obs.Registry
	// fanout counts node RPCs issued per scatter, by node name.
	fanout sync.Map // string → *atomic.Int64

	// adaptive enables the §15.4 scatter planning: per-query hint RPCs that
	// let the router skip provably-irrelevant nodes on range queries and run
	// kNN as a two-stage bounded visit. On by default; see SetAdaptive.
	adaptive atomic.Bool
}

// NewRouter returns a router over the given placement. codec decodes result
// objects coming off the wire.
func NewRouter(p *Placement, codec metric.Codec) (*Router, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := &Router{codec: codec, clients: make(map[string]*Client)}
	r.placement.Store(p)
	r.adaptive.Store(true)
	return r, nil
}

// SetAdaptive toggles the adaptive scatter (DESIGN.md §15.4): node pruning
// for range queries and the staged bounded kNN visit. Off restores the
// unconditional flat scatter; answers are byte-identical either way. Safe
// for concurrent use.
func (r *Router) SetAdaptive(on bool) { r.adaptive.Store(on) }

// Adaptive reports whether the adaptive scatter is enabled.
func (r *Router) Adaptive() bool { return r.adaptive.Load() }

// Placement returns the router's current placement (do not mutate).
func (r *Router) Placement() *Placement { return r.placement.Load() }

// SetPlacement atomically swaps the placement — the flip step of a handoff.
// Queries in flight finish against the old copy; the old owner keeps
// serving reads until it is dropped, so the window is seamless.
func (r *Router) SetPlacement(p *Placement) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r.placement.Store(p)
	return nil
}

// Publish exposes the router's per-node RPC metrics and fan-out counters on
// /debug/vars under name.
func (r *Router) Publish(name string) {
	r.reg.Publish(name)
	obs.Publish(name+"_fanout", func() interface{} {
		out := make(map[string]int64)
		r.fanout.Range(func(k, v interface{}) bool {
			out[k.(string)] = v.(*atomic.Int64).Load()
			return true
		})
		return out
	})
}

// Close closes every node connection.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.clients {
		c.Close()
	}
	r.clients = make(map[string]*Client)
	return nil
}

// client returns (dialing lazily) the connection to the named node.
func (r *Router) client(addr string) *Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.clients[addr]
	if !ok {
		c = NewClient(addr)
		r.clients[addr] = c
	}
	return c
}

// countFanout bumps the per-node scatter counter.
func (r *Router) countFanout(node string) {
	v, _ := r.fanout.LoadOrStore(node, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

// callNode performs one node RPC with metrics and transient-retry. Retries
// redial on connection-level failures only — a node mid-restart — and only
// for idempotent ops (every query is; mutations choose per-op).
func (r *Router) callNode(ctx context.Context, node, addr, op string, idempotent bool, kind byte, req, resp interface{}) error {
	r.countFanout(node)
	start := time.Now()
	c := r.client(addr)
	var err error
	if idempotent {
		err = retry.Do(ctx, transientRPC, func() error { return c.Call(ctx, kind, req, resp) })
	} else {
		err = c.Call(ctx, kind, req, resp)
	}
	r.reg.Op(op+"."+node).Observe(0, 0, 0, 0, time.Since(start), err != nil)
	return err
}

// nodeCall is one planned RPC of a scatter: the target node and the shards
// it answers for.
type nodeCall struct {
	node   string
	addr   string
	shards []int
}

// plan groups the placement's shards by owner.
func plan(p *Placement) []nodeCall {
	byOwner := p.ByOwner()
	names := make([]string, 0, len(byOwner))
	for n := range byOwner {
		names = append(names, n)
	}
	sort.Strings(names)
	calls := make([]nodeCall, 0, len(names))
	for _, n := range names {
		calls = append(calls, nodeCall{node: n, addr: p.Nodes[n], shards: byOwner[n]})
	}
	return calls
}

// scatterQuery fans one query RPC out to every node in calls and gathers
// per-node results and errors. Failed nodes become NodeErrors; healthy
// nodes' answers always come back. A node answering ErrNotOwner triggers
// one placement refresh and one retry of that node's shards against the
// new owners (the handoff-during-query path). Callers pass plan(p) for the
// full flat scatter or a planned subset (§15.4 pruning/staging).
func (r *Router) scatterQuery(ctx context.Context, op string, calls []nodeCall,
	build func(shards []int) (byte, interface{})) ([]rpcQueryResp, error) {

	resps := make([]rpcQueryResp, len(calls))
	errs := make([]error, len(calls))
	var wg sync.WaitGroup
	for i, call := range calls {
		if ctx.Err() != nil {
			errs[i] = &NodeError{Node: call.node, Addr: call.addr,
				Err: fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))}
			continue
		}
		wg.Add(1)
		go func(i int, call nodeCall) {
			defer wg.Done()
			kind, req := build(call.shards)
			err := r.callNode(ctx, call.node, call.addr, op, true, kind, req, &resps[i])
			if err == nil {
				err = fromWireErr(resps[i].Err)
				resps[i].Err = nil
			}
			if err != nil {
				errs[i] = &NodeError{Node: call.node, Addr: call.addr, Err: err}
			}
		}(i, call)
	}
	wg.Wait()

	// Handoff raced the query: some node no longer owns its shards. Refresh
	// the placement and retry just those shards, once.
	if r.Refresh != nil && anyNotOwner(errs) {
		if np, rerr := r.Refresh(ctx); rerr == nil && np != nil {
			r.SetPlacement(np)
			for i, err := range errs {
				if err == nil || !errors.Is(err, ErrNotOwner) {
					continue
				}
				resps[i], errs[i] = rpcQueryResp{}, nil
				for _, rc := range regroup(np, calls[i].shards) {
					var resp rpcQueryResp
					kind, req := build(rc.shards)
					rerr := r.callNode(ctx, rc.node, rc.addr, op, true, kind, req, &resp)
					if rerr == nil {
						rerr = fromWireErr(resp.Err)
						resp.Err = nil
					}
					if rerr != nil {
						errs[i] = &NodeError{Node: rc.node, Addr: rc.addr, Err: rerr}
					}
					resps[i].Results = append(resps[i].Results, resp.Results...)
					resps[i].Stats.Merge(resp.Stats)
				}
			}
		}
	}
	return resps, errors.Join(errs...)
}

// anyNotOwner reports whether any per-node error is a stale-placement
// signal.
func anyNotOwner(errs []error) bool {
	for _, err := range errs {
		if err != nil && errors.Is(err, ErrNotOwner) {
			return true
		}
	}
	return false
}

// regroup plans RPCs for a shard subset under a (new) placement.
func regroup(p *Placement, shards []int) []nodeCall {
	byNode := make(map[string][]int)
	for _, s := range shards {
		byNode[p.Owners[s]] = append(byNode[p.Owners[s]], s)
	}
	names := make([]string, 0, len(byNode))
	for n := range byNode {
		names = append(names, n)
	}
	sort.Strings(names)
	calls := make([]nodeCall, 0, len(names))
	for _, n := range names {
		calls = append(calls, nodeCall{node: n, addr: p.Nodes[n], shards: byNode[n]})
	}
	return calls
}

// decodeResults reconstitutes wire results into core results.
func (r *Router) decodeResults(in []wireResult) ([]core.Result, error) {
	out := make([]core.Result, len(in))
	for i, wr := range in {
		obj, err := r.codec.Decode(wr.ID, wr.Data)
		if err != nil {
			return out[:i], err
		}
		out[i] = core.Result{Object: obj, Dist: wr.Dist, Exact: wr.Exact}
	}
	return out, nil
}

// gather merges per-node query responses: results decode and merge via
// merge, stats accumulate via core.QueryStats.Merge.
func (r *Router) gather(resps []rpcQueryResp, err error,
	merge func([][]core.Result) []core.Result) ([]core.Result, core.QueryStats, error) {
	per := make([][]core.Result, 0, len(resps))
	var stats core.QueryStats
	for _, resp := range resps {
		res, derr := r.decodeResults(resp.Results)
		per = append(per, res)
		stats.Merge(resp.Stats)
		if derr != nil {
			err = errors.Join(err, derr)
		}
	}
	out := merge(per)
	stats.Results = len(out)
	return out, stats, err
}

// shardHints fetches per-shard planning hints from every node in calls, one
// kHint RPC per node (DESIGN.md §15.4). The answer is all-or-nothing: any
// node failure — down, stale placement, or a pre-hint version on the other
// side — returns ok=false, and the caller falls back to the flat scatter,
// which answers identically and owns the failure-tolerance machinery.
func (r *Router) shardHints(ctx context.Context, calls []nodeCall, wq wireObj,
	flavor byte, radius float64, k int) (map[int]core.ShardHint, bool) {

	if ctx.Err() != nil {
		return nil, false
	}
	resps := make([]rpcHintResp, len(calls))
	errs := make([]error, len(calls))
	var wg sync.WaitGroup
	for i, call := range calls {
		wg.Add(1)
		go func(i int, call nodeCall) {
			defer wg.Done()
			req := rpcHintReq{Shards: call.shards, Q: wq, Hint: flavor,
				R: radius, K: k, DeadlineUS: deadlineUS(ctx)}
			err := r.callNode(ctx, call.node, call.addr, "hint", true, kHint, req, &resps[i])
			if err == nil {
				err = fromWireErr(resps[i].Err)
			}
			if err == nil && len(resps[i].Hints) != len(call.shards) {
				err = fmt.Errorf("cluster: node %s answered %d hints for %d shards",
					call.node, len(resps[i].Hints), len(call.shards))
			}
			errs[i] = err
		}(i, call)
	}
	wg.Wait()
	hints := make(map[int]core.ShardHint, len(calls))
	for i, call := range calls {
		if errs[i] != nil {
			return nil, false
		}
		for j, s := range call.shards {
			hints[s] = resps[i].Hints[j]
		}
	}
	return hints, true
}

// pruneCalls drops range-prunable shards from a planned scatter, removing
// node calls left with no shards — the "fewer RPCs" half of §15.4. Pruning
// is per-shard and proof-based, so the surviving scatter's merged answer is
// byte-identical to the full one.
func pruneCalls(calls []nodeCall, hints map[int]core.ShardHint) ([]nodeCall, int) {
	out := make([]nodeCall, 0, len(calls))
	pruned := 0
	for _, c := range calls {
		keep := make([]int, 0, len(c.shards))
		for _, s := range c.shards {
			if hints[s].Prunable {
				pruned++
				continue
			}
			keep = append(keep, s)
		}
		if len(keep) == 0 {
			continue
		}
		out = append(out, nodeCall{node: c.node, addr: c.addr, shards: keep})
	}
	return out, pruned
}

// Range answers RQ(q, r) across the cluster. On node failures the healthy
// nodes' answers come back with one NodeError per failed node (joined);
// errors.Is(err, core.ErrCanceled) identifies deadline-canceled slices.
// With the adaptive scatter enabled, a hint round first skips every shard
// whose summary box provably misses the query ball — nodes all of whose
// shards are pruned get no query RPC at all.
func (r *Router) Range(ctx context.Context, q metric.Object, radius float64) ([]core.Result, core.QueryStats, error) {
	wq := wireObj{ID: q.ID(), Data: q.AppendBinary(nil)}
	p := r.placement.Load()
	calls := plan(p)
	pruned := 0
	if r.adaptive.Load() {
		if hints, ok := r.shardHints(ctx, calls, wq, hintRange, radius, 0); ok {
			calls, pruned = pruneCalls(calls, hints)
		}
	}
	resps, err := r.scatterQuery(ctx, "range", calls, func(shards []int) (byte, interface{}) {
		return kRange, rpcRangeReq{Shards: shards, Q: wq, R: radius,
			DeadlineUS: deadlineUS(ctx), WithStats: true}
	})
	res, qs, err := r.gather(resps, err, func(per [][]core.Result) []core.Result {
		var all []core.Result
		for _, res := range per {
			all = append(all, res...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Object.ID() < all[j].Object.ID() })
		return all
	})
	qs.Plan.ShardsTotal = p.Shards
	qs.Plan.ShardsPruned = pruned
	return res, qs, err
}

// KNN answers kNN(q, k) across the cluster, merging per-node top-k sets
// under the total (dist, ID) order.
func (r *Router) KNN(ctx context.Context, q metric.Object, k int) ([]core.Result, core.QueryStats, error) {
	return r.knn(ctx, q, k, 0, false)
}

// KNNApprox answers budgeted approximate kNN: each shard verifies at most
// maxVerify candidates.
func (r *Router) KNNApprox(ctx context.Context, q metric.Object, k, maxVerify int) ([]core.Result, core.QueryStats, error) {
	return r.knn(ctx, q, k, maxVerify, true)
}

func (r *Router) knn(ctx context.Context, q metric.Object, k, maxVerify int, approx bool) ([]core.Result, core.QueryStats, error) {
	wq := wireObj{ID: q.ID(), Data: q.AppendBinary(nil)}
	op := "knn"
	if approx {
		op = "knn_approx"
	}
	p := r.placement.Load()
	// Exact kNN runs the §15.4 staged visit when the planner can: the most
	// promising shard answers first and its k-th distance bounds everyone
	// else. Approximate kNN stays flat — its per-shard answers are not the
	// canonical subsets the staging proof needs.
	if !approx && k > 0 && p.Shards >= 2 && r.adaptive.Load() {
		if res, qs, err, ok := r.knnStaged(ctx, p, wq, k); ok {
			return res, qs, err
		}
	}
	resps, err := r.scatterQuery(ctx, op, plan(p), func(shards []int) (byte, interface{}) {
		return kKNN, rpcKNNReq{Shards: shards, Q: wq, K: k, MaxVerify: maxVerify,
			Approx: approx, DeadlineUS: deadlineUS(ctx), WithStats: true}
	})
	res, qs, gerr := r.gather(resps, err, func(per [][]core.Result) []core.Result {
		return forest.MergeKNN(per, k)
	})
	qs.Plan.ShardsTotal = p.Shards
	return res, qs, gerr
}

// knnStaged runs the two-stage cluster kNN (DESIGN.md §15.4): a hint round
// orders the shards exactly as forest.knnPlan would (ascending summary-box
// MinDist, predicted distance work when both hints carry estimates, shard
// index last), the best shard answers plain canonical kNN via its owner,
// and the remaining shards are scattered with its k-th distance as a
// Bounded probe — per-shard bounded probes on every node, merged with the
// same reduction as the flat scatter, so the answer is byte-identical
// (§15.2). ok=false means planning was impossible (a hint or stage-1
// failure); the caller reruns the flat scatter, which answers identically
// and owns the failure-tolerance and placement-refresh machinery. Stage-2
// node failures are tolerated the usual way: partials plus NodeErrors.
func (r *Router) knnStaged(ctx context.Context, p *Placement, wq wireObj, k int) ([]core.Result, core.QueryStats, error, bool) {
	hints, ok := r.shardHints(ctx, plan(p), wq, hintKNN, 0, k)
	if !ok {
		return nil, core.QueryStats{}, nil, false
	}
	order := make([]int, p.Shards)
	for s := range order {
		order[s] = s
	}
	sort.Slice(order, func(a, b int) bool {
		ha, hb := hints[order[a]], hints[order[b]]
		if ha.MinDist != hb.MinDist {
			return ha.MinDist < hb.MinDist
		}
		if ha.Estimated && hb.Estimated && ha.EDC != hb.EDC {
			return ha.EDC < hb.EDC
		}
		return order[a] < order[b]
	})

	// Stage 1: the best shard alone, through its owner.
	first := order[0]
	owner := p.Owners[first]
	var resp0 rpcQueryResp
	err := r.callNode(ctx, owner, p.Nodes[owner], "knn", true, kKNN,
		rpcKNNReq{Shards: []int{first}, Q: wq, K: k,
			DeadlineUS: deadlineUS(ctx), WithStats: true}, &resp0)
	if err == nil {
		err = fromWireErr(resp0.Err)
		resp0.Err = nil
	}
	if err != nil {
		return nil, core.QueryStats{}, nil, false
	}
	bound := math.Inf(1)
	if len(resp0.Results) == k {
		// Node answers arrive in canonical (dist, ID) order, so the k-th
		// distance reads straight off the wire results.
		bound = resp0.Results[k-1].Dist
	}

	// Stage 2: every other shard probes within the bound, grouped by owner.
	resps, serr := r.scatterQuery(ctx, "knn", regroup(p, order[1:]), func(shards []int) (byte, interface{}) {
		return kKNN, rpcKNNReq{Shards: shards, Q: wq, K: k, Bounded: true, Bound: bound,
			DeadlineUS: deadlineUS(ctx), WithStats: true}
	})
	resps = append(resps, resp0)
	res, qs, gerr := r.gather(resps, serr, func(per [][]core.Result) []core.Result {
		return forest.MergeKNN(per, k)
	})
	qs.Plan.ShardsTotal = p.Shards
	qs.Plan.Staged = true
	qs.Plan.FirstShard = first
	return res, qs, gerr, true
}

// Join computes the cluster self-join SJ(C, C, ε): each node joins its
// owned shards against every cluster shard (shipping remote partners via
// export), and the router concatenates and ID-sorts the pair lists. Failed
// nodes cost exactly their Q-shards' pairs, reported as NodeErrors.
func (r *Router) Join(ctx context.Context, eps float64) ([]core.IDPair, error) {
	p := r.placement.Load()
	refs := make([]shardRef, 0, p.Shards)
	for s := 0; s < p.Shards; s++ {
		refs = append(refs, shardRef{Shard: s, Addr: p.Nodes[p.Owners[s]]})
	}
	calls := plan(p)
	resps := make([]rpcJoinResp, len(calls))
	errs := make([]error, len(calls))
	var wg sync.WaitGroup
	for i, call := range calls {
		if ctx.Err() != nil {
			errs[i] = &NodeError{Node: call.node, Addr: call.addr,
				Err: fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))}
			continue
		}
		wg.Add(1)
		go func(i int, call nodeCall) {
			defer wg.Done()
			req := rpcJoinReq{QShards: call.shards, OShards: refs, Eps: eps,
				DeadlineUS: deadlineUS(ctx)}
			err := r.callNode(ctx, call.node, call.addr, "join", true, kJoin, req, &resps[i])
			if err == nil {
				err = fromWireErr(resps[i].Err)
			}
			if err != nil {
				errs[i] = &NodeError{Node: call.node, Addr: call.addr, Err: err}
			}
		}(i, call)
	}
	wg.Wait()
	var pairs []core.IDPair
	for _, resp := range resps {
		pairs = append(pairs, resp.Pairs...)
	}
	core.SortIDPairs(pairs)
	return pairs, errors.Join(errs...)
}

// mutate routes one insert/delete to the owning node. Inserts are
// upsert-idempotent, so they ride the transient-retry loop; deletes are
// not retried (a retried delete that raced a re-insert would erase the
// newer write), surfacing transport failures to the caller instead.
func (r *Router) mutate(ctx context.Context, obj metric.Object, del bool) error {
	p := r.placement.Load()
	shard := forest.PartitionOf(obj.ID(), p.Shards)
	req := rpcMutateReq{Shard: shard,
		Obj: wireObj{ID: obj.ID(), Data: obj.AppendBinary(nil)}, Delete: del}
	op := "insert"
	if del {
		op = "delete"
	}
	try := func(p *Placement) error {
		owner := p.Owners[shard]
		var resp rpcMutateResp
		err := r.callNode(ctx, owner, p.Nodes[owner], op, !del, kMutate, req, &resp)
		if err == nil {
			err = fromWireErr(resp.Err)
		}
		if err != nil {
			return &NodeError{Node: owner, Addr: p.Nodes[owner], Err: err}
		}
		return nil
	}
	err := try(p)
	if err != nil && errors.Is(err, ErrNotOwner) && r.Refresh != nil {
		if np, rerr := r.Refresh(ctx); rerr == nil && np != nil {
			r.SetPlacement(np)
			return try(np)
		}
	}
	return err
}

// Insert upserts obj into its hash-partitioned shard on the owning node.
func (r *Router) Insert(ctx context.Context, obj metric.Object) error {
	return r.mutate(ctx, obj, false)
}

// Delete removes obj from its shard on the owning node. A missing object
// answers an error matching core.ErrNotFound.
func (r *Router) Delete(ctx context.Context, obj metric.Object) error {
	return r.mutate(ctx, obj, true)
}

// ClusterStats is the fleet-wide stats snapshot: per-node snapshots for the
// reachable nodes, NodeErrors for the rest.
type ClusterStats struct {
	Placement *Placement
	Nodes     []NodeStats
	// Errors holds the per-node failures as strings (the snapshot is
	// JSON-encodable for /v1/stats).
	Errors []string
}

// Objects totals the live objects across reporting nodes.
func (s ClusterStats) Objects() int {
	total := 0
	for _, n := range s.Nodes {
		total += n.Objects()
	}
	return total
}

// Stats snapshots every node, tolerating failures the usual way.
func (r *Router) Stats(ctx context.Context) ClusterStats {
	p := r.placement.Load()
	names := make([]string, 0, len(p.Nodes))
	for n := range p.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ClusterStats{Placement: p}
	resps := make([]rpcStatsResp, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			err := r.callNode(ctx, name, p.Nodes[name], "stats", true, kStats, rpcStatsReq{}, &resps[i])
			if err == nil {
				err = fromWireErr(resps[i].Err)
			}
			if err != nil {
				errs[i] = &NodeError{Node: name, Addr: p.Nodes[name], Err: err}
			}
		}(i, name)
	}
	wg.Wait()
	for i := range names {
		if errs[i] != nil {
			out.Errors = append(out.Errors, errs[i].Error())
			continue
		}
		out.Nodes = append(out.Nodes, resps[i].Stats)
	}
	return out
}
