package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"spbtree/internal/dataset"
	"spbtree/internal/metric"
)

// TestClusterAdaptiveVsFlat: the adaptive router (hint round, node pruning,
// staged bounded kNN) answers byte-identically to the flat scatter, before
// and after writes, and the staged plan is visible in the merged stats.
func TestClusterAdaptiveVsFlat(t *testing.T) {
	ds := dataset.Words(900, 41)
	tc := startCluster(t, ds, 4)
	ctx := context.Background()

	check := func(phase string, queries []metric.Object) {
		for qi, q := range queries {
			for _, r := range []float64{1, 2, 3} {
				tc.router.SetAdaptive(true)
				ares, aqs, err := tc.router.Range(ctx, q, r)
				if err != nil {
					t.Fatalf("%s adaptive range: %v", phase, err)
				}
				tc.router.SetAdaptive(false)
				fres, fqs, err := tc.router.Range(ctx, q, r)
				if err != nil {
					t.Fatalf("%s flat range: %v", phase, err)
				}
				sameResults(t, fmt.Sprintf("%s range q%d r=%v", phase, qi, r), ares, fres)
				if aqs.Plan.ShardsTotal != 4 {
					t.Fatalf("%s: adaptive range plan: %+v", phase, aqs.Plan)
				}
				if fqs.Plan.ShardsPruned != 0 {
					t.Fatalf("%s: flat range reports pruning: %+v", phase, fqs.Plan)
				}
			}
			for _, k := range []int{1, 5, 20} {
				tc.router.SetAdaptive(true)
				ares, aqs, err := tc.router.KNN(ctx, q, k)
				if err != nil {
					t.Fatalf("%s adaptive knn: %v", phase, err)
				}
				tc.router.SetAdaptive(false)
				fres, _, err := tc.router.KNN(ctx, q, k)
				if err != nil {
					t.Fatalf("%s flat knn: %v", phase, err)
				}
				sameResults(t, fmt.Sprintf("%s knn q%d k=%d", phase, qi, k), ares, fres)
				if !aqs.Plan.Staged || aqs.Plan.ShardsTotal != 4 {
					t.Fatalf("%s: adaptive kNN plan not staged: %+v", phase, aqs.Plan)
				}
			}
		}
	}

	queries := make([]metric.Object, 0, 5)
	for qi := 0; qi < 5; qi++ {
		queries = append(queries, tc.objs[(qi*131)%len(tc.objs)])
	}
	check("fresh", queries)

	// Writes must not break the equivalence: summaries stay conservative
	// (delta cells widen the boxes) and hints lose their cost estimates on a
	// dirty model but stay sound.
	extra := []metric.Object{
		metric.NewStr(200001, "zzyzzxva"),
		metric.NewStr(200002, "taquamon"),
		metric.NewStr(200003, "elsuforing"),
	}
	tc.router.SetAdaptive(true)
	for _, o := range extra {
		if err := tc.router.Insert(ctx, o); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	check("after-writes", append(queries, extra...))

	// The inserted objects are visible through the adaptive path.
	tc.router.SetAdaptive(true)
	res, _, err := tc.router.Range(ctx, extra[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Object.ID() == extra[0].ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted object invisible to adaptive range")
	}
}

// TestClusterRangePruningOverWire: a query provably outside every shard's
// summary box sends zero range RPCs — the hint round alone settles it — and
// still answers correctly (empty, like the flat scatter).
func TestClusterRangePruningOverWire(t *testing.T) {
	ds := dataset.Color(600, 43)
	tc := startCluster(t, ds, 4)
	ctx := context.Background()

	var rangeRPCs, hintRPCs atomic.Int64
	for _, n := range tc.nodes {
		n.OnRequest = func(kind byte) {
			switch kind {
			case kRange:
				rangeRPCs.Add(1)
			case kHint:
				hintRPCs.Add(1)
			}
		}
	}

	// Color vectors live near the unit cube; a query at 50·1⃗ with a tiny
	// radius provably misses every shard.
	far := make([]float64, 16)
	for i := range far {
		far[i] = 50
	}
	q := metric.NewVector(990001, far)
	res, qs, err := tc.router.Range(ctx, q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("far query returned %d results", len(res))
	}
	if qs.Plan.ShardsPruned != 4 || qs.Plan.ShardsTotal != 4 {
		t.Fatalf("expected all 4 shards pruned: %+v", qs.Plan)
	}
	if got := rangeRPCs.Load(); got != 0 {
		t.Fatalf("pruned-out query still sent %d range RPCs", got)
	}
	if hintRPCs.Load() == 0 {
		t.Fatal("no hint RPCs observed; adaptive path did not engage")
	}
	if qs.Compdists != 0 {
		t.Fatalf("pruned-out query still computed %d distances", qs.Compdists)
	}

	// The flat scatter visits every node and agrees on the answer.
	tc.router.SetAdaptive(false)
	fres, _, err := tc.router.Range(ctx, q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(fres) != 0 {
		t.Fatalf("flat scatter returned %d results", len(fres))
	}
	if rangeRPCs.Load() == 0 {
		t.Fatal("flat scatter sent no range RPCs")
	}
}

// TestClusterStagedMatchesForest: the staged cluster kNN must reproduce the
// local adaptive forest's answers AND its work counters — the cluster visits
// shards in the same order with the same bound, so compdists match exactly.
func TestClusterStagedMatchesForest(t *testing.T) {
	ds := dataset.Color(600, 47)
	tc := startCluster(t, ds, 4)
	ctx := context.Background()
	for qi := 0; qi < 6; qi++ {
		q := tc.objs[(qi*89)%len(tc.objs)]
		got, gotStats, err := tc.router.KNN(ctx, q, 10)
		if err != nil {
			t.Fatalf("cluster knn: %v", err)
		}
		want, wantStats, err := tc.ref.KNNWithStatsCtx(ctx, q, 10)
		if err != nil {
			t.Fatalf("forest knn: %v", err)
		}
		sameResults(t, fmt.Sprintf("staged knn q%d", qi), got, want)
		if !gotStats.Plan.Staged || !wantStats.Plan.Staged {
			t.Fatalf("q%d: staging off (cluster %v, forest %v)",
				qi, gotStats.Plan.Staged, wantStats.Plan.Staged)
		}
		if gotStats.Plan.FirstShard != wantStats.Plan.FirstShard {
			t.Fatalf("q%d: first shard %d vs forest %d",
				qi, gotStats.Plan.FirstShard, wantStats.Plan.FirstShard)
		}
		if gotStats.Compdists != wantStats.Compdists {
			t.Fatalf("q%d: cluster compdists %d, forest %d",
				qi, gotStats.Compdists, wantStats.Compdists)
		}
	}
}
