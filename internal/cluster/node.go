package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/forest"
	"spbtree/internal/metric"
	"spbtree/internal/obs"
	"spbtree/internal/retry"
	"spbtree/internal/sfc"
)

// NodeConfig configures OpenNode.
type NodeConfig struct {
	// Name is the node's placement name; required.
	Name string
	// Dir is the node's data directory, holding one shard-NNN subdirectory
	// per owned shard (as laid out by Bootstrap); required.
	Dir string
	// Load configures how shard trees are opened (Distance and Codec
	// required).
	Load core.LoadOptions
	// Durable configures the shard trees' write path.
	Durable core.DurableOptions
	// Parallel bounds concurrent shard scans within one multi-shard request;
	// 0 means all owned shards at once.
	Parallel int
}

// shardState is one owned shard: its durable tree plus the handoff state.
type shardState struct {
	tree *core.Tree
	// frozen rejects mutations (ErrShardFrozen) while a handoff copies the
	// shard's files. Queries and exports keep running.
	frozen atomic.Bool
	// release undoes the compaction hold taken when the shard froze. It MUST
	// be called before the tree is closed (Close joins the compactor
	// goroutine, which may be parked on the held lock).
	release func()
}

// Node owns a subset of the cluster's shards and serves them over the wire
// protocol. One process runs one Node; queries arriving for several owned
// shards execute through the same forest scatter-gather a single-process
// deployment uses, so a node's merged answer is byte-identical to the same
// shards queried locally — the property the router's second-level merge
// builds on.
type Node struct {
	cfg NodeConfig

	mu     sync.RWMutex // guards shards and installs
	shards map[int]*shardState

	// installDirs tracks in-progress handoff staging directories by shard.
	installDirs map[int]string

	ln       net.Listener
	lnMu     sync.Mutex
	closed   atomic.Bool
	conns    sync.WaitGroup
	connsMu  sync.Mutex
	connSet  map[net.Conn]struct{}
	peers    map[string]*Client // export connections to other nodes, by addr
	peersMu  sync.Mutex
	handlers sync.WaitGroup

	// reg aggregates per-RPC-kind latency and work counters, published on
	// /debug/vars as "spbcluster_node_<name>" by Serve.
	reg obs.Registry

	// OnRequest, when non-nil, runs before every RPC is handled (test hook:
	// crash injection, latency injection, request counting). Set it before
	// Serve.
	OnRequest func(kind byte)
}

// OpenNode opens every shard-NNN directory under cfg.Dir as a durable tree.
// The node is ready to Serve afterwards.
func OpenNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: node needs a name")
	}
	// A node that owns no shards yet (it joined to receive handoffs) has no
	// directory until now; create it so rebalancing onto it just works.
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", cfg.Name, err)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", cfg.Name, err)
	}
	n := &Node{cfg: cfg, shards: make(map[int]*shardState),
		installDirs: make(map[int]string),
		connSet:     make(map[net.Conn]struct{}),
		peers:       make(map[string]*Client)}
	for _, e := range entries {
		var shard int
		if !e.IsDir() {
			continue
		}
		if _, err := fmt.Sscanf(e.Name(), "shard-%d", &shard); err != nil {
			continue
		}
		if filepath.Ext(e.Name()) == ".install" {
			// A crash mid-handoff left a staging directory; the shard never
			// activated here, so the copy is garbage — remove it.
			os.RemoveAll(filepath.Join(cfg.Dir, e.Name()))
			continue
		}
		t, err := core.OpenDurable(filepath.Join(cfg.Dir, e.Name()), cfg.Load, cfg.Durable)
		if err != nil {
			n.closeShards()
			return nil, fmt.Errorf("cluster: node %s: open shard %d: %w", cfg.Name, shard, err)
		}
		n.shards[shard] = &shardState{tree: t}
	}
	return n, nil
}

// shardDir is the on-disk home of one shard.
func (n *Node) shardDir(shard int) string {
	return filepath.Join(n.cfg.Dir, fmt.Sprintf("shard-%03d", shard))
}

// Shards lists the shard indices this node currently owns, ascending.
func (n *Node) Shards() []int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]int, 0, len(n.shards))
	for s := range n.shards {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error (net.ErrClosed after a clean Close).
func (n *Node) Serve(ln net.Listener) error {
	n.lnMu.Lock()
	n.ln = ln
	n.lnMu.Unlock()
	n.reg.Publish("spbcluster_node_" + n.cfg.Name)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if n.closed.Load() {
				return net.ErrClosed
			}
			return err
		}
		n.connsMu.Lock()
		n.connSet[conn] = struct{}{}
		n.connsMu.Unlock()
		n.conns.Add(1)
		go n.serveConn(conn)
	}
}

// Close stops serving and closes every shard. In-flight handlers finish
// writing (their connections close under them, which is fine — the client
// side treats it as a transport failure).
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	n.lnMu.Lock()
	if n.ln != nil {
		n.ln.Close()
	}
	n.lnMu.Unlock()
	n.connsMu.Lock()
	for c := range n.connSet {
		c.Close()
	}
	n.connsMu.Unlock()
	n.conns.Wait()
	n.peersMu.Lock()
	for _, c := range n.peers {
		c.Close()
	}
	n.peersMu.Unlock()
	n.closeShards()
	return nil
}

// closeShards releases compaction holds (before Close — see shardState) and
// closes every tree.
func (n *Node) closeShards() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, st := range n.shards {
		if st.release != nil {
			st.release()
			st.release = nil
		}
		st.tree.Close()
	}
	n.shards = make(map[int]*shardState)
}

// serveConn handles one client connection: frames are read sequentially and
// handled concurrently (the client multiplexes), responses serialized by a
// per-connection write mutex.
func (n *Node) serveConn(conn net.Conn) {
	defer n.conns.Done()
	defer func() {
		n.connsMu.Lock()
		delete(n.connSet, conn)
		n.connsMu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	for {
		reqID, kind, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		n.handlers.Add(1)
		go func(reqID uint64, kind byte, payload []byte) {
			defer n.handlers.Done()
			if hook := n.OnRequest; hook != nil {
				hook(kind)
			}
			start := time.Now()
			resp, failed := n.dispatch(kind, payload)
			n.reg.Op(kindName(kind)).Observe(0, 0, 0, 0, time.Since(start), failed)
			writeMu.Lock()
			writeFrame(conn, reqID, kind, resp)
			writeMu.Unlock()
		}(reqID, kind, payload)
	}
}

// kindName labels RPC kinds for the node's metrics registry.
func kindName(kind byte) string {
	switch kind {
	case kRange:
		return "rpc.range"
	case kKNN:
		return "rpc.knn"
	case kHint:
		return "rpc.hint"
	case kJoin:
		return "rpc.join"
	case kMutate:
		return "rpc.mutate"
	case kStats:
		return "rpc.stats"
	case kExport:
		return "rpc.export"
	case kPing:
		return "rpc.ping"
	default:
		return "rpc.admin"
	}
}

// errOnly is the kErr payload shape: gob matches fields by name, so any
// response struct with an Err field decodes it.
type errOnly struct {
	Err *wireErr
}

// dispatch decodes and executes one request, returning the response payload
// and whether the operation failed (for metrics).
func (n *Node) dispatch(kind byte, payload []byte) (resp interface{}, failed bool) {
	var err error
	switch kind {
	case kRange:
		var req rpcRangeReq
		if err = decodePayload(payload, &req); err == nil {
			return n.handleRange(req)
		}
	case kKNN:
		var req rpcKNNReq
		if err = decodePayload(payload, &req); err == nil {
			return n.handleKNN(req)
		}
	case kHint:
		var req rpcHintReq
		if err = decodePayload(payload, &req); err == nil {
			return n.handleHint(req)
		}
	case kJoin:
		var req rpcJoinReq
		if err = decodePayload(payload, &req); err == nil {
			return n.handleJoin(req)
		}
	case kMutate:
		var req rpcMutateReq
		if err = decodePayload(payload, &req); err == nil {
			return n.handleMutate(req)
		}
	case kStats:
		return n.handleStats()
	case kExport:
		var req rpcExportReq
		if err = decodePayload(payload, &req); err == nil {
			return n.handleExport(req)
		}
	case kFreeze:
		var req rpcFreezeReq
		if err = decodePayload(payload, &req); err == nil {
			return n.handleFreeze(req)
		}
	case kListFiles:
		var req rpcListFilesReq
		if err = decodePayload(payload, &req); err == nil {
			return n.handleListFiles(req)
		}
	case kReadFile:
		var req rpcReadFileReq
		if err = decodePayload(payload, &req); err == nil {
			return n.handleReadFile(req)
		}
	case kBeginInstall, kInstallChunk, kFinishInstall, kActivate, kDrop:
		var req rpcInstallReq
		if err = decodePayload(payload, &req); err == nil {
			return n.handleInstall(kind, req)
		}
	case kPing:
		return rpcPingResp{Name: n.cfg.Name}, false
	default:
		err = fmt.Errorf("cluster: unknown frame kind %d", kind)
	}
	return errOnly{Err: toWireErr(err)}, true
}

// reqContext arms the request's remaining deadline budget as a local
// context deadline.
func reqContext(deadlineUS int64) (context.Context, context.CancelFunc) {
	if deadlineUS <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), time.Duration(deadlineUS)*time.Microsecond)
}

// forestFor assembles the owned shards named by ids into a query forest.
// The trees stay owned by the node; the forest is a per-request view.
func (n *Node) forestFor(ids []int) (*forest.Forest, []*core.Tree, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("cluster: request names no shards")
	}
	shards := make([]forest.Shard, 0, len(ids))
	trees := make([]*core.Tree, 0, len(ids))
	for _, id := range ids {
		st, ok := n.shards[id]
		if !ok {
			return nil, nil, fmt.Errorf("%w: %s does not own shard %d", ErrNotOwner, n.cfg.Name, id)
		}
		shards = append(shards, st.tree)
		trees = append(trees, st.tree)
	}
	f, err := forest.FromShards(shards, n.cfg.Parallel)
	return f, trees, err
}

// staleClosed maps a query failure on a just-dropped shard to ErrNotOwner.
// A request dispatched against the old placement can race the handoff's
// final drop and find the tree closed mid-scan; the placement has already
// flipped by then, so the correct signal to the router is "refresh and
// retry", not a hard failure.
func (n *Node) staleClosed(err error, ids []int) error {
	if err == nil || !errors.Is(err, core.ErrClosed) {
		return err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, id := range ids {
		if _, ok := n.shards[id]; !ok {
			return fmt.Errorf("%w: shard %d dropped mid-request (%v)", ErrNotOwner, id, err)
		}
	}
	return err
}

// decodeQuery reconstitutes a transported query object.
func (n *Node) decodeQuery(o wireObj) (metric.Object, error) {
	return n.cfg.Load.Codec.Decode(o.ID, o.Data)
}

// toWireResults serializes query answers for transport.
func toWireResults(results []core.Result) []wireResult {
	out := make([]wireResult, len(results))
	for i, r := range results {
		out[i] = wireResult{ID: r.Object.ID(), Data: r.Object.AppendBinary(nil),
			Dist: r.Dist, Exact: r.Exact}
	}
	return out
}

// handleRange answers a range RPC over the named owned shards. Partial
// results travel alongside the error, preserving the library contract.
func (n *Node) handleRange(req rpcRangeReq) (interface{}, bool) {
	f, _, err := n.forestFor(req.Shards)
	if err != nil {
		return rpcQueryResp{Err: toWireErr(err)}, true
	}
	q, err := n.decodeQuery(req.Q)
	if err != nil {
		return rpcQueryResp{Err: toWireErr(err)}, true
	}
	ctx, cancel := reqContext(req.DeadlineUS)
	defer cancel()
	var results []core.Result
	var qs core.QueryStats
	if req.WithStats {
		results, qs, err = f.RangeQueryWithStatsCtx(ctx, q, req.R)
	} else {
		results, err = f.RangeQueryCtx(ctx, q, req.R)
	}
	err = n.staleClosed(err, req.Shards)
	return rpcQueryResp{Results: toWireResults(results), Stats: qs, Err: toWireErr(err)}, err != nil
}

// handleKNN answers an exact or budgeted-approximate kNN RPC.
func (n *Node) handleKNN(req rpcKNNReq) (interface{}, bool) {
	f, _, err := n.forestFor(req.Shards)
	if err != nil {
		return rpcQueryResp{Err: toWireErr(err)}, true
	}
	q, err := n.decodeQuery(req.Q)
	if err != nil {
		return rpcQueryResp{Err: toWireErr(err)}, true
	}
	ctx, cancel := reqContext(req.DeadlineUS)
	defer cancel()
	var results []core.Result
	var qs core.QueryStats
	switch {
	case req.Bounded && req.Approx:
		err = fmt.Errorf("cluster: bounded and approximate kNN are mutually exclusive")
		return rpcQueryResp{Err: toWireErr(err)}, true
	case req.Bounded && req.WithStats:
		results, qs, err = f.KNNWithinWithStatsCtx(ctx, q, req.K, req.Bound)
	case req.Bounded:
		results, err = f.KNNWithinCtx(ctx, q, req.K, req.Bound)
	case req.Approx && req.WithStats:
		results, qs, err = f.KNNApproxWithStatsCtx(ctx, q, req.K, req.MaxVerify)
	case req.Approx:
		results, err = f.KNNApproxCtx(ctx, q, req.K, req.MaxVerify)
	case req.WithStats:
		results, qs, err = f.KNNWithStatsCtx(ctx, q, req.K)
	default:
		results, err = f.KNNCtx(ctx, q, req.K)
	}
	err = n.staleClosed(err, req.Shards)
	return rpcQueryResp{Results: toWireResults(results), Stats: qs, Err: toWireErr(err)}, err != nil
}

// handleHint answers per-shard planning hints for the router's adaptive
// scatter (DESIGN.md §15.4). Hints run node-side because computing one needs
// the shard's pivots and the space's distance function, which the router
// does not hold; the φ(q) probes use uncounted distances, so asking for
// hints never perturbs the work counters of shards that end up pruned.
func (n *Node) handleHint(req rpcHintReq) (interface{}, bool) {
	f, _, err := n.forestFor(req.Shards)
	if err != nil {
		return rpcHintResp{Err: toWireErr(err)}, true
	}
	q, err := n.decodeQuery(req.Q)
	if err != nil {
		return rpcHintResp{Err: toWireErr(err)}, true
	}
	var hints []core.ShardHint
	switch req.Hint {
	case hintRange:
		hints, err = f.HintRange(q, req.R)
	case hintKNN:
		hints, err = f.HintKNN(q, req.K)
	default:
		err = fmt.Errorf("cluster: unknown hint flavor %d", req.Hint)
	}
	err = n.staleClosed(err, req.Shards)
	if err != nil {
		return rpcHintResp{Err: toWireErr(err)}, true
	}
	return rpcHintResp{Hints: hints}, false
}

// handleMutate applies one insert or delete to an owned shard.
func (n *Node) handleMutate(req rpcMutateReq) (interface{}, bool) {
	n.mu.RLock()
	st, ok := n.shards[req.Shard]
	n.mu.RUnlock()
	if !ok {
		err := fmt.Errorf("%w: %s does not own shard %d", ErrNotOwner, n.cfg.Name, req.Shard)
		return rpcMutateResp{Err: toWireErr(err)}, true
	}
	if st.frozen.Load() {
		err := fmt.Errorf("%w: shard %d on %s", ErrShardFrozen, req.Shard, n.cfg.Name)
		return rpcMutateResp{Err: toWireErr(err)}, true
	}
	obj, err := n.cfg.Load.Codec.Decode(req.Obj.ID, req.Obj.Data)
	if err != nil {
		return rpcMutateResp{Err: toWireErr(err)}, true
	}
	if req.Delete {
		err = st.tree.Delete(obj)
	} else {
		err = st.tree.Insert(obj)
	}
	return rpcMutateResp{Objects: st.tree.Len(), Err: toWireErr(err)}, err != nil
}

// ShardStats describes one owned shard in a stats snapshot.
type ShardStats struct {
	ID           int
	Objects      int
	Delta        int
	StorageBytes int64
	Frozen       bool
}

// NodeStats is one node's remote-safe stats snapshot: plain values only, so
// it gob-encodes and JSON-encodes without reaching back into the node.
type NodeStats struct {
	Name   string
	Shards []ShardStats
}

// Objects totals the node's live objects.
func (s NodeStats) Objects() int {
	total := 0
	for _, sh := range s.Shards {
		total += sh.Objects
	}
	return total
}

// handleStats snapshots the node.
func (n *Node) handleStats() (interface{}, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	stats := NodeStats{Name: n.cfg.Name}
	ids := make([]int, 0, len(n.shards))
	for id := range n.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := n.shards[id]
		stats.Shards = append(stats.Shards, ShardStats{
			ID: id, Objects: st.tree.Len(), Delta: st.tree.DeltaLen(),
			StorageBytes: st.tree.StorageBytes(), Frozen: st.frozen.Load()})
	}
	return rpcStatsResp{Stats: stats}, false
}

// handleExport snapshots an owned shard's live objects for a remote join
// partner (or any data-shipping caller).
func (n *Node) handleExport(req rpcExportReq) (interface{}, bool) {
	n.mu.RLock()
	st, ok := n.shards[req.Shard]
	n.mu.RUnlock()
	if !ok {
		err := fmt.Errorf("%w: %s does not own shard %d", ErrNotOwner, n.cfg.Name, req.Shard)
		return rpcExportResp{Err: toWireErr(err)}, true
	}
	objs, err := st.tree.ExportObjects()
	if err != nil {
		return rpcExportResp{Err: toWireErr(err)}, true
	}
	out := make([]wireObj, len(objs))
	for i, o := range objs {
		out[i] = wireObj{ID: o.ID(), Data: o.AppendBinary(nil)}
	}
	return rpcExportResp{Objs: out}, false
}

// handleJoin computes this node's slice of the cluster self-join: its owned
// QShards against every cluster shard. Local partners join directly; remote
// partners are fetched once via kExport and rebuilt into the shared mapped
// space (ShareMapping guarantees identical pruning geometry, so the pairs
// match a single-process join exactly).
func (n *Node) handleJoin(req rpcJoinReq) (interface{}, bool) {
	_, qTrees, err := n.forestFor(req.QShards)
	if err != nil {
		return rpcJoinResp{Err: toWireErr(err)}, true
	}
	if qTrees[0].CurveKind() != sfc.ZOrder {
		err := fmt.Errorf("cluster: similarity joins need a Z-order cluster (this one uses %v)", qTrees[0].CurveKind())
		return rpcJoinResp{Err: toWireErr(err)}, true
	}
	ctx, cancel := reqContext(req.DeadlineUS)
	defer cancel()

	// Resolve every O-shard to a tree: owned ones directly, remote ones via
	// a one-shot export + rebuild, cached for the request (a shard pairs
	// with every local Q-shard, but ships only once).
	partners := make(map[int]*core.Tree, len(req.OShards))
	var fetched []*core.Tree
	defer func() {
		for _, t := range fetched {
			t.Close()
		}
	}()
	var pairs []core.IDPair
	var firstErr error
	for _, ref := range req.OShards {
		oTree, oerr := n.joinPartner(ctx, ref, qTrees[0], partners, &fetched)
		if oerr != nil {
			firstErr = oerr
			break
		}
		for _, qTree := range qTrees {
			jp, jerr := core.JoinCtx(ctx, qTree, oTree, req.Eps)
			pairs = append(pairs, core.IDPairs(jp)...)
			if jerr != nil {
				firstErr = jerr
				break
			}
		}
		if firstErr != nil {
			break
		}
	}
	core.SortIDPairs(pairs)
	return rpcJoinResp{Pairs: pairs, Err: toWireErr(firstErr)}, firstErr != nil
}

// joinPartner resolves one O-shard reference to a queryable tree.
func (n *Node) joinPartner(ctx context.Context, ref shardRef, share *core.Tree,
	cache map[int]*core.Tree, fetched *[]*core.Tree) (*core.Tree, error) {
	if t, ok := cache[ref.Shard]; ok {
		return t, nil
	}
	n.mu.RLock()
	st, owned := n.shards[ref.Shard]
	n.mu.RUnlock()
	if owned {
		cache[ref.Shard] = st.tree
		return st.tree, nil
	}
	if ref.Addr == "" {
		return nil, fmt.Errorf("cluster: join: no address for remote shard %d", ref.Shard)
	}
	objs, err := n.fetchExport(ctx, ref)
	if err != nil {
		return nil, err
	}
	t, err := core.Build(objs, core.Options{
		Distance: n.cfg.Load.Distance, Codec: n.cfg.Load.Codec,
		Curve: sfc.ZOrder, ShareMapping: share,
		CacheSize: n.cfg.Load.CacheSize, Workers: n.cfg.Load.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: join: rebuild shard %d: %w", ref.Shard, err)
	}
	cache[ref.Shard] = t
	*fetched = append(*fetched, t)
	return t, nil
}

// peer returns (dialing lazily) the node's export client for addr.
func (n *Node) peer(addr string) *Client {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	c, ok := n.peers[addr]
	if !ok {
		c = NewClient(addr)
		n.peers[addr] = c
	}
	return c
}

// fetchExport ships a remote shard's objects here, retrying transient
// connection failures (an export is a read-only snapshot — safely
// idempotent).
func (n *Node) fetchExport(ctx context.Context, ref shardRef) ([]metric.Object, error) {
	c := n.peer(ref.Addr)
	var resp rpcExportResp
	err := retry.Do(ctx, transientRPC, func() error {
		resp = rpcExportResp{}
		return c.Call(ctx, kExport, rpcExportReq{Shard: ref.Shard, DeadlineUS: deadlineUS(ctx)}, &resp)
	})
	if err == nil {
		err = fromWireErr(resp.Err)
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: export shard %d from %s: %w", ref.Shard, ref.Addr, err)
	}
	objs := make([]metric.Object, len(resp.Objs))
	for i, o := range resp.Objs {
		obj, derr := n.cfg.Load.Codec.Decode(o.ID, o.Data)
		if derr != nil {
			return nil, derr
		}
		objs[i] = obj
	}
	return objs, nil
}

// handleFreeze toggles a shard's quiesced state. Freezing also holds
// background compaction so the shard's file set stops changing — the
// precondition for handoff's copy phase.
func (n *Node) handleFreeze(req rpcFreezeReq) (interface{}, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.shards[req.Shard]
	if !ok {
		err := fmt.Errorf("%w: %s does not own shard %d", ErrNotOwner, n.cfg.Name, req.Shard)
		return rpcFreezeResp{Err: toWireErr(err)}, true
	}
	if req.On && !st.frozen.Load() {
		release, err := st.tree.HoldCompaction()
		if err != nil {
			return rpcFreezeResp{Err: toWireErr(err)}, true
		}
		st.release = release
		st.frozen.Store(true)
	} else if !req.On && st.frozen.Load() {
		if st.release != nil {
			st.release()
			st.release = nil
		}
		st.frozen.Store(false)
	}
	return rpcFreezeResp{}, false
}

// handleListFiles manifests a frozen shard's directory for the handoff
// coordinator.
func (n *Node) handleListFiles(req rpcListFilesReq) (interface{}, bool) {
	n.mu.RLock()
	st, ok := n.shards[req.Shard]
	n.mu.RUnlock()
	if !ok {
		err := fmt.Errorf("%w: %s does not own shard %d", ErrNotOwner, n.cfg.Name, req.Shard)
		return rpcListFilesResp{Err: toWireErr(err)}, true
	}
	if !st.frozen.Load() {
		err := fmt.Errorf("cluster: shard %d must be frozen before its files are copied", req.Shard)
		return rpcListFilesResp{Err: toWireErr(err)}, true
	}
	root := n.shardDir(req.Shard)
	var resp rpcListFilesResp
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		resp.Paths = append(resp.Paths, filepath.ToSlash(rel))
		resp.Sizes = append(resp.Sizes, info.Size())
		return nil
	})
	if err != nil {
		return rpcListFilesResp{Err: toWireErr(err)}, true
	}
	return resp, false
}

// handleReadFile serves one chunk of a shard file to the handoff
// coordinator.
func (n *Node) handleReadFile(req rpcReadFileReq) (interface{}, bool) {
	if !filepath.IsLocal(req.Path) {
		err := fmt.Errorf("cluster: non-local file path %q", req.Path)
		return rpcReadFileResp{Err: toWireErr(err)}, true
	}
	f, err := os.Open(filepath.Join(n.shardDir(req.Shard), filepath.FromSlash(req.Path)))
	if err != nil {
		return rpcReadFileResp{Err: toWireErr(err)}, true
	}
	defer f.Close()
	buf := make([]byte, req.Len)
	got, err := f.ReadAt(buf, req.Off)
	if err != nil && !errors.Is(err, io.EOF) {
		return rpcReadFileResp{Err: toWireErr(err)}, true
	}
	return rpcReadFileResp{Data: buf[:got], EOF: errors.Is(err, io.EOF)}, false
}

// handleInstall runs the receiving half of the handoff state machine.
func (n *Node) handleInstall(kind byte, req rpcInstallReq) (interface{}, bool) {
	var err error
	switch kind {
	case kBeginInstall:
		err = n.beginInstall(req.Shard)
	case kInstallChunk:
		err = n.installChunk(req)
	case kFinishInstall:
		err = n.finishInstall(req.Shard)
	case kActivate:
		err = n.activate(req.Shard)
	case kDrop:
		err = n.drop(req.Shard)
	}
	return rpcInstallResp{Err: toWireErr(err)}, err != nil
}

// beginInstall creates a fresh staging directory for an incoming shard.
func (n *Node) beginInstall(shard int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, owned := n.shards[shard]; owned {
		return fmt.Errorf("cluster: %s already owns shard %d", n.cfg.Name, shard)
	}
	staging := n.shardDir(shard) + ".install"
	if err := os.RemoveAll(staging); err != nil {
		return err
	}
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return err
	}
	n.installDirs[shard] = staging
	return nil
}

// installChunk appends one chunk to a staged file (creating it when First).
func (n *Node) installChunk(req rpcInstallReq) error {
	n.mu.RLock()
	staging, ok := n.installDirs[req.Shard]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("cluster: no install in progress for shard %d", req.Shard)
	}
	if !filepath.IsLocal(req.Path) {
		return fmt.Errorf("cluster: non-local file path %q", req.Path)
	}
	path := filepath.Join(staging, filepath.FromSlash(req.Path))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	flags := os.O_WRONLY | os.O_CREATE | os.O_APPEND
	if req.First {
		flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return retry.Write(f, req.Data)
}

// finishInstall fsyncs the staged tree so activation survives a crash.
func (n *Node) finishInstall(shard int) error {
	n.mu.RLock()
	staging, ok := n.installDirs[shard]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("cluster: no install in progress for shard %d", shard)
	}
	return filepath.Walk(staging, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		f, oerr := os.Open(path)
		if oerr != nil {
			return oerr
		}
		defer f.Close()
		return retry.Sync(f.Sync)
	})
}

// activate renames the staged shard into place and opens it; from this
// frame's acknowledgement on, the node serves the shard.
func (n *Node) activate(shard int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	staging, ok := n.installDirs[shard]
	if !ok {
		return fmt.Errorf("cluster: no install in progress for shard %d", shard)
	}
	final := n.shardDir(shard)
	if err := os.Rename(staging, final); err != nil {
		return err
	}
	delete(n.installDirs, shard)
	t, err := core.OpenDurable(final, n.cfg.Load, n.cfg.Durable)
	if err != nil {
		return fmt.Errorf("cluster: activate shard %d: %w", shard, err)
	}
	n.shards[shard] = &shardState{tree: t}
	return nil
}

// drop releases a shard this node no longer owns: the compaction hold is
// released BEFORE Close (Close joins the compactor, which may be parked on
// the held lock), then the files go.
func (n *Node) drop(shard int) error {
	n.mu.Lock()
	st, ok := n.shards[shard]
	delete(n.shards, shard)
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s does not own shard %d", ErrNotOwner, n.cfg.Name, shard)
	}
	if st.release != nil {
		st.release()
		st.release = nil
	}
	if err := st.tree.Close(); err != nil {
		return err
	}
	return os.RemoveAll(n.shardDir(shard))
}
