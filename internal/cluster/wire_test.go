package cluster

import (
	"bytes"
	"errors"
	"testing"

	"spbtree/internal/core"
)

// TestFrameRoundTrip: a frame written with writeFrame reads back with the
// same request id, kind, and an intact gob payload.
func TestFrameRoundTrip(t *testing.T) {
	req := rpcRangeReq{
		Shards: []int{0, 2, 5},
		Q:      wireObj{ID: 42, Data: []byte("query")},
		R:      1.5, DeadlineUS: 123456, WithStats: true,
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, 7, kRange, req); err != nil {
		t.Fatal(err)
	}
	reqID, kind, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != 7 || kind != kRange {
		t.Fatalf("header = (%d, %d), want (7, %d)", reqID, kind, kRange)
	}
	var got rpcRangeReq
	if err := decodePayload(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.Q.ID != 42 || string(got.Q.Data) != "query" || got.R != 1.5 ||
		got.DeadlineUS != 123456 || !got.WithStats || len(got.Shards) != 3 {
		t.Fatalf("payload mangled: %+v", got)
	}
}

// TestFrameRejectsOversize: a header claiming more than maxFramePayload is
// rejected before any allocation.
func TestFrameRejectsOversize(t *testing.T) {
	hdr := make([]byte, frameHeaderLen)
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0xFF
	_, _, _, err := readFrame(bytes.NewReader(hdr))
	if err == nil {
		t.Fatal("oversize frame accepted")
	}
}

// TestWireErrPreservesIs: typed sentinel errors survive the wire — a
// router-side errors.Is sees the same sentinel the node returned.
func TestWireErrPreservesIs(t *testing.T) {
	cases := []error{
		core.ErrCanceled, core.ErrNotFound, core.ErrClosed,
		ErrNotOwner, ErrShardFrozen,
	}
	for _, sentinel := range cases {
		back := fromWireErr(toWireErr(sentinel))
		if !errors.Is(back, sentinel) {
			t.Errorf("%v did not survive the wire: got %v", sentinel, back)
		}
	}
	// An untyped error stays an error with its message.
	plain := errors.New("disk on fire")
	back := fromWireErr(toWireErr(plain))
	if back == nil || back.Error() == "" {
		t.Fatal("plain error lost")
	}
	if toWireErr(nil) != nil {
		t.Fatal("nil error should encode as nil")
	}
}

// TestRingDeterministic: the same node set always yields the same owners,
// regardless of input order.
func TestRingDeterministic(t *testing.T) {
	a := RingOwners([]string{"n1", "n2", "n3"}, 16)
	b := RingOwners([]string{"n3", "n1", "n2"}, 16)
	for s := 0; s < 16; s++ {
		if a[s] != b[s] {
			t.Fatalf("shard %d: %s vs %s for permuted node lists", s, a[s], b[s])
		}
	}
}

// TestRingSpreads: with enough shards, every node owns some — the
// avalanche fix for FNV's clumping (see fnv64) keeps the ring usable.
func TestRingSpreads(t *testing.T) {
	owners := RingOwners([]string{"n1", "n2", "n3"}, 64)
	count := map[string]int{}
	for _, n := range owners {
		count[n]++
	}
	for _, n := range []string{"n1", "n2", "n3"} {
		if count[n] == 0 {
			t.Fatalf("node %s owns nothing across 64 shards: %v", n, count)
		}
	}
}

// TestRingIncremental: adding a node only moves shards TO the new node —
// no shard shuffles between pre-existing nodes (the consistent-hashing
// property that keeps rebalancing proportional to 1/n).
func TestRingIncremental(t *testing.T) {
	before := RingOwners([]string{"n1", "n2", "n3"}, 64)
	after := RingOwners([]string{"n1", "n2", "n3", "n4"}, 64)
	moved := 0
	for s := 0; s < 64; s++ {
		if after[s] != before[s] {
			if after[s] != "n4" {
				t.Fatalf("shard %d moved %s -> %s; only moves to the new node are allowed",
					s, before[s], after[s])
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("new node received nothing; ring not spreading")
	}
}

// TestNodeErrorUnwrap: AsNodeErrors digs NodeErrors out of joined error
// trees, and errors.Is reaches the wrapped cause.
func TestNodeErrorUnwrap(t *testing.T) {
	ne1 := &NodeError{Node: "n1", Addr: "a:1", Err: core.ErrCanceled}
	ne2 := &NodeError{Node: "n2", Addr: "a:2", Err: errors.New("boom")}
	joined := errors.Join(ne1, ne2)
	nes := AsNodeErrors(joined)
	if len(nes) != 2 || nes[0].Node != "n1" || nes[1].Node != "n2" {
		t.Fatalf("AsNodeErrors = %+v", nes)
	}
	if !errors.Is(joined, core.ErrCanceled) {
		t.Fatal("wrapped sentinel unreachable through the join")
	}
	if AsNodeErrors(nil) != nil {
		t.Fatal("nil should yield no node errors")
	}
}

// TestPlacementValidate rejects holes and unknown owners.
func TestPlacementValidate(t *testing.T) {
	p := &Placement{Version: 1, Shards: 2,
		Owners: map[int]string{0: "n1"},
		Nodes:  map[string]string{"n1": "a:1"}}
	if err := p.Validate(); err == nil {
		t.Fatal("shard without owner accepted")
	}
	p.Owners[1] = "ghost"
	if err := p.Validate(); err == nil {
		t.Fatal("owner without address accepted")
	}
	p.Nodes["ghost"] = "a:2"
	if err := p.Validate(); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
}
