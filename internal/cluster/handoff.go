package cluster

import (
	"context"
	"errors"
	"fmt"

	"spbtree/internal/retry"
)

// handoffChunk is the file-copy granularity. 1 MiB keeps frames far below
// the wire limit while amortizing per-chunk round trips.
const handoffChunk = 1 << 20

// Handoff moves shard to the named target node and flips the placement —
// the rebalance primitive (DESIGN.md §12.4 has the state machine;
// OPERATIONS.md the runbook). The sequence:
//
//  1. freeze the shard on its current owner — mutations start answering
//     ErrShardFrozen, compaction pauses, the file set quiesces; queries
//     keep being served by the old owner throughout the copy;
//  2. copy the shard's files (base generation, WAL tail, CURRENT) to the
//     target's staging directory, chunked, and fsync them there;
//  3. activate on the target (rename into place + open durable);
//  4. flip the router's placement atomically — new queries route to the
//     target from here on;
//  5. drop the shard from the old owner (close + delete files).
//
// Any failure before activation unwinds: the target's staging directory is
// abandoned (a future Begin clears it) and the source unfreezes, leaving
// the cluster exactly as before. After activation the flip is committed —
// a failure during drop leaves only garbage files on the old owner, never
// two live owners, because the placement names the target already.
//
// Other routers discover the move lazily: their next query to the old
// owner answers ErrNotOwner, which triggers their placement refresh.
func (r *Router) Handoff(ctx context.Context, shard int, target string) error {
	p := r.placement.Load()
	if shard < 0 || shard >= p.Shards {
		return fmt.Errorf("cluster: handoff: no shard %d", shard)
	}
	source := p.Owners[shard]
	if source == target {
		return fmt.Errorf("cluster: handoff: %s already owns shard %d", target, shard)
	}
	tgtAddr, ok := p.Nodes[target]
	if !ok {
		return fmt.Errorf("cluster: handoff: unknown node %q", target)
	}
	srcAddr := p.Nodes[source]
	src, tgt := r.client(srcAddr), r.client(tgtAddr)

	// 1. Quiesce the source shard.
	if err := freezeRPC(ctx, src, shard, true); err != nil {
		return fmt.Errorf("cluster: handoff: freeze on %s: %w", source, err)
	}
	unwind := func(err error) error {
		if uerr := freezeRPC(context.WithoutCancel(ctx), src, shard, false); uerr != nil {
			err = errors.Join(err, fmt.Errorf("cluster: handoff: unfreeze on %s: %w", source, uerr))
		}
		return err
	}

	// 2. Copy the quiesced file set into the target's staging directory.
	var manifest rpcListFilesResp
	err := retry.Do(ctx, transientRPC, func() error {
		manifest = rpcListFilesResp{}
		return src.Call(ctx, kListFiles, rpcListFilesReq{Shard: shard}, &manifest)
	})
	if err == nil {
		err = fromWireErr(manifest.Err)
	}
	if err != nil {
		return unwind(fmt.Errorf("cluster: handoff: manifest from %s: %w", source, err))
	}
	if err := installRPC(ctx, tgt, kBeginInstall, rpcInstallReq{Shard: shard}); err != nil {
		return unwind(fmt.Errorf("cluster: handoff: begin install on %s: %w", target, err))
	}
	for _, path := range manifest.Paths {
		if err := r.copyFile(ctx, src, tgt, shard, path); err != nil {
			return unwind(fmt.Errorf("cluster: handoff: copy %s: %w", path, err))
		}
	}
	if err := installRPC(ctx, tgt, kFinishInstall, rpcInstallReq{Shard: shard}); err != nil {
		return unwind(fmt.Errorf("cluster: handoff: finish install on %s: %w", target, err))
	}

	// 3. Activate on the target. From here the move is committed.
	if err := installRPC(ctx, tgt, kActivate, rpcInstallReq{Shard: shard}); err != nil {
		return unwind(fmt.Errorf("cluster: handoff: activate on %s: %w", target, err))
	}

	// 4. Flip placement: one shard's owner changes, version bumps.
	np := p.Clone()
	np.Version++
	np.Owners[shard] = target
	if err := r.SetPlacement(np); err != nil {
		return err
	}

	// 5. Retire the source copy. Failures here are advisory: ownership
	// already moved, the old files are garbage at worst.
	if err := installRPC(context.WithoutCancel(ctx), src, kDrop, rpcInstallReq{Shard: shard}); err != nil {
		return fmt.Errorf("cluster: handoff complete, but dropping shard %d from %s failed (stale files remain): %w",
			shard, source, err)
	}
	return nil
}

// copyFile streams one shard file source→target in order, chunked.
func (r *Router) copyFile(ctx context.Context, src, tgt *Client, shard int, path string) error {
	off := int64(0)
	first := true
	for {
		var chunk rpcReadFileResp
		err := retry.Do(ctx, transientRPC, func() error {
			chunk = rpcReadFileResp{}
			return src.Call(ctx, kReadFile,
				rpcReadFileReq{Shard: shard, Path: path, Off: off, Len: handoffChunk}, &chunk)
		})
		if err == nil {
			err = fromWireErr(chunk.Err)
		}
		if err != nil {
			return err
		}
		if len(chunk.Data) > 0 || first {
			if err := installRPC(ctx, tgt, kInstallChunk,
				rpcInstallReq{Shard: shard, Path: path, Data: chunk.Data, First: first}); err != nil {
				return err
			}
		}
		first = false
		off += int64(len(chunk.Data))
		if chunk.EOF || len(chunk.Data) == 0 {
			return nil
		}
	}
}

// freezeRPC toggles a shard's frozen state on one node.
func freezeRPC(ctx context.Context, c *Client, shard int, on bool) error {
	var resp rpcFreezeResp
	err := retry.Do(ctx, transientRPC, func() error {
		resp = rpcFreezeResp{}
		return c.Call(ctx, kFreeze, rpcFreezeReq{Shard: shard, On: on}, &resp)
	})
	if err == nil {
		err = fromWireErr(resp.Err)
	}
	return err
}

// installRPC performs one install-step RPC. Install steps are not blindly
// retried on transport failure (a replayed chunk would corrupt the staged
// file), except Begin/Finish/Drop which are idempotent.
func installRPC(ctx context.Context, c *Client, kind byte, req rpcInstallReq) error {
	var resp rpcInstallResp
	call := func() error {
		resp = rpcInstallResp{}
		return c.Call(ctx, kind, req, &resp)
	}
	var err error
	if kind == kInstallChunk || kind == kActivate {
		err = call()
	} else {
		err = retry.Do(ctx, transientRPC, call)
	}
	if err == nil {
		err = fromWireErr(resp.Err)
	}
	return err
}
