package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spbtree/internal/dataset"
	"spbtree/internal/forest"
	"spbtree/internal/metric"
)

// pickHandoff returns a (shard, target) pair where target does not
// currently own shard.
func pickHandoff(tc *testCluster) (int, string) {
	p := tc.router.Placement()
	for s := 0; s < p.Shards; s++ {
		for _, n := range tc.nodes {
			if n.cfg.Name != p.Owners[s] {
				return s, n.cfg.Name
			}
		}
	}
	panic("unreachable: multiple nodes exist")
}

// TestHandoffMovesShard: after a handoff, the placement names the new
// owner, the files live under the target, the source's copy is gone, and
// the cluster still answers byte-identically.
func TestHandoffMovesShard(t *testing.T) {
	ds := dataset.Words(700, 29)
	tc := startCluster(t, ds, 4)
	ctx := context.Background()
	shard, target := pickHandoff(tc)
	source := tc.router.Placement().Owners[shard]
	v0 := tc.router.Placement().Version

	if err := tc.router.Handoff(ctx, shard, target); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	p := tc.router.Placement()
	if p.Owners[shard] != target {
		t.Fatalf("shard %d owned by %s after handoff, want %s", shard, p.Owners[shard], target)
	}
	if p.Version != v0+1 {
		t.Fatalf("placement version %d, want %d", p.Version, v0+1)
	}

	srcDir := filepath.Join(tc.node(source).cfg.Dir, fmt.Sprintf("shard-%03d", shard))
	if _, err := os.Stat(srcDir); !os.IsNotExist(err) {
		t.Fatalf("source still has %s (stat err %v)", srcDir, err)
	}
	tgtDir := filepath.Join(tc.node(target).cfg.Dir, fmt.Sprintf("shard-%03d", shard))
	if _, err := os.Stat(tgtDir); err != nil {
		t.Fatalf("target missing %s: %v", tgtDir, err)
	}

	// Equivalence still holds through the moved shard.
	for qi := 0; qi < 4; qi++ {
		q := tc.objs[qi*41]
		got, _, err := tc.router.Range(ctx, q, 2)
		if err != nil {
			t.Fatalf("range after handoff: %v", err)
		}
		want, err := tc.ref.RangeQuery(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("post-handoff range q%d", qi), got, want)
	}

	// The moved shard accepts writes again (it was frozen during the copy).
	// Choose an ID congruent to the shard so the insert routes to it.
	obj := metric.NewStr(200000-uint64(200000%4)+uint64(shard), "afterhandoff")
	if forest.PartitionOf(obj.ID(), 4) != shard {
		t.Fatalf("test bug: object routes to shard %d, want %d", forest.PartitionOf(obj.ID(), 4), shard)
	}
	if err := tc.router.Insert(ctx, obj); err != nil {
		t.Fatalf("insert into moved shard: %v", err)
	}
	got, _, err := tc.router.Range(ctx, obj, 0)
	if err != nil || len(got) == 0 {
		t.Fatalf("inserted object not found after handoff (err %v)", err)
	}
}

// TestHandoffStaleRouterRetries: a router still holding the old placement
// learns about a completed handoff from ErrNotOwner, refreshes, and
// retries — the caller sees a complete answer, not an error.
func TestHandoffStaleRouterRetries(t *testing.T) {
	ds := dataset.Words(700, 31)
	tc := startCluster(t, ds, 4)
	ctx := context.Background()
	shard, target := pickHandoff(tc)

	// A second router keeps the pre-handoff placement; its Refresh pulls the
	// fresh one from the first router.
	stale, err := NewRouter(tc.router.Placement(), ds.Codec)
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	stale.Refresh = func(context.Context) (*Placement, error) {
		return tc.router.Placement(), nil
	}

	if err := tc.router.Handoff(ctx, shard, target); err != nil {
		t.Fatalf("handoff: %v", err)
	}

	q := tc.objs[7]
	got, _, err := stale.Range(ctx, q, 2)
	if err != nil {
		t.Fatalf("stale router range: %v", err)
	}
	want, err := tc.ref.RangeQuery(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "stale-router range", got, want)
	if stale.Placement().Owners[shard] != target {
		t.Fatalf("stale router did not adopt the refreshed placement")
	}
}

// TestHandoffDuringQueries: queries hammer the cluster while a shard moves.
// Every query must succeed with the byte-identical answer — reads are
// served by the source until the atomic placement flip, and stale
// dispatches after the flip retry via Refresh. Run under -race this also
// checks the placement swap and shard-map locking.
func TestHandoffDuringQueries(t *testing.T) {
	ds := dataset.Words(700, 37)
	tc := startCluster(t, ds, 4)
	// Self-refresh: the same router performs the handoff, so its placement
	// pointer is always current; Refresh just re-reads it.
	tc.router.Refresh = func(context.Context) (*Placement, error) {
		return tc.router.Placement(), nil
	}
	ctx := context.Background()

	type qa struct {
		q    metric.Object
		want []string
	}
	cases := make([]qa, 5)
	for i := range cases {
		q := tc.objs[i*53]
		want, err := tc.ref.RangeQuery(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(want))
		for j, r := range want {
			keys[j] = fmt.Sprintf("%d/%v/%v", r.Object.ID(), r.Dist, r.Exact)
		}
		cases[i] = qa{q: q, want: keys}
	}

	var stop atomic.Bool
	var queries atomic.Int64
	errCh := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				c := cases[(w+i)%len(cases)]
				got, _, err := tc.router.Range(ctx, c.q, 2)
				if err != nil {
					errCh <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if len(got) != len(c.want) {
					errCh <- fmt.Errorf("worker %d: %d results, want %d", w, len(got), len(c.want))
					return
				}
				for j, r := range got {
					key := fmt.Sprintf("%d/%v/%v", r.Object.ID(), r.Dist, r.Exact)
					if key != c.want[j] {
						errCh <- fmt.Errorf("worker %d: result %d = %s, want %s", w, j, key, c.want[j])
						return
					}
				}
				queries.Add(1)
			}
		}(w)
	}

	// Move two shards back and forth while the workers run.
	for round := 0; round < 2; round++ {
		shard, target := pickHandoff(tc)
		source := tc.router.Placement().Owners[shard]
		if err := tc.router.Handoff(ctx, shard, target); err != nil {
			t.Fatalf("handoff round %d: %v", round, err)
		}
		if err := tc.router.Handoff(ctx, shard, source); err != nil {
			t.Fatalf("handoff back round %d: %v", round, err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during the handoffs")
	}
	t.Logf("%d queries answered correctly across 4 handoffs", queries.Load())
}

// TestHandoffFrozenWrites: mutations against a frozen shard fail typed
// (ErrShardFrozen) rather than corrupting the copy, and unfreeze restores
// them. Exercised through the node RPC surface directly.
func TestHandoffFrozenWrites(t *testing.T) {
	ds := dataset.Words(400, 41)
	tc := startCluster(t, ds, 4)
	ctx := context.Background()
	p := tc.router.Placement()
	shard := 0
	owner := p.Owners[shard]
	addr := p.Nodes[owner]

	c := NewClient(addr)
	defer c.Close()
	var fr rpcFreezeResp
	if err := c.Call(ctx, kFreeze, rpcFreezeReq{Shard: shard, On: true}, &fr); err != nil {
		t.Fatalf("freeze: %v", err)
	}
	if fr.Err != nil {
		t.Fatalf("freeze: %v", fromWireErr(fr.Err))
	}

	obj := metric.NewStr(uint64(300000+shard), "frozenwrite")
	if forest.PartitionOf(obj.ID(), p.Shards) != shard {
		t.Fatalf("test bug: object routes to shard %d, want %d", forest.PartitionOf(obj.ID(), p.Shards), shard)
	}
	err := tc.router.Insert(ctx, obj)
	if !errors.Is(err, ErrShardFrozen) {
		t.Fatalf("insert into frozen shard: err = %v, want ErrShardFrozen", err)
	}

	if err := c.Call(ctx, kFreeze, rpcFreezeReq{Shard: shard, On: false}, &fr); err != nil {
		t.Fatalf("unfreeze: %v", err)
	}
	if err := tc.router.Insert(ctx, obj); err != nil {
		t.Fatalf("insert after unfreeze: %v", err)
	}
}
