// Package cluster distributes a partitioned SPB-tree (internal/forest)
// across processes: each node owns a subset of the forest's shards as
// durable trees, a consistent-hash ring assigns shards to nodes, and a
// router scatters queries to the owning nodes and gather-merges the answers
// with the same associative reductions the single-process forest uses — so
// a cluster answers byte-identically to the equivalent local forest.
//
// The wire layer is hand-rolled on the standard library: length-prefixed
// frames carrying self-contained gob payloads over TCP. Deadlines travel as
// remaining-microsecond budgets, results travel alongside typed errors (the
// partials-plus-typed-error contract survives the network hop), and shard
// handoff moves a durable tree's files between nodes with reads served by
// the old owner until the placement flips. DESIGN.md §12 specifies the
// protocol and the placement/handoff state machines; OPERATIONS.md is the
// runbook.
package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"spbtree/internal/core"
)

// Frame layout (DESIGN.md §12.2): a fixed 13-byte header — payload length
// (u32, big-endian), request ID (u64, big-endian), kind (u8) — followed by
// exactly length bytes of payload, a self-contained gob stream. Responses
// echo the request ID, which is how the multiplexing client pairs them with
// callers; kinds are per-operation so a reader can dispatch without
// decoding.
const (
	frameHeaderLen = 4 + 8 + 1
	// maxFramePayload bounds a frame, defending both sides against corrupt
	// or hostile length prefixes. 64 MiB fits every legitimate payload: the
	// largest are export snapshots and handoff chunks, both of which the
	// senders cap far below this.
	maxFramePayload = 64 << 20
)

// Request/response kinds. A response frame answers with the request's kind
// on success and kErr on failure — so the client decodes the payload into
// the matching response struct either way (every response struct carries
// its Err field).
const (
	kRange byte = iota + 1
	kKNN
	kJoin
	kMutate
	kStats
	kExport
	kFreeze
	kListFiles
	kReadFile
	kBeginInstall
	kInstallChunk
	kFinishInstall
	kActivate
	kDrop
	kPing
	kErr
	// kHint was added after the v1 kinds (DESIGN.md §15.4); kinds are
	// append-only so every byte value above stays wire-stable.
	kHint
)

// Error codes carried by wireErr, mapping wire failures back onto the
// library's typed errors on the client side (see fromWireErr).
const (
	ecGeneric uint8 = iota
	ecCanceled
	ecNotFound
	ecClosed
	ecNotOwner
	ecFrozen
)

// wireErr is an error crossing the wire: a code for the typed identity and
// the full message for humans. The zero pointer means success.
type wireErr struct {
	Code uint8
	Msg  string
}

// toWireErr translates err for transport, preserving the typed identities
// the query contract promises (core.ErrCanceled et al.).
func toWireErr(err error) *wireErr {
	if err == nil {
		return nil
	}
	code := ecGeneric
	switch {
	case errors.Is(err, core.ErrCanceled):
		code = ecCanceled
	case errors.Is(err, core.ErrNotFound):
		code = ecNotFound
	case errors.Is(err, core.ErrClosed):
		code = ecClosed
	case errors.Is(err, ErrNotOwner):
		code = ecNotOwner
	case errors.Is(err, ErrShardFrozen):
		code = ecFrozen
	}
	return &wireErr{Code: code, Msg: err.Error()}
}

// fromWireErr reconstitutes a transported error so errors.Is works across
// the network exactly as it does in-process: a canceled remote query still
// matches core.ErrCanceled, a frozen shard still matches ErrShardFrozen.
func fromWireErr(we *wireErr) error {
	if we == nil {
		return nil
	}
	switch we.Code {
	case ecCanceled:
		return fmt.Errorf("%w: %s", core.ErrCanceled, we.Msg)
	case ecNotFound:
		return fmt.Errorf("%w: %s", core.ErrNotFound, we.Msg)
	case ecClosed:
		return fmt.Errorf("%w: %s", core.ErrClosed, we.Msg)
	case ecNotOwner:
		return fmt.Errorf("%w: %s", ErrNotOwner, we.Msg)
	case ecFrozen:
		return fmt.Errorf("%w: %s", ErrShardFrozen, we.Msg)
	}
	return errors.New(we.Msg)
}

// wireObj is a metric object in transit: its ID plus its AppendBinary
// payload, decoded on the far side with the space's shared Codec. Objects
// cross the wire this way because metric.Object is an interface gob cannot
// encode generically — and because the codec round-trip is exactly the
// storage round-trip, so a transported object is bit-equal to a stored one.
type wireObj struct {
	ID   uint64
	Data []byte
}

// wireResult is one query answer in transit.
type wireResult struct {
	ID    uint64
	Data  []byte
	Dist  float64
	Exact bool
}

// rpcRangeReq asks the receiving node to answer RQ(Q, r) over the listed
// shards (which it must own). DeadlineUS is the caller's remaining budget in
// microseconds at send time (0 = none): the receiver re-arms it as a local
// context deadline, so cancellation semantics survive the hop without
// clock synchronization.
type rpcRangeReq struct {
	Shards     []int
	Q          wireObj
	R          float64
	DeadlineUS int64
	WithStats  bool
}

// rpcKNNReq asks for kNN (or budgeted approximate kNN when Approx is set)
// over the listed shards. With Bounded set the request is a staged scatter's
// second-stage probe (DESIGN.md §15.4): the receiver answers the canonical
// top-k among objects within Bound of Q instead of the unrestricted top-k.
// Bounded and Approx are mutually exclusive. Old receivers never see these
// fields set (only the adaptive router sends them), and gob decodes their
// absence as false/0 — plain kNN — on old senders.
type rpcKNNReq struct {
	Shards     []int
	Q          wireObj
	K          int
	MaxVerify  int
	Approx     bool
	DeadlineUS int64
	WithStats  bool
	Bounded    bool
	Bound      float64
}

// rpcQueryResp carries a query's answers. Err and Results are NOT mutually
// exclusive: a canceled or failed query returns the partial results
// gathered before the failure alongside the typed error, preserving the
// library's partials contract across the wire.
type rpcQueryResp struct {
	Results []wireResult
	Stats   core.QueryStats
	Err     *wireErr
}

// Hint flavors carried by rpcHintReq.
const (
	hintRange byte = 1
	hintKNN   byte = 2
)

// rpcHintReq asks the owning node for per-shard planning hints (DESIGN.md
// §15.4) without executing the query: relevance (summary-box MinDist, range
// prunability) and predicted cost for each listed shard. The router plans
// its scatter from the answers — which shards to skip, which to visit first.
type rpcHintReq struct {
	Shards     []int
	Q          wireObj
	Hint       byte // hintRange or hintKNN
	R          float64
	K          int
	DeadlineUS int64
}

// rpcHintResp carries one hint per requested shard, in request order. Hints
// are all-or-nothing: any per-shard failure fails the response, and the
// router falls back to the flat scatter (which answers identically).
type rpcHintResp struct {
	Hints []core.ShardHint
	Err   *wireErr
}

// shardRef names a shard and the address of the node serving it; an empty
// Addr means "the receiving node owns it".
type shardRef struct {
	Shard int
	Addr  string
}

// rpcJoinReq asks the receiving node to self-join its owned QShards against
// every shard of the cluster (OShards): local partners join directly,
// remote partners are fetched once via kExport and rebuilt into the shared
// mapped space (DESIGN.md §12.5).
type rpcJoinReq struct {
	QShards    []int
	OShards    []shardRef
	Eps        float64
	DeadlineUS int64
}

// rpcJoinResp carries join pairs as ID pairs — the objects themselves stay
// put. Partials accompany Err, as in rpcQueryResp.
type rpcJoinResp struct {
	Pairs []core.IDPair
	Err   *wireErr
}

// rpcMutateReq inserts (or, with Delete set, deletes) one object into the
// named shard. The router sends it to the shard's owner; a node that does
// not own the shard answers ErrNotOwner, which the router turns into a
// placement refresh and a single retry.
type rpcMutateReq struct {
	Shard  int
	Obj    wireObj
	Delete bool
}

// rpcMutateResp acknowledges a mutation.
type rpcMutateResp struct {
	Objects int
	Err     *wireErr
}

// rpcStatsReq asks a node for its shape and counters.
type rpcStatsReq struct{}

// rpcStatsResp carries the node's stats snapshot.
type rpcStatsResp struct {
	Stats NodeStats
	Err   *wireErr
}

// rpcExportReq asks for a snapshot of a shard's live objects — the
// data-shipping primitive behind distributed joins.
type rpcExportReq struct {
	Shard      int
	DeadlineUS int64
}

// rpcExportResp carries the snapshot, sorted by ascending ID.
type rpcExportResp struct {
	Objs []wireObj
	Err  *wireErr
}

// rpcFreezeReq toggles a shard's frozen state. Frozen shards serve queries
// and exports but reject mutations with ErrShardFrozen, and their
// background compaction is held — the quiesced state handoff copies from.
type rpcFreezeReq struct {
	Shard int
	On    bool
}

// rpcFreezeResp acknowledges the toggle.
type rpcFreezeResp struct {
	Err *wireErr
}

// rpcListFilesReq asks the owner for a frozen shard's file manifest.
type rpcListFilesReq struct {
	Shard int
}

// rpcListFilesResp lists the shard directory's files (paths relative to the
// shard root) and sizes at manifest time.
type rpcListFilesResp struct {
	Paths []string
	Sizes []int64
	Err   *wireErr
}

// rpcReadFileReq reads Len bytes at Off of one shard file.
type rpcReadFileReq struct {
	Shard int
	Path  string
	Off   int64
	Len   int
}

// rpcReadFileResp carries the bytes; EOF reports whether the file ends at
// Off+len(Data).
type rpcReadFileResp struct {
	Data []byte
	EOF  bool
	Err  *wireErr
}

// rpcInstallReq drives the receiving side of handoff: BeginInstall creates
// the staging directory, InstallChunk appends Data to Path within it
// (chunks for one file arrive in order), FinishInstall fsyncs the staged
// tree, Activate renames staging into place and opens the shard, Drop
// closes and deletes a shard the node no longer owns.
type rpcInstallReq struct {
	Shard int
	Path  string
	Data  []byte
	First bool
}

// rpcInstallResp acknowledges one install step.
type rpcInstallResp struct {
	Err *wireErr
}

// rpcPingReq checks liveness.
type rpcPingReq struct{}

// rpcPingResp answers a ping with the node's name.
type rpcPingResp struct {
	Name string
	Err  *wireErr
}

// writeFrame gob-encodes payload and writes one frame. Callers serialize
// concurrent writers (the client and the per-connection server loop each
// hold a write mutex).
func writeFrame(w io.Writer, reqID uint64, kind byte, payload interface{}) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeaderLen)) // header placeholder
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return fmt.Errorf("cluster: encode frame kind %d: %w", kind, err)
	}
	b := buf.Bytes()
	n := len(b) - frameHeaderLen
	if n > maxFramePayload {
		return fmt.Errorf("cluster: frame payload %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(b[0:4], uint32(n))
	binary.BigEndian.PutUint64(b[4:12], reqID)
	b[12] = kind
	_, err := w.Write(b)
	return err
}

// readFrame reads one frame header and payload. The payload comes back raw;
// the caller decodes it into the struct its kind implies via decodePayload.
func readFrame(r io.Reader) (reqID uint64, kind byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > maxFramePayload {
		return 0, 0, nil, fmt.Errorf("cluster: frame payload %d bytes exceeds limit", n)
	}
	reqID = binary.BigEndian.Uint64(hdr[4:12])
	kind = hdr[12]
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("cluster: short frame payload: %w", err)
	}
	return reqID, kind, payload, nil
}

// decodePayload decodes a frame payload into out.
func decodePayload(payload []byte, out interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("cluster: decode frame: %w", err)
	}
	return nil
}
