package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
)

// ErrNotOwner matches (errors.Is) a request that reached a node for a shard
// it does not own — the normal signal that the caller's placement is stale
// (a handoff completed since it was fetched). The router reacts by
// refreshing its placement and retrying once; other callers should refetch
// placement and re-route.
var ErrNotOwner = errors.New("cluster: node does not own shard")

// ErrShardFrozen matches (errors.Is) a mutation rejected because the shard
// is quiesced for handoff. Queries and exports keep working on a frozen
// shard; only writes and compaction pause. Writers should retry after the
// handoff's placement flip (against the new owner).
var ErrShardFrozen = errors.New("cluster: shard is frozen for handoff")

// NodeError is the typed per-node failure the scatter layer attaches to
// partial results: when a cluster query returns with some nodes failed, the
// answer contains everything the healthy nodes produced and the error is
// one NodeError per failed node (joined with errors.Join), each naming the
// node and wrapping its underlying cause — so errors.Is still recognizes
// core.ErrCanceled, ErrNotOwner, connection failures, and friends.
type NodeError struct {
	// Node is the placement name of the failed node.
	Node string
	// Addr is the address the failure occurred against.
	Addr string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *NodeError) Error() string {
	return fmt.Sprintf("cluster: node %s (%s): %v", e.Node, e.Addr, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *NodeError) Unwrap() error { return e.Err }

// AsNodeErrors unpacks an error returned by a router scatter into its
// per-node failures (via errors.As over an errors.Join chain). A nil error
// yields nil.
func AsNodeErrors(err error) []*NodeError {
	if err == nil {
		return nil
	}
	var out []*NodeError
	collect(err, &out)
	return out
}

// collect walks Unwrap trees (including errors.Join's Unwrap() []error)
// gathering NodeErrors. It checks each tree node's own type rather than
// using errors.As, which would find only the first NodeError in a joined
// tree and hide its siblings.
func collect(err error, out *[]*NodeError) {
	switch e := err.(type) {
	case nil:
	case *NodeError:
		*out = append(*out, e)
	case interface{ Unwrap() []error }:
		for _, sub := range e.Unwrap() {
			collect(sub, out)
		}
	case interface{ Unwrap() error }:
		collect(e.Unwrap(), out)
	}
}

// transientRPC reports whether an RPC failure is worth a redial-and-retry:
// connection-level failures that a node restart or a transient network blip
// explains. Application-level errors (typed wire errors, cancellations)
// are never transient — they came from a healthy conversation.
func transientRPC(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}
