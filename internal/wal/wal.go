// Package wal is the SPB-tree's write-ahead log: an append-only, segmented,
// CRC32-C-framed record log with group commit. Concurrent Append callers are
// batched by a single committer goroutine into one write+fsync, so write
// throughput scales with concurrency while every acknowledged append is
// durable — the contract the durable tree's recovery path builds on
// (DESIGN.md §11).
//
// Frame layout (little-endian):
//
//	u32 payload length | u64 LSN | u8 type | payload | u32 CRC32-C
//
// The checksum covers LSN, type and payload. LSNs are assigned contiguously
// by the committer, and each segment's header records the LSN of its first
// frame, so replay can verify that no frame was lost or reordered.
//
// Segment layout: wal-%016x.log files named by their first LSN, each opening
// with a 16-byte header (magic "SPBW", version, first LSN). Rotation fsyncs
// the old tail before the new segment becomes reachable, so a torn frame can
// only ever be in the newest segment: replay treats a bad frame there as the
// crash tail and truncates, while a bad frame in any earlier segment is
// reported as corruption (ErrCorrupt) — never silently skipped.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"spbtree/internal/retry"
)

const (
	// headerSize is the fixed segment header: magic (4) + version (4) +
	// first LSN (8).
	headerSize = 16
	// frameOverhead is a frame's fixed cost: length (4) + LSN (8) + type (1)
	// + CRC (4).
	frameOverhead = 17
	// MaxPayload caps one record's payload.
	MaxPayload = 16 << 20
	// walVersion versions the segment encoding.
	walVersion = 1
	// defaultSegmentBytes rotates segments at 64 MiB.
	defaultSegmentBytes = 64 << 20
	// maxBatch caps how many appends one group commit folds together.
	maxBatch = 1024
)

// segPrefix/segSuffix frame the segment file names: wal-%016x.log.
const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

var (
	walMagic = [4]byte{'S', 'P', 'B', 'W'}
	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

// ErrClosed matches appends that failed because the log was closed while
// they were pending or before they were submitted.
var ErrClosed = errors.New("wal: log closed")

// ErrCorrupt matches replay failures that are not a legal crash artifact: a
// bad frame or header in any segment other than the newest one. A torn tail
// in the newest segment is normal crash damage and is truncated, never
// reported through this error.
var ErrCorrupt = errors.New("wal: corrupt log")

// RecordType discriminates log records. The WAL itself is payload-agnostic;
// the types exist so replayers can dispatch without decoding.
type RecordType uint8

const (
	// RecInsert is an object insertion (or upsert).
	RecInsert RecordType = 1
	// RecDelete is an object deletion.
	RecDelete RecordType = 2
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Record is one replayed log entry.
type Record struct {
	// LSN is the record's log sequence number; contiguous and ascending.
	LSN uint64
	// Type is the record discriminator.
	Type RecordType
	// Payload is the record body. Replay hands each callback a fresh copy.
	Payload []byte
}

// Options configures Open.
type Options struct {
	// FS is the filesystem; nil selects the host filesystem.
	FS FS
	// NoSync skips the fsync of each group commit. Appends then acknowledge
	// after the OS accepted the bytes — fast and crash-unsafe, for benchmarks
	// quantifying the cost of durability only.
	NoSync bool
	// SegmentBytes is the rotation threshold (default 64 MiB).
	SegmentBytes int64
}

// Stats is a snapshot of the log's lifetime counters, for observing the
// group-commit batching ratio (Appends/Batches) and sync volume.
type Stats struct {
	// Appends counts acknowledged records.
	Appends int64
	// Batches counts group commits (write+fsync rounds).
	Batches int64
	// Syncs counts fsyncs issued on segment files.
	Syncs int64
}

// Log is an open write-ahead log. Append is safe for concurrent use; Close
// fails all pending appends with ErrClosed.
type Log struct {
	dir      string
	fs       FS
	noSync   bool
	segBytes int64

	// qmu guards the pending append queue — deliberately separate from mu so
	// appenders keep enqueueing (and batching up) while the committer holds
	// mu through a write+fsync. This separation is the group commit.
	qmu       sync.Mutex
	pending   []*appendReq
	scheduled bool
	closed    bool

	kick chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup

	// mu guards the active segment and LSN state: the committer's
	// write/rotate path and Checkpoint's segment deletion.
	mu          sync.Mutex
	f           File
	activeName  string
	activeFirst uint64
	size        int64
	nextLSN     uint64
	failed      error // poisoned: a rollback after a failed write also failed

	appends atomic.Int64
	batches atomic.Int64
	syncs   atomic.Int64
}

// appendReq is one caller waiting for its group commit.
type appendReq struct {
	typ     RecordType
	payload []byte
	lsn     uint64
	err     error
	done    chan struct{}
}

// segmentName formats the file name of the segment whose first record is lsn.
func segmentName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, lsn, segSuffix)
}

// parseSegmentName extracts the first LSN from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	lsn, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// SegmentInfo describes one on-disk segment.
type SegmentInfo struct {
	// Name is the file name within the log directory.
	Name string
	// FirstLSN is the LSN of the segment's first frame (from its name).
	FirstLSN uint64
}

// Segments lists the log's segment files in LSN order. fsys nil selects the
// host filesystem.
func Segments(dir string, fsys FS) ([]SegmentInfo, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentInfo
	for _, n := range names {
		if lsn, ok := parseSegmentName(n); ok {
			segs = append(segs, SegmentInfo{Name: n, FirstLSN: lsn})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].FirstLSN < segs[j].FirstLSN })
	return segs, nil
}

// Open opens (creating if necessary) the log in dir, repairs any torn tail
// in the newest segment by truncating at the first bad frame, and starts the
// committer. The caller should Replay first if it needs the surviving
// records — Open decides durability boundaries but does not interpret
// payloads.
func Open(dir string, opts Options) (*Log, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{
		dir:      dir,
		fs:       fsys,
		noSync:   opts.NoSync,
		segBytes: segBytes,
		kick:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
	}
	segs, err := Segments(dir, fsys)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
		if err := fsys.SyncDir(dir); err != nil {
			l.f.Close()
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		l.nextLSN = 1
	} else {
		last := segs[len(segs)-1]
		path := filepath.Join(dir, last.Name)
		f, err := fsys.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		goodEnd, lastLSN, headerOK, err := scanTail(f, last.FirstLSN)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: open %s: %w", last.Name, err)
		}
		if !headerOK {
			// The segment was created during a rotation the crash interrupted
			// before its header became durable: no frame can have been
			// written (the committer writes the header first). Rewrite it.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: open: repair header: %w", err)
			}
			if err := writeHeader(f, last.FirstLSN); err != nil {
				f.Close()
				return nil, err
			}
			goodEnd, lastLSN = headerSize, last.FirstLSN-1
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		if goodEnd < size {
			// Torn tail: drop everything from the first bad frame on.
			if err := f.Truncate(goodEnd); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: open: truncate torn tail: %w", err)
			}
		}
		if err := retry.Sync(f.Sync); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		l.f = f
		l.activeName = last.Name
		l.activeFirst = last.FirstLSN
		l.size = goodEnd
		l.nextLSN = lastLSN + 1
	}
	l.wg.Add(1)
	go l.committer()
	return l, nil
}

// createSegment creates and syncs a fresh segment whose first record will be
// firstLSN, and makes it the active tail. Callers must sync the directory.
func (l *Log) createSegment(firstLSN uint64) error {
	name := segmentName(firstLSN)
	f, err := l.fs.OpenFile(filepath.Join(l.dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := writeHeader(f, firstLSN); err != nil {
		f.Close()
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.activeName = name
	l.activeFirst = firstLSN
	l.size = headerSize
	return nil
}

// writeHeader writes and syncs a segment header.
func writeHeader(f File, firstLSN uint64) error {
	var h [headerSize]byte
	copy(h[0:4], walMagic[:])
	binary.LittleEndian.PutUint32(h[4:8], walVersion)
	binary.LittleEndian.PutUint64(h[8:16], firstLSN)
	if err := retry.Write(f, h[:]); err != nil {
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := retry.Sync(f.Sync); err != nil {
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	return nil
}

// Append submits one record and blocks until its group commit makes it
// durable (or fails). The returned LSN is the record's replay identity.
func (l *Log) Append(typ RecordType, payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload is %d bytes, limit %d", len(payload), MaxPayload)
	}
	req := &appendReq{typ: typ, payload: payload, done: make(chan struct{})}
	l.qmu.Lock()
	if l.closed {
		l.qmu.Unlock()
		return 0, ErrClosed
	}
	l.pending = append(l.pending, req)
	if !l.scheduled {
		l.scheduled = true
		l.kick <- struct{}{}
	}
	l.qmu.Unlock()
	<-req.done
	return req.lsn, req.err
}

// committer is the single goroutine that turns pending appends into group
// commits: one frame-encoded write and one fsync per batch, then every
// caller in the batch is acknowledged with its LSN.
func (l *Log) committer() {
	defer l.wg.Done()
	for {
		select {
		case <-l.kick:
		case <-l.quit:
			l.qmu.Lock()
			batch := l.pending
			l.pending = nil
			l.qmu.Unlock()
			failBatch(batch, ErrClosed)
			return
		}
		l.qmu.Lock()
		batch := l.pending
		l.pending = nil
		l.scheduled = false
		l.qmu.Unlock()
		for len(batch) > 0 {
			n := len(batch)
			if n > maxBatch {
				n = maxBatch
			}
			l.commit(batch[:n])
			batch = batch[n:]
		}
	}
}

// failBatch acknowledges every request with err.
func failBatch(batch []*appendReq, err error) {
	for _, r := range batch {
		r.err = err
		close(r.done)
	}
}

// commit durably appends one batch: rotate if due, encode all frames into a
// single buffer, write, fsync, acknowledge. On a write or sync failure the
// tail is rolled back to the pre-batch size so no partial frame lingers in
// the middle of the segment — the invariant that lets replay treat any bad
// frame below the tail as corruption rather than crash damage.
func (l *Log) commit(batch []*appendReq) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		failBatch(batch, l.failed)
		return
	}
	if l.size >= l.segBytes {
		if err := l.rotateLocked(); err != nil {
			failBatch(batch, err)
			return
		}
	}
	var buf []byte
	for i, r := range batch {
		buf = appendFrame(buf, l.nextLSN+uint64(i), r.typ, r.payload)
	}
	preSize := l.size
	if err := retry.Write(l.f, buf); err != nil {
		l.rollbackLocked(preSize, err)
		failBatch(batch, err)
		return
	}
	if !l.noSync {
		if err := retry.Sync(l.f.Sync); err != nil {
			l.rollbackLocked(preSize, err)
			failBatch(batch, err)
			return
		}
		l.syncs.Add(1)
	}
	l.size += int64(len(buf))
	for _, r := range batch {
		r.lsn = l.nextLSN
		l.nextLSN++
		close(r.done)
	}
	l.appends.Add(int64(len(batch)))
	l.batches.Add(1)
}

// rollbackLocked truncates the active segment back to size after a failed
// batch. If even the rollback fails, the log is poisoned: the on-disk tail
// state is unknown, so further appends could write after a torn frame and
// become unreachable to replay.
func (l *Log) rollbackLocked(size int64, cause error) {
	if err := l.f.Truncate(size); err != nil {
		l.failed = fmt.Errorf("wal: poisoned: rollback after %v failed: %w", cause, err)
		return
	}
	if err := retry.Sync(l.f.Sync); err != nil {
		l.failed = fmt.Errorf("wal: poisoned: rollback sync after %v failed: %w", cause, err)
	}
}

// rotateLocked seals the active segment and switches to a fresh one. The
// old tail is fsynced before the new segment becomes reachable (created,
// header-synced, directory-synced), so only the newest segment can ever hold
// a torn frame.
func (l *Log) rotateLocked() error {
	if err := retry.Sync(l.f.Sync); err != nil {
		return fmt.Errorf("wal: rotate: seal %s: %w", l.activeName, err)
	}
	l.syncs.Add(1)
	if err := l.createSegment(l.nextLSN); err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	return nil
}

// Checkpoint records that every LSN ≤ upTo is durably applied elsewhere and
// garbage-collects the log: the active segment is rotated away if it is
// fully applied and non-empty, and every segment whose records all fall at
// or below upTo (and that is no longer active) is deleted. Replay after a
// checkpoint starts at the oldest surviving segment.
func (l *Log) Checkpoint(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.size > headerSize && l.nextLSN-1 <= upTo {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	segs, err := Segments(l.dir, l.fs)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	removed := false
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].FirstLSN > upTo+1 || segs[i].Name == l.activeName {
			break
		}
		if err := l.fs.Remove(filepath.Join(l.dir, segs[i].Name)); err != nil {
			return fmt.Errorf("wal: checkpoint: %w", err)
		}
		removed = true
	}
	if removed {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return fmt.Errorf("wal: checkpoint: %w", err)
		}
	}
	return nil
}

// Sync forces the active segment to stable storage — only useful under
// NoSync, where commits skip it.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if err := retry.Sync(l.f.Sync); err != nil {
		return err
	}
	l.syncs.Add(1)
	return nil
}

// NextLSN returns the LSN the next accepted append will get.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Stats snapshots the lifetime counters.
func (l *Log) Stats() Stats {
	return Stats{Appends: l.appends.Load(), Batches: l.batches.Load(), Syncs: l.syncs.Load()}
}

// Close stops the committer, fails every pending append with ErrClosed, and
// closes the active segment. Records acknowledged before Close remain
// durable; records still waiting are rejected, never half-committed.
func (l *Log) Close() error {
	l.qmu.Lock()
	if l.closed {
		l.qmu.Unlock()
		return ErrClosed
	}
	l.closed = true
	l.qmu.Unlock()
	close(l.quit)
	l.wg.Wait()
	// The committer has exited; any stragglers that enqueued before closed
	// was set were drained by its quit path.
	l.mu.Lock()
	defer l.mu.Unlock()
	var syncErr error
	if l.failed == nil && !l.noSync {
		syncErr = retry.Sync(l.f.Sync)
	}
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// appendFrame encodes one frame onto b.
func appendFrame(b []byte, lsn uint64, typ RecordType, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	start := len(b)
	b = binary.LittleEndian.AppendUint64(b, lsn)
	b = append(b, byte(typ))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[start:], crcTable))
}

// readHeader validates a segment header read from f; ok is false when the
// header is absent or mangled (only legal for a rotation-interrupted newest
// segment).
func readHeader(f io.ReaderAt, wantFirst uint64) (ok bool, err error) {
	var h [headerSize]byte
	n, err := f.ReadAt(h[:], 0)
	if err == io.EOF || n < headerSize {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if [4]byte(h[0:4]) != walMagic {
		return false, nil
	}
	if binary.LittleEndian.Uint32(h[4:8]) != walVersion {
		return false, nil
	}
	if binary.LittleEndian.Uint64(h[8:16]) != wantFirst {
		return false, nil
	}
	return true, nil
}

// scanFrames iterates the valid frame prefix of a segment, calling fn per
// frame, and returns the byte offset just past the last valid frame plus the
// last valid LSN (firstLSN-1 when no frame is valid). Any malformed frame —
// truncated, bad CRC, out-of-sequence LSN, oversized length — stops the
// scan; the caller decides whether that is a torn tail or corruption.
func scanFrames(f File, firstLSN uint64, fn func(Record) error) (goodEnd int64, lastLSN uint64, err error) {
	size, err := f.Size()
	if err != nil {
		return 0, 0, err
	}
	off := int64(headerSize)
	expect := firstLSN
	var hdr [13]byte
	for {
		if off+frameOverhead > size {
			return off, expect - 1, nil
		}
		if _, err := f.ReadAt(hdr[:4], off); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, expect - 1, nil
			}
			return 0, 0, err
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[:4]))
		if plen > MaxPayload || off+frameOverhead+plen > size {
			return off, expect - 1, nil
		}
		body := make([]byte, 9+plen+4)
		if _, err := f.ReadAt(body, off+4); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, expect - 1, nil
			}
			return 0, 0, err
		}
		want := binary.LittleEndian.Uint32(body[9+plen:])
		if crc32.Checksum(body[:9+plen], crcTable) != want {
			return off, expect - 1, nil
		}
		lsn := binary.LittleEndian.Uint64(body[0:8])
		if lsn != expect {
			return off, expect - 1, nil
		}
		if fn != nil {
			if err := fn(Record{LSN: lsn, Type: RecordType(body[8]), Payload: body[9 : 9+plen]}); err != nil {
				return 0, 0, err
			}
		}
		off += frameOverhead + plen
		expect++
	}
}

// scanTail finds the durable frontier of the newest segment: the end of its
// valid frame prefix and the last valid LSN. headerOK is false when the
// header itself is mangled (a rotation-interrupted creation).
func scanTail(f File, firstLSN uint64) (goodEnd int64, lastLSN uint64, headerOK bool, err error) {
	ok, err := readHeader(f, firstLSN)
	if err != nil {
		return 0, 0, false, err
	}
	if !ok {
		return headerSize, firstLSN - 1, false, nil
	}
	goodEnd, lastLSN, err = scanFrames(f, firstLSN, nil)
	if err != nil {
		return 0, 0, true, err
	}
	return goodEnd, lastLSN, true, nil
}

// Replay scans every segment in LSN order and calls fn for each record with
// LSN > after. A bad frame or header in the newest segment is the crash tail
// and ends the replay cleanly; anywhere else it fails with ErrCorrupt.
// Returns the last LSN seen (or `after` if none). fn's Record payload is
// only valid during the call.
func Replay(dir string, fsys FS, after uint64, fn func(Record) error) (uint64, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	segs, err := Segments(dir, fsys)
	if err != nil {
		if os.IsNotExist(err) {
			return after, nil
		}
		return after, fmt.Errorf("wal: replay: %w", err)
	}
	last := after
	for i, seg := range segs {
		path := filepath.Join(dir, seg.Name)
		f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
		if err != nil {
			return last, fmt.Errorf("wal: replay: %w", err)
		}
		newest := i == len(segs)-1
		headerOK, err := readHeader(f, seg.FirstLSN)
		if err != nil {
			f.Close()
			return last, fmt.Errorf("wal: replay %s: %w", seg.Name, err)
		}
		if !headerOK {
			f.Close()
			if newest {
				return last, nil
			}
			return last, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, seg.Name)
		}
		var cbErr error
		goodEnd, lastLSN, err := scanFrames(f, seg.FirstLSN, func(rec Record) error {
			if rec.LSN > after {
				if err := fn(rec); err != nil {
					cbErr = err
					return err
				}
			}
			return nil
		})
		if err != nil {
			f.Close()
			if cbErr != nil {
				return last, cbErr
			}
			return last, fmt.Errorf("wal: replay %s: %w", seg.Name, err)
		}
		size, err := f.Size()
		f.Close()
		if err != nil {
			return last, fmt.Errorf("wal: replay: %w", err)
		}
		if lastLSN >= seg.FirstLSN {
			last = lastLSN
		}
		if goodEnd < size && !newest {
			return last, fmt.Errorf("%w: %s: bad frame at offset %d", ErrCorrupt, seg.Name, goodEnd)
		}
		if !newest && i+1 < len(segs) && segs[i+1].FirstLSN != lastLSN+1 {
			return last, fmt.Errorf("%w: %s ends at LSN %d but %s starts at %d",
				ErrCorrupt, seg.Name, lastLSN, segs[i+1].Name, segs[i+1].FirstLSN)
		}
	}
	return last, nil
}
