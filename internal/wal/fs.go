package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the log needs. The default implementation is
// the host filesystem (osFS); tests substitute fault-injecting
// implementations to exercise torn writes, failed fsyncs and short writes
// without touching a real disk's failure modes.
type FS interface {
	// OpenFile opens name with the given flags. Segment files are opened with
	// O_APPEND for the active tail and plain O_RDWR for truncation.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir lists the file names (not full paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making completed creates/removes durable.
	SyncDir(dir string) error
}

// File is the per-segment file surface: appending writes, positioned reads
// for replay, truncation for torn-tail repair, and fsync.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Sync() error
	Truncate(size int64) error
	// Size returns the file's current length in bytes.
	Size() (int64, error)
}

// OSFS is the host-filesystem implementation of FS.
type OSFS struct{}

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// osFile adapts *os.File to File.
type osFile struct{ *os.File }

// Size implements File.
func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
