package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- fault-injecting FS -----------------------------------------------------

// faultFS wraps OSFS with the failure knobs the crash tests need: delayed
// fsyncs (to force group commits to batch), a countdown of fsyncs to fail,
// and truncation failures (to exercise the poisoning path).
type faultFS struct {
	OSFS
	syncDelay    time.Duration
	failSyncs    atomic.Int32 // fail this many file Syncs, then succeed
	failTruncate atomic.Bool
}

var errFault = errors.New("walfault: injected")

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.OSFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

type faultFile struct {
	File
	fs *faultFS
}

func (f *faultFile) Sync() error {
	if f.fs.syncDelay > 0 {
		time.Sleep(f.fs.syncDelay)
	}
	if n := f.fs.failSyncs.Load(); n > 0 && f.fs.failSyncs.CompareAndSwap(n, n-1) {
		return errFault
	}
	return f.File.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if f.fs.failTruncate.Load() {
		return errFault
	}
	return f.File.Truncate(size)
}

// --- helpers ----------------------------------------------------------------

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		typ := RecInsert
		if i%3 == 2 {
			typ = RecDelete
		}
		if _, err := l.Append(typ, []byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func collect(t *testing.T, dir string, after uint64) ([]Record, uint64) {
	t.Helper()
	var recs []Record
	last, err := Replay(dir, nil, after, func(r Record) error {
		cp := Record{LSN: r.LSN, Type: r.Type, Payload: append([]byte(nil), r.Payload...)}
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, last
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := Segments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, have %d", len(segs))
	}
	return filepath.Join(dir, segs[0].Name)
}

// --- tests ------------------------------------------------------------------

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 10)
	if got := l.NextLSN(); got != 11 {
		t.Fatalf("NextLSN = %d, want 11", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, last := collect(t, dir, 0)
	if len(recs) != 10 || last != 10 {
		t.Fatalf("replay: %d records, last %d; want 10, 10", len(recs), last)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
		wantType := RecInsert
		if i%3 == 2 {
			wantType = RecDelete
		}
		if r.Type != wantType {
			t.Fatalf("record %d type = %v, want %v", i, r.Type, wantType)
		}
		if want := fmt.Sprintf("rec-%04d", i); string(r.Payload) != want {
			t.Fatalf("record %d payload = %q, want %q", i, r.Payload, want)
		}
	}

	// The after filter must be exclusive: after=7 yields exactly 8, 9, 10.
	recs, last = collect(t, dir, 7)
	if len(recs) != 3 || recs[0].LSN != 8 || last != 10 {
		t.Fatalf("replay after 7: %d records starting at %d", len(recs), recs[0].LSN)
	}
	// after beyond the tail yields nothing and reports the tail it saw.
	recs, last = collect(t, dir, 10)
	if len(recs) != 0 || last != 10 {
		t.Fatalf("replay after tail: %d records, last %d", len(recs), last)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = mustOpen(t, dir, Options{})
	if got := l.NextLSN(); got != 6 {
		t.Fatalf("NextLSN after reopen = %d, want 6", got)
	}
	lsn, err := l.Append(RecInsert, []byte("resumed"))
	if err != nil || lsn != 6 {
		t.Fatalf("Append after reopen: lsn %d, err %v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 0)
	if len(recs) != 6 {
		t.Fatalf("replay after reopen: %d records, want 6", len(recs))
	}
}

func TestGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	// A slow fsync guarantees callers pile up behind the in-flight commit, so
	// batching is deterministic rather than a scheduling accident.
	fs := &faultFS{syncDelay: 2 * time.Millisecond}
	l := mustOpen(t, dir, Options{FS: fs})

	const writers = 64
	lsns := make([]uint64, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append(RecInsert, []byte(fmt.Sprintf("w%02d", i)))
			if err != nil {
				t.Errorf("writer %d: %v", i, err)
				return
			}
			lsns[i] = lsn
		}(i)
	}
	wg.Wait()

	st := l.Stats()
	if st.Appends != writers {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers)
	}
	if st.Batches >= writers {
		t.Fatalf("no batching: %d batches for %d appends", st.Batches, writers)
	}
	if st.Syncs != st.Batches {
		t.Fatalf("one fsync per batch expected: %d syncs, %d batches", st.Syncs, st.Batches)
	}
	// The LSNs must be a permutation of 1..writers: every ack durable and
	// distinct.
	seen := make(map[uint64]bool, writers)
	for i, lsn := range lsns {
		if lsn < 1 || lsn > writers || seen[lsn] {
			t.Fatalf("writer %d got bad/duplicate LSN %d", i, lsn)
		}
		seen[lsn] = true
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 0)
	if len(recs) != writers {
		t.Fatalf("replay: %d records, want %d", len(recs), writers)
	}
}

func TestRotationAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// ~33-byte frames against a 256-byte budget: rotation every few appends.
	l := mustOpen(t, dir, Options{SegmentBytes: 256})
	const n = 40
	appendN(t, l, n)

	segs, err := Segments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, have %d", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].FirstLSN <= segs[i-1].FirstLSN {
			t.Fatalf("segment FirstLSNs not increasing: %+v", segs)
		}
	}

	// A mid-log checkpoint must drop only fully-applied prefix segments and
	// keep every record above the checkpoint replayable.
	const upTo = 17
	if err := l.Checkpoint(upTo); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	segs, err = Segments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("checkpoint removed every segment")
	}
	if segs[0].FirstLSN > upTo+1 {
		t.Fatalf("oldest surviving segment starts at %d, past checkpoint %d", segs[0].FirstLSN, upTo)
	}
	var got []uint64
	if _, err := Replay(dir, nil, upTo, func(r Record) error {
		got = append(got, r.LSN)
		return nil
	}); err != nil {
		t.Fatalf("Replay after checkpoint: %v", err)
	}
	if len(got) != n-upTo || got[0] != upTo+1 || got[len(got)-1] != n {
		t.Fatalf("replay after checkpoint: lsns %v", got)
	}

	// Checkpointing everything rotates the active segment away and leaves an
	// empty log whose LSN sequence still continues.
	if err := l.Checkpoint(n); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 0)
	if len(recs) != 0 {
		t.Fatalf("fully-checkpointed log still replays %d records", len(recs))
	}
	lsn, err := l.Append(RecInsert, []byte("after-gc"))
	if err != nil || lsn != n+1 {
		t.Fatalf("append after full checkpoint: lsn %d, err %v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{SegmentBytes: 256})
	if gotNext := l.NextLSN(); gotNext != n+2 {
		t.Fatalf("NextLSN after reopen = %d, want %d", gotNext, n+2)
	}
	l.Close()
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for _, tc := range []struct {
		name string
		cut  func(size int64) int64 // returns the new size
		keep int                    // records expected to survive
	}{
		{"mid-frame", func(size int64) int64 { return size - 3 }, 9},
		{"mid-payload", func(size int64) int64 { return size - int64(len("rec-0009")) - 2 }, 9},
		{"frame-boundary-garbage", func(size int64) int64 { return -1 }, 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{})
			appendN(t, l, 10)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			seg := onlySegment(t, dir)
			st, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if newSize := tc.cut(st.Size()); newSize >= 0 {
				if err := os.Truncate(seg, newSize); err != nil {
					t.Fatal(err)
				}
			} else {
				// Torn write that appended garbage past the last full frame.
				f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			l = mustOpen(t, dir, Options{})
			if got := l.NextLSN(); got != uint64(tc.keep)+1 {
				t.Fatalf("NextLSN after torn tail = %d, want %d", got, tc.keep+1)
			}
			// The log must keep accepting appends after the repair, and replay
			// must see the surviving prefix plus the new record with no gap.
			lsn, err := l.Append(RecInsert, []byte("post-repair"))
			if err != nil || lsn != uint64(tc.keep)+1 {
				t.Fatalf("append after repair: lsn %d, err %v", lsn, err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			recs, _ := collect(t, dir, 0)
			if len(recs) != tc.keep+1 {
				t.Fatalf("replay: %d records, want %d", len(recs), tc.keep+1)
			}
			for i, r := range recs {
				if r.LSN != uint64(i+1) {
					t.Fatalf("gap at record %d: LSN %d", i, r.LSN)
				}
			}
		})
	}
}

// frameStart returns the byte offset of the i-th (0-based) frame in a segment
// whose records all carry payloadLen-byte payloads.
func frameStart(i, payloadLen int) int64 {
	return headerSize + int64(i)*int64(frameOverhead+payloadLen)
}

func TestBitFlipNewestSegmentStopsClean(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 10) // fixed 8-byte payloads
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of frame 6 (LSN 7): the newest segment's scan must
	// stop cleanly before it, exposing LSNs 1..6 — indistinguishable from a
	// crash before LSN 7 was acknowledged.
	data[frameStart(6, 8)+17] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, last := collect(t, dir, 0)
	if len(recs) != 6 || last != 6 {
		t.Fatalf("replay over flipped newest segment: %d records, last %d; want 6, 6", len(recs), last)
	}
}

func TestBitFlipEarlierSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, have %d", len(segs))
	}

	// A bad frame below the newest segment cannot be crash damage — rotation
	// sealed that file with an fsync — so replay must refuse, not truncate.
	seg := filepath.Join(dir, segs[0].Name)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+20] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, nil, 0, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay err = %v, want ErrCorrupt", err)
	}
}

func TestBadHeaderNewestRepairedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := onlySegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("XXXX"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A garbled header on the newest segment means none of its frames are
	// trustworthy: Open starts the segment over at its named firstLSN.
	l = mustOpen(t, dir, Options{})
	if got := l.NextLSN(); got != 1 {
		t.Fatalf("NextLSN after header repair = %d, want 1", got)
	}
	lsn, err := l.Append(RecInsert, []byte("fresh"))
	if err != nil || lsn != 1 {
		t.Fatalf("append after repair: lsn %d, err %v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 0)
	if len(recs) != 1 || string(recs[0].Payload) != "fresh" {
		t.Fatalf("replay after header repair: %+v", recs)
	}
}

func TestBadHeaderEarlierSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, have %d", len(segs))
	}
	seg := filepath.Join(dir, segs[0].Name)
	f, err := os.OpenFile(seg, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("JUNK"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Replay(dir, nil, 0, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay err = %v, want ErrCorrupt", err)
	}
}

func TestCloseRejectsNewAndPendingAppends(t *testing.T) {
	dir := t.TempDir()
	fs := &faultFS{syncDelay: 5 * time.Millisecond}
	l := mustOpen(t, dir, Options{FS: fs})

	// Launch appends that will straddle Close: each must either be durably
	// acknowledged with an LSN or fail with ErrClosed — never limbo.
	const writers = 32
	type outcome struct {
		lsn uint64
		err error
	}
	outcomes := make([]outcome, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append(RecInsert, []byte(fmt.Sprintf("c%02d", i)))
			outcomes[i] = outcome{lsn, err}
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	acked := make(map[uint64]bool)
	for i, o := range outcomes {
		switch {
		case o.err == nil:
			acked[o.lsn] = true
		case errors.Is(o.err, ErrClosed):
		default:
			t.Fatalf("writer %d: unexpected error %v", i, o.err)
		}
	}
	// Replay must agree exactly with the set of acknowledgements.
	recs, _ := collect(t, dir, 0)
	if len(recs) != len(acked) {
		t.Fatalf("replay has %d records, %d were acked", len(recs), len(acked))
	}
	for _, r := range recs {
		if !acked[r.LSN] {
			t.Fatalf("replayed LSN %d was never acknowledged", r.LSN)
		}
	}

	if _, err := l.Append(RecInsert, []byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: %v, want ErrClosed", err)
	}
}

func TestSyncFailureRollsBackUnackedRecords(t *testing.T) {
	dir := t.TempDir()
	fs := &faultFS{}
	l := mustOpen(t, dir, Options{FS: fs})
	appendN(t, l, 3)

	// errFault is non-transient, so retry.Sync surfaces it on the first call;
	// exactly one injected failure hits the commit fsync and leaves the
	// rollback's own fsync healthy.
	fs.failSyncs.Store(1)
	if _, err := l.Append(RecInsert, []byte("doomed")); err == nil {
		t.Fatal("Append survived a failed fsync")
	}
	if got := l.NextLSN(); got != 4 {
		t.Fatalf("NextLSN after failed batch = %d, want 4", got)
	}

	// The failed record's LSN is reused: the log has no holes.
	lsn, err := l.Append(RecInsert, []byte("retried"))
	if err != nil || lsn != 4 {
		t.Fatalf("append after rollback: lsn %d, err %v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 0)
	if len(recs) != 4 {
		t.Fatalf("replay: %d records, want 4", len(recs))
	}
	if string(recs[3].Payload) != "retried" {
		t.Fatalf("LSN 4 replays %q, want the acked record", recs[3].Payload)
	}
}

func TestPoisonedLogFailsEverything(t *testing.T) {
	dir := t.TempDir()
	fs := &faultFS{}
	l := mustOpen(t, dir, Options{FS: fs})
	appendN(t, l, 2)

	// Fail the fsync AND the rollback truncation: the on-disk tail is now
	// unknowable, so the log must refuse all further work.
	fs.failSyncs.Store(8)
	fs.failTruncate.Store(true)
	if _, err := l.Append(RecInsert, []byte("x")); err == nil {
		t.Fatal("Append survived fsync+rollback failure")
	}
	fs.failSyncs.Store(0)
	fs.failTruncate.Store(false)

	if _, err := l.Append(RecInsert, []byte("y")); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
	if err := l.Checkpoint(2); err == nil {
		t.Fatal("poisoned log accepted a checkpoint")
	}
	l.Close()
}

func TestNoSyncAndManualSync(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{NoSync: true})
	appendN(t, l, 5)
	if st := l.Stats(); st.Syncs != 0 {
		t.Fatalf("NoSync log performed %d syncs", st.Syncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Syncs != 1 {
		t.Fatalf("manual Sync not counted: %d", st.Syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 0)
	if len(recs) != 5 {
		t.Fatalf("replay: %d records, want 5", len(recs))
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()
	if _, err := l.Append(RecInsert, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if got := l.NextLSN(); got != 1 {
		t.Fatalf("rejected payload consumed LSN: next = %d", got)
	}
}

func TestReplayMissingDir(t *testing.T) {
	last, err := Replay(filepath.Join(t.TempDir(), "nope"), nil, 7, func(Record) error {
		return errors.New("must not be called")
	})
	if err != nil || last != 7 {
		t.Fatalf("Replay on missing dir: last %d, err %v", last, err)
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	_, err := Replay(dir, nil, 0, func(r Record) error {
		if r.LSN == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Replay err = %v, want the callback's error", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("callback error misclassified as corruption")
	}
}

// FuzzWALReplay feeds arbitrary bytes to Replay as the sole (therefore
// newest) segment: whatever the bytes, replay must not panic and must either
// succeed with monotonically increasing LSNs from the segment's firstLSN or
// fail with ErrCorrupt.
func FuzzWALReplay(f *testing.F) {
	// Seed with a genuine two-record segment, plus mutations of it.
	valid := func() []byte {
		b := make([]byte, 0, 64)
		b = append(b, "SPBW"...)
		b = binary.LittleEndian.AppendUint32(b, 1) // version
		b = binary.LittleEndian.AppendUint64(b, 1) // firstLSN
		for lsn := uint64(1); lsn <= 2; lsn++ {
			payload := []byte{byte(lsn), 0xaa}
			b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
			body := binary.LittleEndian.AppendUint64(nil, lsn)
			body = append(body, byte(RecInsert))
			body = append(body, payload...)
			b = append(b, body...)
			b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
		}
		return b
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:headerSize])
	f.Add([]byte("SPBWgarbage"))
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+9] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		prev := uint64(0)
		last, err := Replay(dir, nil, 0, func(r Record) error {
			if r.LSN != prev+1 {
				t.Fatalf("non-contiguous LSN %d after %d", r.LSN, prev)
			}
			if len(r.Payload) > MaxPayload {
				t.Fatalf("oversized payload survived replay: %d", len(r.Payload))
			}
			prev = r.LSN
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay returned a non-corruption error: %v", err)
		}
		if err == nil && last != prev {
			t.Fatalf("Replay reported last %d but delivered through %d", last, prev)
		}
	})
}
