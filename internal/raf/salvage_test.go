package raf

import (
	"fmt"
	"path/filepath"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

func TestSalvageRecoversAllRecords(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.StrCodec{})
	n := 300
	for i := 0; i < n; i++ {
		if _, err := f.Append(metric.NewStr(uint64(i), fmt.Sprintf("object-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}

	got := map[uint64]string{}
	scanned, err := Salvage(store, metric.StrCodec{}, f.Size(), func(obj metric.Object) {
		s := obj.(*metric.Str)
		got[s.Id] = s.S
	})
	if err != nil {
		t.Fatal(err)
	}
	if scanned != f.Size() {
		t.Fatalf("scanned %d bytes, want %d", scanned, f.Size())
	}
	if len(got) != n {
		t.Fatalf("salvaged %d records, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[uint64(i)] != fmt.Sprintf("object-%d", i) {
			t.Fatalf("record %d = %q", i, got[uint64(i)])
		}
	}
}

func TestSalvageStopsAtCorruption(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.StrCodec{})
	// Enough records to span several pages.
	n := 600
	for i := 0; i < n; i++ {
		if _, err := f.Append(metric.NewStr(uint64(i), fmt.Sprintf("salvage-record-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if f.PagesUsed() < 4 {
		t.Fatalf("test needs several pages, got %d", f.PagesUsed())
	}

	// Make a middle page unreadable: the scan recovers the prefix and stops
	// with the error rather than fabricating records.
	faulty := page.NewFaultStore(store, -1)
	badPage := page.ID(f.PagesUsed() / 2)
	faulty.FailPage(badPage, page.OpRead)

	count := 0
	scanned, err := Salvage(faulty, metric.StrCodec{}, f.Size(), func(metric.Object) { count++ })
	if err == nil {
		t.Fatal("salvage over a broken page reported success")
	}
	if count == 0 || count >= n {
		t.Fatalf("salvaged %d of %d records, want a proper prefix", count, n)
	}
	if scanned >= f.Size() {
		t.Fatalf("scanned %d of %d bytes despite corruption", scanned, f.Size())
	}
}

func TestSalvageToleratesZeroedTail(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.StrCodec{})
	for i := 0; i < 3; i++ {
		if _, err := f.Append(metric.NewStr(uint64(i+1), "abc")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Scan with a size rounded up to the page boundary, as a repair pass
	// would after losing the meta: the zero padding terminates the scan
	// cleanly.
	size := uint64(f.PagesUsed()) * page.Size
	count := 0
	if _, err := Salvage(store, metric.StrCodec{}, size, func(metric.Object) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("salvaged %d records, want 3", count)
	}
}

func TestFileSyncAndClose(t *testing.T) {
	store, err := page.NewFileStore(filepath.Join(t.TempDir(), "data.pages"))
	if err != nil {
		t.Fatal(err)
	}
	f := New(store, metric.StrCodec{})
	off, err := f.Append(metric.NewStr(1, "durable"))
	if err != nil {
		t.Fatal(err)
	}
	// Sync flushes the tail page and fsyncs: the record must be readable.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	obj, err := f.Read(off)
	if err != nil {
		t.Fatal(err)
	}
	if obj.(*metric.Str).S != "durable" {
		t.Fatal("wrong record after sync")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileSyncSurfacesStoreFailure(t *testing.T) {
	fs := page.NewFaultStore(page.NewMemStore(), -1)
	f := New(fs, metric.StrCodec{})
	if _, err := f.Append(metric.NewStr(1, "x")); err != nil {
		t.Fatal(err)
	}
	fs.FailNextSyncs(1)
	if err := f.Sync(); err == nil {
		t.Fatal("Sync hid a store sync failure")
	}
}
