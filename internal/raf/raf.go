// Package raf implements the SPB-tree's random access file: the separate,
// page-based store that holds the actual objects, decoupled from the index
// (Challenge III of the paper). Each record is (id, len, obj); records are
// appended in ascending SFC order at build time so that queries touching
// nearby SFC keys touch nearby RAF pages, which is what makes a small buffer
// cache effective (Section 4.3).
package raf

import (
	"encoding/binary"
	"fmt"
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/obs"
	"spbtree/internal/page"
)

// headerSize is the per-record header: id (8 bytes) + payload length (4).
const headerSize = 12

// maxPayload bounds a single object's serialized size; larger lengths in a
// header indicate corruption.
const maxPayload = 16 << 20

// File is a random access file of serialized objects over a page store.
// The File must own its store: it assumes pages are allocated densely from
// zero, so byte offset o lives on page o / page.Size.
type File struct {
	store page.Store
	codec metric.Codec

	size  uint64 // total bytes appended
	count int    // records appended

	buf     [page.Size]byte // current tail page
	curPage page.ID
	havePg  bool
	pos     int  // write position within buf
	dirty   bool // buf has unflushed bytes

	// tracer, when non-nil, receives one EvRecordRead per decoded record.
	tracer obs.Tracer
}

// SetTracer installs (or, with nil, removes) a tracer receiving one
// structured EvRecordRead event per record decoded by Read. Not synchronized
// with in-flight reads: install tracers before issuing queries.
func (f *File) SetTracer(tr obs.Tracer) { f.tracer = tr }

// New returns an empty RAF on store, decoding objects with codec.
func New(store page.Store, codec metric.Codec) *File {
	return &File{store: store, codec: codec}
}

// metaVersion versions the Meta encoding.
const metaVersion = 1

// Meta returns an opaque snapshot of the file's bookkeeping (byte size and
// record count); persist it alongside the store and pass it to Open.
// Call Flush first.
func (f *File) Meta() []byte {
	b := make([]byte, 0, 17)
	b = append(b, metaVersion)
	b = binary.LittleEndian.AppendUint64(b, f.size)
	b = binary.LittleEndian.AppendUint64(b, uint64(f.count))
	return b
}

// Open reopens a RAF previously persisted to store. If the file ends with a
// partial page, that page is read back so appends can continue in place.
func Open(store page.Store, codec metric.Codec, meta []byte) (*File, error) {
	if len(meta) != 17 {
		return nil, fmt.Errorf("raf: meta is %d bytes, want 17", len(meta))
	}
	if meta[0] != metaVersion {
		return nil, fmt.Errorf("raf: meta version %d, want %d", meta[0], metaVersion)
	}
	f := New(store, codec)
	f.size = binary.LittleEndian.Uint64(meta[1:9])
	f.count = int(binary.LittleEndian.Uint64(meta[9:17]))
	if want := f.PagesUsed(); store.NumPages() < want {
		return nil, fmt.Errorf("raf: store has %d pages, meta needs %d", store.NumPages(), want)
	}
	if rem := int(f.size % page.Size); rem != 0 {
		// Reload the partial tail so future appends extend it.
		f.curPage = page.ID(f.size / page.Size)
		if err := store.Read(f.curPage, f.buf[:]); err != nil {
			return nil, fmt.Errorf("raf: reload tail page: %w", err)
		}
		f.havePg = true
		f.pos = rem
	}
	return f, nil
}

// Append serializes obj at the end of the file and returns its byte offset —
// the ptr stored in B+-tree leaf entries. Writes are buffered per page; call
// Flush after the last Append of a batch.
func (f *File) Append(obj metric.Object) (uint64, error) {
	payload := obj.AppendBinary(nil)
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("raf: object %d payload %d exceeds %d bytes", obj.ID(), len(payload), maxPayload)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], obj.ID())
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))

	offset := f.size
	if err := f.write(hdr[:]); err != nil {
		return 0, err
	}
	if err := f.write(payload); err != nil {
		return 0, err
	}
	f.count++
	return offset, nil
}

// write copies b into the tail buffer, flushing full pages.
func (f *File) write(b []byte) error {
	for len(b) > 0 {
		if !f.havePg {
			id, err := f.store.Alloc()
			if err != nil {
				return fmt.Errorf("raf: alloc: %w", err)
			}
			want := page.ID(f.size / page.Size)
			if id != want {
				return fmt.Errorf("raf: store not exclusively owned: alloc returned page %d, want %d", id, want)
			}
			f.curPage = id
			f.havePg = true
			f.pos = 0
		}
		n := copy(f.buf[f.pos:], b)
		f.pos += n
		f.size += uint64(n)
		f.dirty = true
		b = b[n:]
		if f.pos == page.Size {
			if err := f.store.Write(f.curPage, f.buf[:]); err != nil {
				return fmt.Errorf("raf: flush page: %w", err)
			}
			f.havePg = false
			f.dirty = false
		}
	}
	return nil
}

// Flush writes any partially filled tail page.
func (f *File) Flush() error {
	if !f.dirty {
		return nil
	}
	// Zero the unused remainder so reads of the tail page are deterministic.
	clear(f.buf[f.pos:])
	if err := f.store.Write(f.curPage, f.buf[:]); err != nil {
		return fmt.Errorf("raf: flush: %w", err)
	}
	f.dirty = false
	return nil
}

// Sync flushes any buffered tail page and forces all written pages to
// stable storage. A Flush alone leaves the data in OS buffers; only a
// successful Sync makes the file durable.
func (f *File) Sync() error {
	if err := f.Flush(); err != nil {
		return err
	}
	if err := f.store.Sync(); err != nil {
		return fmt.Errorf("raf: sync: %w", err)
	}
	return nil
}

// Close flushes, syncs and closes the underlying store, so a clean shutdown
// is durable.
func (f *File) Close() error {
	syncErr := f.Sync()
	if err := f.store.Close(); err != nil {
		return fmt.Errorf("raf: close: %w", err)
	}
	return syncErr
}

// Read decodes the record at offset. Each page the record touches is read
// from the underlying store exactly once per call — the header and a payload
// sharing its page cost one page access, not two — so with caching disabled
// the store's counters still measure the paper's PA (pages fetched), and
// with caching enabled the hit/miss accounting above the cache stays
// truthful. Read never mutates the File (an unflushed tail page is served
// from the append buffer), so concurrent Reads are safe as long as no
// Append/Flush runs alongside them — the locking discipline the tree's
// reader-writer lock provides.
func (f *File) Read(offset uint64) (metric.Object, error) {
	obj, plen, err := f.ReadQuiet(offset)
	if err != nil {
		return nil, err
	}
	f.EmitRecordRead(offset, plen)
	return obj, nil
}

// ReadQuiet is Read without the per-record tracer event, additionally
// returning the record's payload length. Callers that may discard the read
// speculatively — the parallel kNN verifiers racing a stale pruning bound —
// use it and emit the event themselves via EmitRecordRead only when the
// verification commits, so traced record reads keep matching the per-query
// Verified+Lemma2Included counts.
func (f *File) ReadQuiet(offset uint64) (metric.Object, int, error) {
	var pr pageReader
	pr.f = f
	return pr.readRecord(offset)
}

// EmitRecordRead fires the EvRecordRead tracer event a ReadQuiet suppressed
// (a no-op without a tracer).
func (f *File) EmitRecordRead(offset uint64, payloadLen int) {
	if f.tracer != nil {
		f.tracer.Event(obs.Event{Kind: obs.EvRecordRead, Src: obs.SrcData, Offset: offset, Bytes: int32(payloadLen)})
	}
}

// readRecord decodes one record through r, so batched reads reuse pages
// across records.
func (r *pageReader) readRecord(offset uint64) (metric.Object, int, error) {
	f := r.f
	if offset+headerSize > f.size {
		return nil, 0, fmt.Errorf("raf: offset %d out of range (size %d)", offset, f.size)
	}
	var hdr [headerSize]byte
	if err := r.read(offset, hdr[:]); err != nil {
		return nil, 0, err
	}
	id := binary.LittleEndian.Uint64(hdr[0:8])
	plen := binary.LittleEndian.Uint32(hdr[8:12])
	if uint64(plen) > maxPayload || offset+headerSize+uint64(plen) > f.size {
		return nil, 0, fmt.Errorf("raf: corrupt record at %d: payload length %d", offset, plen)
	}
	payload := make([]byte, plen)
	if err := r.read(offset+headerSize, payload); err != nil {
		return nil, 0, err
	}
	obj, err := f.codec.Decode(id, payload)
	if err != nil {
		return nil, 0, fmt.Errorf("raf: decode record at %d: %w", offset, err)
	}
	return obj, int(plen), nil
}

// ReadBatch decodes the records at offsets, filling out[i] (and, when plens
// is non-nil, plens[i]) from offsets[i]. Offsets are visited in ascending
// order and records sharing a page are decoded from a single page fetch —
// the coalescing that restores the paper's "nearby SFC keys touch nearby RAF
// pages" locality when a batch of candidates from one leaf is verified
// together. No tracer events fire; callers emit per-record events via
// EmitRecordRead once a record's fate is decided.
//
// On the first failing record (first in ascending-offset order, which need
// not be the first input index) ReadBatch stops and returns that record's
// input index with the error; entries already decoded remain valid. Callers
// needing input-order error semantics fall back to per-record reads — the
// pages are warm by then.
func (f *File) ReadBatch(offsets []uint64, out []metric.Object, plens []int) (int, error) {
	if len(out) != len(offsets) || (plens != nil && len(plens) != len(offsets)) {
		return -1, fmt.Errorf("raf: ReadBatch output length %d, want %d", len(out), len(offsets))
	}
	order := make([]int, len(offsets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return offsets[order[a]] < offsets[order[b]] })
	var pr pageReader
	pr.f = f
	for _, i := range order {
		obj, plen, err := pr.readRecord(offsets[i])
		if err != nil {
			return i, err
		}
		out[i] = obj
		if plens != nil {
			plens[i] = plen
		}
	}
	return -1, nil
}

// pageReader copies file bytes out of whole pages, keeping the last page
// fetched so consecutive reads within one record never touch the store twice
// for the same page.
type pageReader struct {
	f     *File
	id    page.ID
	valid bool
	pg    [page.Size]byte
}

// read fills b from the file starting at offset.
func (r *pageReader) read(offset uint64, b []byte) error {
	for len(b) > 0 {
		id := page.ID(offset / page.Size)
		if !r.valid || id != r.id {
			if r.f.dirty && id == r.f.curPage {
				// The tail page still lives in the append buffer; serve it
				// from memory. Bytes past the write position are stale, but
				// every record lies within f.size, which ends at exactly
				// that position, so reads never reach them. Serving the
				// buffer (instead of flushing it) keeps Read free of
				// mutation, which concurrent queries rely on.
				copy(r.pg[:], r.f.buf[:])
			} else if err := r.f.store.Read(id, r.pg[:]); err != nil {
				return fmt.Errorf("raf: read page %d: %w", id, err)
			}
			r.id, r.valid = id, true
		}
		n := copy(b, r.pg[offset%page.Size:])
		b = b[n:]
		offset += uint64(n)
	}
	return nil
}

// readAt fills b from the file starting at offset, reading whole pages.
func (f *File) readAt(offset uint64, b []byte) error {
	pr := pageReader{f: f}
	return pr.read(offset, b)
}

// Scan iterates all records in file order, invoking fn with each record's
// offset and object. It stops early if fn returns an error.
func (f *File) Scan(fn func(offset uint64, obj metric.Object) error) error {
	var off uint64
	for i := 0; i < f.count; i++ {
		obj, err := f.Read(off)
		if err != nil {
			return err
		}
		if err := fn(off, obj); err != nil {
			return err
		}
		payload := obj.AppendBinary(nil)
		off += headerSize + uint64(len(payload))
	}
	return nil
}

// Salvage sequentially decodes records from store — without requiring valid
// RAF meta — calling fn with every object that still decodes, and stops at
// the first record it cannot trust: a corrupt page, an implausible header,
// or a payload that fails to decode. size bounds the scan (pass the file's
// byte size when the meta is lost). It returns how many bytes were scanned
// successfully and the error that stopped the scan (nil when size was
// reached). Repair uses it to rebuild an index from a surviving RAF when
// the B+-tree or meta is corrupt.
func Salvage(store page.Store, codec metric.Codec, size uint64, fn func(obj metric.Object)) (scanned uint64, err error) {
	f := &File{store: store, codec: codec, size: size}
	var off uint64
	for off+headerSize <= size {
		var hdr [headerSize]byte
		if err := f.readAt(off, hdr[:]); err != nil {
			return off, err
		}
		id := binary.LittleEndian.Uint64(hdr[0:8])
		plen := binary.LittleEndian.Uint32(hdr[8:12])
		if id == 0 && plen == 0 && off > 0 {
			// Zeroed tail-page padding after the last record.
			return off, nil
		}
		obj, err := f.Read(off)
		if err != nil {
			return off, err
		}
		fn(obj)
		off += headerSize + uint64(plen)
	}
	return off, nil
}

// Count returns the number of records.
func (f *File) Count() int { return f.count }

// Size returns the total bytes appended.
func (f *File) Size() uint64 { return f.size }

// PagesUsed returns the number of pages the file occupies.
func (f *File) PagesUsed() int {
	return int((f.size + page.Size - 1) / page.Size)
}

// ObjectsPerPage returns the paper's f term — the average number of objects
// per RAF page — used by the EPA cost models (eq. 6 and 8).
func (f *File) ObjectsPerPage() float64 {
	p := f.PagesUsed()
	if p == 0 {
		return 0
	}
	return float64(f.count) / float64(p)
}
