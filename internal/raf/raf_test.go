package raf

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

func TestAppendReadRoundTrip(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.StrCodec{})
	words := []string{"word", "dictionary", "defoliate", "", "a"}
	offsets := make([]uint64, len(words))
	for i, w := range words {
		off, err := f.Append(metric.NewStr(uint64(i), w))
		if err != nil {
			t.Fatal(err)
		}
		offsets[i] = off
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		obj, err := f.Read(offsets[i])
		if err != nil {
			t.Fatalf("Read(%d): %v", offsets[i], err)
		}
		s := obj.(*metric.Str)
		if s.Id != uint64(i) || s.S != w {
			t.Errorf("record %d = (%d, %q), want (%d, %q)", i, s.Id, s.S, i, w)
		}
	}
	if f.Count() != len(words) {
		t.Errorf("Count = %d", f.Count())
	}
}

func TestReadBeforeFlushAutoFlushes(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.StrCodec{})
	off, err := f.Append(metric.NewStr(1, "pending"))
	if err != nil {
		t.Fatal(err)
	}
	obj, err := f.Read(off)
	if err != nil {
		t.Fatal(err)
	}
	if obj.(*metric.Str).S != "pending" {
		t.Error("read did not observe unflushed record")
	}
}

func TestMultiPageRecords(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.StrCodec{})
	big := strings.Repeat("x", 3*page.Size+100) // spans 4 pages
	off1, err := f.Append(metric.NewStr(1, big))
	if err != nil {
		t.Fatal(err)
	}
	off2, err := f.Append(metric.NewStr(2, "small"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	o1, err := f.Read(off1)
	if err != nil {
		t.Fatal(err)
	}
	if o1.(*metric.Str).S != big {
		t.Error("multi-page record corrupted")
	}
	o2, err := f.Read(off2)
	if err != nil {
		t.Fatal(err)
	}
	if o2.(*metric.Str).S != "small" {
		t.Error("record after big one corrupted")
	}
	if f.PagesUsed() < 4 {
		t.Errorf("PagesUsed = %d", f.PagesUsed())
	}
}

func TestManyRecordsAcrossPages(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.VectorCodec{Dim: 16})
	rng := rand.New(rand.NewSource(4))
	type rec struct {
		off uint64
		v   []float64
	}
	var recs []rec
	for i := 0; i < 2000; i++ {
		coords := make([]float64, 16)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		off, err := f.Append(metric.NewVector(uint64(i), coords))
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{off, coords})
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		r := recs[rng.Intn(len(recs))]
		obj, err := f.Read(r.off)
		if err != nil {
			t.Fatal(err)
		}
		v := obj.(*metric.Vector)
		for j := range r.v {
			if v.Coords[j] != r.v[j] {
				t.Fatalf("record at %d coord %d mismatch", r.off, j)
			}
		}
	}
	// f ≈ count / pages: 16-dim float64 vectors are 140 bytes per record, so
	// roughly 29 objects per 4 KB page.
	if opp := f.ObjectsPerPage(); opp < 20 || opp > 35 {
		t.Errorf("ObjectsPerPage = %v", opp)
	}
}

func TestScan(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.StrCodec{})
	for i := 0; i < 50; i++ {
		if _, err := f.Append(metric.NewStr(uint64(i), fmt.Sprintf("w%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	i := 0
	err := f.Scan(func(off uint64, obj metric.Object) error {
		if obj.ID() != uint64(i) {
			return fmt.Errorf("scan order broken at %d", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 50 {
		t.Errorf("scan visited %d records", i)
	}
}

func TestReadErrors(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.StrCodec{})
	off, err := f.Append(metric.NewStr(1, "hello"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(f.Size() + 100); err == nil {
		t.Error("out-of-range offset accepted")
	}
	// Corrupt the record header's length field.
	buf := make([]byte, page.Size)
	if err := store.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	buf[8], buf[9], buf[10], buf[11] = 0xFF, 0xFF, 0xFF, 0x7F
	if err := store.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(off); err == nil {
		t.Error("corrupt record accepted")
	}
}

func TestFaultInjection(t *testing.T) {
	mem := page.NewMemStore()
	f := New(page.NewFaultStore(mem, 0), metric.StrCodec{})
	if _, err := f.Append(metric.NewStr(1, "x")); !errors.Is(err, page.ErrInjected) {
		t.Errorf("Append under fault = %v", err)
	}
}

func TestCachedReadsCountOnce(t *testing.T) {
	mem := page.NewMemStore()
	cache := page.NewCache(mem, 8)
	f := New(cache, metric.StrCodec{})
	off, err := f.Append(metric.NewStr(1, "cached"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	cache.Flush() // cold cache, as before each measured query in the paper
	mem.Stats().Reset()
	for i := 0; i < 5; i++ {
		if _, err := f.Read(off); err != nil {
			t.Fatal(err)
		}
	}
	if got := mem.Stats().Reads(); got != 1 {
		t.Errorf("5 cached reads performed %d physical reads, want 1", got)
	}
}

func TestMetaRoundTripWithPartialTail(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.StrCodec{})
	var offsets []uint64
	for i := 0; i < 30; i++ {
		off, err := f.Append(metric.NewStr(uint64(i), strings.Repeat("x", 100+i)))
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	meta := f.Meta()

	re, err := Open(store, metric.StrCodec{}, meta)
	if err != nil {
		t.Fatal(err)
	}
	if re.Count() != 30 || re.Size() != f.Size() {
		t.Fatalf("reopened count=%d size=%d", re.Count(), re.Size())
	}
	// Reads work.
	obj, err := re.Read(offsets[7])
	if err != nil {
		t.Fatal(err)
	}
	if obj.ID() != 7 {
		t.Fatalf("read id %d", obj.ID())
	}
	// Appends continue into the reloaded partial tail page without
	// clobbering earlier records.
	off, err := re.Append(metric.NewStr(99, "appended-after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := re.Read(off)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*metric.Str).S != "appended-after-reopen" {
		t.Error("post-reopen append corrupted")
	}
	prev, err := re.Read(offsets[29])
	if err != nil {
		t.Fatal(err)
	}
	if prev.(*metric.Str).S != strings.Repeat("x", 129) {
		t.Error("pre-reopen record corrupted by tail reload")
	}
}

func TestOpenRejectsBadMeta(t *testing.T) {
	store := page.NewMemStore()
	if _, err := Open(store, metric.StrCodec{}, nil); err == nil {
		t.Error("nil meta accepted")
	}
	if _, err := Open(store, metric.StrCodec{}, make([]byte, 17)); err == nil {
		t.Error("zero-version meta accepted")
	}
	// Meta describing more data than the store holds.
	f := New(page.NewMemStore(), metric.StrCodec{})
	if _, err := f.Append(metric.NewStr(1, "abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(page.NewMemStore(), metric.StrCodec{}, f.Meta()); err == nil {
		t.Error("meta larger than store accepted")
	}
}
