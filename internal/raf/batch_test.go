package raf

import (
	"math/rand"
	"strings"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// batchFixture appends n small vector records and returns their offsets.
func batchFixture(t *testing.T, n int) (*File, *page.MemStore, []uint64, []*metric.Vector) {
	t.Helper()
	store := page.NewMemStore()
	f := New(store, metric.VectorCodec{Dim: 8})
	rng := rand.New(rand.NewSource(7))
	offsets := make([]uint64, n)
	objs := make([]*metric.Vector, n)
	for i := 0; i < n; i++ {
		coords := make([]float64, 8)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		objs[i] = metric.NewVector(uint64(i), coords)
		off, err := f.Append(objs[i])
		if err != nil {
			t.Fatal(err)
		}
		offsets[i] = off
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	return f, store, offsets, objs
}

func TestReadBatchMatchesRead(t *testing.T) {
	f, store, offsets, want := batchFixture(t, 300)

	// Shuffle the input order: results must land at the input indexes
	// regardless of the ascending-offset visit order.
	rng := rand.New(rand.NewSource(9))
	idx := rng.Perm(len(offsets))
	batchOff := make([]uint64, len(idx))
	for i, j := range idx {
		batchOff[i] = offsets[j]
	}

	out := make([]metric.Object, len(batchOff))
	plens := make([]int, len(batchOff))
	store.Stats().Reset()
	if bad, err := f.ReadBatch(batchOff, out, plens); err != nil {
		t.Fatalf("ReadBatch: index %d: %v", bad, err)
	}
	batchReads := store.Stats().Reads()

	for i, j := range idx {
		got := out[i].(*metric.Vector)
		if got.Id != want[j].Id {
			t.Fatalf("out[%d] = id %d, want %d", i, got.Id, want[j].Id)
		}
		for c := range got.Coords {
			if got.Coords[c] != want[j].Coords[c] {
				t.Fatalf("out[%d] coord %d mismatch", i, c)
			}
		}
		if plens[i] <= 0 {
			t.Fatalf("plens[%d] = %d", i, plens[i])
		}
	}

	// The same records read one by one touch the store once per record;
	// the coalesced batch touches each page once.
	store.Stats().Reset()
	for _, off := range batchOff {
		if _, _, err := f.ReadQuiet(off); err != nil {
			t.Fatal(err)
		}
	}
	serialReads := store.Stats().Reads()
	if batchReads != int64(f.PagesUsed()) {
		t.Errorf("batch performed %d physical reads, want one per page (%d)", batchReads, f.PagesUsed())
	}
	if batchReads >= serialReads {
		t.Errorf("batch reads %d not fewer than per-record reads %d", batchReads, serialReads)
	}
}

func TestReadBatchNilPlensAndEmpty(t *testing.T) {
	f, _, offsets, _ := batchFixture(t, 10)
	out := make([]metric.Object, 3)
	if bad, err := f.ReadBatch(offsets[:3], out, nil); err != nil {
		t.Fatalf("nil plens: index %d: %v", bad, err)
	}
	if bad, err := f.ReadBatch(nil, nil, nil); err != nil {
		t.Fatalf("empty batch: index %d: %v", bad, err)
	}
	if _, err := f.ReadBatch(offsets[:3], out[:2], nil); err == nil {
		t.Error("mismatched output length accepted")
	}
	if _, err := f.ReadBatch(offsets[:3], out, make([]int, 2)); err == nil {
		t.Error("mismatched plens length accepted")
	}
}

func TestReadBatchUnflushedTail(t *testing.T) {
	store := page.NewMemStore()
	f := New(store, metric.StrCodec{})
	off1, err := f.Append(metric.NewStr(1, strings.Repeat("a", 200)))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// This record stays in the append buffer: the batch must serve it from
	// memory without mutating the file.
	off2, err := f.Append(metric.NewStr(2, "tail-resident"))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]metric.Object, 2)
	if bad, err := f.ReadBatch([]uint64{off1, off2}, out, nil); err != nil {
		t.Fatalf("index %d: %v", bad, err)
	}
	if got := out[1].(*metric.Str).S; got != "tail-resident" {
		t.Errorf("tail record = %q", got)
	}
}

func TestReadBatchErrorIndex(t *testing.T) {
	f, store, offsets, _ := batchFixture(t, 50)

	// Out of range: the error index is the failing entry's input position.
	out := make([]metric.Object, 3)
	bad, err := f.ReadBatch([]uint64{offsets[5], f.Size() + 64, offsets[2]}, out, nil)
	if err == nil {
		t.Fatal("out-of-range offset accepted")
	}
	if bad != 1 {
		t.Fatalf("error index %d, want 1", bad)
	}
	// Offsets below the failing one (in offset order) are already decoded.
	if out[0] == nil || out[2] == nil {
		t.Error("entries before the failure not decoded")
	}

	// Corrupt the length field of a record whose header sits inside one
	// page: the batch reports that input index, and earlier offsets are
	// intact.
	victim := -1
	for i := 30; i < len(offsets); i++ {
		if offsets[i]%page.Size+12 <= page.Size {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no in-page record header to corrupt")
	}
	pg := page.ID(offsets[victim] / page.Size)
	buf := make([]byte, page.Size)
	if err := store.Read(pg, buf); err != nil {
		t.Fatal(err)
	}
	in := offsets[victim] % page.Size
	buf[in+8], buf[in+9], buf[in+10], buf[in+11] = 0xFF, 0xFF, 0xFF, 0x7F
	if err := store.Write(pg, buf); err != nil {
		t.Fatal(err)
	}
	batch := []uint64{offsets[10], offsets[victim], offsets[20]}
	out = make([]metric.Object, 3)
	bad, err = f.ReadBatch(batch, out, nil)
	if err == nil {
		t.Fatal("corrupt record accepted")
	}
	if bad != 1 {
		t.Fatalf("corrupt record error index %d, want 1", bad)
	}
	if out[0] == nil || out[2] == nil {
		t.Error("healthy records before the corrupt one not decoded")
	}
}
