package metric

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"defoliate", "defoliates", 1},
		{"defoliate", "defoliated", 1},
		{"defoliate", "defoliating", 3},
		{"defoliate", "citrate", 6},
		{"abc", "abc", 0},
		{"abc", "cba", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Levenshtein(c.b, c.a); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

// naiveLevenshtein is the full-matrix reference implementation.
func naiveLevenshtein(a, b string) int {
	m := make([][]int, len(a)+1)
	for i := range m {
		m[i] = make([]int, len(b)+1)
		m[i][0] = i
	}
	for j := 0; j <= len(b); j++ {
		m[0][j] = j
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := m[i-1][j-1] + cost
			if d := m[i-1][j] + 1; d < best {
				best = d
			}
			if d := m[i][j-1] + 1; d < best {
				best = d
			}
			m[i][j] = best
		}
	}
	return m[len(a)][len(b)]
}

func TestLevenshteinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := "abcd"
	randStr := func() string {
		n := rng.Intn(12)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for i := 0; i < 500; i++ {
		a, b := randStr(), randStr()
		if got, want := Levenshtein(a, b), naiveLevenshtein(a, b); got != want {
			t.Fatalf("Levenshtein(%q, %q) = %d, want %d", a, b, got, want)
		}
	}
}

func TestHammingKnownValues(t *testing.T) {
	h := Hamming{Bytes: 2}
	a := NewBitString(1, []byte{0x00, 0x00})
	b := NewBitString(2, []byte{0xFF, 0x00})
	c := NewBitString(3, []byte{0xF0, 0x01})
	if got := h.Distance(a, b); got != 8 {
		t.Errorf("Hamming(00,FF) = %v, want 8", got)
	}
	if got := h.Distance(a, c); got != 5 {
		t.Errorf("Hamming(0000,F001) = %v, want 5", got)
	}
	if got := h.Distance(b, c); got != 5 {
		t.Errorf("Hamming(FF00,F001) = %v, want 5", got)
	}
	if got := h.Distance(a, a); got != 0 {
		t.Errorf("Hamming(x,x) = %v, want 0", got)
	}
	// Wide signatures exercise the 8-byte fast path.
	wide := Hamming{Bytes: 17}
	x := make([]byte, 17)
	y := make([]byte, 17)
	y[0], y[8], y[16] = 0x01, 0x80, 0xFF
	if got := wide.Distance(NewBitString(1, x), NewBitString(2, y)); got != 10 {
		t.Errorf("wide Hamming = %v, want 10", got)
	}
}

func TestLpNormKnownValues(t *testing.T) {
	l2 := L2(2)
	a := NewVector(1, []float64{0, 0})
	b := NewVector(2, []float64{3, 4})
	if got := l2.Distance(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 = %v, want 5", got)
	}
	l1 := LpNorm{P: 1, Dim: 2, Scale: 1}
	if got := l1.Distance(a, b); math.Abs(got-7) > 1e-12 {
		t.Errorf("L1 = %v, want 7", got)
	}
	l5 := L5(2)
	want := math.Pow(math.Pow(3, 5)+math.Pow(4, 5), 0.2)
	if got := l5.Distance(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("L5 = %v, want %v", got, want)
	}
	linf := LInf{Dim: 2, Scale: 1}
	if got := linf.Distance(a, b); got != 4 {
		t.Errorf("Linf = %v, want 4", got)
	}
}

func TestMaxDistance(t *testing.T) {
	if got := L2(4).MaxDistance(); math.Abs(got-2) > 1e-12 {
		t.Errorf("L2(4).MaxDistance = %v, want 2", got)
	}
	if got := (Hamming{Bytes: 8}).MaxDistance(); got != 64 {
		t.Errorf("Hamming{8}.MaxDistance = %v, want 64", got)
	}
	if got := (EditDistance{MaxLen: 34}).MaxDistance(); got != 34 {
		t.Errorf("EditDistance.MaxDistance = %v, want 34", got)
	}
	if got := (TrigramAngular{}).MaxDistance(); got != 1 {
		t.Errorf("TrigramAngular.MaxDistance = %v, want 1", got)
	}
}

// metricAxioms checks the four metric postulates for a triple of objects.
func metricAxioms(t *testing.T, d DistanceFunc, a, b, c Object, eq func(x, y Object) bool) {
	t.Helper()
	const eps = 1e-9
	dab, dba := d.Distance(a, b), d.Distance(b, a)
	if math.Abs(dab-dba) > eps {
		t.Fatalf("%s: symmetry violated: d(a,b)=%v d(b,a)=%v", d.Name(), dab, dba)
	}
	if dab < 0 {
		t.Fatalf("%s: negative distance %v", d.Name(), dab)
	}
	if eq(a, b) && dab > eps {
		t.Fatalf("%s: identical objects at distance %v", d.Name(), dab)
	}
	dac, dbc := d.Distance(a, c), d.Distance(b, c)
	if dab > dac+dbc+eps {
		t.Fatalf("%s: triangle inequality violated: d(a,b)=%v > d(a,c)+d(c,b)=%v", d.Name(), dab, dac+dbc)
	}
}

func TestTriangleInequalityVectors(t *testing.T) {
	for _, d := range []DistanceFunc{L2(8), L5(8), LpNorm{P: 1, Dim: 8, Scale: 1}, LInf{Dim: 8, Scale: 1}} {
		d := d
		f := func(ac, bc, cc [8]float64) bool {
			a := NewVector(1, clamp01(ac[:]))
			b := NewVector(2, clamp01(bc[:]))
			c := NewVector(3, clamp01(cc[:]))
			eq := func(x, y Object) bool {
				xv, yv := x.(*Vector), y.(*Vector)
				for i := range xv.Coords {
					if xv.Coords[i] != yv.Coords[i] {
						return false
					}
				}
				return true
			}
			metricAxioms(t, d, a, b, c, eq)
			return !t.Failed()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
	}
}

func clamp01(c []float64) []float64 {
	out := make([]float64, len(c))
	for i, v := range c {
		v = math.Abs(math.Mod(v, 1))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0.5
		}
		out[i] = v
	}
	return out
}

func TestTriangleInequalityStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := EditDistance{MaxLen: 16}
	randStr := func() *Str {
		n := rng.Intn(16)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(4))
		}
		return NewStr(uint64(rng.Int63()), string(b))
	}
	for i := 0; i < 400; i++ {
		a, b, c := randStr(), randStr(), randStr()
		metricAxioms(t, d, a, b, c, func(x, y Object) bool { return x.(*Str).S == y.(*Str).S })
	}
}

func TestTriangleInequalityTrigram(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := TrigramAngular{}
	bases := "ACGT"
	randSeq := func() *Seq {
		n := 20 + rng.Intn(80)
		b := make([]byte, n)
		for i := range b {
			b[i] = bases[rng.Intn(4)]
		}
		return NewSeq(uint64(rng.Int63()), string(b))
	}
	for i := 0; i < 300; i++ {
		a, b, c := randSeq(), randSeq(), randSeq()
		// Identity only holds up to profile equality; skip the eq check by
		// never reporting two distinct sequences as equal.
		metricAxioms(t, d, a, b, c, func(x, y Object) bool { return x.(*Seq).S == y.(*Seq).S })
	}
}

func TestTriangleInequalityHamming(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := Hamming{Bytes: 8}
	randSig := func() *BitString {
		b := make([]byte, 8)
		rng.Read(b)
		return NewBitString(uint64(rng.Int63()), b)
	}
	for i := 0; i < 400; i++ {
		a, b, c := randSig(), randSig(), randSig()
		metricAxioms(t, d, a, b, c, func(x, y Object) bool {
			xb, yb := x.(*BitString), y.(*BitString)
			for i := range xb.Bits {
				if xb.Bits[i] != yb.Bits[i] {
					return false
				}
			}
			return true
		})
	}
}

func TestCodecsRoundTrip(t *testing.T) {
	v := NewVector(42, []float64{0.25, -1.5, 3.75})
	got, err := (VectorCodec{Dim: 3}).Decode(42, v.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	gv := got.(*Vector)
	if gv.Id != 42 || len(gv.Coords) != 3 || gv.Coords[1] != -1.5 {
		t.Errorf("vector round trip: %+v", gv)
	}

	s := NewStr(7, "dictionary")
	gs, err := (StrCodec{}).Decode(7, s.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if gs.(*Str).S != "dictionary" {
		t.Errorf("str round trip: %+v", gs)
	}

	b := NewBitString(9, []byte{1, 2, 3, 4})
	gb, err := (BitStringCodec{Bytes: 4}).Decode(9, b.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if gb.(*BitString).Bits[3] != 4 {
		t.Errorf("bitstring round trip: %+v", gb)
	}

	q := NewSeq(3, "ACGTACGT")
	gq, err := (SeqCodec{}).Decode(3, q.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if gq.(*Seq).S != "ACGTACGT" {
		t.Errorf("seq round trip: %+v", gq)
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := (VectorCodec{Dim: 2}).Decode(1, []byte{1, 2, 3}); err == nil {
		t.Error("VectorCodec accepted short payload")
	}
	if _, err := (BitStringCodec{Bytes: 4}).Decode(1, []byte{1}); err == nil {
		t.Error("BitStringCodec accepted short payload")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter(L2(2))
	a, b := NewVector(1, []float64{0, 0}), NewVector(2, []float64{1, 0})
	for i := 0; i < 5; i++ {
		c.Distance(a, b)
	}
	if c.Count() != 5 {
		t.Errorf("Count = %d, want 5", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Errorf("Count after Reset = %d, want 0", c.Count())
	}
	if c.Name() != "L2" || c.Discrete() || c.MaxDistance() != math.Sqrt2 {
		t.Errorf("Counter does not delegate: name=%q discrete=%v d+=%v", c.Name(), c.Discrete(), c.MaxDistance())
	}
}

func TestSampleStats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := make([]Object, 200)
	for i := range objs {
		objs[i] = NewVector(uint64(i), []float64{rng.Float64(), rng.Float64()})
	}
	s := SampleStats(objs, L2(2), 2000, rng)
	if s.Pairs != 2000 {
		t.Fatalf("Pairs = %d", s.Pairs)
	}
	// Mean distance between uniform points in the unit square is ~0.5214.
	if s.Mean < 0.45 || s.Mean > 0.6 {
		t.Errorf("Mean = %v, want ≈0.52", s.Mean)
	}
	if s.IntrinsicDim < 1 || s.IntrinsicDim > 5 {
		t.Errorf("IntrinsicDim = %v, want ≈2-3 for 2-d uniform", s.IntrinsicDim)
	}
	if s.Max <= 0 || s.Max > math.Sqrt2 {
		t.Errorf("Max = %v", s.Max)
	}
}

func TestSampleStatsDegenerate(t *testing.T) {
	s := SampleStats(nil, L2(2), 100, nil)
	if s.Pairs != 0 {
		t.Errorf("empty dataset produced %d pairs", s.Pairs)
	}
	objs := []Object{NewVector(0, []float64{1}), NewVector(1, []float64{1})}
	s = SampleStats(objs, L2(1), 0, nil)
	if s.Pairs != 0 {
		t.Errorf("pairs=0 produced %d pairs", s.Pairs)
	}
}

func TestDistancePanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LpNorm accepted a *Str without panicking")
		}
	}()
	L2(2).Distance(NewStr(1, "x"), NewVector(2, []float64{0, 0}))
}

func TestTrigramEmptyProfiles(t *testing.T) {
	d := TrigramAngular{}
	empty := NewSeq(1, "XX") // too short for a tri-gram
	full := NewSeq(2, "ACGTACGT")
	if got := d.Distance(empty, empty); got != 0 {
		t.Errorf("d(empty, empty) = %v, want 0", got)
	}
	if got := d.Distance(empty, full); got != 1 {
		t.Errorf("d(empty, full) = %v, want 1", got)
	}
}

func TestDistanceFuncMetadata(t *testing.T) {
	cases := []struct {
		d        DistanceFunc
		name     string
		discrete bool
		dPlus    float64
	}{
		{EditDistance{MaxLen: 34}, "edit", true, 34},
		{Hamming{Bytes: 8}, "hamming", true, 64},
		{TrigramAngular{}, "trigram-angular", false, 1},
		{Jaccard{}, "jaccard", false, 1},
		{L2(4), "L2", false, 2},
		{L5(2), "L5", false, math.Pow(2, 0.2)},
		{LpNorm{P: 1.5, Dim: 2, Scale: 1}, "L1.5", false, math.Pow(2, 1/1.5)},
		{LInf{Dim: 3, Scale: 2}, "Linf", false, 2},
	}
	for _, c := range cases {
		if got := c.d.Name(); got != c.name {
			t.Errorf("%T.Name() = %q, want %q", c.d, got, c.name)
		}
		if got := c.d.Discrete(); got != c.discrete {
			t.Errorf("%s.Discrete() = %v", c.name, got)
		}
		if got := c.d.MaxDistance(); math.Abs(got-c.dPlus) > 1e-12 {
			t.Errorf("%s.MaxDistance() = %v, want %v", c.name, got, c.dPlus)
		}
	}
}

func TestObjectStringersAndIDs(t *testing.T) {
	objs := []Object{
		NewVector(1, []float64{1, 2}),
		NewStr(2, "hi"),
		NewBitString(3, []byte{0xAA}),
		NewSeq(4, "ACGT"),
		NewSet(5, []uint64{9}),
	}
	for i, o := range objs {
		if o.ID() != uint64(i+1) {
			t.Errorf("object %d: ID = %d", i, o.ID())
		}
		s := fmt.Sprintf("%v", o)
		if s == "" {
			t.Errorf("object %d: empty String()", i)
		}
	}
}

func TestCounterNilAndUnwrap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCounter(nil) did not panic")
		}
	}()
	c := NewCounter(L2(2))
	if c.Unwrap().Name() != "L2" {
		t.Error("Unwrap lost the inner metric")
	}
	NewCounter(nil)
}

func TestIntrinsicDimensionalityWrapper(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	objs := make([]Object, 100)
	for i := range objs {
		objs[i] = NewVector(uint64(i), []float64{rng.Float64(), rng.Float64(), rng.Float64()})
	}
	rho := IntrinsicDimensionality(objs, L2(3), 1000, rng)
	if rho < 1 || rho > 8 {
		t.Errorf("rho = %v for 3-d uniform", rho)
	}
}
