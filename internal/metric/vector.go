package metric

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Vector is a fixed-dimension real-valued object. It backs the Color
// (16-d, L5-norm) and Synthetic (20-d, L2-norm) workloads of the paper.
type Vector struct {
	Id     uint64
	Coords []float64
}

// NewVector returns a vector object with the given id and coordinates.
func NewVector(id uint64, coords []float64) *Vector {
	return &Vector{Id: id, Coords: coords}
}

// ID returns the object identifier.
func (v *Vector) ID() uint64 { return v.Id }

// AppendBinary appends the coordinates as little-endian float64 bits.
func (v *Vector) AppendBinary(dst []byte) []byte {
	for _, c := range v.Coords {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c))
	}
	return dst
}

// String implements fmt.Stringer.
func (v *Vector) String() string {
	return fmt.Sprintf("Vector(%d, dim=%d)", v.Id, len(v.Coords))
}

// VectorCodec decodes Vector payloads of a known dimensionality.
type VectorCodec struct {
	// Dim is the expected number of coordinates per vector.
	Dim int
}

// Decode implements Codec.
func (c VectorCodec) Decode(id uint64, data []byte) (Object, error) {
	if len(data) != 8*c.Dim {
		return nil, fmt.Errorf("metric: vector payload is %d bytes, want %d (dim %d)", len(data), 8*c.Dim, c.Dim)
	}
	coords := make([]float64, c.Dim)
	for i := range coords {
		coords[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return &Vector{Id: id, Coords: coords}, nil
}

// LpNorm is the Minkowski distance of order P over vectors whose coordinates
// lie in [0, Scale]. P must be >= 1 for the triangle inequality to hold.
// The paper uses L5 for the Color dataset and L2 for the Synthetic dataset.
type LpNorm struct {
	// P is the Minkowski order (>= 1).
	P float64
	// Dim is the vector dimensionality, used to derive d+.
	Dim int
	// Scale is the per-coordinate domain width (coordinates in [0, Scale]).
	Scale float64
}

// L2 returns the Euclidean distance over dim-dimensional unit-cube vectors.
func L2(dim int) LpNorm { return LpNorm{P: 2, Dim: dim, Scale: 1} }

// L5 returns the Minkowski-5 distance over dim-dimensional unit-cube vectors.
func L5(dim int) LpNorm { return LpNorm{P: 5, Dim: dim, Scale: 1} }

// Distance implements DistanceFunc over *Vector and *Vector32 (never mixed
// within one space), through the unrolled inner loops of kernels.go. Integer
// orders (L5 for the Color workload) take the repeated-multiplication path:
// intPow is ~5× cheaper than math.Pow per coordinate — see
// BenchmarkDistanceL5 in bench_test.go.
func (l LpNorm) Distance(a, b Object) float64 {
	switch va := a.(type) {
	case *Vector:
		vb, ok := b.(*Vector)
		if !ok {
			panic(badType("LpNorm", "*Vector", b))
		}
		l.checkDims(len(va.Coords), len(vb.Coords))
		return l.root(l.powSum64(va.Coords, vb.Coords))
	case *Vector32:
		vb, ok := b.(*Vector32)
		if !ok {
			panic(badType("LpNorm", "*Vector32", b))
		}
		l.checkDims(len(va.Coords), len(vb.Coords))
		return l.root(l.powSum32(va.Coords, vb.Coords))
	}
	panic(badType("LpNorm", "*Vector or *Vector32", a))
}

// powSum64 returns the powered Lp sum Σ|aᵢ-bᵢ|^p (root not yet applied).
func (l LpNorm) powSum64(a, b []float64) float64 {
	switch {
	case l.P == 2:
		return l2Sum64(a, b)
	case l.P == 1:
		return l1Sum64(a, b)
	default:
		if p, ok := l.intP(); ok {
			return lpSum64(a, b, p)
		}
		var s float64
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i]), l.P)
		}
		return s
	}
}

// powSum32 is powSum64 over float32 coordinates (widened per element).
func (l LpNorm) powSum32(a, b []float32) float64 {
	switch {
	case l.P == 2:
		return l2Sum32(a, b)
	case l.P == 1:
		return l1Sum32(a, b)
	default:
		if p, ok := l.intP(); ok {
			return lpSum32(a, b, p)
		}
		var s float64
		for i := range a {
			s += math.Pow(math.Abs(float64(a[i])-float64(b[i])), l.P)
		}
		return s
	}
}

// root applies the final p-th root to a powered sum.
func (l LpNorm) root(s float64) float64 {
	switch l.P {
	case 2:
		return math.Sqrt(s)
	case 1:
		return s
	default:
		return math.Pow(s, 1/l.P)
	}
}

// budget returns the powered abandon budget for threshold t: t^p, inflated by
// rootSafetyMargin when a final root will be applied (for L1 the sum is the
// distance, so the threshold is used as is).
func (l LpNorm) budget(t float64) float64 {
	switch l.P {
	case 1:
		return t
	case 2:
		return t * t * rootSafetyMargin
	default:
		p, _ := l.intP()
		return intPow(t, p) * rootSafetyMargin
	}
}

// checkDims panics on mismatched vector dimensionalities.
func (l LpNorm) checkDims(na, nb int) {
	if na != nb {
		panic(fmt.Sprintf("metric: LpNorm on vectors of dim %d and %d", na, nb))
	}
}

// DistanceAtMost implements BoundedDistanceFunc. The p-th root is deferred:
// the partial sum of p-th-power coordinate deltas is compared against t^p
// (the sum of non-negative terms only grows, so partial > budget proves the
// final distance exceeds t), checked at every unroll-block boundary. A tiny
// relative safety margin on the budget absorbs the rounding of the final
// root, so a candidate whose rounded distance would land exactly on t is
// never abandoned — the within ⇔ d ≤ t contract holds bit-exactly. The
// kernels share their accumulator layout with the exact path (kernels.go), so
// a completed bounded evaluation returns Distance's value bit for bit.
func (l LpNorm) DistanceAtMost(a, b Object, t float64) (float64, bool) {
	if t < 0 {
		return 0, false
	}
	if _, ok := l.intP(); !ok {
		// Non-integer order: no cheap power, evaluate exactly.
		d := l.Distance(a, b)
		return d, d <= t
	}
	budget := l.budget(t)
	switch va := a.(type) {
	case *Vector:
		vb, ok := b.(*Vector)
		if !ok {
			panic(badType("LpNorm", "*Vector", b))
		}
		l.checkDims(len(va.Coords), len(vb.Coords))
		s, within := l.powSum64AtMost(va.Coords, vb.Coords, budget)
		if !within {
			return s, false
		}
		d := l.root(s)
		return d, d <= t
	case *Vector32:
		vb, ok := b.(*Vector32)
		if !ok {
			panic(badType("LpNorm", "*Vector32", b))
		}
		l.checkDims(len(va.Coords), len(vb.Coords))
		s, within := l.powSum32AtMost(va.Coords, vb.Coords, budget)
		if !within {
			return s, false
		}
		d := l.root(s)
		return d, d <= t
	}
	panic(badType("LpNorm", "*Vector or *Vector32", a))
}

// powSum64AtMost is powSum64 under a powered budget; l.P must be integer.
func (l LpNorm) powSum64AtMost(a, b []float64, budget float64) (float64, bool) {
	switch {
	case l.P == 2:
		return l2Sum64AtMost(a, b, budget)
	case l.P == 1:
		return l1Sum64AtMost(a, b, budget)
	default:
		p, _ := l.intP()
		return lpSum64AtMost(a, b, p, budget)
	}
}

// powSum32AtMost is powSum32 under a powered budget; l.P must be integer.
func (l LpNorm) powSum32AtMost(a, b []float32, budget float64) (float64, bool) {
	switch {
	case l.P == 2:
		return l2Sum32AtMost(a, b, budget)
	case l.P == 1:
		return l1Sum32AtMost(a, b, budget)
	default:
		p, _ := l.intP()
		return lpSum32AtMost(a, b, p, budget)
	}
}

// rootSafetyMargin inflates the powered budget t^p by 1+1e-12 before the
// abandon comparison. The final root (Sqrt or Pow) rounds to ~1 ulp (~1e-16
// relative), so a partial sum within the margin of t^p could still round to
// a distance exactly equal to t; the margin — orders of magnitude wider than
// any rounding — forces such near-boundary candidates down the exact path
// instead of abandoning them.
const rootSafetyMargin = 1 + 1e-12

// intP reports l.P as a small positive integer exponent, if it is one.
func (l LpNorm) intP() (int, bool) {
	p := int(l.P)
	if float64(p) == l.P && p >= 1 && p <= 64 {
		return p, true
	}
	return 0, false
}

// intPow raises x to the non-negative integer power p by binary
// exponentiation — for L5, three multiplications instead of a math.Pow call.
// Both the exact and bounded Lp paths use it, so their per-coordinate terms
// are bit-identical.
func intPow(x float64, p int) float64 {
	r := 1.0
	for p > 0 {
		if p&1 == 1 {
			r *= x
		}
		x *= x
		p >>= 1
	}
	return r
}

// MaxDistance returns d+ = Scale * Dim^(1/P), the diameter of the cube.
func (l LpNorm) MaxDistance() float64 {
	return l.Scale * math.Pow(float64(l.Dim), 1/l.P)
}

// Discrete reports false: Lp distances are real-valued.
func (l LpNorm) Discrete() bool { return false }

// Name implements DistanceFunc.
func (l LpNorm) Name() string {
	if l.P == math.Trunc(l.P) {
		return fmt.Sprintf("L%d", int(l.P))
	}
	return fmt.Sprintf("L%g", l.P)
}

// LInf is the Chebyshev (L∞) distance over vectors. It is the distance D(·)
// of the mapped pivot space (Section 3.1 of the paper) and is also available
// as a plain metric.
type LInf struct {
	// Dim is the vector dimensionality.
	Dim int
	// Scale is the per-coordinate domain width.
	Scale float64
}

// Distance implements DistanceFunc over *Vector and *Vector32, through the
// unrolled max-abs loops of kernels.go (max is order-invariant, so the lane
// split cannot change the result).
func (l LInf) Distance(a, b Object) float64 {
	switch va := a.(type) {
	case *Vector:
		vb, ok := b.(*Vector)
		if !ok {
			panic(badType("LInf", "*Vector", b))
		}
		return maxAbs64(va.Coords, vb.Coords)
	case *Vector32:
		vb, ok := b.(*Vector32)
		if !ok {
			panic(badType("LInf", "*Vector32", b))
		}
		return maxAbs32(va.Coords, vb.Coords)
	}
	panic(badType("LInf", "*Vector or *Vector32", a))
}

// DistanceAtMost implements BoundedDistanceFunc: the running maximum only
// grows, so the first unroll block whose maximum exceeds t proves the
// distance does too and the scan stops.
func (l LInf) DistanceAtMost(a, b Object, t float64) (float64, bool) {
	switch va := a.(type) {
	case *Vector:
		vb, ok := b.(*Vector)
		if !ok {
			panic(badType("LInf", "*Vector", b))
		}
		return maxAbs64AtMost(va.Coords, vb.Coords, t)
	case *Vector32:
		vb, ok := b.(*Vector32)
		if !ok {
			panic(badType("LInf", "*Vector32", b))
		}
		return maxAbs32AtMost(va.Coords, vb.Coords, t)
	}
	panic(badType("LInf", "*Vector or *Vector32", a))
}

// MaxDistance returns the cube's L∞ diameter, Scale.
func (l LInf) MaxDistance() float64 { return l.Scale }

// Discrete reports false.
func (l LInf) Discrete() bool { return false }

// Name implements DistanceFunc.
func (l LInf) Name() string { return "Linf" }

var (
	_ DistanceFunc        = LpNorm{}
	_ BoundedDistanceFunc = LpNorm{}
	_ DistanceFunc        = LInf{}
	_ BoundedDistanceFunc = LInf{}
	_ Codec               = VectorCodec{}
)
