package metric

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Vector is a fixed-dimension real-valued object. It backs the Color
// (16-d, L5-norm) and Synthetic (20-d, L2-norm) workloads of the paper.
type Vector struct {
	Id     uint64
	Coords []float64
}

// NewVector returns a vector object with the given id and coordinates.
func NewVector(id uint64, coords []float64) *Vector {
	return &Vector{Id: id, Coords: coords}
}

// ID returns the object identifier.
func (v *Vector) ID() uint64 { return v.Id }

// AppendBinary appends the coordinates as little-endian float64 bits.
func (v *Vector) AppendBinary(dst []byte) []byte {
	for _, c := range v.Coords {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c))
	}
	return dst
}

// String implements fmt.Stringer.
func (v *Vector) String() string {
	return fmt.Sprintf("Vector(%d, dim=%d)", v.Id, len(v.Coords))
}

// VectorCodec decodes Vector payloads of a known dimensionality.
type VectorCodec struct {
	// Dim is the expected number of coordinates per vector.
	Dim int
}

// Decode implements Codec.
func (c VectorCodec) Decode(id uint64, data []byte) (Object, error) {
	if len(data) != 8*c.Dim {
		return nil, fmt.Errorf("metric: vector payload is %d bytes, want %d (dim %d)", len(data), 8*c.Dim, c.Dim)
	}
	coords := make([]float64, c.Dim)
	for i := range coords {
		coords[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return &Vector{Id: id, Coords: coords}, nil
}

// LpNorm is the Minkowski distance of order P over vectors whose coordinates
// lie in [0, Scale]. P must be >= 1 for the triangle inequality to hold.
// The paper uses L5 for the Color dataset and L2 for the Synthetic dataset.
type LpNorm struct {
	// P is the Minkowski order (>= 1).
	P float64
	// Dim is the vector dimensionality, used to derive d+.
	Dim int
	// Scale is the per-coordinate domain width (coordinates in [0, Scale]).
	Scale float64
}

// L2 returns the Euclidean distance over dim-dimensional unit-cube vectors.
func L2(dim int) LpNorm { return LpNorm{P: 2, Dim: dim, Scale: 1} }

// L5 returns the Minkowski-5 distance over dim-dimensional unit-cube vectors.
func L5(dim int) LpNorm { return LpNorm{P: 5, Dim: dim, Scale: 1} }

// Distance implements DistanceFunc.
func (l LpNorm) Distance(a, b Object) float64 {
	va, ok := a.(*Vector)
	if !ok {
		panic(badType("LpNorm", "*Vector", a))
	}
	vb, ok := b.(*Vector)
	if !ok {
		panic(badType("LpNorm", "*Vector", b))
	}
	if len(va.Coords) != len(vb.Coords) {
		panic(fmt.Sprintf("metric: LpNorm on vectors of dim %d and %d", len(va.Coords), len(vb.Coords)))
	}
	switch l.P {
	case 2:
		var s float64
		for i, c := range va.Coords {
			d := c - vb.Coords[i]
			s += d * d
		}
		return math.Sqrt(s)
	case 1:
		var s float64
		for i, c := range va.Coords {
			s += math.Abs(c - vb.Coords[i])
		}
		return s
	default:
		var s float64
		for i, c := range va.Coords {
			s += math.Pow(math.Abs(c-vb.Coords[i]), l.P)
		}
		return math.Pow(s, 1/l.P)
	}
}

// MaxDistance returns d+ = Scale * Dim^(1/P), the diameter of the cube.
func (l LpNorm) MaxDistance() float64 {
	return l.Scale * math.Pow(float64(l.Dim), 1/l.P)
}

// Discrete reports false: Lp distances are real-valued.
func (l LpNorm) Discrete() bool { return false }

// Name implements DistanceFunc.
func (l LpNorm) Name() string {
	if l.P == math.Trunc(l.P) {
		return fmt.Sprintf("L%d", int(l.P))
	}
	return fmt.Sprintf("L%g", l.P)
}

// LInf is the Chebyshev (L∞) distance over vectors. It is the distance D(·)
// of the mapped pivot space (Section 3.1 of the paper) and is also available
// as a plain metric.
type LInf struct {
	// Dim is the vector dimensionality.
	Dim int
	// Scale is the per-coordinate domain width.
	Scale float64
}

// Distance implements DistanceFunc.
func (l LInf) Distance(a, b Object) float64 {
	va, ok := a.(*Vector)
	if !ok {
		panic(badType("LInf", "*Vector", a))
	}
	vb, ok := b.(*Vector)
	if !ok {
		panic(badType("LInf", "*Vector", b))
	}
	var m float64
	for i, c := range va.Coords {
		if d := math.Abs(c - vb.Coords[i]); d > m {
			m = d
		}
	}
	return m
}

// MaxDistance returns the cube's L∞ diameter, Scale.
func (l LInf) MaxDistance() float64 { return l.Scale }

// Discrete reports false.
func (l LInf) Discrete() bool { return false }

// Name implements DistanceFunc.
func (l LInf) Name() string { return "Linf" }

var (
	_ DistanceFunc = LpNorm{}
	_ DistanceFunc = LInf{}
	_ Codec        = VectorCodec{}
)
