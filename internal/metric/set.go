package metric

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Set is a set-valued object (e.g. a document's shingle set or a user's tag
// set), compared under Jaccard distance. Elements are stored sorted and
// deduplicated so distance computation is a linear merge.
type Set struct {
	Id    uint64
	Elems []uint64 // sorted, unique
}

// NewSet returns a set object; elems are copied, sorted and deduplicated.
func NewSet(id uint64, elems []uint64) *Set {
	cp := append([]uint64(nil), elems...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:0]
	for i, e := range cp {
		if i == 0 || e != cp[i-1] {
			out = append(out, e)
		}
	}
	return &Set{Id: id, Elems: out}
}

// ID returns the object identifier.
func (s *Set) ID() uint64 { return s.Id }

// AppendBinary appends the elements as little-endian uint64s.
func (s *Set) AppendBinary(dst []byte) []byte {
	for _, e := range s.Elems {
		dst = binary.LittleEndian.AppendUint64(dst, e)
	}
	return dst
}

// String implements fmt.Stringer.
func (s *Set) String() string { return fmt.Sprintf("Set(%d, |%d|)", s.Id, len(s.Elems)) }

// SetCodec decodes Set payloads.
type SetCodec struct{}

// Decode implements Codec.
func (SetCodec) Decode(id uint64, data []byte) (Object, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("metric: set payload %d bytes is not a multiple of 8", len(data))
	}
	elems := make([]uint64, len(data)/8)
	for i := range elems {
		elems[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return &Set{Id: id, Elems: elems}, nil
}

// Jaccard is the Jaccard distance d(A, B) = 1 − |A∩B| / |A∪B|, a true
// metric on finite sets (d+ = 1). It extends the library beyond the paper's
// five workloads to the set-similarity joins common in data cleaning.
type Jaccard struct{}

// Distance implements DistanceFunc by merging the two sorted element lists.
func (Jaccard) Distance(a, b Object) float64 {
	sa, ok := a.(*Set)
	if !ok {
		panic(badType("Jaccard", "*Set", a))
	}
	sb, ok := b.(*Set)
	if !ok {
		panic(badType("Jaccard", "*Set", b))
	}
	if len(sa.Elems) == 0 && len(sb.Elems) == 0 {
		return 0
	}
	var inter int
	i, j := 0, 0
	for i < len(sa.Elems) && j < len(sb.Elems) {
		switch {
		case sa.Elems[i] == sb.Elems[j]:
			inter++
			i++
			j++
		case sa.Elems[i] < sb.Elems[j]:
			i++
		default:
			j++
		}
	}
	union := len(sa.Elems) + len(sb.Elems) - inter
	return 1 - float64(inter)/float64(union)
}

// MaxDistance returns 1.
func (Jaccard) MaxDistance() float64 { return 1 }

// Discrete reports false (Jaccard distances are rationals in [0, 1]).
func (Jaccard) Discrete() bool { return false }

// Name implements DistanceFunc.
func (Jaccard) Name() string { return "jaccard" }

var (
	_ DistanceFunc = Jaccard{}
	_ Codec        = SetCodec{}
)
