package metric

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// batchCase is one metric with a compatible object population.
type batchCase struct {
	name string
	fn   DistanceFunc
	objs []Object
}

func batchCases(seed int64) []batchCase {
	rng := rand.New(rand.NewSource(seed))
	vec := func(id uint64, dim int) *Vector {
		c := make([]float64, dim)
		for i := range c {
			c[i] = rng.Float64()
		}
		return NewVector(id, c)
	}
	vecs := make([]Object, 40)
	vecs32 := make([]Object, 40)
	for i := range vecs {
		v := vec(uint64(i), 9) // 9 = one 4-group + 8-group tail coverage
		vecs[i] = v
		vecs32[i] = NewVector32From64(uint64(i), v.Coords)
	}
	sigs := make([]Object, 40)
	for i := range sigs {
		b := make([]byte, 11) // odd length exercises the byte tail
		rng.Read(b)
		sigs[i] = NewBitString(uint64(i), b)
	}
	base := "interrelationships"
	long := strings.Repeat("acgtacgtxy", 9) // 90 chars: blocked Myers path
	strs := []Object{
		NewStr(0, ""), NewStr(1, "a"), NewStr(2, base), NewStr(3, base+"suffix"),
		NewStr(4, "prefix"+base), NewStr(5, long), NewStr(6, long[:64]), NewStr(7, long[:65]),
		NewStr(8, "inter"+long+"ships"),
	}
	for i := 9; i < 40; i++ {
		w := make([]byte, 1+rng.Intn(30))
		for j := range w {
			w[j] = byte('a' + rng.Intn(6))
		}
		strs = append(strs, NewStr(uint64(i), string(w)))
	}
	return []batchCase{
		{"L2-vec64", L2(9), vecs},
		{"L5-vec64", L5(9), vecs},
		{"L2-vec32", L2(9), vecs32},
		{"L5-vec32", L5(9), vecs32},
		{"LInf-vec64", LInf{Dim: 9}, vecs},
		{"LInf-vec32", LInf{Dim: 9}, vecs32},
		{"hamming", Hamming{Bytes: 11}, sigs},
		{"edit", EditDistance{MaxLen: 120}, strs},
	}
}

// checkBatchAgainstScalar asserts the element-wise batch contract for one
// (query, threshold): every (d[i], within[i]) pair is bit-identical to the
// scalar DistanceAtMost result.
func checkBatchAgainstScalar(t *testing.T, name string, fn DistanceFunc, q Object, objs []Object, thr float64) {
	t.Helper()
	d := make([]float64, len(objs))
	within := make([]bool, len(objs))
	BatchDistanceAtMost(fn, q, objs, thr, d, within)
	for i, o := range objs {
		sd, sw := DistanceAtMost(fn, q, o, thr)
		if math.Float64bits(d[i]) != math.Float64bits(sd) || within[i] != sw {
			t.Fatalf("%s: q=%d cand=%d t=%v: batch (%v, %v) != scalar (%v, %v)",
				name, q.ID(), o.ID(), thr, d[i], within[i], sd, sw)
		}
		if sw {
			exact := fn.Distance(q, o)
			if math.Float64bits(d[i]) != math.Float64bits(exact) {
				t.Fatalf("%s: q=%d cand=%d t=%v: within d = %v != exact %v",
					name, q.ID(), o.ID(), thr, d[i], exact)
			}
		}
	}
}

// TestBatchMatchesScalarKernels is the metric-layer half of the equivalence
// harness (DESIGN.md §13): for every batch kernel and object kind, the block
// evaluation is bit-identical to the scalar bounded path at thresholds
// covering degenerate (< 0, +Inf), abandoning, and exactly-at-the-distance
// cases.
func TestBatchMatchesScalarKernels(t *testing.T) {
	for _, c := range batchCases(42) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if !IsBatch(c.fn) {
				t.Fatalf("%T has no batch kernel", c.fn)
			}
			maxD := c.fn.MaxDistance()
			for qi := 0; qi < 6; qi++ {
				q := c.objs[qi]
				thresholds := []float64{-1, 0, 0.05 * maxD, 0.3 * maxD, maxD, math.Inf(1)}
				// Thresholds exactly at and just below a realized distance
				// probe the ≤-boundary of the within contract.
				ref := c.fn.Distance(q, c.objs[len(c.objs)-1])
				thresholds = append(thresholds, ref, math.Nextafter(ref, 0), ref/2)
				for _, thr := range thresholds {
					checkBatchAgainstScalar(t, c.name, c.fn, q, c.objs, thr)
				}
			}
		})
	}
}

// TestBatchFallbackAndCounter pins the package helper and the Counter
// wrapper: a metric without a kernel falls back to an element-wise scalar
// loop with identical outputs, IsBatch sees through Counter, and a counted
// batch evaluation adds exactly len(objs) to the lifetime counter.
func TestBatchFallbackAndCounter(t *testing.T) {
	// TrigramAngular has no batch kernel: fallback must still satisfy the
	// element-wise contract.
	rng := rand.New(rand.NewSource(7))
	seqs := make([]Object, 12)
	for i := range seqs {
		b := make([]byte, 30+rng.Intn(20))
		for j := range b {
			b[j] = "ACGT"[rng.Intn(4)]
		}
		seqs[i] = NewSeq(uint64(i), string(b))
	}
	ta := TrigramAngular{}
	if IsBatch(ta) {
		t.Fatal("TrigramAngular unexpectedly reports a batch kernel")
	}
	checkBatchAgainstScalar(t, "trigram-fallback", ta, seqs[0], seqs, 0.4*ta.MaxDistance())

	// Counter: batched evaluation counts one computation per candidate —
	// same accounting as the scalar loop it replaces.
	cnt := NewCounter(L2(9))
	if !IsBatch(cnt) || !cnt.Batch() {
		t.Fatal("Counter did not surface the wrapped batch kernel")
	}
	cases := batchCases(43)[0]
	d := make([]float64, len(cases.objs))
	within := make([]bool, len(cases.objs))
	cnt.BatchDistanceAtMost(cases.objs[0], cases.objs, 0.2, d, within)
	if got := cnt.Count(); got != int64(len(cases.objs)) {
		t.Fatalf("counted batch added %d computations, want %d", got, len(cases.objs))
	}
	// A Counter around a kernel-less metric must count without batching.
	pc := NewCounter(TrigramAngular{})
	if pc.Batch() {
		t.Fatal("Counter reports batch for TrigramAngular")
	}
	pd := make([]float64, len(seqs))
	pw := make([]bool, len(seqs))
	pc.BatchDistanceAtMost(seqs[0], seqs, 1, pd, pw)
	if got := pc.Count(); got != int64(len(seqs)) {
		t.Fatalf("fallback batch counted %d, want %d (double count?)", got, len(seqs))
	}
}

// TestEditQueryBranches drives every branch of editQuery.atMost against the
// scalar bounded kernel: degenerate thresholds, identical strings, affix
// stripping down to emptiness, the length-gap screen, the wide-band exact
// case, the narrow band, and both Myers kernels (≤64 and blocked > 64).
func TestEditQueryBranches(t *testing.T) {
	long := strings.Repeat("abcdefgh", 12) // 96 chars
	cases := []struct {
		q, text string
		t       float64
	}{
		{"kitten", "sitting", -1},              // t < 0
		{"same", "same", 5},                    // q == text
		{"kitten", "sitting", 100},             // t ≥ n: exact, always within
		{"ab", "abcdefghij", 3},                // n - m > k after strip
		{"prefix", "prefixtail", 4},            // m == 0 after affix strip
		{"prefix", "prefixtail", 2},            // m == 0, gap > k → not within
		{"abcde", "vwxyz", 4},                  // 2k+1 ≥ m: wide band, exact
		{"abcdefghijklmnop", "ponmlkjihgfedcba", 3}, // narrow band → banded DP
		{long, long[:90] + "zzzzzz", 8},        // blocked Myers, shared prefix
		{long[:64], long[:64] + "xy", 1},       // exactly one word
		{long[:65], long[:60], 10},             // just past one word
		{"", "nonempty", 3},                    // empty query
		{"nonempty", "", 3},                    // empty text
	}
	ed := EditDistance{MaxLen: 120}
	for _, c := range cases {
		eq := newEditQuery(c.q)
		gd, gw := eq.atMost(c.text, c.t)
		sd, sw := ed.DistanceAtMost(NewStr(0, c.q), NewStr(1, c.text), c.t)
		if float64(gd) != sd || gw != sw {
			t.Errorf("atMost(%q, %q, %v) = (%d, %v), scalar (%v, %v)",
				c.q, c.text, c.t, gd, gw, sd, sw)
		}
		if want := ed.Distance(NewStr(0, c.q), NewStr(1, c.text)); float64(eq.exact(c.text)) != want {
			t.Errorf("exact(%q, %q) = %d, want %v", c.q, c.text, eq.exact(c.text), want)
		}
	}
}
