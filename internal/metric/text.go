package metric

import "fmt"

// Str is a string object, used for the Words workload under edit distance.
type Str struct {
	Id uint64
	S  string
}

// NewStr returns a string object.
func NewStr(id uint64, s string) *Str { return &Str{Id: id, S: s} }

// ID returns the object identifier.
func (s *Str) ID() uint64 { return s.Id }

// AppendBinary appends the raw string bytes.
func (s *Str) AppendBinary(dst []byte) []byte { return append(dst, s.S...) }

// String implements fmt.Stringer.
func (s *Str) String() string { return fmt.Sprintf("Str(%d, %q)", s.Id, s.S) }

// StrCodec decodes Str payloads.
type StrCodec struct{}

// Decode implements Codec.
func (StrCodec) Decode(id uint64, data []byte) (Object, error) {
	return &Str{Id: id, S: string(data)}, nil
}

// EditDistance is the Levenshtein distance over byte strings. Distances are
// integers, so the space is discrete and indexed with δ = 1.
type EditDistance struct {
	// MaxLen is the maximum string length in the dataset; d+ = MaxLen
	// (transforming a string into an unrelated one of maximal length costs
	// at most MaxLen operations when the shorter can be empty).
	MaxLen int
}

// Distance implements DistanceFunc using Myers' bit-parallel algorithm
// (O(⌈m/64⌉·n), see myers.go) — the result is identical to the textbook
// dynamic program, only faster.
func (e EditDistance) Distance(a, b Object) float64 {
	sa, ok := a.(*Str)
	if !ok {
		panic(badType("EditDistance", "*Str", a))
	}
	sb, ok := b.(*Str)
	if !ok {
		panic(badType("EditDistance", "*Str", b))
	}
	return float64(editDistance(sa.S, sb.S))
}

// DistanceAtMost implements BoundedDistanceFunc with Ukkonen's banded
// dynamic program: only cells within |i-j| ≤ ⌊t⌋ of the diagonal are
// evaluated, and the computation abandons as soon as an entire band row
// exceeds the threshold. Thresholds ≥ the string lengths degrade to the
// exact bit-parallel kernel.
func (e EditDistance) DistanceAtMost(a, b Object, t float64) (float64, bool) {
	sa, ok := a.(*Str)
	if !ok {
		panic(badType("EditDistance", "*Str", a))
	}
	sb, ok := b.(*Str)
	if !ok {
		panic(badType("EditDistance", "*Str", b))
	}
	d, within := boundedEditDistance(sa.S, sb.S, t)
	return float64(d), within
}

// MaxDistance returns d+ = MaxLen.
func (e EditDistance) MaxDistance() float64 { return float64(e.MaxLen) }

// Discrete reports true: edit distances are integers.
func (e EditDistance) Discrete() bool { return true }

// Name implements DistanceFunc.
func (e EditDistance) Name() string { return "edit" }

// Levenshtein returns the edit distance between a and b (unit costs for
// insertion, deletion and substitution) using the classic two-row dynamic
// program. Common prefixes and suffixes are stripped first — if nothing else
// remains the distance is just |len(a)-len(b)| and the DP is skipped — and
// short strings run on a stack buffer instead of allocating the row.
func Levenshtein(a, b string) int {
	a, b = stripCommonAffixes(a, b)
	// Keep the shorter string as the DP row to bound memory.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	// row[j] holds the distance between a[:i] and b[:j] for the current i.
	var stack [128]int
	var row []int
	if len(b) < len(stack) {
		row = stack[:len(b)+1]
	} else {
		row = make([]int, len(b)+1)
	}
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0] // row[j-1] of the previous iteration (diagonal)
		row[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cur := row[j]
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			best := prev + cost
			if d := row[j] + 1; d < best { // deletion
				best = d
			}
			if d := row[j-1] + 1; d < best { // insertion
				best = d
			}
			row[j] = best
			prev = cur
		}
	}
	return row[len(b)]
}

// stripCommonAffixes removes the longest common prefix and suffix of a and b.
// Both operations preserve the edit distance, and on natural-language and
// DNA data they routinely shrink the DP matrix substantially.
func stripCommonAffixes(a, b string) (string, string) {
	for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
		a, b = a[1:], b[1:]
	}
	for len(a) > 0 && len(b) > 0 && a[len(a)-1] == b[len(b)-1] {
		a, b = a[:len(a)-1], b[:len(b)-1]
	}
	return a, b
}

// boundedEditDistance reports whether Levenshtein(a, b) ≤ t, returning the
// exact distance when it is. The kernel short-circuits on the length
// difference (every length gap costs at least one edit), strips common
// affixes, and then runs Ukkonen's banded DP: with k = ⌊t⌋, any alignment of
// cost ≤ k only visits cells with |i-j| ≤ k, so each row evaluates at most
// 2k+1 cells and the whole computation abandons once an entire band row
// exceeds k. When the band would cover most of the matrix, the exact
// bit-parallel kernel is cheaper and is used instead.
func boundedEditDistance(a, b string, t float64) (int, bool) {
	if t < 0 {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	a, b = stripCommonAffixes(a, b)
	if len(a) > len(b) {
		a, b = b, a
	}
	m, n := len(a), len(b)
	// Any threshold at or above the longer length admits everything: compute
	// exactly. This also keeps ⌊t⌋ well-defined for t = +Inf.
	if t >= float64(n) {
		return editDistance(a, b), true
	}
	k := int(t)
	if n-m > k {
		return n - m, false
	}
	if m == 0 {
		return n, true // n = |len(a)-len(b)| ≤ k here
	}
	// A band of half-width k covers the whole matrix when 2k+1 ≥ m; the
	// bit-parallel exact kernel is then at least as cheap as the banded DP.
	if 2*k+1 >= m {
		d := editDistance(a, b)
		return d, d <= k
	}

	// Banded two-row DP. inf = k+1 acts as the out-of-band sentinel: any
	// cell holding a value > k can never contribute to an alignment of cost
	// ≤ k, so its exact value is irrelevant.
	inf := k + 1
	var stack [128]int
	var prev, cur []int
	if 2*(n+1) <= len(stack) {
		prev, cur = stack[:n+1], stack[n+1:2*(n+1)]
	} else {
		buf := make([]int, 2*(n+1))
		prev, cur = buf[:n+1], buf[n+1:]
	}
	for j := 0; j <= k; j++ {
		prev[j] = j
	}
	prev[k+1] = inf // k+1 ≤ n because 2k+1 < m ≤ n

	for i := 1; i <= m; i++ {
		lo, hi := i-k, i+k
		if lo < 1 {
			lo = 1
			cur[0] = i
		} else {
			cur[lo-1] = inf
		}
		if hi > n {
			hi = n
		}
		rowMin := inf
		ca := a[i-1]
		for j := lo; j <= hi; j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if d := prev[j] + 1; d < best { // deletion
				best = d
			}
			if d := cur[j-1] + 1; d < best { // insertion
				best = d
			}
			cur[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if hi < n {
			cur[hi+1] = inf // re-fence the band edge over the stale cell
		}
		if rowMin > k {
			// Every in-band cell of this row exceeds k, and any alignment of
			// cost ≤ k must pass through the band in every row: abandon.
			return rowMin, false
		}
		prev, cur = cur, prev
	}
	d := prev[n]
	return d, d <= k
}

var (
	_ DistanceFunc        = EditDistance{}
	_ BoundedDistanceFunc = EditDistance{}
	_ Codec               = StrCodec{}
)
