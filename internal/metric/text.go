package metric

import "fmt"

// Str is a string object, used for the Words workload under edit distance.
type Str struct {
	Id uint64
	S  string
}

// NewStr returns a string object.
func NewStr(id uint64, s string) *Str { return &Str{Id: id, S: s} }

// ID returns the object identifier.
func (s *Str) ID() uint64 { return s.Id }

// AppendBinary appends the raw string bytes.
func (s *Str) AppendBinary(dst []byte) []byte { return append(dst, s.S...) }

// String implements fmt.Stringer.
func (s *Str) String() string { return fmt.Sprintf("Str(%d, %q)", s.Id, s.S) }

// StrCodec decodes Str payloads.
type StrCodec struct{}

// Decode implements Codec.
func (StrCodec) Decode(id uint64, data []byte) (Object, error) {
	return &Str{Id: id, S: string(data)}, nil
}

// EditDistance is the Levenshtein distance over byte strings. Distances are
// integers, so the space is discrete and indexed with δ = 1.
type EditDistance struct {
	// MaxLen is the maximum string length in the dataset; d+ = MaxLen
	// (transforming a string into an unrelated one of maximal length costs
	// at most MaxLen operations when the shorter can be empty).
	MaxLen int
}

// Distance implements DistanceFunc using the two-row dynamic program.
func (e EditDistance) Distance(a, b Object) float64 {
	sa, ok := a.(*Str)
	if !ok {
		panic(badType("EditDistance", "*Str", a))
	}
	sb, ok := b.(*Str)
	if !ok {
		panic(badType("EditDistance", "*Str", b))
	}
	return float64(Levenshtein(sa.S, sb.S))
}

// MaxDistance returns d+ = MaxLen.
func (e EditDistance) MaxDistance() float64 { return float64(e.MaxLen) }

// Discrete reports true: edit distances are integers.
func (e EditDistance) Discrete() bool { return true }

// Name implements DistanceFunc.
func (e EditDistance) Name() string { return "edit" }

// Levenshtein returns the edit distance between a and b (unit costs for
// insertion, deletion and substitution).
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	// Keep the shorter string as the DP row to bound memory.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	// row[j] holds the distance between a[:i] and b[:j] for the current i.
	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0] // row[j-1] of the previous iteration (diagonal)
		row[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cur := row[j]
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			best := prev + cost
			if d := row[j] + 1; d < best { // deletion
				best = d
			}
			if d := row[j-1] + 1; d < best { // insertion
				best = d
			}
			row[j] = best
			prev = cur
		}
	}
	return row[len(b)]
}

var (
	_ DistanceFunc = EditDistance{}
	_ Codec        = StrCodec{}
)
