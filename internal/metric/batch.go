package metric

// BatchDistanceFunc is an optional extension of DistanceFunc for evaluating
// one query against a block of candidates — the shape raf.ReadBatch hands the
// verification stage when a leaf's candidates land together (DESIGN.md §13).
// A batch kernel hoists the per-query work out of the per-candidate loop:
// the query's coordinate slice and the powered threshold budget for the Lp
// norms, the interned Myers Peq bitmaps for edit distance.
//
// The contract is the BoundedDistanceFunc contract, element-wise and bit for
// bit: for every i, (d[i], within[i]) must equal what DistanceAtMost(q,
// objs[i], t) returns — within[i] ⇔ d(q, objs[i]) ≤ t exactly, and d[i] is
// then bit-identical to Distance(q, objs[i]). Batch evaluation is therefore
// invisible to query semantics and counters; only wall time changes. The
// cross-kernel equivalence suites (core's batch tests, FuzzBatchDistance)
// enforce this for every kernel and object kind.
type BatchDistanceFunc interface {
	DistanceFunc
	// BatchDistanceAtMost evaluates d(q, objs[i]) against the threshold t
	// for every candidate, writing the (d[i], within[i]) pairs into the
	// caller's slices. len(d) and len(within) must equal len(objs). Any t is
	// allowed: t = +Inf degenerates to exact batch evaluation, t < 0 reports
	// within[i] == false for every candidate.
	BatchDistanceAtMost(q Object, objs []Object, t float64, d []float64, within []bool)
}

// BatchDistanceAtMost evaluates fn against a block of candidates, using the
// batch kernel when fn implements BatchDistanceFunc and a scalar
// DistanceAtMost loop otherwise. The fallback preserves the element-wise
// contract exactly, so callers can treat every DistanceFunc as batchable;
// only the hoisting savings require a real kernel.
func BatchDistanceAtMost(fn DistanceFunc, q Object, objs []Object, t float64, d []float64, within []bool) {
	if bf, ok := fn.(BatchDistanceFunc); ok {
		bf.BatchDistanceAtMost(q, objs, t, d, within)
		return
	}
	for i, o := range objs {
		d[i], within[i] = DistanceAtMost(fn, q, o, t)
	}
}

// IsBatch reports whether fn has a batch kernel (implements
// BatchDistanceFunc), unwrapping a Counter if needed. The tree uses it to
// decide whether the QueryStats.BatchedCandidates accounting applies.
func IsBatch(fn DistanceFunc) bool {
	if c, ok := fn.(*Counter); ok {
		fn = c.Unwrap()
	}
	_, ok := fn.(BatchDistanceFunc)
	return ok
}

// BatchDistanceAtMost implements BatchDistanceFunc for the Minkowski norms:
// the query's coordinate slice is type-asserted once and the powered abandon
// budget t^p computed once; each candidate then runs the same shared kernel
// the scalar path uses, so every (d[i], within[i]) pair is bit-identical to
// DistanceAtMost(q, objs[i], t) by construction.
func (l LpNorm) BatchDistanceAtMost(q Object, objs []Object, t float64, d []float64, within []bool) {
	if _, ok := l.intP(); !ok {
		for i, o := range objs {
			d[i], within[i] = l.DistanceAtMost(q, o, t)
		}
		return
	}
	if t < 0 {
		for i := range objs {
			d[i], within[i] = 0, false
		}
		return
	}
	budget := l.budget(t)
	switch vq := q.(type) {
	case *Vector:
		qc := vq.Coords
		for i, o := range objs {
			vo, ok := o.(*Vector)
			if !ok {
				panic(badType("LpNorm", "*Vector", o))
			}
			l.checkDims(len(qc), len(vo.Coords))
			s, w := l.powSum64AtMost(qc, vo.Coords, budget)
			if !w {
				d[i], within[i] = s, false
				continue
			}
			dist := l.root(s)
			d[i], within[i] = dist, dist <= t
		}
	case *Vector32:
		qc := vq.Coords
		for i, o := range objs {
			vo, ok := o.(*Vector32)
			if !ok {
				panic(badType("LpNorm", "*Vector32", o))
			}
			l.checkDims(len(qc), len(vo.Coords))
			s, w := l.powSum32AtMost(qc, vo.Coords, budget)
			if !w {
				d[i], within[i] = s, false
				continue
			}
			dist := l.root(s)
			d[i], within[i] = dist, dist <= t
		}
	default:
		panic(badType("LpNorm", "*Vector or *Vector32", q))
	}
}

// BatchDistanceAtMost implements BatchDistanceFunc for the Chebyshev
// distance, hoisting the query's type assertion out of the candidate loop.
func (l LInf) BatchDistanceAtMost(q Object, objs []Object, t float64, d []float64, within []bool) {
	switch vq := q.(type) {
	case *Vector:
		qc := vq.Coords
		for i, o := range objs {
			vo, ok := o.(*Vector)
			if !ok {
				panic(badType("LInf", "*Vector", o))
			}
			d[i], within[i] = maxAbs64AtMost(qc, vo.Coords, t)
		}
	case *Vector32:
		qc := vq.Coords
		for i, o := range objs {
			vo, ok := o.(*Vector32)
			if !ok {
				panic(badType("LInf", "*Vector32", o))
			}
			d[i], within[i] = maxAbs32AtMost(qc, vo.Coords, t)
		}
	default:
		panic(badType("LInf", "*Vector or *Vector32", q))
	}
}

// BatchDistanceAtMost implements BatchDistanceFunc for the Hamming distance,
// hoisting the query's bit slice out of the candidate loop.
func (h Hamming) BatchDistanceAtMost(q Object, objs []Object, t float64, d []float64, within []bool) {
	bq, ok := q.(*BitString)
	if !ok {
		panic(badType("Hamming", "*BitString", q))
	}
	for i, o := range objs {
		bo, ok := o.(*BitString)
		if !ok {
			panic(badType("Hamming", "*BitString", o))
		}
		d[i], within[i] = hammingAtMost(bq.Bits, bo.Bits, t)
	}
}

// BatchDistanceAtMost implements BatchDistanceFunc for edit distance: the
// query's Myers equality bitmaps (single-word or interned multi-block) are
// built once and every exact evaluation in the decision tree replays the
// prebuilt kernel — the per-candidate table build is the dominant cost for
// dictionary-length strings, so hoisting it is the batch win here. The
// narrow-band case still runs Ukkonen's banded DP per pair (a band has no
// hoistable pattern state). Each (d[i], within[i]) pair equals the scalar
// DistanceAtMost result: both sides compute the same exact integer distance
// and compare it against the same ⌊t⌋.
func (e EditDistance) BatchDistanceAtMost(q Object, objs []Object, t float64, d []float64, within []bool) {
	sq, ok := q.(*Str)
	if !ok {
		panic(badType("EditDistance", "*Str", q))
	}
	eq := newEditQuery(sq.S)
	for i, o := range objs {
		so, ok := o.(*Str)
		if !ok {
			panic(badType("EditDistance", "*Str", o))
		}
		di, w := eq.atMost(so.S, t)
		d[i], within[i] = float64(di), w
	}
}

// editQuery is a query string with its Myers equality bitmaps interned for
// batch evaluation: p64 for patterns within one machine word, the
// slot/peq/w trio for longer ones (see myers.go).
type editQuery struct {
	q    string
	p64  [256]uint64
	slot [256]uint16
	peq  []uint64
	w    int
}

// newEditQuery builds the interned bitmaps for q once.
func newEditQuery(q string) *editQuery {
	e := &editQuery{q: q}
	if len(q) == 0 {
		return e
	}
	if len(q) <= 64 {
		for i := 0; i < len(q); i++ {
			e.p64[q[i]] |= 1 << uint(i)
		}
		return e
	}
	w := (len(q) + 63) / 64
	e.w = w
	distinct := 0
	for i := 0; i < len(q); i++ {
		c := q[i]
		if e.slot[c] == 0 {
			distinct++
			e.slot[c] = uint16(distinct)
			e.peq = append(e.peq, make([]uint64, w)...)
		}
		e.peq[(int(e.slot[c])-1)*w+i/64] |= 1 << uint(i%64)
	}
	return e
}

// exact returns the exact Levenshtein distance to text through the prebuilt
// kernel. Edit distance is symmetric, so running Myers with the query as the
// pattern (rather than the shorter string, as the scalar dispatcher picks)
// returns the identical integer.
func (e *editQuery) exact(text string) int {
	switch {
	case e.q == text:
		return 0
	case len(e.q) == 0:
		return len(text)
	case len(text) == 0:
		return len(e.q)
	case len(e.q) <= 64:
		return myersRun64(&e.p64, len(e.q), text)
	}
	return myersRunBlock(&e.slot, e.peq, e.w, len(e.q), text)
}

// atMost evaluates the bounded contract for one candidate, mirroring
// boundedEditDistance's screening branches; the branches needing an exact
// distance replay the prebuilt kernel, and the narrow-band branch defers to
// the banded DP (whose screens are cheap to repeat).
func (e *editQuery) atMost(text string, t float64) (int, bool) {
	if t < 0 {
		return 0, false
	}
	if e.q == text {
		return 0, true
	}
	a, b := stripCommonAffixes(e.q, text)
	if len(a) > len(b) {
		a, b = b, a
	}
	m, n := len(a), len(b)
	if t >= float64(n) {
		return e.exact(text), true
	}
	k := int(t)
	if n-m > k {
		return n - m, false
	}
	if m == 0 {
		return n, true // n = |len(a)-len(b)| ≤ k here
	}
	if 2*k+1 >= m {
		d := e.exact(text)
		return d, d <= k
	}
	return boundedEditDistance(e.q, text, t)
}

var (
	_ BatchDistanceFunc = LpNorm{}
	_ BatchDistanceFunc = LInf{}
	_ BatchDistanceFunc = Hamming{}
	_ BatchDistanceFunc = EditDistance{}
)
