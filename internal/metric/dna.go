package metric

import (
	"fmt"
	"math"
)

// Seq is a DNA sequence object over the alphabet {A, C, G, T}, used for the
// DNA workload. Its tri-gram count profile (4^3 = 64 dimensions) is computed
// once and cached, since every distance computation needs it.
type Seq struct {
	Id  uint64
	S   string
	pro *[64]float64 // lazily built tri-gram profile
	nrm float64      // cached Euclidean norm of pro
}

// NewSeq returns a DNA-sequence object.
func NewSeq(id uint64, s string) *Seq { return &Seq{Id: id, S: s} }

// ID returns the object identifier.
func (s *Seq) ID() uint64 { return s.Id }

// AppendBinary appends the raw sequence bytes.
func (s *Seq) AppendBinary(dst []byte) []byte { return append(dst, s.S...) }

// String implements fmt.Stringer.
func (s *Seq) String() string { return fmt.Sprintf("Seq(%d, len=%d)", s.Id, len(s.S)) }

// profile returns the cached tri-gram count vector and its norm.
func (s *Seq) profile() (*[64]float64, float64) {
	if s.pro == nil {
		var p [64]float64
		for i := 0; i+3 <= len(s.S); i++ {
			a, okA := baseIndex(s.S[i])
			b, okB := baseIndex(s.S[i+1])
			c, okC := baseIndex(s.S[i+2])
			if okA && okB && okC {
				p[a<<4|b<<2|c]++
			}
		}
		var n float64
		for _, v := range p {
			n += v * v
		}
		s.pro = &p
		s.nrm = math.Sqrt(n)
	}
	return s.pro, s.nrm
}

func baseIndex(c byte) (int, bool) {
	switch c {
	case 'A', 'a':
		return 0, true
	case 'C', 'c':
		return 1, true
	case 'G', 'g':
		return 2, true
	case 'T', 't':
		return 3, true
	}
	return 0, false
}

// SeqCodec decodes Seq payloads.
type SeqCodec struct{}

// Decode implements Codec.
func (SeqCodec) Decode(id uint64, data []byte) (Object, error) {
	return &Seq{Id: id, S: string(data)}, nil
}

// TrigramAngular is the angular distance between tri-gram count profiles of
// DNA sequences: d(a, b) = arccos(cos-sim(a, b)) / π, normalized to [0, 1].
//
// The paper reports "cosine similarity under tri-gram counting space" for the
// DNA dataset. Raw cosine *distance* (1 − similarity) violates the triangle
// inequality that every pruning lemma of the index depends on; angular
// distance is the standard metric repair and induces the identical pair
// ordering, so the experiment shape is preserved (see DESIGN.md §3).
type TrigramAngular struct{}

// Distance implements DistanceFunc.
func (TrigramAngular) Distance(a, b Object) float64 {
	sa, ok := a.(*Seq)
	if !ok {
		panic(badType("TrigramAngular", "*Seq", a))
	}
	sb, ok := b.(*Seq)
	if !ok {
		panic(badType("TrigramAngular", "*Seq", b))
	}
	if sa.S == sb.S {
		// Identity fast path; also dodges the acos(1−ulp) ≈ 1e-8 noise that
		// sqrt rounding would otherwise introduce for d(x, x).
		return 0
	}
	pa, na := sa.profile()
	pb, nb := sb.profile()
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 0
		}
		return 1
	}
	cos := dot64(pa[:], pb[:]) / (na * nb)
	// Clamp against floating-point drift before acos.
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return math.Acos(cos) / math.Pi
}

// MaxDistance returns 1 (profiles are non-negative, so the true maximum
// angle is π/2, but the normalized domain is kept at [0, 1] for clarity).
func (TrigramAngular) MaxDistance() float64 { return 1 }

// Discrete reports false.
func (TrigramAngular) Discrete() bool { return false }

// Name implements DistanceFunc.
func (TrigramAngular) Name() string { return "trigram-angular" }

var (
	_ DistanceFunc = TrigramAngular{}
	_ Codec        = SeqCodec{}
)
