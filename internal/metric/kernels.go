package metric

import "math"

// Unrolled vector inner loops (DESIGN.md §13). Every Lp/L∞ kernel — exact and
// bounded, float64 and float32, scalar and batch — funnels through the
// functions in this file, so their floating-point summation order is defined
// in exactly one place:
//
//   - float64 loops run 4 coordinates per block with 4 independent
//     accumulator lanes; float32 loops run 8 per block with 8 lanes (the
//     widths of one 256-bit vector register). Independent lanes break the
//     loop-carried addition dependency, letting the compiler and the CPU
//     overlap the multiplies.
//   - Lanes reduce pairwise — (s0+s1)+(s2+s3), and the 8-wide analogue — and
//     remainder coordinates past the last full block are added to the reduced
//     sum in index order.
//   - The bounded ("AtMost") variants evaluate that same pairwise reduction
//     at each block boundary for the abandon test without disturbing the
//     lanes, so a bounded evaluation that runs to completion returns a sum
//     bit-identical to the exact variant's. This is what keeps the
//     BoundedDistanceFunc contract ("d is exactly Distance(a, b) when
//     within") true by construction rather than by tolerance.
//
// float32 coordinates are widened to float64 before subtracting, so a
// float32 kernel computes the exact float64 Lp distance over the widened
// coordinates — see vector32.go for the resulting tolerance contract.

// l2Sum64 returns Σ (a[i]-b[i])², 4-wide unrolled.
func l2Sum64(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// l2Sum64AtMost is l2Sum64 with a budget on the partial sum, tested at every
// block boundary: a partial sum above budget proves the final sum is too
// (the terms are non-negative) and the scan abandons. A completed scan
// returns the sum bit-identical to l2Sum64.
func l2Sum64AtMost(a, b []float64, budget float64) (float64, bool) {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		if (s0+s1)+(s2+s3) > budget {
			return (s0 + s1) + (s2 + s3), false
		}
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s, s <= budget
}

// l2Sum32 returns Σ (a[i]-b[i])² over widened coordinates, 8-wide unrolled.
func l2Sum32(a, b []float32) float64 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		d4 := float64(a[i+4]) - float64(b[i+4])
		d5 := float64(a[i+5]) - float64(b[i+5])
		d6 := float64(a[i+6]) - float64(b[i+6])
		d7 := float64(a[i+7]) - float64(b[i+7])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		s4 += d4 * d4
		s5 += d5 * d5
		s6 += d6 * d6
		s7 += d7 * d7
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// l2Sum32AtMost is l2Sum32 with a block-boundary budget test; see
// l2Sum64AtMost for the contract.
func l2Sum32AtMost(a, b []float32, budget float64) (float64, bool) {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		d4 := float64(a[i+4]) - float64(b[i+4])
		d5 := float64(a[i+5]) - float64(b[i+5])
		d6 := float64(a[i+6]) - float64(b[i+6])
		d7 := float64(a[i+7]) - float64(b[i+7])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		s4 += d4 * d4
		s5 += d5 * d5
		s6 += d6 * d6
		s7 += d7 * d7
		if ((s0+s1)+(s2+s3))+((s4+s5)+(s6+s7)) > budget {
			return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7)), false
		}
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s, s <= budget
}

// l1Sum64 returns Σ |a[i]-b[i]|, 4-wide unrolled.
func l1Sum64(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += math.Abs(a[i] - b[i])
		s1 += math.Abs(a[i+1] - b[i+1])
		s2 += math.Abs(a[i+2] - b[i+2])
		s3 += math.Abs(a[i+3] - b[i+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// l1Sum64AtMost is l1Sum64 with a block-boundary budget test.
func l1Sum64AtMost(a, b []float64, budget float64) (float64, bool) {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += math.Abs(a[i] - b[i])
		s1 += math.Abs(a[i+1] - b[i+1])
		s2 += math.Abs(a[i+2] - b[i+2])
		s3 += math.Abs(a[i+3] - b[i+3])
		if (s0+s1)+(s2+s3) > budget {
			return (s0 + s1) + (s2 + s3), false
		}
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += math.Abs(a[i] - b[i])
	}
	return s, s <= budget
}

// l1Sum32 returns Σ |a[i]-b[i]| over widened coordinates, 8-wide unrolled.
func l1Sum32(a, b []float32) float64 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += math.Abs(float64(a[i]) - float64(b[i]))
		s1 += math.Abs(float64(a[i+1]) - float64(b[i+1]))
		s2 += math.Abs(float64(a[i+2]) - float64(b[i+2]))
		s3 += math.Abs(float64(a[i+3]) - float64(b[i+3]))
		s4 += math.Abs(float64(a[i+4]) - float64(b[i+4]))
		s5 += math.Abs(float64(a[i+5]) - float64(b[i+5]))
		s6 += math.Abs(float64(a[i+6]) - float64(b[i+6]))
		s7 += math.Abs(float64(a[i+7]) - float64(b[i+7]))
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		s += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return s
}

// l1Sum32AtMost is l1Sum32 with a block-boundary budget test.
func l1Sum32AtMost(a, b []float32, budget float64) (float64, bool) {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += math.Abs(float64(a[i]) - float64(b[i]))
		s1 += math.Abs(float64(a[i+1]) - float64(b[i+1]))
		s2 += math.Abs(float64(a[i+2]) - float64(b[i+2]))
		s3 += math.Abs(float64(a[i+3]) - float64(b[i+3]))
		s4 += math.Abs(float64(a[i+4]) - float64(b[i+4]))
		s5 += math.Abs(float64(a[i+5]) - float64(b[i+5]))
		s6 += math.Abs(float64(a[i+6]) - float64(b[i+6]))
		s7 += math.Abs(float64(a[i+7]) - float64(b[i+7]))
		if ((s0+s1)+(s2+s3))+((s4+s5)+(s6+s7)) > budget {
			return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7)), false
		}
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		s += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return s, s <= budget
}

// lpSum64 returns Σ |a[i]-b[i]|^p for a small integer p, 4-wide unrolled.
// Every term goes through intPow, matching the bounded variant bit for bit.
func lpSum64(a, b []float64, p int) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += intPow(math.Abs(a[i]-b[i]), p)
		s1 += intPow(math.Abs(a[i+1]-b[i+1]), p)
		s2 += intPow(math.Abs(a[i+2]-b[i+2]), p)
		s3 += intPow(math.Abs(a[i+3]-b[i+3]), p)
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += intPow(math.Abs(a[i]-b[i]), p)
	}
	return s
}

// lpSum64AtMost is lpSum64 with a block-boundary budget test.
func lpSum64AtMost(a, b []float64, p int, budget float64) (float64, bool) {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += intPow(math.Abs(a[i]-b[i]), p)
		s1 += intPow(math.Abs(a[i+1]-b[i+1]), p)
		s2 += intPow(math.Abs(a[i+2]-b[i+2]), p)
		s3 += intPow(math.Abs(a[i+3]-b[i+3]), p)
		if (s0+s1)+(s2+s3) > budget {
			return (s0 + s1) + (s2 + s3), false
		}
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += intPow(math.Abs(a[i]-b[i]), p)
	}
	return s, s <= budget
}

// lpSum32 returns Σ |a[i]-b[i]|^p over widened coordinates, 8-wide unrolled.
func lpSum32(a, b []float32, p int) float64 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += intPow(math.Abs(float64(a[i])-float64(b[i])), p)
		s1 += intPow(math.Abs(float64(a[i+1])-float64(b[i+1])), p)
		s2 += intPow(math.Abs(float64(a[i+2])-float64(b[i+2])), p)
		s3 += intPow(math.Abs(float64(a[i+3])-float64(b[i+3])), p)
		s4 += intPow(math.Abs(float64(a[i+4])-float64(b[i+4])), p)
		s5 += intPow(math.Abs(float64(a[i+5])-float64(b[i+5])), p)
		s6 += intPow(math.Abs(float64(a[i+6])-float64(b[i+6])), p)
		s7 += intPow(math.Abs(float64(a[i+7])-float64(b[i+7])), p)
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		s += intPow(math.Abs(float64(a[i])-float64(b[i])), p)
	}
	return s
}

// lpSum32AtMost is lpSum32 with a block-boundary budget test.
func lpSum32AtMost(a, b []float32, p int, budget float64) (float64, bool) {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += intPow(math.Abs(float64(a[i])-float64(b[i])), p)
		s1 += intPow(math.Abs(float64(a[i+1])-float64(b[i+1])), p)
		s2 += intPow(math.Abs(float64(a[i+2])-float64(b[i+2])), p)
		s3 += intPow(math.Abs(float64(a[i+3])-float64(b[i+3])), p)
		s4 += intPow(math.Abs(float64(a[i+4])-float64(b[i+4])), p)
		s5 += intPow(math.Abs(float64(a[i+5])-float64(b[i+5])), p)
		s6 += intPow(math.Abs(float64(a[i+6])-float64(b[i+6])), p)
		s7 += intPow(math.Abs(float64(a[i+7])-float64(b[i+7])), p)
		if ((s0+s1)+(s2+s3))+((s4+s5)+(s6+s7)) > budget {
			return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7)), false
		}
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		s += intPow(math.Abs(float64(a[i])-float64(b[i])), p)
	}
	return s, s <= budget
}

// maxAbs64 returns max |a[i]-b[i]|, 4-wide unrolled. max is associative and
// commutative over non-NaN floats, so the lane split cannot change the
// result.
func maxAbs64(a, b []float64) float64 {
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		if d := math.Abs(a[i] - b[i]); d > m0 {
			m0 = d
		}
		if d := math.Abs(a[i+1] - b[i+1]); d > m1 {
			m1 = d
		}
		if d := math.Abs(a[i+2] - b[i+2]); d > m2 {
			m2 = d
		}
		if d := math.Abs(a[i+3] - b[i+3]); d > m3 {
			m3 = d
		}
	}
	m := max4(m0, m1, m2, m3)
	for ; i < len(a); i++ {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// maxAbs64AtMost is maxAbs64 with a block-boundary threshold test: the
// running maximum only grows, so one block whose maximum exceeds t proves the
// distance does.
func maxAbs64AtMost(a, b []float64, t float64) (float64, bool) {
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		if d := math.Abs(a[i] - b[i]); d > m0 {
			m0 = d
		}
		if d := math.Abs(a[i+1] - b[i+1]); d > m1 {
			m1 = d
		}
		if d := math.Abs(a[i+2] - b[i+2]); d > m2 {
			m2 = d
		}
		if d := math.Abs(a[i+3] - b[i+3]); d > m3 {
			m3 = d
		}
		if m := max4(m0, m1, m2, m3); m > t {
			return m, false
		}
	}
	m := max4(m0, m1, m2, m3)
	for ; i < len(a); i++ {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
			if m > t {
				return m, false
			}
		}
	}
	return m, m <= t
}

// maxAbs32 returns max |a[i]-b[i]| over widened coordinates, 8-wide unrolled.
func maxAbs32(a, b []float32) float64 {
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m0 {
			m0 = d
		}
		if d := math.Abs(float64(a[i+1]) - float64(b[i+1])); d > m1 {
			m1 = d
		}
		if d := math.Abs(float64(a[i+2]) - float64(b[i+2])); d > m2 {
			m2 = d
		}
		if d := math.Abs(float64(a[i+3]) - float64(b[i+3])); d > m3 {
			m3 = d
		}
		if d := math.Abs(float64(a[i+4]) - float64(b[i+4])); d > m0 {
			m0 = d
		}
		if d := math.Abs(float64(a[i+5]) - float64(b[i+5])); d > m1 {
			m1 = d
		}
		if d := math.Abs(float64(a[i+6]) - float64(b[i+6])); d > m2 {
			m2 = d
		}
		if d := math.Abs(float64(a[i+7]) - float64(b[i+7])); d > m3 {
			m3 = d
		}
	}
	m := max4(m0, m1, m2, m3)
	for ; i < len(a); i++ {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

// maxAbs32AtMost is maxAbs32 with a block-boundary threshold test.
func maxAbs32AtMost(a, b []float32, t float64) (float64, bool) {
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m0 {
			m0 = d
		}
		if d := math.Abs(float64(a[i+1]) - float64(b[i+1])); d > m1 {
			m1 = d
		}
		if d := math.Abs(float64(a[i+2]) - float64(b[i+2])); d > m2 {
			m2 = d
		}
		if d := math.Abs(float64(a[i+3]) - float64(b[i+3])); d > m3 {
			m3 = d
		}
		if d := math.Abs(float64(a[i+4]) - float64(b[i+4])); d > m0 {
			m0 = d
		}
		if d := math.Abs(float64(a[i+5]) - float64(b[i+5])); d > m1 {
			m1 = d
		}
		if d := math.Abs(float64(a[i+6]) - float64(b[i+6])); d > m2 {
			m2 = d
		}
		if d := math.Abs(float64(a[i+7]) - float64(b[i+7])); d > m3 {
			m3 = d
		}
		if m := max4(m0, m1, m2, m3); m > t {
			return m, false
		}
	}
	m := max4(m0, m1, m2, m3)
	for ; i < len(a); i++ {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
			if m > t {
				return m, false
			}
		}
	}
	return m, m <= t
}

// max4 returns the maximum of four lane maxima.
func max4(a, b, c, d float64) float64 {
	if b > a {
		a = b
	}
	if d > c {
		c = d
	}
	if c > a {
		return c
	}
	return a
}

// dot64 returns Σ a[i]*b[i], 4-wide unrolled: lanes reduce pairwise, the
// remainder adds in index order. TrigramAngular's profile similarity runs on
// it.
func dot64(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// dot32 returns Σ a[i]*b[i] over widened coordinates, 8-wide unrolled.
func dot32(a, b []float32) float64 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
		s4 += float64(a[i+4]) * float64(b[i+4])
		s5 += float64(a[i+5]) * float64(b[i+5])
		s6 += float64(a[i+6]) * float64(b[i+6])
		s7 += float64(a[i+7]) * float64(b[i+7])
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}
