package metric

// BoundedDistanceFunc is an optional extension of DistanceFunc for
// threshold-aware distance evaluation. Every verification site in the query
// algorithms holds a live bound when it computes a distance — the range
// radius r, the join threshold ε, or the kNN pruning bound curND_k — and a
// bounded kernel can exploit it: once the partial computation proves
// d(a, b) > t, the evaluation may stop early ("abandon") instead of finishing
// the exact value.
//
// The contract makes abandonment invisible to query semantics:
//
//   - within == true  ⇔ d(a, b) ≤ t, and then d is exactly the value
//     Distance(a, b) would have returned — bit-identical, so result sets and
//     reported distances do not change.
//   - within == false ⇒ d(a, b) > t. The returned d is then unspecified
//     (kernels return whatever partial evidence proved the violation) and
//     callers must not use it.
//
// The equivalence "within ⇔ d ≤ t" must hold exactly, including at d == t:
// the kNN result heap breaks distance ties by object ID, so a kernel that
// abandoned a candidate with d == t would silently drop a tie-breaking
// answer. Kernels therefore only abandon on strict proof of d > t.
//
// An abandoned evaluation still counts as one distance computation in the
// paper's compdists metric (see Counter.DistanceAtMost): the cost model
// charges evaluations, and making abandoned ones free would break the
// serial/parallel and exact/bounded accounting equivalences the engine
// guarantees. The savings show up in wall time, not in compdists.
type BoundedDistanceFunc interface {
	DistanceFunc
	// DistanceAtMost evaluates d(a, b) against the threshold t. See the
	// interface comment for the (d, within) contract. Any t is allowed:
	// t = +Inf degenerates to an exact evaluation, t < 0 always reports
	// within == false (metric distances are non-negative).
	DistanceAtMost(a, b Object, t float64) (d float64, within bool)
}

// DistanceAtMost evaluates fn's distance against threshold t, using the
// bounded kernel when fn implements BoundedDistanceFunc and an exact
// evaluation otherwise. The fallback preserves the contract exactly (within
// ⇔ d ≤ t, d exact when within), so callers can treat every DistanceFunc as
// bounded; only the early-abandon savings require a real kernel.
func DistanceAtMost(fn DistanceFunc, a, b Object, t float64) (float64, bool) {
	if bf, ok := fn.(BoundedDistanceFunc); ok {
		return bf.DistanceAtMost(a, b, t)
	}
	d := fn.Distance(a, b)
	return d, d <= t
}

// IsBounded reports whether fn has a threshold-aware kernel (implements
// BoundedDistanceFunc), unwrapping a Counter if needed. Callers use it to
// decide whether abandoned-evaluation accounting applies.
func IsBounded(fn DistanceFunc) bool {
	if c, ok := fn.(*Counter); ok {
		fn = c.Unwrap()
	}
	_, ok := fn.(BoundedDistanceFunc)
	return ok
}
