package metric

import (
	"math"
	"math/rand"
	"testing"
)

func TestJaccardKnownValues(t *testing.T) {
	a := NewSet(1, []uint64{1, 2, 3, 4})
	b := NewSet(2, []uint64{3, 4, 5, 6})
	d := Jaccard{}
	if got, want := d.Distance(a, b), 1-2.0/6.0; math.Abs(got-want) > 1e-15 {
		t.Errorf("Jaccard = %v, want %v", got, want)
	}
	if got := d.Distance(a, a); got != 0 {
		t.Errorf("Jaccard(x,x) = %v", got)
	}
	disjoint := NewSet(3, []uint64{9, 10})
	if got := d.Distance(a, disjoint); got != 1 {
		t.Errorf("disjoint Jaccard = %v, want 1", got)
	}
	empty := NewSet(4, nil)
	if got := d.Distance(empty, empty); got != 0 {
		t.Errorf("Jaccard(∅,∅) = %v", got)
	}
	if got := d.Distance(a, empty); got != 1 {
		t.Errorf("Jaccard(x,∅) = %v, want 1", got)
	}
}

func TestNewSetSortsAndDedups(t *testing.T) {
	s := NewSet(1, []uint64{5, 1, 5, 3, 1})
	if len(s.Elems) != 3 || s.Elems[0] != 1 || s.Elems[1] != 3 || s.Elems[2] != 5 {
		t.Errorf("Elems = %v", s.Elems)
	}
}

func TestJaccardTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := Jaccard{}
	randSet := func() *Set {
		n := 1 + rng.Intn(12)
		e := make([]uint64, n)
		for i := range e {
			e[i] = uint64(rng.Intn(20))
		}
		return NewSet(uint64(rng.Int63()), e)
	}
	for i := 0; i < 500; i++ {
		a, b, c := randSet(), randSet(), randSet()
		metricAxioms(t, d, a, b, c, func(x, y Object) bool {
			xs, ys := x.(*Set), y.(*Set)
			if len(xs.Elems) != len(ys.Elems) {
				return false
			}
			for i := range xs.Elems {
				if xs.Elems[i] != ys.Elems[i] {
					return false
				}
			}
			return true
		})
	}
}

func TestSetCodecRoundTrip(t *testing.T) {
	s := NewSet(9, []uint64{7, 3, 99, 1 << 40})
	got, err := (SetCodec{}).Decode(9, s.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	gs := got.(*Set)
	if len(gs.Elems) != 4 || gs.Elems[3] != 1<<40 {
		t.Errorf("round trip: %v", gs.Elems)
	}
	if _, err := (SetCodec{}).Decode(1, []byte{1, 2, 3}); err == nil {
		t.Error("ragged payload accepted")
	}
}
