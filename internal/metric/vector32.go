package metric

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Vector32 is a fixed-dimension real-valued object stored at float32
// precision — half the RAF payload and half the verify-stage memory traffic
// of Vector. LpNorm and LInf accept both kinds (never mixed within one
// space).
//
// Distance semantics are exact, not approximate: every kernel widens each
// float32 coordinate to float64 before subtracting, so the distance between
// two Vector32 objects is the *exact* float64 Lp distance over the widened
// coordinates, deterministic across kernels and worker counts. The only
// difference from a float64 dataset is the one-time rounding of each
// coordinate to float32 when the object is created: a normal coordinate c
// moves by at most |c|·2⁻²⁴, and since the Lp metrics are 1-Lipschitz in each
// argument, |d(a₃₂,b₃₂) − d(a₆₄,b₆₄)| ≤ d(a₃₂,a₆₄) + d(b₃₂,b₆₄) ≤
// 2·Dim^(1/p)·maxᵢ|cᵢ|·2⁻²⁴. FuzzFloat32Roundtrip enforces this tolerance
// contract against the float64 reference; DESIGN.md §13 documents it.
type Vector32 struct {
	Id     uint64
	Coords []float32
}

// NewVector32 returns a float32 vector object with the given id and
// coordinates.
func NewVector32(id uint64, coords []float32) *Vector32 {
	return &Vector32{Id: id, Coords: coords}
}

// NewVector32From64 returns a float32 vector object with each coordinate
// rounded from float64 — the conversion whose per-coordinate error the
// tolerance contract above bounds.
func NewVector32From64(id uint64, coords []float64) *Vector32 {
	c := make([]float32, len(coords))
	for i, v := range coords {
		c[i] = float32(v)
	}
	return &Vector32{Id: id, Coords: c}
}

// ID returns the object identifier.
func (v *Vector32) ID() uint64 { return v.Id }

// AppendBinary appends the coordinates as little-endian float32 bits —
// 4 bytes per coordinate, half of Vector's encoding.
func (v *Vector32) AppendBinary(dst []byte) []byte {
	for _, c := range v.Coords {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(c))
	}
	return dst
}

// String implements fmt.Stringer.
func (v *Vector32) String() string {
	return fmt.Sprintf("Vector32(%d, dim=%d)", v.Id, len(v.Coords))
}

// Vector32Codec decodes Vector32 payloads of a known dimensionality.
type Vector32Codec struct {
	// Dim is the expected number of coordinates per vector.
	Dim int
}

// Decode implements Codec.
func (c Vector32Codec) Decode(id uint64, data []byte) (Object, error) {
	if len(data) != 4*c.Dim {
		return nil, fmt.Errorf("metric: float32 vector payload is %d bytes, want %d (dim %d)", len(data), 4*c.Dim, c.Dim)
	}
	coords := make([]float32, c.Dim)
	for i := range coords {
		coords[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return &Vector32{Id: id, Coords: coords}, nil
}

var _ Codec = Vector32Codec{}
