package metric

import (
	"math"
	"math/rand"
	"testing"
)

// The Distance benchmarks compare every fast kernel against its pre-PR5
// reference implementation (the textbook two-row DP and the math.Pow Lp
// loop), so a kernel regression shows up as a benchmark regression. CI runs
// them with -bench=Distance -benchtime=1x as a smoke test.

// referenceEditDistance is the pre-PR5 EditDistance kernel: the textbook
// two-row dynamic program with a heap-allocated row.
func referenceEditDistance(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0]
		row[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cur := row[j]
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			best := prev + cost
			if d := row[j] + 1; d < best {
				best = d
			}
			if d := row[j-1] + 1; d < best {
				best = d
			}
			row[j] = best
			prev = cur
		}
	}
	return row[len(b)]
}

// referenceL5Distance is the pre-PR5 LpNorm default case: math.Pow twice per
// coordinate.
func referenceL5Distance(a, b *Vector) float64 {
	var s float64
	for i, c := range a.Coords {
		s += math.Pow(math.Abs(c-b.Coords[i]), 5)
	}
	return math.Pow(s, 1.0/5)
}

func benchWords(n, maxLen int) []*Str {
	rng := rand.New(rand.NewSource(42))
	out := make([]*Str, n)
	for i := range out {
		out[i] = NewStr(uint64(i), randString(rng, maxLen, 26))
	}
	return out
}

func benchDNA(n, length int) []*Str {
	rng := rand.New(rand.NewSource(43))
	out := make([]*Str, n)
	for i := range out {
		s := make([]byte, length)
		for j := range s {
			s[j] = "ACGT"[rng.Intn(4)]
		}
		out[i] = NewStr(uint64(i), string(s))
	}
	return out
}

func BenchmarkDistanceEditReferenceDP(b *testing.B) {
	words := benchWords(256, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := words[i%len(words)]
		referenceEditDistance(w.S, words[(i+1)%len(words)].S)
	}
}

func BenchmarkDistanceEditMyers(b *testing.B) {
	words := benchWords(256, 24)
	fn := EditDistance{MaxLen: 24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fn.Distance(words[i%len(words)], words[(i+1)%len(words)])
	}
}

func BenchmarkDistanceEditBounded(b *testing.B) {
	// Threshold 4 on words of length ≤ 24: the banded kernel touches a
	// 9-cell band per row and usually abandons within a few rows.
	words := benchWords(256, 24)
	fn := EditDistance{MaxLen: 24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fn.DistanceAtMost(words[i%len(words)], words[(i+1)%len(words)], 4)
	}
}

func BenchmarkDistanceEditDNAReferenceDP(b *testing.B) {
	seqs := benchDNA(64, 160)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		referenceEditDistance(seqs[i%len(seqs)].S, seqs[(i+1)%len(seqs)].S)
	}
}

func BenchmarkDistanceEditDNAMyersBlock(b *testing.B) {
	seqs := benchDNA(64, 160)
	fn := EditDistance{MaxLen: 160}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fn.Distance(seqs[i%len(seqs)], seqs[(i+1)%len(seqs)])
	}
}

func benchVectors(n, dim int) []*Vector {
	rng := rand.New(rand.NewSource(44))
	out := make([]*Vector, n)
	for i := range out {
		out[i] = NewVector(uint64(i), randCoords(rng, dim))
	}
	return out
}

func BenchmarkDistanceL5ReferencePow(b *testing.B) {
	vecs := benchVectors(256, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		referenceL5Distance(vecs[i%len(vecs)], vecs[(i+1)%len(vecs)])
	}
}

func BenchmarkDistanceL5IntPow(b *testing.B) {
	vecs := benchVectors(256, 16)
	fn := L5(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fn.Distance(vecs[i%len(vecs)], vecs[(i+1)%len(vecs)])
	}
}

func BenchmarkDistanceL2Bounded(b *testing.B) {
	vecs := benchVectors(256, 16)
	fn := L2(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fn.DistanceAtMost(vecs[i%len(vecs)], vecs[(i+1)%len(vecs)], 0.3)
	}
}

func BenchmarkDistanceHammingBounded(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	sigs := make([]*BitString, 256)
	for i := range sigs {
		s := make([]byte, 64)
		rng.Read(s)
		sigs[i] = NewBitString(uint64(i), s)
	}
	fn := Hamming{Bytes: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fn.DistanceAtMost(sigs[i%len(sigs)], sigs[(i+1)%len(sigs)], 100)
	}
}
