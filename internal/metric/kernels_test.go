package metric

import (
	"math"
	"math/rand"
	"testing"
)

// tailDims covers every alignment of the unrolled loops: empty, pure-tail
// (< one lane group), exactly one group, group±1, and the two-group
// boundaries of both the 4-wide float64 and 8-wide float32 kernels.
var tailDims = []int{0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17}

func randPair64(dim int, seed int64) (a, b []float64) {
	rng := rand.New(rand.NewSource(seed))
	a = make([]float64, dim)
	b = make([]float64, dim)
	for i := 0; i < dim; i++ {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	return a, b
}

func toF32(x []float64) []float32 {
	out := make([]float32, len(x))
	for i, v := range x {
		out[i] = float32(v)
	}
	return out
}

func relClose(got, want float64) bool {
	if got == want {
		return true
	}
	scale := math.Max(math.Abs(want), 1)
	return math.Abs(got-want) <= 1e-9*scale
}

// TestKernelTailPaths checks every unrolled kernel against a naive
// index-order reference at dimensions that hit each remainder path. The
// unrolled kernels use a fixed pairwise lane reduction, so the comparison is
// tolerance-based for sums and exact for max-reductions (order-insensitive).
func TestKernelTailPaths(t *testing.T) {
	for _, dim := range tailDims {
		a, b := randPair64(dim, int64(100+dim))
		a32, b32 := toF32(a), toF32(b)

		// Naive references in plain index order.
		var l2, l1, l5, dot, linf float64
		for i := 0; i < dim; i++ {
			d := a[i] - b[i]
			l2 += d * d
			ad := math.Abs(d)
			l1 += ad
			l5 += ad * ad * ad * ad * ad
			dot += a[i] * b[i]
			if ad > linf {
				linf = ad
			}
		}
		var l2f, l1f, l5f, dotf, linff float64
		for i := 0; i < dim; i++ {
			d := float64(a32[i]) - float64(b32[i])
			l2f += d * d
			ad := math.Abs(d)
			l1f += ad
			l5f += ad * ad * ad * ad * ad
			dotf += float64(a32[i]) * float64(b32[i])
			if ad > linff {
				linff = ad
			}
		}

		check := func(name string, got, want float64, exact bool) {
			t.Helper()
			if exact && got != want {
				t.Errorf("dim %d: %s = %v, want exactly %v", dim, name, got, want)
			} else if !relClose(got, want) {
				t.Errorf("dim %d: %s = %v, naive reference %v", dim, name, got, want)
			}
		}
		check("l2Sum64", l2Sum64(a, b), l2, false)
		check("l1Sum64", l1Sum64(a, b), l1, false)
		check("lpSum64(5)", lpSum64(a, b, 5), l5, false)
		check("dot64", dot64(a, b), dot, false)
		check("maxAbs64", maxAbs64(a, b), linf, true)
		check("l2Sum32", l2Sum32(a32, b32), l2f, false)
		check("l1Sum32", l1Sum32(a32, b32), l1f, false)
		check("lpSum32(5)", lpSum32(a32, b32, 5), l5f, false)
		check("dot32", dot32(a32, b32), dotf, false)
		check("maxAbs32", maxAbs32(a32, b32), linff, true)
	}
}

// TestKernelAtMostBitIdentity is the bounded-kernel contract at the raw
// kernel layer (DESIGN.md §10, §13): a completed AtMost evaluation — budget
// at or above the exact value, including +Inf — returns the exact kernel's
// result bit for bit at every tail alignment, because the bounded loops fold
// the same lane accumulators in the same order. A budget strictly below the
// exact value reports within=false.
func TestKernelAtMostBitIdentity(t *testing.T) {
	for _, dim := range tailDims {
		a, b := randPair64(dim, int64(200+dim))
		a32, b32 := toF32(a), toF32(b)
		inf := math.Inf(1)

		type kernel struct {
			name  string
			exact float64
			at    func(budget float64) (float64, bool)
		}
		kernels := []kernel{
			{"l2Sum64", l2Sum64(a, b), func(t float64) (float64, bool) { return l2Sum64AtMost(a, b, t) }},
			{"l1Sum64", l1Sum64(a, b), func(t float64) (float64, bool) { return l1Sum64AtMost(a, b, t) }},
			{"lpSum64(5)", lpSum64(a, b, 5), func(t float64) (float64, bool) { return lpSum64AtMost(a, b, 5, t) }},
			{"maxAbs64", maxAbs64(a, b), func(t float64) (float64, bool) { return maxAbs64AtMost(a, b, t) }},
			{"l2Sum32", l2Sum32(a32, b32), func(t float64) (float64, bool) { return l2Sum32AtMost(a32, b32, t) }},
			{"l1Sum32", l1Sum32(a32, b32), func(t float64) (float64, bool) { return l1Sum32AtMost(a32, b32, t) }},
			{"lpSum32(5)", lpSum32(a32, b32, 5), func(t float64) (float64, bool) { return lpSum32AtMost(a32, b32, 5, t) }},
			{"maxAbs32", maxAbs32(a32, b32), func(t float64) (float64, bool) { return maxAbs32AtMost(a32, b32, t) }},
		}
		for _, k := range kernels {
			for _, budget := range []float64{inf, k.exact} {
				got, ok := k.at(budget)
				if !ok {
					t.Errorf("dim %d: %s abandoned at budget %v ≥ exact %v", dim, k.name, budget, k.exact)
					continue
				}
				if math.Float64bits(got) != math.Float64bits(k.exact) {
					t.Errorf("dim %d: %s completed AtMost(%v) = %v, exact = %v (bits differ)",
						dim, k.name, budget, got, k.exact)
				}
			}
			if k.exact > 0 {
				under := math.Nextafter(k.exact, 0)
				if _, ok := k.at(under); ok {
					t.Errorf("dim %d: %s within=true at budget %v < exact %v", dim, k.name, under, k.exact)
				}
			}
		}
	}
}

// TestVector32DistanceTolerance pins the float32 accuracy contract from the
// Vector32 doc: for coordinates in [0,1], the Lp distance between rounded
// float32 vectors differs from the float64 reference by at most
// 2·dim^(1/p)·max|c|·2⁻²⁴, because the kernels widen every coordinate to
// float64 before arithmetic (only the representation is rounded).
func TestVector32DistanceTolerance(t *testing.T) {
	for _, dim := range []int{1, 4, 9, 16, 33} {
		a, b := randPair64(dim, int64(300+dim))
		va, vb := NewVector(1, a), NewVector(2, b)
		va32, vb32 := NewVector32From64(1, a), NewVector32From64(2, b)
		for _, p := range []int{1, 2, 5} {
			fn := LpNorm{P: float64(p), Dim: dim, Scale: 1}
			d64 := fn.Distance(va, vb)
			d32 := fn.Distance(va32, vb32)
			tol := 2 * math.Pow(float64(dim), 1/float64(p)) * 1 * 0x1p-24
			if math.Abs(d64-d32) > tol {
				t.Errorf("dim %d p %d: |d64 - d32| = %g exceeds tolerance %g",
					dim, p, math.Abs(d64-d32), tol)
			}
		}
		li := LInf{Dim: dim}
		if diff := math.Abs(li.Distance(va, vb) - li.Distance(va32, vb32)); diff > 2*0x1p-24 {
			t.Errorf("dim %d LInf: rounding moved distance by %g", dim, diff)
		}
	}
}
