package metric

// This file implements Myers' bit-parallel Levenshtein algorithm in the
// Hyyrö formulation: the DP matrix is encoded as vertical delta bit-vectors
// (Pv = positions where D[i][j] - D[i-1][j] = +1, Mv = -1) and one text
// character advances a whole 64-cell column slice with a handful of word
// operations, giving O(⌈m/64⌉·n) instead of the textbook O(m·n).
//
// Two variants:
//
//   - myersDistance64: the pattern fits one machine word (m ≤ 64). Covers
//     every string in the Words workload.
//   - myersDistanceBlock: ⌈m/64⌉ blocks chained through horizontal carries,
//     for DNA-length strings (hundreds of characters).
//
// Both return the exact Levenshtein distance; the dispatcher editDistance
// picks the variant (and falls back to the classic DP only for degenerate
// inputs).

// editDistance returns the Levenshtein distance between a and b using the
// fastest applicable kernel. It is the engine behind EditDistance.Distance.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	// The pattern (bit-encoded side) is the shorter string: fewer blocks.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(a) <= 64 {
		return myersDistance64(a, b)
	}
	return myersDistanceBlock(a, b)
}

// myersDistance64 computes the Levenshtein distance for a pattern of at most
// 64 characters against text. len(pattern) must be in [1, 64].
func myersDistance64(pattern, text string) int {
	// Peq[c] has bit i set iff pattern[i] == c.
	var peq [256]uint64
	for i := 0; i < len(pattern); i++ {
		peq[pattern[i]] |= 1 << uint(i)
	}
	return myersRun64(&peq, len(pattern), text)
}

// myersRun64 is the single-word kernel proper, with the pattern's equality
// bitmap prebuilt — the batch verification path builds peq once per query
// and replays this loop per candidate (DESIGN.md §13).
func myersRun64(peq *[256]uint64, m int, text string) int {
	var pv uint64 = ^uint64(0)
	var mv uint64
	score := m
	msb := uint64(1) << uint(m-1)
	for i := 0; i < len(text); i++ {
		eq := peq[text[i]]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&msb != 0 {
			score++
		} else if mh&msb != 0 {
			score--
		}
		// Shift the horizontal deltas down one row; the +1 carried into bit 0
		// encodes the first DP row D[0][j] = j.
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	return score
}

// myersBlockStackWords bounds the stack-backed scratch for the blocked
// variant: patterns up to 8 blocks (512 characters) with up to 16 distinct
// characters run allocation-free, which covers DNA sequences comfortably.
const myersBlockStackWords = 16 * 8

// myersDistanceBlock computes the Levenshtein distance for patterns longer
// than 64 characters using ⌈m/64⌉ chained blocks. Rather than a dense
// [256][w]uint64 equality table (2 KiB per block, mostly zeros), pattern
// characters are interned into slots so the table is distinct-chars × w
// words — tiny for DNA's 4-letter alphabet.
func myersDistanceBlock(pattern, text string) int {
	m := len(pattern)
	w := (m + 63) / 64

	// slot[c] is 1-based index into peq; 0 means c does not occur in pattern.
	var slot [256]uint16
	var peqStack [myersBlockStackWords]uint64
	peq := peqStack[:0]
	distinct := 0
	for i := 0; i < m; i++ {
		c := pattern[i]
		if slot[c] == 0 {
			distinct++
			slot[c] = uint16(distinct)
			for k := 0; k < w; k++ {
				peq = append(peq, 0)
			}
		}
		peq[(int(slot[c])-1)*w+i/64] |= 1 << uint(i%64)
	}
	return myersRunBlock(&slot, peq, w, m, text)
}

// myersRunBlock is the multi-block kernel proper, with the interned slot
// table and equality bitmaps prebuilt; the batch verification path builds
// them once per query and replays this loop per candidate.
func myersRunBlock(slot *[256]uint16, peq []uint64, w, m int, text string) int {
	var vStack [16]uint64 // Pv and Mv for up to 8 blocks
	var pv, mvec []uint64
	if 2*w <= len(vStack) {
		pv, mvec = vStack[:w], vStack[w:2*w]
	} else {
		buf := make([]uint64, 2*w)
		pv, mvec = buf[:w], buf[w:]
	}
	for k := range pv {
		pv[k] = ^uint64(0)
		mvec[k] = 0
	}

	score := m
	// The score is tracked at the pattern's last cell: bit (m-1) mod 64 of
	// the last block.
	lastMSB := uint64(1) << uint((m-1)%64)
	last := w - 1
	for i := 0; i < len(text); i++ {
		var eqRow []uint64
		if s := slot[text[i]]; s != 0 {
			eqRow = peq[(int(s)-1)*w : int(s)*w]
		}
		hin := 1 // D[0][j] - D[0][j-1] = +1 enters block 0
		for k := 0; k < w; k++ {
			var eq uint64
			if eqRow != nil {
				eq = eqRow[k]
			}
			p, mw := pv[k], mvec[k]
			if hin < 0 {
				eq |= 1
			}
			xv := eq | mw
			xh := (((eq & p) + p) ^ p) | eq
			ph := mw | ^(xh | p)
			mh := p & xh

			hout := 0
			carry := uint64(1) << 63
			if k == last {
				carry = lastMSB
			}
			if ph&carry != 0 {
				hout = 1
			} else if mh&carry != 0 {
				hout = -1
			}

			ph <<= 1
			mh <<= 1
			if hin > 0 {
				ph |= 1
			} else if hin < 0 {
				mh |= 1
			}
			pv[k] = mh | ^(xv | ph)
			mvec[k] = ph & xv
			hin = hout
		}
		score += hin
	}
	return score
}
