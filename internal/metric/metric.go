// Package metric defines the metric-space abstraction used throughout the
// SPB-tree library: objects, distance functions, distance-computation
// accounting, and dataset statistics such as intrinsic dimensionality.
//
// A metric space is a pair (M, d) where d is symmetric, non-negative,
// satisfies the identity of indiscernibles, and — crucially for all pruning
// lemmas in the index — the triangle inequality. Every DistanceFunc in this
// package is a true metric; see the package tests, which verify the triangle
// inequality property-based.
package metric

import (
	"fmt"
	"sync/atomic"
)

// Object is an element of a metric space. Objects carry a stable identifier
// (used in query results and RAF records) and can serialize their payload for
// storage in the random access file. The identifier itself is stored by the
// RAF record header, not by AppendBinary.
type Object interface {
	// ID returns the object's stable identifier.
	ID() uint64
	// AppendBinary appends the object's payload encoding to dst and returns
	// the extended slice.
	AppendBinary(dst []byte) []byte
}

// DistanceFunc computes distances between objects of a metric space.
// Implementations must satisfy the four metric postulates (symmetry,
// non-negativity, identity, triangle inequality).
type DistanceFunc interface {
	// Distance returns d(a, b). It panics if a or b has a concrete type the
	// function does not understand, which always indicates a programming
	// error (mixing objects from different spaces).
	Distance(a, b Object) float64
	// MaxDistance returns d+, the maximum possible distance in the space.
	// It is used to express query radii as percentages of d+ and to quantize
	// distances into SFC cells.
	MaxDistance() float64
	// Discrete reports whether the distance range is a set of integers
	// (e.g. edit or Hamming distance). Discrete spaces are indexed with
	// δ = 1, making cell coordinates exact distances.
	Discrete() bool
	// Name returns a short human-readable name, e.g. "L2" or "edit".
	Name() string
}

// Codec decodes objects previously serialized with Object.AppendBinary.
// Each object kind has a matching codec so the RAF can reconstruct payloads.
type Codec interface {
	// Decode reconstructs an object with the given id from its payload bytes.
	// Implementations must not retain data.
	Decode(id uint64, data []byte) (Object, error)
}

// Counter wraps a DistanceFunc and counts invocations. The count is the
// paper's "compdists" metric — the CPU-cost proxy used throughout the
// evaluation. Counter is safe for concurrent use.
type Counter struct {
	fn DistanceFunc
	n  atomic.Int64
}

// NewCounter returns a counting wrapper around fn.
func NewCounter(fn DistanceFunc) *Counter {
	if fn == nil {
		panic("metric: NewCounter called with nil DistanceFunc")
	}
	return &Counter{fn: fn}
}

// Distance computes d(a, b) and increments the counter.
func (c *Counter) Distance(a, b Object) float64 {
	c.n.Add(1)
	return c.fn.Distance(a, b)
}

// MaxDistance returns the wrapped function's d+.
func (c *Counter) MaxDistance() float64 { return c.fn.MaxDistance() }

// Discrete reports whether the wrapped function is integer-valued.
func (c *Counter) Discrete() bool { return c.fn.Discrete() }

// Name returns the wrapped function's name.
func (c *Counter) Name() string { return c.fn.Name() }

// DistanceAtMost evaluates d(a, b) against threshold t (see
// BoundedDistanceFunc) and increments the counter by exactly one — an
// abandoned evaluation still counts as one compdist, because the paper's
// cost model charges distance evaluations, not the fraction of one that
// completed. Early abandoning therefore changes wall time, never Compdists.
func (c *Counter) DistanceAtMost(a, b Object, t float64) (float64, bool) {
	c.n.Add(1)
	return DistanceAtMost(c.fn, a, b, t)
}

// Bounded reports whether the wrapped function has a threshold-aware kernel.
func (c *Counter) Bounded() bool { return IsBounded(c.fn) }

// BatchDistanceAtMost evaluates the query against a block of candidates (see
// BatchDistanceFunc) and increments the counter by len(objs) — one compdist
// per candidate, exactly as the equivalent scalar loop would charge.
func (c *Counter) BatchDistanceAtMost(q Object, objs []Object, t float64, d []float64, within []bool) {
	c.n.Add(int64(len(objs)))
	BatchDistanceAtMost(c.fn, q, objs, t, d, within)
}

// Batch reports whether the wrapped function has a batch kernel.
func (c *Counter) Batch() bool { return IsBatch(c.fn) }

// Count returns the number of distance computations since the last Reset.
func (c *Counter) Count() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Add folds n distance computations performed outside the wrapper into the
// count. The parallel query engine uses it: verifier workers compute
// speculative distances with Unwrap (uncounted, since a stale pruning bound
// may discard them), and the ordered commit step adds exactly the
// computations the equivalent serial execution would have performed, keeping
// the lifetime counter reconcilable with per-query Compdists.
func (c *Counter) Add(n int64) { c.n.Add(n) }

// Unwrap returns the underlying DistanceFunc.
func (c *Counter) Unwrap() DistanceFunc { return c.fn }

var (
	_ DistanceFunc        = (*Counter)(nil)
	_ BoundedDistanceFunc = (*Counter)(nil)
	_ BatchDistanceFunc   = (*Counter)(nil)
)

func badType(fn, want string, got Object) string {
	return fmt.Sprintf("metric: %s applied to %T, want %s", fn, got, want)
}
