package metric

import (
	"math"
	"math/rand"
)

// Stats summarizes the pairwise distance distribution of a dataset sample.
type Stats struct {
	// Mean and Variance of sampled pairwise distances.
	Mean, Variance float64
	// Max is the largest sampled pairwise distance (an empirical d+).
	Max float64
	// IntrinsicDim is ρ = μ² / (2σ²), the intrinsic dimensionality estimator
	// of Chávez et al. used in Section 3.2 of the paper.
	IntrinsicDim float64
	// Pairs is the number of sampled pairs.
	Pairs int
}

// SampleStats estimates distance-distribution statistics from up to pairs
// random object pairs drawn with the given source. A nil rng falls back to a
// fixed seed so results are reproducible.
func SampleStats(objs []Object, d DistanceFunc, pairs int, rng *rand.Rand) Stats {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var s Stats
	if len(objs) < 2 || pairs <= 0 {
		return s
	}
	var sum, sumSq float64
	for i := 0; i < pairs; i++ {
		a := objs[rng.Intn(len(objs))]
		b := objs[rng.Intn(len(objs))]
		for b == a {
			b = objs[rng.Intn(len(objs))]
		}
		v := d.Distance(a, b)
		sum += v
		sumSq += v * v
		if v > s.Max {
			s.Max = v
		}
		s.Pairs++
	}
	n := float64(s.Pairs)
	s.Mean = sum / n
	s.Variance = sumSq/n - s.Mean*s.Mean
	if s.Variance < 0 {
		s.Variance = 0
	}
	if s.Variance > 0 {
		s.IntrinsicDim = s.Mean * s.Mean / (2 * s.Variance)
	} else {
		s.IntrinsicDim = math.Inf(1)
	}
	return s
}

// IntrinsicDimensionality is a convenience wrapper returning only ρ.
func IntrinsicDimensionality(objs []Object, d DistanceFunc, pairs int, rng *rand.Rand) float64 {
	return SampleStats(objs, d, pairs, rng).IntrinsicDim
}
