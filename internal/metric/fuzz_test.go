package metric

import (
	"math"
	"testing"
)

// FuzzLevenshtein cross-checks the two-row DP against the full-matrix
// reference and the metric axioms on arbitrary byte strings.
func FuzzLevenshtein(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("same", "same")
	f.Add("a\x00b", "\xffxyz")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 64 || len(b) > 64 {
			return // keep the quadratic reference cheap
		}
		got := Levenshtein(a, b)
		want := naiveLevenshtein(a, b)
		if got != want {
			t.Fatalf("Levenshtein(%q, %q) = %d, want %d", a, b, got, want)
		}
		if sym := Levenshtein(b, a); sym != got {
			t.Fatalf("asymmetric: %d vs %d", got, sym)
		}
		if (got == 0) != (a == b) {
			t.Fatalf("identity violated for %q, %q", a, b)
		}
		// Bounds: |len(a)-len(b)| <= d <= max(len(a), len(b)).
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		if got < lo || got > hi {
			t.Fatalf("distance %d outside [%d, %d]", got, lo, hi)
		}
	})
}

// FuzzBoundedDistance asserts the BoundedDistanceFunc contract — within ⇔
// Distance ≤ t, and a bit-identical distance when within — for arbitrary
// strings, vectors, signatures, and thresholds. The threshold is also
// derived from the exact distance itself (scaled and nudged) so the fuzzer
// exercises the boundary cases that matter most.
func FuzzBoundedDistance(f *testing.F) {
	f.Add("kitten", "sitting", 2.0)
	f.Add("", "abc", 3.0)
	f.Add("same", "same", 0.0)
	f.Add("a\x00b", "\xffxyz", -1.0)
	f.Add("longer string with some shared words", "longer string with other shared words", 5.5)
	f.Fuzz(func(t *testing.T, a, b string, thr float64) {
		if len(a) > 256 || len(b) > 256 || math.IsNaN(thr) {
			return
		}
		check := func(fn BoundedDistanceFunc, oa, ob Object, thr float64) {
			exact := fn.Distance(oa, ob)
			d, within := fn.DistanceAtMost(oa, ob, thr)
			if want := exact <= thr; within != want {
				t.Fatalf("%s: within=%v at t=%v, exact=%v", fn.Name(), within, thr, exact)
			}
			if within && math.Float64bits(d) != math.Float64bits(exact) {
				t.Fatalf("%s: bounded d=%v != exact %v at t=%v", fn.Name(), d, exact, thr)
			}
		}

		ed := EditDistance{MaxLen: 256}
		sa, sb := NewStr(1, a), NewStr(2, b)
		exact := ed.Distance(sa, sb)
		for _, tt := range []float64{thr, exact, exact - 1, exact + 0.5, exact * 0.5} {
			check(ed, sa, sb, tt)
		}

		// Reinterpret the strings as vector coordinates and bit signatures so
		// one corpus drives every kernel.
		dim := 8
		ca, cb := make([]float64, dim), make([]float64, dim)
		for i := 0; i < dim; i++ {
			if i < len(a) {
				ca[i] = float64(a[i]) / 255
			}
			if i < len(b) {
				cb[i] = float64(b[i]) / 255
			}
		}
		va, vb := NewVector(1, ca), NewVector(2, cb)
		for _, fn := range []BoundedDistanceFunc{L2(dim), L5(dim), LInf{Dim: dim, Scale: 1}} {
			e := fn.Distance(va, vb)
			for _, tt := range []float64{thr, e, e * (1 - 1e-9), e * (1 + 1e-9)} {
				check(fn, va, vb, tt)
			}
		}

		pa, pb := make([]byte, 12), make([]byte, 12)
		copy(pa, a)
		copy(pb, b)
		ba, bb := NewBitString(1, pa), NewBitString(2, pb)
		ham := Hamming{Bytes: 12}
		he := ham.Distance(ba, bb)
		for _, tt := range []float64{thr, he, he - 1, he + 0.5} {
			check(ham, ba, bb, tt)
		}
	})
}

// FuzzCodecsNoPanic feeds arbitrary payloads to every codec: errors are
// fine, panics are not, and successful decodes must re-encode to the same
// bytes.
func FuzzCodecsNoPanic(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Add([]byte("ACGTACGT"), uint8(2))
	f.Add(make([]byte, 64), uint8(3))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, which uint8) {
		codecs := []Codec{
			VectorCodec{Dim: 3},
			StrCodec{},
			BitStringCodec{Bytes: 8},
			SeqCodec{},
			SetCodec{},
		}
		c := codecs[int(which)%len(codecs)]
		obj, err := c.Decode(42, data)
		if err != nil {
			return
		}
		if obj.ID() != 42 {
			t.Fatalf("decoded id %d", obj.ID())
		}
		round := obj.AppendBinary(nil)
		if string(round) != string(data) {
			// Sets normalize (sort/dedup); re-decoding the normalized form
			// must then be stable.
			round2, err := c.Decode(42, round)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if string(round2.AppendBinary(nil)) != string(round) {
				t.Fatal("encoding not idempotent")
			}
		}
	})
}
