package metric

import (
	"math"
	"testing"
)

// FuzzLevenshtein cross-checks the two-row DP against the full-matrix
// reference and the metric axioms on arbitrary byte strings.
func FuzzLevenshtein(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("same", "same")
	f.Add("a\x00b", "\xffxyz")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 64 || len(b) > 64 {
			return // keep the quadratic reference cheap
		}
		got := Levenshtein(a, b)
		want := naiveLevenshtein(a, b)
		if got != want {
			t.Fatalf("Levenshtein(%q, %q) = %d, want %d", a, b, got, want)
		}
		if sym := Levenshtein(b, a); sym != got {
			t.Fatalf("asymmetric: %d vs %d", got, sym)
		}
		if (got == 0) != (a == b) {
			t.Fatalf("identity violated for %q, %q", a, b)
		}
		// Bounds: |len(a)-len(b)| <= d <= max(len(a), len(b)).
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		if got < lo || got > hi {
			t.Fatalf("distance %d outside [%d, %d]", got, lo, hi)
		}
	})
}

// FuzzBoundedDistance asserts the BoundedDistanceFunc contract — within ⇔
// Distance ≤ t, and a bit-identical distance when within — for arbitrary
// strings, vectors, signatures, and thresholds. The threshold is also
// derived from the exact distance itself (scaled and nudged) so the fuzzer
// exercises the boundary cases that matter most.
func FuzzBoundedDistance(f *testing.F) {
	f.Add("kitten", "sitting", 2.0)
	f.Add("", "abc", 3.0)
	f.Add("same", "same", 0.0)
	f.Add("a\x00b", "\xffxyz", -1.0)
	f.Add("longer string with some shared words", "longer string with other shared words", 5.5)
	f.Fuzz(func(t *testing.T, a, b string, thr float64) {
		if len(a) > 256 || len(b) > 256 || math.IsNaN(thr) {
			return
		}
		check := func(fn BoundedDistanceFunc, oa, ob Object, thr float64) {
			exact := fn.Distance(oa, ob)
			d, within := fn.DistanceAtMost(oa, ob, thr)
			if want := exact <= thr; within != want {
				t.Fatalf("%s: within=%v at t=%v, exact=%v", fn.Name(), within, thr, exact)
			}
			if within && math.Float64bits(d) != math.Float64bits(exact) {
				t.Fatalf("%s: bounded d=%v != exact %v at t=%v", fn.Name(), d, exact, thr)
			}
		}

		ed := EditDistance{MaxLen: 256}
		sa, sb := NewStr(1, a), NewStr(2, b)
		exact := ed.Distance(sa, sb)
		for _, tt := range []float64{thr, exact, exact - 1, exact + 0.5, exact * 0.5} {
			check(ed, sa, sb, tt)
		}

		// Reinterpret the strings as vector coordinates and bit signatures so
		// one corpus drives every kernel.
		dim := 8
		ca, cb := make([]float64, dim), make([]float64, dim)
		for i := 0; i < dim; i++ {
			if i < len(a) {
				ca[i] = float64(a[i]) / 255
			}
			if i < len(b) {
				cb[i] = float64(b[i]) / 255
			}
		}
		va, vb := NewVector(1, ca), NewVector(2, cb)
		for _, fn := range []BoundedDistanceFunc{L2(dim), L5(dim), LInf{Dim: dim, Scale: 1}} {
			e := fn.Distance(va, vb)
			for _, tt := range []float64{thr, e, e * (1 - 1e-9), e * (1 + 1e-9)} {
				check(fn, va, vb, tt)
			}
		}

		pa, pb := make([]byte, 12), make([]byte, 12)
		copy(pa, a)
		copy(pb, b)
		ba, bb := NewBitString(1, pa), NewBitString(2, pb)
		ham := Hamming{Bytes: 12}
		he := ham.Distance(ba, bb)
		for _, tt := range []float64{thr, he, he - 1, he + 0.5} {
			check(ham, ba, bb, tt)
		}
	})
}

// FuzzBatchDistance asserts the BatchDistanceFunc contract — every (d[i],
// within[i]) pair bit-identical to the scalar DistanceAtMost — for arbitrary
// candidate blocks, queries, and thresholds across every kernel. The corpus
// strings are reinterpreted as vectors (both float64 and float32) and bit
// signatures, the same trick FuzzBoundedDistance uses, so one corpus drives
// the Lp, Chebyshev, Hamming and Myers batch kernels at once.
func FuzzBatchDistance(f *testing.F) {
	f.Add("kitten", "sitting", "mittens", 2.0)
	f.Add("", "abc", "abd", 3.0)
	f.Add("same", "same", "same", 0.0)
	f.Add("a\x00b", "\xffxyz", "pq", -1.0)
	f.Add("interrelationship", "interrelationships", "relations", 5.0)
	f.Fuzz(func(t *testing.T, q, c1, c2 string, thr float64) {
		if len(q) > 200 || len(c1) > 200 || len(c2) > 200 || math.IsNaN(thr) {
			return
		}
		check := func(fn DistanceFunc, oq Object, objs []Object, thr float64) {
			t.Helper()
			d := make([]float64, len(objs))
			within := make([]bool, len(objs))
			BatchDistanceAtMost(fn, oq, objs, thr, d, within)
			for i, o := range objs {
				sd, sw := DistanceAtMost(fn, oq, o, thr)
				if math.Float64bits(d[i]) != math.Float64bits(sd) || within[i] != sw {
					t.Fatalf("%s: cand %d t=%v: batch (%v, %v) != scalar (%v, %v)",
						fn.Name(), i, thr, d[i], within[i], sd, sw)
				}
			}
		}

		ed := EditDistance{MaxLen: 256}
		sq := NewStr(0, q)
		strCands := []Object{NewStr(1, c1), NewStr(2, c2), NewStr(3, q), NewStr(4, "")}
		exact := ed.Distance(sq, strCands[0])
		for _, tt := range []float64{thr, exact, exact - 1, exact + 0.5} {
			check(ed, sq, strCands, tt)
		}

		dim := 8
		coords := func(s string) []float64 {
			c := make([]float64, dim)
			for i := 0; i < dim && i < len(s); i++ {
				c[i] = float64(s[i]) / 255
			}
			return c
		}
		vq := NewVector(0, coords(q))
		vCands := []Object{NewVector(1, coords(c1)), NewVector(2, coords(c2)), NewVector(3, coords(q))}
		vq32 := NewVector32From64(0, coords(q))
		v32Cands := []Object{NewVector32From64(1, coords(c1)), NewVector32From64(2, coords(c2)), NewVector32From64(3, coords(q))}
		for _, fn := range []DistanceFunc{L2(dim), L5(dim), LInf{Dim: dim, Scale: 1}} {
			e := fn.Distance(vq, vCands[0])
			for _, tt := range []float64{thr, e, e * (1 - 1e-9)} {
				check(fn, vq, vCands, tt)
				check(fn, vq32, v32Cands, tt)
			}
		}

		sig := func(id uint64, s string) Object {
			b := make([]byte, 12)
			copy(b, s)
			return NewBitString(id, b)
		}
		ham := Hamming{Bytes: 12}
		bq := sig(0, q)
		bCands := []Object{sig(1, c1), sig(2, c2), sig(3, q)}
		he := ham.Distance(bq, bCands[0])
		for _, tt := range []float64{thr, he, he - 1} {
			check(ham, bq, bCands, tt)
		}
	})
}

// FuzzFloat32Roundtrip checks the float32 vector kind end to end: every
// coordinate block round-trips bit-exactly through Vector32Codec, and the
// float32 Lp distances stay within the documented rounding tolerance
// (2·dim^(1/p)·max|c|·2⁻²⁴) of the float64 reference on the same
// coordinates.
func FuzzFloat32Roundtrip(f *testing.F) {
	f.Add([]byte{}, []byte{1, 2, 3, 4})
	f.Add([]byte{0, 0, 63, 128}, []byte{255, 255, 255, 255})
	f.Add(make([]byte, 32), []byte("spbtree float32 roundtrip seed"))
	f.Fuzz(func(t *testing.T, pa, pb []byte) {
		dim := len(pa) / 4
		if dim == 0 || dim > 64 {
			return
		}
		if len(pb) < len(pa) {
			pb = append(pb, make([]byte, len(pa)-len(pb))...)
		}
		codec := Vector32Codec{Dim: dim}
		obj, err := codec.Decode(9, pa[:4*dim])
		if err != nil {
			return // e.g. payload decoding to NaN/Inf coordinates, if rejected
		}
		va := obj.(*Vector32)
		if round := va.AppendBinary(nil); string(round) != string(pa[:4*dim]) {
			t.Fatalf("Vector32Codec roundtrip: % x -> % x", pa[:4*dim], round)
		}

		// Derive clean [0,1] coordinate pairs from the raw bytes for the
		// tolerance check (decoded bits may be NaN/Inf, which no tolerance
		// bound covers).
		ca, cb := make([]float64, dim), make([]float64, dim)
		maxC := 0.0
		for i := 0; i < dim; i++ {
			ca[i] = float64(pa[4*i]) / 255
			cb[i] = float64(pb[4*i]) / 255
			if a := math.Abs(ca[i]); a > maxC {
				maxC = a
			}
			if b := math.Abs(cb[i]); b > maxC {
				maxC = b
			}
		}
		v64a, v64b := NewVector(1, ca), NewVector(2, cb)
		v32a, v32b := NewVector32From64(1, ca), NewVector32From64(2, cb)
		for _, p := range []float64{1, 2, 5} {
			fn := LpNorm{P: p, Dim: dim, Scale: 1}
			d64 := fn.Distance(v64a, v64b)
			d32 := fn.Distance(v32a, v32b)
			tol := 2 * math.Pow(float64(dim), 1/p) * maxC * 0x1p-24
			if math.Abs(d64-d32) > tol {
				t.Fatalf("p=%v dim=%d: |%v - %v| > tolerance %v", p, dim, d64, d32, tol)
			}
		}
	})
}

// FuzzCodecsNoPanic feeds arbitrary payloads to every codec: errors are
// fine, panics are not, and successful decodes must re-encode to the same
// bytes.
func FuzzCodecsNoPanic(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Add([]byte("ACGTACGT"), uint8(2))
	f.Add(make([]byte, 64), uint8(3))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, which uint8) {
		codecs := []Codec{
			VectorCodec{Dim: 3},
			StrCodec{},
			BitStringCodec{Bytes: 8},
			SeqCodec{},
			SetCodec{},
			Vector32Codec{Dim: 3},
		}
		c := codecs[int(which)%len(codecs)]
		obj, err := c.Decode(42, data)
		if err != nil {
			return
		}
		if obj.ID() != 42 {
			t.Fatalf("decoded id %d", obj.ID())
		}
		round := obj.AppendBinary(nil)
		if string(round) != string(data) {
			// Sets normalize (sort/dedup); re-decoding the normalized form
			// must then be stable.
			round2, err := c.Decode(42, round)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if string(round2.AppendBinary(nil)) != string(round) {
				t.Fatal("encoding not idempotent")
			}
		}
	})
}
