package metric

import (
	"testing"
)

// FuzzLevenshtein cross-checks the two-row DP against the full-matrix
// reference and the metric axioms on arbitrary byte strings.
func FuzzLevenshtein(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("same", "same")
	f.Add("a\x00b", "\xffxyz")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 64 || len(b) > 64 {
			return // keep the quadratic reference cheap
		}
		got := Levenshtein(a, b)
		want := naiveLevenshtein(a, b)
		if got != want {
			t.Fatalf("Levenshtein(%q, %q) = %d, want %d", a, b, got, want)
		}
		if sym := Levenshtein(b, a); sym != got {
			t.Fatalf("asymmetric: %d vs %d", got, sym)
		}
		if (got == 0) != (a == b) {
			t.Fatalf("identity violated for %q, %q", a, b)
		}
		// Bounds: |len(a)-len(b)| <= d <= max(len(a), len(b)).
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		if got < lo || got > hi {
			t.Fatalf("distance %d outside [%d, %d]", got, lo, hi)
		}
	})
}

// FuzzCodecsNoPanic feeds arbitrary payloads to every codec: errors are
// fine, panics are not, and successful decodes must re-encode to the same
// bytes.
func FuzzCodecsNoPanic(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Add([]byte("ACGTACGT"), uint8(2))
	f.Add(make([]byte, 64), uint8(3))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, which uint8) {
		codecs := []Codec{
			VectorCodec{Dim: 3},
			StrCodec{},
			BitStringCodec{Bytes: 8},
			SeqCodec{},
			SetCodec{},
		}
		c := codecs[int(which)%len(codecs)]
		obj, err := c.Decode(42, data)
		if err != nil {
			return
		}
		if obj.ID() != 42 {
			t.Fatalf("decoded id %d", obj.ID())
		}
		round := obj.AppendBinary(nil)
		if string(round) != string(data) {
			// Sets normalize (sort/dedup); re-decoding the normalized form
			// must then be stable.
			round2, err := c.Decode(42, round)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if string(round2.AppendBinary(nil)) != string(round) {
				t.Fatal("encoding not idempotent")
			}
		}
	})
}
