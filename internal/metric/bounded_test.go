package metric

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randString draws a random string over an alphabet of the given size, so
// tests cover both dense-match (small alphabet) and sparse-match regimes.
func randString(rng *rand.Rand, maxLen, alphabet int) string {
	n := rng.Intn(maxLen + 1)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + rng.Intn(alphabet)))
	}
	return sb.String()
}

func TestMyersMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3000; trial++ {
		alphabet := 2 + rng.Intn(10)
		a := randString(rng, 70, alphabet) // crosses the 64-char word boundary
		b := randString(rng, 70, alphabet)
		want := naiveLevenshtein(a, b)
		if got := editDistance(a, b); got != want {
			t.Fatalf("editDistance(%q, %q) = %d, want %d", a, b, got, want)
		}
	}
}

func TestMyersBlockVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		// DNA-length strings: 3-4 blocks, 4-letter alphabet.
		a := randString(rng, 220, 4)
		b := randString(rng, 220, 4)
		if len(a) < 80 {
			a += strings.Repeat("a", 80) // force the multi-block path
		}
		want := naiveLevenshtein(a, b)
		if got := editDistance(a, b); got != want {
			t.Fatalf("block editDistance(len %d, len %d) = %d, want %d", len(a), len(b), got, want)
		}
	}
}

func TestLevenshteinAffixStripAndStack(t *testing.T) {
	// Strings sharing long affixes and strings longer than the stack buffer
	// must still agree with the reference.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		pre := randString(rng, 20, 3)
		suf := randString(rng, 20, 3)
		a := pre + randString(rng, 30, 3) + suf
		b := pre + randString(rng, 30, 3) + suf
		if got, want := Levenshtein(a, b), naiveLevenshtein(a, b); got != want {
			t.Fatalf("Levenshtein(%q, %q) = %d, want %d", a, b, got, want)
		}
	}
	long := strings.Repeat("ab", 100) + "x" + strings.Repeat("cd", 100)
	long2 := strings.Repeat("ab", 100) + "yz" + strings.Repeat("cd", 100)
	if got, want := Levenshtein(long, long2), naiveLevenshtein(long, long2); got != want {
		t.Fatalf("long Levenshtein = %d, want %d", got, want)
	}
}

// checkBoundedContract asserts the BoundedDistanceFunc contract for one
// evaluation: within ⇔ Distance(a,b) ≤ t, and when within, the returned
// distance is bit-identical to the exact one.
func checkBoundedContract(t *testing.T, fn BoundedDistanceFunc, a, b Object, thr float64) {
	t.Helper()
	exact := fn.Distance(a, b)
	d, within := fn.DistanceAtMost(a, b, thr)
	if want := exact <= thr; within != want {
		t.Fatalf("%s: DistanceAtMost(%v, %v, %v) within=%v, exact d=%v wants %v",
			fn.Name(), a, b, thr, within, exact, want)
	}
	if within && math.Float64bits(d) != math.Float64bits(exact) {
		t.Fatalf("%s: DistanceAtMost(%v, %v, %v) = %v within, exact = %v (not bit-identical)",
			fn.Name(), a, b, thr, d, exact)
	}
}

func TestBoundedEditDistanceContract(t *testing.T) {
	fn := EditDistance{MaxLen: 80}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 4000; trial++ {
		a := NewStr(1, randString(rng, 40, 2+rng.Intn(8)))
		b := NewStr(2, randString(rng, 40, 2+rng.Intn(8)))
		// Thresholds straddle the distance: exact hit, just below, just
		// above, random, and the degenerate cases.
		exact := fn.Distance(a, b)
		for _, thr := range []float64{exact, exact - 1, exact + 1, float64(rng.Intn(42)), 0, -1, math.Inf(1)} {
			checkBoundedContract(t, fn, a, b, thr)
		}
		// Fractional thresholds: edit distances are integers, so within at
		// t = d + 0.5 but not at t = d - 0.5.
		checkBoundedContract(t, fn, a, b, exact+0.5)
		checkBoundedContract(t, fn, a, b, exact-0.5)
	}
}

func TestBoundedLpContract(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, fn := range []LpNorm{L2(16), L5(16), {P: 1, Dim: 16, Scale: 1}, {P: 2.5, Dim: 16, Scale: 1}} {
		for trial := 0; trial < 2000; trial++ {
			a := NewVector(1, randCoords(rng, 16))
			b := NewVector(2, randCoords(rng, 16))
			exact := fn.Distance(a, b)
			for _, thr := range []float64{exact, exact * (1 - 1e-9), exact * (1 + 1e-9), rng.Float64() * 2, 0, -1, math.Inf(1)} {
				checkBoundedContract(t, fn, a, b, thr)
			}
		}
	}
}

func TestBoundedLInfHammingContract(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	linf := LInf{Dim: 16, Scale: 1}
	ham := Hamming{Bytes: 12} // covers the word loop and the byte tail
	for trial := 0; trial < 2000; trial++ {
		va := NewVector(1, randCoords(rng, 16))
		vb := NewVector(2, randCoords(rng, 16))
		exact := linf.Distance(va, vb)
		for _, thr := range []float64{exact, exact * 0.99, exact * 1.01, rng.Float64(), -1, math.Inf(1)} {
			checkBoundedContract(t, linf, va, vb, thr)
		}

		sa, sb := make([]byte, 12), make([]byte, 12)
		rng.Read(sa)
		rng.Read(sb)
		ba, bb := NewBitString(1, sa), NewBitString(2, sb)
		hd := ham.Distance(ba, bb)
		for _, thr := range []float64{hd, hd - 1, hd + 1, float64(rng.Intn(96)), hd - 0.5, hd + 0.5, -1, math.Inf(1)} {
			checkBoundedContract(t, ham, ba, bb, thr)
		}
	}
}

func randCoords(rng *rand.Rand, dim int) []float64 {
	c := make([]float64, dim)
	for i := range c {
		c[i] = rng.Float64()
	}
	return c
}

func TestLpIntPowerMatchesDefinition(t *testing.T) {
	// The intPow fast path must stay within float tolerance of the math.Pow
	// definition (they differ only in rounding), and the L5 constructor must
	// actually take it.
	rng := rand.New(rand.NewSource(23))
	l5 := L5(16)
	for trial := 0; trial < 2000; trial++ {
		a := NewVector(1, randCoords(rng, 16))
		b := NewVector(2, randCoords(rng, 16))
		got := l5.Distance(a, b)
		var s float64
		for i := range a.Coords {
			s += math.Pow(math.Abs(a.Coords[i]-b.Coords[i]), 5)
		}
		want := math.Pow(s, 1.0/5)
		if diff := math.Abs(got - want); diff > 1e-12*(1+want) {
			t.Fatalf("L5 fast path %v vs definition %v (diff %g)", got, want, diff)
		}
	}
	if p, ok := l5.intP(); !ok || p != 5 {
		t.Fatalf("L5 intP = %d, %v", p, ok)
	}
	if _, ok := (LpNorm{P: 2.5}).intP(); ok {
		t.Fatal("fractional order classified as integer")
	}
}

func TestDistanceAtMostHelperAndIsBounded(t *testing.T) {
	// TrigramAngular has no bounded kernel: the helper must fall back to an
	// exact evaluation with the same contract.
	fn := TrigramAngular{}
	a := NewSeq(1, "ACGTACGTACGT")
	b := NewSeq(2, "TTTTACGTCCCC")
	exact := fn.Distance(a, b)
	d, within := DistanceAtMost(fn, a, b, exact)
	if !within || d != exact {
		t.Fatalf("fallback DistanceAtMost = (%v, %v), want (%v, true)", d, within, exact)
	}
	if _, within := DistanceAtMost(fn, a, b, exact/2); within {
		t.Fatal("fallback DistanceAtMost within below the distance")
	}
	if IsBounded(fn) {
		t.Fatal("TrigramAngular reported bounded")
	}
	if !IsBounded(EditDistance{MaxLen: 10}) {
		t.Fatal("EditDistance not reported bounded")
	}

	// Counter: DistanceAtMost counts one compdist per call, abandoned or not,
	// and Bounded unwraps.
	c := NewCounter(EditDistance{MaxLen: 10})
	if !c.Bounded() {
		t.Fatal("Counter over EditDistance not bounded")
	}
	if !IsBounded(c) {
		t.Fatal("IsBounded failed to unwrap Counter")
	}
	s1, s2 := NewStr(1, "kitten"), NewStr(2, "sitting")
	c.DistanceAtMost(s1, s2, 1) // abandons (d = 3)
	c.DistanceAtMost(s1, s2, 5) // completes
	if got := c.Count(); got != 2 {
		t.Fatalf("Counter.Count = %d after two bounded evaluations, want 2", got)
	}
	if NewCounter(TrigramAngular{}).Bounded() {
		t.Fatal("Counter over TrigramAngular reported bounded")
	}
}
