package metric

import (
	"fmt"
	"math/bits"
)

// BitString is a fixed-width binary signature, used for the Signature
// workload under Hamming distance (the paper: 49,740 64-byte signatures).
type BitString struct {
	Id   uint64
	Bits []byte
}

// NewBitString returns a bit-signature object.
func NewBitString(id uint64, b []byte) *BitString { return &BitString{Id: id, Bits: b} }

// ID returns the object identifier.
func (b *BitString) ID() uint64 { return b.Id }

// AppendBinary appends the raw signature bytes.
func (b *BitString) AppendBinary(dst []byte) []byte { return append(dst, b.Bits...) }

// String implements fmt.Stringer.
func (b *BitString) String() string {
	return fmt.Sprintf("BitString(%d, %d bits)", b.Id, 8*len(b.Bits))
}

// BitStringCodec decodes BitString payloads of a known byte width.
type BitStringCodec struct {
	// Bytes is the signature width in bytes.
	Bytes int
}

// Decode implements Codec.
func (c BitStringCodec) Decode(id uint64, data []byte) (Object, error) {
	if len(data) != c.Bytes {
		return nil, fmt.Errorf("metric: bit-string payload is %d bytes, want %d", len(data), c.Bytes)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return &BitString{Id: id, Bits: cp}, nil
}

// Hamming is the Hamming distance between equal-width bit strings.
// Distances are integers, so the space is discrete.
type Hamming struct {
	// Bytes is the signature width in bytes; d+ = 8*Bytes.
	Bytes int
}

// Distance implements DistanceFunc.
func (h Hamming) Distance(a, b Object) float64 {
	ba, ok := a.(*BitString)
	if !ok {
		panic(badType("Hamming", "*BitString", a))
	}
	bb, ok := b.(*BitString)
	if !ok {
		panic(badType("Hamming", "*BitString", b))
	}
	if len(ba.Bits) != len(bb.Bits) {
		panic(fmt.Sprintf("metric: Hamming on signatures of %d and %d bytes", len(ba.Bits), len(bb.Bits)))
	}
	n := 0
	i := 0
	for ; i+8 <= len(ba.Bits); i += 8 {
		x := leUint64(ba.Bits[i:]) ^ leUint64(bb.Bits[i:])
		n += bits.OnesCount64(x)
	}
	for ; i < len(ba.Bits); i++ {
		n += bits.OnesCount8(ba.Bits[i] ^ bb.Bits[i])
	}
	return float64(n)
}

// DistanceAtMost implements BoundedDistanceFunc. The popcount accumulator
// only grows, so the scan abandons after the first 8-byte word that pushes
// the count past ⌊t⌋; a completed scan returns the exact distance.
func (h Hamming) DistanceAtMost(a, b Object, t float64) (float64, bool) {
	ba, ok := a.(*BitString)
	if !ok {
		panic(badType("Hamming", "*BitString", a))
	}
	bb, ok := b.(*BitString)
	if !ok {
		panic(badType("Hamming", "*BitString", b))
	}
	return hammingAtMost(ba.Bits, bb.Bits, t)
}

// hammingAtMost is the bounded popcount core shared by the scalar and batch
// paths (the batch kernel hoists only the type assertions, so the per-pair
// arithmetic is this exact loop either way).
func hammingAtMost(a, b []byte, t float64) (float64, bool) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: Hamming on signatures of %d and %d bytes", len(a), len(b)))
	}
	n := 0
	i := 0
	for ; i+8 <= len(a); i += 8 {
		x := leUint64(a[i:]) ^ leUint64(b[i:])
		n += bits.OnesCount64(x)
		if float64(n) > t {
			return float64(n), false
		}
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount8(a[i] ^ b[i])
	}
	return float64(n), float64(n) <= t
}

func leUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// MaxDistance returns d+ = 8*Bytes, the signature width in bits.
func (h Hamming) MaxDistance() float64 { return float64(8 * h.Bytes) }

// Discrete reports true.
func (h Hamming) Discrete() bool { return true }

// Name implements DistanceFunc.
func (h Hamming) Name() string { return "hamming" }

var (
	_ DistanceFunc        = Hamming{}
	_ BoundedDistanceFunc = Hamming{}
	_ Codec               = BitStringCodec{}
)
