package server

import (
	"context"
	"fmt"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// Backend is the index the HTTP layer serves — the seam at which a single
// local tree and a whole cluster are interchangeable. The query methods
// mirror core.Tree's context entry points (partials travel with typed
// errors; errors.Is(err, core.ErrCanceled) marks deadline cancellations),
// so *core.Tree satisfies the query half verbatim and TreeBackend only
// adapts the mutation and stats surface. A cluster router mounts here via
// its own adapter (internal/cluster's ServerBackend), giving spbserve its
// router mode without the HTTP layer knowing about nodes or placement.
type Backend interface {
	// RangeSearchWithStatsCtx answers RQ(q, r) with the query's stats.
	RangeSearchWithStatsCtx(ctx context.Context, q metric.Object, r float64) ([]core.Result, core.QueryStats, error)
	// KNNWithStatsCtx answers kNN(q, k) with the query's stats.
	KNNWithStatsCtx(ctx context.Context, q metric.Object, k int) ([]core.Result, core.QueryStats, error)
	// KNNApproxWithStatsCtx answers budgeted approximate kNN.
	KNNApproxWithStatsCtx(ctx context.Context, q metric.Object, k, maxVerify int) ([]core.Result, core.QueryStats, error)
	// SelfJoinWithStatsCtx computes SJ(D, D, eps) over the backend's own
	// object set, as ID pairs.
	SelfJoinWithStatsCtx(ctx context.Context, eps float64) ([]core.IDPair, core.QueryStats, error)
	// CanJoin reports (as an error, for the 400 response) whether the
	// backend supports similarity joins.
	CanJoin() error
	// Insert upserts obj; Delete removes it (core.ErrNotFound when absent).
	// Both honor ctx where the backend can (a local durable tree runs a
	// started mutation to its WAL acknowledgement regardless).
	Insert(ctx context.Context, obj metric.Object) error
	Delete(ctx context.Context, obj metric.Object) error
	// Writable reports whether mutations are supported at all; false maps
	// to 403 on the write endpoints.
	Writable() bool
	// Len is the backend's live object count.
	Len() int
	// Delta is the backend's buffered-mutation count (0 where meaningless).
	Delta() int
	// StatsFields contributes the backend-specific portion of /v1/stats
	// (objects, curve, storage shape, ...); the serving layer merges in its
	// own endpoint and admission metrics.
	StatsFields() map[string]interface{}
}

// GraphBackend is the optional Backend capability behind /v1/knn's
// mode=ann: answering kNN from the approximate graph tier (DESIGN.md §14).
// Backends that lack the method — and capable backends whose index has no
// live graph (core.ErrNoGraph) — are served by the exact path instead, so
// mode=ann degrades rather than fails.
type GraphBackend interface {
	KNNGraphWithStatsCtx(ctx context.Context, q metric.Object, k int, opts core.SearchOptions) ([]core.Result, core.QueryStats, error)
}

// TreeBackend serves one local SPB-tree — the Backend every pre-cluster
// deployment uses, and the one Config.Tree wraps implicitly.
type TreeBackend struct {
	T *core.Tree
}

// NewTreeBackend wraps t.
func NewTreeBackend(t *core.Tree) *TreeBackend { return &TreeBackend{T: t} }

// RangeSearchWithStatsCtx implements Backend.
func (b *TreeBackend) RangeSearchWithStatsCtx(ctx context.Context, q metric.Object, r float64) ([]core.Result, core.QueryStats, error) {
	return b.T.RangeSearchWithStatsCtx(ctx, q, r)
}

// KNNWithStatsCtx implements Backend.
func (b *TreeBackend) KNNWithStatsCtx(ctx context.Context, q metric.Object, k int) ([]core.Result, core.QueryStats, error) {
	return b.T.KNNWithStatsCtx(ctx, q, k)
}

// KNNGraphWithStatsCtx implements GraphBackend.
func (b *TreeBackend) KNNGraphWithStatsCtx(ctx context.Context, q metric.Object, k int, opts core.SearchOptions) ([]core.Result, core.QueryStats, error) {
	return b.T.KNNGraphWithStatsCtx(ctx, q, k, opts)
}

// KNNApproxWithStatsCtx implements Backend.
func (b *TreeBackend) KNNApproxWithStatsCtx(ctx context.Context, q metric.Object, k, maxVerify int) ([]core.Result, core.QueryStats, error) {
	return b.T.KNNApproxWithStatsCtx(ctx, q, k, maxVerify)
}

// SelfJoinWithStatsCtx implements Backend as SJ(T, T, eps).
func (b *TreeBackend) SelfJoinWithStatsCtx(ctx context.Context, eps float64) ([]core.IDPair, core.QueryStats, error) {
	pairs, qs, err := core.JoinWithStatsCtx(ctx, b.T, b.T, eps)
	return core.IDPairs(pairs), qs, err
}

// CanJoin implements Backend: similarity joins need a Z-order curve
// (Lemma 6).
func (b *TreeBackend) CanJoin() error {
	if b.T.CurveKind() != sfc.ZOrder {
		return fmt.Errorf("similarity joins need a Z-order index (this index uses %v)", b.T.CurveKind())
	}
	return nil
}

// Insert implements Backend. The context is intentionally ignored: a
// mutation that reaches the tree runs to its WAL acknowledgement, because a
// write already logged must not be reported as canceled.
func (b *TreeBackend) Insert(_ context.Context, obj metric.Object) error { return b.T.Insert(obj) }

// Delete implements Backend (see Insert for the context contract).
func (b *TreeBackend) Delete(_ context.Context, obj metric.Object) error { return b.T.Delete(obj) }

// Writable implements Backend: only durable trees take writes.
func (b *TreeBackend) Writable() bool { return b.T.Durable() }

// Len implements Backend.
func (b *TreeBackend) Len() int { return b.T.Len() }

// Delta implements Backend.
func (b *TreeBackend) Delta() int {
	if !b.T.Durable() {
		return 0
	}
	return b.T.DeltaLen()
}

// StatsFields implements Backend with the tree's shape and per-operation
// aggregates (the documented /v1/stats top-level keys).
func (b *TreeBackend) StatsFields() map[string]interface{} {
	ps := b.T.PlannerState()
	m := map[string]interface{}{
		"objects":       b.T.Len(),
		"pivots":        len(b.T.Pivots()),
		"curve":         b.T.CurveKind().String(),
		"storage_bytes": b.T.StorageBytes(),
		"tree":          b.T.Metrics().Snapshot(),
		"planner": map[string]interface{}{
			"enabled":         ps.Enabled,
			"calibrated":      ps.Calibrated,
			"samples":         ps.Samples,
			"ns_per_compdist": ps.NSPerCompdist,
			"ns_per_page":     ps.NSPerPage,
		},
	}
	if b.T.Durable() {
		m["delta"] = b.T.DeltaLen()
		if ws, ok := b.T.WALStats(); ok {
			m["wal"] = map[string]int64{
				"appends": ws.Appends,
				"batches": ws.Batches,
				"syncs":   ws.Syncs,
			}
		}
	}
	return m
}
