package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"spbtree/internal/core"
	"spbtree/internal/metric"
)

// Request bounds: a decoded body may not carry a query vector longer than
// MaxVectorDim, ask for more than MaxK neighbors, or budget more than MaxK
// verifications — caps that keep a single malicious request from turning
// into an unbounded allocation or an effectively unbounded scan.
const (
	// MaxVectorDim caps the query vector length a request may carry.
	MaxVectorDim = 4096
	// MaxK caps k and max_verify.
	MaxK = 100_000
	// MaxQueryLen caps the textual query form's length in bytes.
	MaxQueryLen = 1 << 16
)

// QueryID is the object id given to query objects parsed from requests. It
// sits above any plausible dataset id so results never collide with it.
// Mutation requests must keep their ids below it.
const QueryID = uint64(1) << 63

// Mutation operation names, the write-path peers of the core.Op* query
// constants. They key the server's per-endpoint metrics registry.
const (
	opInsert = "insert"
	opDelete = "delete"
)

// Request is the JSON body accepted by the query endpoints. Exactly the
// fields the endpoint needs must validate: /v1/range needs a query object and
// radius, /v1/knn a query object and k, /v1/knn/approx additionally
// max_verify, /v1/join only eps. timeout_ms optionally tightens (never
// extends beyond the server's MaxTimeout) the per-request deadline.
type Request struct {
	// Vector is the query object for vector-valued trees.
	Vector []float64 `json:"vector,omitempty"`
	// Query is the textual query form for non-vector trees (same line format
	// as spbtool input files).
	Query string `json:"query,omitempty"`
	// ID identifies the object for /v1/insert and /v1/delete (required there,
	// must stay below QueryID). The object itself rides in Vector or Query —
	// deletes need it too, because locating an object takes its pivot mapping.
	ID *uint64 `json:"id,omitempty"`
	// Radius is the range-query radius (required for /v1/range; 0 is legal).
	Radius *float64 `json:"radius,omitempty"`
	// K is the neighbor count for /v1/knn and /v1/knn/approx.
	K int `json:"k,omitempty"`
	// MaxVerify is the verification budget for /v1/knn/approx (0 falls back
	// to the exact search).
	MaxVerify int `json:"max_verify,omitempty"`
	// Mode selects /v1/knn's search tier: "exact" (the default) or "ann",
	// which answers from the approximate graph tier (DESIGN.md §14) and
	// falls back to exact search when the index has no graph.
	Mode string `json:"mode,omitempty"`
	// Ef is the beam width for mode=ann (0 selects the library default; it is
	// raised to k internally).
	Ef int `json:"ef,omitempty"`
	// Eps is the join threshold (required for /v1/join).
	Eps *float64 `json:"eps,omitempty"`
	// TimeoutMS bounds this request's execution in milliseconds.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ErrBadRequest matches (errors.Is) every decode or validation failure of a
// request body; the handlers map it to HTTP 400.
var ErrBadRequest = errors.New("server: bad request")

// badf wraps a validation failure in ErrBadRequest.
func badf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// DecodeRequest parses and validates one endpoint's JSON request body. It
// never panics on malformed input — arbitrary bytes either produce a fully
// validated Request or an error matching ErrBadRequest (the fuzz target
// FuzzDecodeRequest pins this down). Size limiting happens a layer up via
// http.MaxBytesReader; length-bearing fields are re-checked here anyway.
func DecodeRequest(body io.Reader, op string) (Request, error) {
	var req Request
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// Keep the cause in the chain: the handler maps an underlying
		// *http.MaxBytesError to 413 instead of 400.
		return Request{}, fmt.Errorf("%w: decode body: %w", ErrBadRequest, err)
	}
	// Reject trailing garbage after the JSON object.
	if dec.More() {
		return Request{}, badf("trailing data after request object")
	}
	if err := req.validate(op); err != nil {
		return Request{}, err
	}
	return req, nil
}

// validate applies the per-endpoint field requirements.
func (req *Request) validate(op string) error {
	if len(req.Vector) > MaxVectorDim {
		return badf("vector has %d components, limit %d", len(req.Vector), MaxVectorDim)
	}
	for i, v := range req.Vector {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return badf("vector component %d is not finite", i)
		}
	}
	if len(req.Query) > MaxQueryLen {
		return badf("query is %d bytes, limit %d", len(req.Query), MaxQueryLen)
	}
	if req.TimeoutMS < 0 {
		return badf("timeout_ms must be non-negative")
	}
	if op != core.OpKNN && (req.Mode != "" || req.Ef != 0) {
		return badf("mode and ef apply only to /v1/knn")
	}
	needsObject := op != core.OpJoin
	hasObject := len(req.Vector) > 0 || req.Query != ""
	if needsObject && !hasObject {
		return badf("request needs a query object (vector or query)")
	}
	if len(req.Vector) > 0 && req.Query != "" {
		return badf("vector and query are mutually exclusive")
	}
	switch op {
	case core.OpRange:
		if req.Radius == nil {
			return badf("range query needs radius")
		}
		if !finiteNonNegative(*req.Radius) {
			return badf("radius must be finite and non-negative")
		}
	case core.OpKNN, core.OpKNNApprox:
		if req.K <= 0 {
			return badf("k must be positive")
		}
		if req.K > MaxK {
			return badf("k is %d, limit %d", req.K, MaxK)
		}
		if op == core.OpKNNApprox {
			if req.MaxVerify < 0 {
				return badf("max_verify must be non-negative")
			}
			if req.MaxVerify > MaxK {
				return badf("max_verify is %d, limit %d", req.MaxVerify, MaxK)
			}
		}
		if op == core.OpKNN {
			switch req.Mode {
			case "", "exact", "ann":
			default:
				return badf("mode must be \"exact\" or \"ann\", got %q", req.Mode)
			}
			if req.Ef < 0 {
				return badf("ef must be non-negative")
			}
			if req.Ef > MaxK {
				return badf("ef is %d, limit %d", req.Ef, MaxK)
			}
			if req.Ef > 0 && req.Mode != "ann" {
				return badf("ef applies only to mode=ann")
			}
		}
	case core.OpJoin:
		if hasObject {
			return badf("join takes no query object")
		}
		if req.Eps == nil {
			return badf("join needs eps")
		}
		if !finiteNonNegative(*req.Eps) {
			return badf("eps must be finite and non-negative")
		}
	case opInsert, opDelete:
		if req.ID == nil {
			return badf("%s needs id", op)
		}
		if *req.ID >= QueryID {
			return badf("id %d is in the reserved query-id range (>= 2^63)", *req.ID)
		}
	default:
		return badf("unknown operation %q", op)
	}
	return nil
}

// finiteNonNegative reports whether v is a usable radius/threshold.
func finiteNonNegative(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// ParseQueryFunc turns a validated Request into the query object of the
// tree's metric space. The server calls it only after validation, so
// implementations see either a non-empty Vector or a non-empty Query.
type ParseQueryFunc func(Request) (metric.Object, error)

// VectorParser returns a ParseQueryFunc for dim-dimensional vector trees: it
// accepts the "vector" field (exact dimensionality) and rejects textual
// queries.
func VectorParser(dim int) ParseQueryFunc {
	return func(req Request) (metric.Object, error) {
		if len(req.Vector) == 0 {
			return nil, badf("this index serves vector queries; use the vector field")
		}
		if len(req.Vector) != dim {
			return nil, badf("vector has %d components, index dimensionality is %d", len(req.Vector), dim)
		}
		return metric.NewVector(QueryID, req.Vector), nil
	}
}

// TextParser returns a ParseQueryFunc adapting a line parser (the spbtool
// input format) for textual query objects; it rejects the vector field.
func TextParser(parse func(id uint64, line string) (metric.Object, error)) ParseQueryFunc {
	return func(req Request) (metric.Object, error) {
		if req.Query == "" {
			return nil, badf("this index serves textual queries; use the query field")
		}
		obj, err := parse(QueryID, req.Query)
		if err != nil {
			return nil, badf("parse query: %v", err)
		}
		return obj, nil
	}
}

// ParseObjectFunc turns a validated mutation request into the object to
// insert or delete, carrying the request's id (unlike query parsing, which
// pins the reserved QueryID). The server calls it only after validation, so
// implementations see a non-nil id below QueryID and either a non-empty
// Vector or a non-empty Query.
type ParseObjectFunc func(id uint64, req Request) (metric.Object, error)

// VectorObjects returns a ParseObjectFunc for dim-dimensional vector trees.
func VectorObjects(dim int) ParseObjectFunc {
	return func(id uint64, req Request) (metric.Object, error) {
		if len(req.Vector) == 0 {
			return nil, badf("this index stores vectors; use the vector field")
		}
		if len(req.Vector) != dim {
			return nil, badf("vector has %d components, index dimensionality is %d", len(req.Vector), dim)
		}
		return metric.NewVector(id, req.Vector), nil
	}
}

// TextObjects returns a ParseObjectFunc adapting a line parser (the spbtool
// input format) for textual objects; it rejects the vector field.
func TextObjects(parse func(id uint64, line string) (metric.Object, error)) ParseObjectFunc {
	return func(id uint64, req Request) (metric.Object, error) {
		if req.Query == "" {
			return nil, badf("this index stores textual objects; use the query field")
		}
		obj, err := parse(id, req.Query)
		if err != nil {
			return nil, badf("parse object: %v", err)
		}
		return obj, nil
	}
}
