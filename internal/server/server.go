// Package server exposes an SPB-tree as an HTTP query-and-write service on
// the standard library: range, kNN, approximate kNN and similarity-join
// endpoints with per-request deadlines, insert/delete endpoints backed by
// the durable write path (group-committed WAL, in-memory delta, background
// compaction), a bounded worker pool with admission control (429 when the
// queue is full), graceful shutdown that drains in-flight requests (503 for
// newcomers), and per-endpoint latency histograms published on /debug/vars.
//
// The service leans on the query engine's context plumbing: a request whose
// deadline expires mid-scan stops doing page I/O and distance computations
// at the next cancellation check and answers with the partial results
// verified so far plus a "canceled" marker — the serving-layer face of the
// library's partial-results-plus-typed-error contract. DESIGN.md §8
// describes the architecture.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/obs"
)

// Config configures New.
type Config struct {
	// Tree is the index to serve. Exactly one of Tree and Backend is
	// required; a Tree is shorthand for Backend: NewTreeBackend(Tree).
	Tree *core.Tree
	// Backend is the index to serve when it is not a single local tree —
	// e.g. a cluster router (spbserve's -cluster mode mounts one here).
	Backend Backend
	// ParseQuery turns a validated request into a query object; required for
	// the range/kNN endpoints (VectorParser and TextParser cover the common
	// cases).
	ParseQuery ParseQueryFunc
	// ParseObject turns a validated mutation request into the object to
	// insert or delete; required for the /v1/insert and /v1/delete endpoints
	// (VectorObjects and TextObjects cover the common cases). Mutations also
	// need a durable tree (core.CreateDurable/OpenDurable) — on a read-only
	// tree the write endpoints answer 403.
	ParseObject ParseObjectFunc
	// Workers bounds concurrently executing queries; 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds queries admitted but not yet executing; beyond it
	// requests are rejected with 429. 0 selects 2×Workers.
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request names none;
	// 0 selects 5s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied deadlines; 0 selects 60s.
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies; 0 selects 1 MiB.
	MaxBodyBytes int64
	// MetricsName, when non-empty, publishes the server's per-endpoint
	// aggregates in the process-wide expvar registry under this name (visible
	// on /debug/vars). Publishing an already-used name is a no-op.
	MetricsName string
}

// Server serves similarity queries over HTTP. Create it with New, mount
// Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	tree     Backend
	parse    ParseQueryFunc
	parseObj ParseObjectFunc

	defaultTimeout time.Duration
	maxTimeout     time.Duration
	maxBody        int64

	mux   *http.ServeMux
	tasks chan *task

	inflight  sync.WaitGroup
	workersWG sync.WaitGroup
	draining  atomic.Bool
	drainDone chan struct{}
	stopOnce  sync.Once

	// reg aggregates per-endpoint request metrics: latency histograms over
	// the whole request (queueing included) and the queries' compdists/PA.
	reg obs.Registry
	// admission counters, published alongside reg.
	rejectedBusy     atomic.Int64
	rejectedDraining atomic.Int64
	rejectedReadOnly atomic.Int64
	badRequests      atomic.Int64
	canceledQueries  atomic.Int64
}

// task is one admitted query waiting for a pool worker. Its lifecycle is a
// compare-and-swap race between the worker (queued→running, then executes)
// and the handler's deadline branch (queued→abandoned, responds immediately
// without waiting for a pool slot). Exactly one side wins, so the handler
// never reads results a worker is still writing.
type task struct {
	ctx   context.Context
	fn    func()
	ran   bool
	state atomic.Int32 // taskQueued → taskRunning | taskAbandoned
	done  chan struct{}
}

// task lifecycle states.
const (
	taskQueued int32 = iota
	taskRunning
	taskAbandoned
)

// New builds a Server and starts its worker pool. The caller owns the
// lifecycle: serve Handler, then Shutdown.
func New(cfg Config) (*Server, error) {
	backend := cfg.Backend
	if backend == nil {
		if cfg.Tree == nil {
			return nil, fmt.Errorf("server: one of Config.Tree and Config.Backend is required")
		}
		backend = NewTreeBackend(cfg.Tree)
	} else if cfg.Tree != nil {
		return nil, fmt.Errorf("server: Config.Tree and Config.Backend are mutually exclusive")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := cfg.QueueDepth
	if queue <= 0 {
		queue = 2 * workers
	}
	s := &Server{
		tree:           backend,
		parse:          cfg.ParseQuery,
		parseObj:       cfg.ParseObject,
		defaultTimeout: cfg.DefaultTimeout,
		maxTimeout:     cfg.MaxTimeout,
		maxBody:        cfg.MaxBodyBytes,
		tasks:          make(chan *task, queue),
		drainDone:      make(chan struct{}),
	}
	if s.defaultTimeout <= 0 {
		s.defaultTimeout = 5 * time.Second
	}
	if s.maxTimeout <= 0 {
		s.maxTimeout = 60 * time.Second
	}
	if s.maxBody <= 0 {
		s.maxBody = 1 << 20
	}
	for i := 0; i < workers; i++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	s.routes()
	if cfg.MetricsName != "" {
		obs.Publish(cfg.MetricsName, func() interface{} { return s.metricsSnapshot() })
	}
	return s, nil
}

// worker executes admitted tasks. Tasks whose deadline expired while queued
// are skipped (ran stays false; the handler answers canceled-with-no-
// partials), and tasks the handler already abandoned at their deadline are
// dropped outright — nobody is waiting on them.
func (s *Server) worker() {
	defer s.workersWG.Done()
	for t := range s.tasks {
		if !t.state.CompareAndSwap(taskQueued, taskRunning) {
			continue // abandoned by its handler
		}
		if t.ctx.Err() == nil {
			t.fn()
			t.ran = true
		}
		close(t.done)
	}
}

// routes mounts every endpoint. Go 1.22 method patterns give 405 for wrong
// methods for free.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/range", s.handleQuery(core.OpRange))
	s.mux.HandleFunc("POST /v1/knn", s.handleQuery(core.OpKNN))
	s.mux.HandleFunc("POST /v1/knn/approx", s.handleQuery(core.OpKNNApprox))
	s.mux.HandleFunc("POST /v1/join", s.handleQuery(core.OpJoin))
	s.mux.HandleFunc("POST /v1/insert", s.handleMutate(opInsert))
	s.mux.HandleFunc("POST /v1/delete", s.handleMutate(opDelete))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: new requests are answered 503 immediately,
// in-flight and queued queries run to completion (their own deadlines bound
// how long that takes), then the worker pool exits. ctx bounds the wait; on
// expiry the pool is stopped anyway and ctx's error returned. Shutdown is
// idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	waited := make(chan struct{})
	go func() { s.inflight.Wait(); close(waited) }()
	var err error
	select {
	case <-waited:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.stopOnce.Do(func() {
		close(s.tasks)
		close(s.drainDone)
	})
	if err == nil {
		s.workersWG.Wait()
	}
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Metrics returns the per-endpoint aggregate registry (request latency
// histograms including queueing, plus the executed queries' compdists/PA).
func (s *Server) Metrics() *obs.Registry { return &s.reg }

// resultJSON is one range/kNN answer on the wire.
type resultJSON struct {
	// ID is the answer object's identifier.
	ID uint64 `json:"id"`
	// Dist is the (possibly Lemma 2 upper-bounded) distance to the query.
	Dist float64 `json:"dist"`
	// Exact reports whether Dist was actually computed.
	Exact bool `json:"exact"`
}

// pairJSON is one join answer on the wire.
type pairJSON struct {
	// QID and OID identify the joined pair.
	QID uint64 `json:"q_id"`
	OID uint64 `json:"o_id"`
	// Dist is d(q, o).
	Dist float64 `json:"dist"`
}

// response is the JSON body of every query endpoint.
type response struct {
	// Results holds range/kNN answers; Pairs holds join answers.
	Results []resultJSON `json:"results,omitempty"`
	Pairs   []pairJSON   `json:"pairs,omitempty"`
	// Count is len(Results)+len(Pairs), present even when empty.
	Count int `json:"count"`
	// Partial marks an answer cut short by cancellation or a storage error;
	// Error carries the cause.
	Partial bool   `json:"partial,omitempty"`
	Error   string `json:"error,omitempty"`
	// Compdists and PageAccesses are the query's cost in the paper's metrics.
	Compdists    int64 `json:"compdists"`
	PageAccesses int64 `json:"page_accesses"`
	// ElapsedUS is the query's wall time in microseconds (queueing excluded).
	ElapsedUS int64 `json:"elapsed_us"`
	// Plan echoes the adaptive planner's execution decision (DESIGN.md §15)
	// when one ran; absent for joins and pre-planner backends.
	Plan *planJSON `json:"plan,omitempty"`
}

// planJSON is the wire rendering of core.PlanInfo.
type planJSON struct {
	Mode         string `json:"mode,omitempty"`
	Workers      int    `json:"workers,omitempty"`
	ShardsTotal  int    `json:"shards_total,omitempty"`
	ShardsPruned int    `json:"shards_pruned,omitempty"`
	Staged       bool   `json:"staged,omitempty"`
	FirstShard   int    `json:"first_shard,omitempty"`
}

// mutateResponse is the JSON body of /v1/insert and /v1/delete.
type mutateResponse struct {
	// OK reports the mutation was acknowledged: on a durable tree its WAL
	// record survived a group commit before this response was written.
	OK bool `json:"ok"`
	// Op echoes "insert" or "delete"; ID echoes the mutated object's id.
	Op string `json:"op"`
	ID uint64 `json:"id"`
	// Objects is the live object count after the mutation; Delta is how many
	// buffered mutations await background compaction.
	Objects int `json:"objects"`
	Delta   int `json:"delta"`
	// Error carries the failure cause when OK is false.
	Error string `json:"error,omitempty"`
	// ElapsedUS is the request's wall time in microseconds (queueing
	// included — for writes the queue wait is part of the acked latency).
	ElapsedUS int64 `json:"elapsed_us"`
}

// errorJSON writes a plain JSON error with the given status.
func errorJSON(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// handleQuery returns the handler for one query operation: decode and
// validate, derive the request deadline, pass admission control into the
// worker pool, execute with the context threaded through the whole read
// path, and render full or partial results.
func (s *Server) handleQuery(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.draining.Load() {
			s.rejectDraining(w)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		req, err := DecodeRequest(r.Body, op)
		if err != nil {
			s.badRequests.Add(1)
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				errorJSON(w, http.StatusRequestEntityTooLarge, err.Error())
				return
			}
			errorJSON(w, http.StatusBadRequest, err.Error())
			return
		}
		run, err := s.planQuery(op, req)
		if err != nil {
			s.badRequests.Add(1)
			errorJSON(w, http.StatusBadRequest, err.Error())
			return
		}

		timeout := s.defaultTimeout
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		if timeout > s.maxTimeout {
			timeout = s.maxTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		var resp response
		var qs core.QueryStats
		var qerr error
		t := &task{ctx: ctx, done: make(chan struct{})}
		t.fn = func() { resp, qs, qerr = run(ctx) }

		// Admission control: the inflight count is taken before the draining
		// re-check so Shutdown's Wait covers every request that could still
		// enqueue; the non-blocking send bounds queued work at QueueDepth.
		s.inflight.Add(1)
		defer s.inflight.Done()
		if s.draining.Load() {
			s.rejectDraining(w)
			return
		}
		select {
		case s.tasks <- t:
		default:
			s.rejectedBusy.Add(1)
			w.Header().Set("Retry-After", "1")
			errorJSON(w, http.StatusTooManyRequests, "query queue is full")
			return
		}
		select {
		case <-t.done:
		case <-ctx.Done():
			// Deadline expired before a worker freed up. Try to take the
			// task back; if a worker claimed it in the meantime, its run is
			// imminent (the query sees the same expired ctx) — wait it out.
			if !t.state.CompareAndSwap(taskQueued, taskAbandoned) {
				<-t.done
			}
		}

		if !t.ran {
			// Never executed (expired or abandoned while queued): canceled
			// with no partials.
			qerr = fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))
		}
		status := http.StatusOK
		switch {
		case qerr == nil:
		case errors.Is(qerr, core.ErrCanceled):
			s.canceledQueries.Add(1)
			status = http.StatusGatewayTimeout
			resp.Partial = true
			resp.Error = qerr.Error()
		default:
			status = http.StatusInternalServerError
			resp.Partial = true
			resp.Error = qerr.Error()
		}
		resp.Count = len(resp.Results) + len(resp.Pairs)
		resp.Compdists = qs.Compdists
		resp.PageAccesses = qs.PageAccesses()
		resp.ElapsedUS = qs.Elapsed.Microseconds()
		if p := qs.Plan; p != (core.PlanInfo{}) {
			resp.Plan = &planJSON{
				Mode: p.Mode, Workers: p.Workers,
				ShardsTotal: p.ShardsTotal, ShardsPruned: p.ShardsPruned,
				Staged: p.Staged, FirstShard: p.FirstShard,
			}
		}
		s.reg.Op(op).Observe(qs.Compdists, qs.IndexPA, qs.DataPA, int64(resp.Count), time.Since(start), qerr != nil)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	}
}

// handleMutate returns the handler for one mutation operation. Writes flow
// through the same admission control as queries: the worker pool bounds
// concurrent mutators (the WAL's group commit batches their fsyncs), the
// queue bounds admitted-but-waiting requests at 429, and draining rejects
// newcomers with 503 so Shutdown-then-Close leaves no write half done. The
// request deadline governs only time spent queued — once a worker starts a
// mutation it runs to its WAL acknowledgement, because a write that already
// hit the log must not be reported as canceled.
func (s *Server) handleMutate(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.draining.Load() {
			s.rejectDraining(w)
			return
		}
		if !s.tree.Writable() {
			s.rejectedReadOnly.Add(1)
			errorJSON(w, http.StatusForbidden,
				"index is read-only: writes need a durable index (build with spbtool build -durable)")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		req, err := DecodeRequest(r.Body, op)
		if err != nil {
			s.badRequests.Add(1)
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				errorJSON(w, http.StatusRequestEntityTooLarge, err.Error())
				return
			}
			errorJSON(w, http.StatusBadRequest, err.Error())
			return
		}
		if s.parseObj == nil {
			s.badRequests.Add(1)
			errorJSON(w, http.StatusBadRequest, "server: no ParseObject configured")
			return
		}
		obj, err := s.parseObj(*req.ID, req)
		if err != nil {
			s.badRequests.Add(1)
			errorJSON(w, http.StatusBadRequest, err.Error())
			return
		}

		timeout := s.defaultTimeout
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		if timeout > s.maxTimeout {
			timeout = s.maxTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		var merr error
		t := &task{ctx: ctx, done: make(chan struct{})}
		t.fn = func() {
			if op == opInsert {
				merr = s.tree.Insert(ctx, obj)
			} else {
				merr = s.tree.Delete(ctx, obj)
			}
		}

		s.inflight.Add(1)
		defer s.inflight.Done()
		if s.draining.Load() {
			s.rejectDraining(w)
			return
		}
		select {
		case s.tasks <- t:
		default:
			s.rejectedBusy.Add(1)
			w.Header().Set("Retry-After", "1")
			errorJSON(w, http.StatusTooManyRequests, "query queue is full")
			return
		}
		select {
		case <-t.done:
		case <-ctx.Done():
			if !t.state.CompareAndSwap(taskQueued, taskAbandoned) {
				<-t.done
			}
		}
		if !t.ran {
			// Never reached the tree: nothing was logged, so "canceled" is an
			// honest answer — the write is guaranteed absent.
			merr = fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))
		}

		resp := mutateResponse{Op: op, ID: *req.ID}
		status := http.StatusOK
		switch {
		case merr == nil:
			resp.OK = true
		case errors.Is(merr, core.ErrCanceled):
			s.canceledQueries.Add(1)
			status = http.StatusGatewayTimeout
			resp.Error = merr.Error()
		case errors.Is(merr, core.ErrNotFound):
			status = http.StatusNotFound
			resp.Error = merr.Error()
		case errors.Is(merr, core.ErrClosed):
			status = http.StatusServiceUnavailable
			resp.Error = merr.Error()
		default:
			status = http.StatusInternalServerError
			resp.Error = merr.Error()
		}
		resp.Objects = s.tree.Len()
		resp.Delta = s.tree.Delta()
		resp.ElapsedUS = time.Since(start).Microseconds()
		var acked int64
		if resp.OK {
			acked = 1
		}
		s.reg.Op(op).Observe(0, 0, 0, acked, time.Since(start), merr != nil)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	}
}

// planQuery resolves a validated request into a closure executing the
// operation, surfacing parse/config errors before admission.
func (s *Server) planQuery(op string, req Request) (func(context.Context) (response, core.QueryStats, error), error) {
	if op == core.OpJoin {
		if err := s.tree.CanJoin(); err != nil {
			return nil, badf("%s", err)
		}
		eps := *req.Eps
		return func(ctx context.Context) (response, core.QueryStats, error) {
			pairs, qs, err := s.tree.SelfJoinWithStatsCtx(ctx, eps)
			var resp response
			resp.Pairs = make([]pairJSON, len(pairs))
			for i, p := range pairs {
				resp.Pairs[i] = pairJSON{QID: p.QID, OID: p.OID, Dist: p.Dist}
			}
			return resp, qs, err
		}, nil
	}
	if s.parse == nil {
		return nil, fmt.Errorf("server: no ParseQuery configured")
	}
	q, err := s.parse(req)
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context) (response, core.QueryStats, error) {
		var results []core.Result
		var qs core.QueryStats
		var qerr error
		switch op {
		case core.OpRange:
			results, qs, qerr = s.tree.RangeSearchWithStatsCtx(ctx, q, *req.Radius)
		case core.OpKNN:
			results, qs, qerr = s.knn(ctx, q, req)
		default:
			results, qs, qerr = s.tree.KNNApproxWithStatsCtx(ctx, q, req.K, req.MaxVerify)
		}
		var resp response
		resp.Results = make([]resultJSON, len(results))
		for i, res := range results {
			resp.Results[i] = resultJSON{ID: res.Object.ID(), Dist: res.Dist, Exact: res.Exact}
		}
		return resp, qs, qerr
	}, nil
}

// knn routes /v1/knn by mode: "ann" answers from the approximate graph tier
// when the backend has one, falling back to exact search when the backend
// lacks the GraphBackend capability or its index has no live graph — a
// mode=ann request is never an error just because no graph was built.
func (s *Server) knn(ctx context.Context, q metric.Object, req Request) ([]core.Result, core.QueryStats, error) {
	if req.Mode == "ann" {
		if gb, ok := s.tree.(GraphBackend); ok {
			res, qs, err := gb.KNNGraphWithStatsCtx(ctx, q, req.K, core.SearchOptions{Ef: req.Ef})
			if !errors.Is(err, core.ErrNoGraph) {
				return res, qs, err
			}
		}
	}
	return s.tree.KNNWithStatsCtx(ctx, q, req.K)
}

// rejectDraining answers a request arriving during shutdown drain.
func (s *Server) rejectDraining(w http.ResponseWriter) {
	s.rejectedDraining.Add(1)
	w.Header().Set("Retry-After", "1")
	errorJSON(w, http.StatusServiceUnavailable, "server is shutting down")
}

// handleStats reports the index's shape and both metric registries (the
// server's per-endpoint aggregates and the tree's per-operation aggregates).
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.metricsSnapshot())
}

// handleHealth is the liveness/readiness probe: 200 while serving, 503 once
// draining.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		errorJSON(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"status":"ok","objects":` + strconv.Itoa(s.tree.Len()) + `}`))
}

// metricsSnapshot is the JSON document served by /v1/stats and published on
// /debug/vars under Config.MetricsName.
func (s *Server) metricsSnapshot() map[string]interface{} {
	m := map[string]interface{}{
		"draining":  s.draining.Load(),
		"endpoints": s.reg.Snapshot(),
		"admission": map[string]int64{
			"rejected_busy":     s.rejectedBusy.Load(),
			"rejected_draining": s.rejectedDraining.Load(),
			"rejected_readonly": s.rejectedReadOnly.Load(),
			"bad_requests":      s.badRequests.Load(),
			"canceled_queries":  s.canceledQueries.Load(),
		},
	}
	for k, v := range s.tree.StatsFields() {
		m[k] = v
	}
	return m
}
