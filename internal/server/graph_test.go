package server

import (
	"net/http"
	"testing"

	"spbtree/internal/core"
)

// TestE2EKNNModeANN pins /v1/knn's mode dial end to end: before a graph is
// built, mode=ann silently falls back to the exact path (identical answer,
// 200); after BuildGraph, the same request answers from the graph tier with
// high overlap against exact; ef widens the beam.
func TestE2EKNNModeANN(t *testing.T) {
	s := newTestService(t, 500, Config{})
	q := `[0.5,0.5,0.5,0.5]`

	code, exact := s.post(t, "/v1/knn", `{"vector":`+q+`,"k":7}`)
	if code != http.StatusOK || len(exact.Results) != 7 {
		t.Fatalf("exact knn: status %d, %d results", code, len(exact.Results))
	}

	// No graph yet: ann must degrade to the exact answer, not fail.
	code, out := s.post(t, "/v1/knn", `{"vector":`+q+`,"k":7,"mode":"ann"}`)
	if code != http.StatusOK {
		t.Fatalf("ann without graph: status %d (%+v)", code, out)
	}
	if len(out.Results) != 7 {
		t.Fatalf("ann without graph: %d results", len(out.Results))
	}
	for i, r := range out.Results {
		if r.ID != exact.Results[i].ID {
			t.Fatalf("ann-without-graph result %d = id %d, exact fallback wants %d", i, r.ID, exact.Results[i].ID)
		}
	}

	if err := s.tree.BuildGraph(core.GraphOptions{Seed: 11}); err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	code, out = s.post(t, "/v1/knn", `{"vector":`+q+`,"k":7,"mode":"ann","ef":128}`)
	if code != http.StatusOK || len(out.Results) != 7 {
		t.Fatalf("ann with graph: status %d, %d results (%+v)", code, len(out.Results), out)
	}
	exactIDs := map[uint64]bool{}
	for _, r := range exact.Results {
		exactIDs[r.ID] = true
	}
	overlap := 0
	for i, r := range out.Results {
		if i > 0 && out.Results[i-1].Dist > r.Dist {
			t.Fatal("ann results not sorted")
		}
		if exactIDs[r.ID] {
			overlap++
		}
	}
	if overlap < 5 {
		t.Fatalf("ann overlap with exact top-7 is %d/7", overlap)
	}
	if out.Compdists <= 0 {
		t.Fatalf("ann answer missing cost metrics: %+v", out)
	}

	// mode=exact is explicit spelling of the default.
	code, out = s.post(t, "/v1/knn", `{"vector":`+q+`,"k":7,"mode":"exact"}`)
	if code != http.StatusOK || len(out.Results) != 7 {
		t.Fatalf("mode=exact: status %d, %d results", code, len(out.Results))
	}
	for i, r := range out.Results {
		if r.ID != exact.Results[i].ID {
			t.Fatalf("mode=exact result %d diverges from default", i)
		}
	}
}

// TestE2EKNNModeValidation pins the 400s around the mode/ef fields.
func TestE2EKNNModeValidation(t *testing.T) {
	s := newTestService(t, 60, Config{})
	q := `[0.5,0.5,0.5,0.5]`
	for _, tc := range []struct {
		name, path, body string
	}{
		{"unknown mode", "/v1/knn", `{"vector":` + q + `,"k":3,"mode":"fast"}`},
		{"negative ef", "/v1/knn", `{"vector":` + q + `,"k":3,"mode":"ann","ef":-1}`},
		{"huge ef", "/v1/knn", `{"vector":` + q + `,"k":3,"mode":"ann","ef":1000001}`},
		{"ef without ann", "/v1/knn", `{"vector":` + q + `,"k":3,"ef":32}`},
		{"mode on range", "/v1/range", `{"vector":` + q + `,"radius":0.2,"mode":"ann"}`},
		{"ef on approx", "/v1/knn/approx", `{"vector":` + q + `,"k":3,"max_verify":10,"ef":8}`},
	} {
		if code, out := s.post(t, tc.path, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%+v)", tc.name, code, out)
		}
	}
}
