package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// throttleDist wraps a DistanceFunc with a switchable per-call sleep and an
// optional hard gate, so tests can park queries inside the worker pool at
// will. Delay-based throttling keeps cancellation checks reachable; the gate
// holds a query until released (for drain and 429 tests).
type throttleDist struct {
	metric.DistanceFunc
	delay atomic.Int64 // ns per Distance call
	gate  atomic.Bool
	// started receives one token per gated Distance call; release frees them.
	started chan struct{}
	release chan struct{}
}

func (d *throttleDist) Distance(a, b metric.Object) float64 {
	if n := d.delay.Load(); n > 0 {
		time.Sleep(time.Duration(n))
	}
	if d.gate.Load() {
		select {
		case d.started <- struct{}{}:
		default:
		}
		<-d.release
	}
	return d.DistanceFunc.Distance(a, b)
}

// testService is one served tree plus its HTTP front end.
type testService struct {
	tree *core.Tree
	dist *throttleDist
	srv  *Server
	ts   *httptest.Server
}

// newTestService builds a Z-order vector tree (joins work) behind a Server.
func newTestService(t *testing.T, n int, cfg Config) *testService {
	t.Helper()
	const dim = 4
	rng := rand.New(rand.NewSource(7))
	objs := make([]metric.Object, n)
	for i := range objs {
		coords := make([]float64, dim)
		for d := range coords {
			coords[d] = rng.Float64()
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	dist := &throttleDist{
		DistanceFunc: metric.L2(dim),
		started:      make(chan struct{}, 1024),
		release:      make(chan struct{}),
	}
	tree, err := core.Build(objs, core.Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: dim},
		NumPivots: 3, Curve: sfc.ZOrder, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tree = tree
	if cfg.ParseQuery == nil {
		cfg.ParseQuery = VectorParser(dim)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return &testService{tree: tree, dist: dist, srv: srv, ts: ts}
}

// post sends a JSON body and decodes the response envelope.
func (s *testService) post(t *testing.T, path, body string) (int, response) {
	t.Helper()
	resp, err := http.Post(s.ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decode response: %v", path, err)
	}
	return resp.StatusCode, out
}

func TestE2ERangeKNNApprox(t *testing.T) {
	s := newTestService(t, 400, Config{})
	q := `[0.5,0.5,0.5,0.5]`

	code, out := s.post(t, "/v1/range", `{"vector":`+q+`,"radius":0.4}`)
	if code != http.StatusOK {
		t.Fatalf("range: status %d (%+v)", code, out)
	}
	if out.Count == 0 || out.Count != len(out.Results) || out.Partial {
		t.Fatalf("range: bad envelope %+v", out)
	}
	for _, r := range out.Results {
		if r.Exact && r.Dist > 0.4 {
			t.Fatalf("range result %d at distance %v > radius", r.ID, r.Dist)
		}
	}
	if out.Compdists <= 0 || out.ElapsedUS < 0 {
		t.Fatalf("range: missing cost metrics %+v", out)
	}

	code, out = s.post(t, "/v1/knn", `{"vector":`+q+`,"k":7}`)
	if code != http.StatusOK || len(out.Results) != 7 {
		t.Fatalf("knn: status %d, %d results", code, len(out.Results))
	}
	for i := 1; i < len(out.Results); i++ {
		if out.Results[i-1].Dist > out.Results[i].Dist {
			t.Fatal("knn results not sorted")
		}
	}

	code, out = s.post(t, "/v1/knn/approx", `{"vector":`+q+`,"k":7,"max_verify":20}`)
	if code != http.StatusOK || len(out.Results) != 7 {
		t.Fatalf("approx: status %d, %d results", code, len(out.Results))
	}
}

func TestE2EJoin(t *testing.T) {
	s := newTestService(t, 150, Config{})
	code, out := s.post(t, "/v1/join", `{"eps":0.05}`)
	if code != http.StatusOK {
		t.Fatalf("join: status %d (%s)", code, out.Error)
	}
	// A self-join always contains the |O| self-pairs at distance 0.
	if out.Count < s.tree.Len() || out.Count != len(out.Pairs) {
		t.Fatalf("join: %d pairs, want >= %d", out.Count, s.tree.Len())
	}
	for _, p := range out.Pairs {
		if p.Dist > 0.05 {
			t.Fatalf("join pair (%d,%d) at distance %v > eps", p.QID, p.OID, p.Dist)
		}
	}
}

func TestE2EJoinNeedsZOrder(t *testing.T) {
	// A Hilbert-curve index must reject /v1/join up front with 400.
	objs := make([]metric.Object, 60)
	rng := rand.New(rand.NewSource(9))
	for i := range objs {
		objs[i] = metric.NewVector(uint64(i), []float64{rng.Float64(), rng.Float64()})
	}
	tree, err := core.Build(objs, core.Options{
		Distance: metric.L2(2), Codec: metric.VectorCodec{Dim: 2}, NumPivots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Tree: tree, ParseQuery: VectorParser(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/join", strings.NewReader(`{"eps":0.1}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("join on Hilbert tree: status %d, want 400", rec.Code)
	}
}

func TestE2EBadInput(t *testing.T) {
	s := newTestService(t, 100, Config{MaxBodyBytes: 4096})
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"not json", "/v1/range", `{{{{`, 400},
		{"missing radius", "/v1/range", `{"vector":[0.1,0.2,0.3,0.4]}`, 400},
		{"negative radius", "/v1/range", `{"vector":[0.1,0.2,0.3,0.4],"radius":-1}`, 400},
		{"nan radius", "/v1/range", `{"vector":[0.1,0.2,0.3,0.4],"radius":NaN}`, 400},
		{"inf radius", "/v1/range", `{"vector":[0.1,0.2,0.3,0.4],"radius":1e999}`, 400},
		{"no query object", "/v1/knn", `{"k":3}`, 400},
		{"negative k", "/v1/knn", `{"vector":[0.1,0.2,0.3,0.4],"k":-2}`, 400},
		{"zero k", "/v1/knn", `{"vector":[0.1,0.2,0.3,0.4],"k":0}`, 400},
		{"huge k", "/v1/knn", `{"vector":[0.1,0.2,0.3,0.4],"k":100000000}`, 400},
		{"wrong dim", "/v1/knn", `{"vector":[0.1,0.2],"k":3}`, 400},
		{"negative budget", "/v1/knn/approx", `{"vector":[0.1,0.2,0.3,0.4],"k":3,"max_verify":-1}`, 400},
		{"unknown field", "/v1/range", `{"vector":[0.1,0.2,0.3,0.4],"radius":0.1,"bogus":1}`, 400},
		{"trailing data", "/v1/range", `{"vector":[0.1,0.2,0.3,0.4],"radius":0.1} extra`, 400},
		{"join with vector", "/v1/join", `{"vector":[0.1,0.2,0.3,0.4],"eps":0.1}`, 400},
		{"join without eps", "/v1/join", `{}`, 400},
		{"negative timeout", "/v1/range", `{"vector":[0.1,0.2,0.3,0.4],"radius":0.1,"timeout_ms":-5}`, 400},
		{"oversized body", "/v1/range", `{"vector":[` + strings.Repeat("0.1,", 4000) + `0.1],"radius":0.1}`, 413},
	}
	for _, tc := range cases {
		resp, err := http.Post(s.ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Wrong methods get 405 from the Go 1.22 mux patterns.
	resp, err := http.Get(s.ts.URL + "/v1/range")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/range: status %d, want 405", resp.StatusCode)
	}
}

func TestE2EDeadlinePartials(t *testing.T) {
	s := newTestService(t, 500, Config{})
	// ~100µs per distance makes the near-full range scan take ~50ms; a 2ms
	// request deadline expires mid-verification.
	s.dist.delay.Store(int64(100 * time.Microsecond))
	defer s.dist.delay.Store(0)
	code, out := s.post(t, "/v1/range", `{"vector":[0.5,0.5,0.5,0.5],"radius":1.9,"timeout_ms":2}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%+v)", code, out)
	}
	if !out.Partial || out.Error == "" {
		t.Fatalf("deadline response not marked partial: %+v", out)
	}
	if !strings.Contains(out.Error, "canceled") {
		t.Fatalf("error %q does not surface ErrCanceled", out.Error)
	}
	if len(out.Results) >= s.tree.Len() {
		t.Fatal("canceled query returned the full answer")
	}
	// Partials are well-formed: sorted, within the radius.
	for i, r := range out.Results {
		if r.Exact && r.Dist > 1.9 {
			t.Fatalf("partial %d outside radius", i)
		}
		if i > 0 && out.Results[i-1].Dist > r.Dist {
			t.Fatal("partials not sorted")
		}
	}
}

func TestE2EQueueFull(t *testing.T) {
	s := newTestService(t, 200, Config{Workers: 1, QueueDepth: 1})
	// Park one query inside the single worker and fill the one queue slot.
	s.dist.gate.Store(true)
	body := `{"vector":[0.5,0.5,0.5,0.5],"k":3}`
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(s.ts.URL+"/v1/knn", "application/json", strings.NewReader(body))
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}()
		if i == 0 {
			<-s.dist.started // the first query is now inside the worker
		} else {
			// Give the second request time to occupy the queue slot.
			time.Sleep(50 * time.Millisecond)
		}
	}
	// Worker busy + queue full: the next request must bounce with 429.
	resp, err := http.Post(s.ts.URL+"/v1/knn", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	s.dist.gate.Store(false)
	close(s.dist.release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("parked request %d finished with %d", i, code)
		}
	}
}

func TestE2EShutdownDrain(t *testing.T) {
	s := newTestService(t, 200, Config{Workers: 2})
	s.dist.gate.Store(true)
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(s.ts.URL+"/v1/knn", "application/json",
			strings.NewReader(`{"vector":[0.5,0.5,0.5,0.5],"k":3}`))
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-s.dist.started // the query is executing

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.srv.Shutdown(ctx)
	}()
	for !s.srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New queries and health checks bounce with 503 while draining.
	resp, err := http.Post(s.ts.URL+"/v1/knn", "application/json",
		strings.NewReader(`{"vector":[0.5,0.5,0.5,0.5],"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	hresp, err := http.Get(s.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", hresp.StatusCode)
	}

	// Release the parked query: it must complete normally and unblock drain.
	s.dist.gate.Store(false)
	close(s.dist.release)
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight query finished with %d during drain, want 200", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestE2EStatsAndDebugVars(t *testing.T) {
	s := newTestService(t, 200, Config{MetricsName: "spbserve_test_metrics"})
	// Issue a few queries so the histograms have samples.
	for i := 0; i < 3; i++ {
		if code, _ := s.post(t, "/v1/range", `{"vector":[0.5,0.5,0.5,0.5],"radius":0.3}`); code != 200 {
			t.Fatalf("range warm-up: %d", code)
		}
	}
	if code, body := s.post(t, "/v1/knn", `{"vector":[0.5,0.5,0.5,0.5],"k":3}`); code != 200 {
		t.Fatal("knn warm-up failed")
	} else if body.Plan == nil || body.Plan.Mode == "" {
		// Query responses echo the adaptive planner's decision.
		t.Fatalf("query response lacks the plan decision: %+v", body)
	}

	resp, err := http.Get(s.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Objects   int                        `json:"objects"`
		Curve     string                     `json:"curve"`
		Endpoints map[string]json.RawMessage `json:"endpoints"`
		Admission map[string]int64           `json:"admission"`
		Planner   *struct {
			Samples int64 `json:"samples"`
		} `json:"planner"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Objects != 200 || stats.Curve != "zorder" {
		t.Fatalf("stats: %+v", stats)
	}
	if _, ok := stats.Endpoints[core.OpRange]; !ok {
		t.Fatalf("stats lacks the range endpoint aggregates: %v", stats.Endpoints)
	}
	// The planner's calibration state is part of the stats surface; the
	// warm-up queries above fed its EWMAs.
	if stats.Planner == nil || stats.Planner.Samples == 0 {
		t.Fatalf("stats lacks planner calibration: %+v", stats.Planner)
	}

	// The per-endpoint latency histograms are visible on /debug/vars under
	// the published name.
	dresp, err := http.Get(s.ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(dresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	raw, ok := vars["spbserve_test_metrics"]
	if !ok {
		t.Fatal("/debug/vars lacks the published server metrics")
	}
	var pub struct {
		Endpoints map[string]struct {
			Queries int64 `json:"queries"`
			Latency struct {
				Count int64 `json:"count"`
			} `json:"latency"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(raw, &pub); err != nil {
		t.Fatal(err)
	}
	rangeM := pub.Endpoints[core.OpRange]
	if rangeM.Queries != 3 || rangeM.Latency.Count != 3 {
		t.Fatalf("range endpoint histogram: %+v", rangeM)
	}
	if pub.Endpoints[core.OpKNN].Latency.Count != 1 {
		t.Fatalf("knn endpoint histogram: %+v", pub.Endpoints[core.OpKNN])
	}

	hresp, err := http.Get(s.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
}

// TestServerLoad hammers a small worker pool from many clients with a mix of
// operations and deadlines: every response is one of 200/429/504, the
// envelope is always decodable, and afterwards the pool drains with no
// goroutine leak. Run with -race.
func TestServerLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		s := newTestService(t, 300, Config{Workers: 2, QueueDepth: 2})
		s.dist.delay.Store(int64(5 * time.Microsecond)) // queries take ~ms
		var wg sync.WaitGroup
		var got [600]int32
		bodies := []string{
			`{"vector":[0.5,0.5,0.5,0.5],"radius":0.6}`,
			`{"vector":[0.2,0.4,0.6,0.8],"k":10}`,
			`{"vector":[0.9,0.1,0.9,0.1],"k":5,"max_verify":30}`,
			`{"vector":[0.5,0.5,0.5,0.5],"radius":1.5,"timeout_ms":1}`,
		}
		paths := []string{"/v1/range", "/v1/knn", "/v1/knn/approx", "/v1/range"}
		client := &http.Client{Timeout: 30 * time.Second}
		for i := 0; i < 60; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 5; j++ {
					op := (i + j) % len(bodies)
					resp, err := client.Post(s.ts.URL+paths[op], "application/json", strings.NewReader(bodies[op]))
					if err != nil {
						atomic.StoreInt32(&got[i*5+j], -1)
						return
					}
					var out response
					derr := json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if derr != nil {
						atomic.StoreInt32(&got[i*5+j], -2)
						return
					}
					atomic.StoreInt32(&got[i*5+j], int32(resp.StatusCode))
				}
			}(i)
		}
		wg.Wait()
		counts := map[int32]int{}
		for i := 0; i < 300; i++ {
			counts[atomic.LoadInt32(&got[i])]++
		}
		for code, n := range counts {
			switch code {
			case http.StatusOK, http.StatusTooManyRequests, http.StatusGatewayTimeout:
			default:
				t.Errorf("%d responses with unexpected outcome %d", n, code)
			}
		}
		if counts[http.StatusOK] == 0 {
			t.Error("no query succeeded under load")
		}
		t.Logf("load outcomes: %v", counts)
	}()
	// The Cleanup-driven shutdown runs when the closure's test service goes
	// out of scope at function end; poll for goroutines to settle.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("goroutines: %d before, %d after (cleanup may still be pending)", before, runtime.NumGoroutine())
}

// newDurableTestService builds a durable Z-order vector tree (WAL + delta +
// compactor armed) behind a Server, so the write endpoints work.
func newDurableTestService(t *testing.T, n int, cfg Config) *testService {
	t.Helper()
	const dim = 4
	rng := rand.New(rand.NewSource(7))
	objs := make([]metric.Object, n)
	for i := range objs {
		coords := make([]float64, dim)
		for d := range coords {
			coords[d] = rng.Float64()
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	dist := &throttleDist{
		DistanceFunc: metric.L2(dim),
		started:      make(chan struct{}, 1024),
		release:      make(chan struct{}),
	}
	tree, err := core.CreateDurable(t.TempDir(), objs, core.Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: dim},
		NumPivots: 3, Curve: sfc.ZOrder, Seed: 7,
	}, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tree = tree
	if cfg.ParseQuery == nil {
		cfg.ParseQuery = VectorParser(dim)
	}
	if cfg.ParseObject == nil {
		cfg.ParseObject = VectorObjects(dim)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		tree.Close()
	})
	return &testService{tree: tree, dist: dist, srv: srv, ts: ts}
}

// postMutate sends a JSON body to a write endpoint and decodes its envelope.
func (s *testService) postMutate(t *testing.T, path, body string) (int, mutateResponse) {
	t.Helper()
	resp, err := http.Post(s.ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out mutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decode response: %v", path, err)
	}
	return resp.StatusCode, out
}

func TestE2EInsertDeleteRoundTrip(t *testing.T) {
	s := newDurableTestService(t, 200, Config{})
	base := s.tree.Len()

	// Insert a new object and find it with a tight range query around it.
	code, out := s.postMutate(t, "/v1/insert", `{"id":9000,"vector":[0.5,0.5,0.5,0.5]}`)
	if code != http.StatusOK || !out.OK {
		t.Fatalf("insert: status %d (%+v)", code, out)
	}
	if out.Op != "insert" || out.ID != 9000 || out.Objects != base+1 || out.Delta == 0 {
		t.Fatalf("insert envelope: %+v", out)
	}
	qcode, qout := s.post(t, "/v1/range", `{"vector":[0.5,0.5,0.5,0.5],"radius":0.0001}`)
	if qcode != http.StatusOK {
		t.Fatalf("range after insert: status %d", qcode)
	}
	found := false
	for _, r := range qout.Results {
		if r.ID == 9000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted object missing from range results: %+v", qout.Results)
	}

	// Delete it; the query must stop seeing it and a second delete is 404.
	code, out = s.postMutate(t, "/v1/delete", `{"id":9000,"vector":[0.5,0.5,0.5,0.5]}`)
	if code != http.StatusOK || !out.OK || out.Objects != base {
		t.Fatalf("delete: status %d (%+v)", code, out)
	}
	_, qout = s.post(t, "/v1/range", `{"vector":[0.5,0.5,0.5,0.5],"radius":0.0001}`)
	for _, r := range qout.Results {
		if r.ID == 9000 {
			t.Fatal("deleted object still in range results")
		}
	}
	code, out = s.postMutate(t, "/v1/delete", `{"id":9000,"vector":[0.5,0.5,0.5,0.5]}`)
	if code != http.StatusNotFound || out.OK {
		t.Fatalf("second delete: status %d (%+v), want 404", code, out)
	}

	// /v1/stats reports the write path: WAL counters and the delta size.
	resp, err := http.Get(s.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Delta *int             `json:"delta"`
		WAL   map[string]int64 `json:"wal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Delta == nil || stats.WAL == nil {
		t.Fatalf("stats lacks write-path fields: delta=%v wal=%v", stats.Delta, stats.WAL)
	}
	if stats.WAL["appends"] < 2 || stats.WAL["batches"] < 1 {
		t.Fatalf("wal counters: %v", stats.WAL)
	}
}

func TestE2EWriteReadOnlyTree(t *testing.T) {
	// A non-durable tree rejects writes with 403 before touching the body.
	s := newTestService(t, 50, Config{ParseObject: VectorObjects(4)})
	for _, path := range []string{"/v1/insert", "/v1/delete"} {
		code, out := s.postMutate(t, path, `{"id":1,"vector":[0.1,0.2,0.3,0.4]}`)
		if code != http.StatusForbidden {
			t.Fatalf("%s on read-only tree: status %d (%+v), want 403", path, code, out)
		}
	}
}

func TestE2EWriteBadInput(t *testing.T) {
	s := newDurableTestService(t, 50, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"missing id", "/v1/insert", `{"vector":[0.1,0.2,0.3,0.4]}`},
		{"reserved id", "/v1/insert", `{"id":9223372036854775808,"vector":[0.1,0.2,0.3,0.4]}`},
		{"no object", "/v1/insert", `{"id":5}`},
		{"wrong dim", "/v1/insert", `{"id":5,"vector":[0.1,0.2]}`},
		{"missing id", "/v1/delete", `{"vector":[0.1,0.2,0.3,0.4]}`},
		{"text on vector index", "/v1/insert", `{"id":5,"query":"hello"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(s.ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", tc.path, tc.name, resp.StatusCode)
		}
	}
}

func TestE2EWriteDrain(t *testing.T) {
	// Once Shutdown begins, new writes bounce with 503: nothing reaches the
	// WAL after the drain starts, so Close leaves a clean log.
	s := newDurableTestService(t, 50, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, _ := s.postMutate(t, "/v1/insert", `{"id":9000,"vector":[0.5,0.5,0.5,0.5]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("insert during drain: status %d, want 503", code)
	}
}

// TestNewRequiresTree pins the constructor's validation.
func TestNewRequiresTree(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil tree")
	}
}

// TestExpiredInQueue: a request whose deadline lapses while still queued is
// answered 504 with empty partials rather than executed.
func TestExpiredInQueue(t *testing.T) {
	s := newTestService(t, 200, Config{Workers: 1, QueueDepth: 1})
	s.dist.gate.Store(true)
	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(s.ts.URL+"/v1/knn", "application/json",
			strings.NewReader(`{"vector":[0.5,0.5,0.5,0.5],"k":3}`))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-s.dist.started

	// Queued behind the parked query with a 20ms deadline: it expires before
	// a worker picks it up.
	code, out := s.post(t, "/v1/knn", `{"vector":[0.5,0.5,0.5,0.5],"k":3,"timeout_ms":20}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired-in-queue: status %d, want 504", code)
	}
	if len(out.Results) != 0 || !out.Partial {
		t.Fatalf("expired-in-queue: %+v", out)
	}
	s.dist.gate.Store(false)
	close(s.dist.release)
	if c := <-first; c != http.StatusOK {
		t.Fatalf("parked query finished with %d", c)
	}
}

