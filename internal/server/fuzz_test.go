package server

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// fuzzOps maps the fuzzer's op selector to an endpoint.
var fuzzOps = []struct{ op, path string }{
	{core.OpRange, "/v1/range"},
	{core.OpKNN, "/v1/knn"},
	{core.OpKNNApprox, "/v1/knn/approx"},
	{core.OpJoin, "/v1/join"},
}

// FuzzDecodeRequest feeds arbitrary bytes to the JSON request decoder and
// through the full HTTP handler for every endpoint: DecodeRequest must never
// panic and must answer malformed input with an error matching ErrBadRequest,
// and the handler must map every decode/validation failure to a 4xx — never
// a 5xx, never a hang, regardless of NaN/Inf radii, negative k, wrong-
// dimensional or oversized vectors, unknown fields or trailing garbage.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"vector":[0.1,0.2,0.3,0.4],"radius":0.5}`,
		`{"vector":[0.1,0.2,0.3,0.4],"k":3}`,
		`{"vector":[0.1,0.2,0.3,0.4],"k":3,"max_verify":10}`,
		`{"eps":0.25}`,
		`{"vector":[0.1],"radius":0.5}`,
		`{"vector":[1e999],"radius":0.5}`,
		`{"radius":-1}`,
		`{"radius":NaN}`,
		`{"radius":Infinity}`,
		`{"k":-5,"vector":[0.1,0.2,0.3,0.4]}`,
		`{"k":999999999999999999999,"vector":[0.1,0.2,0.3,0.4]}`,
		`{"vector":[` + strings.Repeat("0.5,", 5000) + `0.5],"radius":0.1}`,
		`{"query":"` + strings.Repeat("a", 70000) + `","k":1}`,
		`{"vector":[0.1,0.2,0.3,0.4],"radius":0.5} trailing`,
		`{"vector":[0.1,0.2,0.3,0.4],"radius":0.5,"bogus":true}`,
		`{"timeout_ms":-1,"eps":0.1}`,
		`{"timeout_ms":86400000,"eps":0.1}`,
		`[]`, `null`, `0`, `"str"`, `{`, ``, "\x00\xff\xfe",
		`{"vector":"not an array","k":1}`,
		`{"eps":null}`,
	}
	for _, s := range seeds {
		for opIdx := range fuzzOps {
			f.Add([]byte(s), byte(opIdx))
		}
	}

	// One tiny served tree for the handler-level property; queries that do
	// validate execute against it under the default deadline.
	const dim = 4
	rng := rand.New(rand.NewSource(3))
	objs := make([]metric.Object, 50)
	for i := range objs {
		coords := make([]float64, dim)
		for d := range coords {
			coords[d] = rng.Float64()
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	tree, err := core.Build(objs, core.Options{
		Distance: metric.L2(dim), Codec: metric.VectorCodec{Dim: dim},
		NumPivots: 2, Curve: sfc.ZOrder, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	srv, err := New(Config{Tree: tree, ParseQuery: VectorParser(dim), Workers: 2})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Shutdown(context.Background()) })
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, data []byte, opIdx byte) {
		sel := fuzzOps[int(opIdx)%len(fuzzOps)]

		// Decoder level: never panics, failures are typed.
		req, err := DecodeRequest(bytes.NewReader(data), sel.op)
		if err != nil && !errors.Is(err, ErrBadRequest) {
			t.Fatalf("decode error not ErrBadRequest: %v", err)
		}
		if err == nil && len(req.Vector) > MaxVectorDim {
			t.Fatalf("validated request exceeds MaxVectorDim: %d", len(req.Vector))
		}

		// Handler level: malformed input is always a 4xx, valid input never
		// a 5xx (the tiny tree finishes far inside the default deadline).
		rec := httptest.NewRecorder()
		hreq := httptest.NewRequest("POST", sel.path, bytes.NewReader(data))
		handler.ServeHTTP(rec, hreq)
		if err != nil && (rec.Code < 400 || rec.Code > 499) {
			t.Fatalf("invalid body answered %d, want 4xx (decode err: %v)", rec.Code, err)
		}
		if rec.Code >= 500 && rec.Code != 504 {
			t.Fatalf("request answered %d: %s", rec.Code, rec.Body.String())
		}
	})
}
