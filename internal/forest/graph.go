package forest

import (
	"context"
	"errors"
	"fmt"

	"spbtree/internal/core"
	"spbtree/internal/metric"
)

// GraphSearcher is the optional shard capability for approximate graph
// search (DESIGN.md §14). Local trees implement it; shard types that do not
// (remote cluster handles) are served by the exact path instead — the
// scatter degrades per shard, never failing the query.
type GraphSearcher interface {
	KNNGraphCtx(ctx context.Context, q metric.Object, k int, opts core.SearchOptions) ([]core.Result, error)
	KNNGraphWithStatsCtx(ctx context.Context, q metric.Object, k int, opts core.SearchOptions) ([]core.Result, core.QueryStats, error)
}

// GraphBuilder is the optional shard capability for constructing the
// approximate graph tier.
type GraphBuilder interface {
	BuildGraphCtx(ctx context.Context, opts core.GraphOptions) error
}

// Local trees provide both capabilities.
var (
	_ GraphSearcher = (*core.Tree)(nil)
	_ GraphBuilder  = (*core.Tree)(nil)
)

// BuildGraph constructs the approximate graph tier on every shard; see
// BuildGraphCtx.
func (f *Forest) BuildGraph(opts core.GraphOptions) error {
	return f.BuildGraphCtx(context.Background(), opts)
}

// BuildGraphCtx scatters graph construction to every shard (bounded by the
// forest's parallelism limit, each shard drawing construction workers from
// the shared slot pool). Every shard must support construction — an
// assembled forest with remote shards cannot build graphs from here; build
// them on the owning nodes instead.
func (f *Forest) BuildGraphCtx(ctx context.Context, opts core.GraphOptions) error {
	for i, s := range f.shards {
		if _, ok := s.(GraphBuilder); !ok {
			return fmt.Errorf("forest: shard %d cannot build a graph locally", i)
		}
	}
	return f.scatter(ctx, func(i int, s Shard) error {
		if err := s.(GraphBuilder).BuildGraphCtx(ctx, opts); err != nil {
			return fmt.Errorf("forest: shard %d: %w", i, err)
		}
		return nil
	})
}

// KNNGraph scatters approximate graph kNN to every shard and merges the
// per-shard candidates with MergeKNN, exactly like exact kNN — the (dist, ID)
// order is total, so the reduction stays associative. Shards without a live
// graph (or without the capability at all) answer through the exact path, so
// the merged result is never worse than the weakest shard's exact answer.
func (f *Forest) KNNGraph(q metric.Object, k int, opts core.SearchOptions) ([]core.Result, error) {
	return f.KNNGraphCtx(context.Background(), q, k, opts)
}

// KNNGraphCtx is KNNGraph honoring ctx, with the usual partial-result
// contract: whatever the finished shards produced, merged and cut to k, plus
// an error matching core.ErrCanceled on cancellation.
func (f *Forest) KNNGraphCtx(ctx context.Context, q metric.Object, k int, opts core.SearchOptions) ([]core.Result, error) {
	per := make([][]core.Result, len(f.shards))
	err := f.scatter(ctx, func(i int, s Shard) error {
		if gs, ok := s.(GraphSearcher); ok {
			res, err := gs.KNNGraphCtx(ctx, q, k, opts)
			if !errors.Is(err, core.ErrNoGraph) {
				per[i] = res
				return err
			}
		}
		res, err := s.KNNCtx(ctx, q, k)
		per[i] = res
		return err
	})
	return MergeKNN(per, k), err
}

// KNNGraphWithStatsCtx is KNNGraphCtx, additionally gathering the merged
// per-shard QueryStats — GraphHops/GraphCandidates add across the shards
// that answered from their graph, and stay zero for shards that fell back to
// exact search.
func (f *Forest) KNNGraphWithStatsCtx(ctx context.Context, q metric.Object, k int, opts core.SearchOptions) ([]core.Result, core.QueryStats, error) {
	per := make([][]core.Result, len(f.shards))
	stats := make([]core.QueryStats, len(f.shards))
	err := f.scatter(ctx, func(i int, s Shard) error {
		if gs, ok := s.(GraphSearcher); ok {
			res, qs, err := gs.KNNGraphWithStatsCtx(ctx, q, k, opts)
			if !errors.Is(err, core.ErrNoGraph) {
				per[i], stats[i] = res, qs
				return err
			}
		}
		res, qs, err := s.KNNWithStatsCtx(ctx, q, k)
		per[i], stats[i] = res, qs
		return err
	})
	out := MergeKNN(per, k)
	return out, gatherStats(stats, len(out)), err
}
