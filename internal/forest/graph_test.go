package forest

import (
	"context"
	"math"
	"testing"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/recall"
)

// exactOnlyShard wraps a Shard hiding the graph capabilities, standing in for
// a remote cluster handle.
type exactOnlyShard struct{ Shard }

// TestForestGraphKNN pins the scattered graph tier end to end: BuildGraph
// reaches every shard, KNNGraph merges the per-shard beams with recall@10
// at least 0.9 against the forest's exact answer, and the stats gather
// carries the graph counters.
func TestForestGraphKNN(t *testing.T) {
	objs := vectors(1200, 5, 21, 0)
	dist := metric.L2(5)
	f, err := Build(objs, Options{
		Tree:   core.Options{Distance: dist, Codec: metric.VectorCodec{Dim: 5}, Seed: 2},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BuildGraph(core.GraphOptions{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	for i, tr := range f.Shards() {
		if !tr.HasGraph() {
			t.Fatalf("shard %d has no graph after Forest.BuildGraph", i)
		}
	}
	const k = 10
	var recalls []float64
	for qi := 0; qi < 20; qi++ {
		q := objs[qi*37]
		exact, err := f.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, qs, err := f.KNNGraphWithStatsCtx(context.Background(), q, k, core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("query %d: got %d results, want %d", qi, len(got), k)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("query %d: merged results out of order", qi)
			}
		}
		if qs.GraphHops == 0 || qs.GraphCandidates == 0 {
			t.Fatalf("query %d: graph counters missing from gathered stats: %+v", qi, qs)
		}
		recalls = append(recalls, recall.AtK(resultIDs(exact), resultIDs(got), k))
	}
	if m := recall.Mean(recalls); m < 0.9 {
		t.Fatalf("forest graph recall@%d = %.3f, want >= 0.90", k, m)
	}
}

// TestForestGraphFallback pins the per-shard degradation contract: shards
// with no live graph — whether they lack the graph itself (ErrNoGraph) or
// the capability interface entirely — answer through the exact path, and the
// merged result is still correct.
func TestForestGraphFallback(t *testing.T) {
	objs := vectors(600, 4, 22, 0)
	dist := metric.L2(4)
	f, err := Build(objs, Options{
		Tree:   core.Options{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, Seed: 3},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// No shard has a graph: KNNGraph must equal exact KNN bit for bit.
	q := objs[5]
	exact, err := f.KNN(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, qs, err := f.KNNGraphWithStatsCtx(context.Background(), q, 8, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if qs.GraphHops != 0 {
		t.Fatalf("GraphHops = %d with no graphs built", qs.GraphHops)
	}
	sameResultList(t, "all-fallback", exact, got)

	// Graph on one shard only: mixed answering still merges correctly.
	if err := f.Shards()[0].BuildGraph(core.GraphOptions{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	got, qs, err = f.KNNGraphWithStatsCtx(context.Background(), q, 8, core.SearchOptions{Ef: 256})
	if err != nil {
		t.Fatal(err)
	}
	if qs.GraphHops == 0 {
		t.Fatal("graph-capable shard did not answer from its graph")
	}
	if len(got) != 8 {
		t.Fatalf("mixed scatter returned %d results, want 8", len(got))
	}

	// A shard type without the capability interfaces falls back too, and
	// blocks forest-level construction with a shard-naming error.
	wrapped := make([]Shard, len(f.Shards()))
	for i, tr := range f.Shards() {
		wrapped[i] = exactOnlyShard{tr}
	}
	fw, err := FromShards(wrapped, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err = fw.KNNGraph(q, 8, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResultList(t, "capability-fallback", exact, got)
	if err := fw.BuildGraph(core.GraphOptions{}); err == nil {
		t.Fatal("BuildGraph over capability-less shards did not fail")
	}
}

func resultIDs(rs []core.Result) []uint64 {
	ids := make([]uint64, len(rs))
	for i, r := range rs {
		ids[i] = r.Object.ID()
	}
	return ids
}

func sameResultList(t *testing.T, label string, a, b []core.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Object.ID() != b[i].Object.ID() || math.Abs(a[i].Dist-b[i].Dist) > 1e-12 {
			t.Fatalf("%s: result %d diverges: (%d, %v) vs (%d, %v)",
				label, i, a[i].Object.ID(), a[i].Dist, b[i].Object.ID(), b[i].Dist)
		}
	}
}
