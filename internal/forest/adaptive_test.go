package forest

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"spbtree/internal/core"
	"spbtree/internal/metric"
)

// words generates a seeded clustered word set with IDs starting at base.
func words(n int, seed int64, base uint64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	syllables := []string{"ta", "ri", "mon", "el", "su", "qua", "de", "fo", "li", "ate", "ing", "er"}
	objs := make([]metric.Object, n)
	for i := range objs {
		var b strings.Builder
		for k := 0; k < 2+rng.Intn(4); k++ {
			b.WriteString(syllables[rng.Intn(len(syllables))])
		}
		objs[i] = metric.NewStr(base+uint64(i), b.String())
	}
	return objs
}

// TestAdaptiveEquivalenceMatrix is the §15.6 CI matrix: pruned/staged
// adaptive scatter versus the flat scatter, across traversal strategies ×
// per-shard worker counts × continuous and discrete metrics, for range and
// kNN. Byte identity, not set equality.
func TestAdaptiveEquivalenceMatrix(t *testing.T) {
	type space struct {
		name  string
		objs  []metric.Object
		dist  metric.DistanceFunc
		codec metric.Codec
	}
	spaces := []space{
		{"l2", vectors(1200, 5, 31, 0), metric.L2(5), metric.VectorCodec{Dim: 5}},
		{"edit", words(1200, 32, 0), metric.EditDistance{MaxLen: 24}, metric.StrCodec{}},
	}
	for _, sp := range spaces {
		maxD := sp.dist.MaxDistance()
		for _, trav := range []core.TraversalStrategy{core.Incremental, core.Greedy} {
			for _, workers := range []int{1, 4} {
				f, err := Build(sp.objs, Options{
					Tree: core.Options{
						Distance: sp.dist, Codec: sp.codec, Seed: 2,
						Traversal: trav, Workers: workers,
					},
					Shards: 5,
				})
				if err != nil {
					t.Fatal(err)
				}
				label := sp.name + "/" + trav.String()
				for trial := 0; trial < 8; trial++ {
					q := sp.objs[trial*13]
					r := (0.05 + 0.03*float64(trial)) * maxD

					f.SetAdaptive(true)
					ar, _, err := f.RangeQueryWithStatsCtx(context.Background(), q, r)
					if err != nil {
						t.Fatal(err)
					}
					ak, aqs, err := f.KNNWithStatsCtx(context.Background(), q, 10)
					if err != nil {
						t.Fatal(err)
					}
					f.SetAdaptive(false)
					fr, _, err := f.RangeQueryWithStatsCtx(context.Background(), q, r)
					if err != nil {
						t.Fatal(err)
					}
					fk, _, err := f.KNNWithStatsCtx(context.Background(), q, 10)
					if err != nil {
						t.Fatal(err)
					}

					sameResultSlices(t, label+"/range", fr, ar)
					sameResultSlices(t, label+"/knn", fk, ak)
					if !aqs.Plan.Staged || aqs.Plan.ShardsTotal != 5 {
						t.Fatalf("%s: adaptive kNN plan not staged: %+v", label, aqs.Plan)
					}
				}
			}
		}
	}
}

// TestAdaptiveRangePruning: a query provably outside every shard's summary
// box skips all shards — zero shard compdists — and still answers correctly
// (empty, like the flat scatter).
func TestAdaptiveRangePruning(t *testing.T) {
	objs := vectors(800, 4, 35, 0) // coordinates in [0,1)
	dist := metric.L2(4)
	f, err := Build(objs, Options{
		Tree:   core.Options{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, Seed: 2},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A far-away query at a tiny radius: its ball misses the data cube.
	q := metric.NewVector(990001, []float64{9, 9, 9, 9})
	res, qs, err := f.RangeQueryWithStatsCtx(context.Background(), q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("far query returned %d results", len(res))
	}
	if qs.Plan.ShardsPruned != 4 || qs.Plan.ShardsTotal != 4 {
		t.Fatalf("expected all 4 shards pruned: %+v", qs.Plan)
	}
	if qs.Compdists != 0 {
		t.Fatalf("pruned-out query still computed %d distances", qs.Compdists)
	}

	// The flat scatter visits everyone and agrees on the answer.
	f.SetAdaptive(false)
	fres, fqs, err := f.RangeQueryWithStatsCtx(context.Background(), q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(fres) != 0 {
		t.Fatalf("flat scatter returned %d results", len(fres))
	}
	if fqs.Plan.ShardsPruned != 0 {
		t.Fatalf("flat scatter reports pruning: %+v", fqs.Plan)
	}
}

// TestStagedKNNSavesWork: on clustered data the staged scatter's bound must
// cut total verification against the flat scatter — the point of §15.4 —
// while returning the identical answer (checked in the matrix test; here we
// pin the savings so a silent fallback to flat cannot pass).
func TestStagedKNNSavesWork(t *testing.T) {
	objs := vectors(3000, 6, 37, 0)
	dist := metric.L2(6)
	f, err := Build(objs, Options{
		Tree:   core.Options{Distance: dist, Codec: metric.VectorCodec{Dim: 6}, Seed: 2},
		Shards: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	var staged, flat int64
	for trial := 0; trial < 12; trial++ {
		q := objs[trial*101]
		f.SetAdaptive(true)
		_, aqs, err := f.KNNWithStatsCtx(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		f.SetAdaptive(false)
		_, fqs, err := f.KNNWithStatsCtx(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		staged += aqs.Compdists
		flat += fqs.Compdists
	}
	if staged >= flat {
		t.Fatalf("staged scatter saved nothing: staged=%d flat=%d compdists", staged, flat)
	}
}

// TestAdaptiveAfterWrites: equivalence must survive mutation — hints lose
// their cost estimates on a dirty model but stay sound, and staging keeps
// working.
func TestAdaptiveAfterWrites(t *testing.T) {
	objs := vectors(1000, 5, 39, 0)
	dist := metric.L2(5)
	f, err := Build(objs, Options{
		Tree:   core.Options{Distance: dist, Codec: metric.VectorCodec{Dim: 5}, Seed: 2},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	extra := vectors(100, 5, 40, 500000)
	for _, o := range extra {
		tree := f.Shards()[PartitionOf(o.ID(), 4)]
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	all := append(append([]metric.Object{}, objs...), extra...)
	for trial := 0; trial < 6; trial++ {
		q := all[trial*171]
		f.SetAdaptive(true)
		ak, _, err := f.KNNWithStatsCtx(context.Background(), q, 8)
		if err != nil {
			t.Fatal(err)
		}
		ar, err := f.RangeQuery(q, 0.12*dist.MaxDistance())
		if err != nil {
			t.Fatal(err)
		}
		f.SetAdaptive(false)
		fk, _, err := f.KNNWithStatsCtx(context.Background(), q, 8)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := f.RangeQuery(q, 0.12*dist.MaxDistance())
		if err != nil {
			t.Fatal(err)
		}
		sameResultSlices(t, "knn-after-writes", fk, ak)
		sameResultSlices(t, "range-after-writes", fr, ar)
	}
}

func sameResultSlices(t *testing.T, label string, want, got []core.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d results", label, len(want), len(got))
	}
	for i := range want {
		if want[i].Object.ID() != got[i].Object.ID() || want[i].Dist != got[i].Dist {
			t.Fatalf("%s: result %d: want (id=%d d=%v), got (id=%d d=%v)",
				label, i, want[i].Object.ID(), want[i].Dist, got[i].Object.ID(), got[i].Dist)
		}
	}
}
