package forest

import (
	"context"

	"spbtree/internal/core"
	"spbtree/internal/metric"
)

// Shard is one partition of a partitioned SPB-tree — the seam at which
// local and remote shards are interchangeable. A *core.Tree is a Shard; so
// is an RPC-backed handle to a tree owned by another process (see
// internal/cluster), which is how the same scatter-gather and merge code
// serves both a single-process Forest and a networked cluster node.
//
// The contract every implementation must honor, because the gather layer
// builds on it:
//
//   - Results are in the canonical per-tree order (ascending ID for range,
//     ascending (dist, ID) for kNN) with exact per-tree semantics — the
//     merge step is then associative, so any grouping of shards (per
//     process, per node, per cluster) yields byte-identical answers.
//   - Cancellation follows the library's partial-results contract: on a
//     deadline or storage failure the results gathered so far come back
//     alongside a non-nil error, with cancellation matching
//     core.ErrCanceled via errors.Is. Remote implementations additionally
//     wrap failures in their typed per-node error.
//   - The WithStats variants report the shard's own work in a
//     core.QueryStats; callers aggregate with core.QueryStats.Merge.
//
// All Shards of one Forest must share a single pivot mapping (see
// core.Options.ShareMapping) so pruning quality matches the monolithic
// index.
type Shard interface {
	// RangeSearchCtx answers RQ(q, r) on this shard, honoring ctx.
	RangeSearchCtx(ctx context.Context, q metric.Object, r float64) ([]core.Result, error)
	// RangeSearchWithStatsCtx is RangeSearchCtx, also reporting the shard's
	// QueryStats.
	RangeSearchWithStatsCtx(ctx context.Context, q metric.Object, r float64) ([]core.Result, core.QueryStats, error)
	// KNNCtx answers kNN(q, k) on this shard, honoring ctx.
	KNNCtx(ctx context.Context, q metric.Object, k int) ([]core.Result, error)
	// KNNWithStatsCtx is KNNCtx, also reporting the shard's QueryStats.
	KNNWithStatsCtx(ctx context.Context, q metric.Object, k int) ([]core.Result, core.QueryStats, error)
	// KNNApproxCtx answers budgeted approximate kNN on this shard: at most
	// maxVerify candidates are verified.
	KNNApproxCtx(ctx context.Context, q metric.Object, k, maxVerify int) ([]core.Result, error)
	// KNNApproxWithStatsCtx is KNNApproxCtx, also reporting the shard's
	// QueryStats.
	KNNApproxWithStatsCtx(ctx context.Context, q metric.Object, k, maxVerify int) ([]core.Result, core.QueryStats, error)
	// Len reports the shard's live object count.
	Len() int
}

// A local tree is the canonical Shard.
var _ Shard = (*core.Tree)(nil)
