// Package forest implements the paper's future-work direction ("extend the
// SPB-tree to different distributed environments"): a partitioned SPB-tree.
// Objects are hash-partitioned across shards, every shard is an independent
// SPB-tree over the *same* pivot mapping (so pruning quality matches the
// monolithic index), and queries scatter to all shards in parallel and
// gather-merge the answers.
//
// Each shard owns its page stores, caches and counters, exactly as separate
// nodes would; the scatter-gather layer is the part a networked deployment
// would replace with RPCs.
package forest

import (
	"fmt"
	"sort"
	"sync"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// Options configures Build.
type Options struct {
	// Tree configures each shard (Distance and Codec are required;
	// IndexStore/DataStore must stay nil — every shard allocates its own).
	Tree core.Options
	// Shards is the partition count; 0 means 4.
	Shards int
	// Parallel bounds concurrent shard queries; 0 means all shards at once.
	Parallel int
}

// Forest is a partitioned SPB-tree.
type Forest struct {
	shards   []*core.Tree
	parallel int
}

// Build hash-partitions objs by id and builds one SPB-tree per shard. Shard
// 0 selects the pivot table; every other shard shares its mapping.
func Build(objs []metric.Object, opts Options) (*Forest, error) {
	if opts.Tree.IndexStore != nil || opts.Tree.DataStore != nil {
		return nil, fmt.Errorf("forest: per-shard stores are allocated internally; leave IndexStore/DataStore nil")
	}
	n := opts.Shards
	if n == 0 {
		n = 4
	}
	if n < 1 {
		return nil, fmt.Errorf("forest: Shards must be positive")
	}
	parts := make([][]metric.Object, n)
	for _, o := range objs {
		s := int(o.ID() % uint64(n))
		parts[s] = append(parts[s], o)
	}
	for i, p := range parts {
		if len(p) == 0 {
			return nil, fmt.Errorf("forest: shard %d is empty; fewer shards than distinct objects required", i)
		}
	}
	f := &Forest{parallel: opts.Parallel}
	first := opts.Tree
	t0, err := core.Build(parts[0], first)
	if err != nil {
		return nil, fmt.Errorf("forest: shard 0: %w", err)
	}
	f.shards = append(f.shards, t0)
	for i := 1; i < n; i++ {
		shOpts := opts.Tree
		shOpts.ShareMapping = t0
		t, err := core.Build(parts[i], shOpts)
		if err != nil {
			return nil, fmt.Errorf("forest: shard %d: %w", i, err)
		}
		f.shards = append(f.shards, t)
	}
	return f, nil
}

// Shards returns the per-shard trees (read-only use).
func (f *Forest) Shards() []*core.Tree { return f.shards }

// Len returns the total object count.
func (f *Forest) Len() int {
	n := 0
	for _, s := range f.shards {
		n += s.Len()
	}
	return n
}

// scatter runs fn for every shard, bounded by the parallelism limit, and
// returns the first error.
func (f *Forest) scatter(fn func(i int, t *core.Tree) error) error {
	limit := f.parallel
	if limit <= 0 || limit > len(f.shards) {
		limit = len(f.shards)
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for i, t := range f.shards {
		wg.Add(1)
		go func(i int, t *core.Tree) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = fn(i, t)
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RangeQuery scatters RQ(q, shard, r) and concatenates the answers.
func (f *Forest) RangeQuery(q metric.Object, r float64) ([]core.Result, error) {
	per := make([][]core.Result, len(f.shards))
	err := f.scatter(func(i int, t *core.Tree) error {
		res, err := t.RangeQuery(q, r)
		per[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []core.Result
	for _, res := range per {
		out = append(out, res...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.ID() < out[j].Object.ID() })
	return out, nil
}

// KNN scatters kNN(q, k) to every shard and merges the per-shard top-k sets
// into the global top-k — the standard distributed-kNN reduction.
func (f *Forest) KNN(q metric.Object, k int) ([]core.Result, error) {
	per := make([][]core.Result, len(f.shards))
	err := f.scatter(func(i int, t *core.Tree) error {
		res, err := t.KNN(q, k)
		per[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	var all []core.Result
	for _, res := range per {
		all = append(all, res...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Object.ID() < all[j].Object.ID()
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// Join computes SJ(Q, O, ε) between two forests sharing one mapped space:
// every (Q-shard, O-shard) pair runs an independent SJA merge, all pairs in
// parallel — the shuffle-free join plan a shared-pivot partitioning allows.
func Join(fq, fo *Forest, eps float64) ([]core.JoinPair, error) {
	type task struct{ qi, oi int }
	var tasks []task
	for qi := range fq.shards {
		for oi := range fo.shards {
			tasks = append(tasks, task{qi, oi})
		}
	}
	limit := fq.parallel
	if limit <= 0 || limit > len(tasks) {
		limit = len(tasks)
	}
	sem := make(chan struct{}, limit)
	per := make([][]core.JoinPair, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for ti, tk := range tasks {
		wg.Add(1)
		go func(ti int, tk task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			per[ti], errs[ti] = core.Join(fq.shards[tk.qi], fo.shards[tk.oi], eps)
		}(ti, tk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []core.JoinPair
	for _, pairs := range per {
		out = append(out, pairs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Q.ID() != out[j].Q.ID() {
			return out[i].Q.ID() < out[j].Q.ID()
		}
		return out[i].O.ID() < out[j].O.ID()
	})
	return out, nil
}

// BuildPartner builds a second forest over objs sharing f's pivot mapping
// and shard count, the precondition for Join. The curve must be Z-order.
func (f *Forest) BuildPartner(objs []metric.Object, opts Options) (*Forest, error) {
	if opts.Shards == 0 {
		opts.Shards = len(f.shards)
	}
	opts.Tree.ShareMapping = f.shards[0]
	opts.Tree.Curve = sfc.ZOrder
	return Build(objs, opts)
}

// ResetStats resets every shard.
func (f *Forest) ResetStats() {
	for _, s := range f.shards {
		s.ResetStats()
	}
}

// TakeStats aggregates per-shard counters — the total work across the
// "cluster".
func (f *Forest) TakeStats() core.Stats {
	var total core.Stats
	for _, s := range f.shards {
		st := s.TakeStats()
		total.PageAccesses += st.PageAccesses
		total.DistanceComputations += st.DistanceComputations
	}
	return total
}
