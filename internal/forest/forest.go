// Package forest implements the paper's future-work direction ("extend the
// SPB-tree to different distributed environments"): a partitioned SPB-tree.
// Objects are hash-partitioned across shards, every shard is an independent
// SPB-tree over the *same* pivot mapping (so pruning quality matches the
// monolithic index), and queries scatter to all shards in parallel and
// gather-merge the answers.
//
// Shards are addressed through the Shard interface, so a Forest can span
// local trees, RPC-backed remote trees (internal/cluster), or a mix: Build
// produces the all-local form (each shard owning its page stores, caches
// and counters, exactly as separate nodes would), and FromShards assembles
// a Forest over any shard set sharing one pivot mapping. The scatter-gather
// here is exactly what a cluster node runs over its locally-owned shards;
// the cluster router repeats the same merge one level up, across nodes
// (DESIGN.md §12).
package forest

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// Options configures Build.
type Options struct {
	// Tree configures each shard (Distance and Codec are required;
	// IndexStore/DataStore must stay nil — every shard allocates its own).
	// Tree.Workers additionally enables intra-query parallel verification
	// inside each shard; it composes safely with Parallel because every
	// shard draws its verifiers non-blockingly from one process-wide pool,
	// so shard fan-out times per-shard workers cannot exceed that cap —
	// saturated shards simply verify serially.
	Tree core.Options
	// Shards is the partition count; 0 means 4.
	Shards int
	// Parallel bounds concurrent shard queries; 0 means all shards at once.
	Parallel int
}

// Forest is a partitioned SPB-tree.
type Forest struct {
	shards []Shard
	// trees mirrors shards with the concrete local tree where there is one
	// (nil for remote shards); the tree-only operations — joins, partner
	// builds, stats — require it.
	trees    []*core.Tree
	parallel int
	// adaptive enables the §15 scatter planning (shard pruning, staged kNN);
	// see SetAdaptive.
	adaptive bool
}

// PartitionOf returns the shard index objects with this ID hash-partition
// to, given the shard count — the one partitioning rule shared by Build,
// the cluster bootstrap, and the cluster's insert/delete routing.
func PartitionOf(id uint64, shards int) int { return int(id % uint64(shards)) }

// Partition splits objs into shard object sets by PartitionOf.
func Partition(objs []metric.Object, shards int) [][]metric.Object {
	parts := make([][]metric.Object, shards)
	for _, o := range objs {
		s := PartitionOf(o.ID(), shards)
		parts[s] = append(parts[s], o)
	}
	return parts
}

// Build hash-partitions objs by id and builds one SPB-tree per shard. Shard
// 0 selects the pivot table; every other shard shares its mapping.
func Build(objs []metric.Object, opts Options) (*Forest, error) {
	if opts.Tree.IndexStore != nil || opts.Tree.DataStore != nil {
		return nil, fmt.Errorf("forest: per-shard stores are allocated internally; leave IndexStore/DataStore nil")
	}
	n := opts.Shards
	if n == 0 {
		n = 4
	}
	if n < 1 {
		return nil, fmt.Errorf("forest: Shards must be positive")
	}
	parts := Partition(objs, n)
	for i, p := range parts {
		if len(p) == 0 {
			return nil, fmt.Errorf("forest: shard %d is empty; fewer shards than distinct objects required", i)
		}
	}
	f := &Forest{parallel: opts.Parallel, adaptive: true}
	first := opts.Tree
	t0, err := core.Build(parts[0], first)
	if err != nil {
		return nil, fmt.Errorf("forest: shard 0: %w", err)
	}
	f.addTree(t0)
	for i := 1; i < n; i++ {
		shOpts := opts.Tree
		shOpts.ShareMapping = t0
		t, err := core.Build(parts[i], shOpts)
		if err != nil {
			return nil, fmt.Errorf("forest: shard %d: %w", i, err)
		}
		f.addTree(t)
	}
	return f, nil
}

// addTree appends a local tree as the next shard.
func (f *Forest) addTree(t *core.Tree) {
	f.shards = append(f.shards, t)
	f.trees = append(f.trees, t)
}

// FromShards assembles a Forest over an existing shard set — local trees,
// remote handles, or a mix. All shards must share one pivot mapping (the
// caller's responsibility; remote shards cannot be checked from here).
// parallel bounds concurrent shard queries as in Options.Parallel. The
// tree-only operations (Join, BuildPartner, TakeStats) require every shard
// to be a local *core.Tree and error or no-op otherwise.
func FromShards(shards []Shard, parallel int) (*Forest, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("forest: FromShards needs at least one shard")
	}
	f := &Forest{parallel: parallel, adaptive: true}
	for _, s := range shards {
		f.shards = append(f.shards, s)
		t, _ := s.(*core.Tree)
		f.trees = append(f.trees, t)
	}
	return f, nil
}

// Shards returns the per-shard local trees (read-only use). Entries are nil
// for shards that are not local *core.Trees (a Forest assembled by
// FromShards over remote handles).
func (f *Forest) Shards() []*core.Tree { return f.trees }

// NumShards returns the shard count.
func (f *Forest) NumShards() int { return len(f.shards) }

// localTrees returns the concrete trees when every shard is local.
func (f *Forest) localTrees() ([]*core.Tree, error) {
	for i, t := range f.trees {
		if t == nil {
			return nil, fmt.Errorf("forest: shard %d is not a local tree", i)
		}
	}
	return f.trees, nil
}

// Len returns the total object count.
func (f *Forest) Len() int {
	n := 0
	for _, s := range f.shards {
		n += s.Len()
	}
	return n
}

// scatter runs fn for every shard, bounded by the parallelism limit, and
// returns the first error (in shard order). Dispatch is admission-controlled:
// once ctx is canceled or any shard has recorded an error, no further shard
// work is issued — already-running shards wind down through their own ctx
// checks, but queued ones never start. Cancellation is re-checked after every
// slot acquisition: a dispatcher that waited for a slot can wake to find both
// the slot and the cancellation ready, and Go's select picks between ready
// cases at random, so without the re-check a canceled query could still
// issue one more shard's worth of work. On cancellation with no shard error
// the returned error matches core.ErrCanceled.
func (f *Forest) scatter(ctx context.Context, fn func(i int, s Shard) error) error {
	idxs := make([]int, len(f.shards))
	for i := range idxs {
		idxs[i] = i
	}
	return f.scatterSubset(ctx, idxs, fn)
}

// scatterSubset is scatter over an explicit shard-index subset — the §15
// pruned and staged plans dispatch through it. Semantics are identical to
// scatter, with "every shard" meaning "every listed shard".
func (f *Forest) scatterSubset(ctx context.Context, idxs []int, fn func(i int, s Shard) error) error {
	limit := f.parallel
	if limit <= 0 || limit > len(idxs) {
		limit = len(idxs)
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(f.shards))
	var failed atomic.Bool
	var wg sync.WaitGroup
dispatch:
	for _, i := range idxs {
		s := f.shards[i]
		if failed.Load() || ctx.Err() != nil {
			break // stop issuing work; un-dispatched shards never run
		}
		// Acquire the slot before spawning, so a full pipeline blocks the
		// dispatcher (not a goroutine per shard) and cancellation while
		// waiting abandons the remaining shards outright.
		select {
		case sem <- struct{}{}:
			if ctx.Err() != nil {
				break dispatch // canceled while waiting; the slot won the race
			}
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(i, s); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))
	}
	return nil
}

// RangeQuery scatters RQ(q, shard, r) and concatenates the answers.
func (f *Forest) RangeQuery(q metric.Object, r float64) ([]core.Result, error) {
	return f.RangeQueryCtx(context.Background(), q, r)
}

// RangeQueryCtx is RangeQuery honoring ctx: shards not yet dispatched when
// the context is canceled never run, in-flight shards stop at their own
// cancellation checks, and the answers gathered so far are returned with an
// error matching core.ErrCanceled.
func (f *Forest) RangeQueryCtx(ctx context.Context, q metric.Object, r float64) ([]core.Result, error) {
	visit, _ := f.rangePlan(q, r)
	per := make([][]core.Result, len(f.shards))
	err := f.scatterSubset(ctx, visit, func(i int, s Shard) error {
		res, err := s.RangeSearchCtx(ctx, q, r)
		per[i] = res
		return err
	})
	return mergeRange(per), err
}

// RangeQueryWithStatsCtx is RangeQueryCtx, additionally gathering the
// per-shard QueryStats merged with core.QueryStats.Merge: work counters add
// across shards, wall clocks take the parallel maximum.
func (f *Forest) RangeQueryWithStatsCtx(ctx context.Context, q metric.Object, r float64) ([]core.Result, core.QueryStats, error) {
	visit, pruned := f.rangePlan(q, r)
	per := make([][]core.Result, len(f.shards))
	stats := make([]core.QueryStats, len(f.shards))
	err := f.scatterSubset(ctx, visit, func(i int, s Shard) error {
		res, qs, err := s.RangeSearchWithStatsCtx(ctx, q, r)
		per[i], stats[i] = res, qs
		return err
	})
	out := mergeRange(per)
	qs := gatherStats(stats, len(out))
	qs.Plan.ShardsTotal = len(f.shards)
	qs.Plan.ShardsPruned = pruned
	return out, qs, err
}

// KNN scatters kNN(q, k) to every shard and merges the per-shard top-k sets
// into the global top-k — the standard distributed-kNN reduction.
func (f *Forest) KNN(q metric.Object, k int) ([]core.Result, error) {
	return f.KNNCtx(context.Background(), q, k)
}

// KNNCtx is KNN honoring ctx, with the same partial-result contract as
// RangeQueryCtx: whatever the finished shards produced, merged and cut to k,
// plus an error matching core.ErrCanceled.
func (f *Forest) KNNCtx(ctx context.Context, q metric.Object, k int) ([]core.Result, error) {
	order, staged := f.knnPlan(q, k)
	if !staged {
		per := make([][]core.Result, len(f.shards))
		err := f.scatter(ctx, func(i int, s Shard) error {
			res, err := s.KNNCtx(ctx, q, k)
			per[i] = res
			return err
		})
		return MergeKNN(per, k), err
	}
	// Stage 1: the most promising shard answers plain canonical kNN; its
	// k-th distance bounds everyone else (§15.4).
	per := make([][]core.Result, len(f.shards))
	first := order[0]
	res0, err := f.shards[first].KNNCtx(ctx, q, k)
	per[first] = res0
	if err != nil {
		return MergeKNN(per, k), err
	}
	bound := stageBound(res0, k)
	// Stage 2: the remaining shards probe within the bound, in parallel.
	err = f.scatterSubset(ctx, order[1:], func(i int, s Shard) error {
		res, err := s.(BoundedKNN).KNNWithinCtx(ctx, q, k, bound)
		per[i] = res
		return err
	})
	return MergeKNN(per, k), err
}

// KNNWithStatsCtx is KNNCtx, additionally gathering the merged per-shard
// QueryStats.
func (f *Forest) KNNWithStatsCtx(ctx context.Context, q metric.Object, k int) ([]core.Result, core.QueryStats, error) {
	order, staged := f.knnPlan(q, k)
	per := make([][]core.Result, len(f.shards))
	stats := make([]core.QueryStats, len(f.shards))
	var err error
	if !staged {
		err = f.scatter(ctx, func(i int, s Shard) error {
			res, qs, err := s.KNNWithStatsCtx(ctx, q, k)
			per[i], stats[i] = res, qs
			return err
		})
	} else {
		first := order[0]
		per[first], stats[first], err = f.shards[first].KNNWithStatsCtx(ctx, q, k)
		if err == nil {
			bound := stageBound(per[first], k)
			err = f.scatterSubset(ctx, order[1:], func(i int, s Shard) error {
				res, qs, err := s.(BoundedKNN).KNNWithinWithStatsCtx(ctx, q, k, bound)
				per[i], stats[i] = res, qs
				return err
			})
		}
	}
	out := MergeKNN(per, k)
	qs := gatherStats(stats, len(out))
	qs.Plan.ShardsTotal = len(f.shards)
	if staged {
		qs.Plan.Staged = true
		qs.Plan.FirstShard = order[0]
	}
	return out, qs, err
}

// KNNApprox scatters budgeted approximate kNN: every shard verifies at most
// maxVerify candidates, so the forest-wide verification budget is
// shards×maxVerify. The per-shard answers merge like exact kNN.
func (f *Forest) KNNApprox(q metric.Object, k, maxVerify int) ([]core.Result, error) {
	return f.KNNApproxCtx(context.Background(), q, k, maxVerify)
}

// KNNApproxCtx is KNNApprox honoring ctx, with the usual partial-result
// contract.
func (f *Forest) KNNApproxCtx(ctx context.Context, q metric.Object, k, maxVerify int) ([]core.Result, error) {
	per := make([][]core.Result, len(f.shards))
	err := f.scatter(ctx, func(i int, s Shard) error {
		res, err := s.KNNApproxCtx(ctx, q, k, maxVerify)
		per[i] = res
		return err
	})
	return MergeKNN(per, k), err
}

// KNNApproxWithStatsCtx is KNNApproxCtx, additionally gathering the merged
// per-shard QueryStats.
func (f *Forest) KNNApproxWithStatsCtx(ctx context.Context, q metric.Object, k, maxVerify int) ([]core.Result, core.QueryStats, error) {
	per := make([][]core.Result, len(f.shards))
	stats := make([]core.QueryStats, len(f.shards))
	err := f.scatter(ctx, func(i int, s Shard) error {
		res, qs, err := s.KNNApproxWithStatsCtx(ctx, q, k, maxVerify)
		per[i], stats[i] = res, qs
		return err
	})
	out := MergeKNN(per, k)
	return out, gatherStats(stats, len(out)), err
}

// mergeRange concatenates per-shard range answers into the canonical
// ascending-ID order.
func mergeRange(per [][]core.Result) []core.Result {
	var out []core.Result
	for _, res := range per {
		out = append(out, res...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.ID() < out[j].Object.ID() })
	return out
}

// MergeKNN merges per-shard top-k result sets into the global top-k under
// the total (dist, ID) order — the standard distributed-kNN reduction.
// Because the order is total, the reduction is associative: merging
// per-shard answers per node and then per cluster yields exactly the merge
// of all shards at once, which is what makes node-local pre-merging safe.
func MergeKNN(per [][]core.Result, k int) []core.Result {
	var all []core.Result
	for _, res := range per {
		all = append(all, res...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Object.ID() < all[j].Object.ID()
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// gatherStats merges per-shard stats and pins Results to the merged result
// count (per-shard Results sum to more than the global top-k keeps).
func gatherStats(stats []core.QueryStats, results int) core.QueryStats {
	var total core.QueryStats
	for _, qs := range stats {
		total.Merge(qs)
	}
	total.Results = results
	return total
}

// Join computes SJ(Q, O, ε) between two forests sharing one mapped space:
// every (Q-shard, O-shard) pair runs an independent SJA merge, all pairs in
// parallel — the shuffle-free join plan a shared-pivot partitioning allows.
// Both forests must consist of local trees (see JoinCtx).
func Join(fq, fo *Forest, eps float64) ([]core.JoinPair, error) {
	return JoinCtx(context.Background(), fq, fo, eps)
}

// JoinCtx is Join honoring ctx: shard pairs not yet dispatched when the
// context is canceled (or an earlier pair failed) never run, running pairs
// stop at the core join's cancellation checks, and the pairs gathered so far
// are returned with the first error (matching core.ErrCanceled on
// cancellation). Remote shards are not joinable from here — the cluster
// router decomposes a cluster-wide join into node-local pair joins instead
// (DESIGN.md §12).
func JoinCtx(ctx context.Context, fq, fo *Forest, eps float64) ([]core.JoinPair, error) {
	qTrees, err := fq.localTrees()
	if err != nil {
		return nil, fmt.Errorf("forest: join: %w", err)
	}
	oTrees, err := fo.localTrees()
	if err != nil {
		return nil, fmt.Errorf("forest: join: %w", err)
	}
	type task struct{ qi, oi int }
	var tasks []task
	for qi := range qTrees {
		for oi := range oTrees {
			tasks = append(tasks, task{qi, oi})
		}
	}
	limit := fq.parallel
	if limit <= 0 || limit > len(tasks) {
		limit = len(tasks)
	}
	sem := make(chan struct{}, limit)
	per := make([][]core.JoinPair, len(tasks))
	errs := make([]error, len(tasks))
	var failed atomic.Bool
	var wg sync.WaitGroup
dispatch:
	for ti, tk := range tasks {
		if failed.Load() || ctx.Err() != nil {
			break // stop issuing shard-pair work
		}
		select {
		case sem <- struct{}{}:
			if ctx.Err() != nil {
				break dispatch // canceled while waiting; the slot won the race
			}
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(ti int, tk task) {
			defer wg.Done()
			defer func() { <-sem }()
			per[ti], errs[ti] = core.JoinCtx(ctx, qTrees[tk.qi], oTrees[tk.oi], eps)
			if errs[ti] != nil {
				failed.Store(true)
			}
		}(ti, tk)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil && ctx.Err() != nil {
		firstErr = fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))
	}
	var out []core.JoinPair
	for _, pairs := range per {
		out = append(out, pairs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Q.ID() != out[j].Q.ID() {
			return out[i].Q.ID() < out[j].Q.ID()
		}
		return out[i].O.ID() < out[j].O.ID()
	})
	return out, firstErr
}

// BuildPartner builds a second forest over objs sharing f's pivot mapping
// and shard count, the precondition for Join. The curve must be Z-order,
// and f's shards must be local trees.
func (f *Forest) BuildPartner(objs []metric.Object, opts Options) (*Forest, error) {
	if f.trees[0] == nil {
		return nil, fmt.Errorf("forest: BuildPartner needs local shards")
	}
	if opts.Shards == 0 {
		opts.Shards = len(f.shards)
	}
	opts.Tree.ShareMapping = f.trees[0]
	opts.Tree.Curve = sfc.ZOrder
	return Build(objs, opts)
}

// SetBoundedKernels toggles threshold-aware distance evaluation (see
// core.Tree.SetBoundedKernels) on every local shard. Enabling is a no-op
// when the metric implements no bounded kernel; remote shards are governed
// by their owning node's configuration and are skipped.
func (f *Forest) SetBoundedKernels(on bool) {
	for _, t := range f.trees {
		if t != nil {
			t.SetBoundedKernels(on)
		}
	}
}

// ResetStats resets every local shard.
func (f *Forest) ResetStats() {
	for _, t := range f.trees {
		if t != nil {
			t.ResetStats()
		}
	}
}

// TakeStats aggregates per-shard counters — the total work across the
// "cluster". Remote shards contribute nothing here; their counters live
// with their owning node (see the cluster stats RPC).
func (f *Forest) TakeStats() core.Stats {
	var total core.Stats
	for _, t := range f.trees {
		if t == nil {
			continue
		}
		st := t.TakeStats()
		total.PageAccesses += st.PageAccesses
		total.DistanceComputations += st.DistanceComputations
	}
	return total
}
