// Package forest implements the paper's future-work direction ("extend the
// SPB-tree to different distributed environments"): a partitioned SPB-tree.
// Objects are hash-partitioned across shards, every shard is an independent
// SPB-tree over the *same* pivot mapping (so pruning quality matches the
// monolithic index), and queries scatter to all shards in parallel and
// gather-merge the answers.
//
// Each shard owns its page stores, caches and counters, exactly as separate
// nodes would; the scatter-gather layer is the part a networked deployment
// would replace with RPCs.
package forest

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// Options configures Build.
type Options struct {
	// Tree configures each shard (Distance and Codec are required;
	// IndexStore/DataStore must stay nil — every shard allocates its own).
	// Tree.Workers additionally enables intra-query parallel verification
	// inside each shard; it composes safely with Parallel because every
	// shard draws its verifiers non-blockingly from one process-wide pool,
	// so shard fan-out times per-shard workers cannot exceed that cap —
	// saturated shards simply verify serially.
	Tree core.Options
	// Shards is the partition count; 0 means 4.
	Shards int
	// Parallel bounds concurrent shard queries; 0 means all shards at once.
	Parallel int
}

// Forest is a partitioned SPB-tree.
type Forest struct {
	shards   []*core.Tree
	parallel int
}

// Build hash-partitions objs by id and builds one SPB-tree per shard. Shard
// 0 selects the pivot table; every other shard shares its mapping.
func Build(objs []metric.Object, opts Options) (*Forest, error) {
	if opts.Tree.IndexStore != nil || opts.Tree.DataStore != nil {
		return nil, fmt.Errorf("forest: per-shard stores are allocated internally; leave IndexStore/DataStore nil")
	}
	n := opts.Shards
	if n == 0 {
		n = 4
	}
	if n < 1 {
		return nil, fmt.Errorf("forest: Shards must be positive")
	}
	parts := make([][]metric.Object, n)
	for _, o := range objs {
		s := int(o.ID() % uint64(n))
		parts[s] = append(parts[s], o)
	}
	for i, p := range parts {
		if len(p) == 0 {
			return nil, fmt.Errorf("forest: shard %d is empty; fewer shards than distinct objects required", i)
		}
	}
	f := &Forest{parallel: opts.Parallel}
	first := opts.Tree
	t0, err := core.Build(parts[0], first)
	if err != nil {
		return nil, fmt.Errorf("forest: shard 0: %w", err)
	}
	f.shards = append(f.shards, t0)
	for i := 1; i < n; i++ {
		shOpts := opts.Tree
		shOpts.ShareMapping = t0
		t, err := core.Build(parts[i], shOpts)
		if err != nil {
			return nil, fmt.Errorf("forest: shard %d: %w", i, err)
		}
		f.shards = append(f.shards, t)
	}
	return f, nil
}

// Shards returns the per-shard trees (read-only use).
func (f *Forest) Shards() []*core.Tree { return f.shards }

// Len returns the total object count.
func (f *Forest) Len() int {
	n := 0
	for _, s := range f.shards {
		n += s.Len()
	}
	return n
}

// scatter runs fn for every shard, bounded by the parallelism limit, and
// returns the first error (in shard order). Dispatch is admission-controlled:
// once ctx is canceled or any shard has recorded an error, no further shard
// work is issued — already-running shards wind down through their own ctx
// checks, but queued ones never start. On cancellation with no shard error
// the returned error matches core.ErrCanceled.
func (f *Forest) scatter(ctx context.Context, fn func(i int, t *core.Tree) error) error {
	limit := f.parallel
	if limit <= 0 || limit > len(f.shards) {
		limit = len(f.shards)
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(f.shards))
	var failed atomic.Bool
	var wg sync.WaitGroup
dispatch:
	for i, t := range f.shards {
		if failed.Load() || ctx.Err() != nil {
			break // stop issuing work; un-dispatched shards never run
		}
		// Acquire the slot before spawning, so a full pipeline blocks the
		// dispatcher (not a goroutine per shard) and cancellation while
		// waiting abandons the remaining shards outright.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(i int, t *core.Tree) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(i, t); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))
	}
	return nil
}

// RangeQuery scatters RQ(q, shard, r) and concatenates the answers.
func (f *Forest) RangeQuery(q metric.Object, r float64) ([]core.Result, error) {
	return f.RangeQueryCtx(context.Background(), q, r)
}

// RangeQueryCtx is RangeQuery honoring ctx: shards not yet dispatched when
// the context is canceled never run, in-flight shards stop at their own
// cancellation checks, and the answers gathered so far are returned with an
// error matching core.ErrCanceled.
func (f *Forest) RangeQueryCtx(ctx context.Context, q metric.Object, r float64) ([]core.Result, error) {
	per := make([][]core.Result, len(f.shards))
	err := f.scatter(ctx, func(i int, t *core.Tree) error {
		res, err := t.RangeSearchCtx(ctx, q, r)
		per[i] = res
		return err
	})
	var out []core.Result
	for _, res := range per {
		out = append(out, res...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.ID() < out[j].Object.ID() })
	return out, err
}

// KNN scatters kNN(q, k) to every shard and merges the per-shard top-k sets
// into the global top-k — the standard distributed-kNN reduction.
func (f *Forest) KNN(q metric.Object, k int) ([]core.Result, error) {
	return f.KNNCtx(context.Background(), q, k)
}

// KNNCtx is KNN honoring ctx, with the same partial-result contract as
// RangeQueryCtx: whatever the finished shards produced, merged and cut to k,
// plus an error matching core.ErrCanceled.
func (f *Forest) KNNCtx(ctx context.Context, q metric.Object, k int) ([]core.Result, error) {
	per := make([][]core.Result, len(f.shards))
	err := f.scatter(ctx, func(i int, t *core.Tree) error {
		res, err := t.KNNCtx(ctx, q, k)
		per[i] = res
		return err
	})
	var all []core.Result
	for _, res := range per {
		all = append(all, res...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Object.ID() < all[j].Object.ID()
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, err
}

// Join computes SJ(Q, O, ε) between two forests sharing one mapped space:
// every (Q-shard, O-shard) pair runs an independent SJA merge, all pairs in
// parallel — the shuffle-free join plan a shared-pivot partitioning allows.
func Join(fq, fo *Forest, eps float64) ([]core.JoinPair, error) {
	return JoinCtx(context.Background(), fq, fo, eps)
}

// JoinCtx is Join honoring ctx: shard pairs not yet dispatched when the
// context is canceled (or an earlier pair failed) never run, running pairs
// stop at the core join's cancellation checks, and the pairs gathered so far
// are returned with the first error (matching core.ErrCanceled on
// cancellation).
func JoinCtx(ctx context.Context, fq, fo *Forest, eps float64) ([]core.JoinPair, error) {
	type task struct{ qi, oi int }
	var tasks []task
	for qi := range fq.shards {
		for oi := range fo.shards {
			tasks = append(tasks, task{qi, oi})
		}
	}
	limit := fq.parallel
	if limit <= 0 || limit > len(tasks) {
		limit = len(tasks)
	}
	sem := make(chan struct{}, limit)
	per := make([][]core.JoinPair, len(tasks))
	errs := make([]error, len(tasks))
	var failed atomic.Bool
	var wg sync.WaitGroup
dispatch:
	for ti, tk := range tasks {
		if failed.Load() || ctx.Err() != nil {
			break // stop issuing shard-pair work
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(ti int, tk task) {
			defer wg.Done()
			defer func() { <-sem }()
			per[ti], errs[ti] = core.JoinCtx(ctx, fq.shards[tk.qi], fo.shards[tk.oi], eps)
			if errs[ti] != nil {
				failed.Store(true)
			}
		}(ti, tk)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil && ctx.Err() != nil {
		firstErr = fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))
	}
	var out []core.JoinPair
	for _, pairs := range per {
		out = append(out, pairs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Q.ID() != out[j].Q.ID() {
			return out[i].Q.ID() < out[j].Q.ID()
		}
		return out[i].O.ID() < out[j].O.ID()
	})
	return out, firstErr
}

// BuildPartner builds a second forest over objs sharing f's pivot mapping
// and shard count, the precondition for Join. The curve must be Z-order.
func (f *Forest) BuildPartner(objs []metric.Object, opts Options) (*Forest, error) {
	if opts.Shards == 0 {
		opts.Shards = len(f.shards)
	}
	opts.Tree.ShareMapping = f.shards[0]
	opts.Tree.Curve = sfc.ZOrder
	return Build(objs, opts)
}

// SetBoundedKernels toggles threshold-aware distance evaluation (see
// core.Tree.SetBoundedKernels) on every shard. Enabling is a no-op when the
// metric implements no bounded kernel.
func (f *Forest) SetBoundedKernels(on bool) {
	for _, s := range f.shards {
		s.SetBoundedKernels(on)
	}
}

// ResetStats resets every shard.
func (f *Forest) ResetStats() {
	for _, s := range f.shards {
		s.ResetStats()
	}
}

// TakeStats aggregates per-shard counters — the total work across the
// "cluster".
func (f *Forest) TakeStats() core.Stats {
	var total core.Stats
	for _, s := range f.shards {
		st := s.TakeStats()
		total.PageAccesses += st.PageAccesses
		total.DistanceComputations += st.DistanceComputations
	}
	return total
}
