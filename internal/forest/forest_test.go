package forest

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/sfc"
)

func vectors(n, dim int, seed int64, base uint64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]metric.Object, n)
	for i := range objs {
		coords := make([]float64, dim)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		objs[i] = metric.NewVector(base+uint64(i), coords)
	}
	return objs
}

func bfRange(objs []metric.Object, q metric.Object, r float64, d metric.DistanceFunc) int {
	n := 0
	for _, o := range objs {
		if d.Distance(q, o) <= r {
			n++
		}
	}
	return n
}

func bfKNN(objs []metric.Object, q metric.Object, k int, d metric.DistanceFunc) []float64 {
	ds := make([]float64, len(objs))
	for i, o := range objs {
		ds[i] = d.Distance(q, o)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestForestMatchesBruteForce(t *testing.T) {
	objs := vectors(900, 5, 1, 0)
	dist := metric.L2(5)
	f, err := Build(objs, Options{
		Tree:   core.Options{Distance: dist, Codec: metric.VectorCodec{Dim: 5}, Seed: 2},
		Shards: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 900 || len(f.Shards()) != 5 {
		t.Fatalf("Len=%d shards=%d", f.Len(), len(f.Shards()))
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		q := objs[rng.Intn(len(objs))]
		r := 0.1 + 0.2*rng.Float64()
		got, err := f.RangeQuery(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != bfRange(objs, q, r, dist) {
			t.Fatalf("range mismatch at r=%v", r)
		}
		k := 1 + rng.Intn(16)
		nn, err := f.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bfKNN(objs, q, k, dist)
		if len(nn) != len(want) {
			t.Fatalf("kNN returned %d, want %d", len(nn), len(want))
		}
		for i := range nn {
			if math.Abs(nn[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("kNN dist[%d] = %v, want %v", i, nn[i].Dist, want[i])
			}
		}
	}
}

func TestForestJoin(t *testing.T) {
	Q := vectors(300, 4, 4, 0)
	O := vectors(350, 4, 5, 100000)
	dist := metric.L2(4)
	fq, err := Build(Q, Options{
		Tree:   core.Options{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, Curve: sfc.ZOrder, Seed: 2},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := fq.BuildPartner(O, Options{
		Tree:   core.Options{Distance: dist, Codec: metric.VectorCodec{Dim: 4}},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.07 * dist.MaxDistance()
	got, err := Join(fq, fo, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, q := range Q {
		for _, o := range O {
			if dist.Distance(q, o) <= eps {
				want++
			}
		}
	}
	if len(got) != want {
		t.Fatalf("forest join: %d pairs, want %d", len(got), want)
	}
	seen := map[[2]uint64]bool{}
	for _, p := range got {
		key := [2]uint64{p.Q.ID(), p.O.ID()}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	}
}

func TestForestParallelismLimit(t *testing.T) {
	objs := vectors(400, 3, 6, 0)
	dist := metric.L2(3)
	f, err := Build(objs, Options{
		Tree:     core.Options{Distance: dist, Codec: metric.VectorCodec{Dim: 3}},
		Shards:   8,
		Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.RangeQuery(objs[0], 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != bfRange(objs, objs[0], 0.3, dist) {
		t.Fatal("range mismatch under bounded parallelism")
	}
}

func TestForestStatsAggregate(t *testing.T) {
	objs := vectors(600, 4, 7, 0)
	f, err := Build(objs, Options{
		Tree:   core.Options{Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4}},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.ResetStats()
	if _, err := f.KNN(objs[0], 8); err != nil {
		t.Fatal(err)
	}
	st := f.TakeStats()
	if st.PageAccesses == 0 || st.DistanceComputations == 0 {
		t.Errorf("aggregate stats: %+v", st)
	}
}

func TestForestValidation(t *testing.T) {
	objs := vectors(10, 2, 8, 0)
	opts := core.Options{Distance: metric.L2(2), Codec: metric.VectorCodec{Dim: 2}}
	if _, err := Build(objs, Options{Tree: opts, Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := Build(objs, Options{Tree: opts, Shards: 100}); err == nil {
		t.Error("more shards than objects accepted")
	}
	withStore := opts
	withStore.IndexStore = page.NewMemStore()
	if _, err := Build(objs, Options{Tree: withStore, Shards: 2}); err == nil {
		t.Error("explicit store accepted")
	}
}
