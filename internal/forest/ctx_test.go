package forest

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"spbtree/internal/core"
	"spbtree/internal/metric"
)

// TestScatterStopsOnCancel: shards not yet dispatched when the context is
// canceled never run — the scatter loop must stop issuing work, not fire one
// goroutine per shard regardless.
func TestScatterStopsOnCancel(t *testing.T) {
	objs := vectors(600, 3, 11, 0)
	f, err := Build(objs, Options{
		Tree: core.Options{
			Distance: metric.L2(3), Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2,
		},
		Shards:   6,
		Parallel: 1, // serialize dispatch so cancellation lands between shards
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var launched atomic.Int32
	err = f.scatter(ctx, func(i int, s Shard) error {
		if launched.Add(1) == 1 {
			cancel() // cancel while the first shard is still running
		}
		return nil
	})
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n := launched.Load(); n > 2 {
		t.Fatalf("%d shards launched after cancellation (dispatch did not stop)", n)
	}
}

// TestScatterNoDispatchAfterCancelObserved: once cancellation is observable,
// not one more shard may be dispatched. With Parallel=1 and shard 0 canceling
// before it returns, ctx.Done() is ready strictly before the slot frees; the
// dispatcher waiting in its select then has both cases ready, and Go picks
// between ready cases at random — the old loop would dispatch shard 1 on the
// sem-win half of those races. The fixed loop re-checks ctx after winning the
// slot, so shard 0 must remain the only shard that ever ran, every iteration.
func TestScatterNoDispatchAfterCancelObserved(t *testing.T) {
	objs := vectors(800, 3, 17, 0)
	f, err := Build(objs, Options{
		Tree: core.Options{
			Distance: metric.L2(3), Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2,
		},
		Shards:   8,
		Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 50; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		var launched atomic.Int32
		err := f.scatter(ctx, func(i int, s Shard) error {
			launched.Add(1)
			cancel() // observable before this shard's slot frees
			return nil
		})
		cancel()
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("iter %d: err = %v, want ErrCanceled", iter, err)
		}
		if n := launched.Load(); n != 1 {
			t.Fatalf("iter %d: %d shards ran after cancellation was observable, want exactly 1", iter, n)
		}
	}
}

// TestScatterStopsOnError: once one shard fails, un-dispatched shards never
// start, and the first error (in shard order) is returned.
func TestScatterStopsOnError(t *testing.T) {
	objs := vectors(600, 3, 12, 0)
	f, err := Build(objs, Options{
		Tree: core.Options{
			Distance: metric.L2(3), Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2,
		},
		Shards:   6,
		Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("shard exploded")
	var launched atomic.Int32
	err = f.scatter(context.Background(), func(i int, s Shard) error {
		launched.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the shard error", err)
	}
	// With Parallel=1 the dispatcher re-checks the failure flag before each
	// shard; at most the shard already in flight alongside the failure runs.
	if n := launched.Load(); n > 2 {
		t.Fatalf("%d shards launched after a shard error", n)
	}
}

// TestForestQueryCtxPartials: forest queries under an expired context return
// gathered partials plus ErrCanceled, matching the single-tree contract.
func TestForestQueryCtxPartials(t *testing.T) {
	objs := vectors(500, 3, 13, 0)
	f, err := Build(objs, Options{
		Tree: core.Options{
			Distance: metric.L2(3), Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2,
		},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.RangeQueryCtx(ctx, objs[0], 0.3); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("range: err = %v, want ErrCanceled", err)
	}
	if _, err := f.KNNCtx(ctx, objs[0], 5); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("knn: err = %v, want ErrCanceled", err)
	}

	// Background contexts stay equivalent to the plain entry points.
	plain, err := f.RangeQuery(objs[0], 0.3)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := f.RangeQueryCtx(context.Background(), objs[0], 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(withCtx) {
		t.Fatalf("ctx variant disagrees: %d vs %d", len(plain), len(withCtx))
	}
}
