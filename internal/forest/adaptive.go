package forest

import (
	"context"
	"fmt"
	"math"
	"sort"

	"spbtree/internal/core"
	"spbtree/internal/metric"
)

// This file is the forest side of DESIGN.md §15: shard pruning for range
// queries and the two-stage bounded kNN scatter. Both are planning-only —
// they change which shards run and with what bound, never what the merged
// answer contains. Range pruning skips shards whose per-pivot MBB summary
// proves they cannot intersect the query ball; staged kNN visits the most
// promising shard first and probes the rest with its k-th distance as a
// seed bound (sound because every shard answers the canonical (dist, ID)
// top-k — §15.1/§15.2). Shards without the planning capabilities, and any
// hint failure, degrade to the flat scatter.

// Planner is the optional shard capability for adaptive scatter planning:
// a shard that can report its relevance and predicted cost for a query
// without executing it. Local trees implement it; remote cluster handles
// answer from the owning node's summaries.
type Planner interface {
	// RangeHint reports the shard's relevance for RQ(q, r); Prunable proves
	// the shard contributes nothing.
	RangeHint(q metric.Object, r float64) (core.ShardHint, error)
	// KNNHint reports the shard's relevance and predicted cost for kNN(q, k).
	KNNHint(q metric.Object, k int) (core.ShardHint, error)
}

// BoundedKNN is the optional shard capability for seeded kNN: the canonical
// top-k of {o : d(q,o) ≤ bound} (core.Tree.KNNWithin), which the staged
// scatter's second stage probes shards with.
type BoundedKNN interface {
	KNNWithinCtx(ctx context.Context, q metric.Object, k int, bound float64) ([]core.Result, error)
	KNNWithinWithStatsCtx(ctx context.Context, q metric.Object, k int, bound float64) ([]core.Result, core.QueryStats, error)
}

// Local trees provide both capabilities.
var (
	_ Planner    = (*core.Tree)(nil)
	_ BoundedKNN = (*core.Tree)(nil)
)

// SetAdaptive toggles the §15 adaptive scatter (shard pruning and staged
// kNN); on by default. Off restores the unconditional flat scatter — the
// escape hatch benchmarks compare against, and the results are byte-identical
// either way. Not safe to toggle concurrently with queries (like the other
// forest-wide configuration setters).
func (f *Forest) SetAdaptive(on bool) { f.adaptive = on }

// Adaptive reports whether the adaptive scatter is enabled.
func (f *Forest) Adaptive() bool { return f.adaptive }

// rangePlan decides which shards a range query must visit. It returns the
// visit list and how many shards were proven irrelevant; on any missing
// capability or hint failure the shard stays in the visit list — pruning
// only ever skips shards whose summary box provably misses the query ball.
func (f *Forest) rangePlan(q metric.Object, r float64) (visit []int, pruned int) {
	visit = make([]int, 0, len(f.shards))
	if !f.adaptive {
		for i := range f.shards {
			visit = append(visit, i)
		}
		return visit, 0
	}
	for i, s := range f.shards {
		p, ok := s.(Planner)
		if !ok {
			visit = append(visit, i)
			continue
		}
		h, err := p.RangeHint(q, r)
		if err != nil || !h.Prunable {
			visit = append(visit, i)
			continue
		}
		pruned++
	}
	return visit, pruned
}

// knnPlan orders shards for the staged kNN visit: ascending box MinDist
// (how close the shard's contents can possibly be), predicted distance work
// as the tie-break, shard index last for determinism. Staging applies only
// when every shard supports both planning capabilities and every hint
// succeeds — a mixed or failing forest falls back to the flat scatter, which
// returns the identical answer.
func (f *Forest) knnPlan(q metric.Object, k int) (order []int, staged bool) {
	if !f.adaptive || len(f.shards) < 2 {
		return nil, false
	}
	type ranked struct {
		i int
		h core.ShardHint
	}
	rs := make([]ranked, 0, len(f.shards))
	for i, s := range f.shards {
		p, ok := s.(Planner)
		if !ok {
			return nil, false
		}
		if _, ok := s.(BoundedKNN); !ok {
			return nil, false
		}
		h, err := p.KNNHint(q, k)
		if err != nil {
			return nil, false
		}
		rs = append(rs, ranked{i, h})
	}
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].h.MinDist != rs[b].h.MinDist {
			return rs[a].h.MinDist < rs[b].h.MinDist
		}
		ae, be := rs[a].h, rs[b].h
		if ae.Estimated && be.Estimated && ae.EDC != be.EDC {
			return ae.EDC < be.EDC
		}
		return rs[a].i < rs[b].i
	})
	order = make([]int, len(rs))
	for i, r := range rs {
		order[i] = r.i
	}
	return order, true
}

// stageBound extracts the seed bound for the staged scatter's second stage:
// the first shard's k-th distance when it filled k, +∞ otherwise (a shard
// smaller than k bounds nothing).
func stageBound(res []core.Result, k int) float64 {
	if len(res) == k {
		return res[k-1].Dist
	}
	return math.Inf(1)
}

// KNNWithinCtx answers the canonical top-k of {o : d(q,o) ≤ bound} across
// every shard: a flat scatter of per-shard bounded probes merged under the
// total (dist, ID) order. This is the receiving half of a staged scatter —
// the cluster router sends its stage-1 bound here (DESIGN.md §15.4) — so it
// does no staging of its own. Every shard must support BoundedKNN.
func (f *Forest) KNNWithinCtx(ctx context.Context, q metric.Object, k int, bound float64) ([]core.Result, error) {
	per := make([][]core.Result, len(f.shards))
	err := f.scatter(ctx, func(i int, s Shard) error {
		b, ok := s.(BoundedKNN)
		if !ok {
			return fmt.Errorf("forest: shard %d does not support bounded kNN", i)
		}
		res, err := b.KNNWithinCtx(ctx, q, k, bound)
		per[i] = res
		return err
	})
	return MergeKNN(per, k), err
}

// KNNWithinWithStatsCtx is KNNWithinCtx, additionally gathering the merged
// per-shard QueryStats.
func (f *Forest) KNNWithinWithStatsCtx(ctx context.Context, q metric.Object, k int, bound float64) ([]core.Result, core.QueryStats, error) {
	per := make([][]core.Result, len(f.shards))
	stats := make([]core.QueryStats, len(f.shards))
	err := f.scatter(ctx, func(i int, s Shard) error {
		b, ok := s.(BoundedKNN)
		if !ok {
			return fmt.Errorf("forest: shard %d does not support bounded kNN", i)
		}
		res, qs, err := b.KNNWithinWithStatsCtx(ctx, q, k, bound)
		per[i], stats[i] = res, qs
		return err
	})
	out := MergeKNN(per, k)
	return out, gatherStats(stats, len(out)), err
}

// HintRange returns per-shard range hints for RQ(q, r), in shard order — the
// node-side answer to the cluster router's hint RPC. Any shard lacking the
// Planner capability, or any hint error, fails the whole call: the remote
// planner must fall back to the flat scatter rather than plan on partial
// information.
func (f *Forest) HintRange(q metric.Object, r float64) ([]core.ShardHint, error) {
	return f.hints(func(p Planner) (core.ShardHint, error) { return p.RangeHint(q, r) })
}

// HintKNN is HintRange for kNN(q, k).
func (f *Forest) HintKNN(q metric.Object, k int) ([]core.ShardHint, error) {
	return f.hints(func(p Planner) (core.ShardHint, error) { return p.KNNHint(q, k) })
}

func (f *Forest) hints(hint func(Planner) (core.ShardHint, error)) ([]core.ShardHint, error) {
	out := make([]core.ShardHint, len(f.shards))
	for i, s := range f.shards {
		p, ok := s.(Planner)
		if !ok {
			return nil, fmt.Errorf("forest: shard %d cannot answer planning hints", i)
		}
		h, err := hint(p)
		if err != nil {
			return nil, err
		}
		out[i] = h
	}
	return out, nil
}
