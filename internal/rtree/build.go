package rtree

import (
	"fmt"
	"math"
	"sort"

	"spbtree/internal/page"
)

// BulkLoad builds the tree from points with STR (sort-tile-recursive)
// packing: points are recursively sorted and sliced dimension by dimension
// into leaf-sized tiles, then upper levels pack consecutive rectangles.
func (t *Tree) BulkLoad(points [][]float64, vals []uint64) error {
	if t.hasRoot {
		return fmt.Errorf("rtree: BulkLoad on non-empty tree")
	}
	if len(points) != len(vals) {
		return fmt.Errorf("rtree: %d points but %d vals", len(points), len(vals))
	}
	if len(points) == 0 {
		return nil
	}
	for _, p := range points {
		if len(p) != t.dims {
			return fmt.Errorf("rtree: point dim %d, tree dim %d", len(p), t.dims)
		}
	}
	entries := make([]leafEntry, len(points))
	for i := range points {
		entries[i] = leafEntry{point: points[i], val: vals[i]}
	}
	tiles := strTile(entries, t.dims, 0, t.maxLeaf)

	level := make([]branch, 0, len(tiles))
	for _, tile := range tiles {
		n, err := t.allocNode(true)
		if err != nil {
			return err
		}
		n.points = tile
		if err := t.writeNode(n); err != nil {
			return err
		}
		level = append(level, branch{r: t.nodeRect(n), child: n.page})
	}
	t.height = 1
	for len(level) > 1 {
		var next []branch
		for i := 0; i < len(level); i += t.maxInternal {
			end := i + t.maxInternal
			if end > len(level) {
				end = len(level)
			}
			n, err := t.allocNode(false)
			if err != nil {
				return err
			}
			n.branches = append(n.branches, level[i:end]...)
			if err := t.writeNode(n); err != nil {
				return err
			}
			next = append(next, branch{r: t.nodeRect(n), child: n.page})
		}
		level = next
		t.height++
	}
	t.rootPage = level[0].child
	t.rootRect = level[0].r
	t.hasRoot = true
	t.count = len(points)
	return nil
}

// strTile recursively slices entries into tiles of at most cap points.
func strTile(entries []leafEntry, dims, dim, cap int) [][]leafEntry {
	if len(entries) <= cap {
		return [][]leafEntry{entries}
	}
	if dim == dims-1 {
		sortByDim(entries, dim)
		var out [][]leafEntry
		for i := 0; i < len(entries); i += cap {
			end := i + cap
			if end > len(entries) {
				end = len(entries)
			}
			out = append(out, entries[i:end])
		}
		return out
	}
	sortByDim(entries, dim)
	tilesNeeded := float64(len(entries)) / float64(cap)
	slabs := int(math.Ceil(math.Pow(tilesNeeded, 1/float64(dims-dim))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(entries) + slabs - 1) / slabs
	var out [][]leafEntry
	for i := 0; i < len(entries); i += slabSize {
		end := i + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		out = append(out, strTile(entries[i:end], dims, dim+1, cap)...)
	}
	return out
}

func sortByDim(entries []leafEntry, dim int) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].point[dim] < entries[j].point[dim] })
}

// Insert adds one point: least-enlargement descent with linear split.
func (t *Tree) Insert(point []float64, val uint64) error {
	if len(point) != t.dims {
		return fmt.Errorf("rtree: point dim %d, tree dim %d", len(point), t.dims)
	}
	if !t.hasRoot {
		n, err := t.allocNode(true)
		if err != nil {
			return err
		}
		n.points = []leafEntry{{point: point, val: val}}
		if err := t.writeNode(n); err != nil {
			return err
		}
		t.rootPage = n.page
		t.rootRect = t.nodeRect(n)
		t.hasRoot = true
		t.height = 1
		t.count = 1
		return nil
	}
	split, err := t.insertAt(t.rootPage, point, val)
	if err != nil {
		return err
	}
	if split != nil {
		root, err := t.allocNode(false)
		if err != nil {
			return err
		}
		root.branches = split
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.rootPage = root.page
		t.rootRect = t.nodeRect(root)
		t.height++
	} else {
		expandPoint(&t.rootRect, point)
	}
	t.count++
	return nil
}

// insertAt returns two replacement branches when the node split.
func (t *Tree) insertAt(pg page.ID, point []float64, val uint64) ([]branch, error) {
	n, err := t.readNode(pg)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		n.points = append(n.points, leafEntry{point: point, val: val})
		if len(n.points) <= t.maxLeaf {
			return nil, t.writeNode(n)
		}
		return t.splitLeaf(n)
	}
	best, bestE := 0, math.Inf(1)
	for i, b := range n.branches {
		if e := enlargement(b.r, point); e < bestE {
			best, bestE = i, e
		}
	}
	split, err := t.insertAt(n.branches[best].child, point, val)
	if err != nil {
		return nil, err
	}
	if split != nil {
		n.branches[best] = split[0]
		n.branches = append(n.branches, split[1])
	} else {
		expandPoint(&n.branches[best].r, point)
	}
	if len(n.branches) <= t.maxInternal {
		return nil, t.writeNode(n)
	}
	return t.splitInternal(n)
}

// splitLeaf partitions an overflowing leaf along its widest dimension.
func (t *Tree) splitLeaf(n *node) ([]branch, error) {
	dim := t.widestDimPoints(n.points)
	sortByDim(n.points, dim)
	mid := len(n.points) / 2
	right, err := t.allocNode(true)
	if err != nil {
		return nil, err
	}
	right.points = append(right.points, n.points[mid:]...)
	n.points = n.points[:mid]
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	return []branch{
		{r: t.nodeRect(n), child: n.page},
		{r: t.nodeRect(right), child: right.page},
	}, nil
}

func (t *Tree) splitInternal(n *node) ([]branch, error) {
	dim := t.widestDimBranches(n.branches)
	sort.Slice(n.branches, func(i, j int) bool { return n.branches[i].r.lo[dim] < n.branches[j].r.lo[dim] })
	mid := len(n.branches) / 2
	right, err := t.allocNode(false)
	if err != nil {
		return nil, err
	}
	right.branches = append(right.branches, n.branches[mid:]...)
	n.branches = n.branches[:mid]
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	return []branch{
		{r: t.nodeRect(n), child: n.page},
		{r: t.nodeRect(right), child: right.page},
	}, nil
}

func (t *Tree) widestDimPoints(points []leafEntry) int {
	best, span := 0, -1.0
	for d := 0; d < t.dims; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, e := range points {
			if e.point[d] < lo {
				lo = e.point[d]
			}
			if e.point[d] > hi {
				hi = e.point[d]
			}
		}
		if hi-lo > span {
			best, span = d, hi-lo
		}
	}
	return best
}

func (t *Tree) widestDimBranches(branches []branch) int {
	best, span := 0, -1.0
	for d := 0; d < t.dims; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, b := range branches {
			if b.r.lo[d] < lo {
				lo = b.r.lo[d]
			}
			if b.r.hi[d] > hi {
				hi = b.r.hi[d]
			}
		}
		if hi-lo > span {
			best, span = d, hi-lo
		}
	}
	return best
}
