package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"spbtree/internal/page"
)

// On-disk node layout:
//
//	byte 0    flags: bit 0 = leaf
//	bytes 1-2 entry count
//	bytes 3-7 reserved
//	leaf entry:   val u64 | point dims×f64
//	branch entry: child u32 | lo dims×f64 | hi dims×f64
const nodeHeader = 8

func leafEntryBytes(dims int) int { return 8 + 8*dims }
func branchBytes(dims int) int    { return 4 + 16*dims }

func (t *Tree) writeNode(n *node) error {
	var buf [page.Size]byte
	if n.leaf {
		buf[0] = 1
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.points)))
		off := nodeHeader
		for _, e := range n.points {
			binary.LittleEndian.PutUint64(buf[off:], e.val)
			off += 8
			for _, c := range e.point {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(c))
				off += 8
			}
		}
	} else {
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.branches)))
		off := nodeHeader
		for _, b := range n.branches {
			binary.LittleEndian.PutUint32(buf[off:], uint32(b.child))
			off += 4
			for _, c := range b.r.lo {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(c))
				off += 8
			}
			for _, c := range b.r.hi {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(c))
				off += 8
			}
		}
	}
	if err := t.store.Write(n.page, buf[:]); err != nil {
		return fmt.Errorf("rtree: write node: %w", err)
	}
	return nil
}

func (t *Tree) readNode(pg page.ID) (*node, error) {
	var buf [page.Size]byte
	if err := t.store.Read(pg, buf[:]); err != nil {
		return nil, fmt.Errorf("rtree: read node: %w", err)
	}
	n := &node{page: pg, leaf: buf[0]&1 != 0}
	cnt := int(binary.LittleEndian.Uint16(buf[1:3]))
	off := nodeHeader
	if n.leaf {
		if cnt > (page.Size-nodeHeader)/leafEntryBytes(t.dims) {
			return nil, fmt.Errorf("rtree: corrupt leaf %d: count %d", pg, cnt)
		}
		n.points = make([]leafEntry, cnt)
		for i := range n.points {
			n.points[i].val = binary.LittleEndian.Uint64(buf[off:])
			off += 8
			pt := make([]float64, t.dims)
			for j := range pt {
				pt[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			n.points[i].point = pt
		}
	} else {
		if cnt > (page.Size-nodeHeader)/branchBytes(t.dims) {
			return nil, fmt.Errorf("rtree: corrupt node %d: count %d", pg, cnt)
		}
		n.branches = make([]branch, cnt)
		for i := range n.branches {
			n.branches[i].child = page.ID(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			lo := make([]float64, t.dims)
			hi := make([]float64, t.dims)
			for j := range lo {
				lo[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			for j := range hi {
				hi[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			n.branches[i].r = rect{lo: lo, hi: hi}
		}
	}
	return n, nil
}

func (t *Tree) allocNode(leaf bool) (*node, error) {
	pg, err := t.store.Alloc()
	if err != nil {
		return nil, fmt.Errorf("rtree: alloc: %w", err)
	}
	return &node{page: pg, leaf: leaf}, nil
}

// nodeRect computes a node's bounding rectangle.
func (t *Tree) nodeRect(n *node) rect {
	r := rect{lo: make([]float64, t.dims), hi: make([]float64, t.dims)}
	for i := range r.lo {
		r.lo[i] = math.Inf(1)
		r.hi[i] = math.Inf(-1)
	}
	if n.leaf {
		for _, e := range n.points {
			expandPoint(&r, e.point)
		}
	} else {
		for _, b := range n.branches {
			expandRect(&r, b.r)
		}
	}
	return r
}

func expandPoint(r *rect, p []float64) {
	for i := range p {
		if p[i] < r.lo[i] {
			r.lo[i] = p[i]
		}
		if p[i] > r.hi[i] {
			r.hi[i] = p[i]
		}
	}
}

func expandRect(r *rect, o rect) {
	for i := range o.lo {
		if o.lo[i] < r.lo[i] {
			r.lo[i] = o.lo[i]
		}
		if o.hi[i] > r.hi[i] {
			r.hi[i] = o.hi[i]
		}
	}
}

// enlargement returns how much r's perimeter must grow to cover p.
func enlargement(r rect, p []float64) float64 {
	var e float64
	for i := range p {
		if p[i] < r.lo[i] {
			e += r.lo[i] - p[i]
		}
		if p[i] > r.hi[i] {
			e += p[i] - r.hi[i]
		}
	}
	return e
}
