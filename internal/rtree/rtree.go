// Package rtree implements a disk-based R-tree over fixed-dimension float64
// points with uint64 payloads. It is the substrate of the OmniR-tree
// baseline (internal/omni), which indexes the pivot-mapped "Omni
// coordinates" of every object. Construction uses STR (sort-tile-recursive)
// bulk-loading; single inserts use least-enlargement descent with a linear
// split, enough for the paper's update experiment (Table 7).
package rtree

import (
	"container/heap"
	"fmt"
	"math"

	"spbtree/internal/page"
)

// Options configures a Tree.
type Options struct {
	// Dims is the point dimensionality; required.
	Dims int
	// Store backs the tree; nil selects a fresh in-memory store.
	Store page.Store
	// CacheSize is the buffer-cache capacity in pages (default 32; negative
	// disables).
	CacheSize int
	// MaxLeaf / MaxInternal override fan-outs for tests; 0 = page capacity.
	MaxLeaf, MaxInternal int
}

// Tree is a disk-based R-tree.
type Tree struct {
	store *page.Cache
	dims  int

	maxLeaf, maxInternal int
	minLeaf, minInternal int

	rootPage page.ID
	rootRect rect
	hasRoot  bool
	height   int
	count    int
}

const noPage = ^page.ID(0)

// rect is an axis-aligned box; lo and hi have Dims entries.
type rect struct {
	lo, hi []float64
}

// leafEntry is a stored point with payload.
type leafEntry struct {
	point []float64
	val   uint64
}

// branch references a child node.
type branch struct {
	r     rect
	child page.ID
}

type node struct {
	page     page.ID
	leaf     bool
	points   []leafEntry
	branches []branch
}

// New creates an empty tree.
func New(opts Options) (*Tree, error) {
	if opts.Dims <= 0 {
		return nil, fmt.Errorf("rtree: Dims must be positive")
	}
	store := opts.Store
	if store == nil {
		store = page.NewMemStore()
	}
	cs := opts.CacheSize
	if cs == 0 {
		cs = 32
	}
	if cs < 0 {
		cs = 0
	}
	t := &Tree{
		store:    page.NewCache(store, cs),
		dims:     opts.Dims,
		rootPage: noPage,
	}
	t.maxLeaf = opts.MaxLeaf
	if t.maxLeaf == 0 {
		t.maxLeaf = (page.Size - nodeHeader) / leafEntryBytes(opts.Dims)
	}
	t.maxInternal = opts.MaxInternal
	if t.maxInternal == 0 {
		t.maxInternal = (page.Size - nodeHeader) / branchBytes(opts.Dims)
	}
	if t.maxLeaf < 2 || t.maxInternal < 2 {
		return nil, fmt.Errorf("rtree: fan-out too small (leaf %d, internal %d)", t.maxLeaf, t.maxInternal)
	}
	if t.maxLeaf > (page.Size-nodeHeader)/leafEntryBytes(opts.Dims) ||
		t.maxInternal > (page.Size-nodeHeader)/branchBytes(opts.Dims) {
		return nil, fmt.Errorf("rtree: fan-out exceeds page capacity")
	}
	t.minLeaf = t.maxLeaf * 2 / 5 // the customary 40% minimum fill
	if t.minLeaf < 1 {
		t.minLeaf = 1
	}
	t.minInternal = t.maxInternal * 2 / 5
	if t.minInternal < 1 {
		t.minInternal = 1
	}
	return t, nil
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.count }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Store exposes the underlying cache for stats accounting.
func (t *Tree) Store() *page.Cache { return t.store }

// NumPages returns the allocated page count.
func (t *Tree) NumPages() int { return t.store.NumPages() }

// Search invokes fn for every stored point inside the inclusive box
// [lo, hi].
func (t *Tree) Search(lo, hi []float64, fn func(point []float64, val uint64) error) error {
	if !t.hasRoot {
		return nil
	}
	return t.search(t.rootPage, lo, hi, fn)
}

func (t *Tree) search(pg page.ID, lo, hi []float64, fn func([]float64, uint64) error) error {
	n, err := t.readNode(pg)
	if err != nil {
		return err
	}
	if n.leaf {
		for _, e := range n.points {
			if pointInBox(e.point, lo, hi) {
				if err := fn(e.point, e.val); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, b := range n.branches {
		if boxesIntersect(b.r.lo, b.r.hi, lo, hi) {
			if err := t.search(b.child, lo, hi, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

func pointInBox(p, lo, hi []float64) bool {
	for i := range p {
		if p[i] < lo[i] || p[i] > hi[i] {
			return false
		}
	}
	return true
}

func boxesIntersect(alo, ahi, blo, bhi []float64) bool {
	for i := range alo {
		if ahi[i] < blo[i] || bhi[i] < alo[i] {
			return false
		}
	}
	return true
}

// Norm selects the MINDIST metric of the nearest-neighbor iterator.
type Norm int

const (
	// LInf is the Chebyshev norm — the metric of the pivot-mapped space.
	LInf Norm = iota
	// L2 is the Euclidean norm.
	L2
)

func mindistPoint(norm Norm, q, p []float64) float64 {
	var acc float64
	for i := range q {
		d := math.Abs(q[i] - p[i])
		switch norm {
		case LInf:
			if d > acc {
				acc = d
			}
		case L2:
			acc += d * d
		}
	}
	if norm == L2 {
		return math.Sqrt(acc)
	}
	return acc
}

func mindistRect(norm Norm, q []float64, r rect) float64 {
	var acc float64
	for i := range q {
		var d float64
		switch {
		case q[i] < r.lo[i]:
			d = r.lo[i] - q[i]
		case q[i] > r.hi[i]:
			d = q[i] - r.hi[i]
		}
		switch norm {
		case LInf:
			if d > acc {
				acc = d
			}
		case L2:
			acc += d * d
		}
	}
	if norm == L2 {
		return math.Sqrt(acc)
	}
	return acc
}

// Iter yields stored points in ascending MINDIST order from a query point —
// the incremental nearest-neighbor traversal of Hjaltason and Samet.
type Iter struct {
	t    *Tree
	q    []float64
	norm Norm
	pq   iterHeap
	err  error
}

// NearestIter starts an incremental nearest-neighbor scan.
func (t *Tree) NearestIter(q []float64, norm Norm) *Iter {
	it := &Iter{t: t, q: q, norm: norm}
	if t.hasRoot {
		heap.Push(&it.pq, iterItem{dist: mindistRect(norm, q, t.rootRect), page: t.rootPage, isNode: true})
	}
	return it
}

// Next returns the next point and its MINDIST; ok is false when exhausted or
// on error (check Err).
func (it *Iter) Next() (point []float64, val uint64, dist float64, ok bool) {
	for it.pq.Len() > 0 {
		item := heap.Pop(&it.pq).(iterItem)
		if !item.isNode {
			return item.point, item.val, item.dist, true
		}
		n, err := it.t.readNode(item.page)
		if err != nil {
			it.err = err
			return nil, 0, 0, false
		}
		if n.leaf {
			for _, e := range n.points {
				heap.Push(&it.pq, iterItem{dist: mindistPoint(it.norm, it.q, e.point), point: e.point, val: e.val})
			}
			continue
		}
		for _, b := range n.branches {
			heap.Push(&it.pq, iterItem{dist: mindistRect(it.norm, it.q, b.r), page: b.child, isNode: true})
		}
	}
	return nil, 0, 0, false
}

// Err returns the first I/O error the iterator hit.
func (it *Iter) Err() error { return it.err }

type iterItem struct {
	dist   float64
	isNode bool
	page   page.ID
	point  []float64
	val    uint64
}

type iterHeap []iterItem

func (h iterHeap) Len() int            { return len(h) }
func (h iterHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h iterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x interface{}) { *h = append(*h, x.(iterItem)) }
func (h *iterHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}
