package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randPoints(n, dims int, seed int64) ([][]float64, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	vals := make([]uint64, n)
	for i := range pts {
		p := make([]float64, dims)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
		vals[i] = uint64(i)
	}
	return pts, vals
}

func bfSearch(pts [][]float64, lo, hi []float64) map[uint64]bool {
	out := map[uint64]bool{}
	for i, p := range pts {
		if pointInBox(p, lo, hi) {
			out[uint64(i)] = true
		}
	}
	return out
}

func TestBulkLoadSearch(t *testing.T) {
	for _, dims := range []int{1, 2, 3, 5} {
		pts, vals := randPoints(2000, dims, int64(dims))
		tr, err := New(Options{Dims: dims})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.BulkLoad(pts, vals); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 2000 {
			t.Fatalf("Len = %d", tr.Len())
		}
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 20; trial++ {
			lo := make([]float64, dims)
			hi := make([]float64, dims)
			for j := range lo {
				a, b := rng.Float64(), rng.Float64()
				if a > b {
					a, b = b, a
				}
				lo[j], hi[j] = a, b
			}
			got := map[uint64]bool{}
			err := tr.Search(lo, hi, func(p []float64, v uint64) error {
				got[v] = true
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			want := bfSearch(pts, lo, hi)
			if len(got) != len(want) {
				t.Fatalf("dims=%d trial %d: got %d, want %d", dims, trial, len(got), len(want))
			}
			for v := range want {
				if !got[v] {
					t.Fatalf("missing %d", v)
				}
			}
		}
	}
}

func TestInsertSearch(t *testing.T) {
	pts, vals := randPoints(1500, 3, 7)
	tr, err := New(Options{Dims: 3, MaxLeaf: 8, MaxInternal: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if err := tr.Insert(pts[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	lo := []float64{0.2, 0.2, 0.2}
	hi := []float64{0.6, 0.7, 0.5}
	got := map[uint64]bool{}
	if err := tr.Search(lo, hi, func(p []float64, v uint64) error { got[v] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	want := bfSearch(pts, lo, hi)
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}

func TestBulkThenInsert(t *testing.T) {
	pts, vals := randPoints(1000, 2, 8)
	tr, err := New(Options{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(pts[:600], vals[:600]); err != nil {
		t.Fatal(err)
	}
	for i := 600; i < 1000; i++ {
		if err := tr.Insert(pts[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	lo := []float64{0.1, 0.3}
	hi := []float64{0.8, 0.9}
	got := map[uint64]bool{}
	if err := tr.Search(lo, hi, func(p []float64, v uint64) error { got[v] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	want := bfSearch(pts, lo, hi)
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}

func TestNearestIterOrder(t *testing.T) {
	pts, vals := randPoints(800, 3, 9)
	tr, err := New(Options{Dims: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(pts, vals); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.4, 0.5, 0.6}
	for _, norm := range []Norm{LInf, L2} {
		it := tr.NearestIter(q, norm)
		var dists []float64
		seen := map[uint64]bool{}
		for {
			_, v, d, ok := it.Next()
			if !ok {
				break
			}
			if seen[v] {
				t.Fatalf("norm %d: duplicate val %d", norm, v)
			}
			seen[v] = true
			dists = append(dists, d)
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		if len(dists) != len(pts) {
			t.Fatalf("norm %d: iterator yielded %d of %d", norm, len(dists), len(pts))
		}
		if !sort.Float64sAreSorted(dists) {
			t.Fatalf("norm %d: distances not ascending", norm)
		}
		// First yielded distance must equal the true nearest.
		best := math.Inf(1)
		for _, p := range pts {
			if d := mindistPoint(norm, q, p); d < best {
				best = d
			}
		}
		if math.Abs(dists[0]-best) > 1e-12 {
			t.Fatalf("norm %d: first dist %v, true nearest %v", norm, dists[0], best)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Options{Dims: 0}); err == nil {
		t.Error("Dims 0 accepted")
	}
	tr, _ := New(Options{Dims: 2})
	if err := tr.BulkLoad([][]float64{{1, 2, 3}}, []uint64{0}); err == nil {
		t.Error("wrong-dim point accepted")
	}
	if err := tr.BulkLoad([][]float64{{1, 2}}, []uint64{}); err == nil {
		t.Error("mismatched vals accepted")
	}
	if err := tr.Insert([]float64{1}, 0); err == nil {
		t.Error("wrong-dim insert accepted")
	}
	if _, err := New(Options{Dims: 2, MaxLeaf: 100000}); err == nil {
		t.Error("oversized fan-out accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	tr, _ := New(Options{Dims: 2})
	if err := tr.Search([]float64{0, 0}, []float64{1, 1}, func([]float64, uint64) error {
		t.Fatal("unexpected hit")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	it := tr.NearestIter([]float64{0, 0}, LInf)
	if _, _, _, ok := it.Next(); ok {
		t.Error("empty iter yielded a point")
	}
}
