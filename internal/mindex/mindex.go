// Package mindex implements the M-Index of Novak, Batko and Zezula — the
// third baseline of the paper's evaluation. It generalizes iDistance to
// metric spaces: every object is assigned to the cluster of its nearest
// pivot and keyed by cluster·c + d(o, p_cluster) in a plain B+-tree. Like
// the original, it stores every object's full pre-computed distance vector
// with the data record for pivot filtering — which keeps compdists low but
// makes the index large (the paper's Table 6 shows M-Index storage dwarfing
// the SPB-tree's).
package mindex

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spbtree/internal/bptree"
	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/pivot"
	"spbtree/internal/raf"
)

// distBits is the per-cluster key width for quantized distances.
const distBits = 24

// Options configures Build.
type Options struct {
	// Distance is the metric; required.
	Distance metric.DistanceFunc
	// Codec decodes objects from the data file; required.
	Codec metric.Codec
	// NumPivots is the pivot count; 0 means the paper's 20 (chosen
	// randomly, as in its experimental setup).
	NumPivots int
	// IndexStore and DataStore back the B+-tree and data file.
	IndexStore, DataStore page.Store
	// CacheSize is the per-store buffer-cache capacity (default 32).
	CacheSize int
	// Seed seeds pivot sampling; 0 means 1.
	Seed int64
}

// Tree is a built M-Index.
type Tree struct {
	dist   *metric.Counter
	pivots []metric.Object
	dPlus  float64

	bpt       *bptree.Tree
	raf       *raf.File
	idxCache  *page.Cache
	dataCache *page.Cache

	clusterMax []float64 // per-cluster maximum distance to its pivot
	count      int
}

// Result is one search answer.
type Result struct {
	Object metric.Object
	Dist   float64
}

// Build constructs the M-Index.
func Build(objs []metric.Object, opts Options) (*Tree, error) {
	if opts.Distance == nil || opts.Codec == nil {
		return nil, fmt.Errorf("mindex: Distance and Codec are required")
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("mindex: empty dataset")
	}
	k := opts.NumPivots
	if k == 0 {
		k = 20
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	cache := opts.CacheSize
	if cache == 0 {
		cache = 32
	}
	t := &Tree{dist: metric.NewCounter(opts.Distance), dPlus: opts.Distance.MaxDistance()}
	rng := rand.New(rand.NewSource(seed))
	t.pivots = pivot.Random{}.Select(objs, t.dist, k, rng)
	if len(t.pivots) == 0 {
		return nil, fmt.Errorf("mindex: no pivots selected")
	}
	t.clusterMax = make([]float64, len(t.pivots))

	idxStore := opts.IndexStore
	if idxStore == nil {
		idxStore = page.NewMemStore()
	}
	dataStore := opts.DataStore
	if dataStore == nil {
		dataStore = page.NewMemStore()
	}
	t.idxCache = page.NewCache(idxStore, cache)
	t.dataCache = page.NewCache(dataStore, cache)
	var err error
	t.bpt, err = bptree.New(t.idxCache, bptree.Options{})
	if err != nil {
		return nil, err
	}
	t.raf = raf.New(t.dataCache, recordCodec{dims: len(t.pivots), inner: opts.Codec})

	type mapped struct {
		rec *record
		key uint64
	}
	ms := make([]mapped, len(objs))
	for i, o := range objs {
		rec := &record{obj: o, vec: t.phi(o)}
		cluster, d := nearest(rec.vec)
		if d > t.clusterMax[cluster] {
			t.clusterMax[cluster] = d
		}
		ms[i] = mapped{rec: rec, key: t.key(cluster, d)}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].key != ms[j].key {
			return ms[i].key < ms[j].key
		}
		return ms[i].rec.obj.ID() < ms[j].rec.obj.ID()
	})
	entries := make([]bptree.Pair, len(ms))
	for i, m := range ms {
		off, err := t.raf.Append(m.rec)
		if err != nil {
			return nil, err
		}
		entries[i] = bptree.Pair{Key: m.key, Val: off}
	}
	if err := t.raf.Flush(); err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Less(entries[j]) })
	if err := t.bpt.BulkLoad(entries); err != nil {
		return nil, err
	}
	t.count = len(objs)
	return t, nil
}

func (t *Tree) phi(o metric.Object) []float64 {
	vec := make([]float64, len(t.pivots))
	for i, p := range t.pivots {
		vec[i] = t.dist.Distance(o, p)
	}
	return vec
}

func nearest(vec []float64) (int, float64) {
	best, bd := 0, vec[0]
	for i := 1; i < len(vec); i++ {
		if vec[i] < bd {
			best, bd = i, vec[i]
		}
	}
	return best, bd
}

func (t *Tree) cell(d float64) uint64 {
	if d < 0 {
		d = 0
	}
	c := uint64(d / t.dPlus * float64(uint64(1)<<distBits-1))
	if max := uint64(1)<<distBits - 1; c > max {
		c = max
	}
	return c
}

func (t *Tree) key(cluster int, d float64) uint64 {
	return uint64(cluster)<<distBits | t.cell(d)
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.count }

// Insert adds one object.
func (t *Tree) Insert(o metric.Object) error {
	rec := &record{obj: o, vec: t.phi(o)}
	cluster, d := nearest(rec.vec)
	if d > t.clusterMax[cluster] {
		t.clusterMax[cluster] = d
	}
	off, err := t.raf.Append(rec)
	if err != nil {
		return err
	}
	if err := t.raf.Flush(); err != nil {
		return err
	}
	if err := t.bpt.Insert(t.key(cluster, d), off); err != nil {
		return err
	}
	t.count++
	return nil
}

// RangeQuery returns every object within r of q: per-cluster ring scans on
// the B+-tree, pivot filtering on the stored distance vectors, then
// verification.
func (t *Tree) RangeQuery(q metric.Object, r float64) ([]Result, error) {
	if r < 0 {
		return nil, nil
	}
	qvec := t.phi(q)
	var out []Result
	if err := t.rangeInto(q, qvec, r, func(res Result) { out = append(out, res) }); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.ID() < out[j].Object.ID() })
	return out, nil
}

func (t *Tree) rangeInto(q metric.Object, qvec []float64, r float64, emit func(Result)) error {
	for cluster := range t.pivots {
		dq := qvec[cluster]
		if dq-r > t.clusterMax[cluster] {
			continue // the ring misses the whole cluster
		}
		lo := t.key(cluster, math.Max(0, dq-r))
		hi := t.key(cluster, math.Min(t.dPlus, dq+r))
		for c := t.bpt.Seek(lo); c.Valid() && c.Key() <= hi; c.Next() {
			obj, err := t.raf.Read(c.Val())
			if err != nil {
				return err
			}
			rec := obj.(*record)
			// Pivot filtering on the stored distance vector: costs no
			// distance computations.
			ok := true
			for j, d := range rec.vec {
				if math.Abs(qvec[j]-d) > r {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if d := t.dist.Distance(q, rec.obj); d <= r {
				emit(Result{Object: rec.obj, Dist: d})
			}
		}
		if c := t.bpt.Seek(lo); c.Err() != nil {
			return c.Err()
		}
	}
	return nil
}

// KNN returns the k nearest neighbors via iteratively widened range queries
// (the standard iDistance search strategy): start from a small radius and
// double until k answers are inside, memoizing verified objects so repeated
// rings never recompute a distance.
func (t *Tree) KNN(q metric.Object, k int) ([]Result, error) {
	if k <= 0 || t.count == 0 {
		return nil, nil
	}
	qvec := t.phi(q)
	verified := map[uint64]Result{}
	r := t.dPlus / 128
	for {
		// Collect within the current radius, reusing memoized results.
		for cluster := range t.pivots {
			dq := qvec[cluster]
			if dq-r > t.clusterMax[cluster] {
				continue
			}
			lo := t.key(cluster, math.Max(0, dq-r))
			hi := t.key(cluster, math.Min(t.dPlus, dq+r))
			for c := t.bpt.Seek(lo); c.Valid() && c.Key() <= hi; c.Next() {
				obj, err := t.raf.Read(c.Val())
				if err != nil {
					return nil, err
				}
				rec := obj.(*record)
				if _, done := verified[rec.obj.ID()]; done {
					continue
				}
				ok := true
				for j, d := range rec.vec {
					if math.Abs(qvec[j]-d) > r {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				verified[rec.obj.ID()] = Result{Object: rec.obj, Dist: t.dist.Distance(q, rec.obj)}
			}
		}
		within := make([]Result, 0, len(verified))
		for _, res := range verified {
			if res.Dist <= r {
				within = append(within, res)
			}
		}
		if len(within) >= k || r >= t.dPlus {
			sort.Slice(within, func(i, j int) bool {
				if within[i].Dist != within[j].Dist {
					return within[i].Dist < within[j].Dist
				}
				return within[i].Object.ID() < within[j].Object.ID()
			})
			if len(within) > k {
				within = within[:k]
			}
			return within, nil
		}
		r *= 2
	}
}

// ResetStats zeroes I/O and distance counters and flushes caches.
func (t *Tree) ResetStats() {
	t.idxCache.Stats().Reset()
	t.idxCache.Flush()
	t.dataCache.Stats().Reset()
	t.dataCache.Flush()
	t.dist.Reset()
}

// TakeStats reads (page accesses, distance computations) since the reset.
func (t *Tree) TakeStats() (pa, compdists int64) {
	return t.idxCache.Stats().Accesses() + t.dataCache.Stats().Accesses(), t.dist.Count()
}

// StorageBytes returns the B+-tree plus data-file footprint (the data file
// carries the per-object distance vectors).
func (t *Tree) StorageBytes() int64 {
	return int64(t.idxCache.NumPages())*page.Size + int64(t.raf.PagesUsed())*page.Size
}

// record pairs an object with its pre-computed distance vector in the data
// file.
type record struct {
	vec []float64
	obj metric.Object
}

// ID implements metric.Object.
func (r *record) ID() uint64 { return r.obj.ID() }

// AppendBinary implements metric.Object: the distance vector then the
// object payload.
func (r *record) AppendBinary(dst []byte) []byte {
	for _, d := range r.vec {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d))
	}
	return r.obj.AppendBinary(dst)
}

type recordCodec struct {
	dims  int
	inner metric.Codec
}

// Decode implements metric.Codec.
func (c recordCodec) Decode(id uint64, data []byte) (metric.Object, error) {
	need := 8 * c.dims
	if len(data) < need {
		return nil, fmt.Errorf("mindex: record too short: %d < %d", len(data), need)
	}
	vec := make([]float64, c.dims)
	for i := range vec {
		vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	obj, err := c.inner.Decode(id, data[need:])
	if err != nil {
		return nil, err
	}
	return &record{vec: vec, obj: obj}, nil
}
