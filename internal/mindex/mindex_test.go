package mindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spbtree/internal/metric"
)

func vectors(n, dim int, seed int64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]metric.Object, n)
	for i := range objs {
		coords := make([]float64, dim)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	return objs
}

func bfRange(objs []metric.Object, q metric.Object, r float64, d metric.DistanceFunc) map[uint64]bool {
	out := map[uint64]bool{}
	for _, o := range objs {
		if d.Distance(q, o) <= r {
			out[o.ID()] = true
		}
	}
	return out
}

func bfKNN(objs []metric.Object, q metric.Object, k int, d metric.DistanceFunc) []float64 {
	ds := make([]float64, len(objs))
	for i, o := range objs {
		ds[i] = d.Distance(q, o)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestRangeMatchesBruteForce(t *testing.T) {
	objs := vectors(700, 6, 1)
	dist := metric.L2(6)
	tr, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 6}, NumPivots: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		q := objs[rng.Intn(len(objs))]
		r := 0.1 + 0.3*rng.Float64()
		got, err := tr.RangeQuery(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := bfRange(objs, q, r, dist)
		if len(got) != len(want) {
			t.Fatalf("trial %d (r=%v): got %d, want %d", trial, r, len(got), len(want))
		}
		for _, res := range got {
			if !want[res.Object.ID()] {
				t.Fatalf("spurious result %d", res.Object.ID())
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	objs := vectors(500, 5, 3)
	dist := metric.L2(5)
	tr, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 5}, NumPivots: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{1, 8, 32} {
		for trial := 0; trial < 6; trial++ {
			q := objs[rng.Intn(len(objs))]
			got, err := tr.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bfKNN(objs, q, k, dist)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i]) > 1e-9 {
					t.Fatalf("k=%d dist[%d] = %v, want %v", k, i, got[i].Dist, want[i])
				}
			}
		}
	}
}

func TestEditDistanceWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	syl := []string{"an", "ber", "co", "du", "el", "fi", "gor", "hu"}
	objs := make([]metric.Object, 400)
	for i := range objs {
		var w string
		for k := 0; k < 2+rng.Intn(3); k++ {
			w += syl[rng.Intn(len(syl))]
		}
		objs[i] = metric.NewStr(uint64(i), w)
	}
	dist := metric.EditDistance{MaxLen: 12}
	tr, err := Build(objs, Options{Distance: dist, Codec: metric.StrCodec{}, NumPivots: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{1, 2, 4} {
		got, err := tr.RangeQuery(objs[3], r)
		if err != nil {
			t.Fatal(err)
		}
		want := bfRange(objs, objs[3], r, dist)
		if len(got) != len(want) {
			t.Fatalf("r=%v: got %d, want %d", r, len(got), len(want))
		}
	}
}

func TestInsertThenQuery(t *testing.T) {
	objs := vectors(300, 4, 6)
	dist := metric.L2(4)
	tr, err := Build(objs[:200], Options{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, NumPivots: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs[200:] {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.RangeQuery(objs[0], 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := bfRange(objs, objs[0], 0.3, dist)
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}

func TestPivotFilteringKeepsCompdistsLow(t *testing.T) {
	objs := vectors(2000, 8, 7)
	dist := metric.L2(8)
	tr, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 8}})
	if err != nil {
		t.Fatal(err)
	}
	tr.ResetStats()
	if _, err := tr.RangeQuery(objs[0], 0.2); err != nil {
		t.Fatal(err)
	}
	pa, cd := tr.TakeStats()
	if cd >= int64(len(objs))/2 {
		t.Errorf("compdists %d: pivot filtering ineffective", cd)
	}
	if pa == 0 {
		t.Error("no page accesses counted")
	}
}

func TestStorageIncludesDistanceVectors(t *testing.T) {
	objs := vectors(1000, 4, 8)
	tr, err := Build(objs, Options{Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4}, NumPivots: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Each record carries 20 pivot distances (160 B) on top of a 32 B
	// vector: the data file alone must exceed 160 KB.
	if tr.StorageBytes() < 190_000 {
		t.Errorf("StorageBytes = %d, expected the distance-vector overhead", tr.StorageBytes())
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build(nil, Options{Distance: metric.L2(2), Codec: metric.VectorCodec{Dim: 2}}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Build(vectors(5, 2, 1), Options{}); err == nil {
		t.Error("missing options accepted")
	}
	tr, err := Build(vectors(50, 2, 1), Options{Distance: metric.L2(2), Codec: metric.VectorCodec{Dim: 2}, NumPivots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tr.RangeQuery(vectors(1, 2, 9)[0], -1); err != nil || res != nil {
		t.Errorf("negative radius: %v %v", res, err)
	}
	if res, err := tr.KNN(vectors(1, 2, 9)[0], 0); err != nil || res != nil {
		t.Errorf("k=0: %v %v", res, err)
	}
}
