// Package dataset generates synthetic stand-ins for the paper's five
// evaluation datasets (Table 2). The real corpora (English words, HSV image
// features, DNA loci, handwritten signatures) are not redistributable, so
// each generator reproduces the salient statistics the experiments depend
// on: dimensionality, metric, value distribution (clustered, not uniform),
// and approximate intrinsic dimensionality. See DESIGN.md §3 for the
// substitution rationale.
package dataset

import (
	"math"
	"math/rand"

	"spbtree/internal/metric"
)

// Dataset bundles objects with their metric and codec.
type Dataset struct {
	// Name matches the paper's dataset name.
	Name string
	// Objects are the generated objects with ids 0..n-1.
	Objects []metric.Object
	// Distance is the dataset's metric (Table 2's Measurement column).
	Distance metric.DistanceFunc
	// Codec decodes the dataset's objects from RAF payloads.
	Codec metric.Codec
}

// Queries returns the query workload: the first n objects, the paper's
// protocol ("the first 500 objects in every dataset").
func (d Dataset) Queries(n int) []metric.Object {
	if n > len(d.Objects) {
		n = len(d.Objects)
	}
	return d.Objects[:n]
}

// Words generates English-like words from a syllable model with the skewed
// length distribution of a dictionary (lengths ~1-34, mean ≈ 8), compared
// under edit distance.
func Words(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]metric.Object, n)
	for i := range objs {
		objs[i] = metric.NewStr(uint64(i), randomWord(rng))
	}
	return Dataset{
		Name:     "Words",
		Objects:  objs,
		Distance: metric.EditDistance{MaxLen: 34},
		Codec:    metric.StrCodec{},
	}
}

var (
	onsets   = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "qu", "r", "s", "t", "v", "w", "st", "tr", "ch", "sh", "th", "pl", "br", ""}
	nuclei   = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou", "io", "ee"}
	codas    = []string{"", "", "n", "s", "t", "r", "l", "m", "d", "ng", "st", "ck"}
	suffixes = []string{"", "", "", "s", "ed", "ing", "ly", "er", "tion", "ness", "ate", "ation"}
)

func randomWord(rng *rand.Rand) string {
	// 1 + geometric-ish number of syllables gives the dictionary's skew.
	syllables := 1
	for syllables < 8 && rng.Float64() < 0.55 {
		syllables++
	}
	w := ""
	for s := 0; s < syllables; s++ {
		w += onsets[rng.Intn(len(onsets))] + nuclei[rng.Intn(len(nuclei))] + codas[rng.Intn(len(codas))]
	}
	w += suffixes[rng.Intn(len(suffixes))]
	if len(w) > 34 {
		w = w[:34]
	}
	if w == "" {
		w = "a"
	}
	return w
}

// Color generates 16-dimensional feature vectors as a mixture of Gaussian
// clusters in the unit cube, compared under the L5-norm (the paper's Color:
// 112,682 HSV color histograms, intrinsic dimensionality ≈ 2.9).
func Color(n int, seed int64) Dataset {
	objs := clusteredVectors(n, 16, 12, 0.06, seed)
	return Dataset{
		Name:     "Color",
		Objects:  objs,
		Distance: metric.L5(16),
		Codec:    metric.VectorCodec{Dim: 16},
	}
}

// Synthetic generates 20-dimensional vectors on a low-dimensional latent
// manifold plus noise, compared under L2 (the paper's Synthetic: 1M 20-d
// vectors, intrinsic dimensionality ≈ 4.8).
func Synthetic(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const dim, latent = 20, 5
	// Random mixing matrix maps the latent space into 20 dimensions.
	mix := make([][]float64, dim)
	for i := range mix {
		row := make([]float64, latent)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		mix[i] = row
	}
	objs := make([]metric.Object, n)
	z := make([]float64, latent)
	for i := range objs {
		for j := range z {
			z[j] = rng.Float64()
		}
		coords := make([]float64, dim)
		for d := 0; d < dim; d++ {
			v := 0.0
			for j := 0; j < latent; j++ {
				v += mix[d][j] * z[j]
			}
			coords[d] = clamp01(sigmoid(v) + 0.02*rng.NormFloat64())
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	return Dataset{
		Name:     "Synthetic",
		Objects:  objs,
		Distance: metric.L2(20),
		Codec:    metric.VectorCodec{Dim: 20},
	}
}

// Color32 is Color with every coordinate rounded to float32 — the same
// cluster draw (same seed → same float64 coordinates before rounding), stored
// as metric.Vector32 at half the payload size. Distances differ from Color's
// only by the coordinate-rounding tolerance documented on metric.Vector32.
func Color32(n int, seed int64) Dataset {
	objs := clusteredVectors(n, 16, 12, 0.06, seed)
	for i, o := range objs {
		objs[i] = metric.NewVector32From64(o.ID(), o.(*metric.Vector).Coords)
	}
	return Dataset{
		Name:     "Color32",
		Objects:  objs,
		Distance: metric.L5(16),
		Codec:    metric.Vector32Codec{Dim: 16},
	}
}

// Synthetic32 is Synthetic with every coordinate rounded to float32, stored
// as metric.Vector32 — the float32 variant of the paper's 20-d L2 workload.
func Synthetic32(n int, seed int64) Dataset {
	d := Synthetic(n, seed)
	objs := make([]metric.Object, len(d.Objects))
	for i, o := range d.Objects {
		objs[i] = metric.NewVector32From64(o.ID(), o.(*metric.Vector).Coords)
	}
	return Dataset{
		Name:     "Synthetic32",
		Objects:  objs,
		Distance: metric.L2(20),
		Codec:    metric.Vector32Codec{Dim: 20},
	}
}

// DNA generates DNA reads of length ≈ 108 as mutated copies of a set of
// family seeds, compared under angular distance over tri-gram count vectors
// (the paper's DNA: 1M loci under "cosine similarity under tri-gram
// counting space"; see DESIGN.md §3 for the angular-distance substitution).
func DNA(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const bases = "ACGT"
	families := 1 + n/64
	seeds := make([]string, families)
	for i := range seeds {
		b := make([]byte, 100+rng.Intn(17))
		for j := range b {
			b[j] = bases[rng.Intn(4)]
		}
		seeds[i] = string(b)
	}
	objs := make([]metric.Object, n)
	for i := range objs {
		s := []byte(seeds[rng.Intn(families)])
		// Point mutations plus occasional indels.
		for m := rng.Intn(12); m > 0; m-- {
			switch rng.Intn(4) {
			case 0: // insertion
				p := rng.Intn(len(s) + 1)
				s = append(s[:p], append([]byte{bases[rng.Intn(4)]}, s[p:]...)...)
			case 1: // deletion
				if len(s) > 4 {
					p := rng.Intn(len(s))
					s = append(s[:p], s[p+1:]...)
				}
			default: // substitution
				s[rng.Intn(len(s))] = bases[rng.Intn(4)]
			}
		}
		objs[i] = metric.NewSeq(uint64(i), string(s))
	}
	return Dataset{
		Name:     "DNA",
		Objects:  objs,
		Distance: metric.TrigramAngular{},
		Codec:    metric.SeqCodec{},
	}
}

// DNAEdit generates the DNA reads of DNA but compares them under edit
// distance instead of tri-gram angular distance — the workload that
// exercises the blocked bit-parallel and banded edit-distance kernels
// (DESIGN.md §10) on strings far past one machine word.
func DNAEdit(n int, seed int64) Dataset {
	d := DNA(n, seed)
	objs := make([]metric.Object, len(d.Objects))
	for i, o := range d.Objects {
		objs[i] = metric.NewStr(o.ID(), o.(*metric.Seq).S)
	}
	return Dataset{
		Name:     "DNAEdit",
		Objects:  objs,
		Distance: metric.EditDistance{MaxLen: 140},
		Codec:    metric.StrCodec{},
	}
}

// Signature generates 64-byte binary signatures as bit-flipped copies of
// cluster seeds, compared under Hamming distance (the paper's Signature:
// 49,740 signatures, intrinsic dimensionality ≈ 14.8 — the hardest
// workload).
func Signature(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const width = 64
	clusters := 1 + n/128
	seeds := make([][]byte, clusters)
	for i := range seeds {
		b := make([]byte, width)
		rng.Read(b)
		seeds[i] = b
	}
	objs := make([]metric.Object, n)
	for i := range objs {
		b := make([]byte, width)
		copy(b, seeds[rng.Intn(clusters)])
		for flips := rng.Intn(120); flips > 0; flips-- {
			bit := rng.Intn(8 * width)
			b[bit/8] ^= 1 << (bit % 8)
		}
		objs[i] = metric.NewBitString(uint64(i), b)
	}
	return Dataset{
		Name:     "Signature",
		Objects:  objs,
		Distance: metric.Hamming{Bytes: width},
		Codec:    metric.BitStringCodec{Bytes: width},
	}
}

// ByName returns the named dataset generator's output, matching the paper's
// dataset names case-insensitively.
func ByName(name string, n int, seed int64) (Dataset, bool) {
	switch name {
	case "words", "Words":
		return Words(n, seed), true
	case "color", "Color":
		return Color(n, seed), true
	case "color32", "Color32":
		return Color32(n, seed), true
	case "dna", "DNA":
		return DNA(n, seed), true
	case "dnaedit", "DNAEdit":
		return DNAEdit(n, seed), true
	case "signature", "Signature":
		return Signature(n, seed), true
	case "synthetic", "Synthetic":
		return Synthetic(n, seed), true
	case "synthetic32", "Synthetic32":
		return Synthetic32(n, seed), true
	}
	return Dataset{}, false
}

// clusteredVectors draws n dim-dimensional points from a mixture of
// clusters Gaussian blobs with per-coordinate stddev sigma.
func clusteredVectors(n, dim, clusters int, sigma float64, seed int64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for i := range centers {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()
		}
		centers[i] = c
	}
	objs := make([]metric.Object, n)
	for i := range objs {
		c := centers[rng.Intn(clusters)]
		coords := make([]float64, dim)
		for j := range coords {
			coords[j] = clamp01(c[j] + sigma*rng.NormFloat64())
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	return objs
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
