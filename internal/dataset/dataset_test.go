package dataset

import (
	"math/rand"
	"testing"

	"spbtree/internal/metric"
)

func TestGeneratorsBasicShape(t *testing.T) {
	for _, name := range []string{"words", "color", "dna", "signature", "synthetic"} {
		ds, ok := ByName(name, 500, 1)
		if !ok {
			t.Fatalf("ByName(%q) not found", name)
		}
		if len(ds.Objects) != 500 {
			t.Fatalf("%s: %d objects", name, len(ds.Objects))
		}
		ids := map[uint64]bool{}
		for _, o := range ds.Objects {
			if ids[o.ID()] {
				t.Fatalf("%s: duplicate id %d", name, o.ID())
			}
			ids[o.ID()] = true
		}
		// Codec round trip on a sample.
		for i := 0; i < 10; i++ {
			o := ds.Objects[i*37%len(ds.Objects)]
			back, err := ds.Codec.Decode(o.ID(), o.AppendBinary(nil))
			if err != nil {
				t.Fatalf("%s: codec: %v", name, err)
			}
			if ds.Distance.Distance(o, back) != 0 {
				t.Fatalf("%s: round-tripped object at distance > 0", name)
			}
		}
		// Distances stay within d+.
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 100; i++ {
			a := ds.Objects[rng.Intn(len(ds.Objects))]
			b := ds.Objects[rng.Intn(len(ds.Objects))]
			d := ds.Distance.Distance(a, b)
			if d < 0 || d > ds.Distance.MaxDistance()+1e-9 {
				t.Fatalf("%s: distance %v outside [0, %v]", name, d, ds.Distance.MaxDistance())
			}
		}
	}
	if _, ok := ByName("nope", 10, 1); ok {
		t.Error("unknown dataset name accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Words(100, 7)
	b := Words(100, 7)
	for i := range a.Objects {
		if a.Objects[i].(*metric.Str).S != b.Objects[i].(*metric.Str).S {
			t.Fatal("Words not deterministic for equal seeds")
		}
	}
	c := Words(100, 8)
	same := 0
	for i := range a.Objects {
		if a.Objects[i].(*metric.Str).S == c.Objects[i].(*metric.Str).S {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds produced identical datasets")
	}
}

func TestIntrinsicDimensionalityBands(t *testing.T) {
	// Table 2's shape: Signature has by far the highest intrinsic
	// dimensionality; Color among the lowest.
	rng := rand.New(rand.NewSource(3))
	rho := func(ds Dataset) float64 {
		return metric.IntrinsicDimensionality(ds.Objects, ds.Distance, 2000, rng)
	}
	color := rho(Color(2000, 1))
	sig := rho(Signature(2000, 1))
	synth := rho(Synthetic(2000, 1))
	if !(sig > color && sig > synth) {
		t.Errorf("intrinsic dims: signature %.1f should exceed color %.1f and synthetic %.1f", sig, color, synth)
	}
	if color < 0.5 || color > 12 {
		t.Errorf("color intrinsic dim %.1f out of plausible band", color)
	}
}

func TestQueries(t *testing.T) {
	ds := Color(50, 1)
	if q := ds.Queries(10); len(q) != 10 || q[0].ID() != 0 {
		t.Errorf("Queries(10) wrong: %d, first id %d", len(q), q[0].ID())
	}
	if q := ds.Queries(500); len(q) != 50 {
		t.Errorf("Queries beyond size returned %d", len(q))
	}
}

func TestWordLengths(t *testing.T) {
	ds := Words(2000, 5)
	var min, max, total int
	min = 1 << 30
	for _, o := range ds.Objects {
		n := len(o.(*metric.Str).S)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		total += n
	}
	if min < 1 || max > 34 {
		t.Errorf("word lengths outside [1, 34]: min=%d max=%d", min, max)
	}
	mean := float64(total) / float64(len(ds.Objects))
	if mean < 4 || mean > 16 {
		t.Errorf("mean word length %.1f implausible", mean)
	}
}

func TestDNALengths(t *testing.T) {
	ds := DNA(500, 6)
	for _, o := range ds.Objects {
		n := len(o.(*metric.Seq).S)
		if n < 80 || n > 140 {
			t.Errorf("DNA read length %d outside band", n)
		}
	}
}
