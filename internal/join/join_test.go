package join

import (
	"math/rand"
	"testing"

	"spbtree/internal/metric"
)

func vectors(n, dim int, seed int64, idBase uint64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]metric.Object, n)
	for i := range objs {
		coords := make([]float64, dim)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		objs[i] = metric.NewVector(idBase+uint64(i), coords)
	}
	return objs
}

func words(n int, seed int64, idBase uint64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	syl := []string{"an", "ber", "co", "du", "el", "fi", "gor", "hu"}
	objs := make([]metric.Object, n)
	for i := range objs {
		var w string
		for k := 0; k < 2+rng.Intn(3); k++ {
			w += syl[rng.Intn(len(syl))]
		}
		objs[i] = metric.NewStr(idBase+uint64(i), w)
	}
	return objs
}

func pairSet(ps []Pair) map[[2]uint64]bool {
	out := map[[2]uint64]bool{}
	for _, p := range ps {
		out[[2]uint64{p.A.ID(), p.B.ID()}] = true
	}
	return out
}

func comparePairs(t *testing.T, name string, got, want []Pair) {
	t.Helper()
	gs, ws := pairSet(got), pairSet(want)
	if len(got) != len(gs) {
		t.Fatalf("%s: %d duplicate pairs emitted", name, len(got)-len(gs))
	}
	if len(gs) != len(ws) {
		t.Fatalf("%s: got %d pairs, want %d", name, len(gs), len(ws))
	}
	for k := range ws {
		if !gs[k] {
			t.Fatalf("%s: missing pair %v", name, k)
		}
	}
}

func TestQuickjoinRSMatchesNestedLoop(t *testing.T) {
	dist := metric.L2(4)
	Q := vectors(300, 4, 1, 0)
	O := vectors(350, 4, 2, 10000)
	for _, eps := range []float64{0.05, 0.15, 0.3} {
		qj := &Quickjoin{Dist: dist}
		got := qj.Join(Q, O, eps)
		want := NestedLoop(Q, O, eps, dist)
		comparePairs(t, "quickjoin", got, want)
	}
}

func TestQuickjoinSelfJoin(t *testing.T) {
	dist := metric.L2(3)
	O := vectors(250, 3, 3, 0)
	qj := &Quickjoin{Dist: dist}
	got := qj.Join(O, O, 0.1)
	want := NestedLoop(O, O, 0.1, dist)
	comparePairs(t, "quickjoin-self", got, want)
}

func TestQuickjoinStrings(t *testing.T) {
	dist := metric.EditDistance{MaxLen: 12}
	Q := words(200, 4, 0)
	O := words(220, 5, 10000)
	for _, eps := range []float64{1, 2} {
		qj := &Quickjoin{Dist: dist}
		got := qj.Join(Q, O, eps)
		want := NestedLoop(Q, O, eps, dist)
		comparePairs(t, "quickjoin-words", got, want)
	}
}

func TestQuickjoinDuplicateHeavy(t *testing.T) {
	// All-identical data exercises the degenerate-partition fallback.
	objs := make([]metric.Object, 200)
	for i := range objs {
		objs[i] = metric.NewVector(uint64(i), []float64{0.5, 0.5})
	}
	O := make([]metric.Object, 200)
	for i := range O {
		O[i] = metric.NewVector(uint64(10000+i), []float64{0.5, 0.5})
	}
	dist := metric.L2(2)
	qj := &Quickjoin{Dist: dist}
	got := qj.Join(objs, O, 0.01)
	if len(got) != 200*200 {
		t.Fatalf("duplicate-heavy join: %d pairs, want %d", len(got), 200*200)
	}
}

func TestQuickjoinSavesComputations(t *testing.T) {
	dist := metric.NewCounter(metric.L2(6))
	Q := vectors(500, 6, 6, 0)
	O := vectors(500, 6, 7, 10000)
	qj := &Quickjoin{Dist: dist}
	qj.Join(Q, O, 0.05)
	if dist.Count() >= int64(len(Q)*len(O)) {
		t.Errorf("quickjoin compdists %d >= |Q||O|: no better than nested loop", dist.Count())
	}
}

func TestEDIndexRSMatchesNestedLoop(t *testing.T) {
	dist := metric.L2(4)
	Q := vectors(250, 4, 8, 0)
	O := vectors(300, 4, 9, 10000)
	eps0 := 0.2
	ed, err := BuildED(Q, O, EDOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, Eps0: eps0})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.05, 0.15, 0.2} {
		got, err := ed.Join(eps, false)
		if err != nil {
			t.Fatal(err)
		}
		want := NestedLoop(Q, O, eps, dist)
		comparePairs(t, "edindex", got, want)
	}
	// ε beyond ε₀ must be rejected — the rebuild-for-larger-ε limit the
	// paper reports in Section 6.4.
	if _, err := ed.Join(0.3, false); err == nil {
		t.Error("eD-index accepted ε > ε₀")
	}
	// Rebuilding with a larger ε₀ then handles it.
	ed2, err := BuildED(Q, O, EDOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, Eps0: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ed2.Join(0.4, false)
	if err != nil {
		t.Fatal(err)
	}
	comparePairs(t, "edindex-rebuilt", got, NestedLoop(Q, O, 0.4, dist))
}

func TestEDIndexSelfJoin(t *testing.T) {
	dist := metric.L2(3)
	O := vectors(300, 3, 10, 0)
	ed, err := BuildED(O, O, EDOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 3}, Eps0: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ed.Join(0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	want := NestedLoop(O, O, 0.1, dist)
	comparePairs(t, "edindex-self", got, want)
}

func TestEDIndexStrings(t *testing.T) {
	dist := metric.EditDistance{MaxLen: 12}
	Q := words(200, 11, 0)
	O := words(250, 12, 10000)
	ed, err := BuildED(Q, O, EDOptions{Distance: dist, Codec: metric.StrCodec{}, Eps0: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{1, 2, 3} {
		got, err := ed.Join(eps, false)
		if err != nil {
			t.Fatal(err)
		}
		want := NestedLoop(Q, O, eps, dist)
		comparePairs(t, "edindex-words", got, want)
	}
}

func TestEDIndexStatsAndReplication(t *testing.T) {
	dist := metric.L2(4)
	Q := vectors(400, 4, 13, 0)
	O := vectors(400, 4, 14, 10000)
	ed, err := BuildED(Q, O, EDOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, Eps0: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	ed.ResetStats()
	if _, err := ed.Join(0.15, false); err != nil {
		t.Fatal(err)
	}
	pa, cd := ed.TakeStats()
	if pa == 0 || cd == 0 {
		t.Errorf("stats pa=%d cd=%d", pa, cd)
	}
	if ed.StorageBytes() <= 0 {
		t.Error("no storage reported")
	}
}

func TestEDIndexValidation(t *testing.T) {
	dist := metric.L2(2)
	if _, err := BuildED(nil, nil, EDOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 2}}); err == nil {
		t.Error("Eps0 0 accepted")
	}
	if _, err := BuildED(nil, nil, EDOptions{Eps0: 1}); err == nil {
		t.Error("missing metric accepted")
	}
	// Empty inputs are fine.
	ed, err := BuildED(nil, nil, EDOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 2}, Eps0: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ed.Join(0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty join returned %d pairs", len(got))
	}
}

func TestNestedLoopBaseline(t *testing.T) {
	dist := metric.L2(2)
	Q := []metric.Object{
		metric.NewVector(1, []float64{0, 0}),
		metric.NewVector(2, []float64{0.5, 0.5}),
	}
	O := []metric.Object{
		metric.NewVector(10, []float64{0, 0.05}),
		metric.NewVector(11, []float64{0.9, 0.9}),
	}
	got := NestedLoop(Q, O, 0.1, dist)
	if len(got) != 1 || got[0].A.ID() != 1 || got[0].B.ID() != 10 {
		t.Fatalf("NestedLoop = %+v", got)
	}
}
