package join

import (
	"math/rand"

	"spbtree/internal/metric"
)

// Quickjoin is the in-memory Quickjoin of Jacox and Samet with the
// Fredriksson-Braithwaite refinement of reusing partitioning distances as
// pivot filters inside the base-case nested loops. It is "QJA" in the
// paper's Fig. 17: no index is built in advance, so there are no page
// accesses to report — only distance computations and wall time.
type Quickjoin struct {
	// Dist is the metric; required. Wrap it in a metric.Counter to observe
	// compdists.
	Dist metric.DistanceFunc
	// SmallLimit is the base-case size below which nested loops run;
	// 0 means 32.
	SmallLimit int
	// Seed seeds pivot choices; 0 means 1.
	Seed int64
	// maxDepth guards degenerate recursions.
	rng *rand.Rand
}

// item carries an object, which input set it came from, and the distance to
// the current partitioning pivot (the filter distance).
type item struct {
	obj  metric.Object
	side uint8
	dPiv float64
}

// Join computes SJ(Q, O, ε). If Q and O alias the same slice the result is
// the self-join including identity pairs, matching Definition 4 applied to
// Q = O.
func (qj *Quickjoin) Join(Q, O []metric.Object, eps float64) []Pair {
	if eps < 0 {
		return nil
	}
	seed := qj.Seed
	if seed == 0 {
		seed = 1
	}
	qj.rng = rand.New(rand.NewSource(seed))
	selfJoin := len(Q) == len(O) && len(Q) > 0 && &Q[0] == &O[0]

	items := make([]item, 0, len(Q)+len(O))
	for _, q := range Q {
		items = append(items, item{obj: q, side: 0})
	}
	if selfJoin {
		// A self-join runs over one copy of the set; every in-set pair maps
		// to both (a,b) and (b,a) plus identity pairs at emission time.
		var out []Pair
		qj.join(items, eps, 0, func(a, b item, d float64) {
			out = append(out, Pair{A: a.obj, B: b.obj, Dist: d}, Pair{A: b.obj, B: a.obj, Dist: d})
		})
		for _, q := range Q {
			out = append(out, Pair{A: q, B: q, Dist: 0})
		}
		sortPairs(out)
		return out
	}
	for _, o := range O {
		items = append(items, item{obj: o, side: 1})
	}
	var out []Pair
	qj.join(items, eps, 0, func(a, b item, d float64) {
		switch {
		case a.side == 0 && b.side == 1:
			out = append(out, Pair{A: a.obj, B: b.obj, Dist: d})
		case a.side == 1 && b.side == 0:
			out = append(out, Pair{A: b.obj, B: a.obj, Dist: d})
		}
	})
	sortPairs(out)
	return out
}

const maxDepth = 64

// join finds all pairs within items at distance ≤ eps and emits them once.
func (qj *Quickjoin) join(items []item, eps float64, depth int, emit func(a, b item, d float64)) {
	limit := qj.SmallLimit
	if limit == 0 {
		limit = 32
	}
	if len(items) <= limit || depth >= maxDepth {
		qj.nested(items, eps, emit)
		return
	}
	p := items[qj.rng.Intn(len(items))].obj
	rho := qj.Dist.Distance(p, items[qj.rng.Intn(len(items))].obj)

	var in, out, winIn, winOut []item
	for _, it := range items {
		d := qj.Dist.Distance(p, it.obj)
		it.dPiv = d
		if d < rho {
			in = append(in, it)
			if d >= rho-eps {
				winIn = append(winIn, it)
			}
		} else {
			out = append(out, it)
			if d <= rho+eps {
				winOut = append(winOut, it)
			}
		}
	}
	if len(in) == 0 || len(out) == 0 {
		// Degenerate pivot/radius (duplicate-heavy data): partitioning made
		// no progress, fall back before recursing forever.
		qj.nested(items, eps, emit)
		return
	}
	qj.join(in, eps, depth+1, emit)
	qj.join(out, eps, depth+1, emit)
	qj.joinWin(winIn, winOut, eps, depth+1, emit)
}

// joinWin finds pairs across two window sets.
func (qj *Quickjoin) joinWin(A, B []item, eps float64, depth int, emit func(a, b item, d float64)) {
	if len(A) == 0 || len(B) == 0 {
		return
	}
	limit := qj.SmallLimit
	if limit == 0 {
		limit = 32
	}
	if len(A)+len(B) <= limit || depth >= maxDepth {
		qj.nestedCross(A, B, eps, emit)
		return
	}
	all := append(append([]item(nil), A...), B...)
	p := all[qj.rng.Intn(len(all))].obj
	rho := qj.Dist.Distance(p, all[qj.rng.Intn(len(all))].obj)

	part := func(items []item) (in, out, winIn, winOut []item) {
		for _, it := range items {
			d := qj.Dist.Distance(p, it.obj)
			it.dPiv = d
			if d < rho {
				in = append(in, it)
				if d >= rho-eps {
					winIn = append(winIn, it)
				}
			} else {
				out = append(out, it)
				if d <= rho+eps {
					winOut = append(winOut, it)
				}
			}
		}
		return
	}
	aIn, aOut, aWinIn, aWinOut := part(A)
	bIn, bOut, bWinIn, bWinOut := part(B)
	if (len(aIn)+len(bIn) == 0) || (len(aOut)+len(bOut) == 0) {
		qj.nestedCross(A, B, eps, emit)
		return
	}
	qj.joinWin(aIn, bIn, eps, depth+1, emit)
	qj.joinWin(aOut, bOut, eps, depth+1, emit)
	qj.joinWin(aWinIn, bWinOut, eps, depth+1, emit)
	qj.joinWin(aWinOut, bWinIn, eps, depth+1, emit)
}

// nested joins all pairs within items, filtering with the cached pivot
// distances (the "improved" part of improved Quickjoin).
func (qj *Quickjoin) nested(items []item, eps float64, emit func(a, b item, d float64)) {
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			a, b := items[i], items[j]
			if diff := a.dPiv - b.dPiv; diff > eps || -diff > eps {
				continue // triangle-inequality filter, no computation
			}
			if d := qj.Dist.Distance(a.obj, b.obj); d <= eps {
				emit(a, b, d)
			}
		}
	}
}

// nestedCross joins pairs across A×B with the same filter.
func (qj *Quickjoin) nestedCross(A, B []item, eps float64, emit func(a, b item, d float64)) {
	for _, a := range A {
		for _, b := range B {
			if diff := a.dPiv - b.dPiv; diff > eps || -diff > eps {
				continue
			}
			if d := qj.Dist.Distance(a.obj, b.obj); d <= eps {
				emit(a, b, d)
			}
		}
	}
}
