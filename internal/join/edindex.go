package join

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// EDIndex is a simplified eD-index (Dohnal, Gennaro, Zezula) used as the
// index-based similarity-join baseline of Fig. 17. Each level ball-partitions
// the remaining objects around a pivot at its median radius r_m with split
// parameter ρ: objects inside r_m−ρ go to the level's bucket 0, objects
// beyond r_m+ρ to bucket 1, and the ring in between is excluded to the next
// level. The separable property guarantees that objects in different buckets
// of a level are more than 2ρ apart, so a join with ε ≤ ε₀ (we set ρ = ε₀,
// giving a 2ρ ≥ ε separability margin) only needs bucket-local work. The
// eD-index's ε-overloading replicates each excluded object into the bucket
// whose boundary it is within ε₀ of — the replication that causes the
// duplicated page accesses the paper observes.
//
// Joins with ε > ε₀ are rejected: the index must be rebuilt with a larger
// ε₀, exactly the applicability limit reported in Section 6.4.
type EDIndex struct {
	dist   *metric.Counter
	codec  metric.Codec
	eps0   float64
	rho    float64
	store  *page.Cache
	levels []level
	final  bucketRef
	count  int
}

type level struct {
	pivot  metric.Object
	median float64
	b0, b1 bucketRef
}

// bucketRef locates a bucket's serialized records in the page store.
type bucketRef struct {
	firstPage page.ID
	numPages  int
	records   int
}

// EDOptions configures BuildED.
type EDOptions struct {
	// Distance is the metric; required.
	Distance metric.DistanceFunc
	// Codec decodes objects from bucket pages; required.
	Codec metric.Codec
	// Eps0 is the largest ε the index will support; required (> 0). The
	// split parameter is ρ = Eps0, so joins up to 2ρ are separable with a
	// safety margin.
	Eps0 float64
	// Levels is the number of exclusion levels; 0 means 5.
	Levels int
	// Store backs the buckets; nil selects a fresh in-memory store.
	Store page.Store
	// CacheSize is the buffer-cache capacity (default 32).
	CacheSize int
	// Seed seeds pivot sampling; 0 means 1.
	Seed int64
}

// edItem is a bucket record: the object, its input side, its distance to the
// level pivot (used as a join filter), and whether it is an overloading copy
// (copies never pair with each other — their pair is found at a later level
// through the originals).
type edItem struct {
	obj  metric.Object
	side uint8
	d    float64
	copy bool
}

// BuildED builds the eD-index over the union of Q and O (side-labeled).
// Passing the same slice twice builds a self-join index.
func BuildED(Q, O []metric.Object, opts EDOptions) (*EDIndex, error) {
	if opts.Distance == nil || opts.Codec == nil {
		return nil, fmt.Errorf("join: EDOptions.Distance and Codec are required")
	}
	if opts.Eps0 <= 0 {
		return nil, fmt.Errorf("join: EDOptions.Eps0 must be positive")
	}
	nLevels := opts.Levels
	if nLevels == 0 {
		nLevels = 5
	}
	store := opts.Store
	if store == nil {
		store = page.NewMemStore()
	}
	cs := opts.CacheSize
	if cs == 0 {
		cs = 32
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	e := &EDIndex{
		dist:  metric.NewCounter(opts.Distance),
		codec: opts.Codec,
		eps0:  opts.Eps0,
		rho:   opts.Eps0,
		store: page.NewCache(store, cs),
	}
	rng := rand.New(rand.NewSource(seed))

	selfJoin := len(Q) == len(O) && len(Q) > 0 && &Q[0] == &O[0]
	var remaining []edItem
	for _, q := range Q {
		remaining = append(remaining, edItem{obj: q, side: 0})
	}
	if !selfJoin {
		for _, o := range O {
			remaining = append(remaining, edItem{obj: o, side: 1})
		}
	}
	e.count = len(remaining)

	for l := 0; l < nLevels && len(remaining) > 0; l++ {
		pivot := remaining[rng.Intn(len(remaining))].obj
		ds := make([]float64, len(remaining))
		for i := range remaining {
			ds[i] = e.dist.Distance(pivot, remaining[i].obj)
		}
		sorted := append([]float64(nil), ds...)
		sort.Float64s(sorted)
		median := sorted[len(sorted)/2]

		var b0, b1, excl []edItem
		for i, it := range remaining {
			it.d = ds[i]
			switch {
			case ds[i] <= median-e.rho:
				it.copy = false
				b0 = append(b0, it)
			case ds[i] > median+e.rho:
				it.copy = false
				b1 = append(b1, it)
			default:
				orig := it
				orig.copy = false
				excl = append(excl, orig)
				// ε-overloading: replicate the excluded object into the
				// bucket whose boundary it is within ε₀ of.
				cp := it
				cp.copy = true
				if ds[i] <= median-e.rho+e.eps0 {
					b0 = append(b0, cp)
				}
				if ds[i] > median+e.rho-e.eps0 {
					b1 = append(b1, cp)
				}
			}
		}
		lv := level{pivot: pivot, median: median}
		var err error
		if lv.b0, err = e.writeBucket(b0); err != nil {
			return nil, err
		}
		if lv.b1, err = e.writeBucket(b1); err != nil {
			return nil, err
		}
		e.levels = append(e.levels, lv)
		remaining = excl
	}
	var err error
	if e.final, err = e.writeBucket(remaining); err != nil {
		return nil, err
	}
	return e, nil
}

// Join computes SJ(Q, O, ε) for ε ≤ ε₀: each level's two buckets are joined
// locally (reading their pages back from disk), then the final exclusion
// bucket.
func (e *EDIndex) Join(eps float64, selfJoin bool) ([]Pair, error) {
	if eps < 0 {
		return nil, nil
	}
	if eps > e.eps0 {
		return nil, fmt.Errorf("join: eD-index built for ε ≤ %v, got %v — rebuild with larger Eps0", e.eps0, eps)
	}
	var out []Pair
	emit := func(a, b edItem, d float64) {
		if selfJoin {
			out = append(out, Pair{A: a.obj, B: b.obj, Dist: d}, Pair{A: b.obj, B: a.obj, Dist: d})
			return
		}
		switch {
		case a.side == 0 && b.side == 1:
			out = append(out, Pair{A: a.obj, B: b.obj, Dist: d})
		case a.side == 1 && b.side == 0:
			out = append(out, Pair{A: b.obj, B: a.obj, Dist: d})
		}
	}
	buckets := make([]bucketRef, 0, 2*len(e.levels)+1)
	for _, lv := range e.levels {
		buckets = append(buckets, lv.b0, lv.b1)
	}
	buckets = append(buckets, e.final)
	for _, b := range buckets {
		items, err := e.readBucket(b)
		if err != nil {
			return nil, err
		}
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				a, bb := items[i], items[j]
				if a.copy && bb.copy {
					continue // both are replicas; their originals meet later
				}
				if diff := math.Abs(a.d - bb.d); diff > eps {
					continue // pivot filter, no distance computation
				}
				if d := e.dist.Distance(a.obj, bb.obj); d <= eps {
					emit(a, bb, d)
				}
			}
		}
	}
	if selfJoin {
		// Identity pairs: every original object pairs with itself.
		seen := map[uint64]metric.Object{}
		for _, b := range buckets {
			items, err := e.readBucket(b)
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				if !it.copy {
					seen[it.obj.ID()] = it.obj
				}
			}
		}
		for _, o := range seen {
			out = append(out, Pair{A: o, B: o, Dist: 0})
		}
	}
	sortPairs(out)
	return out, nil
}

// ResetStats zeroes the I/O and distance counters and flushes the cache.
func (e *EDIndex) ResetStats() {
	e.store.Stats().Reset()
	e.store.Flush()
	e.dist.Reset()
}

// TakeStats reads (page accesses, distance computations) since the reset.
func (e *EDIndex) TakeStats() (pa, compdists int64) {
	return e.store.Stats().Accesses(), e.dist.Count()
}

// StorageBytes returns the bucket-page footprint, replication included.
func (e *EDIndex) StorageBytes() int64 {
	return int64(e.store.NumPages()) * page.Size
}

// --- bucket serialization ---------------------------------------------------

// Bucket pages hold records back to back:
//
//	id u64 | side u8 | copy u8 | d f64 | len u32 | payload
//
// A record never splits across pages; a page ends when the next record does
// not fit (small internal fragmentation, simple scanning).
const edRecHeader = 8 + 1 + 1 + 8 + 4

func (e *EDIndex) writeBucket(items []edItem) (bucketRef, error) {
	ref := bucketRef{records: len(items)}
	if len(items) == 0 {
		return ref, nil
	}
	var buf [page.Size]byte
	off := 0
	first := true
	flush := func() error {
		pg, err := e.store.Alloc()
		if err != nil {
			return err
		}
		if first {
			ref.firstPage = pg
			first = false
		}
		ref.numPages++
		clear(buf[off:])
		return e.store.Write(pg, buf[:])
	}
	for _, it := range items {
		payload := it.obj.AppendBinary(nil)
		need := edRecHeader + len(payload)
		if need > page.Size {
			return ref, fmt.Errorf("join: object %d too large for a bucket page", it.obj.ID())
		}
		if off+need > page.Size {
			if err := flush(); err != nil {
				return ref, err
			}
			off = 0
		}
		binary.LittleEndian.PutUint64(buf[off:], it.obj.ID())
		buf[off+8] = it.side
		if it.copy {
			buf[off+9] = 1
		} else {
			buf[off+9] = 0
		}
		binary.LittleEndian.PutUint64(buf[off+10:], math.Float64bits(it.d))
		binary.LittleEndian.PutUint32(buf[off+18:], uint32(len(payload)))
		copy(buf[off+22:], payload)
		off += need
	}
	if off > 0 {
		if err := flush(); err != nil {
			return ref, err
		}
	}
	return ref, nil
}

func (e *EDIndex) readBucket(ref bucketRef) ([]edItem, error) {
	if ref.records == 0 {
		return nil, nil
	}
	items := make([]edItem, 0, ref.records)
	var buf [page.Size]byte
	pg := ref.firstPage
	for p := 0; p < ref.numPages && len(items) < ref.records; p++ {
		if err := e.store.Read(pg, buf[:]); err != nil {
			return nil, err
		}
		off := 0
		for off+edRecHeader <= page.Size && len(items) < ref.records {
			id := binary.LittleEndian.Uint64(buf[off:])
			side := buf[off+8]
			isCopy := buf[off+9] == 1
			d := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+10:]))
			plen := int(binary.LittleEndian.Uint32(buf[off+18:]))
			if plen == 0 && id == 0 && d == 0 {
				// Zero padding: rest of the page is empty. A genuine empty
				// payload with id 0 also lands here, which is fine — such a
				// record is indistinguishable from padding only when it is
				// the final record, and records counts bound the scan.
				break
			}
			if off+edRecHeader+plen > page.Size {
				return nil, fmt.Errorf("join: corrupt bucket page %d", pg)
			}
			obj, err := e.codec.Decode(id, buf[off+edRecHeader:off+edRecHeader+plen])
			if err != nil {
				return nil, err
			}
			items = append(items, edItem{obj: obj, side: side, d: d, copy: isCopy})
			off += edRecHeader + plen
		}
		pg++
	}
	if len(items) != ref.records {
		return nil, fmt.Errorf("join: bucket decoded %d of %d records", len(items), ref.records)
	}
	return items, nil
}
