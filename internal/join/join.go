// Package join implements the similarity-join baselines of the paper's
// Fig. 17: the (improved) Quickjoin algorithm of Jacox-Samet as refined by
// Fredriksson-Braithwaite, a simplified eD-index-based R-S join in the
// spirit of Dohnal et al. and Pearson-Silva, and a nested-loop reference.
package join

import (
	"sort"

	"spbtree/internal/metric"
)

// Pair is one join answer ⟨a, b⟩ with d(a, b) ≤ ε; A comes from the first
// input set and B from the second.
type Pair struct {
	A, B metric.Object
	Dist float64
}

// NestedLoop computes SJ(Q, O, ε) by exhaustive comparison — the correctness
// reference for every other join in this repository.
func NestedLoop(Q, O []metric.Object, eps float64, dist metric.DistanceFunc) []Pair {
	var out []Pair
	for _, q := range Q {
		for _, o := range O {
			if d := dist.Distance(q, o); d <= eps {
				out = append(out, Pair{A: q, B: o, Dist: d})
			}
		}
	}
	return out
}

// sortPairs orders pairs deterministically for comparisons in tests.
func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A.ID() != ps[j].A.ID() {
			return ps[i].A.ID() < ps[j].A.ID()
		}
		return ps[i].B.ID() < ps[j].B.ID()
	})
}
