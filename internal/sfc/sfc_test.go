package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func curvesUnderTest() []Curve {
	return []Curve{
		New(Hilbert, 2, 1), New(Hilbert, 2, 4), New(Hilbert, 3, 5),
		New(Hilbert, 5, 8), New(Hilbert, 9, 7),
		New(ZOrder, 2, 1), New(ZOrder, 2, 4), New(ZOrder, 3, 5),
		New(ZOrder, 5, 8), New(ZOrder, 9, 7),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range curvesUnderTest() {
		limit := uint32(1) << c.Bits()
		p := make(Point, c.Dims())
		q := make(Point, c.Dims())
		for trial := 0; trial < 500; trial++ {
			for i := range p {
				p[i] = rng.Uint32() % limit
			}
			key := c.Encode(p)
			if max := uint64(1) << (c.Dims() * c.Bits()); key >= max {
				t.Fatalf("%s(%d,%d): key %d out of range %d", c.Name(), c.Dims(), c.Bits(), key, max)
			}
			c.Decode(key, q)
			for i := range p {
				if p[i] != q[i] {
					t.Fatalf("%s(%d,%d): round trip %v -> %d -> %v", c.Name(), c.Dims(), c.Bits(), p, key, q)
				}
			}
		}
	}
}

func TestBijectionExhaustive(t *testing.T) {
	// Small grids: every key must decode to a distinct point that re-encodes
	// to the same key.
	for _, c := range []Curve{New(Hilbert, 2, 3), New(ZOrder, 2, 3), New(Hilbert, 3, 2), New(ZOrder, 3, 2)} {
		total := uint64(1) << (c.Dims() * c.Bits())
		seen := make(map[string]bool, total)
		p := make(Point, c.Dims())
		for key := uint64(0); key < total; key++ {
			c.Decode(key, p)
			sig := ""
			for _, v := range p {
				sig += string(rune(v)) + ","
			}
			if seen[sig] {
				t.Fatalf("%s: key %d decodes to duplicate point %v", c.Name(), key, p)
			}
			seen[sig] = true
			if got := c.Encode(p); got != key {
				t.Fatalf("%s: Encode(Decode(%d)) = %d", c.Name(), key, got)
			}
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// The defining property of the Hilbert curve: consecutive keys map to
	// grid cells at L1 distance exactly 1.
	for _, c := range []Curve{New(Hilbert, 2, 4), New(Hilbert, 3, 3), New(Hilbert, 4, 3)} {
		total := uint64(1) << (c.Dims() * c.Bits())
		prev := make(Point, c.Dims())
		cur := make(Point, c.Dims())
		c.Decode(0, prev)
		for key := uint64(1); key < total; key++ {
			c.Decode(key, cur)
			dist := 0
			for i := range cur {
				d := int(cur[i]) - int(prev[i])
				if d < 0 {
					d = -d
				}
				dist += d
			}
			if dist != 1 {
				t.Fatalf("hilbert(%d,%d): keys %d and %d map to cells at L1 distance %d: %v -> %v",
					c.Dims(), c.Bits(), key-1, key, dist, prev, cur)
			}
			copy(prev, cur)
		}
	}
}

func TestHilbert2DKnownOrder(t *testing.T) {
	// The canonical 2x2 Hilbert curve visits (0,0),(0,1),(1,1),(1,0) or a
	// rotation/reflection of it; with Skilling's convention and dim0 as the
	// most significant interleave position the first cell is always (0,0).
	c := New(Hilbert, 2, 1)
	p := make(Point, 2)
	c.Decode(0, p)
	if p[0] != 0 || p[1] != 0 {
		t.Errorf("hilbert key 0 = %v, want (0,0)", p)
	}
	c.Decode(3, p)
	if p[0]+p[1] != 1 {
		t.Errorf("hilbert key 3 = %v, want a corner adjacent to (0,0)", p)
	}
}

func TestZOrderKnownValues(t *testing.T) {
	c := New(ZOrder, 2, 2)
	// Z-order with dim0 most significant: key = interleave(x1 bits into odd,
	// x0 bits into even positions counting from MSB).
	cases := []struct {
		p   Point
		key uint64
	}{
		{Point{0, 0}, 0},
		{Point{0, 1}, 1},
		{Point{1, 0}, 2},
		{Point{1, 1}, 3},
		{Point{2, 0}, 8},
		{Point{3, 3}, 15},
	}
	for _, tc := range cases {
		if got := c.Encode(tc.p); got != tc.key {
			t.Errorf("zorder Encode(%v) = %d, want %d", tc.p, got, tc.key)
		}
	}
}

func TestZOrderMonotonicity(t *testing.T) {
	// Lemma 6's requirement: coordinatewise dominance implies key order.
	c := New(ZOrder, 4, 6)
	f := func(a, b [4]uint16) bool {
		p := make(Point, 4)
		q := make(Point, 4)
		for i := 0; i < 4; i++ {
			p[i] = uint32(a[i]) % 64
			q[i] = uint32(b[i]) % 64
			if q[i] < p[i] {
				p[i], q[i] = q[i], p[i]
			}
		}
		return c.Encode(p) <= c.Encode(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysInBox(t *testing.T) {
	for _, c := range []Curve{New(Hilbert, 2, 4), New(ZOrder, 2, 4)} {
		lo := Point{3, 5}
		hi := Point{6, 7}
		keys := KeysInBox(c, lo, hi, 1000)
		if len(keys) != 12 { // 4 * 3 cells
			t.Fatalf("%s: got %d keys, want 12", c.Name(), len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] <= keys[i-1] {
				t.Fatalf("%s: keys not strictly ascending at %d", c.Name(), i)
			}
		}
		// Every key decodes into the box; every box cell appears.
		p := make(Point, 2)
		for _, k := range keys {
			c.Decode(k, p)
			if !Contains(lo, hi, p) {
				t.Fatalf("%s: key %d decodes to %v outside box", c.Name(), k, p)
			}
		}
	}
}

func TestKeysInBoxLimit(t *testing.T) {
	c := New(Hilbert, 2, 4)
	if got := KeysInBox(c, Point{0, 0}, Point{15, 15}, 10); got != nil {
		t.Errorf("limit exceeded but got %d keys", len(got))
	}
	if got := KeysInBox(c, Point{5, 5}, Point{4, 4}, 100); got != nil {
		t.Errorf("empty box returned %d keys", len(got))
	}
	if got := KeysInBox(c, Point{5, 5}, Point{5, 5}, 100); len(got) != 1 {
		t.Errorf("single-cell box returned %d keys", len(got))
	}
}

func TestBoxVolume(t *testing.T) {
	if v := BoxVolume(Point{0, 0}, Point{3, 1}); v != 8 {
		t.Errorf("BoxVolume = %d, want 8", v)
	}
	if v := BoxVolume(Point{2}, Point{1}); v != 0 {
		t.Errorf("empty box volume = %d", v)
	}
	// Saturation instead of overflow.
	big := Point{^uint32(0), ^uint32(0)}
	if v := BoxVolume(Point{0, 0}, big); v != uint64(1)<<62 {
		t.Errorf("saturated volume = %d", v)
	}
}

func TestBoxPredicates(t *testing.T) {
	lo, hi := Point{2, 2}, Point{5, 5}
	if !Contains(lo, hi, Point{2, 5}) || Contains(lo, hi, Point{1, 3}) || Contains(lo, hi, Point{3, 6}) {
		t.Error("Contains is wrong")
	}
	if !Intersects(lo, hi, Point{5, 5}, Point{9, 9}) {
		t.Error("touching boxes should intersect")
	}
	if Intersects(lo, hi, Point{6, 0}, Point{9, 9}) {
		t.Error("disjoint boxes reported intersecting")
	}
	olo, ohi := make(Point, 2), make(Point, 2)
	if !IntersectBox(lo, hi, Point{4, 0}, Point{9, 3}, olo, ohi) {
		t.Fatal("IntersectBox reported empty for overlapping boxes")
	}
	if olo[0] != 4 || olo[1] != 2 || ohi[0] != 5 || ohi[1] != 3 {
		t.Errorf("IntersectBox = [%v, %v]", olo, ohi)
	}
	if IntersectBox(lo, hi, Point{6, 6}, Point{7, 7}, olo, ohi) {
		t.Error("IntersectBox reported non-empty for disjoint boxes")
	}
}

func TestMinDistLInf(t *testing.T) {
	lo, hi := Point{2, 2}, Point{5, 5}
	if d := MinDistLInf(lo, hi, Point{3, 4}); d != 0 {
		t.Errorf("inside point dist = %d", d)
	}
	if d := MinDistLInf(lo, hi, Point{0, 3}); d != 2 {
		t.Errorf("dist = %d, want 2", d)
	}
	if d := MinDistLInf(lo, hi, Point{9, 0}); d != 4 {
		t.Errorf("dist = %d, want 4", d)
	}
}

func TestHilbertClusteringBeatsZOrder(t *testing.T) {
	// The paper's Table 4 premise: the Hilbert curve clusters query regions
	// into fewer contiguous key runs than the Z-curve (Moon et al., "Analysis
	// of the clustering properties of the Hilbert space-filling curve").
	// Fewer runs mean fewer disk seeks for the same mapped range region.
	h := New(Hilbert, 2, 6)
	z := New(ZOrder, 2, 6)
	rng := rand.New(rand.NewSource(21))
	runs := func(c Curve, lo, hi Point) int {
		keys := KeysInBox(c, lo, hi, 1<<20)
		n := 1
		for i := 1; i < len(keys); i++ {
			if keys[i] != keys[i-1]+1 {
				n++
			}
		}
		return n
	}
	var hr, zr int
	for trial := 0; trial < 200; trial++ {
		x := rng.Uint32() % 48
		y := rng.Uint32() % 48
		w := 2 + rng.Uint32()%14
		lo := Point{x, y}
		hi := Point{x + w, y + w}
		hr += runs(h, lo, hi)
		zr += runs(z, lo, hi)
	}
	if hr >= zr {
		t.Errorf("hilbert total runs %d should beat zorder %d", hr, zr)
	}
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(Hilbert, 0, 4) },
		func() { New(Hilbert, 5, 0) },
		func() { New(ZOrder, 9, 8) },   // 72 bits
		func() { New(Hilbert, 1, 40) }, // > 32 bits/dim
		func() { New(Kind(99), 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEncodePanicsOutOfRange(t *testing.T) {
	c := New(Hilbert, 2, 3)
	defer func() {
		if recover() == nil {
			t.Error("Encode accepted out-of-range coordinate")
		}
	}()
	c.Encode(Point{8, 0})
}
