// Package sfc implements the space-filling curves used by the SPB-tree's
// second mapping stage: the Hilbert curve (better clustering, used for
// similarity search) and the Z-order curve (coordinatewise monotone, required
// by the similarity-join algorithm's Lemma 6).
//
// A curve maps points of a dims-dimensional integer grid with bits bits per
// dimension to one-dimensional uint64 keys bijectively. dims*bits must be at
// most 64.
package sfc

import "fmt"

// Point is a cell coordinate in the mapped vector space: Point[i] is the
// quantized distance of an object to pivot i.
type Point []uint32

// Curve is a bijection between grid points and one-dimensional keys.
type Curve interface {
	// Dims returns the grid dimensionality.
	Dims() int
	// Bits returns the number of bits per dimension.
	Bits() int
	// Encode maps a point to its curve key. Coordinates must be < 1<<Bits.
	Encode(p Point) uint64
	// Decode fills p (which must have length Dims) with the coordinates of
	// the given key.
	Decode(key uint64, p Point)
	// Name returns "hilbert" or "zorder".
	Name() string
}

// Kind selects a curve family.
type Kind int

const (
	// Hilbert selects the Hilbert curve.
	Hilbert Kind = iota
	// ZOrder selects the Z-order (Morton) curve.
	ZOrder
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Hilbert:
		return "hilbert"
	case ZOrder:
		return "zorder"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New returns a curve of the given kind over a dims-dimensional grid with
// bits bits per dimension. It panics if the parameters do not fit in 64 bits
// or are non-positive.
func New(kind Kind, dims, bits int) Curve {
	validate(dims, bits)
	switch kind {
	case Hilbert:
		return &hilbertCurve{dims: dims, bits: bits}
	case ZOrder:
		return &zorderCurve{dims: dims, bits: bits}
	default:
		panic(fmt.Sprintf("sfc: unknown curve kind %d", kind))
	}
}

func validate(dims, bits int) {
	if dims <= 0 || bits <= 0 {
		panic(fmt.Sprintf("sfc: non-positive dims=%d bits=%d", dims, bits))
	}
	if dims*bits > 64 {
		panic(fmt.Sprintf("sfc: dims*bits = %d*%d exceeds 64", dims, bits))
	}
	if bits > 32 {
		panic(fmt.Sprintf("sfc: bits=%d exceeds 32 (Point is uint32)", bits))
	}
}

func checkPoint(c Curve, p Point) {
	if len(p) != c.Dims() {
		panic(fmt.Sprintf("sfc: point has %d dims, curve has %d", len(p), c.Dims()))
	}
	limit := uint32(1) << c.Bits()
	for i, v := range p {
		if v >= limit {
			panic(fmt.Sprintf("sfc: coordinate %d = %d out of range [0, %d)", i, v, limit))
		}
	}
}
