package sfc

import (
	"math/rand"
	"testing"
)

// bruteNextInBox is the reference: scan keys upward, decode, test.
func bruteNextInBox(c Curve, lo, hi Point, z uint64) (uint64, bool) {
	total := uint64(1) << (c.Dims() * c.Bits())
	p := make(Point, c.Dims())
	for k := z; k < total; k++ {
		c.Decode(k, p)
		if Contains(lo, hi, p) {
			return k, true
		}
	}
	return 0, false
}

func TestNextInBoxExhaustive(t *testing.T) {
	for _, cfg := range []struct{ dims, bits int }{{2, 3}, {3, 2}} {
		c := New(ZOrder, cfg.dims, cfg.bits)
		rng := rand.New(rand.NewSource(int64(cfg.dims)))
		side := uint32(1) << cfg.bits
		for trial := 0; trial < 60; trial++ {
			lo := make(Point, cfg.dims)
			hi := make(Point, cfg.dims)
			for d := range lo {
				a := rng.Uint32() % side
				b := rng.Uint32() % side
				if a > b {
					a, b = b, a
				}
				lo[d], hi[d] = a, b
			}
			total := uint64(1) << (cfg.dims * cfg.bits)
			for z := uint64(0); z < total; z++ {
				got, gotOK := NextInBox(c, lo, hi, z)
				want, wantOK := bruteNextInBox(c, lo, hi, z)
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("dims=%d bits=%d box=[%v,%v] z=%d: got (%d,%v), want (%d,%v)",
						cfg.dims, cfg.bits, lo, hi, z, got, gotOK, want, wantOK)
				}
			}
		}
	}
}

func TestNextInBoxRandomLarge(t *testing.T) {
	c := New(ZOrder, 4, 8)
	rng := rand.New(rand.NewSource(7))
	p := make(Point, 4)
	for trial := 0; trial < 3000; trial++ {
		lo := make(Point, 4)
		hi := make(Point, 4)
		for d := range lo {
			a := rng.Uint32() % 256
			b := rng.Uint32() % 256
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		z := rng.Uint64() & (1<<32 - 1)
		got, ok := NextInBox(c, lo, hi, z)
		if !ok {
			// Verify no member >= z exists: max box key must be < z.
			if c.Encode(hi) >= z {
				t.Fatalf("trial %d: reported none but box max %d >= z %d", trial, c.Encode(hi), z)
			}
			continue
		}
		if got < z {
			t.Fatalf("trial %d: NextInBox %d < z %d", trial, got, z)
		}
		c.Decode(got, p)
		if !Contains(lo, hi, p) {
			t.Fatalf("trial %d: NextInBox %d decodes outside box", trial, got)
		}
		// Minimality: no box member in [z, got).
		// Sample a few keys in between rather than scanning all.
		for s := 0; s < 50 && got > z; s++ {
			k := z + rng.Uint64()%(got-z)
			c.Decode(k, p)
			if Contains(lo, hi, p) {
				t.Fatalf("trial %d: key %d in [z=%d, got=%d) is inside the box", trial, k, z, got)
			}
		}
	}
}

func TestNextInBoxEdges(t *testing.T) {
	c := New(ZOrder, 2, 4)
	lo := Point{4, 4}
	hi := Point{7, 9}
	if _, ok := NextInBox(c, Point{5, 5}, Point{4, 4}, 0); ok {
		t.Error("empty box produced a key")
	}
	if got, ok := NextInBox(c, lo, hi, 0); !ok || got != c.Encode(lo) {
		t.Errorf("z=0: got (%d,%v), want box min %d", got, ok, c.Encode(lo))
	}
	if _, ok := NextInBox(c, lo, hi, c.Encode(hi)+1); ok {
		t.Error("z beyond box max produced a key")
	}
	if got, ok := NextInBox(c, lo, hi, c.Encode(hi)); !ok || got != c.Encode(hi) {
		t.Errorf("z at box max: got (%d,%v)", got, ok)
	}
}

func TestNextInBoxRequiresZOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Hilbert curve accepted")
		}
	}()
	c := New(Hilbert, 2, 2)
	NextInBox(c, Point{0, 0}, Point{1, 1}, 0)
}

// BenchmarkNextInBox quantifies the skip operation against decoding every
// key — the reason ZB/UB-tree scans stay cheap on sparse boxes.
func BenchmarkNextInBox(b *testing.B) {
	c := New(ZOrder, 5, 8)
	lo := Point{100, 100, 100, 100, 100}
	hi := Point{110, 110, 110, 110, 110}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NextInBox(c, lo, hi, rng.Uint64()&(1<<40-1))
	}
}
