package sfc

import "testing"

// FuzzRoundTrip checks key→point→key identity for both curves at arbitrary
// dimensionalities within the 64-bit budget.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(2), uint8(4), false)
	f.Add(uint64(12345), uint8(5), uint8(8), true)
	f.Add(^uint64(0), uint8(9), uint8(7), false)
	f.Fuzz(func(t *testing.T, key uint64, dims, bits uint8, zorder bool) {
		d := int(dims%9) + 1
		b := int(bits%12) + 1
		if d*b > 64 {
			b = 64 / d
		}
		kind := Hilbert
		if zorder {
			kind = ZOrder
		}
		c := New(kind, d, b)
		key &= uint64(1)<<(d*b) - 1
		p := make(Point, d)
		c.Decode(key, p)
		for i, v := range p {
			if v >= uint32(1)<<b {
				t.Fatalf("coordinate %d = %d out of range", i, v)
			}
		}
		if got := c.Encode(p); got != key {
			t.Fatalf("%s(%d,%d): Encode(Decode(%d)) = %d", c.Name(), d, b, key, got)
		}
	})
}

// FuzzNextInBox checks BIGMIN's postconditions on arbitrary boxes and keys.
func FuzzNextInBox(f *testing.F) {
	f.Add(uint32(1), uint32(5), uint32(2), uint32(6), uint64(17))
	f.Add(uint32(0), uint32(15), uint32(0), uint32(15), uint64(0))
	f.Fuzz(func(t *testing.T, lo0, hi0, lo1, hi1 uint32, z uint64) {
		c := New(ZOrder, 2, 8)
		lo := Point{lo0 % 256, lo1 % 256}
		hi := Point{hi0 % 256, hi1 % 256}
		if lo[0] > hi[0] {
			lo[0], hi[0] = hi[0], lo[0]
		}
		if lo[1] > hi[1] {
			lo[1], hi[1] = hi[1], lo[1]
		}
		z &= 1<<16 - 1
		got, ok := NextInBox(c, lo, hi, z)
		p := make(Point, 2)
		if !ok {
			// Nothing >= z: the box maximum must be below z.
			if c.Encode(hi) >= z {
				t.Fatalf("none reported, but Encode(hi)=%d >= z=%d", c.Encode(hi), z)
			}
			return
		}
		if got < z {
			t.Fatalf("NextInBox %d < z %d", got, z)
		}
		c.Decode(got, p)
		if !Contains(lo, hi, p) {
			t.Fatalf("result %d outside box", got)
		}
		// Minimality against the brute-force reference (cheap: small grid).
		want, _ := bruteNextInBox(c, lo, hi, z)
		if got != want {
			t.Fatalf("NextInBox = %d, brute force = %d", got, want)
		}
	})
}
