package sfc

// hilbertCurve implements the n-dimensional Hilbert curve using Skilling's
// transpose algorithm (J. Skilling, "Programming the Hilbert curve", AIP
// Conf. Proc. 707, 2004). Coordinates are first converted to/from the
// "transposed" Hilbert representation and then bit-interleaved into a single
// key with dimension 0 holding the most significant bit of each level.
type hilbertCurve struct {
	dims, bits int
}

func (h *hilbertCurve) Dims() int    { return h.dims }
func (h *hilbertCurve) Bits() int    { return h.bits }
func (h *hilbertCurve) Name() string { return "hilbert" }

// Encode maps a grid point to its Hilbert key.
func (h *hilbertCurve) Encode(p Point) uint64 {
	checkPoint(h, p)
	var buf [maxDims]uint32
	x := buf[:h.dims]
	copy(x, p)
	axesToTranspose(x, h.bits)
	return interleave(x, h.bits)
}

// Decode fills p with the coordinates of key.
func (h *hilbertCurve) Decode(key uint64, p Point) {
	if len(p) != h.dims {
		panic("sfc: Decode point has wrong dimensionality")
	}
	deinterleave(key, p, h.bits)
	transposeToAxes(p, h.bits)
}

// maxDims bounds the stack buffer used to avoid allocating per Encode call;
// dims*bits <= 64 implies dims <= 64.
const maxDims = 64

// axesToTranspose converts coordinates in x (b bits each) into the transposed
// Hilbert index in place.
func axesToTranspose(x []uint32, b int) {
	n := len(x)
	m := uint32(1) << (b - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts the transposed Hilbert index in x (b bits each)
// back into coordinates in place.
func transposeToAxes(x []uint32, b int) {
	n := len(x)
	nbit := uint32(2) << (b - 1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != nbit; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed representation into a single key: the bit
// at level l (l = b-1 is most significant) of dimension i lands at key bit
// (l*n + (n-1-i)) counted from the least significant end of the n*b-bit key.
func interleave(x []uint32, b int) uint64 {
	n := len(x)
	var key uint64
	for l := b - 1; l >= 0; l-- {
		for i := 0; i < n; i++ {
			key = key<<1 | uint64((x[i]>>l)&1)
		}
	}
	return key
}

// deinterleave splits key back into the transposed representation.
func deinterleave(key uint64, x []uint32, b int) {
	n := len(x)
	for i := range x {
		x[i] = 0
	}
	for pos := n*b - 1; pos >= 0; pos-- {
		bit := uint32(key>>pos) & 1
		level := pos / n
		dim := n - 1 - pos%n
		x[dim] |= bit << level
	}
}

var _ Curve = (*hilbertCurve)(nil)
