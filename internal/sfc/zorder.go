package sfc

// zorderCurve is the Z-order (Morton) curve: plain bit interleaving with
// dimension 0 holding the most significant bit of each level. Unlike the
// Hilbert curve it is coordinatewise monotone — if p[i] <= q[i] for all i
// then Encode(p) <= Encode(q) — the property Lemma 6 of the paper exploits
// for similarity joins.
type zorderCurve struct {
	dims, bits int
}

func (z *zorderCurve) Dims() int    { return z.dims }
func (z *zorderCurve) Bits() int    { return z.bits }
func (z *zorderCurve) Name() string { return "zorder" }

// Encode maps a grid point to its Z-order key.
func (z *zorderCurve) Encode(p Point) uint64 {
	checkPoint(z, p)
	var key uint64
	for l := z.bits - 1; l >= 0; l-- {
		for i := 0; i < z.dims; i++ {
			key = key<<1 | uint64((p[i]>>l)&1)
		}
	}
	return key
}

// Decode fills p with the coordinates of key.
func (z *zorderCurve) Decode(key uint64, p Point) {
	if len(p) != z.dims {
		panic("sfc: Decode point has wrong dimensionality")
	}
	for i := range p {
		p[i] = 0
	}
	for pos := z.dims*z.bits - 1; pos >= 0; pos-- {
		bit := uint32(key>>pos) & 1
		level := pos / z.dims
		dim := z.dims - 1 - pos%z.dims
		p[dim] |= bit << level
	}
}

var _ Curve = (*zorderCurve)(nil)
