package sfc

import "fmt"

// NextInBox returns the smallest Z-order key k >= z whose grid point lies in
// the inclusive box [lo, hi], and whether such a key exists. It is the
// BIGMIN operation of Tropf and Herzog that UB-tree/ZB-tree style scans use
// to skip runs of keys outside a query box without decoding them — the
// Z-curve counterpart of the Hilbert-side computeSFC enumeration in
// Algorithm 1. Only Z-order curves support it (the Hilbert curve has no
// per-bit decomposition of box membership).
func NextInBox(c Curve, lo, hi Point, z uint64) (uint64, bool) {
	zc, ok := c.(*zorderCurve)
	if !ok {
		panic(fmt.Sprintf("sfc: NextInBox requires a Z-order curve, got %s", c.Name()))
	}
	checkPoint(c, lo)
	checkPoint(c, hi)
	for i := range lo {
		if lo[i] > hi[i] {
			return 0, false
		}
	}
	minz := c.Encode(lo)
	maxz := c.Encode(hi)
	if z <= minz {
		return minz, true
	}
	if z > maxz {
		return 0, false
	}
	// Walk bits from the most significant; maintain shrinking box
	// [minz, maxz] and the best "bigmin" fallback found so far.
	n := zc.dims
	totalBits := n * zc.bits
	bigmin := uint64(0)
	haveBigmin := false
	for pos := totalBits - 1; pos >= 0; pos-- {
		zb := (z >> pos) & 1
		minb := (minz >> pos) & 1
		maxb := (maxz >> pos) & 1
		switch {
		case zb == 0 && minb == 0 && maxb == 0:
			// stay
		case zb == 0 && minb == 0 && maxb == 1:
			bigmin = load1(minz, pos, n)
			haveBigmin = true
			maxz = load0(maxz, pos, n)
		case zb == 0 && minb == 1 && maxb == 1:
			// z is below the whole remaining box: its minimum is the answer.
			return minz, true
		case zb == 1 && minb == 0 && maxb == 0:
			// z is above the whole remaining box: fall back to bigmin.
			if haveBigmin {
				return bigmin, true
			}
			return 0, false
		case zb == 1 && minb == 0 && maxb == 1:
			minz = load1(minz, pos, n)
		case zb == 1 && minb == 1 && maxb == 1:
			// stay
		default:
			// minb == 1 && maxb == 0 cannot happen for minz <= maxz with a
			// consistent prefix.
			panic("sfc: NextInBox invariant violated")
		}
	}
	// Every bit of z was compatible with the box: z itself is a member.
	return z, true
}

// sameDimLowerMask returns the mask of bit positions below pos that belong
// to the same dimension (stride n).
func sameDimLowerMask(pos, n int) uint64 {
	var m uint64
	for p := pos - n; p >= 0; p -= n {
		m |= uint64(1) << p
	}
	return m
}

// load1 sets bit pos of v to 1 and zeroes the lower bits of that dimension:
// the smallest value of the dimension's suffix with the bit forced high.
func load1(v uint64, pos, n int) uint64 {
	v |= uint64(1) << pos
	v &^= sameDimLowerMask(pos, n)
	return v
}

// load0 clears bit pos of v and raises the lower bits of that dimension:
// the largest value of the dimension's suffix with the bit forced low.
func load0(v uint64, pos, n int) uint64 {
	v &^= uint64(1) << pos
	v |= sameDimLowerMask(pos, n)
	return v
}
