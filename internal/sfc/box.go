package sfc

import (
	"fmt"
	"sort"
)

// BoxVolume returns the number of grid cells in the axis-aligned box
// [lo, hi] (inclusive corners), or 0 if the box is empty. The result
// saturates at 1<<62 to avoid overflow on pathological boxes.
func BoxVolume(lo, hi Point) uint64 {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("sfc: BoxVolume corners have dims %d and %d", len(lo), len(hi)))
	}
	const cap = uint64(1) << 62
	vol := uint64(1)
	for i := range lo {
		if hi[i] < lo[i] {
			return 0
		}
		side := uint64(hi[i]-lo[i]) + 1
		if vol > cap/side {
			return cap
		}
		vol *= side
	}
	return vol
}

// KeysInBox returns the curve keys of every grid cell in the inclusive box
// [lo, hi], sorted ascending. It is the computeSFC step of the paper's range
// query algorithm (Algorithm 1, line 15), invoked only when the box holds
// fewer cells than a leaf node holds entries, so enumeration stays cheap.
// The limit argument bounds the enumeration; if the box volume exceeds it,
// KeysInBox returns nil to signal the caller to fall back to per-entry
// verification.
func KeysInBox(c Curve, lo, hi Point, limit int) []uint64 {
	vol := BoxVolume(lo, hi)
	if vol == 0 || (limit >= 0 && vol > uint64(limit)) {
		return nil
	}
	keys := make([]uint64, 0, vol)
	cur := make(Point, len(lo))
	copy(cur, lo)
	for {
		keys = append(keys, c.Encode(cur))
		// Odometer increment across dimensions.
		i := len(cur) - 1
		for ; i >= 0; i-- {
			if cur[i] < hi[i] {
				cur[i]++
				break
			}
			cur[i] = lo[i]
		}
		if i < 0 {
			break
		}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

// Contains reports whether point p lies in the inclusive box [lo, hi].
func Contains(lo, hi, p Point) bool {
	for i := range p {
		if p[i] < lo[i] || p[i] > hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the inclusive boxes [alo, ahi] and [blo, bhi]
// overlap.
func Intersects(alo, ahi, blo, bhi Point) bool {
	for i := range alo {
		if ahi[i] < blo[i] || bhi[i] < alo[i] {
			return false
		}
	}
	return true
}

// IntersectBox writes the intersection of [alo, ahi] and [blo, bhi] into
// (olo, ohi) and reports whether it is non-empty.
func IntersectBox(alo, ahi, blo, bhi, olo, ohi Point) bool {
	for i := range alo {
		lo, hi := alo[i], ahi[i]
		if blo[i] > lo {
			lo = blo[i]
		}
		if bhi[i] < hi {
			hi = bhi[i]
		}
		if hi < lo {
			return false
		}
		olo[i], ohi[i] = lo, hi
	}
	return true
}

// MinDistLInf returns the minimum L∞ distance, in whole cells, between point
// p and the inclusive box [lo, hi]; 0 if p is inside.
func MinDistLInf(lo, hi, p Point) uint32 {
	var m uint32
	for i := range p {
		var d uint32
		switch {
		case p[i] < lo[i]:
			d = lo[i] - p[i]
		case p[i] > hi[i]:
			d = p[i] - hi[i]
		}
		if d > m {
			m = d
		}
	}
	return m
}
