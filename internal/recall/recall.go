// Package recall measures approximate-search answer quality: recall@k of a
// result list against an exact baseline. It is the one shared implementation
// used by the spbbench recall/latency experiments and the library's
// approximate-search tests, so every reported recall figure means the same
// thing.
package recall

// AtK returns recall@k: the fraction of the exact top-k result IDs present
// anywhere in got. The denominator is min(k, len(exact)) — a dataset smaller
// than k does not cap recall below 1 — and an empty baseline counts as
// perfect recall (there was nothing to find). Ordering of got is irrelevant;
// duplicate IDs in got count once.
func AtK(exact, got []uint64, k int) float64 {
	if k > len(exact) {
		k = len(exact)
	}
	if k <= 0 {
		return 1
	}
	have := make(map[uint64]struct{}, len(got))
	for _, id := range got {
		have[id] = struct{}{}
	}
	hits := 0
	for _, id := range exact[:k] {
		if _, ok := have[id]; ok {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// WithinKth returns tie-aware recall@k: the fraction of the first k returned
// distances that are no larger than the exact k-th neighbor distance kth.
// Under discrete metrics (edit distance, Hamming) many objects tie at the
// k-th distance, and exact kNN breaks those ties by ID — an approximate
// answer holding a different but equally near tie subset is penalized by
// AtK despite being just as good. WithinKth is the tie-blind companion
// figure: it judges distances only. got must be ascending (the search
// contract); entries beyond k are ignored, and fewer than k entries count
// the absent ones as misses.
func WithinKth(kth float64, got []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	hits := 0
	for i, d := range got {
		if i >= k {
			break
		}
		if d <= kth {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// Mean returns the arithmetic mean of vals (0 for an empty slice).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
