package recall

import "testing"

func TestAtK(t *testing.T) {
	exact := []uint64{1, 2, 3, 4, 5}
	cases := []struct {
		name string
		got  []uint64
		k    int
		want float64
	}{
		{"perfect", []uint64{5, 4, 3, 2, 1}, 5, 1},
		{"order-insensitive", []uint64{3, 1, 2}, 3, 1},
		{"partial", []uint64{1, 2, 9}, 3, 2.0 / 3},
		{"miss", []uint64{8, 9}, 2, 0},
		{"k beyond baseline", []uint64{1, 2, 3, 4, 5}, 10, 1},
		{"empty baseline", nil, 3, 1},
		{"duplicates count once", []uint64{1, 1, 1}, 3, 1.0 / 3},
		{"k zero", []uint64{1}, 0, 1},
	}
	for _, c := range cases {
		base := exact
		if c.name == "empty baseline" {
			base = nil
		}
		if got := AtK(base, c.got, c.k); got != c.want {
			t.Errorf("%s: AtK = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestWithinKth(t *testing.T) {
	cases := []struct {
		name string
		kth  float64
		got  []float64
		k    int
		want float64
	}{
		{"all within", 2, []float64{0, 1, 2}, 3, 1},
		{"tie at kth counts", 2, []float64{2, 2, 2}, 3, 1},
		{"partial", 2, []float64{1, 2, 3}, 3, 2.0 / 3},
		{"beyond k ignored", 2, []float64{1, 1, 5, 1}, 3, 2.0 / 3},
		{"short list misses", 2, []float64{1}, 3, 1.0 / 3},
		{"k zero", 2, nil, 0, 1},
	}
	for _, c := range cases {
		if got := WithinKth(c.kth, c.got, c.k); got != c.want {
			t.Errorf("%s: WithinKth = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}
