package page

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// slowStore stalls physical reads until release is closed (announcing each
// attempt on started), so concurrent misses on one page demonstrably overlap
// the flight leader's read and exercise the in-flight coalescing.
type slowStore struct {
	*MemStore
	started chan struct{} // buffered; one send per physical read attempt
	release chan struct{} // closed to let the stalled reads proceed
}

func (s *slowStore) Read(id ID, buf []byte) error {
	s.started <- struct{}{}
	<-s.release
	return s.MemStore.Read(id, buf)
}

func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	mem := NewMemStore()
	id, err := mem.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, Size)
	for i := range want {
		want[i] = byte(i)
	}
	if err := mem.Write(id, want); err != nil {
		t.Fatal(err)
	}
	mem.Stats().Reset()

	const readers = 16
	slow := &slowStore{
		MemStore: mem,
		started:  make(chan struct{}, readers),
		release:  make(chan struct{}),
	}
	cache := NewCache(slow, 64)

	var wg sync.WaitGroup
	errs := make([]error, readers)
	bufs := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		bufs[i] = make([]byte, Size)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cache.Read(id, bufs[i])
		}(i)
	}
	// Wait until the flight leader is inside the store read, give the other
	// readers a moment to queue behind its flight, then let it finish. Every
	// waiter must be served from the leader's result.
	<-slow.started
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	close(slow.release)
	wg.Wait()

	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if string(bufs[i]) != string(want) {
			t.Fatalf("reader %d got wrong page contents", i)
		}
	}
	if got := mem.Stats().Reads(); got != 1 {
		t.Errorf("%d concurrent cold readers performed %d physical reads, want 1", readers, got)
	}
	hits, misses := cache.Counts()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (the flight leader)", misses)
	}
	if hits != readers-1 {
		t.Errorf("hits = %d, want %d (the flight waiters)", hits, readers-1)
	}
}

func TestCacheShardCount(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{0, 1},   // disabled cache: one pass-through shard
		{8, 1},   // too small to split without starving a shard
		{16, 2},  // 2 shards x 8 pages
		{64, 8},  // 8 shards x 8 pages, the minShardPages floor
		{256, 16},
		{1 << 20, 16}, // capped by maxCacheShards
	}
	for _, c := range cases {
		if got := cacheShardCount(c.capacity); got != c.want {
			t.Errorf("cacheShardCount(%d) = %d, want %d", c.capacity, got, c.want)
		}
	}
	// Capacity must be preserved exactly across the shard split.
	for _, capacity := range []int{0, 1, 8, 17, 100, 1000} {
		c := NewCache(NewMemStore(), capacity)
		total := 0
		for i := range c.shards {
			total += c.shards[i].capacity
		}
		if total != capacity || c.Capacity() != capacity {
			t.Errorf("capacity %d split into %d (Capacity()=%d)", capacity, total, c.Capacity())
		}
	}
}

// TestCacheConcurrentHammer drives readers across many pages concurrently
// with Flush and Invalidate; run under -race it is the shard-locking proof,
// and the content checks catch torn or misrouted pages.
func TestCacheConcurrentHammer(t *testing.T) {
	mem := NewMemStore()
	const pages = 64
	want := make([][]byte, pages)
	for p := 0; p < pages; p++ {
		id, err := mem.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, Size)
		copy(buf, fmt.Sprintf("page-%03d", p))
		want[p] = buf
		if err := mem.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	cache := NewCache(mem, 32) // half the working set: constant eviction

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, Size)
			for i := 0; i < 500; i++ {
				p := (w*31 + i*7) % pages
				if err := cache.Read(ID(p), buf); err != nil {
					t.Errorf("read page %d: %v", p, err)
					return
				}
				if string(buf[:8]) != string(want[p][:8]) {
					t.Errorf("page %d served wrong contents %q", p, buf[:8])
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			cache.Flush()
			cache.Invalidate(ID(i % pages))
		}
	}()
	wg.Wait()
}
