package page

import (
	"bytes"
	"errors"
	"testing"
)

func fillPage(b byte) []byte {
	buf := make([]byte, Size)
	for i := range buf {
		buf[i] = b ^ byte(i)
	}
	return buf
}

func TestChecksumStoreRoundTrip(t *testing.T) {
	cs := NewChecksumStore(NewMemStore())
	id, err := cs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	want := fillPage(0xa5)
	if err := cs.Write(id, want); err != nil {
		t.Fatal(err)
	}
	if cs.Checksummed() != 1 {
		t.Fatalf("Checksummed() = %d, want 1", cs.Checksummed())
	}
	got := make([]byte, Size)
	if err := cs.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back different bytes")
	}
}

func TestChecksumStoreDetectsTamperedPage(t *testing.T) {
	mem := NewMemStore()
	cs := NewChecksumStore(mem)
	id, _ := cs.Alloc()
	if err := cs.Write(id, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the page behind the wrapper's back.
	evil := fillPage(1)
	evil[100] ^= 0x40
	if err := mem.Write(id, evil); err != nil {
		t.Fatal(err)
	}
	err := cs.Read(id, make([]byte, Size))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered read err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.ID != id {
		t.Fatalf("err = %v, want *CorruptError pinpointing page %d", err, id)
	}
	// Rewriting through the wrapper heals it.
	if err := cs.Write(id, fillPage(2)); err != nil {
		t.Fatal(err)
	}
	if err := cs.Read(id, make([]byte, Size)); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
}

func TestChecksumStoreUnverifiedPassThrough(t *testing.T) {
	mem := NewMemStore()
	id, _ := mem.Alloc()
	if err := mem.Write(id, fillPage(7)); err != nil {
		t.Fatal(err)
	}
	cs := NewChecksumStore(mem)
	// Never written through the wrapper: read is allowed, unverified.
	if err := cs.Read(id, make([]byte, Size)); err != nil {
		t.Fatalf("unverified read: %v", err)
	}
}

func TestChecksumStoreSuspectAfterFailedWrite(t *testing.T) {
	mem := NewMemStore()
	fs := NewFaultStore(mem, -1)
	cs := NewChecksumStore(fs)
	id, _ := cs.Alloc()
	if err := cs.Write(id, fillPage(3)); err != nil {
		t.Fatal(err)
	}
	fs.FailPage(id, OpWrite)
	if err := cs.Write(id, fillPage(4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
	// The on-disk state is now unknown; reads must refuse it even though the
	// underlying read succeeds.
	err := cs.Read(id, make([]byte, Size))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read after failed write err = %v, want ErrCorrupt", err)
	}
	// A successful rewrite clears the suspicion.
	fs.ClearPageFaults()
	if err := cs.Write(id, fillPage(5)); err != nil {
		t.Fatal(err)
	}
	if err := cs.Read(id, make([]byte, Size)); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestChecksumStoreInvalidate(t *testing.T) {
	mem := NewMemStore()
	cs := NewChecksumStore(mem)
	id, _ := cs.Alloc()
	if err := cs.Write(id, fillPage(9)); err != nil {
		t.Fatal(err)
	}
	if err := mem.Write(id, fillPage(10)); err != nil {
		t.Fatal(err)
	}
	if err := cs.Read(id, make([]byte, Size)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	cs.Invalidate(id)
	if err := cs.Read(id, make([]byte, Size)); err != nil {
		t.Fatalf("read after Invalidate: %v", err)
	}
	if cs.Checksummed() != 0 {
		t.Fatalf("Checksummed() = %d, want 0", cs.Checksummed())
	}
}

func TestChecksumMetaRoundTrip(t *testing.T) {
	mem := NewMemStore()
	cs := NewChecksumStore(mem)
	for i := 0; i < 5; i++ {
		id, _ := cs.Alloc()
		if err := cs.Write(id, fillPage(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	meta := cs.Meta()

	// A fresh wrapper restored from meta validates the same pages.
	cs2 := NewChecksumStore(mem)
	if err := cs2.LoadMeta(meta); err != nil {
		t.Fatal(err)
	}
	if cs2.Checksummed() != 5 {
		t.Fatalf("Checksummed() = %d, want 5", cs2.Checksummed())
	}
	for i := 0; i < 5; i++ {
		if err := cs2.Read(ID(i), make([]byte, Size)); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	// ...and still catches tampering.
	bad := fillPage(3)
	bad[0] ^= 1
	if err := mem.Write(3, bad); err != nil {
		t.Fatal(err)
	}
	if err := cs2.Read(3, make([]byte, Size)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestChecksumLoadMetaRejectsGarbage(t *testing.T) {
	cs := NewChecksumStore(NewMemStore())
	good := cs.Meta()
	cases := [][]byte{
		nil,
		{},
		{0xff},
		{99, 0, 0, 0, 0},         // bad version
		{1, 2, 0, 0, 0},          // claims 2 entries, has none
		append(good, 0xde, 0xad), // trailing junk
		good[:len(good)-1],       // truncated
	}
	for i, c := range cases {
		if i >= 6 && len(good) < 6 {
			continue
		}
		if err := cs.LoadMeta(c); err == nil {
			t.Fatalf("case %d: LoadMeta accepted %v", i, c)
		}
	}
}

func TestCacheDoesNotCacheCorruptReads(t *testing.T) {
	mem := NewMemStore()
	cs := NewChecksumStore(mem)
	cache := NewCache(cs, 8)
	id, _ := cache.Alloc()
	good := fillPage(0x11)
	if err := cache.Write(id, good); err != nil {
		t.Fatal(err)
	}
	cache.Flush()

	bad := fillPage(0x11)
	bad[17] ^= 4
	if err := mem.Write(id, bad); err != nil {
		t.Fatal(err)
	}
	if err := cache.Read(id, make([]byte, Size)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("corrupt read not surfaced through cache")
	}
	// Repair the medium; the cache must not serve a stale corrupt copy.
	if err := mem.Write(id, good); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, Size)
	if err := cache.Read(id, buf); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if !bytes.Equal(buf, good) {
		t.Fatal("cache served stale bytes")
	}
}

func TestCacheInvalidate(t *testing.T) {
	mem := NewMemStore()
	cache := NewCache(mem, 8)
	id, _ := cache.Alloc()
	if err := cache.Write(id, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	// Mutate below the cache: a plain read still sees the resident copy.
	fresh := fillPage(2)
	if err := mem.Write(id, fresh); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, Size)
	if err := cache.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, fresh) {
		t.Fatal("expected the cached copy before Invalidate")
	}
	cache.Invalidate(id)
	if err := cache.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fresh) {
		t.Fatal("Invalidate did not evict the resident copy")
	}
}

func TestCacheWriteFailureLeavesNoStaleCopy(t *testing.T) {
	mem := NewMemStore()
	fs := NewFaultStore(mem, -1)
	cache := NewCache(fs, 8)
	id, _ := cache.Alloc()
	old := fillPage(1)
	if err := cache.Write(id, old); err != nil {
		t.Fatal(err)
	}
	fs.FailPage(id, OpWrite)
	if err := cache.Write(id, fillPage(2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
	// The failed write must not leave either the old or the new image
	// resident: the next read consults the store.
	fs.ClearPageFaults()
	buf := make([]byte, Size)
	if err := cache.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, old) {
		t.Fatal("cache returned bytes the store never acknowledged")
	}
}

func TestFaultStoreProbabilistic(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), -1)
	id, _ := fs.Alloc()
	if err := fs.Write(id, fillPage(0)); err != nil {
		t.Fatal(err)
	}
	fs.SetProbability(OpRead, 0.5, 42)
	failures := 0
	buf := make([]byte, Size)
	for i := 0; i < 200; i++ {
		if err := fs.Read(id, buf); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failures++
		}
	}
	if failures < 50 || failures > 150 {
		t.Fatalf("p=0.5 over 200 reads gave %d failures", failures)
	}
	// Writes are not targeted by OpRead faults.
	if err := fs.Write(id, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	fs.SetProbability(0, 0, 0)
	if err := fs.Read(id, buf); err != nil {
		t.Fatal(err)
	}
}

func TestFaultStoreTargetedPage(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), -1)
	a, _ := fs.Alloc()
	b, _ := fs.Alloc()
	for _, id := range []ID{a, b} {
		if err := fs.Write(id, fillPage(byte(id))); err != nil {
			t.Fatal(err)
		}
	}
	fs.FailPage(b, OpRead)
	buf := make([]byte, Size)
	if err := fs.Read(a, buf); err != nil {
		t.Fatalf("untargeted page failed: %v", err)
	}
	if err := fs.Read(b, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("targeted read err = %v, want ErrInjected", err)
	}
	// The fault targets reads only; the page can still be written.
	if err := fs.Write(b, fillPage(9)); err != nil {
		t.Fatalf("write to read-faulted page: %v", err)
	}
	fs.ClearPageFaults()
	if err := fs.Read(b, buf); err != nil {
		t.Fatalf("read after ClearPageFaults: %v", err)
	}
}

func TestFaultStoreFlipBitCaughtByChecksum(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), -1)
	cs := NewChecksumStore(fs)
	id, _ := cs.Alloc()
	if err := cs.Write(id, fillPage(0x3c)); err != nil {
		t.Fatal(err)
	}
	fs.FlipBit(id, 12345)
	// The raw read succeeds — the corruption is silent at the store layer...
	raw := make([]byte, Size)
	if err := fs.Read(id, raw); err != nil {
		t.Fatalf("flipped read should not error at the fault layer: %v", err)
	}
	want := fillPage(0x3c)
	want[12345/8] ^= 1 << (12345 % 8)
	if !bytes.Equal(raw, want) {
		t.Fatal("FlipBit did not flip exactly the requested bit")
	}
	// ...and only the checksum layer catches it.
	if err := cs.Read(id, make([]byte, Size)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("checksum layer missed a flipped bit")
	}
	fs.ClearFlips()
	if err := cs.Read(id, make([]byte, Size)); err != nil {
		t.Fatalf("read after ClearFlips: %v", err)
	}
}

func TestFaultStoreFailNextSyncs(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), -1)
	fs.FailNextSyncs(2)
	for i := 0; i < 2; i++ {
		if err := fs.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d err = %v, want ErrInjected", i, err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("third sync: %v", err)
	}
	// Sync faults do not bleed into other operations.
	fs.FailNextSyncs(1)
	if _, err := fs.Alloc(); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpRead: "read", OpWrite: "write", OpAlloc: "alloc", OpSync: "sync",
	} {
		if op.String() != want {
			t.Fatalf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if OpAll.String() == "" {
		t.Fatal("OpAll.String() empty")
	}
}
