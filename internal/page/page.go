// Package page provides fixed-size page storage with I/O accounting for all
// disk-based access methods in this library. Every index (SPB-tree B+-tree,
// RAF, M-tree, R-tree, M-Index) reads and writes 4 KB pages through a Store,
// and the paper's "PA" metric — the number of page accesses — is the count of
// physical reads and writes observed below the buffer cache.
package page

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"spbtree/internal/retry"
)

// Size is the fixed page size in bytes. The paper's experiments use a 4 KB
// disk page for every MAM.
const Size = 4096

// ID identifies a page within a Store.
type ID uint32

// Stats counts physical page reads and writes.
type Stats struct {
	reads  atomic.Int64
	writes atomic.Int64
}

// Reads returns the physical page reads since the last Reset.
func (s *Stats) Reads() int64 { return s.reads.Load() }

// Writes returns the physical page writes since the last Reset.
func (s *Stats) Writes() int64 { return s.writes.Load() }

// Accesses returns reads + writes, the paper's PA metric.
func (s *Stats) Accesses() int64 { return s.reads.Load() + s.writes.Load() }

// Reset zeroes both counters.
func (s *Stats) Reset() {
	s.reads.Store(0)
	s.writes.Store(0)
}

// Store is a flat, random-access array of fixed-size pages.
type Store interface {
	// Read copies page id into buf, which must be Size bytes long.
	Read(id ID, buf []byte) error
	// Write stores buf, which must be Size bytes long, as page id.
	Write(id ID, buf []byte) error
	// Alloc reserves a fresh zeroed page and returns its id.
	Alloc() (ID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Stats returns the physical I/O counters of the store.
	Stats() *Stats
	// Sync forces all previously written pages to stable storage. A Write
	// alone is not durable until the next successful Sync.
	Sync() error
	// Close releases underlying resources. Implementations that buffer in
	// the OS sync before closing, so a clean shutdown is durable.
	Close() error
}

var errBufSize = fmt.Errorf("page: buffer must be exactly %d bytes", Size)

// ErrOutOfRange is returned when a page id exceeds the allocated range.
var ErrOutOfRange = errors.New("page: id out of range")

// MemStore is an in-memory Store, used by tests and small experiments. It is
// safe for concurrent use.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte
	stats Stats
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Read implements Store.
func (m *MemStore) Read(id ID, buf []byte) error {
	if len(buf) != Size {
		return errBufSize
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrOutOfRange, id, len(m.pages))
	}
	m.stats.reads.Add(1)
	if p := m.pages[id]; p != nil {
		copy(buf, p)
	} else {
		clear(buf)
	}
	return nil
}

// Write implements Store.
func (m *MemStore) Write(id ID, buf []byte) error {
	if len(buf) != Size {
		return errBufSize
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrOutOfRange, id, len(m.pages))
	}
	m.stats.writes.Add(1)
	p := m.pages[id]
	if p == nil {
		p = make([]byte, Size)
		m.pages[id] = p
	}
	copy(p, buf)
	return nil
}

// Alloc implements Store.
func (m *MemStore) Alloc() (ID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, nil)
	return ID(len(m.pages) - 1), nil
}

// NumPages implements Store.
func (m *MemStore) NumPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// Stats implements Store.
func (m *MemStore) Stats() *Stats { return &m.stats }

// Sync implements Store; memory needs no syncing.
func (m *MemStore) Sync() error { return nil }

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// FileStore is a Store backed by a single flat file: page i occupies bytes
// [i*Size, (i+1)*Size).
type FileStore struct {
	mu    sync.Mutex
	f     *os.File
	n     int
	stats Stats
}

// NewFileStore creates or truncates the file at path.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("page: open store: %w", err)
	}
	return &FileStore{f: f}, nil
}

// OpenFileStore opens an existing store file, deriving the page count from
// its size (partial trailing pages are rounded up: they hold real data).
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("page: open store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("page: stat store: %w", err)
	}
	return &FileStore{f: f, n: int((st.Size() + Size - 1) / Size)}, nil
}

// NewTempFileStore creates a store in a fresh temporary file that is removed
// on Close.
func NewTempFileStore() (*FileStore, error) {
	f, err := os.CreateTemp("", "spbtree-pages-*.db")
	if err != nil {
		return nil, fmt.Errorf("page: temp store: %w", err)
	}
	// Unlink immediately; the fd keeps the data alive until Close.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return nil, fmt.Errorf("page: unlink temp store: %w", err)
	}
	return &FileStore{f: f}, nil
}

// Read implements Store.
func (s *FileStore) Read(id ID, buf []byte) error {
	if len(buf) != Size {
		return errBufSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= s.n {
		return fmt.Errorf("%w: read %d of %d", ErrOutOfRange, id, s.n)
	}
	s.stats.reads.Add(1)
	_, err := s.f.ReadAt(buf, int64(id)*Size)
	if errors.Is(err, io.EOF) {
		// Allocated but never written: logical zero page.
		clear(buf)
		return nil
	}
	if err != nil {
		return fmt.Errorf("page: read %d: %w", id, err)
	}
	return nil
}

// Write implements Store.
func (s *FileStore) Write(id ID, buf []byte) error {
	if len(buf) != Size {
		return errBufSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= s.n {
		return fmt.Errorf("%w: write %d of %d", ErrOutOfRange, id, s.n)
	}
	s.stats.writes.Add(1)
	if err := retry.WriteAt(s.f, buf, int64(id)*Size); err != nil {
		return fmt.Errorf("page: write %d: %w", id, err)
	}
	return nil
}

// Alloc implements Store.
func (s *FileStore) Alloc() (ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := ID(s.n)
	s.n++
	return id, nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Stats implements Store.
func (s *FileStore) Stats() *Stats { return &s.stats }

// Sync implements Store, fsyncing the backing file. Interrupted fsyncs are
// retried (internal/retry) rather than surfaced as spurious failures.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := retry.Sync(s.f.Sync); err != nil {
		return fmt.Errorf("page: sync store: %w", err)
	}
	return nil
}

// Close implements Store, syncing first so a clean shutdown is durable.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	syncErr := s.f.Sync()
	if err := s.f.Close(); err != nil {
		return err
	}
	if syncErr != nil {
		return fmt.Errorf("page: sync on close: %w", syncErr)
	}
	return nil
}

var (
	_ Store = (*MemStore)(nil)
	_ Store = (*FileStore)(nil)
)
