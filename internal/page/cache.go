package page

import (
	"container/list"
	"sync"
	"sync/atomic"

	"spbtree/internal/obs"
)

// Cache is a write-through LRU buffer cache layered over a Store. Reads that
// hit the cache do not touch the underlying store and therefore do not count
// toward its Stats — exactly the experimental setup of the paper's Fig. 10,
// where the cache is flushed before each query and PA measures the misses.
//
// The cache is sharded: page IDs map onto a power-of-two number of
// independently locked LRU lists (id & mask), so concurrent queries — and the
// parallel verifier workers within one query — do not serialize on a single
// mutex. Sequential page IDs land on distinct shards round-robin, which
// spreads the SFC-local access patterns of the B+-tree and RAF evenly.
// Capacity is divided across shards; small caches collapse to one shard so
// per-shard LRU behavior stays close to the paper's global LRU.
//
// Concurrent misses on the same page are coalesced: one goroutine performs
// the physical read while the rest wait for its result, so a burst of
// workers faulting the same page costs one page access (the waiters count as
// hits — they were served without touching the store).
//
// A capacity of zero disables caching: every access goes to the store, with
// no miss coalescing, so the store's counters see every read.
type Cache struct {
	store    Store
	capacity int
	shards   []cacheShard
	mask     uint64

	// tracer, when non-nil, receives a structured event per cache hit, miss
	// (with its physical read) and write-through; src labels the events.
	tracer obs.Tracer
	src    obs.Src
}

// cacheShard is one independently locked LRU over a slice of the ID space.
type cacheShard struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *cacheEntry
	index    map[ID]*list.Element
	flights  map[ID]*flight
	hits     atomic.Int64
	misses   atomic.Int64
}

type cacheEntry struct {
	id   ID
	data [Size]byte
}

// flight is an in-progress physical read being shared by concurrent misses.
type flight struct {
	done chan struct{}
	data [Size]byte
	err  error
}

// maxCacheShards bounds the shard count; minShardPages keeps each shard's
// LRU deep enough that sharding a small cache does not degrade its
// replacement behavior versus the paper's single global LRU.
const (
	maxCacheShards = 16
	minShardPages  = 8
)

// cacheShardCount picks the largest power-of-two shard count (≤
// maxCacheShards) that still leaves every shard at least minShardPages of
// capacity.
func cacheShardCount(capacity int) int {
	n := 1
	for n < maxCacheShards && capacity/(n*2) >= minShardPages {
		n *= 2
	}
	return n
}

// NewCache wraps store with an LRU cache holding up to capacity pages.
func NewCache(store Store, capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	n := cacheShardCount(capacity)
	c := &Cache{
		store:    store,
		capacity: capacity,
		shards:   make([]cacheShard, n),
		mask:     uint64(n - 1),
	}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = base
		if i < extra {
			s.capacity++
		}
		s.lru = list.New()
		s.index = make(map[ID]*list.Element, s.capacity)
		s.flights = make(map[ID]*flight)
	}
	return c
}

func (c *Cache) shard(id ID) *cacheShard { return &c.shards[uint64(id)&c.mask] }

// Read implements Store.
func (c *Cache) Read(id ID, buf []byte) error {
	if len(buf) != Size {
		return errBufSize
	}
	s := c.shard(id)
	s.mu.Lock()
	if el, ok := s.index[id]; ok {
		s.hits.Add(1)
		s.lru.MoveToFront(el)
		copy(buf, el.Value.(*cacheEntry).data[:])
		s.mu.Unlock()
		if c.tracer != nil {
			c.tracer.Event(obs.Event{Kind: obs.EvCacheHit, Src: c.src, Page: uint32(id)})
		}
		return nil
	}
	if c.capacity == 0 {
		// Caching disabled: pure pass-through, every read is physical.
		s.misses.Add(1)
		s.mu.Unlock()
		if err := c.store.Read(id, buf); err != nil {
			return err
		}
		if c.tracer != nil {
			c.tracer.Event(obs.Event{Kind: obs.EvCacheMiss, Src: c.src, Page: uint32(id)})
			c.tracer.Event(obs.Event{Kind: obs.EvPageRead, Src: c.src, Page: uint32(id)})
		}
		return nil
	}
	if fl, ok := s.flights[id]; ok {
		// Another goroutine is already reading this page; share its result.
		s.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return fl.err
		}
		s.hits.Add(1)
		copy(buf, fl.data[:])
		if c.tracer != nil {
			c.tracer.Event(obs.Event{Kind: obs.EvCacheHit, Src: c.src, Page: uint32(id)})
		}
		return nil
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[id] = fl
	s.misses.Add(1)
	s.mu.Unlock()

	fl.err = c.store.Read(id, fl.data[:])
	s.mu.Lock()
	delete(s.flights, id)
	if fl.err == nil {
		s.insertLocked(id, fl.data[:])
	}
	s.mu.Unlock()
	close(fl.done)
	if fl.err != nil {
		return fl.err
	}
	copy(buf, fl.data[:])
	if c.tracer != nil {
		c.tracer.Event(obs.Event{Kind: obs.EvCacheMiss, Src: c.src, Page: uint32(id)})
		c.tracer.Event(obs.Event{Kind: obs.EvPageRead, Src: c.src, Page: uint32(id)})
	}
	return nil
}

// Write implements Store: write-through, updating any cached copy. A failed
// underlying write evicts the page — the on-disk state is unknown, so a
// cached copy would mask the failure from later reads.
func (c *Cache) Write(id ID, buf []byte) error {
	if len(buf) != Size {
		return errBufSize
	}
	s := c.shard(id)
	s.mu.Lock()
	if err := c.store.Write(id, buf); err != nil {
		s.invalidateLocked(id)
		s.mu.Unlock()
		return err
	}
	if el, ok := s.index[id]; ok {
		s.lru.MoveToFront(el)
		copy(el.Value.(*cacheEntry).data[:], buf)
	} else {
		s.insertLocked(id, buf)
	}
	s.mu.Unlock()
	if c.tracer != nil {
		c.tracer.Event(obs.Event{Kind: obs.EvPageWrite, Src: c.src, Page: uint32(id)})
	}
	return nil
}

func (s *cacheShard) insertLocked(id ID, buf []byte) {
	if s.capacity == 0 {
		return
	}
	e := &cacheEntry{id: id}
	copy(e.data[:], buf)
	s.index[id] = s.lru.PushFront(e)
	for s.lru.Len() > s.capacity {
		back := s.lru.Back()
		delete(s.index, back.Value.(*cacheEntry).id)
		s.lru.Remove(back)
	}
}

// Invalidate evicts page id from the cache (a no-op if absent), forcing the
// next read to hit the underlying store. Verification and repair use it so
// cached copies cannot mask on-disk corruption.
func (c *Cache) Invalidate(id ID) {
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateLocked(id)
}

func (s *cacheShard) invalidateLocked(id ID) {
	if el, ok := s.index[id]; ok {
		delete(s.index, id)
		s.lru.Remove(el)
	}
}

// Alloc implements Store.
func (c *Cache) Alloc() (ID, error) { return c.store.Alloc() }

// NumPages implements Store.
func (c *Cache) NumPages() int { return c.store.NumPages() }

// Stats implements Store, returning the underlying store's physical I/O
// counters (cache hits are invisible to them).
func (c *Cache) Stats() *Stats { return c.store.Stats() }

// Sync implements Store. The cache is write-through, so syncing the
// underlying store makes every completed Write durable.
func (c *Cache) Sync() error { return c.store.Sync() }

// Close implements Store.
func (c *Cache) Close() error { return c.store.Close() }

// Flush empties the cache. The paper flushes the buffer before each of its
// 500 measured queries so that PA reflects a cold start.
func (c *Cache) Flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.lru.Init()
		clear(s.index)
		s.mu.Unlock()
	}
}

// HitRate returns the fraction of reads served from the cache, and the
// absolute hit/miss counts, since construction.
func (c *Cache) HitRate() (rate float64, hits, misses int64) {
	hits, misses = c.Counts()
	if hits+misses == 0 {
		return 0, 0, 0
	}
	return float64(hits) / float64(hits+misses), hits, misses
}

// Counts returns the raw hit/miss counters since construction, summed across
// the shards; the snapshot is a handful of atomic loads, cheap enough for
// per-query before/after deltas (core.QueryStats uses it to attribute cache
// hits above the store's PA accounting). Reads that joined another
// goroutine's in-flight physical read count as hits: they were served
// without touching the store.
func (c *Cache) Counts() (hits, misses int64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].misses.Load()
	}
	return hits, misses
}

// SetTracer installs (or, with nil, removes) a tracer receiving a structured
// event per cache hit, per miss with its physical read, and per
// write-through, labeled with src. Not synchronized with in-flight reads:
// install tracers before issuing queries.
func (c *Cache) SetTracer(tr obs.Tracer, src obs.Src) {
	c.tracer = tr
	c.src = src
}

// Capacity returns the cache capacity in pages (summed over the shards).
func (c *Cache) Capacity() int { return c.capacity }

var _ Store = (*Cache)(nil)
