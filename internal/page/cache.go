package page

import (
	"container/list"
	"sync"
	"sync/atomic"

	"spbtree/internal/obs"
)

// Cache is a write-through LRU buffer cache layered over a Store. Reads that
// hit the cache do not touch the underlying store and therefore do not count
// toward its Stats — exactly the experimental setup of the paper's Fig. 10,
// where the cache is flushed before each query and PA measures the misses.
//
// A capacity of zero disables caching: every access goes to the store.
type Cache struct {
	mu       sync.Mutex
	store    Store
	capacity int
	lru      *list.List // front = most recently used; values are *cacheEntry
	index    map[ID]*list.Element
	hits     atomic.Int64
	misses   atomic.Int64

	// tracer, when non-nil, receives a structured event per cache hit, miss
	// (with its physical read) and write-through; src labels the events.
	tracer obs.Tracer
	src    obs.Src
}

type cacheEntry struct {
	id   ID
	data [Size]byte
}

// NewCache wraps store with an LRU cache holding up to capacity pages.
func NewCache(store Store, capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		store:    store,
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[ID]*list.Element, capacity),
	}
}

// Read implements Store.
func (c *Cache) Read(id ID, buf []byte) error {
	if len(buf) != Size {
		return errBufSize
	}
	c.mu.Lock()
	if el, ok := c.index[id]; ok {
		c.hits.Add(1)
		c.lru.MoveToFront(el)
		copy(buf, el.Value.(*cacheEntry).data[:])
		c.mu.Unlock()
		if c.tracer != nil {
			c.tracer.Event(obs.Event{Kind: obs.EvCacheHit, Src: c.src, Page: uint32(id)})
		}
		return nil
	}
	c.misses.Add(1)
	if err := c.store.Read(id, buf); err != nil {
		c.mu.Unlock()
		return err
	}
	c.insertLocked(id, buf)
	c.mu.Unlock()
	if c.tracer != nil {
		c.tracer.Event(obs.Event{Kind: obs.EvCacheMiss, Src: c.src, Page: uint32(id)})
		c.tracer.Event(obs.Event{Kind: obs.EvPageRead, Src: c.src, Page: uint32(id)})
	}
	return nil
}

// Write implements Store: write-through, updating any cached copy. A failed
// underlying write evicts the page — the on-disk state is unknown, so a
// cached copy would mask the failure from later reads.
func (c *Cache) Write(id ID, buf []byte) error {
	if len(buf) != Size {
		return errBufSize
	}
	c.mu.Lock()
	if err := c.store.Write(id, buf); err != nil {
		c.invalidateLocked(id)
		c.mu.Unlock()
		return err
	}
	if el, ok := c.index[id]; ok {
		c.lru.MoveToFront(el)
		copy(el.Value.(*cacheEntry).data[:], buf)
	} else {
		c.insertLocked(id, buf)
	}
	c.mu.Unlock()
	if c.tracer != nil {
		c.tracer.Event(obs.Event{Kind: obs.EvPageWrite, Src: c.src, Page: uint32(id)})
	}
	return nil
}

func (c *Cache) insertLocked(id ID, buf []byte) {
	if c.capacity == 0 {
		return
	}
	e := &cacheEntry{id: id}
	copy(e.data[:], buf)
	c.index[id] = c.lru.PushFront(e)
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		delete(c.index, back.Value.(*cacheEntry).id)
		c.lru.Remove(back)
	}
}

// Invalidate evicts page id from the cache (a no-op if absent), forcing the
// next read to hit the underlying store. Verification and repair use it so
// cached copies cannot mask on-disk corruption.
func (c *Cache) Invalidate(id ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidateLocked(id)
}

func (c *Cache) invalidateLocked(id ID) {
	if el, ok := c.index[id]; ok {
		delete(c.index, id)
		c.lru.Remove(el)
	}
}

// Alloc implements Store.
func (c *Cache) Alloc() (ID, error) { return c.store.Alloc() }

// NumPages implements Store.
func (c *Cache) NumPages() int { return c.store.NumPages() }

// Stats implements Store, returning the underlying store's physical I/O
// counters (cache hits are invisible to them).
func (c *Cache) Stats() *Stats { return c.store.Stats() }

// Sync implements Store. The cache is write-through, so syncing the
// underlying store makes every completed Write durable.
func (c *Cache) Sync() error { return c.store.Sync() }

// Close implements Store.
func (c *Cache) Close() error { return c.store.Close() }

// Flush empties the cache. The paper flushes the buffer before each of its
// 500 measured queries so that PA reflects a cold start.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	clear(c.index)
}

// HitRate returns the fraction of reads served from the cache, and the
// absolute hit/miss counts, since construction.
func (c *Cache) HitRate() (rate float64, hits, misses int64) {
	hits, misses = c.hits.Load(), c.misses.Load()
	if hits+misses == 0 {
		return 0, 0, 0
	}
	return float64(hits) / float64(hits+misses), hits, misses
}

// Counts returns the raw hit/miss counters since construction; the snapshot
// is two atomic loads, cheap enough for per-query before/after deltas
// (core.QueryStats uses it to attribute cache hits above the store's PA
// accounting).
func (c *Cache) Counts() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// SetTracer installs (or, with nil, removes) a tracer receiving a structured
// event per cache hit, per miss with its physical read, and per
// write-through, labeled with src. Not synchronized with in-flight reads:
// install tracers before issuing queries.
func (c *Cache) SetTracer(tr obs.Tracer, src obs.Src) {
	c.tracer = tr
	c.src = src
}

// Capacity returns the cache capacity in pages.
func (c *Cache) Capacity() int { return c.capacity }

var _ Store = (*Cache)(nil)
