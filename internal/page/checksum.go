package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// ErrCorrupt is the sentinel all corruption errors unwrap to; match with
// errors.Is and extract the page with errors.As against *CorruptError.
var ErrCorrupt = errors.New("page: corrupt")

// CorruptError reports that a page's content failed validation: the bytes
// read back do not match the checksum recorded when the page was written, or
// an earlier failed write left its on-disk state unknown.
type CorruptError struct {
	// ID is the corrupt page.
	ID ID
	// Reason describes the mismatch.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("page: corrupt page %d: %s", e.ID, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) match every CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// castagnoli is the CRC32-C polynomial table, the checksum used by iSCSI,
// ext4 and Btrfs; amd64 and arm64 compute it in hardware.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C of a page image.
func Checksum(buf []byte) uint32 { return crc32.Checksum(buf, castagnoli) }

// ChecksumStore wraps a Store and validates page integrity: every Write
// stamps the page's CRC32-C into an in-memory table, and every Read verifies
// the bytes against that table, returning a *CorruptError on mismatch — so a
// bit flip or torn write in the underlying media is detected at the first
// read instead of being decoded as garbage. Pages never written through the
// wrapper (or dropped via Invalidate) are read unverified.
//
// The table itself is persisted out-of-band: Meta serializes it and LoadMeta
// restores it, so the SPB-tree embeds both stores' tables in its own
// checksummed meta blob. It is safe for concurrent use.
type ChecksumStore struct {
	inner Store

	mu      sync.RWMutex
	sums    map[ID]uint32
	suspect map[ID]string // pages whose last write failed: on-disk state unknown
}

// NewChecksumStore wraps inner with an empty checksum table.
func NewChecksumStore(inner Store) *ChecksumStore {
	return &ChecksumStore{
		inner:   inner,
		sums:    make(map[ID]uint32),
		suspect: make(map[ID]string),
	}
}

// Read implements Store, validating the page against its recorded checksum.
func (c *ChecksumStore) Read(id ID, buf []byte) error {
	if err := c.inner.Read(id, buf); err != nil {
		return err
	}
	c.mu.RLock()
	reason, bad := c.suspect[id]
	want, ok := c.sums[id]
	c.mu.RUnlock()
	if bad {
		return &CorruptError{ID: id, Reason: reason}
	}
	if !ok {
		return nil // never written through this wrapper: unverified
	}
	if got := Checksum(buf); got != want {
		return &CorruptError{ID: id, Reason: fmt.Sprintf("checksum %08x, recorded %08x", got, want)}
	}
	return nil
}

// Write implements Store, recording the page's checksum. If the underlying
// write fails the page is marked suspect — its on-disk state is unknown —
// and subsequent reads return a *CorruptError until it is rewritten.
func (c *ChecksumStore) Write(id ID, buf []byte) error {
	if err := c.inner.Write(id, buf); err != nil {
		c.mu.Lock()
		delete(c.sums, id)
		c.suspect[id] = fmt.Sprintf("previous write failed: %v", err)
		c.mu.Unlock()
		return err
	}
	sum := Checksum(buf)
	c.mu.Lock()
	delete(c.suspect, id)
	c.sums[id] = sum
	c.mu.Unlock()
	return nil
}

// Alloc implements Store.
func (c *ChecksumStore) Alloc() (ID, error) { return c.inner.Alloc() }

// NumPages implements Store.
func (c *ChecksumStore) NumPages() int { return c.inner.NumPages() }

// Stats implements Store. Checksumming itself performs no physical I/O, so
// the paper's PA accounting is unaffected.
func (c *ChecksumStore) Stats() *Stats { return c.inner.Stats() }

// Sync implements Store.
func (c *ChecksumStore) Sync() error { return c.inner.Sync() }

// Close implements Store.
func (c *ChecksumStore) Close() error { return c.inner.Close() }

// Invalidate drops page id's checksum, returning it to the unverified state.
// Repair uses it after rewriting a page outside the wrapper.
func (c *ChecksumStore) Invalidate(id ID) {
	c.mu.Lock()
	delete(c.sums, id)
	delete(c.suspect, id)
	c.mu.Unlock()
}

// Checksummed returns how many pages currently have a recorded checksum.
func (c *ChecksumStore) Checksummed() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sums)
}

// checksumMetaVersion versions the Meta encoding.
const checksumMetaVersion = 1

// Meta serializes the checksum table: version, entry count, then sorted
// (page, crc) pairs. Persist it inside a blob that is itself checksummed
// (the SPB-tree meta footer), and restore it with LoadMeta.
func (c *ChecksumStore) Meta() []byte {
	c.mu.RLock()
	ids := make([]ID, 0, len(c.sums))
	for id := range c.sums {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b := make([]byte, 0, 5+8*len(ids))
	b = append(b, checksumMetaVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
		b = binary.LittleEndian.AppendUint32(b, c.sums[id])
	}
	c.mu.RUnlock()
	return b
}

// LoadMeta replaces the checksum table with one serialized by Meta.
func (c *ChecksumStore) LoadMeta(meta []byte) error {
	if len(meta) < 5 {
		return fmt.Errorf("page: checksum table is %d bytes, want at least 5", len(meta))
	}
	if meta[0] != checksumMetaVersion {
		return fmt.Errorf("page: checksum table version %d, want %d", meta[0], checksumMetaVersion)
	}
	n := int(binary.LittleEndian.Uint32(meta[1:5]))
	if len(meta) != 5+8*n {
		return fmt.Errorf("page: checksum table is %d bytes, want %d for %d entries", len(meta), 5+8*n, n)
	}
	sums := make(map[ID]uint32, n)
	for i := 0; i < n; i++ {
		off := 5 + 8*i
		id := ID(binary.LittleEndian.Uint32(meta[off:]))
		sums[id] = binary.LittleEndian.Uint32(meta[off+4:])
	}
	c.mu.Lock()
	c.sums = sums
	c.suspect = make(map[ID]string)
	c.mu.Unlock()
	return nil
}

var _ Store = (*ChecksumStore)(nil)
