package page

import (
	"errors"
	"path/filepath"
	"testing"
)

func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewTempFileStore()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]Store{"mem": NewMemStore(), "file": fs}
}

func TestStoreReadWrite(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			id0, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			id1, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			if id0 == id1 {
				t.Fatal("Alloc returned duplicate ids")
			}
			if s.NumPages() != 2 {
				t.Fatalf("NumPages = %d", s.NumPages())
			}

			buf := make([]byte, Size)
			// Fresh page reads as zeros.
			if err := s.Read(id1, buf); err != nil {
				t.Fatal(err)
			}
			for i, b := range buf {
				if b != 0 {
					t.Fatalf("fresh page byte %d = %d", i, b)
				}
			}

			for i := range buf {
				buf[i] = byte(i)
			}
			if err := s.Write(id0, buf); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, Size)
			if err := s.Read(id0, got); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != byte(i) {
					t.Fatalf("byte %d = %d, want %d", i, got[i], byte(i))
				}
			}

			if s.Stats().Reads() == 0 || s.Stats().Writes() == 0 {
				t.Errorf("stats not counting: %d reads %d writes", s.Stats().Reads(), s.Stats().Writes())
			}
			s.Stats().Reset()
			if s.Stats().Accesses() != 0 {
				t.Error("Reset did not zero stats")
			}
		})
	}
}

func TestStoreErrors(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			buf := make([]byte, Size)
			if err := s.Read(0, buf); !errors.Is(err, ErrOutOfRange) {
				t.Errorf("read unallocated: %v", err)
			}
			if err := s.Write(7, buf); !errors.Is(err, ErrOutOfRange) {
				t.Errorf("write unallocated: %v", err)
			}
			if err := s.Read(0, buf[:10]); err == nil {
				t.Error("short buffer accepted")
			}
			if _, err := s.Alloc(); err != nil {
				t.Fatal(err)
			}
			if err := s.Write(0, buf[:Size-1]); err == nil {
				t.Error("short write buffer accepted")
			}
		})
	}
}

func TestCacheAbsorbsRepeatedReads(t *testing.T) {
	mem := NewMemStore()
	c := NewCache(mem, 4)
	id, _ := c.Alloc()
	buf := make([]byte, Size)
	buf[0] = 0xAB
	if err := c.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	mem.Stats().Reset()
	for i := 0; i < 10; i++ {
		if err := c.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0xAB {
			t.Fatal("cache returned wrong data")
		}
	}
	if got := mem.Stats().Reads(); got != 0 {
		t.Errorf("cached reads caused %d physical reads", got)
	}
	c.Flush()
	if err := c.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if got := mem.Stats().Reads(); got != 1 {
		t.Errorf("post-flush read caused %d physical reads, want 1", got)
	}
	rate, hits, misses := c.HitRate()
	if hits != 10 || misses != 1 || rate < 0.9 {
		t.Errorf("hit accounting: rate=%v hits=%d misses=%d", rate, hits, misses)
	}
}

func TestCacheEviction(t *testing.T) {
	mem := NewMemStore()
	c := NewCache(mem, 2)
	buf := make([]byte, Size)
	var ids []ID
	for i := 0; i < 3; i++ {
		id, _ := c.Alloc()
		buf[0] = byte(i)
		if err := c.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	mem.Stats().Reset()
	// Page 0 was evicted by pages 1 and 2.
	if err := c.Read(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatalf("read wrong page content %d", buf[0])
	}
	if mem.Stats().Reads() != 1 {
		t.Errorf("evicted page read physically %d times, want 1", mem.Stats().Reads())
	}
	// Pages 2 should still be resident (0 evicted 1).
	mem.Stats().Reset()
	if err := c.Read(ids[2], buf); err != nil {
		t.Fatal(err)
	}
	if mem.Stats().Reads() != 0 {
		t.Errorf("resident page missed cache")
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	mem := NewMemStore()
	c := NewCache(mem, 0)
	id, _ := c.Alloc()
	buf := make([]byte, Size)
	if err := c.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	mem.Stats().Reset()
	for i := 0; i < 3; i++ {
		if err := c.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if mem.Stats().Reads() != 3 {
		t.Errorf("zero-capacity cache absorbed reads: %d physical", mem.Stats().Reads())
	}
}

func TestCacheWriteUpdatesResidentCopy(t *testing.T) {
	mem := NewMemStore()
	c := NewCache(mem, 4)
	id, _ := c.Alloc()
	buf := make([]byte, Size)
	buf[0] = 1
	c.Write(id, buf)
	c.Read(id, buf) // ensure resident
	buf[0] = 2
	c.Write(id, buf)
	got := make([]byte, Size)
	c.Read(id, got)
	if got[0] != 2 {
		t.Errorf("cache served stale data %d", got[0])
	}
}

func TestFaultStore(t *testing.T) {
	mem := NewMemStore()
	fs := NewFaultStore(mem, 2)
	if _, err := fs.Alloc(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, Size)
	if err := fs.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.Read(0, buf); !errors.Is(err, ErrInjected) {
		t.Errorf("third op error = %v, want ErrInjected", err)
	}
	if _, err := fs.Alloc(); !errors.Is(err, ErrInjected) {
		t.Errorf("alloc after budget: %v", err)
	}
}

func TestFileStorePersistsAcrossLargeOffsets(t *testing.T) {
	fs, err := NewTempFileStore()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	var last ID
	for i := 0; i < 300; i++ {
		last, _ = fs.Alloc()
	}
	buf := make([]byte, Size)
	buf[Size-1] = 0x5A
	if err := fs.Write(last, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, Size)
	if err := fs.Read(last, got); err != nil {
		t.Fatal(err)
	}
	if got[Size-1] != 0x5A {
		t.Error("high page lost data")
	}
	// A page in the hole reads as zeros.
	if err := fs.Read(5, got); err != nil {
		t.Fatal(err)
	}
	if got[Size-1] != 0 {
		t.Error("hole page not zero")
	}
}

func TestFileStoreCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.pages")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, Size)
	for i := 0; i < 5; i++ {
		id, err := fs.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i + 1)
		if err := fs.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages() != 5 {
		t.Fatalf("reopened NumPages = %d", re.NumPages())
	}
	if err := re.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 4 {
		t.Fatalf("page 3 byte = %d", buf[0])
	}
	// Reopened stores keep growing.
	id, err := re.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 {
		t.Fatalf("post-reopen Alloc = %d", id)
	}
	if _, err := OpenFileStore(filepath.Join(dir, "missing")); err == nil {
		t.Error("OpenFileStore on missing path accepted")
	}
}

func TestCacheAccessors(t *testing.T) {
	mem := NewMemStore()
	c := NewCache(mem, 4)
	if c.Capacity() != 4 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
	if c.Stats() != mem.Stats() {
		t.Error("Stats not delegated")
	}
	if _, err := c.Alloc(); err != nil {
		t.Fatal(err)
	}
	if c.NumPages() != 1 {
		t.Errorf("NumPages = %d", c.NumPages())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Negative capacity clamps to zero.
	if NewCache(mem, -3).Capacity() != 0 {
		t.Error("negative capacity not clamped")
	}
	rate, _, _ := NewCache(mem, 1).HitRate()
	if rate != 0 {
		t.Errorf("fresh cache hit rate %v", rate)
	}
}

func TestFaultStoreAccessorsAndSetBudget(t *testing.T) {
	mem := NewMemStore()
	fs := NewFaultStore(mem, 0)
	if _, err := fs.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatal("budget 0 allowed an op")
	}
	fs.SetBudget(2)
	if _, err := fs.Alloc(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, Size)
	if err := fs.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.Read(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatal("budget not re-exhausted")
	}
	if fs.NumPages() != 1 {
		t.Errorf("NumPages = %d", fs.NumPages())
	}
	if fs.Stats() != mem.Stats() {
		t.Error("Stats not delegated")
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}
