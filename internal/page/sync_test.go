package page

import (
	"path/filepath"
	"testing"
)

func TestStoreSync(t *testing.T) {
	mem := NewMemStore()
	if err := mem.Sync(); err != nil {
		t.Fatal(err)
	}

	fs, err := NewFileStore(filepath.Join(t.TempDir(), "pages"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(id, fillPage(0x55)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Close performs a final sync and must still succeed.
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the descriptor is gone: Sync must report it, not hide it.
	if err := fs.Sync(); err == nil {
		t.Fatal("Sync after Close succeeded")
	}
}

func TestCacheSyncForwards(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), -1)
	cache := NewCache(fs, 4)
	if err := cache.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.FailNextSyncs(1)
	if err := cache.Sync(); err == nil {
		t.Fatal("cache hid a sync failure")
	}
}
