package page

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the sentinel returned by a FaultStore once its budget is
// exhausted. Tests use errors.Is against it.
var ErrInjected = errors.New("page: injected I/O fault")

// FaultStore wraps a Store and fails every operation after a configurable
// number of successful physical accesses. It exists for failure-injection
// tests: every index must surface, not swallow, storage errors.
type FaultStore struct {
	inner Store
	// budget is the number of operations allowed before failures begin.
	budget atomic.Int64
}

// NewFaultStore wraps inner, allowing opsBeforeFailure successful operations.
func NewFaultStore(inner Store, opsBeforeFailure int64) *FaultStore {
	fs := &FaultStore{inner: inner}
	fs.budget.Store(opsBeforeFailure)
	return fs
}

// SetBudget resets the number of operations allowed before failures begin;
// tests use it to let a structure build healthily and then fail mid-query.
func (f *FaultStore) SetBudget(opsBeforeFailure int64) {
	f.budget.Store(opsBeforeFailure)
}

func (f *FaultStore) take() error {
	if f.budget.Add(-1) < 0 {
		return ErrInjected
	}
	return nil
}

// Read implements Store.
func (f *FaultStore) Read(id ID, buf []byte) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.inner.Read(id, buf)
}

// Write implements Store.
func (f *FaultStore) Write(id ID, buf []byte) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.inner.Write(id, buf)
}

// Alloc implements Store.
func (f *FaultStore) Alloc() (ID, error) {
	if err := f.take(); err != nil {
		return 0, err
	}
	return f.inner.Alloc()
}

// NumPages implements Store.
func (f *FaultStore) NumPages() int { return f.inner.NumPages() }

// Stats implements Store.
func (f *FaultStore) Stats() *Stats { return f.inner.Stats() }

// Close implements Store.
func (f *FaultStore) Close() error { return f.inner.Close() }

var _ Store = (*FaultStore)(nil)
