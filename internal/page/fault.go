package page

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrInjected is the sentinel wrapped by every fault a FaultStore injects.
// Tests use errors.Is against it.
var ErrInjected = errors.New("page: injected I/O fault")

// Op is a bit set of store operations, used to target injected faults.
type Op uint8

// Operation bits for FaultStore targeting.
const (
	OpRead Op = 1 << iota
	OpWrite
	OpAlloc
	OpSync
	// OpAll matches every operation.
	OpAll = OpRead | OpWrite | OpAlloc | OpSync
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAlloc:
		return "alloc"
	case OpSync:
		return "sync"
	}
	return fmt.Sprintf("ops(%#x)", uint8(o))
}

// FaultStore wraps a Store and injects storage failures for
// failure-injection tests: every index must surface, not swallow, storage
// errors, and every checksum layer must catch silent corruption. Four fault
// families compose (any of them may trigger a given operation):
//
//   - budget faults: every operation fails once a countdown of successful
//     operations is exhausted (the original behaviour);
//   - probabilistic faults: matching operations fail with probability p,
//     from a seeded deterministic stream;
//   - targeted faults: operations touching one specific page fail, and Sync
//     can be made to fail a set number of times;
//   - silent corruption: reads of a chosen page succeed but return the page
//     with one bit flipped, modelling media rot below the checksum layer.
//
// All injected errors wrap ErrInjected except bit flips, which by design
// return no error at all. Safe for concurrent use.
type FaultStore struct {
	inner Store
	// budget is the number of operations allowed before failures begin.
	budget atomic.Int64

	mu        sync.Mutex
	prob      float64
	probOps   Op
	rng       *rand.Rand
	failPages map[ID]Op
	flips     map[ID]int
	syncFails int
}

// unlimitedBudget effectively disables budget-based faults.
const unlimitedBudget = int64(1) << 62

// NewFaultStore wraps inner, allowing opsBeforeFailure successful operations
// before every operation fails. A negative opsBeforeFailure disables budget
// faults entirely (use the targeted and probabilistic knobs instead).
func NewFaultStore(inner Store, opsBeforeFailure int64) *FaultStore {
	fs := &FaultStore{
		inner:     inner,
		failPages: make(map[ID]Op),
		flips:     make(map[ID]int),
	}
	fs.SetBudget(opsBeforeFailure)
	return fs
}

// SetBudget resets the number of operations allowed before failures begin;
// tests use it to let a structure build healthily and then fail mid-query.
// Negative disables budget faults.
func (f *FaultStore) SetBudget(opsBeforeFailure int64) {
	if opsBeforeFailure < 0 {
		opsBeforeFailure = unlimitedBudget
	}
	f.budget.Store(opsBeforeFailure)
}

// SetProbability makes each operation matching ops fail with probability p,
// drawn from a deterministic stream seeded by seed. p = 0 turns the family
// off.
func (f *FaultStore) SetProbability(ops Op, p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prob = p
	f.probOps = ops
	f.rng = rand.New(rand.NewSource(seed))
}

// FailPage makes every operation in ops that touches page id fail.
func (f *FaultStore) FailPage(id ID, ops Op) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failPages[id] = ops
}

// ClearPageFaults removes all targeted page faults.
func (f *FaultStore) ClearPageFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	clear(f.failPages)
}

// FlipBit silently corrupts page id: every subsequent read succeeds but
// returns the page with the given bit (0 ≤ bit < 8·Size) inverted. The
// underlying store is untouched — this models media rot that only a
// checksum can catch.
func (f *FaultStore) FlipBit(id ID, bit int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flips[id] = bit
}

// ClearFlips removes all silent-corruption faults.
func (f *FaultStore) ClearFlips() {
	f.mu.Lock()
	defer f.mu.Unlock()
	clear(f.flips)
}

// FailNextSyncs makes the next n Sync calls fail.
func (f *FaultStore) FailNextSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncFails = n
}

// take decides whether the operation fails; id is meaningful only when
// hasID is set.
func (f *FaultStore) take(op Op, id ID, hasID bool) error {
	if f.budget.Add(-1) < 0 {
		return fmt.Errorf("%s: budget exhausted: %w", op, ErrInjected)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if op == OpSync && f.syncFails > 0 {
		f.syncFails--
		return fmt.Errorf("sync: %w", ErrInjected)
	}
	if hasID {
		if ops, ok := f.failPages[id]; ok && ops&op != 0 {
			return fmt.Errorf("%s page %d: %w", op, id, ErrInjected)
		}
	}
	if f.prob > 0 && f.probOps&op != 0 && f.rng.Float64() < f.prob {
		return fmt.Errorf("%s: probabilistic: %w", op, ErrInjected)
	}
	return nil
}

// Read implements Store.
func (f *FaultStore) Read(id ID, buf []byte) error {
	if err := f.take(OpRead, id, true); err != nil {
		return err
	}
	if err := f.inner.Read(id, buf); err != nil {
		return err
	}
	f.mu.Lock()
	bit, flip := f.flips[id]
	f.mu.Unlock()
	if flip && len(buf) == Size && bit >= 0 && bit < 8*Size {
		buf[bit/8] ^= 1 << (bit % 8)
	}
	return nil
}

// Write implements Store.
func (f *FaultStore) Write(id ID, buf []byte) error {
	if err := f.take(OpWrite, id, true); err != nil {
		return err
	}
	return f.inner.Write(id, buf)
}

// Alloc implements Store.
func (f *FaultStore) Alloc() (ID, error) {
	if err := f.take(OpAlloc, 0, false); err != nil {
		return 0, err
	}
	return f.inner.Alloc()
}

// NumPages implements Store.
func (f *FaultStore) NumPages() int { return f.inner.NumPages() }

// Stats implements Store.
func (f *FaultStore) Stats() *Stats { return f.inner.Stats() }

// Sync implements Store.
func (f *FaultStore) Sync() error {
	if err := f.take(OpSync, 0, false); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close implements Store.
func (f *FaultStore) Close() error { return f.inner.Close() }

var _ Store = (*FaultStore)(nil)
