package page

import (
	"testing"

	"spbtree/internal/obs"
)

// recordingTracer counts events per kind, mirroring what QueryStats derives
// from the cache counters.
type recordingTracer struct {
	hits, misses, reads, writes int
}

func (r *recordingTracer) Event(e obs.Event) {
	switch e.Kind {
	case obs.EvCacheHit:
		r.hits++
	case obs.EvCacheMiss:
		r.misses++
	case obs.EvPageRead:
		r.reads++
	case obs.EvPageWrite:
		r.writes++
	}
}

func TestCacheTracerEvents(t *testing.T) {
	c := NewCache(NewMemStore(), 4)
	var tr recordingTracer
	c.SetTracer(&tr, obs.SrcIndex)

	id, err := c.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, Size)
	if err := c.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if err := c.Read(id, buf); err != nil { // miss + physical read
		t.Fatal(err)
	}
	if err := c.Read(id, buf); err != nil { // hit
		t.Fatal(err)
	}
	if tr.writes != 1 || tr.misses != 1 || tr.reads != 1 || tr.hits != 1 {
		t.Errorf("events = %+v, want 1 of each", tr)
	}
	hits, misses := c.Counts()
	if int(hits) != tr.hits || int(misses) != tr.misses {
		t.Errorf("Counts() = (%d, %d), disagrees with tracer %+v", hits, misses, tr)
	}
}

// TestCacheTracerZeroAlloc pins the satellite-5 requirement: the cache-hit
// read path with an installed no-op tracer performs zero heap allocations, so
// leaving instrumentation wired costs nothing on the hot path.
func TestCacheTracerZeroAlloc(t *testing.T) {
	c := NewCache(NewMemStore(), 4)
	id, err := c.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, Size)
	if err := c.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(id, buf); err != nil { // warm the cache
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		tracer obs.Tracer
	}{
		{"no tracer", nil},
		{"nop tracer", obs.NopTracer{}},
	} {
		c.SetTracer(tc.tracer, obs.SrcIndex)
		if n := testing.AllocsPerRun(200, func() {
			if err := c.Read(id, buf); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: cache-hit Read allocates %v per run, want 0", tc.name, n)
		}
	}
}
