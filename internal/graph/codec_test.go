package graph

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	const n = 120
	_, dist := testPoints(n, 3)
	g, err := Build(context.Background(), n, dist, Options{K: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g.IDs = make([]uint64, n)
	g.Offs = make([]uint64, n)
	for i := range g.IDs {
		g.IDs[i] = uint64(1000 + i)
		g.Offs[i] = uint64(64 * i)
	}
	g.BaseCount = n
	g.BaseSize = 64 * n
	return g
}

func TestCodecRoundtrip(t *testing.T) {
	g := testGraph(t)
	got, err := Decode(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Fatal("decoded graph differs from the original")
	}
}

func TestCodecTruncation(t *testing.T) {
	raw := testGraph(t).Encode()
	for _, n := range []int{0, 1, 11, len(raw) / 2, len(raw) - 1} {
		if _, err := Decode(raw[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestCodecCorruption(t *testing.T) {
	raw := testGraph(t).Encode()
	for _, pos := range []int{0, 5, len(raw) / 2, len(raw) - 13, len(raw) - 5, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x40
		if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipped byte %d: err = %v, want ErrCorrupt", pos, err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), raw...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing byte not detected")
	}
}

func FuzzGraphCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SPBG"))
	const n = 40
	_, dist := testPoints(n, 3)
	g, err := Build(context.Background(), n, dist, Options{K: 4})
	if err != nil {
		f.Fatal(err)
	}
	g.IDs = make([]uint64, n)
	g.Offs = make([]uint64, n)
	g.BaseCount, g.BaseSize = n, 640
	f.Add(g.Encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Decode must never panic, and anything it accepts must re-encode to
		// an equivalent graph (full roundtrip fidelity).
		d, err := Decode(raw)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed decode error: %v", err)
			}
			return
		}
		d2, err := Decode(d.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted graph failed: %v", err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatal("re-decode changed the graph")
		}
	})
}
