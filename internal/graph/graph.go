// Package graph implements the approximate search tier of the SPB-tree
// library: a k-neighbor graph built by NN-descent (Dong et al., WWW'11 —
// sampled local joins with reverse-neighbor union, converging when an
// iteration's update count falls below a threshold) and greedy beam search
// over it with an ef-width sorted candidate/visited set (the DistSet idiom).
//
// The package is deliberately substrate-free: nodes are dense indices
// 0..n-1, and every distance evaluation goes through a caller-supplied
// callback, so the tree layer can route construction through its counted,
// threshold-aware metric kernels and search through its RAF batch reads.
// Both callbacks follow the DistanceAtMost contract: the reported distance
// is exact whenever within is true, and within ⇔ d ≤ threshold.
package graph

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// DistAtMost evaluates the distance between nodes i and j against an
// early-abandon threshold t (+Inf disables abandoning): within ⇔ d ≤ t, and
// d is exact whenever within holds.
type DistAtMost func(i, j int, t float64) (d float64, within bool)

// EvalBatch evaluates the query against a block of nodes with early-abandon
// threshold t, filling d and within (within[i] ⇔ d[i] ≤ t, d[i] exact when
// within[i]). Implementations may read storage; a returned error aborts the
// search with the candidates accumulated so far.
type EvalBatch func(nodes []int32, t float64, d []float64, within []bool) error

// Options configures Build.
type Options struct {
	// K is the number of neighbors kept per node; 0 selects 16.
	K int
	// Rho is the NN-descent sample rate: each iteration joins about ρK new
	// neighbors (and as many sampled reverse neighbors) per node. 0 selects
	// 0.5, the paper's default.
	Rho float64
	// MaxIters caps the local-join iterations; 0 selects 12.
	MaxIters int
	// Delta is the convergence threshold: iteration stops once an iteration
	// applies fewer than Delta·K·n neighbor updates. 0 selects 0.002.
	Delta float64
	// Entries is the number of fixed search entry points sampled at build
	// time; 0 selects 8 (capped at n). Beyond the sample, Build appends one
	// representative per weakly-connected component the sample missed: the
	// k-neighbor graph of clustered data is disconnected (one island per
	// cluster), and a beam search can only ever reach components it starts
	// in, so full coverage is a correctness matter, not a tuning knob.
	Entries int
	// Workers is the number of goroutines evaluating candidate distances; 0
	// or 1 is serial. Results are identical for every worker count: pair
	// generation and update application stay sequential, only the pure
	// distance evaluations fan out.
	Workers int
	// Seed seeds the sampling; 0 means 1.
	Seed int64
}

// withDefaults resolves zero fields to their defaults.
func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 16
	}
	if o.Rho == 0 {
		o.Rho = 0.5
	}
	if o.MaxIters == 0 {
		o.MaxIters = 12
	}
	if o.Delta == 0 {
		o.Delta = 0.002
	}
	if o.Entries == 0 {
		o.Entries = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Graph is a built k-neighbor graph over n nodes. IDs, Offs, BaseCount and
// BaseSize are bookkeeping the owning tree attaches for query-time object
// reads and persistence staleness checks; Build leaves them zero.
type Graph struct {
	// K is the neighbor-list stride of Nbrs.
	K int
	// Nbrs is the flattened adjacency: node v's neighbors are
	// Nbrs[v*K:(v+1)*K] in ascending (distance, index) order, -1-padded when
	// v has fewer than K neighbors.
	Nbrs []int32
	// Entries are the fixed beam-search entry points.
	Entries []int32
	// IDs maps node index to object ID.
	IDs []uint64
	// Offs maps node index to the object's RAF byte offset.
	Offs []uint64
	// BaseCount and BaseSize echo the RAF record count and byte size the
	// graph was built against, so a loaded graph can be checked against its
	// substrate.
	BaseCount uint64
	BaseSize  uint64

	// revOff/revNbrs are the reverse adjacency in CSR form — node v's
	// in-neighbors are revNbrs[revOff[v]:revOff[v+1]], ascending. They are
	// derived from Nbrs by buildReverse (Build and Decode both call it) and
	// never persisted: Search expands the symmetrized graph, because greedy
	// search over out-edges alone can strand whole regions — u keeping v as
	// a neighbor does not imply v keeps u, and the entry-point component
	// cover reasons about undirected reachability.
	revOff  []int32
	revNbrs []int32
}

// Len returns the number of nodes.
func (g *Graph) Len() int {
	if g.K == 0 {
		return 0
	}
	return len(g.Nbrs) / g.K
}

// Neighbors returns node v's adjacency slice (-1 entries are padding).
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Nbrs[int(v)*g.K : (int(v)+1)*g.K]
}

// reverseNeighbors returns the nodes keeping v in their adjacency list,
// ascending (empty when buildReverse has not run).
func (g *Graph) reverseNeighbors(v int32) []int32 {
	if len(g.revOff) != g.Len()+1 {
		return nil
	}
	return g.revNbrs[g.revOff[v]:g.revOff[v+1]]
}

// buildReverse derives revOff/revNbrs from Nbrs (counting sort, so each
// in-neighbor list comes out ascending). Deterministic: the same adjacency
// always yields the same reverse structure, which keeps a decoded graph
// byte-equivalent to the built one.
func (g *Graph) buildReverse() {
	n := g.Len()
	g.revOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if u < 0 {
				break
			}
			g.revOff[u+1]++
		}
	}
	for i := 0; i < n; i++ {
		g.revOff[i+1] += g.revOff[i]
	}
	g.revNbrs = make([]int32, g.revOff[n])
	fill := make([]int32, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if u < 0 {
				break
			}
			g.revNbrs[g.revOff[u]+fill[u]] = int32(v)
			fill[u]++
		}
	}
}

// nbr is one neighbor-list entry during construction.
type nbr struct {
	idx   int32
	d     float64
	fresh bool // not yet used in a local join
}

// nbrLess orders neighbor lists by (distance, index) so every list — and
// therefore the final adjacency — is deterministic.
func nbrLess(a, b nbr) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.idx < b.idx
}

// Build runs NN-descent over n nodes. The distance callback must be safe for
// concurrent use when opts.Workers > 1. On ctx cancellation Build returns
// nil and the context's error once every worker has exited — construction is
// all-or-nothing.
func Build(ctx context.Context, n int, dist DistAtMost, opts Options) (*Graph, error) {
	opts = opts.withDefaults()
	k := opts.K
	if k > n-1 {
		k = n - 1
	}
	if n <= 1 || k <= 0 {
		g := &Graph{K: opts.K}
		if n == 1 {
			g.Nbrs = make([]int32, opts.K)
			for i := range g.Nbrs {
				g.Nbrs[i] = -1
			}
			g.Entries = []int32{0}
		}
		g.buildReverse()
		return g, nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	b := &builder{n: n, k: k, dist: dist, workers: opts.Workers, lists: make([][]nbr, n)}

	// Random initialization: k distinct neighbors per node, evaluated with no
	// threshold so every initial entry carries an exact distance.
	var pairs []uint64
	seen := make(map[int32]struct{}, k)
	for v := 0; v < n; v++ {
		clear(seen)
		for len(seen) < k {
			u := int32(rng.Intn(n))
			if int(u) == v {
				continue
			}
			if _, ok := seen[u]; ok {
				continue
			}
			seen[u] = struct{}{}
			pairs = append(pairs, pairKey(int32(v), u))
		}
	}
	if _, err := b.joinPairs(ctx, dedupPairs(pairs), true); err != nil {
		return nil, err
	}

	// Local-join iterations: sampled new/old forward and reverse candidates,
	// new×new and new×old pairs, updates applied in pair order.
	s := int(math.Ceil(opts.Rho * float64(k)))
	if s < 1 {
		s = 1
	}
	budget := int(opts.Delta * float64(k) * float64(n))
	for iter := 0; iter < opts.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("graph: build canceled: %w", context.Cause(ctx))
		}
		updates, err := b.iterate(ctx, rng, s)
		if err != nil {
			return nil, err
		}
		if updates <= budget {
			break
		}
	}

	g := &Graph{K: opts.K, Nbrs: make([]int32, n*opts.K)}
	for v := 0; v < n; v++ {
		list := b.lists[v]
		sort.Slice(list, func(i, j int) bool { return nbrLess(list[i], list[j]) })
		row := g.Nbrs[v*opts.K : (v+1)*opts.K]
		for i := range row {
			if i < len(list) {
				row[i] = list[i].idx
			} else {
				row[i] = -1
			}
		}
	}
	// Fixed entry points, sampled once so searches are deterministic.
	ne := opts.Entries
	if ne > n {
		ne = n
	}
	g.Entries = make([]int32, 0, ne)
	es := make(map[int32]struct{}, ne)
	for len(g.Entries) < ne {
		e := int32(rng.Intn(n))
		if _, ok := es[e]; ok {
			continue
		}
		es[e] = struct{}{}
		g.Entries = append(g.Entries, e)
	}
	g.Entries = coverComponents(g, g.Entries)
	sort.Slice(g.Entries, func(i, j int) bool { return g.Entries[i] < g.Entries[j] })
	g.buildReverse()
	return g, nil
}

// coverComponents extends entries so every weakly-connected component of the
// adjacency holds at least one entry point. Clustered data yields one graph
// island per cluster; a beam search can never leave the components its entry
// points start in, so an uncovered island is a recall hole for every query
// landing there. The appended representative is each uncovered component's
// smallest node index — deterministic, independent of the union order.
func coverComponents(g *Graph, entries []int32) []int32 {
	n := g.Len()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if u < 0 {
				break
			}
			if ru, rv := find(u), find(int32(v)); ru != rv {
				parent[ru] = rv
			}
		}
	}
	covered := make(map[int32]struct{}, len(entries))
	for _, e := range entries {
		covered[find(e)] = struct{}{}
	}
	// rep[root] is the component's smallest member; walking v ascending fills
	// it with the first member seen.
	rep := make(map[int32]int32)
	var missing []int32
	for v := 0; v < n; v++ {
		r := find(int32(v))
		if _, ok := rep[r]; ok {
			continue
		}
		rep[r] = int32(v)
		if _, ok := covered[r]; !ok {
			missing = append(missing, int32(v))
		}
	}
	return append(entries, missing...)
}

// builder is the NN-descent working state.
type builder struct {
	n, k    int
	dist    DistAtMost
	workers int
	lists   [][]nbr
}

// worst returns node v's current k-th neighbor distance (+Inf while the list
// is not full) — the insertion threshold.
func (b *builder) worst(v int32) float64 {
	list := b.lists[v]
	if len(list) < b.k {
		return math.Inf(1)
	}
	w := list[0].d
	for _, e := range list[1:] {
		if e.d > w {
			w = e.d
		}
	}
	return w
}

// contains reports whether u is already in v's list.
func (b *builder) contains(v, u int32) bool {
	for _, e := range b.lists[v] {
		if e.idx == u {
			return true
		}
	}
	return false
}

// insert offers (u, d) to v's list, keeping the k best by (distance, index).
func (b *builder) insert(v, u int32, d float64) bool {
	list := b.lists[v]
	wi := -1 // index of the current worst
	for i, e := range list {
		if e.idx == u {
			return false
		}
		if wi < 0 || nbrLess(list[wi], e) {
			wi = i
		}
	}
	cand := nbr{idx: u, d: d, fresh: true}
	if len(list) < b.k {
		b.lists[v] = append(list, cand)
		return true
	}
	if !nbrLess(cand, list[wi]) {
		return false
	}
	list[wi] = cand
	return true
}

// pairKey packs an unordered node pair canonically (smaller index high).
func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// dedupPairs sorts and uniques a packed pair list in place.
func dedupPairs(pairs []uint64) []uint64 {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	out := pairs[:0]
	for i, p := range pairs {
		if i == 0 || p != pairs[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// joinPairs evaluates a deduplicated pair list — in parallel when configured
// — and applies the updates sequentially in list order, so the result is
// independent of the worker count. It returns how many neighbor-list
// insertions the pairs caused. When init is true every pair is evaluated
// exactly (no threshold), for the random initialization.
func (b *builder) joinPairs(ctx context.Context, pairs []uint64, init bool) (int, error) {
	if len(pairs) == 0 {
		return 0, nil
	}
	thrs := make([]float64, len(pairs))
	for i, p := range pairs {
		u, v := int32(p>>32), int32(uint32(p))
		if !init && b.contains(u, v) {
			thrs[i] = -1 // distance already known; skip the evaluation
			continue
		}
		if init {
			thrs[i] = math.Inf(1)
			continue
		}
		// An insertion into either list only happens below that list's worst;
		// past max(worst_u, worst_v) the pair cannot update anything.
		thrs[i] = math.Max(b.worst(u), b.worst(v))
	}

	ds := make([]float64, len(pairs))
	within := make([]bool, len(pairs))
	eval := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if i%256 == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("graph: build canceled: %w", context.Cause(ctx))
				}
			}
			if thrs[i] < 0 {
				continue
			}
			u, v := int32(pairs[i]>>32), int32(uint32(pairs[i]))
			ds[i], within[i] = b.dist(int(u), int(v), thrs[i])
		}
		return nil
	}
	w := b.workers
	if w > len(pairs)/256 {
		w = len(pairs) / 256 // not worth fanning out tiny chunks
	}
	if w <= 1 {
		if err := eval(0, len(pairs)); err != nil {
			return 0, err
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, w)
		chunk := (len(pairs) + w - 1) / w
		for j := 0; j < w; j++ {
			lo := j * chunk
			hi := lo + chunk
			if hi > len(pairs) {
				hi = len(pairs)
			}
			wg.Add(1)
			go func(j, lo, hi int) {
				defer wg.Done()
				errs[j] = eval(lo, hi)
			}(j, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
	}

	updates := 0
	for i, p := range pairs {
		if thrs[i] < 0 || !within[i] {
			continue
		}
		u, v := int32(p>>32), int32(uint32(p))
		if b.insert(u, v, ds[i]) {
			updates++
		}
		if b.insert(v, u, ds[i]) {
			updates++
		}
	}
	return updates, nil
}

// iterate runs one NN-descent local join round and returns its update count.
func (b *builder) iterate(ctx context.Context, rng *rand.Rand, s int) (int, error) {
	n := b.n
	fwdNew := make([][]int32, n)
	fwdOld := make([][]int32, n)
	revNew := make([][]int32, n)
	revOld := make([][]int32, n)
	var freshIdx []int
	for v := 0; v < n; v++ {
		list := b.lists[v]
		freshIdx = freshIdx[:0]
		for i, e := range list {
			if e.fresh {
				freshIdx = append(freshIdx, i)
			} else {
				fwdOld[v] = append(fwdOld[v], e.idx)
			}
		}
		// Sample up to s fresh neighbors for this round's joins and retire
		// them (they will have been joined against everything sampled here).
		rng.Shuffle(len(freshIdx), func(i, j int) { freshIdx[i], freshIdx[j] = freshIdx[j], freshIdx[i] })
		take := len(freshIdx)
		if take > s {
			take = s
		}
		for _, i := range freshIdx[:take] {
			fwdNew[v] = append(fwdNew[v], list[i].idx)
			list[i].fresh = false
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range fwdNew[v] {
			revNew[u] = append(revNew[u], int32(v))
		}
		for _, u := range fwdOld[v] {
			revOld[u] = append(revOld[u], int32(v))
		}
	}

	var pairs []uint64
	var news, olds []int32
	for v := 0; v < n; v++ {
		news = append(news[:0], fwdNew[v]...)
		news = appendSample(news, revNew[v], s, rng)
		olds = append(olds[:0], fwdOld[v]...)
		olds = appendSample(olds, revOld[v], s, rng)
		for i := 0; i < len(news); i++ {
			for j := i + 1; j < len(news); j++ {
				if news[i] != news[j] {
					pairs = append(pairs, pairKey(news[i], news[j]))
				}
			}
			for _, o := range olds {
				if news[i] != o {
					pairs = append(pairs, pairKey(news[i], o))
				}
			}
		}
	}
	return b.joinPairs(ctx, dedupPairs(pairs), false)
}

// appendSample appends up to s elements of src (sampled without replacement)
// to dst, skipping values already present.
func appendSample(dst, src []int32, s int, rng *rand.Rand) []int32 {
	if len(src) > s {
		// Partial Fisher-Yates over a scratch copy: deterministic given rng.
		tmp := append([]int32(nil), src...)
		for i := 0; i < s; i++ {
			j := i + rng.Intn(len(tmp)-i)
			tmp[i], tmp[j] = tmp[j], tmp[i]
		}
		src = tmp[:s]
	}
outer:
	for _, x := range src {
		for _, y := range dst {
			if y == x {
				continue outer
			}
		}
		dst = append(dst, x)
	}
	return dst
}
