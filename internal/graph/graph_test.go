package graph

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"
)

// testPoints returns n deterministic 2-d points and a DistAtMost over them.
func testPoints(n int, seed int64) ([][2]float64, DistAtMost) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	dist := func(i, j int, t float64) (float64, bool) {
		dx := pts[i][0] - pts[j][0]
		dy := pts[i][1] - pts[j][1]
		d := math.Sqrt(dx*dx + dy*dy)
		return d, d <= t
	}
	return pts, dist
}

// bruteKNN returns the k nearest node indices to query point q.
func bruteKNN(pts [][2]float64, q [2]float64, k int) []int32 {
	type nd struct {
		i int32
		d float64
	}
	all := make([]nd, len(pts))
	for i, p := range pts {
		dx, dy := p[0]-q[0], p[1]-q[1]
		all[i] = nd{int32(i), math.Sqrt(dx*dx + dy*dy)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].i < all[j].i
	})
	out := make([]int32, k)
	for i := range out {
		out[i] = all[i].i
	}
	return out
}

func queryEval(pts [][2]float64, q [2]float64) EvalBatch {
	return func(nodes []int32, t float64, d []float64, within []bool) error {
		for i, v := range nodes {
			dx, dy := pts[v][0]-q[0], pts[v][1]-q[1]
			d[i] = math.Sqrt(dx*dx + dy*dy)
			within[i] = d[i] <= t
		}
		return nil
	}
}

func TestBuildAndSearchRecall(t *testing.T) {
	const n, k, queries = 600, 10, 40
	pts, dist := testPoints(n, 7)
	g, err := Build(context.Background(), n, dist, Options{K: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != n {
		t.Fatalf("Len() = %d, want %d", g.Len(), n)
	}
	qrng := rand.New(rand.NewSource(99))
	hits, total := 0, 0
	for qi := 0; qi < queries; qi++ {
		q := [2]float64{qrng.Float64(), qrng.Float64()}
		exact := bruteKNN(pts, q, k)
		got, st, err := g.Search(context.Background(), queryEval(pts, q), 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Hops == 0 || st.Evals == 0 {
			t.Fatalf("search did no work: %+v", st)
		}
		in := make(map[int32]bool, len(got))
		for _, c := range got {
			in[c.Node] = true
		}
		for _, e := range exact {
			total++
			if in[e] {
				hits++
			}
		}
	}
	if recall := float64(hits) / float64(total); recall < 0.95 {
		t.Fatalf("recall@%d = %.3f, want ≥ 0.95", k, recall)
	}
}

func TestSearchSortedAndDeduped(t *testing.T) {
	const n = 300
	pts, dist := testPoints(n, 5)
	g, err := Build(context.Background(), n, dist, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := g.Search(context.Background(), queryEval(pts, [2]float64{0.5, 0.5}), 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("got %d candidates, want ef=32", len(got))
	}
	seen := map[int32]bool{}
	for i, c := range got {
		if seen[c.Node] {
			t.Fatalf("duplicate node %d", c.Node)
		}
		seen[c.Node] = true
		if i > 0 && (got[i-1].Dist > c.Dist || (got[i-1].Dist == c.Dist && got[i-1].Node > c.Node)) {
			t.Fatalf("candidates not in (dist, node) order at %d", i)
		}
	}
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	const n = 400
	_, dist := testPoints(n, 11)
	var graphs []*Graph
	for _, w := range []int{1, 4} {
		g, err := Build(context.Background(), n, dist, Options{K: 8, Seed: 2, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	if !reflect.DeepEqual(graphs[0].Nbrs, graphs[1].Nbrs) {
		t.Fatal("adjacency differs between 1 and 4 construction workers")
	}
	if !reflect.DeepEqual(graphs[0].Entries, graphs[1].Entries) {
		t.Fatal("entry points differ between 1 and 4 construction workers")
	}
}

func TestSearchDeterministic(t *testing.T) {
	const n = 400
	pts, dist := testPoints(n, 13)
	g, err := Build(context.Background(), n, dist, Options{K: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := [2]float64{0.25, 0.75}
	a, sa, err := g.Search(context.Background(), queryEval(pts, q), 48, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := g.Search(context.Background(), queryEval(pts, q), 48, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) || sa != sb {
		t.Fatal("two identical searches disagree")
	}
}

func TestBuildCancelNoLeak(t *testing.T) {
	const n = 2000
	before := runtime.NumGoroutine()
	_, dist := testPoints(n, 17)
	slow := func(i, j int, thr float64) (float64, bool) {
		time.Sleep(10 * time.Microsecond)
		return dist(i, j, thr)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Build(ctx, n, slow, Options{K: 16, Workers: 4})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Build did not return after cancel")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, got)
	}
}

func TestSearchCancelReturnsPartial(t *testing.T) {
	const n = 500
	pts, dist := testPoints(n, 23)
	g, err := Build(context.Background(), n, dist, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hops := 0
	eval := func(nodes []int32, thr float64, d []float64, within []bool) error {
		hops++
		if hops == 3 {
			cancel()
		}
		return queryEval(pts, [2]float64{0.5, 0.5})(nodes, thr, d, within)
	}
	got, _, err := g.Search(ctx, eval, 64, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(got) == 0 {
		t.Fatal("canceled search returned no partial candidates")
	}
}

func TestBuildTinyInputs(t *testing.T) {
	_, dist := testPoints(4, 1)
	for n := 0; n <= 4; n++ {
		g, err := Build(context.Background(), n, dist, Options{K: 16})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n == 0 {
			if g.Len() != 0 {
				t.Fatalf("n=0: Len() = %d", g.Len())
			}
			continue
		}
		if g.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, g.Len())
		}
		for v := int32(0); int(v) < n; v++ {
			for _, u := range g.Neighbors(v) {
				if u == v || int(u) >= n || u < -1 {
					t.Fatalf("n=%d: bad neighbor %d of %d", n, u, v)
				}
			}
		}
	}
}
