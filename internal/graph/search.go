package graph

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Cand is one beam-search candidate: a node index and its exact distance to
// the query.
type Cand struct {
	Node int32
	Dist float64
}

// SearchStats reports one search's work: Hops is the number of nodes whose
// adjacency was expanded, Evals the number of distance evaluations requested
// from the callback (tombstone-skipped nodes excluded by the caller's
// callback are still counted here; the owning tree keeps its own precise
// counters).
type SearchStats struct {
	Hops  int64
	Evals int64
}

// Search runs greedy beam search from the graph's entry points: an ef-width
// sorted candidate/visited set (the DistSet idiom) repeatedly expands its
// nearest unexpanded element, evaluating its unvisited neighbors — out- and
// in-edges, the symmetrized graph — in one batch
// against the set's current k-th-of-ef distance so threshold-aware kernels
// abandon hopeless candidates early. It returns up to ef candidates in
// ascending (distance, node) order.
//
// seeds are extra starting points evaluated alongside the fixed entry
// points — callers with substrate locality (the owning tree seeds the
// window of nodes around the query's SFC position) use them to drop the
// beam directly into the query's neighborhood, which fixed entries cannot
// guarantee: when clusters share a weakly-connected component, the
// component's entry can sit a full inter-cluster plateau away from the
// query, and greedy expansion has no distance gradient to descend. Values
// outside [0, Len()) are ignored; nil is fine.
//
// Cancellation is checked once per hop; on ctx expiry the candidates
// accumulated so far are returned alongside the context's error, so callers
// keep the partial-results contract. Any error from eval aborts the same
// way.
func (g *Graph) Search(ctx context.Context, eval EvalBatch, ef int, seeds []int32) ([]Cand, SearchStats, error) {
	var st SearchStats
	if ef < 1 {
		ef = 1
	}
	n := g.Len()
	if n == 0 || len(g.Entries) == 0 {
		return nil, st, nil
	}
	ds := distSet{
		items: make([]dsElem, 0, ef+g.K),
		seen:  make(map[int32]struct{}, 4*ef),
	}
	scratch := g.K + len(g.Entries) + len(seeds)
	batch := make([]int32, 0, scratch)
	d := make([]float64, scratch)
	within := make([]bool, scratch)

	// Seed: evaluate the entry points and caller seeds unbounded so the set
	// starts with exact distances.
	for _, e := range g.Entries {
		if _, ok := ds.seen[e]; ok {
			continue
		}
		ds.seen[e] = struct{}{}
		batch = append(batch, e)
	}
	for _, e := range seeds {
		if e < 0 || int(e) >= n {
			continue
		}
		if _, ok := ds.seen[e]; ok {
			continue
		}
		ds.seen[e] = struct{}{}
		batch = append(batch, e)
	}
	if err := eval(batch, ds.threshold(ef), d[:len(batch)], within[:len(batch)]); err != nil {
		return ds.candidates(), st, err
	}
	st.Evals += int64(len(batch))
	for i, node := range batch {
		if within[i] {
			ds.add(dsElem{node: node, dist: d[i]})
		}
	}
	ds.keepFirstK(ef)

	for {
		next := ds.nextUnexpanded()
		if next < 0 {
			return ds.candidates(), st, nil
		}
		if err := ctx.Err(); err != nil {
			return ds.candidates(), st, fmt.Errorf("graph: search canceled: %w", context.Cause(ctx))
		}
		ds.items[next].expanded = true
		st.Hops++
		batch = batch[:0]
		v := ds.items[next].node
		for _, u := range g.Neighbors(v) {
			if u < 0 {
				break // -1 padding tail
			}
			if _, ok := ds.seen[u]; ok {
				continue
			}
			ds.seen[u] = struct{}{}
			batch = append(batch, u)
		}
		// Expansion is over the symmetrized graph: in-neighbors too. The
		// adjacency is directed (u keeping v says nothing about v keeping u)
		// and following out-edges alone can strand whole regions behind
		// one-way links; undirected expansion makes reachability match the
		// weakly-connected components the entry-point cover guarantees.
		for _, u := range g.reverseNeighbors(v) {
			if _, ok := ds.seen[u]; ok {
				continue
			}
			ds.seen[u] = struct{}{}
			batch = append(batch, u)
		}
		if len(batch) == 0 {
			continue
		}
		if len(batch) > len(d) {
			// In-degree is unbounded, so a hub can overflow the K-sized
			// scratch; grow it.
			d = make([]float64, len(batch))
			within = make([]bool, len(batch))
		}
		thr := ds.threshold(ef)
		if err := eval(batch, thr, d[:len(batch)], within[:len(batch)]); err != nil {
			return ds.candidates(), st, err
		}
		st.Evals += int64(len(batch))
		for i, node := range batch {
			if within[i] {
				ds.add(dsElem{node: node, dist: d[i]})
			}
		}
		ds.keepFirstK(ef)
	}
}

// dsElem is one visited-set element.
type dsElem struct {
	node     int32
	dist     float64
	expanded bool
}

// dsLess orders the set by (distance, node) — a total order, so searches are
// deterministic under distance ties.
func dsLess(a, b dsElem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.node < b.node
}

// distSet is the sorted candidate/visited set of the beam search: items is
// kept ascending up to sortedUntil, seen dedups every node ever evaluated
// (including ones the threshold rejected, so they are never re-evaluated).
type distSet struct {
	items       []dsElem
	seen        map[int32]struct{}
	sortedUntil int
}

// add appends an element; the sort is deferred to keepFirstK.
func (s *distSet) add(e dsElem) { s.items = append(s.items, e) }

// keepFirstK merges the unsorted tail into the sorted prefix (insertion sort
// of the few new elements, the DistSet idiom) and truncates to the k best.
func (s *distSet) keepFirstK(k int) {
	for i := s.sortedUntil; i < len(s.items); i++ {
		e := s.items[i]
		j := sort.Search(i, func(m int) bool { return dsLess(e, s.items[m]) })
		copy(s.items[j+1:i+1], s.items[j:i])
		s.items[j] = e
	}
	if len(s.items) > k {
		s.items = s.items[:k]
	}
	s.sortedUntil = len(s.items)
}

// nextUnexpanded returns the index of the nearest unexpanded element, or -1.
func (s *distSet) nextUnexpanded() int {
	for i := range s.items {
		if !s.items[i].expanded {
			return i
		}
	}
	return -1
}

// threshold is the current admission bound: the worst kept distance once the
// set is full, +Inf before that.
func (s *distSet) threshold(ef int) float64 {
	if len(s.items) < ef {
		return math.Inf(1)
	}
	return s.items[len(s.items)-1].dist
}

// candidates snapshots the set in ascending order.
func (s *distSet) candidates() []Cand {
	out := make([]Cand, len(s.items))
	for i, e := range s.items {
		out[i] = Cand{Node: e.node, Dist: e.dist}
	}
	return out
}
