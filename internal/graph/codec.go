package graph

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spbtree/internal/page"
)

// codecVersion versions the Encode payload.
const codecVersion = 1

// codecMagic marks the checksummed footer: payload || magic || u32 payload
// length || u32 CRC32-C(payload) — the same layout as the tree meta, so any
// truncation or bit flip is detected before a single field is trusted.
var codecMagic = [4]byte{'S', 'P', 'B', 'G'}

// ErrCorrupt is the sentinel every Decode validation failure wraps: a
// missing or mismatched footer, a bad checksum, an unsupported version, or a
// truncated or internally inconsistent payload (e.g. a neighbor index out of
// range). Decode never returns a partially valid graph.
var ErrCorrupt = errors.New("graph: corrupt graph file")

// Encode serializes the graph (adjacency, entry points, node bookkeeping and
// substrate fingerprint) with a checksummed footer for Decode.
func (g *Graph) Encode() []byte {
	n := g.Len()
	b := make([]byte, 0, 32+len(g.Nbrs)*4+n*16+len(g.Entries)*4)
	b = append(b, codecVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(g.K))
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = binary.LittleEndian.AppendUint64(b, g.BaseCount)
	b = binary.LittleEndian.AppendUint64(b, g.BaseSize)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(g.Entries)))
	for _, e := range g.Entries {
		b = binary.LittleEndian.AppendUint32(b, uint32(e))
	}
	for _, id := range g.IDs {
		b = binary.LittleEndian.AppendUint64(b, id)
	}
	for _, off := range g.Offs {
		b = binary.LittleEndian.AppendUint64(b, off)
	}
	for _, nb := range g.Nbrs {
		b = binary.LittleEndian.AppendUint32(b, uint32(nb))
	}
	b = append(b, codecMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(b)-4))
	payload := b[:len(b)-8]
	return binary.LittleEndian.AppendUint32(b, page.Checksum(payload))
}

// Decode validates and parses an Encode blob. Every failure wraps
// ErrCorrupt.
func Decode(raw []byte) (*Graph, error) {
	const footerSize = 12
	if len(raw) < footerSize {
		return nil, fmt.Errorf("%w: %d bytes, no room for footer", ErrCorrupt, len(raw))
	}
	foot := raw[len(raw)-footerSize:]
	if [4]byte(foot[0:4]) != codecMagic {
		return nil, fmt.Errorf("%w: footer magic %q", ErrCorrupt, foot[0:4])
	}
	payload := raw[:len(raw)-footerSize]
	if n := binary.LittleEndian.Uint32(foot[4:8]); int(n) != len(payload) {
		return nil, fmt.Errorf("%w: footer says %d payload bytes, have %d", ErrCorrupt, n, len(payload))
	}
	if want, got := binary.LittleEndian.Uint32(foot[8:12]), page.Checksum(payload); got != want {
		return nil, fmt.Errorf("%w: payload checksum %08x, footer records %08x", ErrCorrupt, got, want)
	}
	r := &reader{b: payload}
	if v := r.u8(); v != codecVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, codecVersion)
	}
	k := int(r.u32())
	n := int(r.u32())
	if r.err == nil && (k <= 0 || k > 1<<10 || n < 0 || n > 1<<28) {
		return nil, fmt.Errorf("%w: k=%d n=%d out of range", ErrCorrupt, k, n)
	}
	g := &Graph{K: k}
	g.BaseCount = r.u64()
	g.BaseSize = r.u64()
	ne := int(r.u32())
	if r.err == nil && (ne < 0 || ne > n) {
		return nil, fmt.Errorf("%w: %d entry points for %d nodes", ErrCorrupt, ne, n)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	// Size check before any allocation, so a forged header cannot demand
	// gigabytes for a few bytes of payload.
	if need := r.off + ne*4 + n*16 + n*k*4; need != len(payload) {
		return nil, fmt.Errorf("%w: header implies %d payload bytes, have %d", ErrCorrupt, need, len(payload))
	}
	g.Entries = make([]int32, ne)
	for i := range g.Entries {
		e := int32(r.u32())
		if r.err == nil && (e < 0 || int(e) >= n) {
			return nil, fmt.Errorf("%w: entry point %d out of range", ErrCorrupt, e)
		}
		g.Entries[i] = e
	}
	g.IDs = make([]uint64, n)
	for i := range g.IDs {
		g.IDs[i] = r.u64()
	}
	g.Offs = make([]uint64, n)
	for i := range g.Offs {
		g.Offs[i] = r.u64()
	}
	g.Nbrs = make([]int32, n*k)
	for i := range g.Nbrs {
		nb := int32(r.u32())
		if r.err == nil && (nb < -1 || int(nb) >= n || int64(nb) == int64(i/k)) {
			return nil, fmt.Errorf("%w: neighbor %d of node %d out of range", ErrCorrupt, nb, i/k)
		}
		g.Nbrs[i] = nb
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.b)-r.off)
	}
	g.buildReverse()
	return g, nil
}

// reader is a bounds-checked sequential decoder; after any short read it
// sticks in the error state and returns zeros.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.b) {
		r.err = fmt.Errorf("short read")
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
