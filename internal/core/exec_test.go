package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/sfc"
)

// sameResults asserts two answer sets are byte-identical: same order, ids,
// distances and exactness flags.
func sameResults(t *testing.T, label string, serial, parallel []Result) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: serial %d results, parallel %d", label, len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Object.ID() != p.Object.ID() || s.Dist != p.Dist || s.Exact != p.Exact {
			t.Fatalf("%s: result %d: serial (id=%d d=%v exact=%v), parallel (id=%d d=%v exact=%v)",
				label, i, s.Object.ID(), s.Dist, s.Exact, p.Object.ID(), p.Dist, p.Exact)
		}
	}
}

// sameVerification asserts the verification-stage counters — the ones
// DESIGN.md §9 guarantees are identical in every worker mode — agree.
func sameVerification(t *testing.T, label string, serial, parallel QueryStats) {
	t.Helper()
	if serial.Verified != parallel.Verified ||
		serial.Compdists != parallel.Compdists ||
		serial.Lemma2Included != parallel.Lemma2Included ||
		serial.Discarded != parallel.Discarded ||
		serial.Abandoned != parallel.Abandoned ||
		serial.Results != parallel.Results {
		t.Fatalf("%s: verification counters diverge:\nserial:   verified=%d compdists=%d lemma2=%d discarded=%d abandoned=%d results=%d\nparallel: verified=%d compdists=%d lemma2=%d discarded=%d abandoned=%d results=%d",
			label,
			serial.Verified, serial.Compdists, serial.Lemma2Included, serial.Discarded, serial.Abandoned, serial.Results,
			parallel.Verified, parallel.Compdists, parallel.Lemma2Included, parallel.Discarded, parallel.Abandoned, parallel.Results)
	}
	// Range queries form identical candidate blocks in every worker mode, so
	// BatchedCandidates is part of the §9 identity there; kNN block shapes
	// depend on bound evolution, so only OpRange is pinned (DESIGN.md §13).
	// This is also the guard against a silent fallback to the scalar path: a
	// parallel engine that stops batching diverges from the serial count.
	if serial.Op == OpRange && serial.BatchedCandidates != parallel.BatchedCandidates {
		t.Fatalf("%s: range BatchedCandidates diverge: serial=%d parallel=%d",
			label, serial.BatchedCandidates, parallel.BatchedCandidates)
	}
}

// TestParallelMatchesSerial is the engine's core property: for every setup
// (curves, metrics, codecs), both traversal strategies and K ∈ {2,4,8}
// workers, range, kNN and budgeted kNN return byte-identical results and
// identical verification counters to fully serial execution.
func TestParallelMatchesSerial(t *testing.T) {
	for _, s := range setups() {
		for _, trav := range []TraversalStrategy{Incremental, Greedy} {
			opts := s.opts
			opts.Traversal = trav
			opts.Distance = s.dist
			tree, err := Build(s.objs, opts)
			if err != nil {
				t.Fatalf("%s: Build: %v", s.name, err)
			}
			maxD := s.dist.MaxDistance()
			queries := s.objs[:5]

			type baseline struct {
				res []Result
				qs  QueryStats
			}
			var serial []baseline
			run := func(tag string, qi int, q metric.Object) (baseline, string) {
				label := s.name + "/" + trav.String() + "/" + tag
				var b baseline
				var err error
				switch tag {
				case "range":
					b.res, b.qs, err = tree.RangeSearchWithStats(q, 0.12*maxD)
				case "knn1":
					b.res, b.qs, err = tree.KNNWithStats(q, 1)
				case "knn8":
					b.res, b.qs, err = tree.KNNWithStats(q, 8)
				case "approx":
					b.res, b.qs, err = tree.KNNApproxWithStats(q, 5, 40)
				}
				if err != nil {
					t.Fatalf("%s (q=%d, workers=%d): %v", label, qi, tree.Workers(), err)
				}
				return b, label
			}
			tags := []string{"range", "knn1", "knn8", "approx"}

			tree.SetWorkers(1)
			for qi, q := range queries {
				for _, tag := range tags {
					b, _ := run(tag, qi, q)
					serial = append(serial, b)
				}
			}
			for _, workers := range []int{2, 4, 8} {
				tree.SetWorkers(workers)
				i := 0
				for qi, q := range queries {
					for _, tag := range tags {
						b, label := run(tag, qi, q)
						sameResults(t, label, serial[i].res, b.res)
						sameVerification(t, label, serial[i].qs, b.qs)
						i++
					}
				}
			}
			tree.Close()
		}
	}
}

// TestParallelJoinMatchesSerial is the same property for Algorithm 3: the
// parallel join emits the same pairs in the same order with the same
// verification counters.
func TestParallelJoinMatchesSerial(t *testing.T) {
	const dim = 4
	build := func(objs []metric.Object, seed int64, share *Tree) *Tree {
		tree, err := Build(objs, Options{
			Distance: metric.L2(dim), Codec: metric.VectorCodec{Dim: dim},
			NumPivots: 3, Curve: sfc.ZOrder, Seed: seed, ShareMapping: share,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	tq := build(vectorSet(300, dim, 61), 61, nil)
	to := build(vectorSet(250, dim, 62), 62, tq)
	eps := 0.08 * metric.L2(dim).MaxDistance()

	tq.SetWorkers(1)
	to.SetWorkers(1)
	want, wantQS, err := JoinWithStats(tq, to, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("join baseline empty; widen eps")
	}
	for _, workers := range []int{2, 4, 8} {
		tq.SetWorkers(workers) // the Q side drives the join's worker pool
		got, gotQS, err := JoinWithStats(tq, to, eps)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if want[i].Q.ID() != got[i].Q.ID() || want[i].O.ID() != got[i].O.ID() || want[i].Dist != got[i].Dist {
				t.Fatalf("workers=%d: pair %d = (%d,%d,%v), want (%d,%d,%v)", workers, i,
					got[i].Q.ID(), got[i].O.ID(), got[i].Dist, want[i].Q.ID(), want[i].O.ID(), want[i].Dist)
			}
		}
		sameVerification(t, "join", wantQS, gotQS)
	}
}

// TestParallelCancellationPartials: a deadline expiring while verifier
// workers are mid-batch still yields ErrCanceled and well-formed partials —
// every returned result satisfies the predicate.
func TestParallelCancellationPartials(t *testing.T) {
	objs := vectorSet(800, 4, 53)
	sd := &slowDist{DistanceFunc: metric.L2(4)}
	// DisableLemma2 keeps every candidate on the throttled verification
	// path, so the deadline reliably expires mid-batch (see the matching
	// note in TestCtxDeadlinePartials).
	tree, err := Build(objs, Options{
		Distance: sd, Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3, Seed: 53,
		DisableLemma2: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree.SetWorkers(4)
	q := objs[29]
	r := 0.9 * sd.MaxDistance()

	sd.delay.Store(int64(100 * time.Microsecond))
	defer sd.delay.Store(0)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	res, err := tree.RangeSearchCtx(ctx, q, r)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("range err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if len(res) >= len(objs) {
		t.Fatal("canceled parallel range verified every object")
	}
	for i, re := range res {
		if re.Dist > r {
			t.Fatalf("partial %d at distance %v > r %v", i, re.Dist, r)
		}
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel2()
	kres, err := tree.KNNCtx(ctx2, q, 50)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("knn err = %v, want ErrCanceled", err)
	}
	for i := 1; i < len(kres); i++ {
		if kres[i-1].Dist > kres[i].Dist {
			t.Fatal("knn partials not sorted")
		}
	}
}

// TestParallelCorruptionPartials: corrupt data pages surface ErrCorrupt from
// the parallel engine exactly as from serial execution, with partial results,
// and healing the pages restores full answers.
func TestParallelCorruptionPartials(t *testing.T) {
	tree, _, dataFault, objs, dist := faultyTree(t, 400)
	tree.SetWorkers(4)
	q := objs[5]
	flipAllPages(dataFault, tree.raf.PagesUsed())

	res, err := tree.KNN(q, 8)
	if !errors.Is(err, page.ErrCorrupt) {
		t.Fatalf("knn err = %v, want ErrCorrupt", err)
	}
	if len(res) >= 8 {
		t.Fatalf("full result set despite every data page corrupt: %d", len(res))
	}
	if _, err := tree.RangeQuery(q, 0.4*dist.MaxDistance()); !errors.Is(err, page.ErrCorrupt) {
		t.Fatalf("range err = %v, want ErrCorrupt", err)
	}

	dataFault.ClearFlips()
	res, err = tree.KNN(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantDists := bfKNNDists(objs, q, 8, dist)
	if len(res) != len(wantDists) {
		t.Fatalf("after heal: %d results, want %d", len(res), len(wantDists))
	}
	for i := range res {
		if res[i].Dist != wantDists[i] {
			t.Fatalf("after heal: dist[%d] = %v, want %v", i, res[i].Dist, wantDists[i])
		}
	}
}

// TestParallelStressQueriesRebuild races concurrent parallel-mode queries
// (hitting the sharded page caches from many verifier goroutines) against
// periodic Rebuilds. Run with -race; answers are cross-checked against brute
// force throughout.
func TestParallelStressQueriesRebuild(t *testing.T) {
	objs, tree := buildCtxTree(t, 800, 4, 54)
	tree.SetWorkers(8)
	dist := metric.L2(4)
	r := 0.25 * dist.MaxDistance()

	stop := make(chan struct{})
	var wg, wgRebuild sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := objs[(w*53+i*17)%len(objs)]
				res, err := tree.RangeQuery(q, r)
				if err != nil {
					errCh <- err
					return
				}
				want := bfRange(objs, q, r, dist)
				if len(res) != len(want) {
					errCh <- errMismatch
					return
				}
				if res, err := tree.KNN(q, 5); err != nil || len(res) != 5 {
					errCh <- errMismatch
					return
				}
			}
		}(w)
	}
	wgRebuild.Add(1)
	go func() {
		defer wgRebuild.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tree.Rebuild(nil, nil); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	wgRebuild.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestWorkerResolution pins the Options.Workers contract: 0 picks the
// GOMAXPROCS-derived default, values clamp to [1, maxWorkers], and
// SetWorkers applies the same resolution.
func TestWorkerResolution(t *testing.T) {
	objs := vectorSet(50, 4, 55)
	tree, err := Build(objs, Options{Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tree.Workers(), defaultWorkers(); got != want {
		t.Errorf("default workers = %d, want %d", got, want)
	}
	tree.SetWorkers(-3)
	if tree.Workers() != 1 {
		t.Errorf("negative workers resolved to %d, want 1", tree.Workers())
	}
	tree.SetWorkers(maxWorkers + 100)
	if tree.Workers() != maxWorkers {
		t.Errorf("oversized workers resolved to %d, want %d", tree.Workers(), maxWorkers)
	}
	tree.SetWorkers(3)
	if tree.Workers() != 3 {
		t.Errorf("Workers = %d, want 3", tree.Workers())
	}
}
