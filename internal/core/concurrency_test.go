package core

import (
	"sync"
	"testing"

	"spbtree/internal/metric"
)

// TestConcurrentReaders: a built tree serves concurrent queries safely (the
// caches are mutex-guarded and the distance counter is atomic). Run with
// -race.
func TestConcurrentReaders(t *testing.T) {
	objs := vectorSet(500, 4, 91)
	dist := metric.L2(4)
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := objs[(w*37+i*13)%len(objs)]
				res, err := tree.RangeQuery(q, 0.2)
				if err != nil {
					errCh <- err
					return
				}
				want := bfRange(objs, q, 0.2, dist)
				if len(res) != len(want) {
					errCh <- errMismatch
					return
				}
				if _, err := tree.KNN(q, 5); err != nil {
					errCh <- err
					return
				}
				if _, err := tree.EstimateRange(q, 0.2); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query returned wrong result count" }
