package core

import (
	"sort"

	"spbtree/internal/bptree"
	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/raf"
)

// Rebuild compacts the tree into fresh page stores: live objects are read in
// index order, re-appended to a new RAF in exact SFC order, and the B+-tree
// is re-bulk-loaded. It restores the two things churn degrades —
// out-of-SFC-order RAF placement from inserts and orphaned RAF records from
// deletes — the bulk-load-plus-deltas maintenance cycle the paper's design
// implies. The pivot table and quantization are kept (no distance
// computations); cost-model distributions are kept as-is.
//
// New stores may be supplied (e.g. fresh files to swap in); nil arguments
// select in-memory stores. The old stores are left untouched.
//
// Rebuild takes the tree's write lock: it waits for in-flight queries to
// drain, swaps the substrates, and queries issued afterwards see the compact
// tree — safe under concurrent read traffic (run the stress tests with
// -race).
func (t *Tree) Rebuild(indexStore, dataStore page.Store) error {
	if t.dur != nil {
		// Durable trees compact into their own generation layout; the store
		// arguments do not apply there.
		return t.dur.compactOnce(t)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if indexStore == nil {
		indexStore = page.NewMemStore()
	}
	if dataStore == nil {
		dataStore = page.NewMemStore()
	}
	// Collect live entries in key order from the leaf chain.
	type liveEntry struct {
		key uint64
		obj metric.Object
	}
	var live []liveEntry
	for c := t.bpt.SeekFirst(); c.Valid(); c.Next() {
		obj, err := t.raf.Read(c.Val())
		if err != nil {
			return err
		}
		live = append(live, liveEntry{key: c.Key(), obj: obj})
	}
	if c := t.bpt.SeekFirst(); c.Err() != nil {
		return c.Err()
	}

	cacheSize := t.idxCache.Capacity()
	newIdxSums := page.NewChecksumStore(indexStore)
	newDataSums := page.NewChecksumStore(dataStore)
	newIdx := page.NewCache(newIdxSums, cacheSize)
	newData := page.NewCache(newDataSums, t.dataCache.Capacity())
	newBpt, err := bptree.New(newIdx, bptree.Options{Geometry: curveGeometry{t.curve}})
	if err != nil {
		return err
	}
	newRAF := raf.New(newData, t.codec)

	entries := make([]bptree.Pair, len(live))
	for i, e := range live {
		off, err := newRAF.Append(e.obj)
		if err != nil {
			return err
		}
		entries[i] = bptree.Pair{Key: e.key, Val: off}
	}
	if err := newRAF.Flush(); err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Less(entries[j]) })
	if err := newBpt.BulkLoad(entries); err != nil {
		return err
	}

	t.bpt = newBpt
	t.raf = newRAF
	t.idxSums = newIdxSums
	t.dataSums = newDataSums
	t.idxCache = newIdx
	t.dataCache = newData
	t.count = len(live)
	t.cm.markDirty()
	// The approximate graph indexed the old RAF's offsets; drop it.
	t.graph = nil
	// The substrates were swapped out from under any installed tracer.
	t.wireTracer()
	return nil
}

// FragmentationBytes estimates how many RAF bytes are dead (orphaned by
// deletes), from the gap between RAF records and live index entries at the
// file's average record size — when this grows large relative to
// Tree.StorageBytes, a Rebuild pays off. It reads no pages.
func (t *Tree) FragmentationBytes() int64 {
	if t.raf.Count() == 0 {
		return 0
	}
	dead := t.raf.Count() - t.bpt.Len()
	if dead <= 0 {
		return 0
	}
	avg := float64(t.raf.Size()) / float64(t.raf.Count())
	return int64(avg * float64(dead))
}
