package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/sfc"
)

// faultyTree builds a tree whose stores sit on FaultStores *below* the
// checksum layer, so FlipBit models silent media rot that only the checksums
// can catch. Caching is disabled so every query read reaches the stores.
func faultyTree(t *testing.T, n int) (*Tree, *page.FaultStore, *page.FaultStore, []metric.Object, metric.DistanceFunc) {
	t.Helper()
	objs := vectorSet(n, 5, 11)
	dist := metric.L2(5)
	idxFault := page.NewFaultStore(page.NewMemStore(), -1)
	dataFault := page.NewFaultStore(page.NewMemStore(), -1)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5},
		IndexStore: idxFault, DataStore: dataFault,
		CacheSize: -1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree, idxFault, dataFault, objs, dist
}

func flipAllPages(f *page.FaultStore, n int) {
	for id := 0; id < n; id++ {
		f.FlipBit(page.ID(id), 9+64*id%(8*page.Size))
	}
}

func TestRangeQuerySurfacesCorruptDataPage(t *testing.T) {
	tree, _, dataFault, objs, dist := faultyTree(t, 400)
	q := objs[3]
	want := bfRange(objs, q, 0.5, dist)

	dataFault.FlipBit(0, 77)
	res, err := tree.RangeQuery(q, 0.5)
	if !errors.Is(err, page.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	var ce *page.CorruptError
	if !errors.As(err, &ce) || ce.ID != 0 {
		t.Fatalf("err = %v, want *CorruptError for page 0", err)
	}
	// Partial results: a subset of the true answer, never fabricated.
	if len(res) >= len(want) {
		t.Fatalf("got %d results with a corrupt page, brute force has %d", len(res), len(want))
	}
	for _, r := range res {
		if !want[r.Object.ID()] {
			t.Fatalf("partial result %d is not a true answer", r.Object.ID())
		}
	}

	// Healing the medium restores exact answers.
	dataFault.ClearFlips()
	res, err = tree.RangeQuery(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(want) {
		t.Fatalf("after heal: %d results, want %d", len(res), len(want))
	}
}

func TestRangeQuerySurfacesCorruptIndexPage(t *testing.T) {
	tree, idxFault, _, objs, _ := faultyTree(t, 400)
	flipAllPages(idxFault, tree.idxCache.NumPages())
	_, err := tree.RangeQuery(objs[0], 0.4)
	if !errors.Is(err, page.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	idxFault.ClearFlips()
	if _, err := tree.RangeQuery(objs[0], 0.4); err != nil {
		t.Fatal(err)
	}
}

func TestKNNSurfacesCorruptionWithPartialResults(t *testing.T) {
	tree, _, dataFault, objs, _ := faultyTree(t, 400)
	q := objs[5]
	flipAllPages(dataFault, tree.raf.PagesUsed())
	res, err := tree.KNN(q, 8)
	if !errors.Is(err, page.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if len(res) >= 8 {
		t.Fatalf("full result set despite every data page corrupt: %d", len(res))
	}

	dataFault.ClearFlips()
	res, err = tree.KNN(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantDists := bfKNNDists(objs, q, 8, metric.L2(5))
	if len(res) != len(wantDists) {
		t.Fatalf("after heal: %d results, want %d", len(res), len(wantDists))
	}
	for i := range res {
		if res[i].Dist != wantDists[i] {
			t.Fatalf("after heal: dist[%d] = %v, want %v", i, res[i].Dist, wantDists[i])
		}
	}
}

func TestNearestIterSurfacesCorruption(t *testing.T) {
	tree, _, dataFault, objs, _ := faultyTree(t, 300)
	flipAllPages(dataFault, tree.raf.PagesUsed())
	it := tree.NearestIter(objs[0])
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
		if n > 300 {
			t.Fatal("iterator did not terminate")
		}
	}
	if !errors.Is(it.Err(), page.ErrCorrupt) {
		t.Fatalf("iter err = %v, want ErrCorrupt", it.Err())
	}
}

func TestJoinSurfacesCorruptionWithPartialPairs(t *testing.T) {
	objs := vectorSet(250, 4, 21)
	dist := metric.L2(4)
	dataFault := page.NewFaultStore(page.NewMemStore(), -1)
	tq, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 4},
		Curve: sfc.ZOrder, DataStore: dataFault, CacheSize: -1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	to, err := Build(vectorSet(250, 4, 22), Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 4},
		Curve: sfc.ZOrder, ShareMapping: tq, CacheSize: -1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Join(tq, to, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("test needs a non-empty join")
	}

	flipAllPages(dataFault, tq.raf.PagesUsed())
	partial, err := Join(tq, to, 0.2)
	if !errors.Is(err, page.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if len(partial) >= len(full) {
		t.Fatalf("join over corrupt store returned %d pairs, healthy join %d", len(partial), len(full))
	}
}

func TestBuildSurfacesProbabilisticFaults(t *testing.T) {
	idxFault := page.NewFaultStore(page.NewMemStore(), -1)
	idxFault.SetProbability(page.OpWrite|page.OpAlloc, 0.3, 99)
	_, err := Build(vectorSet(400, 5, 31), Options{
		Distance: metric.L2(5), Codec: metric.VectorCodec{Dim: 5},
		IndexStore: idxFault, Seed: 7,
	})
	if !errors.Is(err, page.ErrInjected) {
		t.Fatalf("Build err = %v, want ErrInjected", err)
	}
}

func TestInsertSurfacesTargetedWriteFault(t *testing.T) {
	tree, idxFault, _, _, _ := faultyTree(t, 200)
	// Every index page write fails: the insert cannot complete silently.
	for id := 0; id < tree.idxCache.NumPages(); id++ {
		idxFault.FailPage(page.ID(id), page.OpWrite)
	}
	extra := vectorSet(1, 5, 77)[0].(*metric.Vector)
	extra.Id = 100000
	if err := tree.Insert(extra); !errors.Is(err, page.ErrInjected) {
		t.Fatalf("Insert err = %v, want ErrInjected", err)
	}
}

func TestVerifyIntegrityHealthy(t *testing.T) {
	tree, _, _, _, _ := faultyTree(t, 300)
	if err := tree.VerifyIntegrity(); err != nil {
		t.Fatalf("healthy tree failed verify: %v", err)
	}
}

func TestVerifyIntegrityPinpointsCorruptPages(t *testing.T) {
	tree, idxFault, dataFault, _, _ := faultyTree(t, 400)
	idxFault.FlipBit(1, 333)
	dataFault.FlipBit(2, 444)

	err := tree.VerifyIntegrity()
	if !errors.Is(err, page.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T, want *IntegrityError", err)
	}
	foundIdx, foundData := false, false
	for _, c := range ie.Corruptions {
		if c.Component == "index-page" && c.HasPage && c.Page == 1 {
			foundIdx = true
		}
		if c.Component == "data-page" && c.HasPage && c.Page == 2 {
			foundData = true
		}
	}
	if !foundIdx || !foundData {
		t.Fatalf("findings missed a corrupt page (idx=%v data=%v): %v", foundIdx, foundData, err)
	}

	// Verification is read-only and the faults are in the medium, not the
	// tree: healing the medium makes verify pass again.
	idxFault.ClearFlips()
	dataFault.ClearFlips()
	if err := tree.VerifyIntegrity(); err != nil {
		t.Fatalf("verify after heal: %v", err)
	}
}

func TestVerifyIntegrityReportsAllFindings(t *testing.T) {
	tree, _, dataFault, _, _ := faultyTree(t, 400)
	pages := tree.raf.PagesUsed()
	if pages < 3 {
		t.Fatalf("test needs ≥3 data pages, got %d", pages)
	}
	for id := 0; id < 3; id++ {
		dataFault.FlipBit(page.ID(id), 5)
	}
	var ie *IntegrityError
	if err := tree.VerifyIntegrity(); !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *IntegrityError", err)
	}
	distinct := map[page.ID]bool{}
	for _, c := range ie.Corruptions {
		if c.Component == "data-page" && c.HasPage {
			distinct[c.Page] = true
		}
	}
	// All three corrupt pages are reported, not just the first.
	for id := page.ID(0); id < 3; id++ {
		if !distinct[id] {
			t.Fatalf("finding for data page %d missing: %v", id, ie)
		}
	}
}

func TestVerifyIntegrityCatchesCounterDrift(t *testing.T) {
	tree, _, _, _, _ := faultyTree(t, 150)
	tree.count++ // simulate a meta/counter inconsistency
	defer func() { tree.count-- }()
	var ie *IntegrityError
	if err := tree.VerifyIntegrity(); !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *IntegrityError", err)
	}
	found := false
	for _, c := range ie.Corruptions {
		if c.Component == "counters" {
			found = true
		}
	}
	if !found {
		t.Fatalf("counter drift not reported: %v", ie)
	}
}

// buildDir builds a tree whose page stores live as files in dir and persists
// it with SaveAtomic.
func buildDir(t *testing.T, dir string, objs []metric.Object, dist metric.DistanceFunc) *Tree {
	t.Helper()
	idx, err := page.NewFileStore(filepath.Join(dir, IndexPagesFile))
	if err != nil {
		t.Fatal(err)
	}
	data, err := page.NewFileStore(filepath.Join(dir, DataPagesFile))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5},
		IndexStore: idx, DataStore: data, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.SaveAtomic(dir); err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestSaveAtomicLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(500, 5, 41)
	dist := metric.L2(5)
	tree := buildDir(t, dir, objs, dist)
	want, err := tree.RangeQuery(objs[7], 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Load(dir, LoadOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(objs) {
		t.Fatalf("reloaded Len = %d, want %d", re.Len(), len(objs))
	}
	got, err := re.RangeQuery(objs[7], 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reloaded query: %d results, want %d", len(got), len(want))
	}
	if err := re.VerifyIntegrity(); err != nil {
		t.Fatalf("verify after load: %v", err)
	}
}

func TestSaveAtomicSyncFailureLeavesMetaUntouched(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(300, 5, 51)
	dist := metric.L2(5)

	idxFile, err := page.NewFileStore(filepath.Join(dir, IndexPagesFile))
	if err != nil {
		t.Fatal(err)
	}
	dataFile, err := page.NewFileStore(filepath.Join(dir, DataPagesFile))
	if err != nil {
		t.Fatal(err)
	}
	idxFault := page.NewFaultStore(idxFile, -1)
	dataFault := page.NewFaultStore(dataFile, -1)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5},
		IndexStore: idxFault, DataStore: dataFault, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.SaveAtomic(dir); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		t.Fatal(err)
	}

	// A failed fsync must abort the save and leave the published meta as it
	// was — the index on disk stays the previous consistent version.
	idxFault.FailNextSyncs(1)
	if err := tree.SaveAtomic(dir); !errors.Is(err, page.ErrInjected) {
		t.Fatalf("SaveAtomic err = %v, want ErrInjected", err)
	}
	after, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed SaveAtomic mutated the published meta")
	}

	// Once syncs work again the save goes through.
	if err := tree.SaveAtomic(dir); err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorruptMeta(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(200, 5, 61)
	dist := metric.L2(5)
	tree := buildDir(t, dir, objs, dist)
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	metaPath := filepath.Join(dir, MetaFile)
	good, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	opts := LoadOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 5}}

	corruptions := map[string][]byte{
		"truncated":     good[:len(good)/2],
		"empty":         {},
		"flipped-byte":  append([]byte{}, good...),
		"flipped-tail":  append([]byte{}, good...),
		"garbage":       []byte("not a meta file at all"),
		"footer-capped": good[:len(good)-1],
	}
	corruptions["flipped-byte"][len(good)/3] ^= 0x10
	corruptions["flipped-tail"][len(good)-2] ^= 0x01

	for name, bad := range corruptions {
		if err := os.WriteFile(metaPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, opts); !errors.Is(err, ErrCorruptMeta) {
			t.Fatalf("%s: Load err = %v, want ErrCorruptMeta", name, err)
		}
	}

	// Restoring the intact meta restores loadability.
	if err := os.WriteFile(metaPath, good, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
}

func TestLoadDetectsTornPageFile(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(300, 5, 71)
	dist := metric.L2(5)
	tree := buildDir(t, dir, objs, dist)
	full, err := tree.RangeQuery(objs[0], 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of the data file: Load still succeeds
	// (pages are validated lazily) but any query touching the page reports
	// corruption instead of returning wrong answers, and VerifyIntegrity
	// pinpoints it.
	dataPath := filepath.Join(dir, DataPagesFile)
	raw, err := os.ReadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x80
	if err := os.WriteFile(dataPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Load(dir, LoadOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 5}})
	if err != nil {
		// Acceptable: the torn page was needed during open (RAF tail).
		if !errors.Is(err, page.ErrCorrupt) {
			t.Fatalf("Load err = %v, want ErrCorrupt", err)
		}
		return
	}
	defer re.Close()

	res, qerr := re.RangeQuery(objs[0], 0.6)
	verr := re.VerifyIntegrity()
	if verr == nil {
		t.Fatal("VerifyIntegrity missed a flipped byte in the data file")
	}
	if !errors.Is(verr, page.ErrCorrupt) {
		t.Fatalf("verify err = %v, want ErrCorrupt", verr)
	}
	if qerr == nil && len(res) != len(full) {
		t.Fatalf("silent wrong answer: %d results, want %d", len(res), len(full))
	}
}

func TestRepairAfterMetaLoss(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(350, 5, 81)
	dist := metric.L2(5)
	tree := buildDir(t, dir, objs, dist)
	q := objs[2]
	want := bfRange(objs, q, 0.5, dist)
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	// Destroy the meta entirely: only the RAF's self-describing records
	// survive, and repair rebuilds the whole index from them.
	if err := os.WriteFile(filepath.Join(dir, MetaFile), []byte("zapped"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := LoadOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 5}}
	rep, err := Repair(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Salvaged != len(objs) {
		t.Fatalf("salvaged %d objects, want %d", rep.Salvaged, len(objs))
	}

	re, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.VerifyIntegrity(); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
	res, err := re.RangeQuery(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(want) {
		t.Fatalf("after repair: %d results, want %d", len(res), len(want))
	}
	for _, r := range res {
		if !want[r.Object.ID()] {
			t.Fatalf("repaired index returned wrong object %d", r.Object.ID())
		}
	}
}

func TestRepairDropsOnlyCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(400, 5, 91)
	dist := metric.L2(5)
	tree := buildDir(t, dir, objs, dist)
	pages := tree.raf.PagesUsed()
	if pages < 4 {
		t.Fatalf("test needs several data pages, got %d", pages)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one data page in the middle of the file.
	dataPath := filepath.Join(dir, DataPagesFile)
	f, err := os.OpenFile(dataPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, int64(pages/2)*page.Size+100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	opts := LoadOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 5}}
	rep, err := Repair(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Salvaged == 0 || rep.Salvaged >= len(objs) {
		t.Fatalf("salvaged %d of %d, want a strict subset", rep.Salvaged, len(objs))
	}
	if rep.Dropped == 0 {
		t.Fatal("no drops reported despite a corrupt page")
	}

	re, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.VerifyIntegrity(); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
	if re.Len() != rep.Salvaged {
		t.Fatalf("reloaded Len = %d, report says %d", re.Len(), rep.Salvaged)
	}
	// Every object the repaired index returns is genuine.
	q := objs[2]
	want := bfRange(objs, q, 0.5, dist)
	res, err := re.RangeQuery(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !want[r.Object.ID()] {
			t.Fatalf("repaired index returned wrong object %d", r.Object.ID())
		}
	}
}
