package core

import (
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/sfc"
)

// RangeCount returns |RQ(q, O, r)| without materializing the objects.
// Counting is strictly cheaper than RangeQuery: answers proved by Lemma 2
// are counted without reading them from the RAF at all — for a count, the
// object bytes themselves are never needed — so both compdists *and* page
// accesses drop. Aggregation pushdown, the way a DBMS integration would run
// COUNT(*) ... WHERE d(q, o) <= r.
//
// On a durable tree with a live write buffer the read-free Lemma-2 shortcut
// is suspended for base entries: whether a record is superseded (tombstoned
// or re-inserted) is known only from its object ID, which lives in the RAF —
// the count is exact either way, but those entries cost a page read.
func (t *Tree) RangeCount(q metric.Object, r float64) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return 0, ErrClosed
	}
	if r < 0 {
		return 0, nil
	}
	n := len(t.pivots)
	qvec := make([]float64, n)
	t.phi(q, qvec)

	rrLo := make(sfc.Point, n)
	rrHi := make(sfc.Point, n)
	t.rangeRegion(qvec, r, rrLo, rrHi)
	if sfc.BoxVolume(rrLo, rrHi) == 0 {
		return 0, nil
	}

	boxLo := make(sfc.Point, n)
	boxHi := make(sfc.Point, n)
	cell := make(sfc.Point, n)
	deltaLive := t.deltaActive()

	count := 0
	if root, ok := t.bpt.Root(); ok {
		stack := []pageRef{{page: root.Page, boxLo: root.BoxLo, boxHi: root.BoxHi}}
		for len(stack) > 0 {
			ref := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			t.curve.Decode(ref.boxLo, boxLo)
			t.curve.Decode(ref.boxHi, boxHi)
			if !sfc.Intersects(rrLo, rrHi, boxLo, boxHi) {
				continue
			}
			node, err := t.bpt.ReadNode(ref.page)
			if err != nil {
				return 0, err
			}
			if !node.Leaf {
				for _, c := range node.Children {
					stack = append(stack, pageRef{page: c.Page, boxLo: c.BoxLo, boxHi: c.BoxHi})
				}
				continue
			}
			for i := range node.Keys {
				t.curve.Decode(node.Keys[i], cell)
				if !sfc.Contains(rrLo, rrHi, cell) {
					continue // Lemma 1
				}
				var obj metric.Object
				if deltaLive {
					// The shadow check needs the ID, so the read is mandatory.
					var err error
					obj, err = t.raf.Read(node.Vals[i])
					if err != nil {
						return 0, err
					}
					if t.deltaShadowed(obj.ID()) {
						continue
					}
				}
				if !t.noLemma2 {
					if _, ok := t.lemma2Bound(qvec, cell, r); ok {
						count++ // Lemma 2: no distance computation needed
						continue
					}
				}
				if obj == nil {
					var err error
					obj, err = t.raf.Read(node.Vals[i])
					if err != nil {
						return 0, err
					}
				}
				if _, within := t.verifyDist(q, obj, r); within {
					count++
				}
			}
		}
	}
	// Buffered inserts run the same per-entry pipeline.
	if deltaLive {
		for _, e := range t.deltaEntriesSorted() {
			t.curve.Decode(e.key, cell)
			if !sfc.Contains(rrLo, rrHi, cell) {
				continue // Lemma 1
			}
			if !t.noLemma2 {
				if _, ok := t.lemma2Bound(qvec, cell, r); ok {
					count++
					continue
				}
			}
			if _, within := t.verifyDist(q, e.obj, r); within {
				count++
			}
		}
	}
	return count, nil
}

// pageRef is a lightweight node reference for count traversals.
type pageRef struct {
	page         page.ID
	boxLo, boxHi uint64
}

// RangeIDs returns the identifiers of RQ(q, O, r), sorted — between
// RangeCount and RangeQuery in cost: Lemma-2 answers still require one RAF
// read for their id, but no distance computation.
func (t *Tree) RangeIDs(q metric.Object, r float64) ([]uint64, error) {
	res, err := t.RangeQuery(q, r)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, len(res))
	for i, x := range res {
		ids[i] = x.Object.ID()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}
