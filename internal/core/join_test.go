package core

import (
	"context"
	"math/rand"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

func bfJoin(Q, O []metric.Object, eps float64, d metric.DistanceFunc) map[[2]uint64]bool {
	out := map[[2]uint64]bool{}
	for _, q := range Q {
		for _, o := range O {
			if d.Distance(q, o) <= eps {
				out[[2]uint64{q.ID(), o.ID()}] = true
			}
		}
	}
	return out
}

func buildJoinPair(t *testing.T, Q, O []metric.Object, dist metric.DistanceFunc, codec metric.Codec, pivots int) (*Tree, *Tree) {
	t.Helper()
	tq, err := Build(Q, Options{
		Distance: dist, Codec: codec, NumPivots: pivots, Curve: sfc.ZOrder, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	to, err := Build(O, Options{
		Distance: dist, Codec: codec, Curve: sfc.ZOrder, ShareMapping: tq,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tq, to
}

func TestJoinMatchesBruteForceVectors(t *testing.T) {
	Q := vectorSet(200, 4, 21)
	O := vectorSet(250, 4, 22)
	// Re-ID O so pairs are unambiguous.
	for i, o := range O {
		v := o.(*metric.Vector)
		v.Id = uint64(10000 + i)
	}
	dist := metric.L2(4)
	tq, to := buildJoinPair(t, Q, O, dist, metric.VectorCodec{Dim: 4}, 3)
	for _, epsFrac := range []float64{0.02, 0.06, 0.10} {
		eps := epsFrac * dist.MaxDistance()
		got, err := Join(tq, to, eps)
		if err != nil {
			t.Fatal(err)
		}
		want := bfJoin(Q, O, eps, dist)
		gotSet := map[[2]uint64]bool{}
		for _, p := range got {
			key := [2]uint64{p.Q.ID(), p.O.ID()}
			if gotSet[key] {
				t.Fatalf("eps=%v: duplicate pair %v (Lemma 7 violated)", eps, key)
			}
			gotSet[key] = true
			if p.Dist > eps {
				t.Fatalf("pair %v at distance %v > eps %v", key, p.Dist, eps)
			}
		}
		if len(gotSet) != len(want) {
			t.Fatalf("eps=%v: got %d pairs, want %d", eps, len(gotSet), len(want))
		}
		for key := range want {
			if !gotSet[key] {
				t.Fatalf("eps=%v: missing pair %v", eps, key)
			}
		}
	}
}

func TestJoinMatchesBruteForceWords(t *testing.T) {
	Q := wordSet(150, 23)
	O := wordSet(180, 24)
	for i, o := range O {
		o.(*metric.Str).Id = uint64(10000 + i)
	}
	dist := metric.EditDistance{MaxLen: 24}
	tq, to := buildJoinPair(t, Q, O, dist, metric.StrCodec{}, 3)
	for _, eps := range []float64{1, 2, 3} {
		got, err := Join(tq, to, eps)
		if err != nil {
			t.Fatal(err)
		}
		want := bfJoin(Q, O, eps, dist)
		if len(got) != len(want) {
			t.Fatalf("eps=%v: got %d pairs, want %d", eps, len(got), len(want))
		}
	}
}

func TestSelfJoin(t *testing.T) {
	O := vectorSet(150, 3, 25)
	dist := metric.L2(3)
	tree, err := Build(O, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 3}, NumPivots: 3, Curve: sfc.ZOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.05 * dist.MaxDistance()
	got, err := Join(tree, tree, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := bfJoin(O, O, eps, dist) // includes self-pairs (q, q)
	if len(got) != len(want) {
		t.Fatalf("self-join: got %d pairs, want %d", len(got), len(want))
	}
}

func TestJoinRequiresZOrder(t *testing.T) {
	O := vectorSet(50, 3, 26)
	dist := metric.L2(3)
	hil, err := Build(O, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Join(hil, hil, 0.1); err == nil {
		t.Error("join over Hilbert trees accepted (Lemma 6 needs Z-order)")
	}
}

func TestJoinRequiresSharedMapping(t *testing.T) {
	A := vectorSet(60, 3, 27)
	B := vectorSet(60, 3, 28)
	dist := metric.L2(3)
	ta, err := Build(A, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2, Curve: sfc.ZOrder, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Build(B, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2, Curve: sfc.ZOrder, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Join(ta, tb, 0.1); err == nil {
		t.Error("join across different pivot tables accepted")
	}
}

func TestJoinEpsilonZeroAndNegative(t *testing.T) {
	O := vectorSet(80, 3, 29)
	dist := metric.L2(3)
	tree, err := Build(O, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2, Curve: sfc.ZOrder})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Join(tree, tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bfJoin(O, O, 0, dist)
	if len(got) != len(want) {
		t.Errorf("eps=0: got %d, want %d (self-pairs)", len(got), len(want))
	}
	if got, _ := Join(tree, tree, -1); got != nil {
		t.Errorf("negative eps returned %d pairs", len(got))
	}
}

func TestJoinScansEachTreeOnce(t *testing.T) {
	// SJA's selling point vs |Q| range queries: one merge pass. The page
	// reads must stay near the number of leaf+RAF pages, not |Q|×.
	Q := vectorSet(400, 4, 30)
	O := vectorSet(400, 4, 31)
	for i, o := range O {
		o.(*metric.Vector).Id = uint64(10000 + i)
	}
	dist := metric.L2(4)
	tq, to := buildJoinPair(t, Q, O, dist, metric.VectorCodec{Dim: 4}, 3)
	tq.ResetStats()
	to.ResetStats()
	if _, err := Join(tq, to, 0.03*dist.MaxDistance()); err != nil {
		t.Fatal(err)
	}
	paQ := tq.TakeStats().PageAccesses
	paO := to.TakeStats().PageAccesses
	budget := int64(tq.bpt.NumLeaves()+to.bpt.NumLeaves()) +
		int64(tq.raf.PagesUsed()+to.raf.PagesUsed()) +
		int64(2*tq.bpt.Height()+2*to.bpt.Height()) + 8
	if paQ+paO > budget {
		t.Errorf("join PA %d exceeds single-scan budget %d", paQ+paO, budget)
	}
}

func TestJoinListEviction(t *testing.T) {
	// After the merge the internal lists must have been pruned: run a join
	// over widely spread data with tiny eps and confirm it completes with
	// bounded memory by simply inspecting pair correctness (behavioural
	// proxy), plus a direct unit check of verifyJoin's eviction.
	tDummy := &Tree{delta: 1, exact: true, bits: 4, dPlus: 15}
	tDummy.dist = metric.NewCounter(metric.EditDistance{MaxLen: 15})
	tDummy.curve = sfc.New(sfc.ZOrder, 2, 4)
	list := []joinElem{
		{key: 1, maxRR: 2},  // stale once cur.key > 2
		{key: 5, maxRR: 90}, // stays
	}
	cur := joinElem{
		key: 10, minRR: 95, // no verification matches
		rrLo: sfc.Point{15, 15}, rrHi: sfc.Point{15, 15},
		cells: sfc.Point{0, 0},
	}
	sink := &joinSerial{ctx: context.Background(), t: tDummy, eps: 1, qs: &QueryStats{}}
	if err := verifyJoin(context.Background(), cur, &list, 1, &QueryStats{}, sink, false); err != nil {
		t.Fatal(err)
	}
	if len(sink.pairs) != 0 {
		t.Fatal("unexpected emit")
	}
	if len(list) != 1 || list[0].key != 5 {
		t.Errorf("eviction failed: %d entries left", len(list))
	}
}

func TestJoinSkewedSizes(t *testing.T) {
	Q := vectorSet(20, 3, 32)
	O := vectorSet(500, 3, 33)
	for i, o := range O {
		o.(*metric.Vector).Id = uint64(10000 + i)
	}
	dist := metric.L2(3)
	tq, to := buildJoinPair(t, Q, O, dist, metric.VectorCodec{Dim: 3}, 3)
	eps := 0.05 * dist.MaxDistance()
	got, err := Join(tq, to, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := bfJoin(Q, O, eps, dist)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	// Symmetry: swapping the roles yields the same pair count.
	rev, err := Join(to, tq, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rev) != len(want) {
		t.Fatalf("reversed join got %d pairs, want %d", len(rev), len(want))
	}
}

func TestJoinDiscreteSignatures(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	_ = rng
	Q := sigSet(120, 35)
	O := sigSet(150, 36)
	for i, o := range O {
		o.(*metric.BitString).Id = uint64(10000 + i)
	}
	dist := metric.Hamming{Bytes: 8}
	tq, to := buildJoinPair(t, Q, O, dist, metric.BitStringCodec{Bytes: 8}, 3)
	for _, eps := range []float64{2, 5, 8} {
		got, err := Join(tq, to, eps)
		if err != nil {
			t.Fatal(err)
		}
		want := bfJoin(Q, O, eps, dist)
		if len(got) != len(want) {
			t.Fatalf("eps=%v: got %d pairs, want %d", eps, len(got), len(want))
		}
	}
}
