package core

import (
	"sync"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/obs"
	"spbtree/internal/sfc"
)

// TestQueryStatsExactSmallTree pins the exact, hand-computed cost of a range
// query over a tree small enough to reason about on paper: 8 objects fit one
// B+-tree leaf (255-entry capacity) and one RAF page, so a cold full-space
// range query reads exactly 2 physical pages (the root leaf + the RAF page),
// and with Lemma 2 disabled computes exactly |P| + 8 distances (the pivot
// mapping of q plus one verification per object).
func TestQueryStatsExactSmallTree(t *testing.T) {
	objs := vectorSet(8, 3, 7)
	dist := metric.L2(3)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 3},
		NumPivots: 2, DisableLemma2: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := metric.NewVector(100, []float64{0.5, 0.5, 0.5})

	tree.ResetStats()
	res, qs, err := tree.RangeSearchWithStats(q, dist.MaxDistance())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 || qs.Results != 8 {
		t.Fatalf("want all 8 objects, got %d (stats %d)", len(res), qs.Results)
	}
	if qs.NodesRead != 1 {
		t.Errorf("NodesRead = %d, want 1 (single-leaf tree)", qs.NodesRead)
	}
	if qs.IndexPA != 1 || qs.DataPA != 1 {
		t.Errorf("PA = %d index + %d data, want 1 + 1", qs.IndexPA, qs.DataPA)
	}
	if qs.EntriesScanned != 8 || qs.Verified != 8 || qs.Discarded != 0 {
		t.Errorf("scanned/verified/discarded = %d/%d/%d, want 8/8/0",
			qs.EntriesScanned, qs.Verified, qs.Discarded)
	}
	if want := int64(2 + 8); qs.Compdists != want {
		t.Errorf("Compdists = %d, want %d (|P| + one per object)", qs.Compdists, want)
	}
	st := tree.TakeStats()
	if qs.Compdists != st.DistanceComputations || qs.PageAccesses() != st.PageAccesses {
		t.Errorf("per-query (%d cd, %d PA) does not reconcile with lifetime (%d cd, %d PA)",
			qs.Compdists, qs.PageAccesses(), st.DistanceComputations, st.PageAccesses)
	}

	// Warm repeat: both pages are cached, so PA must be zero and the reads
	// must surface as cache hits instead.
	tree.WarmReset()
	_, qs2, err := tree.RangeSearchWithStats(q, dist.MaxDistance())
	if err != nil {
		t.Fatal(err)
	}
	if qs2.PageAccesses() != 0 {
		t.Errorf("warm PA = %d, want 0", qs2.PageAccesses())
	}
	if qs2.IndexCacheHits < 1 || qs2.DataCacheHits < 1 {
		t.Errorf("warm cache hits = %d index, %d data; want ≥1 each", qs2.IndexCacheHits, qs2.DataCacheHits)
	}
	if st2 := tree.TakeStats(); st2.PageAccesses != 0 {
		t.Errorf("warm lifetime PA = %d, want 0 (cache hits must not count)", st2.PageAccesses)
	}
}

// TestQueryStatsReconcile checks, on a larger tree, that every WithStats
// entry point's Compdists and PA totals equal the tree-lifetime counter
// deltas measured around the query — the acceptance identity that holds
// whenever queries do not run concurrently.
func TestQueryStatsReconcile(t *testing.T) {
	objs := vectorSet(600, 4, 3)
	dist := metric.L2(4)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := metric.NewVector(9000, []float64{0.4, 0.6, 0.5, 0.3})

	check := func(name string, qs QueryStats) {
		t.Helper()
		st := tree.TakeStats()
		if qs.Compdists != st.DistanceComputations {
			t.Errorf("%s: Compdists %d != lifetime %d", name, qs.Compdists, st.DistanceComputations)
		}
		if qs.IndexPA != st.IndexPageAccesses || qs.DataPA != st.DataPageAccesses {
			t.Errorf("%s: PA %d+%d != lifetime %d+%d", name,
				qs.IndexPA, qs.DataPA, st.IndexPageAccesses, st.DataPageAccesses)
		}
		if st.PageAccesses != st.IndexPageAccesses+st.DataPageAccesses {
			t.Errorf("%s: lifetime PA %d != index %d + data %d", name,
				st.PageAccesses, st.IndexPageAccesses, st.DataPageAccesses)
		}
		if qs.Elapsed <= 0 {
			t.Errorf("%s: Elapsed not set", name)
		}
		if qs.FilterTime+qs.PlanTime+qs.VerifyTime > qs.Elapsed {
			t.Errorf("%s: stage times exceed Elapsed", name)
		}
	}

	tree.ResetStats()
	_, qs, err := tree.RangeSearchWithStats(q, 0.12*dist.MaxDistance())
	if err != nil {
		t.Fatal(err)
	}
	if qs.Op != OpRange {
		t.Errorf("Op = %q, want %q", qs.Op, OpRange)
	}
	check("range", qs)

	tree.ResetStats()
	res, qs, err := tree.KNNWithStats(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Op != OpKNN || qs.Results != len(res) {
		t.Errorf("kNN Op/Results = %q/%d, want %q/%d", qs.Op, qs.Results, OpKNN, len(res))
	}
	if qs.HeapPushes == 0 || qs.NodesRead == 0 {
		t.Errorf("kNN HeapPushes=%d NodesRead=%d, want both > 0", qs.HeapPushes, qs.NodesRead)
	}
	check("knn", qs)

	tree.ResetStats()
	_, qs, err = tree.KNNApproxWithStats(q, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Op != OpKNNApprox {
		t.Errorf("Op = %q, want %q", qs.Op, OpKNNApprox)
	}
	if qs.Verified > 25 {
		t.Errorf("approx Verified = %d, exceeds budget 25", qs.Verified)
	}
	check("knn_approx", qs)
}

// TestJoinStatsReconcile checks the two-tree (and self-join) PA aggregation.
func TestJoinStatsReconcile(t *testing.T) {
	dist := metric.L2(3)
	codec := metric.VectorCodec{Dim: 3}
	Q := vectorSet(120, 3, 5)
	O := vectorSet(150, 3, 6)
	for i, o := range O {
		o.(*metric.Vector).Id = uint64(5000 + i)
	}
	tq, to := buildJoinPair(t, Q, O, dist, codec, 3)
	eps := 0.08 * dist.MaxDistance()

	tq.ResetStats()
	to.ResetStats()
	pairs, qs, err := JoinWithStats(tq, to, eps)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Op != OpJoin || qs.Results != len(pairs) {
		t.Errorf("Op/Results = %q/%d, want %q/%d", qs.Op, qs.Results, OpJoin, len(pairs))
	}
	stq, sto := tq.TakeStats(), to.TakeStats()
	if got, want := qs.Compdists, stq.DistanceComputations+sto.DistanceComputations; got != want {
		t.Errorf("Compdists %d != lifetime sum %d", got, want)
	}
	if got, want := qs.PageAccesses(), stq.PageAccesses+sto.PageAccesses; got != want {
		t.Errorf("PA %d != lifetime sum %d", got, want)
	}
	if qs.EntriesScanned != int64(len(Q)+len(O)) {
		t.Errorf("EntriesScanned = %d, want %d (every element loaded once)",
			qs.EntriesScanned, len(Q)+len(O))
	}

	// Self-join: both sides are the same store; deltas must not double.
	tq.ResetStats()
	_, qs, err = JoinWithStats(tq, tq, eps)
	if err != nil {
		t.Fatal(err)
	}
	st := tq.TakeStats()
	if qs.Compdists != st.DistanceComputations || qs.PageAccesses() != st.PageAccesses {
		t.Errorf("self-join (%d cd, %d PA) != lifetime (%d cd, %d PA)",
			qs.Compdists, qs.PageAccesses(), st.DistanceComputations, st.PageAccesses)
	}
}

// countingTracer tallies events per kind; used to cross-check the tracer
// stream against QueryStats counters.
type countingTracer struct {
	mu     sync.Mutex
	counts map[obs.EventKind]int64
}

func (c *countingTracer) Event(e obs.Event) {
	c.mu.Lock()
	c.counts[e.Kind]++
	c.mu.Unlock()
}

// TestTracerMatchesQueryStats installs a tracer and checks the structured
// event stream agrees with the per-query counters: one EvNodeRead per node
// decoded, one EvRecordRead per object fetched, and cache misses equal to
// physical page reads.
func TestTracerMatchesQueryStats(t *testing.T) {
	objs := vectorSet(400, 3, 11)
	dist := metric.L2(3)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 3}, NumPivots: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &countingTracer{counts: map[obs.EventKind]int64{}}
	tree.SetTracer(tr)
	defer tree.SetTracer(nil)

	tree.ResetStats()
	q := metric.NewVector(9000, []float64{0.5, 0.4, 0.6})
	_, qs, err := tree.KNNWithStats(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.counts[obs.EvNodeRead]; got != qs.NodesRead {
		t.Errorf("EvNodeRead = %d, want NodesRead %d", got, qs.NodesRead)
	}
	if got := tr.counts[obs.EvRecordRead]; got != qs.Verified+qs.Lemma2Included {
		t.Errorf("EvRecordRead = %d, want %d objects fetched", got, qs.Verified+qs.Lemma2Included)
	}
	if got := tr.counts[obs.EvPageRead]; got != qs.PageAccesses() {
		t.Errorf("EvPageRead = %d, want PA %d", got, qs.PageAccesses())
	}
	if got := tr.counts[obs.EvCacheMiss]; got != qs.PageAccesses() {
		t.Errorf("EvCacheMiss = %d, want PA %d (miss == physical read)", got, qs.PageAccesses())
	}
	if got := tr.counts[obs.EvCacheHit]; got != qs.IndexCacheHits+qs.DataCacheHits {
		t.Errorf("EvCacheHit = %d, want %d", got, qs.IndexCacheHits+qs.DataCacheHits)
	}
}

// TestAggregateMetrics checks the per-tree registry accumulates every entry
// point (plain and WithStats) under its operation name.
func TestAggregateMetrics(t *testing.T) {
	objs := vectorSet(200, 3, 13)
	dist := metric.L2(3)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := metric.NewVector(9000, []float64{0.5, 0.5, 0.5})
	if _, err := tree.KNN(q, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tree.KNNWithStats(q, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.RangeQuery(q, 0.1); err != nil {
		t.Fatal(err)
	}
	snap := tree.Metrics().Snapshot()
	if got := snap[OpKNN].Queries; got != 2 {
		t.Errorf("knn queries = %d, want 2", got)
	}
	if got := snap[OpRange].Queries; got != 1 {
		t.Errorf("range queries = %d, want 1", got)
	}
	if snap[OpKNN].Compdists == 0 || snap[OpKNN].Latency.Count != 2 {
		t.Errorf("knn aggregate compdists=%d latency count=%d, want >0 and 2",
			snap[OpKNN].Compdists, snap[OpKNN].Latency.Count)
	}
	if _, ok := snap[OpJoin]; ok {
		t.Errorf("join metrics present without any join")
	}
}

// BenchmarkKNN measures the plain kNN entry point — always-on
// instrumentation (counter increments, I/O snapshots, aggregate recording)
// included. Compare with BenchmarkKNNWithStats for the per-stage-clock
// overhead; the two should stay within a few percent of each other.
func BenchmarkKNN(b *testing.B) {
	tree, q := benchTree(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.KNN(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNWithStats measures the same query with per-stage wall clocks
// enabled.
func BenchmarkKNNWithStats(b *testing.B) {
	tree, q := benchTree(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tree.KNNWithStats(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTree(b *testing.B) (*Tree, metric.Object) {
	b.Helper()
	objs := vectorSet(2000, 4, 17)
	tree, err := Build(objs, Options{
		Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4},
		NumPivots: 3, Curve: sfc.Hilbert,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tree, metric.NewVector(90000, []float64{0.5, 0.4, 0.6, 0.5})
}
