package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"spbtree/internal/metric"
)

// TestBatchMatchesScalar is the blocked-verification contract end to end
// (DESIGN.md §13): toggling batch kernels on the same tree changes no
// observable output — byte-identical results and identical Verified /
// Compdists / Discarded / Abandoned / pruning counters — for every setup,
// both traversals, every worker count and both bounded modes. It also pins
// that the batch path actually runs: BatchedCandidates is zero with kernels
// off and positive for range (always) and kNN (greedy serial and every
// parallel mode), so a silent fallback to the scalar path fails here.
func TestBatchMatchesScalar(t *testing.T) {
	for _, s := range setups() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			for _, trav := range []TraversalStrategy{Incremental, Greedy} {
				opts := s.opts
				opts.Traversal = trav
				opts.Distance = s.dist
				tree, err := Build(s.objs, opts)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				if !tree.BatchKernels() {
					t.Fatalf("batch kernels not enabled by Build for %T", s.dist)
				}
				maxD := s.dist.MaxDistance()
				queries := s.objs[:4]

				type outcome struct {
					res []Result
					qs  QueryStats
				}
				collect := func() []outcome {
					var out []outcome
					for _, q := range queries {
						res, qs, err := tree.RangeSearchWithStats(q, 0.15*maxD)
						if err != nil {
							t.Fatal(err)
						}
						out = append(out, outcome{res, qs})
						res, qs, err = tree.KNNWithStats(q, 6)
						if err != nil {
							t.Fatal(err)
						}
						out = append(out, outcome{res, qs})
						res, qs, err = tree.KNNApproxWithStats(q, 4, 40)
						if err != nil {
							t.Fatal(err)
						}
						out = append(out, outcome{res, qs})
					}
					return out
				}

				// batched candidates per operation, accumulated across all
				// bounded modes and worker counts.
				batched := map[string]int64{}
				for _, bounded := range []bool{true, false} {
					tree.SetBoundedKernels(bounded)
					for _, workers := range []int{1, 2, 4, 8} {
						tree.SetWorkers(workers)
						tree.SetBatchKernels(false)
						scalar := collect()
						for i, o := range scalar {
							if o.qs.BatchedCandidates != 0 {
								t.Fatalf("outcome %d: BatchedCandidates = %d with batch kernels off",
									i, o.qs.BatchedCandidates)
							}
						}
						tree.SetBatchKernels(true)
						batch := collect()
						for i := range scalar {
							label := fmt.Sprintf("%s/%s/bounded=%v/workers=%d/#%d",
								s.name, trav, bounded, workers, i)
							sameResults(t, label, scalar[i].res, batch[i].res)
							a, b := scalar[i].qs, batch[i].qs
							if a.Verified != b.Verified || a.Compdists != b.Compdists ||
								a.Lemma2Included != b.Lemma2Included || a.Discarded != b.Discarded ||
								a.Abandoned != b.Abandoned || a.Results != b.Results {
								t.Fatalf("%s: counters diverge across batch toggle:\nscalar: %+v\nbatch:  %+v",
									label, a, b)
							}
							// Scan-side counters are deterministic only
							// serially: in parallel mode scan-time pruning
							// races with commits, so (like §9) they are not
							// part of the worker-mode identity.
							if workers == 1 &&
								(a.EntriesScanned != b.EntriesScanned || a.EntriesPruned != b.EntriesPruned ||
									a.TombstonesSkipped != b.TombstonesSkipped) {
								t.Fatalf("%s: serial scan counters diverge across batch toggle:\nscalar: %+v\nbatch:  %+v",
									label, a, b)
							}
							batched[b.Op] += b.BatchedCandidates
						}
					}
				}
				if batched[OpRange] == 0 {
					t.Errorf("%s/%s: no range candidate went through a batch kernel", s.name, trav)
				}
				// kNN blocks form on both traversals: greedy batches a whole
				// leaf's survivors, and the best-first serial loop buffers
				// consecutive entry pops into incremental blocks.
				if batched[OpKNN] == 0 {
					t.Errorf("%s/%s: no kNN candidate went through a batch kernel", s.name, trav)
				}
				tree.Close()
			}
		})
	}
}

// TestDisableBatchKernelsOption pins the Options escape hatch: a tree built
// with DisableBatchKernels reports BatchKernels() == false and never counts
// a batched candidate; SetBatchKernels(true) re-enables for a metric with a
// batch kernel and stays off for one without.
func TestDisableBatchKernelsOption(t *testing.T) {
	s := setups()[0]
	opts := s.opts
	opts.Distance = s.dist
	opts.DisableBatchKernels = true
	tree, err := Build(s.objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.BatchKernels() {
		t.Fatal("DisableBatchKernels did not disable kernels")
	}
	_, qs, err := tree.RangeSearchWithStats(s.objs[0], 0.2*s.dist.MaxDistance())
	if err != nil {
		t.Fatal(err)
	}
	if qs.BatchedCandidates != 0 {
		t.Fatalf("BatchedCandidates = %d on a batch-disabled tree", qs.BatchedCandidates)
	}
	tree.SetBatchKernels(true)
	if !tree.BatchKernels() {
		t.Fatal("SetBatchKernels(true) did not re-enable for a batch metric")
	}
	_, qs, err = tree.RangeSearchWithStats(s.objs[0], 0.2*s.dist.MaxDistance())
	if err != nil {
		t.Fatal(err)
	}
	if qs.BatchedCandidates == 0 {
		t.Fatal("no candidate batched after SetBatchKernels(true)")
	}

	// A metric with no batch kernel can never be switched on.
	objs := make([]metric.Object, 64)
	for i := range objs {
		objs[i] = metric.NewSeq(uint64(i), wordSet(1, int64(i))[0].(*metric.Str).S+"ACGTACGT")
	}
	plain, err := Build(objs, Options{Distance: metric.TrigramAngular{}, Codec: metric.SeqCodec{}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.BatchKernels() {
		t.Fatal("TrigramAngular reported batch kernels")
	}
	plain.SetBatchKernels(true)
	if plain.BatchKernels() {
		t.Fatal("SetBatchKernels(true) enabled kernels for a batchless metric")
	}
}

// TestBatchStressQueriesMutation hammers batch-path queries (parallel range
// and kNN, which exercise ReadBatch + blocked verification concurrently with
// the RAF) against concurrent inserts and compactions on a durable tree.
// Run with -race it is the batch read path's data-race check; functionally
// it pins that batch verification keeps answering correctly while the RAF
// underneath it is being rewritten.
func TestBatchStressQueriesMutation(t *testing.T) {
	fx := newDurableFixture(t, 250, DurableOptions{CompactThreshold: 40})
	defer fx.tree.Close()
	tree := fx.tree
	tree.SetWorkers(4)
	if !tree.BatchKernels() {
		t.Fatal("durable tree did not enable batch kernels")
	}

	const (
		writers    = 2
		perWriter  = 30
		readers    = 4
		readRounds = 25
	)
	var wg sync.WaitGroup
	var batchedTotal int64
	var mu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7100 + w)))
			for i := 0; i < perWriter; i++ {
				coords := make([]float64, 5)
				for j := range coords {
					coords[j] = rng.Float64()
				}
				v := metric.NewVector(uint64(200000+w*perWriter+i), coords)
				if err := tree.Insert(v); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := fx.live[uint64(100+r)]
			var local int64
			for i := 0; i < readRounds; i++ {
				res, qs, err := tree.RangeSearchWithStats(q, 0.4)
				if err != nil {
					t.Errorf("reader range: %v", err)
					return
				}
				if len(res) == 0 {
					t.Error("reader range: query object not found in its own neighborhood")
					return
				}
				local += qs.BatchedCandidates
				if _, qs, err = tree.KNNWithStats(q, 5); err != nil {
					t.Errorf("reader knn: %v", err)
					return
				}
				local += qs.BatchedCandidates
			}
			mu.Lock()
			batchedTotal += local
			mu.Unlock()
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := tree.CompactNow(); err != nil {
				t.Errorf("concurrent CompactNow: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	if batchedTotal == 0 {
		t.Error("no candidate went through a batch kernel during the stress run")
	}

	// After the dust settles the tree must still answer exactly: a full-radius
	// range query sees every acknowledged object.
	want := len(fx.live) + writers*perWriter
	res, err := tree.RangeQuery(fx.live[0], allRadius)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != want {
		t.Fatalf("after stress: full-radius range found %d objects, want %d", len(res), want)
	}
}
