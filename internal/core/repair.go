package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/raf"
	"spbtree/internal/sfc"
)

// RepairReport summarizes a Repair run.
type RepairReport struct {
	// Salvaged is the number of objects recovered into the rebuilt index.
	Salvaged int
	// Dropped is the number of index entries whose objects could not be
	// read back (corrupt or unreachable RAF records). When the index
	// itself was too damaged to enumerate entries, Dropped counts only
	// what was provably lost and the true loss may be larger.
	Dropped int
}

// Repair rebuilds the index directory from whatever objects survive in the
// RAF, replacing the old files. Two recovery paths compose:
//
//   - if the directory still opens, every live record reachable from the
//     B+-tree leaf level is salvaged, skipping records that fail their page
//     checksum or decode (a corrupt data page loses only its own objects);
//   - if the meta or B+-tree is corrupt, the RAF is scanned sequentially
//     from byte 0 (record headers are self-describing), which recovers
//     everything when the damage is confined to the index side.
//
// The rebuilt index reuses the surviving tree's pivot count and curve when
// available, and defaults otherwise. Repair is not crash-atomic — it is a
// recovery tool for an already-damaged directory — but it never leaves a
// state that opens cleanly yet serves wrong results: the final meta is
// written with SaveAtomic semantics.
func Repair(dir string, opts LoadOptions) (RepairReport, error) {
	var rep RepairReport
	if opts.Distance == nil || opts.Codec == nil {
		return rep, fmt.Errorf("core: LoadOptions.Distance and Codec are required")
	}

	objs, numPivots, curve, err := salvage(dir, opts, &rep)
	if err != nil {
		return rep, err
	}
	if len(objs) == 0 {
		return rep, fmt.Errorf("core: repair: no objects could be salvaged from %s", dir)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].ID() < objs[j].ID() })
	rep.Salvaged = len(objs)

	// Rebuild into staging files, then swap them in and write the meta
	// atomically. If a crash interleaves, the old meta's page checksums no
	// longer match the swapped files, so the damage stays detectable.
	idxTmp := filepath.Join(dir, IndexPagesFile+".tmp")
	dataTmp := filepath.Join(dir, DataPagesFile+".tmp")
	idx, err := page.NewFileStore(idxTmp)
	if err != nil {
		return rep, err
	}
	data, err := page.NewFileStore(dataTmp)
	if err != nil {
		idx.Close()
		return rep, err
	}
	tree, err := Build(objs, Options{
		Distance: opts.Distance, Codec: opts.Codec,
		NumPivots: numPivots, Curve: curve,
		IndexStore: idx, DataStore: data,
		CacheSize: opts.CacheSize, Traversal: opts.Traversal,
	})
	if err != nil {
		idx.Close()
		data.Close()
		return rep, fmt.Errorf("core: repair: rebuild: %w", err)
	}
	if err := tree.Sync(); err != nil {
		tree.Close()
		return rep, err
	}
	if err := os.Rename(idxTmp, filepath.Join(dir, IndexPagesFile)); err != nil {
		tree.Close()
		return rep, err
	}
	if err := os.Rename(dataTmp, filepath.Join(dir, DataPagesFile)); err != nil {
		tree.Close()
		return rep, err
	}
	if err := tree.SaveAtomic(dir); err != nil {
		tree.Close()
		return rep, err
	}
	return rep, tree.Close()
}

// salvage collects every recoverable object from dir, preferring the
// index-guided path and falling back to a sequential RAF scan.
func salvage(dir string, opts LoadOptions, rep *RepairReport) (objs []metric.Object, numPivots int, curve sfc.Kind, err error) {
	byID := make(map[uint64]metric.Object)
	sequentialNeeded := true

	if t, lerr := Load(dir, opts); lerr == nil {
		numPivots = len(t.pivots)
		curve = t.kind
		sequentialNeeded = false
		c := t.bpt.SeekFirst()
		for ; c.Valid(); c.Next() {
			obj, rerr := t.raf.Read(c.Val())
			if rerr != nil {
				rep.Dropped++
				continue
			}
			byID[obj.ID()] = obj
		}
		if c.Err() != nil {
			// Leaf chain broken mid-walk: also try the sequential scan to
			// recover records the index can no longer reach.
			sequentialNeeded = true
		}
		t.Close()
	}

	if sequentialNeeded {
		st, serr := os.Stat(filepath.Join(dir, DataPagesFile))
		if serr != nil {
			if len(byID) == 0 {
				return nil, 0, 0, fmt.Errorf("core: repair: %w", serr)
			}
		} else {
			store, oerr := page.OpenFileStore(filepath.Join(dir, DataPagesFile))
			if oerr != nil {
				return nil, 0, 0, fmt.Errorf("core: repair: %w", oerr)
			}
			_, _ = raf.Salvage(store, opts.Codec, uint64(st.Size()), func(obj metric.Object) {
				byID[obj.ID()] = obj
			})
			store.Close()
		}
	}

	objs = make([]metric.Object, 0, len(byID))
	for _, o := range byID {
		objs = append(objs, o)
	}
	return objs, numPivots, curve, nil
}
