package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"spbtree/internal/graph"
	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/recall"
	"spbtree/internal/sfc"
)

// buildGraphTree builds a non-durable vector tree and its approximate graph.
func buildGraphTree(t *testing.T, n int, seed int64) ([]metric.Object, *Tree) {
	t.Helper()
	objs := vectorSet(n, 6, seed)
	tree, err := Build(objs, Options{
		Distance: metric.L2(6), Codec: metric.VectorCodec{Dim: 6},
		NumPivots: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BuildGraph(GraphOptions{Seed: seed}); err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	return objs, tree
}

// TestGraphKNNRecallFloor pins the tier's quality on seeded synthetic data:
// recall@10 at the default ef stays above the CI floor, and the graph
// counters prove the search actually walked the graph.
func TestGraphKNNRecallFloor(t *testing.T) {
	objs, tree := buildGraphTree(t, 2000, 11)
	defer tree.Close()
	const k = 10
	recalls := make([]float64, 0, 30)
	for qi := 0; qi < 30; qi++ {
		q := objs[qi*61]
		exact, err := tree.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, qs, err := tree.KNNGraphWithStats(q, k, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if qs.GraphHops == 0 || qs.GraphCandidates == 0 {
			t.Fatalf("query %d: graph counters empty: %+v", qi, qs)
		}
		if qs.Op != OpKNNGraph {
			t.Fatalf("Op = %q", qs.Op)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("query %d: results not sorted", qi)
			}
		}
		recalls = append(recalls, recall.AtK(resultIDList(exact), resultIDList(got), k))
	}
	if r := recall.Mean(recalls); r < 0.9 {
		t.Fatalf("mean recall@10 = %.3f, want >= 0.90", r)
	}
}

// TestGraphNoGraphTyped: querying a tree without a graph fails with the typed
// ErrNoGraph that drives the exact-fallback in the forest and server layers.
func TestGraphNoGraphTyped(t *testing.T) {
	objs := vectorSet(200, 4, 12)
	tree, err := Build(objs, Options{Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if _, err := tree.KNNGraph(objs[0], 5, SearchOptions{}); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("err = %v, want ErrNoGraph", err)
	}
	if tree.HasGraph() {
		t.Fatal("HasGraph true before BuildGraph")
	}
}

// TestGraphInvalidationOnMutation: every structural mutation of the base
// substrates drops the graph, so queries can never read stale offsets.
func TestGraphInvalidationOnMutation(t *testing.T) {
	objs, tree := buildGraphTree(t, 300, 13)
	defer tree.Close()
	rebuild := func() {
		t.Helper()
		if err := tree.BuildGraph(GraphOptions{Seed: 13}); err != nil {
			t.Fatalf("BuildGraph: %v", err)
		}
	}
	check := func(stage string, want bool) {
		t.Helper()
		if tree.HasGraph() != want {
			t.Fatalf("%s: HasGraph = %v, want %v", stage, !want, want)
		}
		if _, err := tree.KNNGraph(objs[0], 5, SearchOptions{}); (err == nil) != want {
			t.Fatalf("%s: KNNGraph err = %v", stage, err)
		}
	}
	check("initial", true)

	extra := vectorSet(301, 6, 14)[300]
	if err := tree.Insert(extra); err != nil {
		t.Fatal(err)
	}
	check("after Insert", false)

	rebuild()
	check("after re-BuildGraph", true)
	if err := tree.Delete(objs[7]); err != nil {
		t.Fatal(err)
	}
	check("after Delete", false)

	rebuild()
	if err := tree.Rebuild(page.NewMemStore(), page.NewMemStore()); err != nil {
		t.Fatal(err)
	}
	check("after Rebuild", false)
}

// TestGraphBuildDeterministic: the same seed yields the same graph — and
// byte-identical query answers — for every construction worker count.
func TestGraphBuildDeterministic(t *testing.T) {
	objs := vectorSet(600, 6, 15)
	build := func(workers int) ([]Result, *Tree) {
		tree, err := Build(objs, Options{
			Distance: metric.L2(6), Codec: metric.VectorCodec{Dim: 6},
			NumPivots: 3, Seed: 15,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.BuildGraph(GraphOptions{Seed: 15, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		res, err := tree.KNNGraph(objs[5], 8, SearchOptions{Ef: 48})
		if err != nil {
			t.Fatal(err)
		}
		return res, tree
	}
	serial, t1 := build(1)
	defer t1.Close()
	parallel, t2 := build(4)
	defer t2.Close()
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Dist != parallel[i].Dist || serial[i].Object.ID() != parallel[i].Object.ID() {
			t.Fatalf("result %d differs across worker counts: %v vs %v", i, serial[i], parallel[i])
		}
	}
	// Repeated searches on one graph are deterministic too.
	again, err := t1.KNNGraph(objs[5], 8, SearchOptions{Ef: 48})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Dist != again[i].Dist || serial[i].Object.ID() != again[i].Object.ID() {
			t.Fatalf("repeated search differs at %d", i)
		}
	}
}

// TestGraphCtxCanceled: the graph entry points honor the typed cancellation
// contract, and a canceled construction neither leaks goroutines nor leaves a
// half-attached graph.
func TestGraphCtxCanceled(t *testing.T) {
	sd := &slowDist{DistanceFunc: metric.L2(4)}
	objs := vectorSet(400, 4, 16)
	tree, err := Build(objs, Options{Distance: sd, Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	before := runtime.NumGoroutine()
	sd.delay.Store(int64(200 * time.Microsecond))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err = tree.BuildGraphCtx(ctx, GraphOptions{Workers: 4})
	sd.delay.Store(0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("BuildGraphCtx err = %v, want DeadlineExceeded", err)
	}
	if tree.HasGraph() {
		t.Fatal("canceled build attached a graph")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked by canceled build: %d > %d", g, before)
	}

	if err := tree.BuildGraph(GraphOptions{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := tree.KNNGraphCtx(canceled, objs[0], 5, SearchOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("KNNGraphCtx err = %v, want ErrCanceled", err)
	}
}

// TestGraphStaleBuild: a structural mutation racing construction is detected
// at attach time — the result is either a clean ErrGraphStale or a successful
// build, never a silently wrong graph — and a quiet retry succeeds.
func TestGraphStaleBuild(t *testing.T) {
	objs := vectorSet(1500, 6, 17)
	tree, err := Build(objs[:1000], Options{Distance: metric.L2(6), Codec: metric.VectorCodec{Dim: 6}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1000; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := tree.Insert(objs[1000+(i%500)]); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if err := tree.BuildGraph(GraphOptions{K: 8, MaxIters: 3}); err != nil && !errors.Is(err, ErrGraphStale) {
			t.Fatalf("BuildGraph: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if err := tree.BuildGraph(GraphOptions{K: 8, MaxIters: 3, Seed: 2}); err != nil {
		t.Fatalf("quiet BuildGraph: %v", err)
	}
	if !tree.HasGraph() {
		t.Fatal("no graph after quiet build")
	}
}

// TestGraphDeltaMerge: on a durable tree, graph queries merge buffered
// inserts (a buffered nearest neighbor must surface) and honor tombstones (a
// deleted base object must never surface), without rebuilding the graph.
func TestGraphDeltaMerge(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(600, 5, 18)
	dist := metric.L2(5)
	tree, err := CreateDurable(dir, objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5}, Seed: 7, Curve: sfc.ZOrder,
	}, DurableOptions{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if err := tree.BuildGraph(GraphOptions{Seed: 18}); err != nil {
		t.Fatal(err)
	}

	q := objs[40]
	exact, err := tree.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Delete the two nearest base neighbors; the graph must stay live
	// (buffered writes never invalidate it) yet never surface them.
	deleted := map[uint64]bool{}
	for _, r := range exact[:2] {
		if err := tree.Delete(r.Object); err != nil {
			t.Fatal(err)
		}
		deleted[r.Object.ID()] = true
	}
	// Insert a fresh object right next to q; the delta merge must rank it.
	qc := append([]float64(nil), q.(*metric.Vector).Coords...)
	qc[0] += 1e-9
	probe := metric.NewVector(999999, qc)
	if err := tree.Insert(probe); err != nil {
		t.Fatal(err)
	}
	if !tree.HasGraph() {
		t.Fatal("buffered writes invalidated the graph")
	}
	got, qs, err := tree.KNNGraphWithStats(q, 5, SearchOptions{Ef: 64})
	if err != nil {
		t.Fatal(err)
	}
	if qs.DeltaCandidates == 0 {
		t.Fatalf("delta merge did not run: %+v", qs)
	}
	found := false
	for _, r := range got {
		if deleted[r.Object.ID()] {
			t.Fatalf("deleted object %d surfaced", r.Object.ID())
		}
		if r.Object.ID() == probe.ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("buffered insert adjacent to q did not surface")
	}

	// Compaction folds the delta and invalidates the graph.
	if err := tree.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if tree.HasGraph() {
		t.Fatal("graph survived the compaction swap")
	}
	if _, err := tree.KNNGraph(q, 5, SearchOptions{}); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("err = %v, want ErrNoGraph after compaction", err)
	}
}

// TestGraphPersistenceRoundtrip: SaveAtomic writes the graph beside the meta,
// Load reattaches it with byte-identical answers, and a save without a live
// graph removes the stale file.
func TestGraphPersistenceRoundtrip(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(500, 5, 19)
	dist := metric.L2(5)
	idx, err := page.NewFileStore(filepath.Join(dir, IndexPagesFile))
	if err != nil {
		t.Fatal(err)
	}
	data, err := page.NewFileStore(filepath.Join(dir, DataPagesFile))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5},
		IndexStore: idx, DataStore: data, NumPivots: 3, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BuildGraph(GraphOptions{Seed: 19}); err != nil {
		t.Fatal(err)
	}
	want, err := tree.KNNGraph(objs[3], 7, SearchOptions{Ef: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.SaveAtomic(dir); err != nil {
		t.Fatal(err)
	}
	tree.Close()

	lopts := LoadOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 5}}
	re, err := Load(dir, lopts)
	if err != nil {
		t.Fatal(err)
	}
	if !re.HasGraph() {
		t.Fatal("graph not reattached by Load")
	}
	got, err := re.KNNGraph(objs[3], 7, SearchOptions{Ef: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Dist != got[i].Dist || want[i].Object.ID() != got[i].Object.ID() {
			t.Fatalf("result %d differs after reload", i)
		}
	}
	// Invalidate (structural mutation) and save again: graph.bin must go.
	if err := re.Delete(objs[9]); err != nil {
		t.Fatal(err)
	}
	if err := re.SaveAtomic(dir); err != nil {
		t.Fatal(err)
	}
	re.Close()
	if _, err := os.Stat(filepath.Join(dir, GraphFile)); !os.IsNotExist(err) {
		t.Fatalf("stale graph.bin not removed: %v", err)
	}
	re2, err := Load(dir, lopts)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.HasGraph() {
		t.Fatal("HasGraph true with no graph file")
	}
}

// TestGraphFileCorruption: a truncated or bit-flipped graph file fails Load
// with the typed graph.ErrCorrupt; a structurally valid graph from a
// different base is silently ignored rather than served.
func TestGraphFileCorruption(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(400, 5, 20)
	dist := metric.L2(5)
	idx, err := page.NewFileStore(filepath.Join(dir, IndexPagesFile))
	if err != nil {
		t.Fatal(err)
	}
	data, err := page.NewFileStore(filepath.Join(dir, DataPagesFile))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5},
		IndexStore: idx, DataStore: data, NumPivots: 3, Seed: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BuildGraph(GraphOptions{Seed: 20}); err != nil {
		t.Fatal(err)
	}
	if err := tree.SaveAtomic(dir); err != nil {
		t.Fatal(err)
	}
	tree.Close()

	gpath := filepath.Join(dir, GraphFile)
	pristine, err := os.ReadFile(gpath)
	if err != nil {
		t.Fatal(err)
	}
	lopts := LoadOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 5}}

	if err := os.WriteFile(gpath, pristine[:len(pristine)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, lopts); !errors.Is(err, graph.ErrCorrupt) {
		t.Fatalf("truncated: err = %v, want graph.ErrCorrupt", err)
	}

	flipped := append([]byte(nil), pristine...)
	flipped[len(flipped)/3] ^= 0x20
	if err := os.WriteFile(gpath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, lopts); !errors.Is(err, graph.ErrCorrupt) {
		t.Fatalf("bit flip: err = %v, want graph.ErrCorrupt", err)
	}

	// A valid graph built over a different base: decodes fine, but its
	// BaseCount/BaseSize do not match — ignored, not served.
	other := testOtherGraph(t)
	if err := os.WriteFile(gpath, other.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Load(dir, lopts)
	if err != nil {
		t.Fatalf("foreign graph should be ignored, got %v", err)
	}
	defer re.Close()
	if re.HasGraph() {
		t.Fatal("foreign graph attached")
	}
}

// testOtherGraph builds a tiny valid graph with mismatched base metadata.
func testOtherGraph(t *testing.T) *graph.Graph {
	t.Helper()
	pts := vectorSet(30, 3, 21)
	l2 := metric.L2(3)
	dist := func(i, j int, thr float64) (float64, bool) {
		d := l2.Distance(pts[i], pts[j])
		return d, d <= thr
	}
	g, err := graph.Build(context.Background(), 30, dist, graph.Options{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g.IDs = make([]uint64, 30)
	g.Offs = make([]uint64, 30)
	g.BaseCount, g.BaseSize = 30, 999
	return g
}

// TestGraphStressQueriesWrites is the -race gate: durable writers churn
// inserts and deletes while graph queries run; no query may ever return an
// object whose delete completed before the query began.
func TestGraphStressQueriesWrites(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(800, 5, 22)
	dist := metric.L2(5)
	tree, err := CreateDurable(dir, objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5}, Seed: 7, Curve: sfc.ZOrder,
	}, DurableOptions{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if err := tree.BuildGraph(GraphOptions{Seed: 22}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	deleted := map[uint64]bool{}
	snapshotDeleted := func() map[uint64]bool {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[uint64]bool, len(deleted))
		for id := range deleted {
			out[id] = true
		}
		return out
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: delete a base object, insert a fresh one, repeat
		defer wg.Done()
		fresh := vectorSet(400, 5, 23)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			victim := objs[(i*13)%len(objs)]
			if err := tree.Delete(victim); err == nil {
				mu.Lock()
				deleted[victim.ID()] = true
				mu.Unlock()
			}
			nv := fresh[i%len(fresh)]
			_ = tree.Insert(metric.NewVector(100000+uint64(i), nv.(*metric.Vector).Coords))
		}
	}()

	var qerr error
	var qmu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				dead := snapshotDeleted()
				res, err := tree.KNNGraph(objs[(w*37+i)%len(objs)], 8, SearchOptions{Ef: 32})
				if err != nil {
					qmu.Lock()
					qerr = err
					qmu.Unlock()
					return
				}
				for _, r := range res {
					if dead[r.Object.ID()] {
						qmu.Lock()
						qerr = errors.New("tombstoned object surfaced from graph query")
						qmu.Unlock()
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if qerr != nil {
		t.Fatal(qerr)
	}
}

// TestCalibrateEfTargetRecall exercises the §15.5 loop: calibrate, read the
// curve, then let a recall target resolve the beam width.
func TestCalibrateEfTargetRecall(t *testing.T) {
	objs, tree := buildGraphTree(t, 2000, 19)
	defer tree.Close()

	ef, err := tree.CalibrateEf(0.95, 24)
	if err != nil {
		t.Fatalf("CalibrateEf: %v", err)
	}
	if ef <= 0 {
		t.Fatalf("calibrated ef = %d", ef)
	}
	curve := tree.EfCurve()
	if len(curve) != len(calibrateEfWidths) {
		t.Fatalf("curve has %d points, want %d", len(curve), len(calibrateEfWidths))
	}
	for i, p := range curve {
		if p.Ef != calibrateEfWidths[i] {
			t.Fatalf("curve point %d has ef %d, want %d", i, p.Ef, calibrateEfWidths[i])
		}
		if p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("curve recall %v out of range", p.Recall)
		}
	}

	// A modest target must resolve to some calibrated width, and the width
	// chosen for a high target can only be ≥ the width for a low target
	// (running-max selection).
	low := tree.mustEfFor(t, 0.5)
	high := tree.mustEfFor(t, 0.99)
	if low > high {
		t.Fatalf("efForRecall not monotone: target 0.5 → %d, 0.99 → %d", low, high)
	}

	// TargetRecall-driven queries run and hit the quality the curve claims
	// (loose floor — the sample and the probe queries differ).
	const k = 10
	recalls := make([]float64, 0, 20)
	for qi := 0; qi < 20; qi++ {
		q := objs[qi*83]
		exact, err := tree.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tree.KNNGraph(q, k, SearchOptions{TargetRecall: 0.95})
		if err != nil {
			t.Fatal(err)
		}
		recalls = append(recalls, recall.AtK(resultIDList(exact), resultIDList(got), k))
	}
	if r := recall.Mean(recalls); r < 0.85 {
		t.Fatalf("TargetRecall=0.95 queries measured %.3f", r)
	}

	// Explicit Ef beats TargetRecall; without either, DefaultEf applies —
	// both must keep working with a curve stored.
	if _, err := tree.KNNGraph(objs[0], k, SearchOptions{Ef: 32, TargetRecall: 0.99}); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.KNNGraph(objs[0], k, SearchOptions{}); err != nil {
		t.Fatal(err)
	}

	// Rebuilding the graph drops the curve — a calibration may never
	// describe a graph it did not measure.
	if err := tree.BuildGraph(GraphOptions{Seed: 20}); err != nil {
		t.Fatal(err)
	}
	if c := tree.EfCurve(); c != nil {
		t.Fatalf("curve survived a graph rebuild: %v", c)
	}

	// No graph at all: typed error.
	bare, err := Build(objs[:200], Options{
		Distance: metric.L2(6), Codec: metric.VectorCodec{Dim: 6}, NumPivots: 3, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.CalibrateEf(0.9, 8); err != ErrNoGraph {
		t.Fatalf("CalibrateEf without graph: %v", err)
	}
}

// mustEfFor resolves a recall target under the read lock, for tests.
func (t *Tree) mustEfFor(tt *testing.T, target float64) int {
	tt.Helper()
	t.mu.RLock()
	defer t.mu.RUnlock()
	ef := t.efForRecall(target)
	if ef <= 0 {
		tt.Fatalf("efForRecall(%v) = %d with a stored curve", target, ef)
	}
	return ef
}
