package core

import (
	"errors"
	"fmt"
	"strings"

	"spbtree/internal/page"
)

// Corruption is one finding of VerifyIntegrity.
type Corruption struct {
	// Component locates the finding: "index-page", "data-page",
	// "bptree-structure", "raf-record" or "counters".
	Component string
	// Page is the corrupt page when the finding is page-granular (HasPage).
	Page    page.ID
	HasPage bool
	// Offset is the RAF byte offset for "raf-record" findings.
	Offset uint64
	// Detail describes the failure.
	Detail string
}

// String renders the finding for logs and spbtool verify.
func (c Corruption) String() string {
	switch {
	case c.Component == "raf-record":
		return fmt.Sprintf("%s @%d: %s", c.Component, c.Offset, c.Detail)
	case c.HasPage:
		return fmt.Sprintf("%s %d: %s", c.Component, c.Page, c.Detail)
	default:
		return fmt.Sprintf("%s: %s", c.Component, c.Detail)
	}
}

// IntegrityError aggregates every corruption VerifyIntegrity found; it
// unwraps to page.ErrCorrupt so errors.Is works uniformly.
type IntegrityError struct {
	Corruptions []Corruption
}

// Error implements error.
func (e *IntegrityError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: integrity check failed: %d finding(s)", len(e.Corruptions))
	for i, c := range e.Corruptions {
		if i == 4 && len(e.Corruptions) > 5 {
			fmt.Fprintf(&b, "; … %d more", len(e.Corruptions)-i)
			break
		}
		b.WriteString("; ")
		b.WriteString(c.String())
	}
	return b.String()
}

// Is makes errors.Is(err, page.ErrCorrupt) match.
func (e *IntegrityError) Is(target error) bool { return target == page.ErrCorrupt }

// VerifyIntegrity audits the whole index and reports every corruption it
// can find rather than stopping at the first: it re-reads and
// checksum-validates every B+-tree and RAF page below the buffer caches,
// re-checks the B+-tree's structural and MBB invariants, decodes every live
// RAF record reachable from the leaf level, and cross-checks the object
// count (on a durable tree, against the live set merged with the write
// buffer). It returns nil when the index is healthy and an *IntegrityError
// listing the findings (with corrupt page IDs pinpointed) otherwise.
//
// It reads every page, so cost is proportional to the index size; caches
// are flushed first so resident copies cannot mask on-disk damage.
func (t *Tree) VerifyIntegrity() error {
	var cs []Corruption
	add := func(component string, err error) *Corruption {
		c := Corruption{Component: component, Detail: err.Error()}
		var ce *page.CorruptError
		if errors.As(err, &ce) {
			c.Page = ce.ID
			c.HasPage = true
		}
		cs = append(cs, c)
		return &cs[len(cs)-1]
	}

	if err := t.raf.Flush(); err != nil {
		add("data-page", err)
	}
	t.idxCache.Flush()
	t.dataCache.Flush()

	// Every physical page of both stores, validated below the caches.
	var buf [page.Size]byte
	for id := 0; id < t.idxCache.NumPages(); id++ {
		if err := t.idxCache.Read(page.ID(id), buf[:]); err != nil {
			add("index-page", err)
		}
	}
	for id := 0; id < t.raf.PagesUsed(); id++ {
		if err := t.dataCache.Read(page.ID(id), buf[:]); err != nil {
			add("data-page", err)
		}
	}

	// Structural and MBB invariants of the B+-tree.
	if err := t.bpt.CheckInvariants(); err != nil {
		add("bptree-structure", err)
	}

	// Every live RAF slot, decoded via the leaf chain. Individual record
	// failures are reported and skipped so one bad page does not hide the
	// rest.
	entries, shadowed := 0, 0
	c := t.bpt.SeekFirst()
	for ; c.Valid(); c.Next() {
		entries++
		obj, err := t.raf.Read(c.Val())
		if err != nil {
			add("raf-record", err).Offset = c.Val()
		} else if t.deltaShadowed(obj.ID()) {
			shadowed++
		}
	}
	// On a durable tree the live set is base entries minus those shadowed by
	// the write buffer, plus buffered inserts awaiting compaction. The
	// counter may exceed it by up to one per shadowed base record: a
	// cross-key upsert cannot see the base object it replaces (no ID index
	// over the base), so it counts as an insert until compaction recomputes
	// the count from the live set. Each such drifted ID still shadows its
	// base record, so [live, live+shadowed] is the exact legal window — an
	// empty delta collapses it to equality.
	live := entries - shadowed
	if t.wbuf != nil {
		live += len(t.wbuf.entries)
	}
	if err := c.Err(); err != nil {
		add("bptree-structure", fmt.Errorf("leaf chain: %w", err))
	} else if t.count < live || t.count > live+shadowed {
		cs = append(cs, Corruption{
			Component: "counters",
			Detail: fmt.Sprintf("tree count %d outside the live-set window [%d, %d] (%d in leaf chain, %d shadowed, %d buffered inserts)",
				t.count, live, live+shadowed, entries, shadowed, live-entries+shadowed),
		})
	}

	if len(cs) == 0 {
		return nil
	}
	return &IntegrityError{Corruptions: cs}
}
