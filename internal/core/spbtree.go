// Package core implements the SPB-tree — the Space-filling curve and
// Pivot-based B+-tree of Chen et al. — and its query algorithms: range
// queries (Algorithm 1), kNN queries (Algorithm 2, incremental and greedy
// traversal), similarity joins (Algorithm 3), and the I/O and CPU cost
// models of Sections 4.4 and 5.3.
//
// An SPB-tree has three parts (paper Fig. 4): a pivot table mapping the
// metric space to an L∞ vector space, a B+-tree with MBB-augmented entries
// indexing the SFC values of the mapped (and δ-quantized) vectors, and a
// random access file (RAF) storing the actual objects in SFC order.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"spbtree/internal/bptree"
	"spbtree/internal/metric"
	"spbtree/internal/obs"
	"spbtree/internal/page"
	"spbtree/internal/pivot"
	"spbtree/internal/raf"
	"spbtree/internal/sfc"
)

// TraversalStrategy selects how kNN search walks the tree (paper Table 5).
type TraversalStrategy int

const (
	// Incremental is best-first traversal over entry MIND values; optimal in
	// distance computations (Lemma 4) but can re-touch RAF pages when the
	// verified set is large.
	Incremental TraversalStrategy = iota
	// Greedy verifies a whole leaf as soon as it is reached: never touches a
	// RAF page twice, at the price of some extra distance computations.
	Greedy
)

// String implements fmt.Stringer.
func (s TraversalStrategy) String() string {
	if s == Greedy {
		return "greedy"
	}
	return "incremental"
}

// Options configures Build.
type Options struct {
	// Distance is the metric; required.
	Distance metric.DistanceFunc
	// Codec decodes objects from the RAF; required.
	Codec metric.Codec
	// NumPivots is |P|; 0 selects 5, the paper's default (close to the
	// intrinsic dimensionality of its datasets).
	NumPivots int
	// Selector picks the pivots; nil selects HFI, the paper's algorithm.
	Selector pivot.Selector
	// Curve is the SFC family; Hilbert by default. Similarity joins require
	// ZOrder trees (Lemma 6).
	Curve sfc.Kind
	// DeltaFrac is δ expressed as a fraction of d+ for continuous metrics;
	// 0 selects the paper's default 0.005. Discrete metrics always use δ=1
	// when the bit budget allows.
	DeltaFrac float64
	// CacheSize is the buffer cache capacity in pages for each of the index
	// and data stores; the paper's default is 32. Negative disables caching.
	CacheSize int
	// Traversal is the kNN strategy; Incremental by default.
	Traversal TraversalStrategy
	// IndexStore and DataStore are the page stores for the B+-tree and RAF.
	// nil selects fresh in-memory stores.
	IndexStore, DataStore page.Store
	// ShareMapping reuses another tree's pivot table and quantization so two
	// trees live in the same mapped space — required for similarity joins.
	ShareMapping *Tree
	// Seed seeds pivot selection and cost-model sampling; 0 means 1.
	Seed int64
	// CostSample is the reservoir size for the union distance distribution
	// used by the cost models; 0 means 1024.
	CostSample int
	// DisableLemma2 turns off the computation-free result inclusion of
	// Lemma 2 in range queries. Results are identical; the flag exists for
	// the ablation benchmarks quantifying the lemma's savings.
	DisableLemma2 bool
	// DisableSFCMerge turns off Algorithm 1's computeSFC merge step (lines
	// 14-20), falling back to per-entry region tests. Results are
	// identical; the flag exists for the ablation benchmarks.
	DisableSFCMerge bool
	// Workers is the per-query verifier pool size for the parallel execution
	// engine (DESIGN.md §9): range/kNN/join verification fans out to up to
	// this many goroutines, drawn non-blockingly from a process-wide pool so
	// concurrent queries and forest shards compose without goroutine
	// explosion. 0 selects min(GOMAXPROCS, 8); 1 forces fully serial
	// execution. Results and the Verified/Compdists counters are identical
	// in every mode.
	Workers int
	// DisableBoundedKernels turns off threshold-aware distance evaluation
	// (DESIGN.md §10): when the metric implements
	// metric.BoundedDistanceFunc, verification normally passes its live
	// bound (the range radius, join ε, or kNN curND_k) to DistanceAtMost so
	// evaluations provably exceeding the bound can stop early. Results,
	// Verified and Compdists are identical either way — only wall time and
	// the QueryStats.Abandoned counter change. The flag exists for the
	// exact-vs-bounded benchmarks (spbbench pr5).
	DisableBoundedKernels bool
	// DisableBatchKernels turns off blocked batch verification (DESIGN.md
	// §13): when the metric implements metric.BatchDistanceFunc, the
	// verification stage normally evaluates a whole leaf-page block of
	// candidates through one BatchDistanceAtMost call, hoisting per-query
	// work out of the per-candidate loop. Results and every counter except
	// QueryStats.BatchedCandidates are identical either way — only wall time
	// changes. The flag exists for the batch-vs-scalar benchmarks
	// (spbbench pr8).
	DisableBatchKernels bool
	// DisablePlanner turns off the cost-model-driven adaptive planner
	// (DESIGN.md §15): every query then uses the fixed pre-planner behavior
	// — a Workers-sized pool whenever Workers > 1. Results and the
	// Verified/Compdists counters are identical either way (the parallel
	// engine is worker-count-invariant); the flag exists for the
	// planner-on-vs-off benchmarks (spbbench pr10) and as an operational
	// escape hatch.
	DisablePlanner bool
}

// Tree is a built SPB-tree. Queries may run concurrently with each other;
// the structural mutators (Insert, Delete, Rebuild, Close) are serialized
// against them by an internal reader-writer lock, so a Rebuild can swap the
// storage substrates under live traffic without readers observing a torn
// tree. NearestIter is the exception: an open iterator holds no lock and must
// not overlap a mutator.
type Tree struct {
	// mu serializes structural mutation (Rebuild's substrate swap, Insert,
	// Delete, Close) against in-flight queries, which hold it in read mode.
	mu sync.RWMutex
	// id orders lock acquisition for two-tree joins (see rlockPair).
	id uint64

	dist  *metric.Counter
	codec metric.Codec

	pivots []metric.Object
	curve  sfc.Curve
	kind   sfc.Kind
	delta  float64 // effective cell width in distance units
	exact  bool    // cells are exact distances (discrete metric, δ=1)
	bits   int
	dPlus  float64

	bpt       *bptree.Tree
	raf       *raf.File
	idxSums   *page.ChecksumStore
	dataSums  *page.ChecksumStore
	idxCache  *page.Cache
	dataCache *page.Cache
	traversal TraversalStrategy

	noLemma2   bool // ablation: skip Lemma 2 inclusion
	noSFCMerge bool // ablation: skip the computeSFC merge step

	// workers is the resolved per-query verifier pool size (≥ 1; 1 = serial).
	workers int

	// bounded enables threshold-aware verification: true iff the metric
	// implements metric.BoundedDistanceFunc and bounded kernels are not
	// disabled. See verifyDist and DESIGN.md §10.
	bounded bool

	// batch enables blocked batch verification: true iff the metric
	// implements metric.BatchDistanceFunc and batch kernels are not
	// disabled. See verifyBatch and DESIGN.md §13.
	batch bool

	// count is the live object total: base objects not shadowed by the write
	// buffer, plus buffered inserts. Maintained incrementally by the apply
	// helpers and re-derived from the snapshot at each compaction swap.
	count int

	// closed marks the tree shut down; every entry point checks it under the
	// lock it already takes and fails with ErrClosed.
	closed bool

	// wbuf is the in-memory write buffer of a durable tree (inserts +
	// tombstones absorbed ahead of compaction); nil on non-durable trees.
	// Guarded by mu.
	wbuf *deltaState

	// dur is the durable write-path machinery (WAL, generations, compactor);
	// nil on non-durable trees.
	dur *durableState

	// graph is the attached approximate tier (nil until BuildGraph succeeds);
	// invalidated — set nil — by every structural mutation of the base
	// substrates: non-durable Insert/Delete, Rebuild, and the compaction
	// swap. Guarded by mu.
	graph *graphTier

	cm costModel

	// plr is the adaptive planner's online unit-cost calibration (plan.go);
	// its fields are atomics, fed by every finished query.
	plr planner

	// tracer is the hook installed by SetTracer, fanned out to the B+-tree,
	// both caches and the RAF by wireTracer (and re-fanned after Rebuild).
	tracer obs.Tracer
	// metrics aggregates per-operation query counts, compdists/PA totals and
	// latency histograms over the tree's lifetime; every search entry point
	// records into it. Exposed by Metrics and PublishExpvar.
	metrics obs.Registry
}

// Result is one similarity-search answer.
type Result struct {
	// Object is the answer object, read back from the RAF.
	Object metric.Object
	// Dist is d(q, object) when Exact, else an upper bound proved by
	// Lemma 2 without computing the distance.
	Dist float64
	// Exact reports whether Dist was actually computed.
	Exact bool
}

// Build constructs an SPB-tree over objs: selects pivots, applies the
// two-stage pivot-and-SFC mapping, writes the RAF in ascending SFC order and
// bulk-loads the B+-tree (paper Section 3, Appendix B).
func Build(objs []metric.Object, opts Options) (*Tree, error) {
	if opts.Distance == nil {
		return nil, fmt.Errorf("core: Options.Distance is required")
	}
	if opts.Codec == nil {
		return nil, fmt.Errorf("core: Options.Codec is required")
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	t := &Tree{
		id:         treeIDs.Add(1),
		dist:       metric.NewCounter(opts.Distance),
		codec:      opts.Codec,
		kind:       opts.Curve,
		traversal:  opts.Traversal,
		dPlus:      opts.Distance.MaxDistance(),
		noLemma2:   opts.DisableLemma2,
		noSFCMerge: opts.DisableSFCMerge,
		workers:    resolveWorkers(opts.Workers),
		bounded:    !opts.DisableBoundedKernels && metric.IsBounded(opts.Distance),
		batch:      !opts.DisableBatchKernels && metric.IsBatch(opts.Distance),
	}
	t.plr.off = opts.DisablePlanner

	// Pivot table: either shared with a partner tree (joins need a common
	// mapped space) or freshly selected.
	if opts.ShareMapping != nil {
		s := opts.ShareMapping
		t.pivots = s.pivots
		t.delta = s.delta
		t.exact = s.exact
		t.bits = s.bits
		t.kind = s.kind
		t.dPlus = s.dPlus
	} else {
		k := opts.NumPivots
		if k == 0 {
			k = 5
		}
		sel := opts.Selector
		if sel == nil {
			sel = pivot.HFI{}
		}
		// Selection runs on the unwrapped metric: the paper's construction
		// compdists counts exactly the |P|·|O| pivot-mapping computations
		// (Table 6), with sample-based selection work excluded.
		t.pivots = sel.Select(objs, t.dist.Unwrap(), k, rng)
		if len(t.pivots) == 0 {
			return nil, fmt.Errorf("core: pivot selection returned no pivots (dataset size %d)", len(objs))
		}
		if err := t.chooseQuantization(opts.DeltaFrac); err != nil {
			return nil, err
		}
	}
	t.curve = sfc.New(t.kind, len(t.pivots), t.bits)

	// Stores and caches.
	idxStore := opts.IndexStore
	if idxStore == nil {
		idxStore = page.NewMemStore()
	}
	dataStore := opts.DataStore
	if dataStore == nil {
		dataStore = page.NewMemStore()
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = 32
	}
	if cacheSize < 0 {
		cacheSize = 0
	}
	// Every page write is checksummed below the buffer cache, so cache
	// misses validate the bytes the moment they come off the store.
	t.idxSums = page.NewChecksumStore(idxStore)
	t.dataSums = page.NewChecksumStore(dataStore)
	t.idxCache = page.NewCache(t.idxSums, cacheSize)
	t.dataCache = page.NewCache(t.dataSums, cacheSize)

	var err error
	t.bpt, err = bptree.New(t.idxCache, bptree.Options{Geometry: curveGeometry{t.curve}})
	if err != nil {
		return nil, err
	}
	t.raf = raf.New(t.dataCache, t.codec)

	t.cm.init(len(t.pivots), t.dPlus, opts.CostSample, seed)
	t.cm.cellWidth = t.delta
	if opts.ShareMapping != nil {
		t.cm.precision = opts.ShareMapping.cm.precision
		t.cm.pairDists = opts.ShareMapping.cm.pairDists
	} else {
		// Measure Definition 1's precision of the chosen pivot set and keep
		// the sampled pairwise distances: they calibrate the kNN cost model
		// (precision) and supply the homogeneous distance distribution for
		// eND_k. The unwrapped metric keeps these sample computations out of
		// the compdists accounting.
		raw := t.dist.Unwrap()
		// The pair sample scales with the dataset so the kNN cost model's
		// small-k quantiles stay above the sample resolution.
		nPairs := len(objs)
		if nPairs < 1000 {
			nPairs = 1000
		}
		if nPairs > 20000 {
			nPairs = 20000
		}
		pairs := pivot.SamplePairs(objs, raw, nPairs, rng)
		t.cm.precision = pivot.Precision(t.pivots, pairs, raw)
		t.cm.pairDists = make([]float64, len(pairs))
		for i, p := range pairs {
			t.cm.pairDists[i] = p.D
		}
		sort.Float64s(t.cm.pairDists)
	}

	// First mapping stage: φ(o) for every object, collecting cost-model
	// distributions on the way.
	type mapped struct {
		obj metric.Object
		key uint64
	}
	ms := make([]mapped, len(objs))
	vec := make([]float64, len(t.pivots))
	cells := make(sfc.Point, len(t.pivots))
	for i, o := range objs {
		t.phi(o, vec)
		if err := t.validateVec(o, vec); err != nil {
			return nil, err
		}
		t.cm.observe(vec, rng)
		t.cells(vec, cells)
		ms[i] = mapped{obj: o, key: t.curve.Encode(cells)}
	}
	// Second stage: order by SFC value; ties broken by id for determinism.
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].key != ms[j].key {
			return ms[i].key < ms[j].key
		}
		return ms[i].obj.ID() < ms[j].obj.ID()
	})

	// RAF in SFC order, then bulk-load the B+-tree with (key, offset).
	entries := make([]bptree.Pair, len(ms))
	for i, m := range ms {
		off, err := t.raf.Append(m.obj)
		if err != nil {
			return nil, err
		}
		entries[i] = bptree.Pair{Key: m.key, Val: off}
	}
	if err := t.raf.Flush(); err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Less(entries[j]) })
	if err := t.bpt.BulkLoad(entries); err != nil {
		return nil, err
	}
	t.count = len(objs)

	if err := t.cm.snapshotBoxes(t); err != nil {
		return nil, err
	}
	return t, nil
}

// chooseQuantization fixes δ and the per-dimension bit budget. Discrete
// metrics use δ=1 (cells are exact distances); continuous metrics partition
// [0, d+] into 1/DeltaFrac cells. Either way bits×|P| must fit the 64-bit
// SFC key, coarsening δ if necessary (pruning only weakens, never breaks).
func (t *Tree) chooseQuantization(deltaFrac float64) error {
	n := len(t.pivots)
	maxBits := 64 / n
	if maxBits > 32 {
		maxBits = 32
	}
	if maxBits < 1 {
		return fmt.Errorf("core: %d pivots cannot fit a 64-bit SFC key", n)
	}
	if t.dist.Discrete() {
		cellsNeeded := uint64(math.Floor(t.dPlus)) + 1
		bits := bitsFor(cellsNeeded)
		if bits <= maxBits {
			t.bits = bits
			t.delta = 1
			t.exact = true
			return nil
		}
		t.bits = maxBits
		t.delta = t.dPlus / float64(uint64(1)<<maxBits-1)
		t.exact = false
		return nil
	}
	if deltaFrac == 0 {
		deltaFrac = 0.005
	}
	if deltaFrac < 0 || deltaFrac >= 1 {
		return fmt.Errorf("core: DeltaFrac %v out of (0, 1)", deltaFrac)
	}
	cellsNeeded := uint64(math.Ceil(1/deltaFrac)) + 1
	bits := bitsFor(cellsNeeded)
	if bits > maxBits {
		bits = maxBits
	}
	t.bits = bits
	// Effective δ so that d+ lands in the last cell.
	t.delta = t.dPlus * deltaFrac
	if minDelta := t.dPlus / float64(uint64(1)<<bits-1); t.delta < minDelta {
		t.delta = minDelta
	}
	t.exact = false
	return nil
}

func bitsFor(cells uint64) int {
	bits := 1
	for uint64(1)<<bits < cells {
		bits++
	}
	return bits
}

// Pivots returns the pivot table.
func (t *Tree) Pivots() []metric.Object { return t.pivots }

// Len returns the number of live objects: the base tree merged with any
// buffered inserts and tombstones awaiting compaction.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// CurveKind returns which SFC the tree uses.
func (t *Tree) CurveKind() sfc.Kind { return t.kind }

// Bits returns the per-dimension bit budget of the SFC grid.
func (t *Tree) Bits() int { return t.bits }

// Delta returns the effective cell width in distance units.
func (t *Tree) Delta() float64 { return t.delta }

// Traversal returns the configured kNN traversal strategy.
func (t *Tree) Traversal() TraversalStrategy { return t.traversal }

// SetTraversal switches the kNN traversal strategy.
func (t *Tree) SetTraversal(s TraversalStrategy) { t.traversal = s }

// Workers returns the per-query verifier pool size (1 = serial execution).
func (t *Tree) Workers() int { return t.workers }

// SetWorkers reconfigures the per-query verifier pool size: 0 restores the
// default min(GOMAXPROCS, 8), 1 forces serial execution. It takes effect for
// queries started afterwards; in-flight queries finish with their pool.
func (t *Tree) SetWorkers(w int) {
	t.mu.Lock()
	t.workers = resolveWorkers(w)
	t.mu.Unlock()
}

// BoundedKernels reports whether verification uses threshold-aware distance
// evaluation (the metric implements metric.BoundedDistanceFunc and kernels
// were not disabled).
func (t *Tree) BoundedKernels() bool { return t.bounded }

// SetBoundedKernels toggles threshold-aware verification at runtime.
// Enabling is a no-op when the metric has no bounded kernel. Results and the
// Verified/Compdists counters are identical either way (DESIGN.md §10); the
// toggle exists so benchmarks can compare exact and bounded evaluation on
// the same tree. It takes effect for queries started afterwards.
func (t *Tree) SetBoundedKernels(on bool) {
	t.mu.Lock()
	t.bounded = on && t.dist.Bounded()
	t.mu.Unlock()
}

// BatchKernels reports whether verification evaluates leaf-page candidate
// blocks through the metric's batch kernel (the metric implements
// metric.BatchDistanceFunc and batch kernels were not disabled).
func (t *Tree) BatchKernels() bool { return t.batch }

// SetBatchKernels toggles blocked batch verification at runtime. Enabling is
// a no-op when the metric has no batch kernel. Results and every counter
// except QueryStats.BatchedCandidates are identical either way (DESIGN.md
// §13); the toggle exists so benchmarks can compare batch and scalar
// verification on the same tree. It takes effect for queries started
// afterwards.
func (t *Tree) SetBatchKernels(on bool) {
	t.mu.Lock()
	t.batch = on && t.dist.Batch()
	t.mu.Unlock()
}

// verifyDist evaluates d(q, obj) against the caller's live bound: with
// bounded kernels the evaluation may stop as soon as the distance provably
// exceeds the bound (within = false, d unspecified), otherwise it is exact.
// Either way within ⇔ d(q, obj) ≤ bound, and d is the exact distance when
// within — so callers decide results purely on within and the decision is
// identical in exact and bounded modes. The caller still counts the
// evaluation (Verified/Compdists) and, when !within under bounded kernels,
// one Abandoned.
func (t *Tree) verifyDist(q, obj metric.Object, bound float64) (d float64, within bool) {
	if t.bounded {
		return t.dist.DistanceAtMost(q, obj, bound)
	}
	d = t.dist.Distance(q, obj)
	return d, d <= bound
}

// verifyBatch is verifyDist over a block of candidates sharing one bound
// snapshot: the metric's batch kernel hoists per-query work (coordinate
// slices, powered budgets, Myers bitmaps) out of the per-candidate loop, and
// every (d[i], within[i]) pair is bit-identical to what verifyDist would
// return for that candidate. The effective threshold is the caller's bound
// when bounded kernels are on, +Inf otherwise — so with bounded kernels off a
// batch evaluation is exact for every candidate, exactly like the scalar
// path. Counters: the Counter charges len(objs) compdists; the caller counts
// Verified and Abandoned per candidate as usual, plus len(objs)
// BatchedCandidates.
func (t *Tree) verifyBatch(q metric.Object, objs []metric.Object, bound float64, d []float64, within []bool) {
	eff := bound
	if !t.bounded {
		eff = math.Inf(1)
	}
	t.dist.BatchDistanceAtMost(q, objs, eff, d, within)
	if !t.bounded {
		// Exact mode reports within against the caller's real bound.
		for i := range d {
			within[i] = d[i] <= bound
		}
	}
}

// Stats is a per-operation measurement in the paper's metrics.
type Stats struct {
	// PageAccesses is PA: physical page reads+writes below the caches,
	// summed over the B+-tree and RAF stores. It always equals
	// IndexPageAccesses + DataPageAccesses.
	PageAccesses int64
	// IndexPageAccesses is the B+-tree store's share of PA.
	IndexPageAccesses int64
	// DataPageAccesses is the RAF store's share of PA.
	DataPageAccesses int64
	// DistanceComputations is compdists.
	DistanceComputations int64
	// Elapsed is wall time.
	Elapsed time.Duration
}

// ResetStats zeroes both stores' I/O counters and the distance counter and
// flushes both caches — the paper's cold-start protocol before each of its
// 500 measured queries.
func (t *Tree) ResetStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.idxCache.Stats().Reset()
	t.dataCache.Stats().Reset()
	t.dist.Reset()
	t.idxCache.Flush()
	t.dataCache.Flush()
}

// WarmReset zeroes the counters but keeps cache contents, for measuring
// sequences that intentionally share a warm cache.
func (t *Tree) WarmReset() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.idxCache.Stats().Reset()
	t.dataCache.Stats().Reset()
	t.dist.Reset()
}

// TakeStats reads the counters accumulated since the last reset. Each store's
// accesses are counted exactly once: the caches delegate Stats to the base
// store below the checksum layer, so neither checksumming nor cache hits
// inflate PA (see DESIGN.md §7).
func (t *Tree) TakeStats() Stats {
	idx := t.idxCache.Stats().Accesses()
	data := t.dataCache.Stats().Accesses()
	return Stats{
		PageAccesses:         idx + data,
		IndexPageAccesses:    idx,
		DataPageAccesses:     data,
		DistanceComputations: t.dist.Count(),
	}
}

// StorageBytes returns the index footprint: B+-tree pages plus RAF pages
// plus the pivot table, in bytes (paper Table 6's Storage column).
func (t *Tree) StorageBytes() int64 {
	pivotBytes := 0
	for _, p := range t.pivots {
		pivotBytes += len(p.AppendBinary(nil)) + 12
	}
	return int64(t.idxCache.NumPages())*page.Size + int64(t.raf.PagesUsed())*page.Size + int64(pivotBytes)
}

// Sync flushes the RAF's buffered tail page and forces both page stores to
// stable storage. Until Sync (or SaveAtomic) succeeds, completed writes may
// still sit in OS buffers.
func (t *Tree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncLocked()
}

// syncLocked is Sync's body, for callers already holding the write lock.
func (t *Tree) syncLocked() error {
	if err := t.raf.Flush(); err != nil {
		return err
	}
	if err := t.idxCache.Sync(); err != nil {
		return err
	}
	return t.dataCache.Sync()
}

// Close syncs and closes both page stores, so a clean shutdown is durable.
// The tree must not be used afterwards: every later operation — and every
// mutator still pending when Close ran — fails with ErrClosed instead of
// racing the teardown. On durable trees Close first closes the WAL (failing
// blocked Append callers) and waits for the compactor goroutine to exit, so
// no background work outlives the tree.
func (t *Tree) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	t.closed = true
	t.mu.Unlock()
	var walErr error
	if t.dur != nil {
		close(t.dur.done)
		// Closing the log first unblocks mutators parked in Append; they see
		// wal.ErrClosed and surface core.ErrClosed.
		walErr = t.dur.log.Close()
		t.dur.wg.Wait()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	syncErr := t.syncLocked()
	idxErr := t.idxCache.Close()
	dataErr := t.dataCache.Close()
	if walErr != nil {
		return walErr
	}
	if syncErr != nil {
		return syncErr
	}
	if idxErr != nil {
		return idxErr
	}
	return dataErr
}

// Measure runs fn against cold caches and returns the observed Stats.
func (t *Tree) Measure(fn func() error) (Stats, error) {
	t.ResetStats()
	start := time.Now()
	err := fn()
	s := t.TakeStats()
	s.Elapsed = time.Since(start)
	return s, err
}

// curveGeometry adapts sfc.Curve to bptree.Geometry.
type curveGeometry struct{ c sfc.Curve }

func (g curveGeometry) Dims() int                   { return g.c.Dims() }
func (g curveGeometry) Decode(k uint64, p []uint32) { g.c.Decode(k, sfc.Point(p)) }
func (g curveGeometry) Encode(p []uint32) uint64    { return g.c.Encode(sfc.Point(p)) }
