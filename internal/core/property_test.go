package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/sfc"
)

// TestLowerBoundProperty checks the foundation of every pruning lemma: the
// quantized mapped-space distance never exceeds the metric distance.
func TestLowerBoundProperty(t *testing.T) {
	objs := vectorSet(300, 5, 61)
	dist := metric.L2(5)
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 5}, NumPivots: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := len(tree.pivots)
	va := make([]float64, n)
	vb := make([]float64, n)
	ca := make(sfc.Point, n)
	cb := make(sfc.Point, n)
	f := func(ai, bi uint16) bool {
		a := objs[int(ai)%len(objs)]
		b := objs[int(bi)%len(objs)]
		tree.phi(a, va)
		tree.phi(b, vb)
		tree.cells(va, ca)
		tree.cells(vb, cb)
		// mindToCell(a's raw vector, b's quantized cell) must lower-bound
		// d(a, b); this is exactly what leaf-entry pruning relies on.
		lb := tree.mindToCell(va, cb)
		d := dist.Distance(a, b)
		return lb <= d+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	_ = ca
}

// TestRangeRegionContainsAnswers — Lemma 1 as a property: any object within
// r of q has its quantized cell inside RR(q, r).
func TestRangeRegionContainsAnswers(t *testing.T) {
	objs := wordSet(300, 62)
	dist := metric.EditDistance{MaxLen: 24}
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.StrCodec{}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := len(tree.pivots)
	qvec := make([]float64, n)
	ovec := make([]float64, n)
	cell := make(sfc.Point, n)
	lo := make(sfc.Point, n)
	hi := make(sfc.Point, n)
	f := func(qi, oi uint16, rRaw uint8) bool {
		q := objs[int(qi)%len(objs)]
		o := objs[int(oi)%len(objs)]
		r := float64(rRaw % 12)
		tree.phi(q, qvec)
		tree.rangeRegion(qvec, r, lo, hi)
		if dist.Distance(q, o) > r {
			return true // nothing to check
		}
		tree.phi(o, ovec)
		tree.cells(ovec, cell)
		return sfc.Contains(lo, hi, cell)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedEquivalence drives random (dataset, radius, k) combinations
// through the index and a linear scan.
func TestRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 6; trial++ {
		dim := 2 + rng.Intn(6)
		nObj := 100 + rng.Intn(300)
		pivots := 1 + rng.Intn(5)
		objs := vectorSet(nObj, dim, rng.Int63())
		dist := metric.L2(dim)
		tree, err := Build(objs, Options{
			Distance: dist, Codec: metric.VectorCodec{Dim: dim},
			NumPivots: pivots, Seed: rng.Int63() + 1,
			DeltaFrac: []float64{0.001, 0.005, 0.05}[rng.Intn(3)],
			Curve:     []sfc.Kind{sfc.Hilbert, sfc.ZOrder}[rng.Intn(2)],
		})
		if err != nil {
			t.Fatal(err)
		}
		for sub := 0; sub < 6; sub++ {
			q := objs[rng.Intn(nObj)]
			r := rng.Float64() * 0.4 * dist.MaxDistance()
			got, err := tree.RangeQuery(q, r)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(bfRange(objs, q, r, dist)) {
				t.Fatalf("trial %d: range mismatch at r=%v", trial, r)
			}
			k := 1 + rng.Intn(12)
			nn, err := tree.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bfKNNDists(objs, q, k, dist)
			for i := range nn {
				if math.Abs(nn[i].Dist-want[i]) > 1e-9 {
					t.Fatalf("trial %d: kNN mismatch at k=%d", trial, k)
				}
			}
		}
	}
}

// TestBuildOnFaultyStores verifies construction surfaces injected I/O errors
// instead of mis-building silently.
func TestBuildOnFaultyStores(t *testing.T) {
	objs := vectorSet(200, 4, 64)
	for _, budget := range []int64{0, 1, 5} {
		_, err := Build(objs, Options{
			Distance:   metric.L2(4),
			Codec:      metric.VectorCodec{Dim: 4},
			NumPivots:  3,
			DataStore:  page.NewFaultStore(page.NewMemStore(), budget),
			IndexStore: page.NewMemStore(),
		})
		if !errors.Is(err, page.ErrInjected) {
			t.Errorf("data-store budget %d: Build error = %v, want ErrInjected", budget, err)
		}
	}
	// The 200-object B+-tree only needs a handful of index pages, so index
	// faults use tight budgets.
	for _, budget := range []int64{0, 1} {
		_, err := Build(objs, Options{
			Distance:   metric.L2(4),
			Codec:      metric.VectorCodec{Dim: 4},
			NumPivots:  3,
			DataStore:  page.NewMemStore(),
			IndexStore: page.NewFaultStore(page.NewMemStore(), budget),
		})
		if !errors.Is(err, page.ErrInjected) {
			t.Errorf("index-store budget %d: Build error = %v, want ErrInjected", budget, err)
		}
	}
}

// TestQueriesOnFaultyStores verifies queries report errors when pages die
// under them mid-flight: the tree is built against fault stores with an
// ample budget, which is then slashed before querying.
func TestQueriesOnFaultyStores(t *testing.T) {
	objs := vectorSet(400, 4, 65)
	idxFault := page.NewFaultStore(page.NewMemStore(), 1<<40)
	dataFault := page.NewFaultStore(page.NewMemStore(), 1<<40)
	tree, err := Build(objs, Options{
		Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4},
		NumPivots: 3, IndexStore: idxFault, DataStore: dataFault, CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := objs[0]
	idxFault.SetBudget(1)
	dataFault.SetBudget(0)
	if _, err := tree.RangeQuery(q, 0.3); !errors.Is(err, page.ErrInjected) {
		t.Errorf("RangeQuery under faults = %v", err)
	}
	if _, err := tree.KNN(q, 4); !errors.Is(err, page.ErrInjected) {
		t.Errorf("KNN under faults = %v", err)
	}
	if err := tree.Insert(objs[1]); !errors.Is(err, page.ErrInjected) {
		t.Errorf("Insert under faults = %v", err)
	}
	// Restore the budget: the tree must work again (errors did not corrupt
	// in-memory state beyond the failed operation).
	idxFault.SetBudget(1 << 40)
	dataFault.SetBudget(1 << 40)
	got, err := tree.RangeQuery(q, 0.3)
	if err != nil {
		t.Fatalf("query after budget restore: %v", err)
	}
	if len(got) == 0 {
		t.Error("no results after budget restore")
	}
}

// TestFileBackedEndToEnd runs the whole stack on real files.
func TestFileBackedEndToEnd(t *testing.T) {
	idx, err := page.NewTempFileStore()
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	data, err := page.NewTempFileStore()
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()

	objs := vectorSet(800, 6, 66)
	dist := metric.L2(6)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 6},
		IndexStore: idx, DataStore: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 8; trial++ {
		q := objs[rng.Intn(len(objs))]
		got, err := tree.RangeQuery(q, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(bfRange(objs, q, 0.25, dist)) {
			t.Fatal("file-backed range mismatch")
		}
	}
	if idx.Stats().Accesses() == 0 || data.Stats().Accesses() == 0 {
		t.Error("file stores saw no traffic")
	}
}
