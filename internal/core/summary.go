package core

import (
	"math"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// ShardSummary describes a tree's footprint in its own mapped (pivot) space,
// for forest/cluster shard planning: a per-pivot bounding box over every live
// object's raw pivot distances, derived from the B+-tree root MBB unioned
// with the buffered inserts' cells. The box is conservative — tombstoned base
// records still widen it until compaction — so pruning against it only ever
// skips provably-empty shards.
type ShardSummary struct {
	// Count is the shard's live object total.
	Count int
	// Lo and Hi bound d(o, p_i) for every live object o and pivot p_i. An
	// empty shard reports Lo[i] > Hi[i] (an empty interval).
	Lo, Hi []float64
}

// Summary returns the tree's shard summary. An empty tree returns
// Count = 0 with empty (inverted) intervals.
func (t *Tree) Summary() (ShardSummary, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return ShardSummary{}, ErrClosed
	}
	return t.summaryLocked(), nil
}

// summaryLocked builds the summary under the read lock the caller holds.
func (t *Tree) summaryLocked() ShardSummary {
	n := len(t.pivots)
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	s := ShardSummary{Count: t.count, Lo: lo, Hi: hi}
	if root, ok := t.bpt.Root(); ok {
		bl := make(sfc.Point, n)
		bh := make(sfc.Point, n)
		t.curve.Decode(root.BoxLo, bl)
		t.curve.Decode(root.BoxHi, bh)
		for i := 0; i < n; i++ {
			lo[i] = t.cellLower(bl[i])
			hi[i] = t.cellUpper(bh[i])
		}
	}
	if t.deltaActive() {
		cell := make(sfc.Point, n)
		for _, e := range t.deltaEntriesSorted() {
			t.curve.Decode(e.key, cell)
			for i := 0; i < n; i++ {
				if l := t.cellLower(cell[i]); l < lo[i] {
					lo[i] = l
				}
				if h := t.cellUpper(cell[i]); h > hi[i] {
					hi[i] = h
				}
			}
		}
	}
	return s
}

// boxMinDist is the L∞ distance from qvec to the summary box — by the
// triangle inequality (d(q,o) ≥ |d(q,p_i) − d(o,p_i)| for every pivot) a
// lower bound on d(q, o) over every live object o of the shard. An empty box
// returns +Inf: an empty shard is infinitely far from everything.
func boxMinDist(qvec, lo, hi []float64) float64 {
	mind := 0.0
	for i, qv := range qvec {
		if lo[i] > hi[i] {
			return math.Inf(1)
		}
		if diff := lo[i] - qv; diff > mind {
			mind = diff
		}
		if diff := qv - hi[i]; diff > mind {
			mind = diff
		}
	}
	return mind
}

// ShardHint is one shard's answer to "how relevant and how expensive is this
// query here?" — the planning input of the forest's shard pruning and staged
// kNN scatter (DESIGN.md §15). Each shard computes its hint against its own
// pivots, so hints compose across shards that do not share a mapping, and
// identically on the far side of a cluster RPC.
type ShardHint struct {
	// MinDist lower-bounds d(q, o) over the shard's live objects (+Inf for
	// an empty shard). For a range query at radius r, MinDist > r proves the
	// shard contributes nothing.
	MinDist float64
	// Prunable reports exactly that proof (range hints only).
	Prunable bool
	// EDC/EPA are the shard's cost-model predictions for this query, valid
	// only when Estimated — a dirty cost model (writes since the last
	// snapshot) withholds them rather than rebuilding under the read lock.
	EDC, EPA  float64
	Estimated bool
}

// RangeHint returns the shard's relevance and cost hint for RangeQuery(q, r).
// The φ(q) computation uses the unwrapped metric, so probing shards for
// hints never perturbs compdists accounting on shards that end up pruned;
// the forest adds the mapping cost once per visited shard.
func (t *Tree) RangeHint(q metric.Object, r float64) (ShardHint, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return ShardHint{}, ErrClosed
	}
	if t.count == 0 {
		return ShardHint{MinDist: math.Inf(1), Prunable: true}, nil
	}
	qvec := t.quietPhi(q)
	s := t.summaryLocked()
	h := ShardHint{MinDist: boxMinDist(qvec, s.Lo, s.Hi)}
	h.Prunable = h.MinDist > r
	if !t.cm.dirty && !h.Prunable {
		ce := t.estimateRangeVec(qvec, r)
		h.EDC, h.EPA, h.Estimated = ce.EDC, ce.EPA, true
	}
	return h, nil
}

// KNNHint returns the shard's relevance and cost hint for KNN(q, k): MinDist
// orders shards by how close their contents can possibly be, EDC/EPA (at the
// estimated eND_k radius) order equally-close shards by predicted work. The
// eND_k estimate uses the planner's capped reservoir profile.
func (t *Tree) KNNHint(q metric.Object, k int) (ShardHint, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return ShardHint{}, ErrClosed
	}
	if t.count == 0 {
		return ShardHint{MinDist: math.Inf(1)}, nil
	}
	qvec := t.quietPhi(q)
	s := t.summaryLocked()
	h := ShardHint{MinDist: boxMinDist(qvec, s.Lo, s.Hi)}
	if !t.cm.dirty {
		ce := t.estimateKNNVec(qvec, k, plannerEstSampleCap)
		h.EDC, h.EPA, h.Estimated = ce.EDC, ce.EPA, true
	}
	return h, nil
}
