package core

import (
	"math"
	"sort"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

func TestNearestIterOrderAndCompleteness(t *testing.T) {
	objs := vectorSet(500, 5, 101)
	dist := metric.L2(5)
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 5}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := objs[17]
	it := tree.NearestIter(q)
	var dists []float64
	seen := map[uint64]bool{}
	for {
		res, ok := it.Next()
		if !ok {
			break
		}
		if seen[res.Object.ID()] {
			t.Fatalf("duplicate object %d", res.Object.ID())
		}
		seen[res.Object.ID()] = true
		dists = append(dists, res.Dist)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(dists) != len(objs) {
		t.Fatalf("iterator yielded %d of %d objects", len(dists), len(objs))
	}
	if !sort.Float64sAreSorted(dists) {
		t.Fatal("distances not ascending")
	}
	// Matches brute-force order exactly.
	want := bfKNNDists(objs, q, len(objs), dist)
	for i := range dists {
		if math.Abs(dists[i]-want[i]) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", i, dists[i], want[i])
		}
	}
}

func TestNearestIterPrefixMatchesKNN(t *testing.T) {
	objs := wordSet(300, 102)
	dist := metric.EditDistance{MaxLen: 24}
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.StrCodec{}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := objs[5]
	knn, err := tree.KNN(q, 12)
	if err != nil {
		t.Fatal(err)
	}
	it := tree.NearestIter(q)
	for i := 0; i < 12; i++ {
		res, ok := it.Next()
		if !ok {
			t.Fatalf("iterator ended at %d", i)
		}
		if res.Dist != knn[i].Dist {
			t.Fatalf("prefix dist[%d] = %v, KNN %v", i, res.Dist, knn[i].Dist)
		}
	}
}

func TestNearestIterLazyIO(t *testing.T) {
	// Consuming only a few neighbors must touch far fewer pages than a full
	// scan would.
	objs := vectorSet(2000, 6, 103)
	tree, err := Build(objs, Options{Distance: metric.L2(6), Codec: metric.VectorCodec{Dim: 6}, NumPivots: 4})
	if err != nil {
		t.Fatal(err)
	}
	tree.ResetStats()
	it := tree.NearestIter(objs[0])
	for i := 0; i < 5; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatal("iterator ended early")
		}
	}
	st := tree.TakeStats()
	if st.DistanceComputations > 400 {
		t.Errorf("5 neighbors cost %d compdists — iterator not lazy", st.DistanceComputations)
	}
}

func TestNearestIterEmptyAndError(t *testing.T) {
	objs := vectorSet(100, 3, 104)
	idxFault := page.NewFaultStore(page.NewMemStore(), 1<<40)
	tree, err := Build(objs, Options{
		Distance: metric.L2(3), Codec: metric.VectorCodec{Dim: 3},
		NumPivots: 2, IndexStore: idxFault, DataStore: page.NewMemStore(), CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	idxFault.SetBudget(0)
	it := tree.NearestIter(objs[0])
	if _, ok := it.Next(); ok {
		t.Error("iterator yielded under fault")
	}
	if it.Err() == nil {
		t.Error("iterator swallowed the fault")
	}
	// Next after error stays terminated.
	if _, ok := it.Next(); ok {
		t.Error("iterator resumed after error")
	}
}

func TestRangeCountMatchesRangeQuery(t *testing.T) {
	for _, s := range setups() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			tree := buildSetup(t, s)
			dPlus := s.dist.MaxDistance()
			for qi := 0; qi < 10; qi++ {
				q := s.objs[qi*13]
				for _, frac := range []float64{0.02, 0.08, 0.3} {
					r := frac * dPlus
					res, err := tree.RangeQuery(q, r)
					if err != nil {
						t.Fatal(err)
					}
					cnt, err := tree.RangeCount(q, r)
					if err != nil {
						t.Fatal(err)
					}
					if cnt != len(res) {
						t.Fatalf("RangeCount=%d, RangeQuery=%d at r=%v", cnt, len(res), r)
					}
				}
			}
		})
	}
}

func TestRangeCountCheaperThanQuery(t *testing.T) {
	// At large radii Lemma 2 fires often; counting skips those RAF reads.
	objs := wordSet(800, 105)
	dist := metric.EditDistance{MaxLen: 24}
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.StrCodec{}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := objs[0]
	tree.ResetStats()
	if _, err := tree.RangeQuery(q, 10); err != nil {
		t.Fatal(err)
	}
	full := tree.TakeStats()
	tree.ResetStats()
	if _, err := tree.RangeCount(q, 10); err != nil {
		t.Fatal(err)
	}
	count := tree.TakeStats()
	if count.PageAccesses > full.PageAccesses {
		t.Errorf("count PA %d > query PA %d", count.PageAccesses, full.PageAccesses)
	}
	if count.DistanceComputations > full.DistanceComputations {
		t.Errorf("count compdists %d > query %d", count.DistanceComputations, full.DistanceComputations)
	}
}

func TestRangeIDs(t *testing.T) {
	objs := vectorSet(200, 4, 106)
	dist := metric.L2(4)
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := tree.RangeIDs(objs[0], 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := bfRange(objs, objs[0], 0.3, dist)
	if len(ids) != len(want) {
		t.Fatalf("got %d ids, want %d", len(ids), len(want))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("ids not sorted")
		}
	}
}

func TestRebuildCompacts(t *testing.T) {
	objs := vectorSet(600, 4, 107)
	dist := metric.L2(4)
	tree, err := Build(objs[:400], Options{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Churn: insert the rest, delete a third.
	for _, o := range objs[400:] {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if err := tree.Delete(objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if tree.FragmentationBytes() == 0 {
		t.Error("no fragmentation reported after 200 deletes")
	}
	sizeBefore := tree.StorageBytes()

	if err := tree.Rebuild(nil, nil); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 400 {
		t.Fatalf("Len after rebuild = %d", tree.Len())
	}
	if tree.FragmentationBytes() != 0 {
		t.Errorf("fragmentation after rebuild = %d", tree.FragmentationBytes())
	}
	if tree.StorageBytes() >= sizeBefore {
		t.Errorf("rebuild did not shrink storage: %d -> %d", sizeBefore, tree.StorageBytes())
	}
	// Queries remain exact.
	live := objs[200:]
	for qi := 0; qi < 10; qi++ {
		q := live[qi*31%len(live)]
		got, err := tree.RangeQuery(q, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(bfRange(live, q, 0.25, dist)) {
			t.Fatal("rebuilt tree returns wrong results")
		}
	}
	// Mutations still work on the rebuilt tree.
	if err := tree.Insert(objs[0]); err != nil {
		t.Fatal(err)
	}
	if err := tree.Delete(objs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestNearestIterBatchMatchesScalar pins the incremental scan's batched
// verification: with batch kernels toggled, the full emitted sequence —
// object IDs, distances, order, and length — is byte-identical to the scalar
// path, across every setup, with and without a distance limit, and on a
// durable tree whose write buffer holds inserts and tombstones.
func TestNearestIterBatchMatchesScalar(t *testing.T) {
	drain := func(tree *Tree, q metric.Object, limit float64) []Result {
		t.Helper()
		it := tree.NearestIterWithin(q, limit)
		defer it.Close()
		var out []Result
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, r)
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		return out
	}
	compare := func(label string, tree *Tree, q metric.Object, limit float64) {
		t.Helper()
		tree.SetBatchKernels(false)
		scalar := drain(tree, q, limit)
		tree.SetBatchKernels(true)
		batch := drain(tree, q, limit)
		if len(scalar) != len(batch) {
			t.Fatalf("%s: %d vs %d emissions", label, len(scalar), len(batch))
		}
		for i := range scalar {
			if scalar[i].Object.ID() != batch[i].Object.ID() || scalar[i].Dist != batch[i].Dist {
				t.Fatalf("%s: emission %d diverges: (%d, %v) vs (%d, %v)", label, i,
					scalar[i].Object.ID(), scalar[i].Dist, batch[i].Object.ID(), batch[i].Dist)
			}
		}
	}

	for _, s := range setups() {
		tree := buildSetup(t, s)
		for _, limit := range []float64{math.Inf(1), 0.3 * s.dist.MaxDistance()} {
			compare(s.name, tree, s.objs[2], limit)
		}
		tree.Close()
	}

	// Durable tree: buffered inserts join the scan, tombstoned base records
	// are skipped — on both paths identically.
	objs := vectorSet(400, 5, 131)
	dist := metric.L2(5)
	tree, err := CreateDurable(t.TempDir(), objs[:350], Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5}, Seed: 7,
	}, DurableOptions{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	for _, o := range objs[350:] {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := tree.Delete(objs[i*7]); err != nil {
			t.Fatal(err)
		}
	}
	compare("durable-delta", tree, objs[5], math.Inf(1))
	compare("durable-delta-limited", tree, objs[5], 0.25*dist.MaxDistance())
}
