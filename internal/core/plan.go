package core

import (
	"math"
	"sync/atomic"

	"spbtree/internal/metric"
)

// This file is the adaptive query planner (DESIGN.md §15): it turns the
// paper's Section 4.4/5.3 cost estimators (costmodel.go) into per-query
// execution decisions. Per query it predicts the work ahead — EDC distance
// computations and EPA page accesses — prices it with two online-calibrated
// unit costs (an EWMA of observed ns per compdist and ns per page access,
// fed by every finished query), and sizes the verifier pool to match:
// serial execution for cheap, selective queries where pool dispatch overhead
// would dominate, and up to Options.Workers slots for expensive ones.
//
// The decision never changes results: the ordered-commit engine (exec.go) is
// worker-count-invariant by construction, so the planner only moves the
// latency/parallelism trade-off. Every decision and its inputs are recorded
// in QueryStats.Plan, so choices are observable and testable.
//
// Fallback rules (all degrade to the pre-planner fixed behavior, i.e.
// workersFor()): the planner is disabled (Options.DisablePlanner), the tree
// is single-worker, fewer than plannerMinSamples queries have calibrated the
// unit costs, or the cost model's MBB snapshot is dirty — queries run under
// the tree's read lock and must never trigger the write-side snapshot.

// Plan modes recorded in PlanInfo.Mode.
const (
	// PlanModePlanned marks a cost-model-driven decision.
	PlanModePlanned = "planned"
	// PlanModeFixed marks the pre-planner fixed behavior: the planner is
	// disabled or the tree is single-worker.
	PlanModeFixed = "fixed"
	// PlanModeUncalibrated marks a fixed-behavior fallback because too few
	// queries have fed the unit-cost EWMAs.
	PlanModeUncalibrated = "uncalibrated"
	// PlanModeDirtyModel marks a fixed-behavior fallback because writes have
	// invalidated the cost model's MBB snapshot and a query may not rebuild
	// it under the read lock.
	PlanModeDirtyModel = "dirty-model"
)

// PlanInfo records one query's execution-plan decision and the inputs that
// produced it. It travels inside QueryStats (including over the cluster
// wire); the zero value means "no planner ran" (joins, graph queries,
// pre-planner trees on the other side of a version skew).
type PlanInfo struct {
	// Mode is one of the PlanMode constants.
	Mode string
	// Workers is the verifier slot count the decision asked for; 0 means
	// serial execution. The slot pool may grant fewer under contention —
	// this records the grant, which is what actually ran.
	Workers int
	// EDC/EPA/Radius echo the cost model's prediction (CostEstimate) when
	// Mode is PlanModePlanned; zero otherwise.
	EDC    float64
	EPA    float64
	Radius float64
	// CostNS is the predicted serial cost EDC·NSPerCompdist + EPA·NSPerPage.
	CostNS float64
	// NSPerCompdist and NSPerPage are the calibrated unit costs used.
	NSPerCompdist float64
	NSPerPage     float64

	// Forest/cluster scatter fields, filled by the gather side.

	// ShardsTotal and ShardsPruned count the scatter's fan-out and how many
	// shards the per-shard MBB summaries proved irrelevant (range only).
	ShardsTotal  int
	ShardsPruned int
	// Staged reports the two-stage kNN visit: FirstShard (an index into the
	// forest's shard order) ran first to obtain the k-th-distance bound the
	// remaining shards were probed with.
	Staged     bool
	FirstShard int
}

// Planner calibration constants.
const (
	// plannerMinSamples is how many observed queries must feed the EWMAs
	// before the planner trusts them.
	plannerMinSamples = 16
	// plannerAlpha is the EWMA smoothing factor.
	plannerAlpha = 0.2
	// planSerialCutoffNS: predicted serial cost below which the per-query
	// worker pool is not worth its dispatch overhead (goroutine wakeups,
	// channel traffic — roughly 100µs of overhead at typical slot counts).
	planSerialCutoffNS = 120e3
	// planWorkerGrainNS is the predicted cost one extra worker slot is
	// expected to absorb; the slot ask scales with cost/grain.
	planWorkerGrainNS = 150e3
	// plannerEstSampleCap bounds the reservoir scan of the per-query eND_k
	// estimate so planning stays a small fraction of the work it prices.
	plannerEstSampleCap = 256
)

// planner holds the online unit-cost calibration. All fields are atomics:
// observations arrive from queries running under the tree's read lock, so
// concurrent updates race benignly via CAS loops. The zero value is a valid
// uncalibrated planner.
type planner struct {
	off bool
	// nsComp and nsPage are EWMAs of observed ns per distance computation
	// and ns per physical page access, stored as float64 bits.
	nsComp  atomic.Uint64
	nsPage  atomic.Uint64
	samples atomic.Int64
}

func (p *planner) loadComp() float64 { return math.Float64frombits(p.nsComp.Load()) }
func (p *planner) loadPage() float64 { return math.Float64frombits(p.nsPage.Load()) }

// ewmaStore folds x into the EWMA held in a (as float bits) with a CAS loop;
// the first observation seeds the average.
func ewmaStore(a *atomic.Uint64, x float64) {
	for {
		old := a.Load()
		cur := math.Float64frombits(old)
		next := x
		if cur > 0 {
			next = (1-plannerAlpha)*cur + plannerAlpha*x
		}
		if a.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// observe feeds one finished query's observed cost into the calibration.
// Called from queryTimer.finish for every query, so the unit costs track the
// live workload (metric hardness, cache temperature) without any dedicated
// calibration phase. Queries that did no distance work, or ran so fast the
// clock quantizes to zero, teach nothing and are skipped.
func (p *planner) observe(qs *QueryStats) {
	if p.off {
		return
	}
	el := float64(qs.Elapsed.Nanoseconds())
	cd := float64(qs.Compdists)
	if el <= 0 || cd <= 0 {
		return
	}
	pa := float64(qs.IndexPA + qs.DataPA)
	comp := p.loadComp()
	switch {
	case pa < 1:
		// Fully cached query: elapsed is (almost) pure distance work, the
		// cleanest per-compdist signal.
		ewmaStore(&p.nsComp, el/cd)
	case comp > 0:
		// Pages were touched: attribute the residual beyond the distance
		// work to them.
		if resid := el - comp*cd; resid > 0 {
			ewmaStore(&p.nsPage, resid/pa)
		}
	default:
		// Bootstrap under a workload where every query touches pages (tiny
		// or disabled caches): seed the per-compdist cost from the full
		// elapsed time — an overestimate that cached queries refine, and
		// far better than never calibrating.
		ewmaStore(&p.nsComp, el/cd)
	}
	p.samples.Add(1)
}

// planDecide prices one query's estimate and chooses the slot ask. It does
// not touch the slot pool, so explain paths can call it without side effects.
func (t *Tree) planDecide(ce CostEstimate) (info PlanInfo, want int) {
	a, b := t.plr.loadComp(), t.plr.loadPage()
	cost := ce.EDC*a + ce.EPA*b
	if cost > planSerialCutoffNS {
		want = int(cost / planWorkerGrainNS)
		if want < 2 {
			want = 2
		}
		if want > t.workers {
			want = t.workers
		}
	}
	info = PlanInfo{
		Mode: PlanModePlanned, Workers: want,
		EDC: ce.EDC, EPA: ce.EPA, Radius: ce.Radius,
		CostNS: cost, NSPerCompdist: a, NSPerPage: b,
	}
	return info, want
}

// planFallback reports whether the planner must fall back to the fixed
// behavior, and with which mode label. Callers hold the tree's read lock.
func (t *Tree) planFallback() (string, bool) {
	switch {
	case t.workers <= 1 || t.plr.off:
		return PlanModeFixed, true
	case t.plr.samples.Load() < plannerMinSamples || t.plr.loadComp() <= 0:
		return PlanModeUncalibrated, true
	case t.cm.dirty:
		// Rebuilding the MBB snapshot mutates the cost model — forbidden
		// under the read lock. Estimation-free fixed behavior until a
		// compaction/rebuild (or an off-query Estimate* call) refreshes it.
		return PlanModeDirtyModel, true
	}
	return "", false
}

// planSlots runs the planner for one query: decide, acquire, record. est is
// only invoked when no fallback applies. Returns the granted slot count
// (0 = serial). Callers hold the tree's read lock.
func (t *Tree) planSlots(est func() CostEstimate, qs *QueryStats) int {
	if mode, fb := t.planFallback(); fb {
		slots := t.workersFor()
		qs.Plan = PlanInfo{Mode: mode, Workers: slots}
		return slots
	}
	info, want := t.planDecide(est())
	got := 0
	if want > 0 {
		got = acquireSlots(want)
	}
	info.Workers = got
	qs.Plan = info
	return got
}

// planRangeSlots sizes the verifier pool for a range query at radius r.
func (t *Tree) planRangeSlots(qvec []float64, r float64, qs *QueryStats) int {
	return t.planSlots(func() CostEstimate { return t.estimateRangeVec(qvec, r) }, qs)
}

// planKNNSlots sizes the verifier pool for a kNN query. The per-query eND_k
// estimate scans a capped share of the reservoir (plannerEstSampleCap) so
// planning stays cheap relative to the work it prices.
func (t *Tree) planKNNSlots(qvec []float64, k int, qs *QueryStats) int {
	return t.planSlots(func() CostEstimate { return t.estimateKNNVec(qvec, k, plannerEstSampleCap) }, qs)
}

// PlannerState is a snapshot of the planner's calibration, for tools and
// tests.
type PlannerState struct {
	// Enabled is false when Options.DisablePlanner was set or the tree is
	// single-worker (the planner never engages).
	Enabled bool
	// Calibrated reports whether enough queries have fed the EWMAs for the
	// planner to act on them.
	Calibrated bool
	// Samples counts the observed queries feeding the EWMAs.
	Samples int64
	// NSPerCompdist and NSPerPage are the current unit-cost EWMAs.
	NSPerCompdist float64
	NSPerPage     float64
}

// PlannerState reports the adaptive planner's calibration state.
func (t *Tree) PlannerState() PlannerState {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return PlannerState{
		Enabled:       !t.plr.off && t.workers > 1,
		Calibrated:    t.plr.samples.Load() >= plannerMinSamples && t.plr.loadComp() > 0,
		Samples:       t.plr.samples.Load(),
		NSPerCompdist: t.plr.loadComp(),
		NSPerPage:     t.plr.loadPage(),
	}
}

// ExplainRange returns the plan the tree would choose for RangeQuery(q, r)
// without executing it: the cost estimate, the calibrated unit costs and the
// worker decision (PlanInfo.Workers is the ask — execution may be granted
// fewer under slot-pool contention). Unlike a live query it may refresh a
// dirty cost-model snapshot, so a fresh explain right after writes reports
// the planned mode a calibrated steady-state query would get.
func (t *Tree) ExplainRange(q metric.Object, r float64) (PlanInfo, error) {
	return t.explain(q, func(qvec []float64) CostEstimate {
		return t.estimateRangeVec(qvec, r)
	})
}

// ExplainKNN is ExplainRange for KNN(q, k); the estimate uses the full
// reservoir (like EstimateKNN), not the planner's capped per-query profile.
func (t *Tree) ExplainKNN(q metric.Object, k int) (PlanInfo, error) {
	return t.explain(q, func(qvec []float64) CostEstimate {
		return t.estimateKNNVec(qvec, k, len(t.cm.vecs))
	})
}

func (t *Tree) explain(q metric.Object, est func([]float64) CostEstimate) (PlanInfo, error) {
	if err := t.ensureCostBoxes(); err != nil {
		return PlanInfo{}, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return PlanInfo{}, ErrClosed
	}
	if mode, fb := t.planFallback(); fb && mode != PlanModeDirtyModel {
		return PlanInfo{Mode: mode, Workers: t.workers}, nil
	}
	info, _ := t.planDecide(est(t.quietPhi(q)))
	return info, nil
}
