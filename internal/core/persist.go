package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"spbtree/internal/bptree"
	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/raf"
	"spbtree/internal/sfc"
)

// treeMetaVersion versions the WriteMeta encoding. Version 2 added the page
// checksum tables and the checksummed footer.
const treeMetaVersion = 2

// ErrCorruptMeta is the sentinel all meta validation failures wrap: a
// missing or mismatched footer, a bad checksum, an unsupported version, or
// a truncated or internally inconsistent payload. Open never decodes
// garbage — it fails with an error matching this sentinel instead.
var ErrCorruptMeta = errors.New("core: corrupt meta")

// metaMagic marks the checksummed footer: payload || magic || u32 payload
// length || u32 CRC32-C(payload). The footer sits at the end so WriteMeta
// can stream the payload and so truncations are always detectable.
var metaMagic = [4]byte{'S', 'P', 'B', 'M'}

// appendMetaFooter stamps the footer over payload.
func appendMetaFooter(payload []byte) []byte {
	b := append(payload, metaMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(b, page.Checksum(payload))
}

// checkMetaFooter validates the footer and returns the payload it covers.
func checkMetaFooter(raw []byte) ([]byte, error) {
	const footerSize = 12
	if len(raw) < footerSize {
		return nil, fmt.Errorf("%w: %d bytes, no room for footer", ErrCorruptMeta, len(raw))
	}
	foot := raw[len(raw)-footerSize:]
	if [4]byte(foot[0:4]) != metaMagic {
		return nil, fmt.Errorf("%w: footer magic %q", ErrCorruptMeta, foot[0:4])
	}
	payload := raw[:len(raw)-footerSize]
	if n := binary.LittleEndian.Uint32(foot[4:8]); int(n) != len(payload) {
		return nil, fmt.Errorf("%w: footer says %d payload bytes, have %d", ErrCorruptMeta, n, len(payload))
	}
	if want, got := binary.LittleEndian.Uint32(foot[8:12]), page.Checksum(payload); got != want {
		return nil, fmt.Errorf("%w: payload checksum %08x, footer records %08x", ErrCorruptMeta, got, want)
	}
	return payload, nil
}

// WriteMeta serializes everything needed to reopen the tree against its two
// page stores: the pivot table, both stores' page checksum tables, the
// B+-tree and RAF bookkeeping, and the cost-model distributions — followed
// by a checksummed footer so that any truncation or bit flip of the blob is
// detected by Open. Pair it with persistent stores (page.FileStore) and
// Open, or use SaveAtomic for a crash-safe on-disk layout.
func (t *Tree) WriteMeta(w io.Writer) error {
	if err := t.raf.Flush(); err != nil {
		return err
	}
	var b []byte
	b = append(b, treeMetaVersion)
	b = append(b, byte(t.kind))
	b = append(b, byte(t.bits))
	if t.exact {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if t.noLemma2 {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if t.noSFCMerge {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendF64(b, t.delta)
	b = appendF64(b, t.dPlus)
	b = binary.LittleEndian.AppendUint64(b, uint64(t.count))

	// Pivot table: id + payload per pivot.
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.pivots)))
	for _, p := range t.pivots {
		payload := p.AppendBinary(nil)
		b = binary.LittleEndian.AppendUint64(b, p.ID())
		b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
		b = append(b, payload...)
	}

	// Page checksum tables, ahead of the substrate bookkeeping so Open can
	// arm validation before the RAF's tail-page reload reads anything.
	im := t.idxSums.Meta()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(im)))
	b = append(b, im...)
	dm := t.dataSums.Meta()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dm)))
	b = append(b, dm...)

	// Substrate bookkeeping.
	bm := t.bpt.Meta()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(bm)))
	b = append(b, bm...)
	rm := t.raf.Meta()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rm)))
	b = append(b, rm...)

	// Cost model distributions.
	b = appendF64(b, t.cm.precision)
	b = appendF64s(b, t.cm.pairDists)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.cm.vecs)))
	for _, v := range t.cm.vecs {
		b = appendF64s(b, v)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.cm.hists)))
	for _, h := range t.cm.hists {
		b = appendF64(b, h.width)
		b = binary.LittleEndian.AppendUint64(b, uint64(h.total))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(h.bins)))
		for _, c := range h.bins {
			b = binary.LittleEndian.AppendUint64(b, uint64(c))
		}
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(t.cm.seen))

	_, err := w.Write(appendMetaFooter(b))
	return err
}

// OpenOptions configures Open.
type OpenOptions struct {
	// Distance and Codec must match the tree's build-time configuration;
	// required.
	Distance metric.DistanceFunc
	Codec    metric.Codec
	// IndexStore and DataStore are the persisted page stores; required.
	IndexStore, DataStore page.Store
	// CacheSize is the buffer-cache capacity (default 32; negative
	// disables).
	CacheSize int
	// Traversal selects the kNN strategy.
	Traversal TraversalStrategy
	// Workers is the per-query verifier pool size (see Options.Workers):
	// 0 selects the default, 1 forces serial execution.
	Workers int
	// DisableBoundedKernels turns off threshold-aware distance evaluation
	// (see Options.DisableBoundedKernels).
	DisableBoundedKernels bool
	// DisableBatchKernels turns off blocked batch verification
	// (see Options.DisableBatchKernels).
	DisableBatchKernels bool
	// DisablePlanner turns off the adaptive query planner
	// (see Options.DisablePlanner).
	DisablePlanner bool
}

// Open reopens a tree persisted with WriteMeta.
func Open(meta io.Reader, opts OpenOptions) (*Tree, error) {
	if opts.Distance == nil || opts.Codec == nil {
		return nil, fmt.Errorf("core: OpenOptions.Distance and Codec are required")
	}
	if opts.IndexStore == nil || opts.DataStore == nil {
		return nil, fmt.Errorf("core: OpenOptions.IndexStore and DataStore are required")
	}
	raw, err := io.ReadAll(meta)
	if err != nil {
		return nil, fmt.Errorf("core: read meta: %w", err)
	}
	payload, err := checkMetaFooter(raw)
	if err != nil {
		return nil, err
	}
	r := &metaReader{b: payload}
	if v := r.u8(); v != treeMetaVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorruptMeta, v, treeMetaVersion)
	}
	t := &Tree{
		id:        treeIDs.Add(1),
		dist:      metric.NewCounter(opts.Distance),
		codec:     opts.Codec,
		traversal: opts.Traversal,
		workers:   resolveWorkers(opts.Workers),
		bounded:   !opts.DisableBoundedKernels && metric.IsBounded(opts.Distance),
		batch:     !opts.DisableBatchKernels && metric.IsBatch(opts.Distance),
	}
	t.plr.off = opts.DisablePlanner
	t.kind = sfc.Kind(r.u8())
	t.bits = int(r.u8())
	t.exact = r.u8() == 1
	t.noLemma2 = r.u8() == 1
	t.noSFCMerge = r.u8() == 1
	t.delta = r.f64()
	t.dPlus = r.f64()
	t.count = int(r.u64())

	nPivots := int(r.u32())
	if r.err == nil && (nPivots <= 0 || nPivots > 64) {
		return nil, fmt.Errorf("%w: %d pivots", ErrCorruptMeta, nPivots)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrCorruptMeta)
	}
	t.pivots = make([]metric.Object, nPivots)
	for i := range t.pivots {
		id := r.u64()
		pl := r.bytes(int(r.u32()))
		if r.err != nil {
			return nil, fmt.Errorf("%w: truncated pivot table", ErrCorruptMeta)
		}
		obj, err := opts.Codec.Decode(id, pl)
		if err != nil {
			return nil, fmt.Errorf("%w: decode pivot %d: %v", ErrCorruptMeta, i, err)
		}
		t.pivots[i] = obj
	}
	t.curve = sfc.New(t.kind, nPivots, t.bits)

	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = 32
	}
	if cacheSize < 0 {
		cacheSize = 0
	}
	t.idxSums = page.NewChecksumStore(opts.IndexStore)
	t.dataSums = page.NewChecksumStore(opts.DataStore)
	t.idxCache = page.NewCache(t.idxSums, cacheSize)
	t.dataCache = page.NewCache(t.dataSums, cacheSize)

	im := r.bytes(int(r.u32()))
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated index checksum table", ErrCorruptMeta)
	}
	if err := t.idxSums.LoadMeta(im); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptMeta, err)
	}
	dm := r.bytes(int(r.u32()))
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated data checksum table", ErrCorruptMeta)
	}
	if err := t.dataSums.LoadMeta(dm); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptMeta, err)
	}

	bm := r.bytes(int(r.u32()))
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated B+-tree meta", ErrCorruptMeta)
	}
	t.bpt, err = bptree.Open(t.idxCache, bptree.Options{Geometry: curveGeometry{t.curve}}, bm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptMeta, err)
	}
	rm := r.bytes(int(r.u32()))
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated RAF meta", ErrCorruptMeta)
	}
	t.raf, err = raf.Open(t.dataCache, t.codec, rm)
	if err != nil {
		return nil, err
	}

	t.cm.init(nPivots, t.dPlus, 0, 1)
	t.cm.cellWidth = t.delta
	t.cm.precision = r.f64()
	t.cm.pairDists = r.f64s()
	nVecs := int(r.u32())
	if r.err != nil || nVecs < 0 || nVecs > 1<<20 {
		return nil, fmt.Errorf("%w: truncated cost-model sample", ErrCorruptMeta)
	}
	t.cm.vecs = make([][]float64, nVecs)
	for i := range t.cm.vecs {
		t.cm.vecs[i] = r.f64s()
	}
	nHists := int(r.u32())
	if r.err != nil || nHists != nPivots {
		return nil, fmt.Errorf("%w: %d histograms for %d pivots", ErrCorruptMeta, nHists, nPivots)
	}
	t.cm.hists = make([]histogram, nHists)
	for i := range t.cm.hists {
		h := &t.cm.hists[i]
		h.width = r.f64()
		h.total = int(r.u64())
		nBins := int(r.u32())
		if r.err != nil || nBins < 0 || nBins > 1<<20 {
			return nil, fmt.Errorf("%w: histogram %d has %d bins", ErrCorruptMeta, i, nBins)
		}
		h.bins = make([]int, nBins)
		for j := range h.bins {
			h.bins[j] = int(r.u64())
		}
	}
	t.cm.seen = int(r.u64())
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrCorruptMeta)
	}
	if err := t.cm.snapshotBoxes(t); err != nil {
		return nil, err
	}
	return t, nil
}

// --- little helpers ---------------------------------------------------------

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendF64s(b []byte, vs []float64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}

// metaReader is a bounds-checked sequential decoder; after any short read it
// sticks in the error state and returns zero values.
type metaReader struct {
	b   []byte
	off int
	err error
}

func (r *metaReader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *metaReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *metaReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *metaReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *metaReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *metaReader) bytes(n int) []byte {
	if n < 0 || n > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.take(n)
	return bytes.Clone(b)
}

func (r *metaReader) f64s() []float64 {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > 1<<20 {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}
