package core

import (
	"fmt"
	"math"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// phi fills vec with the raw pivot distances ⟨d(o,p_1), …, d(o,p_n)⟩ — the
// first mapping stage of the paper's Fig. 1.
func (t *Tree) phi(o metric.Object, vec []float64) {
	for i, p := range t.pivots {
		vec[i] = t.dist.Distance(o, p)
	}
}

// validateVec rejects objects whose pivot distances exceed the metric's
// declared d+. Such distances would quantize into clamped cells that
// under-represent them, silently breaking the lower-bound property every
// pruning lemma rests on — a configuration error (e.g. EditDistance.MaxLen
// smaller than the longest string) that must fail loudly at indexing time.
func (t *Tree) validateVec(o metric.Object, vec []float64) error {
	limit := t.dPlus * (1 + 1e-9)
	for i, d := range vec {
		if d > limit {
			return fmt.Errorf("core: object %d is at distance %g from pivot %d, beyond the metric's MaxDistance %g — fix the DistanceFunc configuration",
				o.ID(), d, i, t.dPlus)
		}
	}
	return nil
}

// cellOf quantizes a raw distance into its δ-cell, clamped to the grid.
func (t *Tree) cellOf(d float64) uint32 {
	if d < 0 {
		d = 0
	}
	c := uint64(math.Floor(d / t.delta))
	if max := uint64(1)<<t.bits - 1; c > max {
		c = max
	}
	return uint32(c)
}

// cells quantizes a raw distance vector into grid coordinates.
func (t *Tree) cells(vec []float64, out sfc.Point) {
	for i, d := range vec {
		out[i] = t.cellOf(d)
	}
}

// cellLower returns the smallest distance a cell can represent.
func (t *Tree) cellLower(c uint32) float64 { return float64(c) * t.delta }

// cellUpper returns the largest distance a cell can represent. For exact
// (discrete, δ=1) grids, the cell is the distance itself; otherwise the cell
// covers [cδ, (c+1)δ).
func (t *Tree) cellUpper(c uint32) float64 {
	if t.exact {
		return float64(c)
	}
	return float64(c+1) * t.delta
}

// rangeRegion computes the mapped range region RR(q, r) of Lemma 1 in cell
// space: dimension i spans every cell whose distance interval intersects
// [d(q,p_i)−r, d(q,p_i)+r].
func (t *Tree) rangeRegion(qvec []float64, r float64, lo, hi sfc.Point) {
	maxCell := uint32(uint64(1)<<t.bits - 1)
	for i, dq := range qvec {
		lower := dq - r
		if lower < 0 {
			lower = 0
		}
		if t.exact {
			lo[i] = uint32(math.Ceil(lower))
		} else {
			lo[i] = t.cellOf(lower)
		}
		upper := dq + r
		c := uint64(math.Floor(upper / t.delta))
		if c > uint64(maxCell) {
			c = uint64(maxCell)
		}
		hi[i] = uint32(c)
		if lo[i] > maxCell {
			lo[i] = maxCell + 1 // empty dimension ⇒ empty region
		}
	}
}

// mindToCell returns the L∞ lower bound MIND between the query (raw pivot
// distances qvec) and an object quantized to cell point p — the per-entry
// pruning distance of Algorithm 2.
func (t *Tree) mindToCell(qvec []float64, p sfc.Point) float64 {
	var m float64
	for i, dq := range qvec {
		lb := t.cellLower(p[i]) - dq
		if ub := dq - t.cellUpper(p[i]); ub > lb {
			lb = ub
		}
		if lb > m {
			m = lb
		}
	}
	return m
}

// mindToBox returns the L∞ lower bound MIND between the query and a node
// MBB [lo, hi] in cell space — Lemma 3's pruning distance.
func (t *Tree) mindToBox(qvec []float64, lo, hi sfc.Point) float64 {
	var m float64
	for i, dq := range qvec {
		lb := t.cellLower(lo[i]) - dq
		if ub := dq - t.cellUpper(hi[i]); ub > lb {
			lb = ub
		}
		if lb > m {
			m = lb
		}
	}
	return m
}

// lemma2Bound checks the verification-free inclusion of Lemma 2: if some
// pivot p_i has d(o,p_i) ≤ r − d(q,p_i), the triangle inequality proves
// d(q,o) ≤ r without computing it. Only the quantized upper bound of
// d(o,p_i) is known, which keeps the test conservative (and exact for
// discrete metrics). It returns the proved upper bound and whether the
// lemma applies.
func (t *Tree) lemma2Bound(qvec []float64, p sfc.Point, r float64) (float64, bool) {
	for i, dq := range qvec {
		if ub := t.cellUpper(p[i]); ub <= r-dq {
			return dq + ub, true
		}
	}
	return 0, false
}
