package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// --- test datasets -------------------------------------------------------

func vectorSet(n, dim int, seed int64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 4)
	for i := range centers {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()
		}
		centers[i] = c
	}
	objs := make([]metric.Object, n)
	for i := range objs {
		c := centers[i%len(centers)]
		coords := make([]float64, dim)
		for j := range coords {
			v := c[j] + 0.08*rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			coords[j] = v
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	return objs
}

func wordSet(n int, seed int64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	syllables := []string{"ta", "ri", "mon", "el", "su", "qua", "de", "fo", "li", "ate", "ing", "er"}
	objs := make([]metric.Object, n)
	for i := range objs {
		var w string
		for k := 0; k < 2+rng.Intn(4); k++ {
			w += syllables[rng.Intn(len(syllables))]
		}
		objs[i] = metric.NewStr(uint64(i), w)
	}
	return objs
}

// vector32Set is vectorSet with every coordinate rounded to float32, the
// object kind the 8-wide kernels and Vector32Codec pages operate on.
func vector32Set(n, dim int, seed int64) []metric.Object {
	objs := vectorSet(n, dim, seed)
	for i, o := range objs {
		objs[i] = metric.NewVector32From64(o.ID(), o.(*metric.Vector).Coords)
	}
	return objs
}

func sigSet(n int, seed int64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]metric.Object, n)
	seedSig := make([]byte, 8)
	rng.Read(seedSig)
	for i := range objs {
		b := make([]byte, 8)
		copy(b, seedSig)
		for flips := rng.Intn(20); flips > 0; flips-- {
			bit := rng.Intn(64)
			b[bit/8] ^= 1 << (bit % 8)
		}
		objs[i] = metric.NewBitString(uint64(i), b)
	}
	return objs
}

// --- brute-force references ----------------------------------------------

func bfRange(objs []metric.Object, q metric.Object, r float64, d metric.DistanceFunc) map[uint64]bool {
	out := map[uint64]bool{}
	for _, o := range objs {
		if d.Distance(q, o) <= r {
			out[o.ID()] = true
		}
	}
	return out
}

func bfKNNDists(objs []metric.Object, q metric.Object, k int, d metric.DistanceFunc) []float64 {
	ds := make([]float64, len(objs))
	for i, o := range objs {
		ds[i] = d.Distance(q, o)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func resultIDs(rs []Result) map[uint64]bool {
	out := map[uint64]bool{}
	for _, r := range rs {
		out[r.Object.ID()] = true
	}
	return out
}

// --- setups shared by equivalence tests -----------------------------------

type setup struct {
	name string
	objs []metric.Object
	dist metric.DistanceFunc
	opts Options
}

func setups() []setup {
	return []setup{
		{
			name: "vectors-L2-hilbert",
			objs: vectorSet(400, 6, 1),
			dist: metric.L2(6),
			opts: Options{Codec: metric.VectorCodec{Dim: 6}, NumPivots: 3},
		},
		{
			name: "vectors-L5-zorder",
			objs: vectorSet(300, 4, 2),
			dist: metric.L5(4),
			opts: Options{Codec: metric.VectorCodec{Dim: 4}, NumPivots: 4, Curve: sfc.ZOrder},
		},
		{
			name: "vectors32-L5-hilbert",
			objs: vector32Set(300, 12, 5),
			dist: metric.L5(12),
			opts: Options{Codec: metric.Vector32Codec{Dim: 12}, NumPivots: 3},
		},
		{
			name: "words-edit",
			objs: wordSet(300, 3),
			dist: metric.EditDistance{MaxLen: 24},
			opts: Options{Codec: metric.StrCodec{}, NumPivots: 3},
		},
		{
			name: "signatures-hamming",
			objs: sigSet(250, 4),
			dist: metric.Hamming{Bytes: 8},
			opts: Options{Codec: metric.BitStringCodec{Bytes: 8}, NumPivots: 3},
		},
	}
}

func buildSetup(t *testing.T, s setup) *Tree {
	t.Helper()
	opts := s.opts
	opts.Distance = s.dist
	tree, err := Build(s.objs, opts)
	if err != nil {
		t.Fatalf("%s: Build: %v", s.name, err)
	}
	return tree
}

// --- tests -----------------------------------------------------------------

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	for _, s := range setups() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			tree := buildSetup(t, s)
			dPlus := s.dist.MaxDistance()
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 25; trial++ {
				q := s.objs[rng.Intn(len(s.objs))]
				r := dPlus * (0.02 + 0.1*rng.Float64())
				got, err := tree.RangeQuery(q, r)
				if err != nil {
					t.Fatal(err)
				}
				want := bfRange(s.objs, q, r, s.dist)
				gotIDs := resultIDs(got)
				if len(gotIDs) != len(want) {
					t.Fatalf("trial %d (r=%v): got %d results, want %d", trial, r, len(gotIDs), len(want))
				}
				for id := range want {
					if !gotIDs[id] {
						t.Fatalf("trial %d: missing id %d", trial, id)
					}
				}
				// Lemma 2 inexact results must still carry a valid bound.
				for _, res := range got {
					if !res.Exact && res.Dist > r+1e-9 {
						t.Fatalf("inexact result bound %v exceeds r=%v", res.Dist, r)
					}
				}
			}
		})
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, s := range setups() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			tree := buildSetup(t, s)
			rng := rand.New(rand.NewSource(11))
			for _, k := range []int{1, 4, 16} {
				for trial := 0; trial < 10; trial++ {
					q := s.objs[rng.Intn(len(s.objs))]
					got, err := tree.KNN(q, k)
					if err != nil {
						t.Fatal(err)
					}
					want := bfKNNDists(s.objs, q, k, s.dist)
					if len(got) != len(want) {
						t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
					}
					for i := range got {
						if diff := got[i].Dist - want[i]; diff > 1e-9 || diff < -1e-9 {
							t.Fatalf("k=%d trial %d: dist[%d] = %v, want %v", k, trial, i, got[i].Dist, want[i])
						}
					}
				}
			}
		})
	}
}

func TestGreedyTraversalSameResults(t *testing.T) {
	for _, s := range setups() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			tree := buildSetup(t, s)
			rng := rand.New(rand.NewSource(13))
			for trial := 0; trial < 10; trial++ {
				q := s.objs[rng.Intn(len(s.objs))]
				tree.SetTraversal(Incremental)
				inc, err := tree.KNN(q, 8)
				if err != nil {
					t.Fatal(err)
				}
				tree.SetTraversal(Greedy)
				gre, err := tree.KNN(q, 8)
				if err != nil {
					t.Fatal(err)
				}
				if len(inc) != len(gre) {
					t.Fatalf("incremental %d vs greedy %d results", len(inc), len(gre))
				}
				for i := range inc {
					if inc[i].Dist != gre[i].Dist {
						t.Fatalf("dist[%d]: incremental %v, greedy %v", i, inc[i].Dist, gre[i].Dist)
					}
				}
			}
		})
	}
}

func TestRangeQueryRadiusZeroAndNegative(t *testing.T) {
	s := setups()[0]
	tree := buildSetup(t, s)
	q := s.objs[0]
	got, err := tree.RangeQuery(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bfRange(s.objs, q, 0, s.dist)
	if len(resultIDs(got)) != len(want) {
		t.Errorf("r=0: got %d, want %d (self and duplicates)", len(got), len(want))
	}
	if got, _ := tree.RangeQuery(q, -1); got != nil {
		t.Errorf("negative radius returned %d results", len(got))
	}
}

func TestKNNWithKLargerThanDataset(t *testing.T) {
	s := setup{
		name: "tiny",
		objs: vectorSet(10, 3, 5),
		dist: metric.L2(3),
		opts: Options{Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2},
	}
	tree := buildSetup(t, s)
	got, err := tree.KNN(s.objs[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("k>n returned %d results, want 10", len(got))
	}
	if got, _ := tree.KNN(s.objs[0], 0); got != nil {
		t.Errorf("k=0 returned %d results", len(got))
	}
}

func TestDuplicateObjectsIndexedAndFound(t *testing.T) {
	objs := vectorSet(50, 3, 6)
	// Clone object 0 under fresh ids: same coordinates, distinct identity.
	base := objs[0].(*metric.Vector)
	for i := 0; i < 5; i++ {
		objs = append(objs, metric.NewVector(uint64(1000+i), append([]float64(nil), base.Coords...)))
	}
	tree, err := Build(objs, Options{
		Distance: metric.L2(3), Codec: metric.VectorCodec{Dim: 3}, NumPivots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.RangeQuery(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 6 {
		t.Errorf("r=0 around duplicated object: %d results, want >= 6", len(got))
	}
}

func TestInsertDeleteThenQuery(t *testing.T) {
	objs := vectorSet(200, 4, 7)
	half := objs[:100]
	tree, err := Build(half, Options{
		Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs[100:] {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 200 {
		t.Fatalf("Len = %d", tree.Len())
	}
	dist := metric.L2(4)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		q := objs[rng.Intn(len(objs))]
		r := 0.25
		got, err := tree.RangeQuery(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := bfRange(objs, q, r, dist)
		if len(resultIDs(got)) != len(want) {
			t.Fatalf("after inserts: got %d, want %d", len(got), len(want))
		}
	}
	// Delete a quarter and re-check.
	deleted := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		if err := tree.Delete(objs[i]); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
		deleted[objs[i].ID()] = true
	}
	remaining := objs[50:]
	for trial := 0; trial < 10; trial++ {
		q := remaining[rng.Intn(len(remaining))]
		got, err := tree.RangeQuery(q, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		want := bfRange(remaining, q, 0.25, dist)
		gotIDs := resultIDs(got)
		if len(gotIDs) != len(want) {
			t.Fatalf("after deletes: got %d, want %d", len(gotIDs), len(want))
		}
		for id := range gotIDs {
			if deleted[id] {
				t.Fatalf("deleted object %d still returned", id)
			}
		}
	}
	if err := tree.Delete(objs[0]); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v, want ErrNotFound", err)
	}
}

func TestGet(t *testing.T) {
	objs := wordSet(100, 8)
	tree, err := Build(objs, Options{
		Distance: metric.EditDistance{MaxLen: 24}, Codec: metric.StrCodec{}, NumPivots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.Get(objs[42])
	if err != nil {
		t.Fatal(err)
	}
	if got.(*metric.Str).S != objs[42].(*metric.Str).S {
		t.Error("Get returned a different object")
	}
	if _, err := tree.Get(metric.NewStr(99999, "absent-word")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing = %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	s := setups()[0]
	tree := buildSetup(t, s)
	tree.ResetStats()
	if st := tree.TakeStats(); st.PageAccesses != 0 || st.DistanceComputations != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	if _, err := tree.KNN(s.objs[0], 8); err != nil {
		t.Fatal(err)
	}
	st := tree.TakeStats()
	if st.PageAccesses == 0 {
		t.Error("kNN performed no page accesses")
	}
	if st.DistanceComputations < int64(len(tree.Pivots())) {
		t.Errorf("kNN compdists %d < |P|", st.DistanceComputations)
	}
	// compdists must be far below a full scan thanks to pruning.
	if st.DistanceComputations >= int64(len(s.objs)) {
		t.Errorf("kNN compdists %d >= |O| = %d: index prunes nothing", st.DistanceComputations, len(s.objs))
	}
}

func TestBuildValidation(t *testing.T) {
	objs := vectorSet(10, 3, 9)
	if _, err := Build(objs, Options{Codec: metric.VectorCodec{Dim: 3}}); err == nil {
		t.Error("missing Distance accepted")
	}
	if _, err := Build(objs, Options{Distance: metric.L2(3)}); err == nil {
		t.Error("missing Codec accepted")
	}
	if _, err := Build(nil, Options{Distance: metric.L2(3), Codec: metric.VectorCodec{Dim: 3}}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestManyPivotsBitBudget(t *testing.T) {
	// 9 pivots force a 7-bit-per-dimension grid; everything must still be
	// exact (pruning weakens, correctness holds).
	objs := vectorSet(200, 8, 10)
	dist := metric.L2(8)
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 8}, NumPivots: 9})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Bits()*9 > 64 {
		t.Fatalf("bit budget exceeded: %d*9", tree.Bits())
	}
	q := objs[3]
	got, err := tree.RangeQuery(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := bfRange(objs, q, 0.3, dist)
	if len(resultIDs(got)) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}

func TestDeltaAffectsCompdists(t *testing.T) {
	// Fig. 11: a coarser δ (larger cells) causes more collisions and thus
	// more distance computations.
	objs := vectorSet(600, 6, 12)
	dist := metric.L2(6)
	count := func(deltaFrac float64) int64 {
		tree, err := Build(objs, Options{
			Distance: dist, Codec: metric.VectorCodec{Dim: 6},
			NumPivots: 3, DeltaFrac: deltaFrac, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for i := 0; i < 20; i++ {
			tree.ResetStats()
			if _, err := tree.KNN(objs[i], 8); err != nil {
				t.Fatal(err)
			}
			total += tree.TakeStats().DistanceComputations
		}
		return total
	}
	fine := count(0.002)
	coarse := count(0.2)
	if fine >= coarse {
		t.Errorf("fine δ compdists %d should be below coarse δ %d", fine, coarse)
	}
}

func ExampleTree_RangeQuery() {
	words := []string{"citrate", "defoliates", "defoliation", "defoliated", "defoliating", "defoliate"}
	objs := make([]metric.Object, len(words))
	for i, w := range words {
		objs[i] = metric.NewStr(uint64(i), w)
	}
	tree, err := Build(objs, Options{
		Distance:  metric.EditDistance{MaxLen: 16},
		Codec:     metric.StrCodec{},
		NumPivots: 2,
	})
	if err != nil {
		panic(err)
	}
	res, err := tree.RangeQuery(metric.NewStr(100, "defoliate"), 1)
	if err != nil {
		panic(err)
	}
	var out []string
	for _, r := range res {
		out = append(out, r.Object.(*metric.Str).S)
	}
	sort.Strings(out)
	fmt.Println(out)
	// Output: [defoliate defoliated defoliates]
}

func TestBuildRejectsDistancesBeyondDPlus(t *testing.T) {
	// A misconfigured metric (MaxLen below the longest string) silently
	// breaks the lower-bound property; indexing must fail loudly instead.
	objs := []metric.Object{
		metric.NewStr(0, "short"),
		metric.NewStr(1, "a-string-much-longer-than-maxlen-allows"),
		metric.NewStr(2, "tiny"),
	}
	_, err := Build(objs, Options{
		Distance:  metric.EditDistance{MaxLen: 8}, // longest string is 39 chars
		Codec:     metric.StrCodec{},
		NumPivots: 2,
	})
	if err == nil {
		t.Fatal("Build accepted objects beyond the metric's MaxDistance")
	}
	// Insert path enforces the same guard.
	tree, err := Build(objs[:1], Options{
		Distance:  metric.EditDistance{MaxLen: 8},
		Codec:     metric.StrCodec{},
		NumPivots: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(objs[1]); err == nil {
		t.Fatal("Insert accepted an object beyond the metric's MaxDistance")
	}
}
