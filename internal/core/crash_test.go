package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// TestCrashDuringSaveAtomic simulates a crash at every interesting point of
// the persistence sequence by snapshotting the directory's visible states —
// old meta, arbitrary byte-truncations of the new meta, and the completed
// rename — and requires that each state either opens as a correct index (old
// or new) or fails with a detected error. A state that opens and serves
// wrong answers is the one outcome that must never occur.
func TestCrashDuringSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(300, 5, 101)
	dist := metric.L2(5)
	codec := metric.VectorCodec{Dim: 5}
	tree := buildDir(t, dir, objs, dist)
	q := objs[4]
	const radius = 0.45
	oldAnswer := bfRange(objs, q, radius, dist)

	// Mutate to version 2 and persist it, keeping the new meta bytes so the
	// harness can replay partial writes of them.
	extras := vectorSet(40, 5, 102)
	allObjs := append([]metric.Object(nil), objs...)
	for i, o := range extras {
		v := o.(*metric.Vector)
		v.Id = uint64(100000 + i)
		if err := tree.Insert(v); err != nil {
			t.Fatal(err)
		}
		allObjs = append(allObjs, v)
	}
	if err := tree.SaveAtomic(dir); err != nil {
		t.Fatal(err)
	}
	newAnswer := bfRange(allObjs, q, radius, dist)
	newMeta, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	opts := LoadOptions{Distance: dist, Codec: codec}
	metaPath := filepath.Join(dir, MetaFile)

	// checkState loads the directory in its current shape and classifies the
	// outcome: a clean detected failure, the old index, or the new index.
	checkState := func(t *testing.T, label string) {
		re, err := Load(dir, opts)
		if err != nil {
			return // crash state detected at open: acceptable
		}
		defer re.Close()
		res, qerr := re.RangeQuery(q, radius)
		if qerr != nil {
			// Detected mid-query (partial results): acceptable, but the
			// partial answers must still be genuine.
			for _, r := range res {
				if !oldAnswer[r.Object.ID()] && !newAnswer[r.Object.ID()] {
					t.Fatalf("%s: fabricated result %d", label, r.Object.ID())
				}
			}
			return
		}
		got := resultIDs(res)
		if !sameIDSet(got, oldAnswer) && !sameIDSet(got, newAnswer) {
			t.Fatalf("%s: opened into a third state: %d results (old %d, new %d)",
				label, len(got), len(oldAnswer), len(newAnswer))
		}
	}

	// State A: the completed save.
	checkState(t, "new-meta")

	// States B: randomized truncations of the meta file, as if the writer
	// had not been atomic or the disk tore the file.
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		k := rng.Intn(len(newMeta))
		if err := os.WriteFile(metaPath, newMeta[:k], 0o644); err != nil {
			t.Fatal(err)
		}
		// A truncated meta must never pass the footer check.
		if _, err := Load(dir, opts); !errors.Is(err, ErrCorruptMeta) {
			t.Fatalf("truncation at %d/%d bytes: Load err = %v, want ErrCorruptMeta", k, len(newMeta), err)
		}
	}

	// States C: truncation plus trailing garbage of the right length, so the
	// footer framing is present but the checksum cannot match.
	for trial := 0; trial < 10; trial++ {
		bad := append([]byte(nil), newMeta...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		if err := os.WriteFile(metaPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		checkState(t, "flipped-meta")
	}

	// State D: the stale tmp file a crash leaves behind must not confuse a
	// subsequent load of the restored meta.
	if err := os.WriteFile(filepath.Join(dir, metaTmpFile), newMeta[:len(newMeta)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(metaPath, newMeta, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Load(dir, opts)
	if err != nil {
		t.Fatalf("restored meta with stale tmp: %v", err)
	}
	res, err := re.RangeQuery(q, radius)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDSet(resultIDs(res), newAnswer) {
		t.Fatal("restored index returned wrong answers")
	}
	re.Close()
}

// TestCrashOldMetaNewPages covers the crash window after page writes reach
// disk but before the new meta is published: the old meta's checksums no
// longer match the mutated pages, so the mismatch must surface as an error —
// stale-but-consistent answers or detected corruption, never fabrications.
func TestCrashOldMetaNewPages(t *testing.T) {
	dir := t.TempDir()
	objs := vectorSet(250, 5, 111)
	dist := metric.L2(5)
	tree := buildDir(t, dir, objs, dist)
	oldMeta, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		t.Fatal(err)
	}
	q := objs[1]
	oldAnswer := bfRange(objs, q, 0.45, dist)

	// Mutate and sync the pages, then "crash" by restoring the old meta
	// instead of publishing the new one.
	extras := vectorSet(30, 5, 112)
	allObjs := append([]metric.Object(nil), objs...)
	for i, o := range extras {
		v := o.(*metric.Vector)
		v.Id = uint64(200000 + i)
		if err := tree.Insert(v); err != nil {
			t.Fatal(err)
		}
		allObjs = append(allObjs, v)
	}
	if err := tree.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, MetaFile), oldMeta, 0o644); err != nil {
		t.Fatal(err)
	}

	newAnswer := bfRange(allObjs, q, 0.45, dist)
	re, err := Load(dir, LoadOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 5}})
	if err != nil {
		return // detected at open: acceptable
	}
	defer re.Close()
	res, qerr := re.RangeQuery(q, 0.45)
	for _, r := range res {
		if !oldAnswer[r.Object.ID()] && !newAnswer[r.Object.ID()] {
			t.Fatalf("fabricated result %d", r.Object.ID())
		}
	}
	if qerr == nil && !sameIDSet(resultIDs(res), oldAnswer) && !sameIDSet(resultIDs(res), newAnswer) {
		t.Fatal("old-meta/new-pages state served a third answer set without error")
	}
	// The inconsistency must at least be visible to an explicit audit.
	if qerr == nil {
		if verr := re.VerifyIntegrity(); verr == nil {
			// Only acceptable if the index genuinely equals one version.
			if !sameIDSet(resultIDs(res), oldAnswer) && !sameIDSet(resultIDs(res), newAnswer) {
				t.Fatal("verify passed on an inconsistent index")
			}
		} else if !errors.Is(verr, page.ErrCorrupt) {
			t.Fatalf("verify err = %v, want ErrCorrupt", verr)
		}
	}
}

func sameIDSet(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// TestTruncatedPageFiles exercises torn page files: cutting bytes off the
// end of either store must never produce silent wrong answers.
func TestTruncatedPageFiles(t *testing.T) {
	for _, victim := range []string{IndexPagesFile, DataPagesFile} {
		t.Run(victim, func(t *testing.T) {
			dir := t.TempDir()
			objs := vectorSet(300, 5, 121)
			dist := metric.L2(5)
			tree := buildDir(t, dir, objs, dist)
			q := objs[3]
			want := bfRange(objs, q, 0.45, dist)
			if err := tree.Close(); err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(dir, victim)
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()/2); err != nil {
				t.Fatal(err)
			}

			re, err := Load(dir, LoadOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 5}})
			if err != nil {
				return // detected at open
			}
			defer re.Close()
			res, qerr := re.RangeQuery(q, 0.45)
			if qerr == nil && !sameIDSet(resultIDs(res), want) {
				t.Fatal("truncated page file served wrong answers without error")
			}
			for _, r := range res {
				if !want[r.Object.ID()] {
					t.Fatalf("fabricated result %d", r.Object.ID())
				}
			}
		})
	}
}
