package core

import (
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/recall"
)

// resultIDList projects a result list to its object IDs, the form the shared
// recall helper consumes.
func resultIDList(res []Result) []uint64 {
	ids := make([]uint64, len(res))
	for i, r := range res {
		ids[i] = r.Object.ID()
	}
	return ids
}

func TestKNNApproxFallsBackToExact(t *testing.T) {
	objs := vectorSet(300, 4, 95)
	dist := metric.L2(4)
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := tree.KNN(objs[0], 8)
	if err != nil {
		t.Fatal(err)
	}
	viaZero, err := tree.KNNApprox(objs[0], 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaZero) != len(exact) {
		t.Fatalf("budget<=0 not exact: %d vs %d", len(viaZero), len(exact))
	}
	for i := range exact {
		if exact[i].Dist != viaZero[i].Dist {
			t.Fatalf("budget<=0 differs at %d", i)
		}
	}
	// A huge budget is also exact.
	viaBig, err := tree.KNNApprox(objs[0], 8, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if exact[i].Dist != viaBig[i].Dist {
			t.Fatalf("huge budget differs at %d", i)
		}
	}
}

func TestKNNApproxRecallAndBudget(t *testing.T) {
	objs := vectorSet(2000, 6, 96)
	dist := metric.L2(6)
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 6}, NumPivots: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	// Exact baselines are computed once and shared by every budget level,
	// scored through the one recall implementation (internal/recall).
	exactIDs := make([][]uint64, 20)
	for qi := range exactIDs {
		exact, err := tree.KNN(objs[qi*83], k)
		if err != nil {
			t.Fatal(err)
		}
		exactIDs[qi] = resultIDList(exact)
	}
	recallAt := func(budget int) (r float64, cd int64) {
		recalls := make([]float64, 0, len(exactIDs))
		var totalCD int64
		for qi := range exactIDs {
			tree.ResetStats()
			approx, err := tree.KNNApprox(objs[qi*83], k, budget)
			if err != nil {
				t.Fatal(err)
			}
			totalCD += tree.TakeStats().DistanceComputations
			recalls = append(recalls, recall.AtK(exactIDs[qi], resultIDList(approx), k))
		}
		return recall.Mean(recalls), totalCD
	}
	rSmall, cdSmall := recallAt(2 * k)
	rBig, cdBig := recallAt(20 * k)
	if rBig < 0.95 {
		t.Errorf("recall at generous budget = %.2f", rBig)
	}
	if rSmall > rBig+1e-9 {
		t.Errorf("recall did not improve with budget: %.2f vs %.2f", rSmall, rBig)
	}
	if rSmall < 0.4 {
		t.Errorf("recall at tight budget = %.2f — MIND ordering should find most neighbors early", rSmall)
	}
	if cdSmall >= cdBig {
		t.Errorf("tight budget did not save computations: %d vs %d", cdSmall, cdBig)
	}
}

func TestKNNApproxNeverExceedsBudget(t *testing.T) {
	objs := vectorSet(800, 5, 97)
	dist := metric.L2(5)
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 5}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 5, 25} {
		tree.ResetStats()
		if _, err := tree.KNNApprox(objs[3], 10, budget); err != nil {
			t.Fatal(err)
		}
		cd := tree.TakeStats().DistanceComputations
		// |P| mapping computations plus at most budget verifications.
		if max := int64(len(tree.Pivots()) + budget); cd > max {
			t.Errorf("budget %d: %d compdists > %d", budget, cd, max)
		}
	}
}
