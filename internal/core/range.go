package core

import (
	"context"
	"sort"

	"spbtree/internal/bptree"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// RangeQuery answers RQ(q, O, r) = {o ∈ O | d(q, o) ≤ r} with the paper's
// Algorithm 1 (RQA): nodes whose MBBs miss the mapped range region RR(q, r)
// are pruned (Lemma 1); leaves fully inside RR skip the per-entry region
// test; sparse intersections are resolved by enumerating the region's SFC
// values instead of decoding every entry; and Lemma 2 proves some answers
// without computing their distances.
//
// On a storage or corruption error the verified answers found so far are
// returned (sorted) alongside the non-nil error — objects are never
// silently dropped, and the error tells the caller the set is incomplete.
//
// Use RangeSearchWithStats to additionally observe the query's per-stage
// QueryStats, and RangeSearchCtx for deadline- and cancellation-aware
// execution.
func (t *Tree) RangeQuery(q metric.Object, r float64) ([]Result, error) {
	return t.RangeSearchCtx(context.Background(), q, r)
}

// rangeQuery is Algorithm 1, accumulating per-stage counts into qs. ctx is
// checked at every node visit and every verification; on cancellation the
// answers verified so far are returned with a typed ErrCanceled.
//
// The traversal prunes serially; verification goes through a rangeSink —
// inline when the tree runs serially, a worker pool otherwise (exec.go). The
// candidate set does not depend on the answers, so both modes verify exactly
// the same objects.
func (t *Tree) rangeQuery(ctx context.Context, q metric.Object, r float64, qs *QueryStats) ([]Result, error) {
	if r < 0 {
		return nil, nil
	}
	n := len(t.pivots)
	st := qs.stageStart()
	qvec := make([]float64, n)
	t.phi(q, qvec)
	qs.Compdists += int64(n)

	rrLo := make(sfc.Point, n)
	rrHi := make(sfc.Point, n)
	t.rangeRegion(qvec, r, rrLo, rrHi)
	qs.stageAdd(&qs.PlanTime, st)
	if sfc.BoxVolume(rrLo, rrHi) == 0 {
		// An empty region excludes buffered inserts identically (their cells
		// are region-tested like any entry), so the delta needs no pass.
		return nil, nil
	}
	var results []Result
	var err error
	if root, ok := t.bpt.Root(); ok {
		var sink rangeSink
		if slots := t.planRangeSlots(qvec, r, qs); slots > 0 {
			sink = t.newRangeExec(ctx, q, qvec, r, qs, slots)
		} else {
			sink = &rangeSerial{t: t, q: q, qvec: qvec, r: r, qs: qs}
		}
		travErr := t.rangeTraverse(ctx, root, rrLo, rrHi, sink, qs)
		results, err = sink.finish()
		if err == nil && travErr != nil && travErr != errStopTraversal {
			err = travErr
		}
	}
	// Merge the durable write buffer: buffered inserts run the same
	// region-test / Lemma 2 / verify pipeline, so the combined answer — and
	// its compdists — is identical to a tree rebuilt over the live set
	// (tombstoned base objects were already skipped at verification).
	if err == nil && t.deltaActive() {
		var dres []Result
		dres, err = t.rangeDelta(ctx, q, qvec, r, rrLo, rrHi, qs)
		results = append(results, dres...)
	}
	sortByID(results)
	return results, err
}

// rangeDelta runs Algorithm 1's candidate pipeline over the buffered
// inserts, in ascending ID order: per-entry Lemma 1 region test on the
// quantized cell, Lemma 2 computation-free inclusion, exact verification
// for the rest. Exactly what the entries would cost had they been in the
// base tree — only the traversal-side diagnostics (node reads, merge skips)
// differ.
func (t *Tree) rangeDelta(ctx context.Context, q metric.Object, qvec []float64, r float64, rrLo, rrHi sfc.Point, qs *QueryStats) ([]Result, error) {
	entries := t.deltaEntriesSorted()
	if len(entries) == 0 {
		return nil, nil
	}
	cell := make(sfc.Point, len(t.pivots))
	var out []Result
	for _, e := range entries {
		if err := ctxDone(ctx); err != nil {
			return out, err
		}
		qs.EntriesScanned++
		t.curve.Decode(e.key, cell)
		if !sfc.Contains(rrLo, rrHi, cell) {
			qs.EntriesPruned++
			continue // Lemma 1
		}
		qs.DeltaCandidates++
		if !t.noLemma2 {
			if ub, ok := t.lemma2Bound(qvec, cell, r); ok {
				qs.Lemma2Included++
				out = append(out, Result{Object: e.obj, Dist: ub, Exact: false})
				continue
			}
		}
		st := qs.stageStart()
		d, within := t.verifyDist(q, e.obj, r)
		qs.Verified++
		qs.Compdists++
		if within {
			out = append(out, Result{Object: e.obj, Dist: d, Exact: true})
		} else {
			qs.Discarded++
			if t.bounded {
				qs.Abandoned++
			}
		}
		qs.stageAdd(&qs.VerifyTime, st)
	}
	return out, nil
}

// rangeTraverse walks the B+-tree, pruning with Lemma 1 and the SFC merge
// strategies, and hands surviving leaf entries to the sink. A corrupt page
// or cancellation stops the walk; the answers verified so far survive in the
// sink.
func (t *Tree) rangeTraverse(ctx context.Context, root bptree.NodeRef, rrLo, rrHi sfc.Point, sink rangeSink, qs *QueryStats) error {
	n := len(t.pivots)
	boxLo := make(sfc.Point, n)
	boxHi := make(sfc.Point, n)
	cell := make(sfc.Point, n)
	iLo := make(sfc.Point, n)
	iHi := make(sfc.Point, n)

	stack := []bptree.NodeRef{root}
	for len(stack) > 0 {
		if err := ctxDone(ctx); err != nil {
			return err
		}
		ref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.curve.Decode(ref.BoxLo, boxLo)
		t.curve.Decode(ref.BoxHi, boxHi)
		if !sfc.Intersects(rrLo, rrHi, boxLo, boxHi) {
			qs.NodesPruned++
			continue // Lemma 1
		}
		node, err := t.bpt.ReadNode(ref.Page)
		if err != nil {
			return err
		}
		qs.NodesRead++
		if !node.Leaf {
			for _, c := range node.Children {
				t.curve.Decode(c.BoxLo, boxLo)
				t.curve.Decode(c.BoxHi, boxHi)
				if sfc.Intersects(rrLo, rrHi, boxLo, boxHi) {
					stack = append(stack, c)
				} else {
					qs.NodesPruned++
				}
			}
			continue
		}

		// Leaf handling, Algorithm 1 lines 11-23. boxLo/boxHi still hold
		// this leaf's MBB — the non-leaf path above continues the loop.
		contained := sfc.Contains(rrLo, rrHi, boxLo) && sfc.Contains(rrLo, rrHi, boxHi)
		switch {
		case contained:
			// MBB(N) ⊆ RR: every entry's region test is implied.
			for i := range node.Keys {
				if err := t.scanRQ(ctx, sink, node.Keys[i], node.Vals[i], false, cell, rrLo, rrHi, qs); err != nil {
					return err
				}
			}
		default:
			merged := false
			if !t.noSFCMerge && sfc.IntersectBox(rrLo, rrHi, boxLo, boxHi, iLo, iHi) {
				if t.kind == sfc.ZOrder {
					// Z-order leaves support BIGMIN skip scans (Tropf &
					// Herzog): jump directly to the next entry key inside
					// the region instead of enumerating cells — the
					// UB/ZB-tree technique the paper cites as related work.
					merged = true
					ei := 0
					for ei < len(node.Keys) {
						z, ok := sfc.NextInBox(t.curve, iLo, iHi, node.Keys[ei])
						if !ok {
							qs.EntriesSkipped += int64(len(node.Keys) - ei)
							break
						}
						if node.Keys[ei] < z {
							jump := sort.Search(len(node.Keys)-ei, func(j int) bool { return node.Keys[ei+j] >= z })
							qs.EntriesSkipped += int64(jump)
							ei += jump
							continue
						}
						if err := t.scanRQ(ctx, sink, node.Keys[ei], node.Vals[ei], false, cell, rrLo, rrHi, qs); err != nil {
							return err
						}
						ei++
					}
				} else if vol := sfc.BoxVolume(iLo, iHi); vol < uint64(len(node.Keys)) {
					// Hilbert: fewer cells than entries, so enumerate the
					// region's SFC values and merge with the sorted leaf
					// entries — no entry outside the region is ever decoded
					// (Algorithm 1, lines 14-20).
					keys := sfc.KeysInBox(t.curve, iLo, iHi, len(node.Keys))
					if keys != nil {
						merged = true
						ki, ei := 0, 0
						for ki < len(keys) && ei < len(node.Keys) {
							switch {
							case node.Keys[ei] == keys[ki]:
								if err := t.scanRQ(ctx, sink, node.Keys[ei], node.Vals[ei], false, cell, rrLo, rrHi, qs); err != nil {
									return err
								}
								ei++
							case node.Keys[ei] > keys[ki]:
								ki++
							default:
								qs.EntriesSkipped++
								ei++
							}
						}
						qs.EntriesSkipped += int64(len(node.Keys) - ei)
					}
				}
			}
			if !merged {
				for i := range node.Keys {
					if err := t.scanRQ(ctx, sink, node.Keys[i], node.Vals[i], true, cell, rrLo, rrHi, qs); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// sortByID orders results by object id for deterministic output.
func sortByID(results []Result) {
	sort.Slice(results, func(i, j int) bool { return results[i].Object.ID() < results[j].Object.ID() })
}

// scanRQ is the traversal side of VerifyRQ (Algorithm 1): cancellation
// check, scan count, and the optional Lemma 1 region re-check; the surviving
// candidate goes to the sink, which verifies it inline (serial) or ships it
// to the verifier pool. The ctx check here gives verification-batch
// granularity: a canceled query stops before the next RAF page read and
// distance computation.
func (t *Tree) scanRQ(ctx context.Context, sink rangeSink, key, val uint64, checkRegion bool, cell, rrLo, rrHi sfc.Point, qs *QueryStats) error {
	if err := ctxDone(ctx); err != nil {
		return err
	}
	qs.EntriesScanned++
	t.curve.Decode(key, cell)
	if checkRegion && !sfc.Contains(rrLo, rrHi, cell) {
		qs.EntriesPruned++
		return nil // Lemma 1
	}
	return sink.add(key, val, cell)
}
