package core

import (
	"context"
	"sort"

	"spbtree/internal/bptree"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// RangeQuery answers RQ(q, O, r) = {o ∈ O | d(q, o) ≤ r} with the paper's
// Algorithm 1 (RQA): nodes whose MBBs miss the mapped range region RR(q, r)
// are pruned (Lemma 1); leaves fully inside RR skip the per-entry region
// test; sparse intersections are resolved by enumerating the region's SFC
// values instead of decoding every entry; and Lemma 2 proves some answers
// without computing their distances.
//
// On a storage or corruption error the verified answers found so far are
// returned (sorted) alongside the non-nil error — objects are never
// silently dropped, and the error tells the caller the set is incomplete.
//
// Use RangeSearchWithStats to additionally observe the query's per-stage
// QueryStats, and RangeSearchCtx for deadline- and cancellation-aware
// execution.
func (t *Tree) RangeQuery(q metric.Object, r float64) ([]Result, error) {
	return t.RangeSearchCtx(context.Background(), q, r)
}

// rangeQuery is Algorithm 1, accumulating per-stage counts into qs. ctx is
// checked at every node visit and every verification; on cancellation the
// answers verified so far are returned with a typed ErrCanceled.
func (t *Tree) rangeQuery(ctx context.Context, q metric.Object, r float64, qs *QueryStats) ([]Result, error) {
	if r < 0 {
		return nil, nil
	}
	n := len(t.pivots)
	st := qs.stageStart()
	qvec := make([]float64, n)
	t.phi(q, qvec)
	qs.Compdists += int64(n)

	rrLo := make(sfc.Point, n)
	rrHi := make(sfc.Point, n)
	t.rangeRegion(qvec, r, rrLo, rrHi)
	qs.stageAdd(&qs.PlanTime, st)
	if sfc.BoxVolume(rrLo, rrHi) == 0 {
		return nil, nil
	}

	var results []Result
	// fail returns the answers verified so far together with the error, so
	// a corrupt page degrades the query to a partial result instead of
	// silently dropping objects.
	fail := func(err error) ([]Result, error) {
		sortByID(results)
		return results, err
	}
	root, ok := t.bpt.Root()
	if !ok {
		return nil, nil
	}

	boxLo := make(sfc.Point, n)
	boxHi := make(sfc.Point, n)
	cell := make(sfc.Point, n)
	iLo := make(sfc.Point, n)
	iHi := make(sfc.Point, n)

	stack := []bptree.NodeRef{root}
	for len(stack) > 0 {
		if err := ctxDone(ctx); err != nil {
			return fail(err)
		}
		ref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.curve.Decode(ref.BoxLo, boxLo)
		t.curve.Decode(ref.BoxHi, boxHi)
		if !sfc.Intersects(rrLo, rrHi, boxLo, boxHi) {
			qs.NodesPruned++
			continue // Lemma 1
		}
		node, err := t.bpt.ReadNode(ref.Page)
		if err != nil {
			return fail(err)
		}
		qs.NodesRead++
		if !node.Leaf {
			for _, c := range node.Children {
				t.curve.Decode(c.BoxLo, boxLo)
				t.curve.Decode(c.BoxHi, boxHi)
				if sfc.Intersects(rrLo, rrHi, boxLo, boxHi) {
					stack = append(stack, c)
				} else {
					qs.NodesPruned++
				}
			}
			continue
		}

		// Leaf handling, Algorithm 1 lines 11-23.
		t.curve.Decode(ref.BoxLo, boxLo)
		t.curve.Decode(ref.BoxHi, boxHi)
		contained := sfc.Contains(rrLo, rrHi, boxLo) && sfc.Contains(rrLo, rrHi, boxHi)
		switch {
		case contained:
			// MBB(N) ⊆ RR: every entry's region test is implied.
			for i := range node.Keys {
				res, err := t.verifyRQ(ctx, q, qvec, node.Keys[i], node.Vals[i], r, false, cell, rrLo, rrHi, qs)
				if err != nil {
					return fail(err)
				}
				if res != nil {
					results = append(results, *res)
				}
			}
		default:
			merged := false
			if !t.noSFCMerge && sfc.IntersectBox(rrLo, rrHi, boxLo, boxHi, iLo, iHi) {
				if t.kind == sfc.ZOrder {
					// Z-order leaves support BIGMIN skip scans (Tropf &
					// Herzog): jump directly to the next entry key inside
					// the region instead of enumerating cells — the
					// UB/ZB-tree technique the paper cites as related work.
					merged = true
					ei := 0
					for ei < len(node.Keys) {
						z, ok := sfc.NextInBox(t.curve, iLo, iHi, node.Keys[ei])
						if !ok {
							qs.EntriesSkipped += int64(len(node.Keys) - ei)
							break
						}
						if node.Keys[ei] < z {
							jump := sort.Search(len(node.Keys)-ei, func(j int) bool { return node.Keys[ei+j] >= z })
							qs.EntriesSkipped += int64(jump)
							ei += jump
							continue
						}
						res, err := t.verifyRQ(ctx, q, qvec, node.Keys[ei], node.Vals[ei], r, false, cell, rrLo, rrHi, qs)
						if err != nil {
							return fail(err)
						}
						if res != nil {
							results = append(results, *res)
						}
						ei++
					}
				} else if vol := sfc.BoxVolume(iLo, iHi); vol < uint64(len(node.Keys)) {
					// Hilbert: fewer cells than entries, so enumerate the
					// region's SFC values and merge with the sorted leaf
					// entries — no entry outside the region is ever decoded
					// (Algorithm 1, lines 14-20).
					keys := sfc.KeysInBox(t.curve, iLo, iHi, len(node.Keys))
					if keys != nil {
						merged = true
						ki, ei := 0, 0
						for ki < len(keys) && ei < len(node.Keys) {
							switch {
							case node.Keys[ei] == keys[ki]:
								res, err := t.verifyRQ(ctx, q, qvec, node.Keys[ei], node.Vals[ei], r, false, cell, rrLo, rrHi, qs)
								if err != nil {
									return fail(err)
								}
								if res != nil {
									results = append(results, *res)
								}
								ei++
							case node.Keys[ei] > keys[ki]:
								ki++
							default:
								qs.EntriesSkipped++
								ei++
							}
						}
						qs.EntriesSkipped += int64(len(node.Keys) - ei)
					}
				}
			}
			if !merged {
				for i := range node.Keys {
					res, err := t.verifyRQ(ctx, q, qvec, node.Keys[i], node.Vals[i], r, true, cell, rrLo, rrHi, qs)
					if err != nil {
						return fail(err)
					}
					if res != nil {
						results = append(results, *res)
					}
				}
			}
		}
	}

	sortByID(results)
	return results, nil
}

// sortByID orders results by object id for deterministic output.
func sortByID(results []Result) {
	sort.Slice(results, func(i, j int) bool { return results[i].Object.ID() < results[j].Object.ID() })
}

// verifyRQ is the VerifyRQ function of Algorithm 1: optionally re-check the
// region containment (Lemma 1), try the computation-free inclusion of
// Lemma 2, and otherwise fetch the object and compute its distance. The ctx
// check here gives verification-batch granularity: a canceled query stops
// before the next RAF page read and distance computation.
func (t *Tree) verifyRQ(ctx context.Context, q metric.Object, qvec []float64, key, val uint64, r float64, checkRegion bool, cell, rrLo, rrHi sfc.Point, qs *QueryStats) (*Result, error) {
	if err := ctxDone(ctx); err != nil {
		return nil, err
	}
	qs.EntriesScanned++
	t.curve.Decode(key, cell)
	if checkRegion && !sfc.Contains(rrLo, rrHi, cell) {
		qs.EntriesPruned++
		return nil, nil // Lemma 1
	}
	if !t.noLemma2 {
		if ub, ok := t.lemma2Bound(qvec, cell, r); ok {
			st := qs.stageStart()
			obj, err := t.raf.Read(val)
			qs.stageAdd(&qs.VerifyTime, st)
			if err != nil {
				return nil, err
			}
			qs.Lemma2Included++
			return &Result{Object: obj, Dist: ub, Exact: false}, nil
		}
	}
	st := qs.stageStart()
	obj, err := t.raf.Read(val)
	if err != nil {
		qs.stageAdd(&qs.VerifyTime, st)
		return nil, err
	}
	d := t.dist.Distance(q, obj)
	qs.stageAdd(&qs.VerifyTime, st)
	qs.Verified++
	qs.Compdists++
	if d <= r {
		return &Result{Object: obj, Dist: d, Exact: true}, nil
	}
	qs.Discarded++
	return nil, nil
}
