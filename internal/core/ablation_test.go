package core

import (
	"testing"

	"spbtree/internal/metric"
)

// TestAblationsPreserveResults: the ablation flags change costs, never
// answers.
func TestAblationsPreserveResults(t *testing.T) {
	objs := wordSet(400, 71)
	dist := metric.EditDistance{MaxLen: 24}
	base, err := Build(objs, Options{Distance: dist, Codec: metric.StrCodec{}, NumPivots: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ablated, err := Build(objs, Options{
		Distance: dist, Codec: metric.StrCodec{}, NumPivots: 3, Seed: 4,
		DisableLemma2: true, DisableSFCMerge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{1, 2, 4} {
		for qi := 0; qi < 10; qi++ {
			q := objs[qi*31]
			a, err := base.RangeQuery(q, r)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ablated.RangeQuery(q, r)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("r=%v q=%d: %d vs %d results", r, qi, len(a), len(b))
			}
			for i := range a {
				if a[i].Object.ID() != b[i].Object.ID() {
					t.Fatalf("r=%v: result sets differ", r)
				}
			}
		}
	}
}

// TestLemma2SavesComputations: with the lemma on, fewer distances are
// computed for the same query (discrete metrics benefit most — the lemma is
// exact there).
func TestLemma2SavesComputations(t *testing.T) {
	objs := wordSet(600, 72)
	dist := metric.EditDistance{MaxLen: 24}
	count := func(disable bool) int64 {
		tree, err := Build(objs, Options{
			Distance: dist, Codec: metric.StrCodec{}, NumPivots: 3, Seed: 4,
			DisableLemma2: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for qi := 0; qi < 20; qi++ {
			tree.ResetStats()
			// Large radius: many answers, so Lemma 2 has chances to fire.
			if _, err := tree.RangeQuery(objs[qi*17], 8); err != nil {
				t.Fatal(err)
			}
			total += tree.TakeStats().DistanceComputations
		}
		return total
	}
	withLemma := count(false)
	withoutLemma := count(true)
	if withLemma >= withoutLemma {
		t.Errorf("Lemma 2 saved nothing: %d with vs %d without", withLemma, withoutLemma)
	}
}
