package core

import (
	"context"
	"math"
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/sfc"
)

// KNN answers kNN(q, k) with the paper's Algorithm 2 (NNA): a best-first
// traversal over B+-tree entries ordered by their minimum mapped-space
// distance MIND to q, pruning entries with MIND > curND_k (Lemma 3) and
// terminating as soon as the heap's minimum crosses that bound. The pruning
// comparison is strict, so candidates tied with the bound are still verified
// and the answer is the canonical (distance, ID) top-k — independent of the
// traversal strategy, the quantization and any prior bound seeding, which is
// what makes the forest's staged shard scatter (DESIGN.md §15) byte-identical
// to a full scatter. With the Greedy strategy (Table 5), reaching a leaf
// verifies all of its qualifying objects at once, so no RAF page is read
// twice.
//
// On a storage or corruption error the candidates verified so far are
// returned (sorted by distance) alongside the non-nil error, so callers get
// a best-effort partial answer rather than silently losing objects.
//
// Use KNNWithStats to additionally observe the query's per-stage QueryStats,
// and KNNCtx for deadline- and cancellation-aware execution.
func (t *Tree) KNN(q metric.Object, k int) ([]Result, error) {
	return t.KNNCtx(context.Background(), q, k)
}

// knn is Algorithm 2, accumulating per-stage counts into qs. ctx is checked
// at every heap pop and every verification; on cancellation the best
// candidates found so far are returned with a typed ErrCanceled.
//
// bound0 seeds curND_k before any candidate is verified: the answer is the
// canonical top-k of {x : d(q,x) ≤ bound0}, as if k phantom results at
// distance bound0 (with infinite IDs) preceded the search. +Inf means
// unbounded. The forest's staged kNN scatter passes the first shard's k-th
// distance here so the remaining shards run bounded probes.
func (t *Tree) knn(ctx context.Context, q metric.Object, k int, bound0 float64, qs *QueryStats) ([]Result, error) {
	if k <= 0 || t.count == 0 {
		return nil, nil
	}
	n := len(t.pivots)
	st := qs.stageStart()
	qvec := make([]float64, n)
	t.phi(q, qvec)
	qs.Compdists += int64(n)
	qs.stageAdd(&qs.PlanTime, st)

	root, rootOK := t.bpt.Root()
	if !rootOK && !t.deltaActive() {
		return nil, nil
	}
	if slots := t.planKNNSlots(qvec, k, qs); slots > 0 {
		// Pipelined verification with ordered commits (exec.go): identical
		// results and verification counters, concurrent distance work.
		return t.knnParallel(ctx, q, qvec, k, bound0, qs, slots, -1)
	}

	res := newKNNResults(k, bound0)
	pq := &mindHeap{}
	boxLo := make(sfc.Point, n)
	boxHi := make(sfc.Point, n)
	cell := make(sfc.Point, n)
	var kb knnBatch

	if rootOK {
		t.curve.Decode(root.BoxLo, boxLo)
		t.curve.Decode(root.BoxHi, boxHi)
		pq.push(mindItem{mind: t.mindToBox(qvec, boxLo, boxHi), page: root.Page, isNode: true})
		qs.HeapPushes++
	}
	if t.deltaActive() {
		t.seedDeltaKNN(qvec, pq, cell, qs)
	}

	for pq.Len() > 0 {
		if err := ctxDone(ctx); err != nil {
			return res.sorted(), err
		}
		item := pq.pop()
		if item.mind > res.bound() {
			break // Lemma 3 early termination
		}
		if !item.isNode {
			if t.batch && pq.Len() > 0 && !pq.peekIsNode() {
				// A run of entry pops with no tree node between them: buffer
				// the block and verify it through the batch kernel with
				// pop-order bound replay (DESIGN.md §13) — identical results
				// and counters to popping one entry at a time.
				kb.items = append(kb.items[:0], item)
				for len(kb.items) < knnIncrementalBlock && pq.Len() > 0 && !pq.peekIsNode() {
					kb.items = append(kb.items, pq.pop())
				}
				terminated, err := t.verifyKNNIncremental(ctx, q, res, &kb, qs)
				if err != nil {
					return res.sorted(), err
				}
				if terminated {
					break // Lemma 3 early termination mid-run
				}
				continue
			}
			// A leaf entry (or buffered insert): fetch the object and verify.
			if _, err := t.verifyKNN(ctx, q, res, item, qs); err != nil {
				return res.sorted(), err
			}
			continue
		}
		node, err := t.bpt.ReadNode(item.page)
		if err != nil {
			return res.sorted(), err
		}
		qs.NodesRead++
		if !node.Leaf {
			for _, c := range node.Children {
				t.curve.Decode(c.BoxLo, boxLo)
				t.curve.Decode(c.BoxHi, boxHi)
				if mind := t.mindToBox(qvec, boxLo, boxHi); mind <= res.bound() {
					pq.push(mindItem{mind: mind, page: c.Page, isNode: true})
					qs.HeapPushes++
				} else {
					qs.NodesPruned++ // Lemma 3
				}
			}
			continue
		}
		if t.traversal == Greedy && t.batch {
			// Batch the whole leaf (DESIGN.md §13): scan-time pruning uses the
			// pre-leaf bound, and verifyKNNBatch replays each survivor at its
			// committed bound — identical results and counters to the inline
			// loop, whose bound tightens entry by entry.
			kb.cands = kb.cands[:0]
			for i := range node.Keys {
				qs.EntriesScanned++
				t.curve.Decode(node.Keys[i], cell)
				mind := t.mindToCell(qvec, cell)
				if mind > res.bound() {
					qs.EntriesPruned++ // Lemma 3
					continue
				}
				kb.cands = append(kb.cands, knnCand{mind: mind, val: node.Vals[i]})
			}
			if err := t.verifyKNNBatch(ctx, q, res, &kb, qs); err != nil {
				return res.sorted(), err
			}
			continue
		}
		for i := range node.Keys {
			qs.EntriesScanned++
			t.curve.Decode(node.Keys[i], cell)
			mind := t.mindToCell(qvec, cell)
			if mind > res.bound() {
				qs.EntriesPruned++ // Lemma 3
				continue
			}
			if t.traversal == Greedy {
				if _, err := t.verifyKNN(ctx, q, res, mindItem{mind: mind, val: node.Vals[i]}, qs); err != nil {
					return res.sorted(), err
				}
			} else {
				pq.push(mindItem{mind: mind, val: node.Vals[i]})
				qs.HeapPushes++
			}
		}
	}

	out := res.sorted()
	qs.Discarded = qs.Verified - int64(len(out))
	return out, nil
}

// sorted copies the current top-k out of the max-heap in ascending
// (distance, id) order.
func (r *knnResults) sorted() []Result {
	out := append([]Result(nil), r.items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Object.ID() < out[j].Object.ID()
	})
	return out
}

// verifyKNN resolves one admitted candidate — a base leaf entry (read from
// the RAF) or a buffered insert (object in hand) — computes its distance
// against the live curND_k bound and feeds the running top-k. With bounded
// kernels the evaluation abandons once the distance provably exceeds the
// bound — an offer would reject such a candidate anyway (its distance ranks
// after the heap top regardless of ID), so skipping it changes nothing
// observable. A candidate at exactly curND_k still completes (within ⇔ d ≤
// bound), so the heap's ID tie-break sees it. The ctx check gives
// verification-batch granularity: a canceled query stops before the next RAF
// page read and distance computation.
//
// counted reports whether a verification actually happened: a base record
// superseded by the write buffer is skipped after its read (it consumes no
// distance computation and no approximate-search budget).
func (t *Tree) verifyKNN(ctx context.Context, q metric.Object, res *knnResults, item mindItem, qs *QueryStats) (counted bool, err error) {
	if err := ctxDone(ctx); err != nil {
		return false, err
	}
	st := qs.stageStart()
	obj := item.obj
	if obj == nil {
		obj, err = t.raf.Read(item.val)
		if err != nil {
			qs.stageAdd(&qs.VerifyTime, st)
			return false, err
		}
		if t.deltaShadowed(obj.ID()) {
			qs.stageAdd(&qs.VerifyTime, st)
			qs.TombstonesSkipped++
			return false, nil
		}
	} else {
		qs.DeltaCandidates++
	}
	d, within := t.verifyDist(q, obj, res.bound())
	qs.stageAdd(&qs.VerifyTime, st)
	qs.Verified++
	qs.Compdists++
	if within {
		res.offer(Result{Object: obj, Dist: d, Exact: true})
	} else if t.bounded {
		qs.Abandoned++
	}
	return true, nil
}

// knnBatch is the serial traversal's batching scratch, reused across blocks:
// cands feeds the greedy per-leaf batch, items feeds the best-first
// incremental batch.
type knnBatch struct {
	cands     []knnCand
	items     []mindItem
	offsets   []uint64
	objs      []metric.Object
	readObjs  []metric.Object
	plens     []int
	tomb      []bool
	d         []float64
	within    []bool
	probeIdx  []int
	probeObjs []metric.Object
	pd        []float64
	pw        []bool
}

// grow sizes the per-candidate slices for n candidates.
func (b *knnBatch) grow(n int) {
	if cap(b.offsets) < n {
		b.offsets = make([]uint64, n)
		b.objs = make([]metric.Object, n)
		b.readObjs = make([]metric.Object, n)
		b.plens = make([]int, n)
		b.tomb = make([]bool, n)
		b.d = make([]float64, n)
		b.within = make([]bool, n)
		b.probeIdx = make([]int, n)
		b.probeObjs = make([]metric.Object, n)
		b.pd = make([]float64, n)
		b.pw = make([]bool, n)
	}
}

// knnIncrementalBlock caps how many consecutive entry pops the best-first
// traversal buffers into one batch verification.
const knnIncrementalBlock = 16

// verifyKNNIncremental resolves a run of consecutive entry pops — no tree
// node between them, so verifying them pushes nothing onto the frontier and
// the run is exactly the prefix the one-at-a-time loop would pop next — by
// one coalesced RAF read and one batch-kernel call, then replays each verdict
// in pop order against the live bound, exactly like verifyKNNBatch. The one
// difference from the per-leaf batch: the pop loop's reaction to MIND ≥
// curND_k is termination, not a per-entry prune, so the replay reports
// terminated=true at the first such item and discards the rest of the run —
// the serial loop would have broken there and never popped them. Buffered
// inserts in the run carry their object and count DeltaCandidates, as in the
// scalar path. Every counter and the result set match the scalar loop; a
// failed coalesced read falls back to it, surfacing the error at the same
// pop position.
func (t *Tree) verifyKNNIncremental(ctx context.Context, q metric.Object, res *knnResults, kb *knnBatch, qs *QueryStats) (terminated bool, err error) {
	if err := ctxDone(ctx); err != nil {
		return false, err
	}
	n := len(kb.items)
	kb.grow(n)
	st := qs.stageStart()
	m := 0
	for _, it := range kb.items {
		if it.obj == nil {
			kb.offsets[m] = it.val
			m++
		}
	}
	if m > 0 {
		if idx, rerr := t.raf.ReadBatch(kb.offsets[:m], kb.readObjs[:m], kb.plens[:m]); idx >= 0 || rerr != nil {
			// Coalesced read failed: replay the run on the scalar path, which
			// surfaces the error at the same pop position.
			qs.stageAdd(&qs.VerifyTime, st)
			for _, it := range kb.items {
				if it.mind > res.bound() {
					return true, nil
				}
				if _, err := t.verifyKNN(ctx, q, res, it, qs); err != nil {
					return false, err
				}
			}
			return false, nil
		}
	}
	// Expand the compact read results to per-item slots, filter tombstones,
	// and build the probe list.
	probeIdx, probeObjs := kb.probeIdx[:0], kb.probeObjs[:0]
	j := 0
	for i, it := range kb.items {
		if it.obj != nil {
			kb.objs[i] = it.obj
			kb.tomb[i] = false
			probeIdx = append(probeIdx, i)
			probeObjs = append(probeObjs, it.obj)
			continue
		}
		kb.objs[i] = kb.readObjs[j]
		j++
		kb.tomb[i] = t.deltaShadowed(kb.objs[i].ID())
		if !kb.tomb[i] {
			probeIdx = append(probeIdx, i)
			probeObjs = append(probeObjs, kb.objs[i])
		}
	}
	if len(probeObjs) > 0 {
		eff := math.Inf(1)
		if t.bounded {
			eff = res.bound()
		}
		p := len(probeObjs)
		metric.BatchDistanceAtMost(t.dist.Unwrap(), q, probeObjs, eff, kb.pd[:p], kb.pw[:p])
		qs.BatchedCandidates += int64(p)
		for jj, i := range probeIdx {
			kb.d[i], kb.within[i] = kb.pd[jj], kb.pw[jj]
		}
	}
	// Commit in pop order against the live bound.
	j = 0
	for i, it := range kb.items {
		if it.mind > res.bound() {
			// Lemma 3 termination at this item's turn; the rest of the run is
			// the heap prefix the serial loop never pops.
			qs.stageAdd(&qs.VerifyTime, st)
			return true, nil
		}
		base := it.obj == nil
		var plen int
		if base {
			plen = kb.plens[j]
			j++
		}
		if kb.tomb[i] {
			t.raf.EmitRecordRead(it.val, plen)
			qs.TombstonesSkipped++
			continue
		}
		if base {
			t.raf.EmitRecordRead(it.val, plen)
		} else {
			qs.DeltaCandidates++
		}
		qs.Verified++
		qs.Compdists++
		t.dist.Add(1)
		if kb.within[i] && (!t.bounded || kb.d[i] <= res.bound()) {
			res.offer(Result{Object: kb.objs[i], Dist: kb.d[i], Exact: true})
		} else if t.bounded {
			qs.Abandoned++
		}
	}
	qs.stageAdd(&qs.VerifyTime, st)
	return false, nil
}

// verifyKNNBatch resolves one greedy leaf's admitted candidates through the
// batch kernel, replaying each verdict in scan order exactly as the parallel
// engine's ordered commit (exec.go): the batch evaluates against the pre-leaf
// bound snapshot on the unwrapped metric; each commit then re-checks the
// candidate's MIND against the current bound (a prune there is the Lemma 3
// prune the inline loop would have applied at that entry's turn, so
// EntriesPruned totals match) and re-checks a completed distance against the
// current bound (an excess there is the abandon the inline bounded evaluation
// would have reported). Only committed verifications count Verified/Compdists
// and advance the lifetime distance counter, so every counter — and the
// result set — is identical to the inline loop; the batch's extra work (reads
// and evaluations for commit-pruned candidates) stays as invisible as the
// parallel engine's speculation. A failed coalesced read falls back to the
// inline scalar path, surfacing the error at the same scan position.
func (t *Tree) verifyKNNBatch(ctx context.Context, q metric.Object, res *knnResults, kb *knnBatch, qs *QueryStats) error {
	if len(kb.cands) == 0 {
		return nil
	}
	if err := ctxDone(ctx); err != nil {
		return err
	}
	n := len(kb.cands)
	kb.grow(n)
	offsets, objs, plens := kb.offsets[:n], kb.objs[:n], kb.plens[:n]
	for i, c := range kb.cands {
		offsets[i] = c.val
	}
	st := qs.stageStart()
	if idx, err := t.raf.ReadBatch(offsets, objs, plens); idx >= 0 || err != nil {
		qs.stageAdd(&qs.VerifyTime, st)
		for _, c := range kb.cands {
			if c.mind > res.bound() {
				qs.EntriesPruned++
				continue
			}
			if _, err := t.verifyKNN(ctx, q, res, mindItem{mind: c.mind, val: c.val}, qs); err != nil {
				return err
			}
		}
		return nil
	}
	probeIdx, probeObjs := kb.probeIdx[:0], kb.probeObjs[:0]
	for i := range kb.cands {
		kb.tomb[i] = t.deltaShadowed(objs[i].ID())
		if !kb.tomb[i] {
			probeIdx = append(probeIdx, i)
			probeObjs = append(probeObjs, objs[i])
		}
	}
	if len(probeObjs) > 0 {
		eff := math.Inf(1)
		if t.bounded {
			eff = res.bound()
		}
		m := len(probeObjs)
		metric.BatchDistanceAtMost(t.dist.Unwrap(), q, probeObjs, eff, kb.pd[:m], kb.pw[:m])
		qs.BatchedCandidates += int64(m)
		for j, i := range probeIdx {
			kb.d[i], kb.within[i] = kb.pd[j], kb.pw[j]
		}
	}
	for i, c := range kb.cands {
		if c.mind > res.bound() {
			qs.EntriesPruned++ // the inline loop's Lemma 3 prune at this turn
			continue
		}
		if kb.tomb[i] {
			t.raf.EmitRecordRead(c.val, plens[i])
			qs.TombstonesSkipped++
			continue
		}
		qs.Verified++
		qs.Compdists++
		t.dist.Add(1)
		t.raf.EmitRecordRead(c.val, plens[i])
		if kb.within[i] && (!t.bounded || kb.d[i] <= res.bound()) {
			res.offer(Result{Object: objs[i], Dist: kb.d[i], Exact: true})
		} else if t.bounded {
			qs.Abandoned++
		}
	}
	qs.stageAdd(&qs.VerifyTime, st)
	return nil
}

// seedDeltaKNN pushes every buffered insert onto the kNN frontier with its
// mapped-space MIND lower bound, exactly as if it were a leaf entry of the
// base tree; the carried object lets verification skip the RAF read. Callers
// hold the read lock; cell is caller scratch.
func (t *Tree) seedDeltaKNN(qvec []float64, pq *mindHeap, cell sfc.Point, qs *QueryStats) {
	for _, e := range t.deltaEntriesSorted() {
		qs.EntriesScanned++
		t.curve.Decode(e.key, cell)
		pq.push(mindItem{mind: t.mindToCell(qvec, cell), obj: e.obj})
		qs.HeapPushes++
	}
}

// knnResults keeps the k best candidates in a max-heap so curND_k updates in
// O(log k). bound0 is the seeded starting bound (+Inf when unbounded): the
// heap then computes the canonical top-k of {x : d(q,x) ≤ bound0} — exactly
// the unbounded search over the data plus k phantom results at (bound0, ∞).
type knnResults struct {
	k      int
	bound0 float64
	items  []Result // max-heap by (Dist, ID)
}

// newKNNResults constructs a result heap seeded with bound0. A NaN bound is
// treated as unbounded; 0 is a valid (maximally tight) bound.
func newKNNResults(k int, bound0 float64) *knnResults {
	if math.IsNaN(bound0) {
		bound0 = math.Inf(1)
	}
	return &knnResults{k: k, bound0: bound0}
}

// resultWorse reports whether a ranks strictly after b in the (Dist, ID)
// total order. Using it as the heap priority makes the k-th boundary
// deterministic under distance ties: of two equal-distance candidates the
// smaller ID wins a slot, regardless of arrival order — so serial and
// parallel executions return identical result sets.
func resultWorse(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Object.ID() > b.Object.ID()
}

// bound returns curND_k: the seeded bound0 until k candidates exist.
func (r *knnResults) bound() float64 {
	if len(r.items) < r.k {
		return r.bound0
	}
	return r.items[0].Dist
}

func (r *knnResults) offer(x Result) {
	if x.Dist > r.bound0 {
		return // outside the seeded bound: a phantom (bound0, ∞) outranks it
	}
	if len(r.items) < r.k {
		r.items = append(r.items, x)
		r.up(len(r.items) - 1)
		return
	}
	if !resultWorse(r.items[0], x) {
		return
	}
	r.items[0] = x
	r.down(0)
}

func (r *knnResults) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !resultWorse(r.items[i], r.items[parent]) {
			break
		}
		r.items[parent], r.items[i] = r.items[i], r.items[parent]
		i = parent
	}
}

func (r *knnResults) down(i int) {
	for {
		l, rr := 2*i+1, 2*i+2
		big := i
		if l < len(r.items) && resultWorse(r.items[l], r.items[big]) {
			big = l
		}
		if rr < len(r.items) && resultWorse(r.items[rr], r.items[big]) {
			big = rr
		}
		if big == i {
			return
		}
		r.items[i], r.items[big] = r.items[big], r.items[i]
		i = big
	}
}

// mindItem is a heap element of Algorithm 2: a tree node (isNode), a leaf
// entry's object pointer, or — with obj set — a buffered insert from the
// write buffer carrying its object directly.
type mindItem struct {
	mind   float64
	isNode bool
	page   page.ID
	val    uint64
	obj    metric.Object
}

// mindLess is a total order on heap items: MIND first, then nodes before
// entries, then base entries before write-buffer entries, then page, offset
// or object ID. Totality matters twice — equal-MIND items pop in the same
// relative order in every execution, so serial and parallel traversals admit
// identical candidate sequences (and thus identical Verified/Compdists), and
// results never depend on heap internals.
func mindLess(a, b mindItem) bool {
	if a.mind != b.mind {
		return a.mind < b.mind
	}
	if a.isNode != b.isNode {
		return a.isNode
	}
	if a.isNode {
		return a.page < b.page
	}
	if (a.obj != nil) != (b.obj != nil) {
		return b.obj != nil
	}
	if a.obj != nil {
		return a.obj.ID() < b.obj.ID()
	}
	return a.val < b.val
}

// mindHeap is a concrete binary min-heap of mindItems. Replacing the
// container/heap implementation removes an interface{} boxing allocation on
// every push and pop — Algorithm 2 performs one per admitted entry, so the
// savings scale with EntriesScanned.
type mindHeap struct {
	items []mindItem
}

func (h *mindHeap) Len() int { return len(h.items) }

func (h *mindHeap) push(x mindItem) {
	h.items = append(h.items, x)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !mindLess(h.items[i], h.items[parent]) {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *mindHeap) pop() mindItem {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && mindLess(h.items[l], h.items[small]) {
			small = l
		}
		if r < n && mindLess(h.items[r], h.items[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// peekMind returns the minimum MIND without popping; the heap must be
// non-empty.
func (h *mindHeap) peekMind() float64 { return h.items[0].mind }

// peekIsNode reports whether the heap minimum is a tree node; the heap must
// be non-empty.
func (h *mindHeap) peekIsNode() bool { return h.items[0].isNode }
