package core

import (
	"sort"

	"spbtree/internal/metric"
)

// ExportObjects snapshots the tree's live object set — the base tree minus
// delta-shadowed records plus buffered inserts — sorted by ascending ID. It
// is the data-shipping primitive of the cluster layer (DESIGN.md §12): shard
// handoff verification and cross-node join partners both rebuild a tree from
// an exported snapshot, so the result must be exactly the object set a
// freshly compacted tree would index. The snapshot is taken under the read
// lock and is consistent: no concurrent mutation is half-visible.
func (t *Tree) ExportObjects() ([]metric.Object, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return nil, ErrClosed
	}
	out := make([]metric.Object, 0, t.count)
	c := t.bpt.SeekFirst()
	for ; c.Valid(); c.Next() {
		obj, err := t.raf.Read(c.Val())
		if err != nil {
			return nil, err
		}
		if t.deltaShadowed(obj.ID()) {
			continue
		}
		out = append(out, obj)
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	for _, e := range t.deltaEntriesSorted() {
		out = append(out, e.obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out, nil
}
