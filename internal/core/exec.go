// Parallel query execution engine (DESIGN.md §9).
//
// Traversal stays serial — pruning is cheap, order-sensitive, and drives the
// counters the paper's cost models calibrate against — while the expensive
// verification stage (RAF page reads plus metric distance computations) fans
// out to a pool of verifier goroutines. Three designs keep parallel
// executions byte-identical to serial ones in results and in the
// Verified/Compdists counters:
//
//   - Range queries and joins have bound-independent candidate sets, so their
//     verifiers are embarrassingly parallel; per-worker counter shards merge
//     at the end, and results are re-ordered deterministically (by object ID
//     for ranges, by dispatch sequence for joins).
//
//   - kNN verifications feed back into the pruning bound curND_k, so the
//     engine replays them in dispatch order: workers compute speculative
//     distances out of order, and a sequenced commit step applies each
//     verdict exactly as the serial algorithm would have — tightening the
//     bound, terminating, or discarding stale-admitted extras. The traversal
//     prunes against the committed bound, which is always ≥ the serial bound
//     at the equivalent point, so staleness only admits extra candidates
//     (which provably self-discard at commit), never drops answers.
//
//   - Speculative work stays invisible: workers read records quietly (tracer
//     events fire at commit) and compute distances on the unwrapped metric
//     (the lifetime compdists counter advances at commit), so observability
//     sees exactly the serial execution.
//
// Threshold-aware kernels (DESIGN.md §10) compose with all three: workers
// probe with metric.DistanceAtMost against the bound they can see (the fixed
// r/ε, or the committed curND_k, which is only ever looser than the bound at
// the verdict's commit slot), and kNN commits replay the bounded decision at
// the commit-time bound — so results, Verified, Compdists and the new
// Abandoned counter all remain byte-identical to serial execution.
package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// maxWorkers caps Options.Workers; defaultWorkerCap bounds the default so a
// large machine does not dedicate every core to one query.
const (
	maxWorkers       = 64
	defaultWorkerCap = 8
)

// defaultWorkers is the Workers default: min(GOMAXPROCS, 8).
func defaultWorkers() int {
	k := runtime.GOMAXPROCS(0)
	if k > defaultWorkerCap {
		k = defaultWorkerCap
	}
	if k < 1 {
		k = 1
	}
	return k
}

// resolveWorkers normalizes an Options.Workers value to [1, maxWorkers].
func resolveWorkers(w int) int {
	switch {
	case w == 0:
		return defaultWorkers()
	case w < 1:
		return 1
	case w > maxWorkers:
		return maxWorkers
	}
	return w
}

// execSlots is the process-wide pool of verifier goroutines. Every query —
// across trees, forest shards and server workers — draws its verifiers from
// here non-blockingly, so shard-level and intra-query parallelism compose
// without goroutine explosion: under saturation queries degrade gracefully
// to serial execution instead of queueing or multiplying threads.
var execSlots = make(chan struct{}, execSlotCap())

func execSlotCap() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// acquireSlots takes up to n slots without blocking, returning how many it
// got.
func acquireSlots(n int) int {
	got := 0
	for got < n {
		select {
		case execSlots <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

func releaseSlots(n int) {
	for i := 0; i < n; i++ {
		<-execSlots
	}
}

// workersFor reserves verifier goroutines for one query: up to the tree's
// configured worker count, fewer under load, zero when the pool is exhausted
// (the query then runs serially). The caller must hand the count to an
// engine (which releases on finish) or call releaseSlots itself.
func (t *Tree) workersFor() int {
	k := t.workers
	if k <= 1 {
		return 0
	}
	return acquireSlots(k)
}

// errStopTraversal aborts a traversal after a verifier worker recorded an
// error; the engine's finish reports the worker's error in its place.
var errStopTraversal = errors.New("core: stop traversal")

// rangeBatchSize is how many surviving candidates a range traversal batches
// per verifier job — large enough for ReadBatch to coalesce a leaf's
// page-sharing records, small enough to keep the pipeline busy.
const rangeBatchSize = 16

// ---------------------------------------------------------------------------
// Range queries
// ---------------------------------------------------------------------------

// rangeSink consumes leaf entries that survived the traversal-side pruning
// of Algorithm 1. add's cell argument holds the entry's decoded SFC cell and
// is scratch owned by the caller, valid only during the call; finish returns
// the verified answers (unsorted) and the first verification error.
type rangeSink interface {
	add(key, val uint64, cell sfc.Point) error
	finish() ([]Result, error)
}

// rangeSerial verifies candidates inline — the exact serial tail of the
// paper's VerifyRQ: Lemma 2 inclusion, then fetch + distance. With batch
// kernels (DESIGN.md §13) it instead buffers candidates into leaf-sized
// blocks, coalesces their RAF reads and evaluates the survivors of the
// tombstone/Lemma 2 pre-filter through one verifyBatch call; the radius is a
// fixed bound, so block evaluation returns exactly the per-candidate
// decisions of the inline path, and every counter except BatchedCandidates
// is unchanged.
type rangeSerial struct {
	t       *Tree
	q       metric.Object
	qvec    []float64
	r       float64
	qs      *QueryStats
	results []Result

	// batch-mode scratch, allocated on first use (t.batch only).
	buf  []rangeCand
	cell sfc.Point
	bs   rangeBatchScratch
}

// rangeBatchScratch holds one block's reusable verification slices.
type rangeBatchScratch struct {
	offsets  []uint64
	objs     []metric.Object
	plens    []int
	liveIdx  []int
	liveObjs []metric.Object
	d        []float64
	within   []bool
}

// grow sizes every slice for a block of n candidates.
func (b *rangeBatchScratch) grow(n int) {
	if cap(b.offsets) < n {
		b.offsets = make([]uint64, n)
		b.objs = make([]metric.Object, n)
		b.plens = make([]int, n)
		b.liveIdx = make([]int, n)
		b.liveObjs = make([]metric.Object, n)
		b.d = make([]float64, n)
		b.within = make([]bool, n)
	}
}

func (s *rangeSerial) add(key, val uint64, cell sfc.Point) error {
	if s.t.batch {
		s.buf = append(s.buf, rangeCand{key: key, val: val})
		if len(s.buf) >= rangeBatchSize {
			return s.flush()
		}
		return nil
	}
	return s.addScalar(key, val, cell)
}

// flush verifies the buffered block. A failed coalesced read falls back to
// the inline scalar path (counted reads), so the error surfaces at the same
// scan position with the same counters as unbatched execution.
func (s *rangeSerial) flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	t, qs := s.t, s.qs
	cands := s.buf
	s.buf = s.buf[:0]
	if s.cell == nil {
		s.cell = make(sfc.Point, len(t.pivots))
	}
	n := len(cands)
	s.bs.grow(n)
	offsets, objs, plens := s.bs.offsets[:n], s.bs.objs[:n], s.bs.plens[:n]
	for i, c := range cands {
		offsets[i] = c.val
	}
	st := qs.stageStart()
	if idx, err := t.raf.ReadBatch(offsets, objs, plens); idx >= 0 || err != nil {
		qs.stageAdd(&qs.VerifyTime, st)
		for _, c := range cands {
			t.curve.Decode(c.key, s.cell)
			if err := s.addScalar(c.key, c.val, s.cell); err != nil {
				return err
			}
		}
		return nil
	}
	// Pre-filter: tombstone skips and Lemma 2 inclusions peel off exactly as
	// inline; the remainder is one batch distance evaluation.
	liveIdx, liveObjs := s.bs.liveIdx[:0], s.bs.liveObjs[:0]
	for i, c := range cands {
		obj := objs[i]
		if t.deltaShadowed(obj.ID()) {
			t.raf.EmitRecordRead(c.val, plens[i])
			qs.TombstonesSkipped++
			continue
		}
		t.curve.Decode(c.key, s.cell)
		if !t.noLemma2 {
			if ub, ok := t.lemma2Bound(s.qvec, s.cell, s.r); ok {
				qs.Lemma2Included++
				t.raf.EmitRecordRead(c.val, plens[i])
				s.results = append(s.results, Result{Object: obj, Dist: ub, Exact: false})
				continue
			}
		}
		liveIdx = append(liveIdx, i)
		liveObjs = append(liveObjs, obj)
	}
	if len(liveObjs) > 0 {
		m := len(liveObjs)
		d, within := s.bs.d[:m], s.bs.within[:m]
		t.verifyBatch(s.q, liveObjs, s.r, d, within)
		qs.BatchedCandidates += int64(m)
		for j, i := range liveIdx {
			qs.Verified++
			qs.Compdists++
			t.raf.EmitRecordRead(cands[i].val, plens[i])
			if within[j] {
				s.results = append(s.results, Result{Object: liveObjs[j], Dist: d[j], Exact: true})
			} else {
				qs.Discarded++
				if t.bounded {
					qs.Abandoned++
				}
			}
		}
	}
	qs.stageAdd(&qs.VerifyTime, st)
	return nil
}

// addScalar is the inline verification tail (the only path when batch
// kernels are off).
func (s *rangeSerial) addScalar(key, val uint64, cell sfc.Point) error {
	t, qs := s.t, s.qs
	st := qs.stageStart()
	obj, err := t.raf.Read(val)
	if err != nil {
		qs.stageAdd(&qs.VerifyTime, st)
		return err
	}
	if t.deltaShadowed(obj.ID()) {
		// The write buffer supersedes this base record (tombstone or newer
		// version); the delta pass reports the live one, if any. The page
		// read already happened — what the skip saves is the distance work.
		qs.stageAdd(&qs.VerifyTime, st)
		qs.TombstonesSkipped++
		return nil
	}
	if !t.noLemma2 {
		if ub, ok := t.lemma2Bound(s.qvec, cell, s.r); ok {
			qs.stageAdd(&qs.VerifyTime, st)
			qs.Lemma2Included++
			s.results = append(s.results, Result{Object: obj, Dist: ub, Exact: false})
			return nil
		}
	}
	d, within := t.verifyDist(s.q, obj, s.r)
	qs.stageAdd(&qs.VerifyTime, st)
	qs.Verified++
	qs.Compdists++
	if within {
		s.results = append(s.results, Result{Object: obj, Dist: d, Exact: true})
	} else {
		qs.Discarded++
		if t.bounded {
			qs.Abandoned++
		}
	}
	return nil
}

func (s *rangeSerial) finish() ([]Result, error) {
	if err := s.flush(); err != nil {
		return s.results, err
	}
	return s.results, nil
}

// rangeCand is one dispatched candidate; seq is its position in scan order,
// used to report the scan-earliest error when several workers fail.
type rangeCand struct {
	key, val uint64
	seq      int64
}

// rangeExec fans range verification out to a worker pool. The candidate set
// is independent of the results (no feedback bound), so workers verify
// batches concurrently with per-worker counter shards; finish merges shards
// and picks the scan-earliest error. Results are sorted by ID afterwards, so
// the answer set and every verification counter are identical to serial
// execution.
type rangeExec struct {
	t     *Tree
	ctx   context.Context
	q     metric.Object
	qvec  []float64
	r     float64
	qs    *QueryStats
	timed bool

	jobs    chan []rangeCand
	batch   []rangeCand
	seq     int64
	failed  atomic.Bool
	wg      sync.WaitGroup
	workers []rangeWorker
}

// rangeWorker is one verifier's counter shard and result slice.
type rangeWorker struct {
	results     []Result
	lemma2      int64
	verified    int64
	discarded   int64
	abandoned   int64
	batched     int64
	compdists   int64
	tombSkipped int64
	verifyTime  time.Duration
	errSeq      int64
	err         error
	bs          rangeBatchScratch
}

func (t *Tree) newRangeExec(ctx context.Context, q metric.Object, qvec []float64, r float64, qs *QueryStats, slots int) *rangeExec {
	e := &rangeExec{
		t: t, ctx: ctx, q: q, qvec: qvec, r: r, qs: qs, timed: qs.timed,
		jobs:    make(chan []rangeCand, 2*slots),
		batch:   make([]rangeCand, 0, rangeBatchSize),
		workers: make([]rangeWorker, slots),
	}
	e.wg.Add(slots)
	for i := range e.workers {
		go e.run(&e.workers[i])
	}
	return e
}

func (e *rangeExec) add(key, val uint64, _ sfc.Point) error {
	if e.failed.Load() {
		return errStopTraversal
	}
	e.batch = append(e.batch, rangeCand{key: key, val: val, seq: e.seq})
	e.seq++
	if len(e.batch) >= rangeBatchSize {
		e.flushBatch()
	}
	return nil
}

func (e *rangeExec) flushBatch() {
	if len(e.batch) == 0 {
		return
	}
	b := e.batch
	e.batch = make([]rangeCand, 0, rangeBatchSize)
	e.jobs <- b
}

func (e *rangeExec) finish() ([]Result, error) {
	e.flushBatch()
	close(e.jobs)
	e.wg.Wait()
	releaseSlots(len(e.workers))
	qs := e.qs
	var results []Result
	var firstErr error
	errSeq := int64(math.MaxInt64)
	for i := range e.workers {
		w := &e.workers[i]
		results = append(results, w.results...)
		qs.Lemma2Included += w.lemma2
		qs.Verified += w.verified
		qs.Discarded += w.discarded
		qs.Abandoned += w.abandoned
		qs.BatchedCandidates += w.batched
		qs.Compdists += w.compdists
		qs.TombstonesSkipped += w.tombSkipped
		qs.VerifyTime += w.verifyTime
		if w.err != nil && w.errSeq < errSeq {
			firstErr, errSeq = w.err, w.errSeq
		}
	}
	return results, firstErr
}

// run is a verifier goroutine: drain jobs, verify each batch.
func (e *rangeExec) run(w *rangeWorker) {
	defer e.wg.Done()
	cell := make(sfc.Point, len(e.t.pivots))
	offsets := make([]uint64, 0, rangeBatchSize)
	objs := make([]metric.Object, rangeBatchSize)
	plens := make([]int, rangeBatchSize)
	for cands := range e.jobs {
		if w.err != nil || e.failed.Load() {
			continue // wind down: drain without working
		}
		e.runBatch(w, cands, cell, offsets, objs, plens)
	}
}

// runBatch coalesces the batch's RAF reads and verifies each candidate. On a
// batch read failure it falls back to per-candidate reads (the pages are
// warm) so the error surfaces at the exact scan position the serial
// execution would have reported.
func (e *rangeExec) runBatch(w *rangeWorker, cands []rangeCand, cell sfc.Point, offsets []uint64, objs []metric.Object, plens []int) {
	if err := ctxDone(e.ctx); err != nil {
		e.fail(w, cands[0].seq, err)
		return
	}
	var st time.Time
	if e.timed {
		st = time.Now()
	}
	offsets = offsets[:0]
	for _, c := range cands {
		offsets = append(offsets, c.val)
	}
	objs, plens = objs[:len(cands)], plens[:len(cands)]
	if idx, err := e.t.raf.ReadBatch(offsets, objs, plens); idx >= 0 || err != nil {
		for _, c := range cands {
			if err := ctxDone(e.ctx); err != nil {
				e.fail(w, c.seq, err)
				break
			}
			obj, plen, err := e.t.raf.ReadQuiet(c.val)
			if err != nil {
				e.fail(w, c.seq, err)
				break
			}
			e.verifyOne(w, c, obj, plen, cell)
		}
	} else if e.t.batch {
		e.verifyBlock(w, cands, objs, plens, cell)
	} else {
		for i, c := range cands {
			e.verifyOne(w, c, objs[i], plens[i], cell)
		}
	}
	if e.timed {
		w.verifyTime += time.Since(st)
	}
}

// verifyBlock is verifyOne over a coalesced block: the tombstone and Lemma 2
// pre-filters peel candidates off per candidate exactly as verifyOne, and the
// survivors run one verifyBatch call (DESIGN.md §13). The radius is a fixed
// bound, so each batched (d, within) pair is bit-identical to the scalar
// decision and every shard counter except batched is unchanged.
func (e *rangeExec) verifyBlock(w *rangeWorker, cands []rangeCand, objs []metric.Object, plens []int, cell sfc.Point) {
	t := e.t
	n := len(cands)
	w.bs.grow(n)
	liveIdx, liveObjs := w.bs.liveIdx[:0], w.bs.liveObjs[:0]
	for i, c := range cands {
		obj := objs[i]
		if t.deltaShadowed(obj.ID()) {
			t.raf.EmitRecordRead(c.val, plens[i])
			w.tombSkipped++
			continue
		}
		t.curve.Decode(c.key, cell)
		if !t.noLemma2 {
			if ub, ok := t.lemma2Bound(e.qvec, cell, e.r); ok {
				w.lemma2++
				t.raf.EmitRecordRead(c.val, plens[i])
				w.results = append(w.results, Result{Object: obj, Dist: ub, Exact: false})
				continue
			}
		}
		liveIdx = append(liveIdx, i)
		liveObjs = append(liveObjs, obj)
	}
	if len(liveObjs) == 0 {
		return
	}
	m := len(liveObjs)
	d, within := w.bs.d[:m], w.bs.within[:m]
	t.verifyBatch(e.q, liveObjs, e.r, d, within)
	w.batched += int64(m)
	for j, i := range liveIdx {
		w.verified++
		w.compdists++
		t.raf.EmitRecordRead(cands[i].val, plens[i])
		if within[j] {
			w.results = append(w.results, Result{Object: liveObjs[j], Dist: d[j], Exact: true})
		} else {
			w.discarded++
			if t.bounded {
				w.abandoned++
			}
		}
	}
}

// verifyOne applies the serial VerifyRQ tail to one fetched candidate:
// Lemma 2 inclusion or a distance computation, into the worker's shard.
func (e *rangeExec) verifyOne(w *rangeWorker, c rangeCand, obj metric.Object, plen int, cell sfc.Point) {
	t := e.t
	if t.deltaShadowed(obj.ID()) {
		// Superseded by the write buffer; the serial sink skips it after the
		// same read. Safe off the query goroutine: the buffer only mutates
		// under the write lock, excluded for the query's whole lifetime.
		t.raf.EmitRecordRead(c.val, plen)
		w.tombSkipped++
		return
	}
	t.curve.Decode(c.key, cell)
	if !t.noLemma2 {
		if ub, ok := t.lemma2Bound(e.qvec, cell, e.r); ok {
			w.lemma2++
			t.raf.EmitRecordRead(c.val, plen)
			w.results = append(w.results, Result{Object: obj, Dist: ub, Exact: false})
			return
		}
	}
	// The radius is a fixed bound (no feedback), so every verification here
	// commits: the counted metric is used directly, and the bounded kernel
	// can abandon against r with no replay subtleties.
	d, within := t.verifyDist(e.q, obj, e.r)
	w.verified++
	w.compdists++
	t.raf.EmitRecordRead(c.val, plen)
	if within {
		w.results = append(w.results, Result{Object: obj, Dist: d, Exact: true})
	} else {
		w.discarded++
		if t.bounded {
			w.abandoned++
		}
	}
}

func (e *rangeExec) fail(w *rangeWorker, seq int64, err error) {
	if w.err == nil {
		w.err, w.errSeq = err, seq
	}
	e.failed.Store(true)
}

// ---------------------------------------------------------------------------
// kNN queries (ordered-commit replay)
// ---------------------------------------------------------------------------

// knnCand is one admitted candidate: its MIND lower bound and RAF offset. A
// non-nil obj marks a buffered-insert candidate from the write buffer — the
// object is already in memory, so verification skips the RAF read.
type knnCand struct {
	mind float64
	val  uint64
	obj  metric.Object
}

// knnJob carries consecutively sequenced candidates (a greedy leaf batch, or
// a single incremental entry) to a verifier.
type knnJob struct {
	seq   int64
	items []knnCand
}

// knnVerdict is a worker's speculative result for one candidate, awaiting
// its commit slot. Under bounded kernels, within reports whether the probe
// completed (d is then the exact distance); a false within means the worker
// proved d > its probe bound — and since the bound only tightens between
// probe and commit, the commit-time evaluation would abandon too.
type knnVerdict struct {
	mind   float64
	val    uint64
	obj    metric.Object
	d      float64
	within bool
	tomb   bool // base record superseded by the write buffer: skip, no verify
	plen   int  // -1 marks a write-buffer candidate (no RAF read happened)
	dur    time.Duration
	err    error
}

// knnExec runs Algorithm 2's verification stage as an ordered-commit
// pipeline. The traversal dispatches admitted entries with increasing
// sequence numbers and prunes against the committed bound; workers read and
// compute speculatively; commits replay strictly in sequence, so each slot
// decides exactly what the serial algorithm would have: terminate (budget or
// bound), discard a stale-admitted extra, surface an error, or tighten
// curND_k. The committed verification set — and therefore Verified,
// Compdists, the emitted tracer events and the lifetime distance counter —
// matches serial execution exactly.
type knnExec struct {
	t       *Tree
	ctx     context.Context
	q       metric.Object
	raw     metric.DistanceFunc
	bounded bool // probe with the bounded kernel against the committed bound
	batch   bool // probe greedy leaf blocks through the batch kernel
	greedy  bool
	budget  int64 // max committed verifications; -1 = unlimited
	qs      *QueryStats
	timed   bool

	jobs  chan knnJob
	wg    sync.WaitGroup
	slots int

	// boundBits is the committed curND_k as float bits, read lock-free by
	// the traversal; done flags termination or failure so the traversal and
	// workers stop early.
	boundBits atomic.Uint64
	done      atomic.Bool

	// batched counts candidates probed through the batch kernel, across all
	// workers (atomic: probes race).
	batched atomic.Int64

	dispatched int64 // traversal-side sequence counter

	mu             sync.Mutex
	res            *knnResults
	next           int64 // next sequence to commit
	pending        map[int64]knnVerdict
	committed      int64
	terminated     bool
	err            error
	verified       int64
	compdists      int64
	abandoned      int64
	prunedAtCommit int64
	tombSkipped    int64
	deltaCands     int64
	verifyTime     time.Duration
}

func (t *Tree) newKNNExec(ctx context.Context, q metric.Object, k int, bound0 float64, qs *QueryStats, slots int, budget int64, greedy bool) *knnExec {
	res := newKNNResults(k, bound0)
	ex := &knnExec{
		t: t, ctx: ctx, q: q, raw: t.dist.Unwrap(), bounded: t.bounded, batch: t.batch, greedy: greedy,
		budget: budget, qs: qs, timed: qs.timed,
		jobs:    make(chan knnJob, 2*slots),
		slots:   slots,
		res:     res,
		pending: make(map[int64]knnVerdict),
	}
	ex.boundBits.Store(math.Float64bits(res.bound()))
	ex.wg.Add(slots)
	for i := 0; i < slots; i++ {
		go ex.worker()
	}
	return ex
}

// bound returns the committed curND_k. It is never tighter than the serial
// bound at the equivalent replay point, so pruning on it is always safe.
func (ex *knnExec) bound() float64 { return math.Float64frombits(ex.boundBits.Load()) }

// probe computes a worker's speculative distance for obj. With bounded
// kernels it evaluates against the committed bound, which can only be looser
// than the bound at this verdict's commit slot — so an abandoned probe
// (within = false) implies the commit-time evaluation would abandon too, and
// a completed probe carries the exact distance for the commit to re-check.
func (ex *knnExec) probe(obj metric.Object) (float64, bool) {
	if ex.bounded {
		return metric.DistanceAtMost(ex.raw, ex.q, obj, ex.bound())
	}
	return ex.raw.Distance(ex.q, obj), true
}

// dispatch hands admitted entries (in traversal order) to the workers.
func (ex *knnExec) dispatch(items ...knnCand) {
	seq := ex.dispatched
	ex.dispatched += int64(len(items))
	cp := make([]knnCand, len(items))
	copy(cp, items)
	ex.jobs <- knnJob{seq: seq, items: cp}
}

func (ex *knnExec) worker() {
	defer ex.wg.Done()
	t := ex.t
	var offsets []uint64
	var objs []metric.Object
	var plens []int
	var live []int
	var probeIdx []int
	var probeObjs []metric.Object
	var pd []float64
	var pw []bool
	for job := range ex.jobs {
		if ex.done.Load() {
			// Terminated: nothing can commit, but the replay sequence must
			// stay dense so earlier pending verdicts drain.
			for i, it := range job.items {
				ex.submit(job.seq+int64(i), knnVerdict{mind: it.mind, val: it.val})
			}
			continue
		}
		if err := ctxDone(ex.ctx); err != nil {
			for i, it := range job.items {
				ex.submit(job.seq+int64(i), knnVerdict{mind: it.mind, val: it.val, err: err})
			}
			continue
		}
		// Re-check every candidate against the committed bound before
		// touching it. The bound only tightens, so mind > bound now implies
		// mind > bound at this slot's commit, where it is discarded (greedy)
		// or terminates the query (incremental) without using the verdict
		// value — reading and verifying it would be pure waste. This is what
		// keeps speculative work bounded when the traversal runs far ahead of
		// the commits; the empty verdicts keep the replay sequence dense.
		live = live[:0]
		bound := ex.bound()
		for i, it := range job.items {
			switch {
			case it.mind > bound:
				ex.submit(job.seq+int64(i), knnVerdict{mind: it.mind, val: it.val})
			case it.obj != nil:
				// Write-buffer candidate: the object is in memory, so the
				// verdict is just the speculative distance.
				v := knnVerdict{mind: it.mind, val: it.val, obj: it.obj, plen: -1}
				var st time.Time
				if ex.timed {
					st = time.Now()
				}
				v.d, v.within = ex.probe(it.obj)
				if ex.timed {
					v.dur = time.Since(st)
				}
				ex.submit(job.seq+int64(i), v)
			default:
				live = append(live, i)
			}
		}
		if len(live) == 0 {
			continue
		}
		var st time.Time
		if ex.timed {
			st = time.Now()
		}
		if len(live) == 1 {
			it := job.items[live[0]]
			v := knnVerdict{mind: it.mind, val: it.val}
			if obj, plen, err := t.raf.ReadQuiet(it.val); err != nil {
				v.err = err
			} else if t.deltaShadowed(obj.ID()) {
				v.obj, v.plen, v.tomb = obj, plen, true
			} else {
				v.obj, v.plen = obj, plen
				v.d, v.within = ex.probe(obj)
			}
			if ex.timed {
				v.dur = time.Since(st)
			}
			ex.submit(job.seq+int64(live[0]), v)
			continue
		}
		// A greedy leaf batch: coalesce the reads.
		offsets = offsets[:0]
		for _, i := range live {
			offsets = append(offsets, job.items[i].val)
		}
		if cap(objs) < len(offsets) {
			objs = make([]metric.Object, len(offsets))
			plens = make([]int, len(offsets))
		}
		objs, plens = objs[:len(offsets)], plens[:len(offsets)]
		if idx, err := t.raf.ReadBatch(offsets, objs, plens); idx >= 0 || err != nil {
			// Per-record fallback so each verdict carries its own error.
			for bi, i := range live {
				it := job.items[i]
				v := knnVerdict{mind: it.mind, val: it.val}
				if obj, plen, rerr := t.raf.ReadQuiet(it.val); rerr != nil {
					v.err = rerr
				} else if t.deltaShadowed(obj.ID()) {
					v.obj, v.plen, v.tomb = obj, plen, true
				} else {
					v.obj, v.plen = obj, plen
					v.d, v.within = ex.probe(obj)
				}
				if ex.timed && bi == 0 {
					v.dur = time.Since(st)
				}
				ex.submit(job.seq+int64(i), v)
			}
			continue
		}
		if ex.batch {
			// Batch probe (DESIGN.md §13): one committed-bound snapshot for
			// the whole block. The snapshot can only be looser than the bound
			// at each verdict's commit slot, so — exactly as for a scalar
			// probe — an abandoned batch entry would abandon at commit too,
			// and a completed one carries the exact distance for the commit to
			// re-check. Results and every commit-side counter are identical to
			// scalar probing.
			probeIdx, probeObjs = probeIdx[:0], probeObjs[:0]
			for bi := range live {
				if !t.deltaShadowed(objs[bi].ID()) {
					probeIdx = append(probeIdx, bi)
					probeObjs = append(probeObjs, objs[bi])
				}
			}
			if cap(pd) < len(live) {
				pd = make([]float64, len(live))
				pw = make([]bool, len(live))
			}
			if len(probeObjs) > 0 {
				eff := math.Inf(1)
				if ex.bounded {
					eff = ex.bound()
				}
				metric.BatchDistanceAtMost(ex.raw, ex.q, probeObjs, eff, pd[:len(probeObjs)], pw[:len(probeObjs)])
				ex.batched.Add(int64(len(probeObjs)))
			}
			j := 0
			for bi, i := range live {
				it := job.items[i]
				v := knnVerdict{mind: it.mind, val: it.val, obj: objs[bi], plen: plens[bi]}
				if j < len(probeIdx) && probeIdx[j] == bi {
					v.d, v.within = pd[j], pw[j]
					j++
				} else {
					v.tomb = true
				}
				if ex.timed && bi == len(live)-1 {
					v.dur = time.Since(st)
				}
				ex.submit(job.seq+int64(i), v)
			}
			continue
		}
		for bi, i := range live {
			it := job.items[i]
			v := knnVerdict{mind: it.mind, val: it.val, obj: objs[bi], plen: plens[bi]}
			if t.deltaShadowed(objs[bi].ID()) {
				v.tomb = true
			} else {
				v.d, v.within = ex.probe(objs[bi])
			}
			if ex.timed && bi == len(live)-1 {
				v.dur = time.Since(st)
			}
			ex.submit(job.seq+int64(i), v)
		}
	}
}

// submit files a verdict and drains every consecutively ready commit slot.
// Verdicts arriving exactly in sequence (the common case once the pipeline is
// warm) commit directly, skipping the pending map.
func (ex *knnExec) submit(seq int64, v knnVerdict) {
	ex.mu.Lock()
	if seq == ex.next {
		ex.next++
		ex.commitLocked(v)
	} else {
		ex.pending[seq] = v
	}
	for len(ex.pending) > 0 {
		nv, ok := ex.pending[ex.next]
		if !ok {
			break
		}
		delete(ex.pending, ex.next)
		ex.next++
		ex.commitLocked(nv)
	}
	ex.mu.Unlock()
}

// commitLocked replays one verdict exactly as serial execution would have,
// in serial order: the approximate-search budget first (checked at the loop
// top there), then the Lemma 3 bound (checked at pop/scan), then the
// verification itself — so a read error on an entry the serial run would
// never have verified stays invisible, like the read itself.
func (ex *knnExec) commitLocked(v knnVerdict) {
	if ex.terminated {
		return
	}
	if ex.budget >= 0 && ex.committed >= ex.budget {
		ex.terminate()
		return
	}
	if v.mind > ex.res.bound() {
		if ex.greedy {
			// Serial greedy would have pruned this entry at the leaf scan
			// and moved on.
			ex.prunedAtCommit++
			return
		}
		// Incremental pops in nondecreasing MIND order, so the first
		// bound-crossing entry ends the query (Lemma 3).
		ex.terminate()
		return
	}
	if v.err != nil {
		ex.err = v.err
		ex.terminate()
		return
	}
	if v.tomb {
		// Superseded base record: serial execution skips it right after the
		// read, before any distance work — it consumes no verification (and
		// no approximate-search budget), only the page read it already cost.
		ex.t.raf.EmitRecordRead(v.val, v.plen)
		ex.tombSkipped++
		return
	}
	ex.verified++
	ex.compdists++
	ex.t.dist.Add(1)
	ex.verifyTime += v.dur
	if v.plen >= 0 {
		ex.t.raf.EmitRecordRead(v.val, v.plen)
	} else {
		ex.deltaCands++
	}
	ex.committed++
	// Replay the serial bounded decision at this slot's bound. A probe that
	// completed but whose distance now exceeds the (possibly tighter) commit
	// bound counts as abandoned, exactly as the serial evaluation at this
	// point would have; a probe the worker abandoned is a fortiori beyond the
	// commit bound. Without bounded kernels every verdict completed and is
	// offered, as before.
	if v.within && (!ex.bounded || v.d <= ex.res.bound()) {
		ex.res.offer(Result{Object: v.obj, Dist: v.d, Exact: true})
	} else {
		ex.abandoned++
	}
	ex.boundBits.Store(math.Float64bits(ex.res.bound()))
}

func (ex *knnExec) terminate() {
	ex.terminated = true
	ex.done.Store(true)
}

// finish drains the pipeline, folds the commit-side counters into qs (the
// traversal is done, so no counter races), and returns the sorted answer.
func (ex *knnExec) finish() ([]Result, error) {
	close(ex.jobs)
	ex.wg.Wait()
	releaseSlots(ex.slots)
	qs := ex.qs
	qs.Verified += ex.verified
	qs.Compdists += ex.compdists
	qs.Abandoned += ex.abandoned
	qs.BatchedCandidates += ex.batched.Load()
	qs.EntriesPruned += ex.prunedAtCommit
	qs.TombstonesSkipped += ex.tombSkipped
	qs.DeltaCandidates += ex.deltaCands
	qs.VerifyTime += ex.verifyTime
	out := ex.res.sorted()
	qs.Discarded = qs.Verified - int64(len(out))
	return out, ex.err
}

// knnParallel is Algorithm 2 (exact when budget < 0, budgeted otherwise)
// with pipelined verification: the traversal below is the serial one, except
// that admitted entries go to the engine instead of being verified inline,
// and pruning uses the committed (never tighter than serial) bound.
func (t *Tree) knnParallel(ctx context.Context, q metric.Object, qvec []float64, k int, bound0 float64, qs *QueryStats, slots int, budget int64) ([]Result, error) {
	n := len(t.pivots)
	greedy := t.traversal == Greedy && budget < 0
	ex := t.newKNNExec(ctx, q, k, bound0, qs, slots, budget, greedy)

	boxLo := make(sfc.Point, n)
	boxHi := make(sfc.Point, n)
	cell := make(sfc.Point, n)
	var leafBatch []knnCand

	pq := &mindHeap{}
	if root, ok := t.bpt.Root(); ok {
		t.curve.Decode(root.BoxLo, boxLo)
		t.curve.Decode(root.BoxHi, boxHi)
		pq.push(mindItem{mind: t.mindToBox(qvec, boxLo, boxHi), page: root.Page, isNode: true})
		qs.HeapPushes++
	}
	deltaLive := t.deltaActive()
	if deltaLive {
		// Buffered inserts enter the same best-first frontier as base entries,
		// carrying their objects so workers skip the RAF read.
		t.seedDeltaKNN(qvec, pq, cell, qs)
	}

	var travErr error
	for pq.Len() > 0 {
		if ex.done.Load() {
			break // committed termination, error, or exhausted budget
		}
		if budget >= 0 && ex.dispatched >= budget && !deltaLive {
			// Every remaining slot would exceed the budget. With a live write
			// buffer this shortcut is off: a dispatched candidate can turn out
			// tombstoned and commit without consuming budget, so the committed
			// check in commitLocked is the only exact gate.
			break
		}
		if err := ctxDone(ctx); err != nil {
			travErr = err
			break
		}
		item := pq.pop()
		if item.mind > ex.bound() {
			break // Lemma 3 on the committed bound: never earlier than serial
		}
		if !item.isNode {
			ex.dispatch(knnCand{mind: item.mind, val: item.val, obj: item.obj})
			continue
		}
		node, err := t.bpt.ReadNode(item.page)
		if err != nil {
			travErr = err
			break
		}
		qs.NodesRead++
		if !node.Leaf {
			for _, c := range node.Children {
				t.curve.Decode(c.BoxLo, boxLo)
				t.curve.Decode(c.BoxHi, boxHi)
				if mind := t.mindToBox(qvec, boxLo, boxHi); mind <= ex.bound() {
					pq.push(mindItem{mind: mind, page: c.Page, isNode: true})
					qs.HeapPushes++
				} else {
					qs.NodesPruned++
				}
			}
			continue
		}
		if greedy {
			leafBatch = leafBatch[:0]
			for i := range node.Keys {
				qs.EntriesScanned++
				t.curve.Decode(node.Keys[i], cell)
				mind := t.mindToCell(qvec, cell)
				if mind > ex.bound() {
					qs.EntriesPruned++
					continue
				}
				leafBatch = append(leafBatch, knnCand{mind: mind, val: node.Vals[i]})
			}
			if len(leafBatch) > 0 {
				ex.dispatch(leafBatch...)
			}
			continue
		}
		for i := range node.Keys {
			qs.EntriesScanned++
			t.curve.Decode(node.Keys[i], cell)
			mind := t.mindToCell(qvec, cell)
			if mind > ex.bound() {
				qs.EntriesPruned++
				continue
			}
			pq.push(mindItem{mind: mind, val: node.Vals[i]})
			qs.HeapPushes++
		}
	}

	out, vErr := ex.finish()
	if vErr != nil {
		return out, vErr
	}
	return out, travErr
}

// ---------------------------------------------------------------------------
// Similarity joins
// ---------------------------------------------------------------------------

// joinSink consumes candidate pairs that survived Algorithm 3's geometric
// pruning (Lemmas 5/6). flip reports that cur came from the O side, so the
// emitted pair is ⟨other, cur⟩.
type joinSink interface {
	pair(cur, other joinElem, flip bool) error
	finish() ([]JoinPair, error)
}

// joinSerial computes pair distances inline, exactly as before.
type joinSerial struct {
	ctx   context.Context
	t     *Tree
	eps   float64
	qs    *QueryStats
	pairs []JoinPair
}

func (s *joinSerial) pair(cur, other joinElem, flip bool) error {
	if err := ctxDone(s.ctx); err != nil {
		return err
	}
	qs := s.qs
	st := qs.stageStart()
	d, within := s.t.verifyDist(cur.obj, other.obj, s.eps)
	qs.stageAdd(&qs.VerifyTime, st)
	qs.Verified++
	qs.Compdists++
	if within {
		if flip {
			s.pairs = append(s.pairs, JoinPair{Q: other.obj, O: cur.obj, Dist: d})
		} else {
			s.pairs = append(s.pairs, JoinPair{Q: cur.obj, O: other.obj, Dist: d})
		}
	} else {
		qs.Discarded++
		if s.t.bounded {
			qs.Abandoned++
		}
	}
	return nil
}

func (s *joinSerial) finish() ([]JoinPair, error) { return s.pairs, nil }

// joinJob is one dispatched candidate pair; the objects are copied out of
// the merge lists, so later list evictions cannot race the workers.
type joinJob struct {
	seq  int64
	a, b metric.Object
	flip bool
}

type joinVerdict struct {
	job    joinJob
	d      float64
	within bool
	dur    time.Duration
	err    error
}

// joinExec fans pair verification out to workers. The candidate set has no
// feedback bound, so ordering matters only for output determinism and
// cancellation semantics: verdicts commit in dispatch order, which appends
// pairs in exactly the serial emission order and counts exactly the
// distances the serial run would have computed before a cancellation.
type joinExec struct {
	t     *Tree
	ctx   context.Context
	eps   float64
	qs    *QueryStats
	timed bool

	jobs  chan joinJob
	wg    sync.WaitGroup
	slots int
	done  atomic.Bool

	dispatched int64

	mu         sync.Mutex
	next       int64
	pending    map[int64]joinVerdict
	pairs      []JoinPair
	terminated bool
	err        error
	verified   int64
	compdists  int64
	discarded  int64
	abandoned  int64
	verifyTime time.Duration
}

func (t *Tree) newJoinExec(ctx context.Context, eps float64, qs *QueryStats, slots int) *joinExec {
	ex := &joinExec{
		t: t, ctx: ctx, eps: eps, qs: qs, timed: qs.timed,
		jobs:    make(chan joinJob, 4*slots),
		slots:   slots,
		pending: make(map[int64]joinVerdict),
	}
	ex.wg.Add(slots)
	for i := 0; i < slots; i++ {
		go ex.worker()
	}
	return ex
}

func (ex *joinExec) pair(cur, other joinElem, flip bool) error {
	if ex.done.Load() {
		return errStopTraversal
	}
	seq := ex.dispatched
	ex.dispatched++
	ex.jobs <- joinJob{seq: seq, a: cur.obj, b: other.obj, flip: flip}
	return nil
}

func (ex *joinExec) worker() {
	defer ex.wg.Done()
	raw := ex.t.dist.Unwrap()
	bounded := ex.t.bounded
	for job := range ex.jobs {
		v := joinVerdict{job: job}
		if ex.done.Load() {
			ex.submit(job.seq, v)
			continue
		}
		if err := ctxDone(ex.ctx); err != nil {
			v.err = err
			ex.submit(job.seq, v)
			continue
		}
		var st time.Time
		if ex.timed {
			st = time.Now()
		}
		// ε is a fixed bound (no feedback), so workers can evaluate the final
		// bounded decision directly; the commit only re-orders and counts.
		if bounded {
			v.d, v.within = metric.DistanceAtMost(raw, job.a, job.b, ex.eps)
		} else {
			v.d = raw.Distance(job.a, job.b)
			v.within = v.d <= ex.eps
		}
		if ex.timed {
			v.dur = time.Since(st)
		}
		ex.submit(job.seq, v)
	}
}

func (ex *joinExec) submit(seq int64, v joinVerdict) {
	ex.mu.Lock()
	ex.pending[seq] = v
	for {
		nv, ok := ex.pending[ex.next]
		if !ok {
			break
		}
		delete(ex.pending, ex.next)
		ex.next++
		ex.commitLocked(nv)
	}
	ex.mu.Unlock()
}

func (ex *joinExec) commitLocked(v joinVerdict) {
	if ex.terminated {
		return
	}
	if v.err != nil {
		ex.err = v.err
		ex.terminated = true
		ex.done.Store(true)
		return
	}
	ex.verified++
	ex.compdists++
	ex.t.dist.Add(1)
	ex.verifyTime += v.dur
	if v.within {
		if v.job.flip {
			ex.pairs = append(ex.pairs, JoinPair{Q: v.job.b, O: v.job.a, Dist: v.d})
		} else {
			ex.pairs = append(ex.pairs, JoinPair{Q: v.job.a, O: v.job.b, Dist: v.d})
		}
	} else {
		ex.discarded++
		if ex.t.bounded {
			ex.abandoned++
		}
	}
}

func (ex *joinExec) finish() ([]JoinPair, error) {
	close(ex.jobs)
	ex.wg.Wait()
	releaseSlots(ex.slots)
	qs := ex.qs
	qs.Verified += ex.verified
	qs.Compdists += ex.compdists
	qs.Discarded += ex.discarded
	qs.Abandoned += ex.abandoned
	qs.VerifyTime += ex.verifyTime
	return ex.pairs, ex.err
}
